// Command moviola renders the partial order of a recorded parallel execution
// — the reproduction of the Moviola execution browser of §3.3 and Figure 6.
//
// Usage:
//
//	moviola -demo           # record the buggy odd-even merge sort and show its deadlock
//	moviola -demo -dot      # same, as Graphviz DOT
//	moviola -demo -procs 8  # bigger sort
//	moviola -demo -trace-out trace.json  # replay graph as a Chrome/Perfetto trace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"butterfly/internal/apps/msort"
	"butterfly/internal/probe"
	"butterfly/internal/replay"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "record the Figure 6 deadlock demo and render it")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of the ASCII timeline")
		procs    = flag.Int("procs", 4, "sort processes for the demo")
		buggy    = flag.Bool("buggy", true, "use the deadlocking protocol")
		traceOut = flag.String("trace-out", "", "also write the recorded log as Chrome trace-event JSON to this file")
	)
	flag.Parse()

	if !*demo {
		flag.Usage()
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(6))
	keys := make([]uint32, *procs*16)
	for i := range keys {
		keys[i] = rng.Uint32() % 1000
	}
	res, err := msort.Run(keys, msort.Config{Procs: *procs, Buggy: *buggy, Record: true})
	if err != nil {
		fmt.Printf("execution ended abnormally:\n%v\n\n", err)
	} else {
		fmt.Printf("execution completed normally (%d keys sorted in %d rounds)\n\n",
			len(res.Sorted), res.Rounds)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, res.Log); err != nil {
			fmt.Fprintf(os.Stderr, "moviola: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[moviola] wrote %d log entries to %s\n", len(res.Log), *traceOut)
	}
	g := replay.BuildGraph(res.Log)
	if *dot {
		fmt.Print(g.RenderDOT())
		return
	}
	fmt.Println("partial order of recorded events (one column per process):")
	fmt.Println()
	fmt.Print(g.RenderASCII())
}

// writeTrace renders the recorded access log in the same Chrome trace-event
// JSON format the simulator's probes emit, one thread track per process, so
// replay graphs and contention traces open in the same viewer.
func writeTrace(path string, log []replay.Entry) error {
	tids := map[string]int{}
	var events []probe.ChromeEvent
	events = append(events, probe.ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "moviola replay log"},
	})
	for _, en := range log {
		tid, ok := tids[en.Proc]
		if !ok {
			tid = len(tids)
			tids[en.Proc] = tid
			events = append(events, probe.ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
				Args: map[string]any{"name": en.Proc},
			})
		}
		name := fmt.Sprintf("read obj %d", en.Obj)
		if en.Write {
			name = fmt.Sprintf("write obj %d", en.Obj)
		}
		events = append(events, probe.ChromeEvent{
			Name: name, Cat: "replay", Ph: "i", S: "t",
			Ts: float64(en.Time) / 1e3, Pid: 0, Tid: tid,
			Args: map[string]any{
				"version": en.Version,
				"readers": en.Readers,
				"write":   en.Write,
			},
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return probe.WriteChromeJSON(f, events)
}
