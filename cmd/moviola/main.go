// Command moviola renders the partial order of a recorded parallel execution
// — the reproduction of the Moviola execution browser of §3.3 and Figure 6.
//
// Usage:
//
//	moviola -demo           # record the buggy odd-even merge sort and show its deadlock
//	moviola -demo -dot      # same, as Graphviz DOT
//	moviola -demo -procs 8  # bigger sort
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"butterfly/internal/apps/msort"
	"butterfly/internal/replay"
)

func main() {
	var (
		demo  = flag.Bool("demo", false, "record the Figure 6 deadlock demo and render it")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of the ASCII timeline")
		procs = flag.Int("procs", 4, "sort processes for the demo")
		buggy = flag.Bool("buggy", true, "use the deadlocking protocol")
	)
	flag.Parse()

	if !*demo {
		flag.Usage()
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(6))
	keys := make([]uint32, *procs*16)
	for i := range keys {
		keys[i] = rng.Uint32() % 1000
	}
	res, err := msort.Run(keys, msort.Config{Procs: *procs, Buggy: *buggy, Record: true})
	if err != nil {
		fmt.Printf("execution ended abnormally:\n%v\n\n", err)
	} else {
		fmt.Printf("execution completed normally (%d keys sorted in %d rounds)\n\n",
			len(res.Sorted), res.Rounds)
	}
	g := replay.BuildGraph(res.Log)
	if *dot {
		fmt.Print(g.RenderDOT())
		return
	}
	fmt.Println("partial order of recorded events (one column per process):")
	fmt.Println()
	fmt.Print(g.RenderASCII())
}
