package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/fleet"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
	"butterfly/internal/workload"
)

// benchPartitionCounts is the partition-scaling sweep -bench-out measures.
var benchPartitionCounts = []int{1, 2, 4, 8}

// benchRepetitions: each (experiment, partitions) cell is run this many
// times and the best wall time kept, so one descheduled run doesn't skew
// the scaling numbers. Events, virtual time, and the table are identical
// across repetitions (and across partition counts) by construction.
const benchRepetitions = 3

// benchEntry is one measured cell of the partition-scaling report.
//
// Two speedups are recorded. SpeedupVsP1 is raw measured wall clock — on a
// single-CPU host the partitions timeshare one core, so it hovers near 1x
// regardless of how well the work partitions. CriticalPathSpeedupVsP1
// removes the timesharing: it projects this cell's wall time with every
// partition's measured in-window busy time overlapped (wall − ΣBusy +
// maxBusy, the critical path a P-core host executes) and compares that to
// the 1-partition wall time. All inputs are per-partition stopwatch
// measurements from the run itself, not estimates.
type benchEntry struct {
	Experiment      string  `json:"experiment"`
	Partitions      int     `json:"partitions"`
	WallNs          int64   `json:"wall_ns"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	VTimeNs         int64   `json:"vtime_ns"`
	Windows         uint64  `json:"windows"`
	BarrierNs       int64   `json:"barrier_ns"`
	SumBusyNs       int64   `json:"sum_busy_ns"`
	MaxBusyNs       int64   `json:"max_partition_busy_ns"`
	CriticalPathNs  int64   `json:"critical_path_wall_ns"`
	SpeedupVsP1     float64 `json:"speedup_vs_p1"`
	CritSpeedupVsP1 float64 `json:"critical_path_speedup_vs_p1"`
}

// workloadBench is one service's open-loop baseline: the virtual-time
// figures (rates, percentiles) are host-independent and deterministic; wall
// time and events/sec describe the simulator on this host.
type workloadBench struct {
	Service         string  `json:"service"`
	Pattern         string  `json:"pattern"`
	OfferedPerSec   float64 `json:"offered_per_sec"`
	CompletedPerSec float64 `json:"completed_per_sec"`
	Errors          uint64  `json:"errors"`
	P50Ns           int64   `json:"p50_ns"`
	P99Ns           int64   `json:"p99_ns"`
	MeanNs          int64   `json:"mean_ns"`
	VTimeNs         int64   `json:"vtime_ns"`
	WallNs          int64   `json:"wall_ns"`
}

// failoverBench measures the fleet's robustness costs: how long a standby
// takes to notice a dead primary and promote itself (dominated by the
// configured silence threshold), and the coordinator-side throughput of a
// large tracked sweep with results spooled to disk — the scale the
// replicated-journal failover has to keep up with.
type failoverBench struct {
	// DeadAfterNs is the silence threshold the takeover latency includes:
	// detection cannot be faster than the window that defines "dead".
	DeadAfterNs int64 `json:"dead_after_ns"`
	// TakeoverNs is the best-of-N wall time from the primary's listener
	// vanishing to the standby's promotion callback (epoch already fenced).
	TakeoverNs int64 `json:"takeover_ns"`
	// FenceEpoch is the epoch the promoted standby fenced (primary held 1).
	FenceEpoch uint64 `json:"fence_epoch"`
	// SweepJobs / SweepWallNs / SweepJobsPerSec: a tracked sweep of this
	// many distinct jobs through a journaled, spooling scheduler — submit
	// to last completion.
	SweepJobs       int     `json:"sweep_jobs"`
	SweepWallNs     int64   `json:"sweep_wall_ns"`
	SweepJobsPerSec float64 `json:"sweep_jobs_per_sec"`
}

// benchDoc is the JSON document -bench-out writes. The host block exists so
// a checked-in report is interpretable later: wall-clock numbers mean
// nothing without the machine that produced them.
type benchDoc struct {
	GOMAXPROCS  int             `json:"gomaxprocs"`
	NumCPU      int             `json:"num_cpu"`
	GoVersion   string          `json:"go_version"`
	Quick       bool            `json:"quick"`
	Repetitions int             `json:"repetitions"`
	Results     []benchEntry    `json:"results"`
	Workloads   []workloadBench `json:"workloads"`
	// Topologies is the STREAM triad bandwidth of every interconnect family
	// at every data placement, and Combining the hot-spot fetch-and-add
	// latency/contention with combining switches off and on — both pure
	// virtual-time figures, host-independent and deterministic.
	Topologies []core.StreamRow  `json:"topologies"`
	Combining  []core.CombineRow `json:"combining"`
	// Failover is the coordinator-failover cost row: takeover latency and
	// spooled 10k-job sweep throughput (1k under -quick).
	Failover failoverBench `json:"failover"`
}

// runBenchOut measures every partitionable experiment at 1, 2, 4, and 8
// partitions, asserts the printed tables are byte-identical across the
// whole sweep (the determinism contract, enforced on every benchmark run,
// not just in tests), and writes the scaling report as JSON.
func runBenchOut(path string, quick bool) error {
	var exps []core.Experiment
	for _, e := range core.Experiments() {
		if e.Partitionable {
			exps = append(exps, e)
		}
	}
	if len(exps) == 0 {
		return fmt.Errorf("no partitionable experiments registered")
	}

	doc := benchDoc{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Quick:       quick,
		Repetitions: benchRepetitions,
	}
	fmt.Printf("%-10s %11s %12s %10s %14s %9s %9s %11s\n",
		"experiment", "partitions", "wall", "events", "events/sec", "windows", "speedup", "crit-path")
	for _, e := range exps {
		var refTable []byte
		var p1Wall int64
		for _, parts := range benchPartitionCounts {
			cell, table, err := benchCell(e, parts, quick)
			if err != nil {
				return fmt.Errorf("%s at %d partitions: %w", e.ID, parts, err)
			}
			if refTable == nil {
				refTable = table
				p1Wall = cell.WallNs
			} else if !bytes.Equal(table, refTable) {
				return fmt.Errorf("%s: table at %d partitions differs from the 1-partition reference — determinism violated", e.ID, parts)
			}
			cell.SpeedupVsP1 = float64(p1Wall) / float64(cell.WallNs)
			cell.CritSpeedupVsP1 = float64(p1Wall) / float64(cell.CriticalPathNs)
			doc.Results = append(doc.Results, cell)
			fmt.Printf("%-10s %11d %12s %10d %14.0f %9d %8.2fx %10.2fx\n",
				e.ID, parts, time.Duration(cell.WallNs).Round(time.Microsecond),
				cell.Events, cell.EventsPerSec, cell.Windows, cell.SpeedupVsP1, cell.CritSpeedupVsP1)
		}
	}

	wl, err := benchWorkloads(quick)
	if err != nil {
		return fmt.Errorf("workload baselines: %w", err)
	}
	doc.Workloads = wl
	fmt.Printf("\n%-16s %12s %14s %10s %10s\n", "service", "offered/s", "completed/s", "p50 (ms)", "p99 (ms)")
	for _, b := range wl {
		fmt.Printf("%-16s %12.0f %14.0f %10.3f %10.3f\n",
			b.Service, b.OfferedPerSec, b.CompletedPerSec, float64(b.P50Ns)/1e6, float64(b.P99Ns)/1e6)
	}

	topo, comb, err := benchTopologies(quick)
	if err != nil {
		return fmt.Errorf("topology baselines: %w", err)
	}
	doc.Topologies, doc.Combining = topo, comb
	fmt.Printf("\n%-10s %-8s %12s %12s\n", "topology", "placed", "MB/s", "us/word")
	for _, r := range topo {
		fmt.Printf("%-10s %-8s %12.1f %12.3f\n", r.Topology, r.Placement, r.MBps, float64(r.WordNs)/1000)
	}
	fmt.Printf("\n%6s %9s %12s %12s %16s\n", "nodes", "combining", "mean (us)", "p99 (us)", "contention (ms)")
	for _, r := range comb {
		fmt.Printf("%6d %9v %12.2f %12.2f %16.3f\n",
			r.Nodes, r.Combining, float64(r.MeanNs)/1000, float64(r.P99Ns)/1000, float64(r.ContentionNs)/1e6)
	}

	fo, err := benchFailover(quick)
	if err != nil {
		return fmt.Errorf("failover baseline: %w", err)
	}
	doc.Failover = fo
	fmt.Printf("\n%-20s %14s %14s %14s\n", "failover", "dead-after", "takeover", "jobs/sec")
	fmt.Printf("%-20s %14s %14s %14.0f  (%d jobs in %s)\n",
		fmt.Sprintf("epoch %d", fo.FenceEpoch),
		time.Duration(fo.DeadAfterNs).Round(time.Millisecond),
		time.Duration(fo.TakeoverNs).Round(time.Millisecond),
		fo.SweepJobsPerSec, fo.SweepJobs, time.Duration(fo.SweepWallNs).Round(time.Millisecond))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (GOMAXPROCS=%d, NumCPU=%d, %s; best of %d runs per cell, tables byte-identical across the sweep)\n",
		path, doc.GOMAXPROCS, doc.NumCPU, doc.GoVersion, benchRepetitions)
	return nil
}

// benchWorkloads measures the open-loop service baselines the workload
// subsystem serves: one run per service on the default traffic config, the
// same shapes the `service` experiment uses.
func benchWorkloads(quick bool) ([]workloadBench, error) {
	cfg := workload.Default()
	nodes := 24
	cfg.Rate, cfg.Sources, cfg.Servers = 2400, 4, 4
	if quick {
		nodes = 16
		cfg.Rate, cfg.Sources, cfg.Servers = 1500, 3, 2
		cfg.DurationNs = 24 * sim.Millisecond
		cfg.WindowNs = 6 * sim.Millisecond
	}
	runs := []struct {
		name string
		run  func() (*workload.Result, error)
	}{
		{"lynx-echo", func() (*workload.Result, error) {
			return workload.RunLynxEcho(cfg, workload.EchoOpts{Machine: core.ButterflyI(nodes), EchoFlops: 8, ReplyWords: 16})
		}},
		{"us-tasks", func() (*workload.Result, error) {
			return workload.RunUSTasks(cfg, workload.TasksOpts{Machine: core.ButterflyI(nodes), Workers: 16, RowWords: 64, TaskFlops: 4})
		}},
		{"hotspot-counter", func() (*workload.Result, error) {
			return workload.RunHotspotCounter(cfg, workload.CounterOpts{Machine: core.ButterflyI(nodes), WorkNs: 50 * sim.Microsecond})
		}},
	}
	out := make([]workloadBench, 0, len(runs))
	for _, r := range runs {
		start := time.Now()
		res, err := r.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		tr := res.Tracker
		secs := float64(cfg.DurationNs) / 1e9
		out = append(out, workloadBench{
			Service:         r.name,
			Pattern:         string(cfg.Pattern),
			OfferedPerSec:   float64(tr.Offered) / secs,
			CompletedPerSec: float64(tr.Completed-tr.Errors) / secs,
			Errors:          tr.Errors,
			P50Ns:           tr.Total.Quantile(0.50),
			P99Ns:           tr.Total.Quantile(0.99),
			MeanNs:          tr.Total.Mean(),
			VTimeNs:         res.VTimeNs,
			WallNs:          time.Since(start).Nanoseconds(),
		})
	}
	return out, nil
}

// benchCell runs one experiment at one partition count benchRepetitions
// times, keeping the best wall time, and returns the measured cell plus the
// table bytes for the cross-partition identity check.
func benchCell(e core.Experiment, parts int, quick bool) (benchEntry, []byte, error) {
	transform := core.Spec{Partitions: parts}.ConfigTransform()
	cell := benchEntry{Experiment: e.ID, Partitions: parts}
	var table []byte
	for rep := 0; rep < benchRepetitions; rep++ {
		var engines []*sim.Engine
		release := machine.ScopeHooks(transform, func(m *machine.Machine) {
			engines = append(engines, m.E)
		})
		var buf bytes.Buffer
		start := time.Now()
		err := e.Run(&buf, quick)
		wall := time.Since(start).Nanoseconds()
		release()
		if err != nil {
			return cell, nil, err
		}
		var events uint64
		var vtime int64
		var windows uint64
		var barrierNs, sumBusy, maxBusy int64
		for _, eng := range engines {
			events += eng.Stats().Events
			vtime += eng.Now()
			w, b := eng.WindowStats()
			windows += w
			barrierNs += b
			for _, pt := range eng.PartitionTimings() {
				sumBusy += pt.BusyNs
				if pt.BusyNs > maxBusy {
					maxBusy = pt.BusyNs
				}
			}
		}
		if rep == 0 {
			table = buf.Bytes()
		} else if !bytes.Equal(buf.Bytes(), table) {
			return cell, nil, fmt.Errorf("repetition %d produced a different table", rep+1)
		}
		if rep == 0 || wall < cell.WallNs {
			cell.WallNs = wall
			cell.BarrierNs = barrierNs
			cell.SumBusyNs = sumBusy
			cell.MaxBusyNs = maxBusy
			// The critical path a P-core host executes: every partition's
			// in-window work overlapped, everything else (coordinator,
			// barriers) unchanged.
			cell.CriticalPathNs = wall - sumBusy + maxBusy
		}
		cell.Events = events
		cell.VTimeNs = vtime
		cell.Windows = windows
	}
	cell.EventsPerSec = float64(cell.Events) / (float64(cell.WallNs) / 1e9)
	return cell, table, nil
}

// benchFailover measures the replicated-journal failover path end to end,
// in-process but over real HTTP: a primary journal streams to a standby's
// follower loop; the primary's listener is torn down and the time to the
// standby's promotion callback recorded (best of benchRepetitions, fresh
// journals each time). Then a 10k-job tracked sweep (1k under -quick) runs
// through a journaled, spooling scheduler to measure the coordinator-side
// throughput robustness has to keep up with.
func benchFailover(quick bool) (failoverBench, error) {
	deadAfter := 250 * time.Millisecond
	out := failoverBench{DeadAfterNs: deadAfter.Nanoseconds()}

	for rep := 0; rep < benchRepetitions; rep++ {
		latency, epoch, err := takeoverOnce(deadAfter)
		if err != nil {
			return out, err
		}
		if rep == 0 || latency < out.TakeoverNs {
			out.TakeoverNs = latency
		}
		out.FenceEpoch = epoch
	}

	jobs := 10000
	if quick {
		jobs = 1000
	}
	dir, err := os.MkdirTemp("", "butterfly-bench-sweep-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	j, err := lab.OpenJournal(dir + "/journal")
	if err != nil {
		return out, err
	}
	defer j.Close()
	sched := lab.NewScheduler(lab.Config{
		Cache:        lab.OpenCache(dir + "/cache"),
		Journal:      j,
		QueueDepth:   jobs,
		SpoolResults: true,
	})
	sw := lab.Sweep{
		Base: core.Spec{Experiment: "numa", Quick: true},
		// numa probes node 15, so counts start at 16: 16..16+jobs-1.
		Axes: []lab.Axis{{Field: "nodes", Values: []string{fmt.Sprintf("16..%d:+1", 15+jobs)}}},
	}
	start := time.Now()
	_, submitted, err := sched.SubmitSweepTracked(sw)
	if err != nil {
		return out, err
	}
	if len(submitted) != jobs {
		return out, fmt.Errorf("sweep expanded to %d jobs, want %d", len(submitted), jobs)
	}
	for _, job := range submitted {
		if _, err := job.Wait(); err != nil {
			return out, err
		}
	}
	out.SweepJobs = jobs
	out.SweepWallNs = time.Since(start).Nanoseconds()
	out.SweepJobsPerSec = float64(jobs) / (float64(out.SweepWallNs) / 1e9)
	return out, nil
}

// takeoverOnce runs one primary-death drill: sync a follower over HTTP,
// tear the primary's listener down, and time the distance to promotion.
func takeoverOnce(deadAfter time.Duration) (int64, uint64, error) {
	dir, err := os.MkdirTemp("", "butterfly-bench-failover-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)

	prim, err := lab.OpenJournal(dir + "/primary")
	if err != nil {
		return 0, 0, err
	}
	defer prim.Close()
	if _, err := prim.BumpEpoch(); err != nil {
		return 0, 0, err
	}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("j%04d-bench", i+1)
		spec := core.Spec{Experiment: "numa", Quick: true, Nodes: 16 + i}
		if err := prim.Submitted(id, i+1, spec, "fp-"+id); err != nil {
			return 0, 0, err
		}
	}

	rep := fleet.NewReplicator(prim)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /replica/pull", rep.HandlePull)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(l)

	sb, err := lab.OpenJournal(dir + "/standby")
	if err != nil {
		return 0, 0, err
	}
	defer sb.Close()
	promoted := make(chan uint64, 1)
	fol := fleet.NewFollower(fleet.FollowerConfig{
		Self:         core.WorkerRecord{ID: "bench-standby"},
		Primary:      "http://" + l.Addr().String(),
		Journal:      sb,
		PullInterval: 5 * time.Millisecond,
		DeadAfter:    deadAfter,
		OnTakeover:   func(epoch uint64) { promoted <- epoch },
	})
	fol.Start()
	defer fol.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for sb.Rec() != prim.Rec() {
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("standby never caught up (rec %d vs %d)", sb.Rec(), prim.Rec())
		}
		time.Sleep(time.Millisecond)
	}

	killed := time.Now()
	hs.Close()
	l.Close()
	select {
	case epoch := <-promoted:
		return time.Since(killed).Nanoseconds(), epoch, nil
	case <-time.After(30 * time.Second):
		return 0, 0, fmt.Errorf("standby never promoted")
	}
}

// benchTopologies measures the topology subsystem's two baselines: triad
// bandwidth per interconnect family and placement, and the hot-spot
// fetch-and-add with combining off and on.
func benchTopologies(quick bool) ([]core.StreamRow, []core.CombineRow, error) {
	nodes, workers, items := 64, 16, 2048
	counts := []int{512, 2048}
	if quick {
		nodes, workers, items = 16, 8, 256
		counts = []int{64, 128}
	}
	var topo []core.StreamRow
	for _, t := range switchnet.Topologies() {
		rows, err := core.StreamNUMA(t, nodes, workers, items)
		if err != nil {
			return nil, nil, err
		}
		topo = append(topo, rows...)
	}
	var comb []core.CombineRow
	for _, n := range counts {
		for _, on := range []bool{false, true} {
			row, err := core.CombineHotspot(n, on)
			if err != nil {
				return nil, nil, err
			}
			comb = append(comb, row)
		}
	}
	return topo, comb, nil
}
