// Command butterflybench regenerates the tables and figures of "Large-Scale
// Parallel Programming: Experience with the BBN Butterfly Parallel
// Processor" (LeBlanc, Scott & Brown, 1988) on the simulated machine.
//
// Usage:
//
//	butterflybench -list
//	butterflybench -experiment fig5
//	butterflybench -all [-quick]
//	butterflybench -all -timing            # wall-clock + events/sec per experiment
//	butterflybench -all -cpuprofile cpu.pb # profile the simulator itself
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		expID      = flag.String("experiment", "", "run one experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced-scale run (fast smoke test)")
		timing     = flag.Bool("timing", false, "report per-experiment wall-clock time and simulated events/sec on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	switch {
	case *list:
		fmt.Printf("%-10s %s\n", "ID", "TITLE")
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *expID != "":
		e, ok := core.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "butterflybench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		fmt.Printf("===== %s: %s =====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := runOne(e, *quick, *timing); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		for _, e := range core.Experiments() {
			fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
			fmt.Printf("paper: %s\n\n", e.Paper)
			if err := runOne(e, *quick, *timing); err != nil {
				fmt.Fprintf(os.Stderr, "butterflybench: experiment %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne executes one experiment, optionally reporting how fast the
// simulator itself ran it: wall-clock time and engine events per second of
// wall time, aggregated over every machine the experiment builds. The report
// goes to stderr so timed runs still produce byte-identical tables.
func runOne(e core.Experiment, quick, timing bool) error {
	if !timing {
		return e.Run(os.Stdout, quick)
	}
	var engines []*sim.Engine
	machine.SetNewHook(func(m *machine.Machine) { engines = append(engines, m.E) })
	defer machine.SetNewHook(nil)
	start := time.Now()
	err := e.Run(os.Stdout, quick)
	wall := time.Since(start)
	var events uint64
	var vtime int64
	for _, eng := range engines {
		events += eng.Stats().Events
		vtime += eng.Now()
	}
	fmt.Fprintf(os.Stderr, "[timing] %-10s wall=%-12s machines=%-3d events=%-9d events/sec=%.0f vtime=%s\n",
		e.ID, wall.Round(time.Microsecond), len(engines), events,
		float64(events)/wall.Seconds(), time.Duration(vtime))
	return err
}
