// Command butterflybench regenerates the tables and figures of "Large-Scale
// Parallel Programming: Experience with the BBN Butterfly Parallel
// Processor" (LeBlanc, Scott & Brown, 1988) on the simulated machine.
//
// Usage:
//
//	butterflybench -list
//	butterflybench -experiment fig5
//	butterflybench -all [-quick]
//	butterflybench -all -timing            # wall-clock + events/sec per experiment
//	butterflybench -all -cpuprofile cpu.pb # profile the simulator itself
//	butterflybench -experiment hotspot -probe                 # contention report (stderr)
//	butterflybench -experiment hotspot -trace-out trace.json  # Chrome/Perfetto trace
//	butterflybench -experiment fig5 -faults 'drop 0.001; kill 7 @ 20ms'
//	butterflybench -experiment hotspot -faults @sched.txt -fault-seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		expID      = flag.String("experiment", "", "run one experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced-scale run (fast smoke test)")
		timing     = flag.Bool("timing", false, "report per-experiment wall-clock time and simulated events/sec on stderr")
		probeOn    = flag.Bool("probe", false, "attach observability probes and print a contention report per machine on stderr")
		traceOut   = flag.String("trace-out", "", "record a Chrome trace-event JSON of the run to this file (implies -probe)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		faults     = flag.String("faults", "", "fault schedule: directives like 'seed 7; drop 0.001; kill 5 @ 10ms', or @file to read one")
		faultSeed  = flag.Uint64("fault-seed", 0, "override the fault schedule's random seed (requires -faults)")
	)
	flag.Parse()

	if *faults != "" {
		cfg, err := fault.ParseConfig(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -faults: %v\n", err)
			os.Exit(1)
		}
		if *faultSeed != 0 {
			cfg.Seed = *faultSeed
		}
		fault.SetAmbient(cfg)
	} else if *faultSeed != 0 {
		fmt.Fprintln(os.Stderr, "butterflybench: -fault-seed has no effect without -faults")
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := runOpts{
		timing:   *timing,
		probe:    *probeOn || *traceOut != "",
		traceOut: *traceOut,
	}

	switch {
	case *list:
		fmt.Printf("%-10s %s\n", "ID", "TITLE")
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *expID != "":
		e, ok := core.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "butterflybench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		fmt.Printf("===== %s: %s =====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := runOne(e, *quick, opts); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		for _, e := range core.Experiments() {
			fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
			fmt.Printf("paper: %s\n\n", e.Paper)
			if err := runOne(e, *quick, opts); err != nil {
				fmt.Fprintf(os.Stderr, "butterflybench: experiment %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOpts bundles the observation switches threaded through runOne.
type runOpts struct {
	timing   bool
	probe    bool
	traceOut string
}

// probedMachine pairs a machine with the probe attached to it (and, when a
// trace is requested, the recorder collecting its event stream).
type probedMachine struct {
	m   *machine.Machine
	pr  *probe.Probe
	rec *probe.Recorder
}

// runOne executes one experiment, optionally reporting how fast the
// simulator itself ran it (wall-clock time and engine events per second) and
// optionally attaching observability probes. Probe reports, timing lines, and
// the trace file all stay off stdout so instrumented runs still produce
// byte-identical tables.
func runOne(e core.Experiment, quick bool, opts runOpts) error {
	// The ambient -faults schedule is attached to every machine the
	// experiment boots — unless the experiment manages its own injectors.
	injectFaults := fault.Ambient() != nil && fault.Ambient().Enabled() && !e.ManagesFaults
	if !opts.timing && !opts.probe && !injectFaults {
		return e.Run(os.Stdout, quick)
	}
	var engines []*sim.Engine
	var probed []probedMachine
	machine.SetNewHook(func(m *machine.Machine) {
		engines = append(engines, m.E)
		if injectFaults {
			m.AttachFaults(fault.NewInjector(*fault.Ambient()))
		}
		if opts.probe {
			pm := probedMachine{m: m}
			if opts.traceOut != "" {
				pm.rec = &probe.Recorder{}
				pm.pr = probe.New(pm.rec)
			} else {
				pm.pr = probe.New(nil)
			}
			m.AttachProbe(pm.pr)
			probed = append(probed, pm)
		}
	})
	defer machine.SetNewHook(nil)
	start := time.Now()
	err := e.Run(os.Stdout, quick)
	wall := time.Since(start)
	if opts.timing {
		var events, parks, flushes uint64
		var vtime int64
		maxHeap := 0
		for _, eng := range engines {
			st := eng.Stats()
			events += st.Events
			parks += st.Parks
			flushes += st.LazyFlushes
			if st.MaxHeapDepth > maxHeap {
				maxHeap = st.MaxHeapDepth
			}
			vtime += eng.Now()
		}
		fmt.Fprintf(os.Stderr, "[timing] %-10s wall=%-12s machines=%-3d events=%-9d events/sec=%.0f vtime=%s parks=%d lazyflushes=%d maxheap=%d\n",
			e.ID, wall.Round(time.Microsecond), len(engines), events,
			float64(events)/wall.Seconds(), time.Duration(vtime), parks, flushes, maxHeap)
	}
	if opts.probe {
		for i, pm := range probed {
			fmt.Fprintf(os.Stderr, "\n[probe] %s machine %d/%d\n", e.ID, i+1, len(probed))
			pm.pr.Metrics().WriteReport(os.Stderr, pm.m.E.Now(), 8)
		}
	}
	if opts.traceOut != "" {
		if werr := writeTrace(opts.traceOut, e.ID, probed); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeTrace merges every probed machine's event stream into one Chrome
// trace-event JSON file, one pid per machine.
func writeTrace(path, expID string, probed []probedMachine) error {
	var all []probe.ChromeEvent
	for i, pm := range probed {
		label := fmt.Sprintf("%s machine %d (N=%d)", expID, i, pm.m.N())
		all = append(all, probe.EventsToChrome(i, label, pm.rec.Events)...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	defer f.Close()
	if err := probe.WriteChromeJSON(f, all); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "[probe] wrote %d trace events to %s\n", len(all), path)
	return nil
}
