// Command butterflybench regenerates the tables and figures of "Large-Scale
// Parallel Programming: Experience with the BBN Butterfly Parallel
// Processor" (LeBlanc, Scott & Brown, 1988) on the simulated machine.
//
// Usage:
//
//	butterflybench -list
//	butterflybench -experiment fig5
//	butterflybench -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"butterfly/internal/core"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		expID = flag.String("experiment", "", "run one experiment by id")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced-scale run (fast smoke test)")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-10s %s\n", "ID", "TITLE")
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *expID != "":
		e, ok := core.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "butterflybench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		fmt.Printf("===== %s: %s =====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		if err := core.RunAll(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
