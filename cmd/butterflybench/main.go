// Command butterflybench regenerates the tables and figures of "Large-Scale
// Parallel Programming: Experience with the BBN Butterfly Parallel
// Processor" (LeBlanc, Scott & Brown, 1988) on the simulated machine.
//
// Usage:
//
//	butterflybench -list
//	butterflybench -experiment fig5
//	butterflybench -all [-quick]
//	butterflybench -all -parallel 4        # run experiments concurrently (lab scheduler)
//	butterflybench -all -cache             # reuse content-addressed cached results
//	butterflybench -all -server http://127.0.0.1:7788   # run on a remote butterflyd
//	butterflybench -all -json              # structured per-experiment results on stdout
//	butterflybench -all -timing            # wall-clock + events/sec per experiment
//	butterflybench -all -cpuprofile cpu.pb # profile the simulator itself
//	butterflybench -experiment hotspot -probe                 # contention report (stderr)
//	butterflybench -experiment hotspot -trace-out trace.json  # Chrome/Perfetto trace
//	butterflybench -experiment fig5 -faults 'drop 0.001; kill 7 @ 20ms'
//	butterflybench -experiment hotspot -faults @sched.txt -fault-seed 42
//	butterflybench -experiment service -workload 'pattern bursty; rate 6000; seed 7'
//	butterflybench -experiment service -slo-report      # per-window SLO tables
//
// Experiment runs are deterministic and independent, so -parallel N fans
// them out over the lab's worker pool and reassembles stdout in experiment
// order — byte-identical to a sequential run, just faster on multi-core
// hosts. -cache short-circuits experiments whose fingerprint (spec + code
// version) already has a stored result.
//
// -server URL runs the same specs on a remote butterflyd instead of
// in-process: submissions ride the lab client's retry/backoff discipline
// (429s and daemon restarts are absorbed, not surfaced), and stdout stays
// byte-identical to a local run because the simulations are deterministic.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/fault"
	"butterfly/internal/lab"
	"butterfly/internal/lab/client"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
	"butterfly/internal/workload"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		expID      = flag.String("experiment", "", "run one experiment by id")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced-scale run (fast smoke test)")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for -all (1 = sequential in-process)")
		useCache   = flag.Bool("cache", false, "serve identical runs from the content-addressed result cache")
		noCache    = flag.Bool("no-cache", false, "force execution even if -cache is set")
		cacheDir   = flag.String("cache-dir", lab.DefaultCacheDir, "result cache directory")
		jsonOut    = flag.Bool("json", false, "emit structured per-experiment results as JSON on stdout")
		timing     = flag.Bool("timing", false, "report per-experiment wall-clock time and simulated events/sec on stderr")
		probeOn    = flag.Bool("probe", false, "attach observability probes and print a contention report per machine on stderr")
		traceOut   = flag.String("trace-out", "", "record a Chrome trace-event JSON of the run to this file (implies -probe, forces sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		faults     = flag.String("faults", "", "fault schedule: directives like 'seed 7; drop 0.001; kill 5 @ 10ms', or @file to read one")
		faultSeed  = flag.Uint64("fault-seed", 0, "override the fault schedule's random seed (requires -faults)")
		server     = flag.String("server", "", "run experiments on a remote butterflyd at this base URL instead of in-process")
		partitions = flag.Int("partitions", 0, "run partitionable experiments on the parallel engine with this many partitions (results stay bit-identical)")
		workloadFl = flag.String("workload", "", "workload directives for workload-driven experiments, e.g. 'pattern bursty; rate 6000; seed 7; duration 60ms'")
		topology   = flag.String("topology", "", "interconnect family for every machine booted: butterfly (default), fattree, dragonfly, or mesh")
		sloReport  = flag.Bool("slo-report", false, "print the full per-window SLO table for workload-driven experiments (sugar for the 'detail' workload directive)")
		benchOut   = flag.String("bench-out", "", "run every partitionable experiment at 1/2/4/8 partitions, verify byte-identical tables, and write a JSON scaling report to this file")
	)
	flag.Parse()

	if *partitions < 0 {
		fmt.Fprintln(os.Stderr, "butterflybench: -partitions must be >= 0")
		os.Exit(1)
	}
	if *topology != "" {
		if _, err := switchnet.ParseTopology(*topology); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -topology: %v\n", err)
			os.Exit(1)
		}
	}
	if *benchOut != "" {
		if err := runBenchOut(*benchOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -bench-out: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// An explicit -fault-seed of 0 must not be confused with "flag absent":
	// presence is what flag.Visit reports, so seed 0 works and garbage was
	// already rejected by the flag package's uint64 parser.
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fault-seed" {
			seedSet = true
		}
	})
	if seedSet && *faults == "" {
		fmt.Fprintln(os.Stderr, "butterflybench: -fault-seed has no effect without -faults")
		os.Exit(1)
	}
	if *partitions > 0 && *faults != "" {
		fmt.Fprintln(os.Stderr, "butterflybench: -faults and -partitions are incompatible (fault injection needs the sequential engine)")
		os.Exit(1)
	}
	if *faults != "" {
		// Parse eagerly so a bad schedule fails before any experiment runs,
		// whichever execution path is taken.
		if _, err := fault.ParseConfig(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -faults: %v\n", err)
			os.Exit(1)
		}
	}
	// -slo-report is sugar for the 'detail' workload directive, so it rides
	// the same string through specs and the lab cache fingerprint.
	workloadStr := *workloadFl
	if *sloReport {
		if workloadStr != "" {
			workloadStr += "; detail"
		} else {
			workloadStr = "detail"
		}
	}
	if workloadStr != "" {
		if _, err := workload.Parse(workloadStr, workload.Default()); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -workload: %v\n", err)
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "butterflybench: -parallel must be >= 1")
		os.Exit(1)
	}
	cacheOn := *useCache && !*noCache

	// -all submits through the lab scheduler (parallel workers, optional
	// cache, ordered reassembly); single experiments run in-process unless
	// caching or JSON output was requested. Trace export needs the machine
	// hook on the main goroutine, so it forces the in-process path.
	useLab := (*all || cacheOn || *jsonOut) && *traceOut == ""
	if *traceOut != "" && (cacheOn || *jsonOut) {
		fmt.Fprintln(os.Stderr, "butterflybench: -trace-out requires in-process sequential execution (drop -cache/-json)")
		os.Exit(1)
	}
	if *server != "" {
		// Remote execution: the trace recorder needs the machine hook in
		// this process, and caching is the daemon's decision, not ours.
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "butterflybench: -trace-out requires in-process execution (drop -server)")
			os.Exit(1)
		}
		if cacheOn {
			fmt.Fprintln(os.Stderr, "butterflybench: -cache is the daemon's policy; drop it when using -server")
			os.Exit(1)
		}
	}

	var seeds []core.Experiment
	switch {
	case *list:
		fmt.Printf("%-10s %s\n", "ID", "TITLE")
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	case *expID != "":
		e, ok := core.Lookup(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "butterflybench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		seeds = []core.Experiment{e}
	case *all:
		seeds = core.Experiments()
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *partitions > 0 {
		for _, e := range seeds {
			if !e.Partitionable {
				fmt.Fprintf(os.Stderr, "butterflybench: note: %s is not partitionable; -partitions ignored for it\n", e.ID)
			}
		}
	}
	if workloadStr != "" {
		for _, e := range seeds {
			if !e.WorkloadDriven {
				fmt.Fprintf(os.Stderr, "butterflybench: note: %s is not workload-driven; -workload/-slo-report ignored for it\n", e.ID)
			}
		}
	}

	if *server != "" {
		runViaServer(*server, seeds, labOpts{
			quick:      *quick,
			jsonOut:    *jsonOut,
			timing:     *timing,
			probe:      *probeOn,
			faults:     *faults,
			faultSeed:  ptrIf(seedSet, *faultSeed),
			partitions: *partitions,
			workload:   workloadStr,
			topology:   *topology,
			headers:    *all,
		})
		return
	}

	if useLab {
		runViaLab(seeds, labOpts{
			quick:      *quick,
			parallel:   *parallel,
			cacheOn:    cacheOn,
			cacheDir:   *cacheDir,
			jsonOut:    *jsonOut,
			timing:     *timing,
			probe:      *probeOn,
			faults:     *faults,
			faultSeed:  ptrIf(seedSet, *faultSeed),
			partitions: *partitions,
			workload:   workloadStr,
			topology:   *topology,
			headers:    *all, // -all prints the banner between experiments
		})
		return
	}

	// Sequential in-process path.
	if workloadStr != "" {
		workload.SetAmbient(workloadStr)
	}
	if *faults != "" {
		cfg, err := fault.ParseConfig(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: -faults: %v\n", err)
			os.Exit(1)
		}
		if seedSet {
			cfg.Seed = *faultSeed
		}
		fault.SetAmbient(cfg)
	}
	opts := runOpts{
		timing:     *timing,
		probe:      *probeOn || *traceOut != "",
		traceOut:   *traceOut,
		partitions: *partitions,
		topology:   *topology,
	}
	if *expID != "" {
		e := seeds[0]
		fmt.Printf("===== %s: %s =====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		if err := runOne(e, *quick, opts); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range seeds {
		fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		if err := runOne(e, *quick, opts); err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}

// ptrIf returns &v when set, else nil.
func ptrIf(set bool, v uint64) *uint64 {
	if !set {
		return nil
	}
	return &v
}

// labOpts bundles the lab execution path's switches.
type labOpts struct {
	quick      bool
	parallel   int
	cacheOn    bool
	cacheDir   string
	jsonOut    bool
	timing     bool
	probe      bool
	faults     string
	faultSeed  *uint64
	partitions int
	workload   string
	topology   string
	headers    bool
}

// specFor builds the lab spec for one experiment, applying the partition
// override only where the registry allows it.
func specFor(e core.Experiment, o labOpts) core.Spec {
	spec := core.Spec{
		Experiment: e.ID,
		Quick:      o.quick,
		Probe:      o.probe,
		Faults:     o.faults,
		FaultSeed:  o.faultSeed,
	}
	if e.Partitionable {
		spec.Partitions = o.partitions
	}
	if e.WorkloadDriven {
		spec.Workload = o.workload
	}
	spec.Topology = o.topology
	return spec
}

// jsonResult is the -json wire form of one experiment's structured result.
type jsonResult struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	Rows         []string `json:"rows"`
	Machines     int      `json:"machines"`
	Events       uint64   `json:"events"`
	VTimeNs      int64    `json:"vtime_ns"`
	WallNs       int64    `json:"wall_ns"`
	EventsPerSec float64  `json:"events_per_sec"`
	CacheHit     bool     `json:"cache_hit"`
	Attempts     int      `json:"attempts,omitempty"`
	Fingerprint  string   `json:"fingerprint"`
}

// runViaLab submits every experiment to an in-process lab scheduler and
// reassembles output in experiment order. Stdout is byte-identical to the
// sequential path (or a JSON document with -json); timing, probe reports,
// and cache accounting go to stderr.
func runViaLab(exps []core.Experiment, o labOpts) {
	var cache *lab.Cache
	if o.cacheOn {
		cache = lab.OpenCache(o.cacheDir)
	}
	sched := lab.NewScheduler(lab.Config{Workers: o.parallel, QueueDepth: len(exps) + 1, Cache: cache})

	start := time.Now()
	jobs := make([]*lab.Job, 0, len(exps))
	for _, e := range exps {
		j, err := sched.Submit(specFor(e, o))
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: submit %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		jobs = append(jobs, j)
	}

	var jsonResults []jsonResult
	for i, j := range jobs {
		e := exps[i]
		res, err := j.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emitResult(e, res, o, &jsonResults)
	}
	emitJSON(o, jsonResults)
	if o.timing {
		line := fmt.Sprintf("[timing] total      wall=%-12s workers=%d jobs=%d",
			time.Since(start).Round(time.Microsecond), o.parallel, len(jobs))
		if cache != nil {
			cs := cache.Stats()
			line += fmt.Sprintf(" cache-hits=%d cache-misses=%d", cs.Hits, cs.Misses)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

// emitResult writes one experiment's output exactly as the sequential path
// would: table (or collected JSON row) on stdout, timing and probe reports
// on stderr.
func emitResult(e core.Experiment, res *core.Result, o labOpts, jsonResults *[]jsonResult) {
	if o.jsonOut {
		*jsonResults = append(*jsonResults, jsonResult{
			ID:           e.ID,
			Title:        e.Title,
			Rows:         strings.Split(strings.TrimRight(res.Table, "\n"), "\n"),
			Machines:     res.Machines,
			Events:       res.Events,
			VTimeNs:      res.VTimeNs,
			WallNs:       res.WallNs,
			EventsPerSec: res.EventsPerSec(),
			CacheHit:     res.CacheHit,
			Attempts:     res.Attempts,
			Fingerprint:  res.Fingerprint,
		})
	} else {
		if o.headers {
			fmt.Printf("\n===== %s: %s =====\n", e.ID, e.Title)
			fmt.Printf("paper: %s\n\n", e.Paper)
		} else {
			fmt.Printf("===== %s: %s =====\npaper: %s\n\n", e.ID, e.Title, e.Paper)
		}
		fmt.Print(res.Table)
	}
	if o.timing {
		served := "miss"
		if res.CacheHit {
			served = "hit"
		}
		fmt.Fprintf(os.Stderr, "[timing] %-10s wall=%-12s machines=%-3d events=%-9d events/sec=%.0f vtime=%s cache=%s\n",
			e.ID, time.Duration(res.WallNs).Round(time.Microsecond), res.Machines, res.Events,
			res.EventsPerSec(), time.Duration(res.VTimeNs), served)
	}
	if o.probe && res.ProbeReport != "" {
		fmt.Fprintf(os.Stderr, "\n%s", res.ProbeReport)
	}
}

// emitJSON flushes the collected -json document.
func emitJSON(o labOpts, jsonResults []jsonResult) {
	if !o.jsonOut {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jsonResults); err != nil {
		fmt.Fprintf(os.Stderr, "butterflybench: %v\n", err)
		os.Exit(1)
	}
}

// runViaServer submits every experiment to a remote butterflyd and
// reassembles output in experiment order, exactly like runViaLab but over
// HTTP. The client absorbs 429 backpressure and daemon restarts with
// retries; a spec that ultimately cannot run is a hard error.
func runViaServer(base string, exps []core.Experiment, o labOpts) {
	c := client.New(base)
	ctx := context.Background()
	readyCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := c.WaitReady(readyCtx); err != nil {
		fmt.Fprintf(os.Stderr, "butterflybench: server %s not ready: %v\n", base, err)
		os.Exit(1)
	}

	start := time.Now()
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		st, err := c.Submit(ctx, specFor(e, o))
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: submit %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		ids = append(ids, st.ID)
	}

	var jsonResults []jsonResult
	for i, id := range ids {
		e := exps[i]
		res, err := c.WaitResult(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "butterflybench: experiment %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		emitResult(e, res, o, &jsonResults)
	}
	emitJSON(o, jsonResults)
	if o.timing {
		fmt.Fprintf(os.Stderr, "[timing] total      wall=%-12s server=%s jobs=%d\n",
			time.Since(start).Round(time.Microsecond), base, len(ids))
	}
}

// runOpts bundles the observation switches threaded through runOne.
type runOpts struct {
	timing     bool
	probe      bool
	traceOut   string
	partitions int
	topology   string
}

// probedMachine pairs a machine with the probe attached to it (and, when a
// trace is requested, the recorder collecting its event stream).
type probedMachine struct {
	m   *machine.Machine
	pr  *probe.Probe
	rec *probe.Recorder
}

// runOne executes one experiment, optionally reporting how fast the
// simulator itself ran it (wall-clock time and engine events per second) and
// optionally attaching observability probes. Probe reports, timing lines, and
// the trace file all stay off stdout so instrumented runs still produce
// byte-identical tables.
func runOne(e core.Experiment, quick bool, opts runOpts) error {
	// The ambient -faults schedule is attached to every machine the
	// experiment boots — unless the experiment manages its own injectors.
	injectFaults := fault.Ambient() != nil && fault.Ambient().Enabled() && !e.ManagesFaults
	raiseParts := opts.partitions > 0 && e.Partitionable
	reTopo := opts.topology != ""
	if !opts.timing && !opts.probe && !injectFaults && !raiseParts && !reTopo {
		return e.Run(os.Stdout, quick)
	}
	var transform func(machine.Config) machine.Config
	if raiseParts || reTopo {
		sp := core.Spec{Topology: opts.topology}
		if raiseParts {
			sp.Partitions = opts.partitions
		}
		transform = sp.ConfigTransform()
	}
	var engines []*sim.Engine
	var probed []probedMachine
	release := machine.ScopeHooks(transform, func(m *machine.Machine) {
		engines = append(engines, m.E)
		if injectFaults {
			m.AttachFaults(fault.NewInjector(*fault.Ambient()))
		}
		if opts.probe {
			pm := probedMachine{m: m}
			if opts.traceOut != "" {
				pm.rec = &probe.Recorder{}
				pm.pr = probe.New(pm.rec)
			} else {
				pm.pr = probe.New(nil)
			}
			m.AttachProbe(pm.pr)
			probed = append(probed, pm)
		}
	})
	defer release()
	start := time.Now()
	err := e.Run(os.Stdout, quick)
	wall := time.Since(start)
	if opts.timing {
		var events, parks, flushes uint64
		var vtime int64
		maxHeap := 0
		for _, eng := range engines {
			st := eng.Stats()
			events += st.Events
			parks += st.Parks
			flushes += st.LazyFlushes
			if st.MaxHeapDepth > maxHeap {
				maxHeap = st.MaxHeapDepth
			}
			vtime += eng.Now()
		}
		fmt.Fprintf(os.Stderr, "[timing] %-10s wall=%-12s machines=%-3d events=%-9d events/sec=%.0f vtime=%s parks=%d lazyflushes=%d maxheap=%d\n",
			e.ID, wall.Round(time.Microsecond), len(engines), events,
			float64(events)/wall.Seconds(), time.Duration(vtime), parks, flushes, maxHeap)
		for mi, eng := range engines {
			pts := eng.PartitionTimings()
			if pts == nil {
				continue
			}
			windows, barrierNs := eng.WindowStats()
			fmt.Fprintf(os.Stderr, "[timing] %-10s machine %d: %d partitions, %d windows, barrier=%s\n",
				e.ID, mi, len(pts), windows, time.Duration(barrierNs).Round(time.Microsecond))
			for _, pt := range pts {
				fmt.Fprintf(os.Stderr, "[timing] %-10s   partition %-2d events=%-9d compute=%-12s sync-wait=%-12s idle=%s\n",
					e.ID, pt.ID, pt.Events,
					time.Duration(pt.BusyNs).Round(time.Microsecond),
					time.Duration(pt.SyncWaitNs).Round(time.Microsecond),
					time.Duration(pt.IdleNs).Round(time.Microsecond))
			}
		}
	}
	if opts.probe {
		for i, pm := range probed {
			fmt.Fprintf(os.Stderr, "\n[probe] %s machine %d/%d\n", e.ID, i+1, len(probed))
			pm.pr.Metrics().WriteReport(os.Stderr, pm.m.E.Now(), 8)
		}
	}
	if opts.traceOut != "" {
		if werr := writeTrace(opts.traceOut, e.ID, probed); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeTrace merges every probed machine's event stream into one Chrome
// trace-event JSON file, one pid per machine.
func writeTrace(path, expID string, probed []probedMachine) error {
	var all []probe.ChromeEvent
	for i, pm := range probed {
		label := fmt.Sprintf("%s machine %d (N=%d)", expID, i, pm.m.N())
		all = append(all, probe.EventsToChrome(i, label, pm.rec.Events)...)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	defer f.Close()
	if err := probe.WriteChromeJSON(f, all); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "[probe] wrote %d trace events to %s\n", len(all), path)
	return nil
}
