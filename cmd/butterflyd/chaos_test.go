package main

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/client"
)

// buildDaemon compiles butterflyd once into a temp dir and returns the
// binary path.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "butterflyd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon to take.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// daemon wraps one butterflyd subprocess and its log capture.
type daemon struct {
	cmd     *exec.Cmd
	logPath string
}

// startDaemon launches butterflyd on addr with the given state directories.
// Extra flags are appended last, so they override the defaults (Go's flag
// package keeps the final occurrence).
func startDaemon(t *testing.T, bin, addr, journalDir, cacheDir, logPath string, extra ...string) *daemon {
	t.Helper()
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-addr", addr,
		"-journal-dir", journalDir,
		"-cache-dir", cacheDir,
		"-workers", "2",
		"-queue", "64",
		"-drain-timeout", "30s",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatalf("start butterflyd: %v", err)
	}
	logf.Close() // the child holds its own descriptor
	return &daemon{cmd: cmd, logPath: logPath}
}

// dumpLog attaches the daemon's log to the test output on failure.
func (d *daemon) dumpLog(t *testing.T) {
	t.Helper()
	if b, err := os.ReadFile(d.logPath); err == nil && len(b) > 0 {
		t.Logf("butterflyd log:\n%s", b)
	}
}

// TestCrashRecovery is the chaos scenario the journal exists for: kill the
// daemon with SIGKILL mid-batch, restart it on the same journal and cache
// directories, and require every submitted job to complete with results
// byte-identical to a clean run.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()
	journalDir := filepath.Join(stateDir, "journal")
	cacheDir := filepath.Join(stateDir, "cache")
	logPath := filepath.Join(stateDir, "butterflyd.log")

	addr := freeAddr(t)
	d := startDaemon(t, bin, addr, journalDir, cacheDir, logPath)
	defer func() {
		if t.Failed() {
			d.dumpLog(t)
		}
	}()
	killed := false
	defer func() {
		if !killed {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	}()

	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("daemon never ready: %v", err)
	}

	// Submit the full registry as quick specs.
	specs := make([]core.Spec, 0)
	for _, e := range core.Experiments() {
		specs = append(specs, core.Spec{Experiment: e.ID, Quick: true})
	}
	ids := make([]string, len(specs))
	fps := make([]string, len(specs))
	for i, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Experiment, err)
		}
		ids[i] = st.ID
		fps[i] = st.Fingerprint
	}

	// Let the batch get partway through, then pull the plug.
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		if m.Completed >= 2 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("daemon never completed 2 jobs before kill deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no Close
		t.Fatal(err)
	}
	d.cmd.Wait()
	killed = true

	// Restart on the same journal and cache. A different port proves
	// recovery depends only on the on-disk state.
	addr2 := freeAddr(t)
	d2 := startDaemon(t, bin, addr2, journalDir, cacheDir, logPath)
	defer func() {
		if t.Failed() {
			d2.dumpLog(t)
		}
	}()
	terminated := false
	defer func() {
		if !terminated {
			d2.cmd.Process.Kill()
			d2.cmd.Wait()
		}
	}()

	c2 := client.New("http://" + addr2)
	if err := c2.WaitReady(ctx); err != nil {
		t.Fatalf("restarted daemon never ready: %v", err)
	}

	// Every pre-crash job must reach done on the restarted daemon — the
	// journal preserved IDs, the cache or a deterministic re-run supplies
	// results.
	for i, id := range ids {
		res, err := c2.WaitResult(ctx, id)
		if err != nil {
			t.Fatalf("job %s (%s) after restart: %v", id, specs[i].Experiment, err)
		}
		clean, err := lab.RunSpec(specs[i])
		if err != nil {
			t.Fatalf("clean run %s: %v", specs[i].Experiment, err)
		}
		if res.Table != clean.Table {
			t.Errorf("experiment %s: recovered table diverges from clean run", specs[i].Experiment)
		}
		// The fingerprint the restarted daemon reports must be the one the
		// job was submitted under — recovery preserves identity. (It is NOT
		// comparable to this test binary's lab.Fingerprint: the code-version
		// salt differs between a VCS-stamped daemon build and a test build.)
		if res.Fingerprint != fps[i] {
			t.Errorf("experiment %s: fingerprint drifted across restart (%s -> %s)",
				specs[i].Experiment, fps[i], res.Fingerprint)
		}
	}

	// SIGTERM drains cleanly: exit status 0.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Errorf("clean shutdown exited non-zero: %v", err)
	}
	terminated = true
}

// TestDaemonBackpressureSmoke floods a small daemon queue well past
// capacity and requires the overflow to be sheddable load: immediate 429 +
// Retry-After at the raw HTTP level, full completion through the retrying
// client.
func TestDaemonBackpressureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()
	logPath := filepath.Join(stateDir, "butterflyd.log")
	addr := freeAddr(t)

	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", addr,
		"-journal-dir", filepath.Join(stateDir, "journal"),
		"-cache-dir", filepath.Join(stateDir, "cache"),
		"-workers", "1",
		"-queue", "2",
	)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	logf.Close()
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			if b, err := os.ReadFile(logPath); err == nil {
				t.Logf("butterflyd log:\n%s", b)
			}
		}
	}()

	c := client.New("http://" + addr)
	c.MaxAttempts = 60
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("daemon never ready: %v", err)
	}

	// 4x queue capacity of distinct long-enough jobs, submitted through the
	// retrying client: all must eventually land.
	const burst = 8 // 4x the -queue 2 capacity
	ids := make([]string, burst)
	for i := 0; i < burst; i++ {
		spec := core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)}
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		if _, err := c.WaitResult(ctx, id); err != nil {
			t.Errorf("burst job %d: %v", i, err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != burst {
		t.Errorf("completed %d of %d burst jobs", m.Completed, burst)
	}
}
