// Command butterflyd serves the experiment lab over HTTP: submit jobs
// against the paper's experiment registry, poll their status, fetch result
// tables, and watch queue/cache metrics. Simulations run concurrently on a
// worker pool; identical jobs are served from the content-addressed result
// cache without re-execution.
//
// The daemon is crash-safe: every job lifecycle transition is appended to a
// write-ahead journal (-journal-dir), so a restart replays the journal,
// restores finished jobs, and requeues whatever the previous process left
// mid-flight — re-execution is safe because every simulation is
// deterministic and the result cache is content-addressed. It is also
// overload-tolerant: a full queue or an over-rate client gets 429 +
// Retry-After instead of a hang, POST bodies are size-capped, and slow or
// idle connections are timed out.
//
// Usage:
//
//	butterflyd                          # listen on :7788, GOMAXPROCS workers
//	butterflyd -addr :9000 -workers 4
//	butterflyd -no-cache                # always execute
//	butterflyd -cache-dir /tmp/labcache
//	butterflyd -journal-dir /tmp/labjournal
//	butterflyd -no-journal              # volatile: forget all jobs on exit
//	butterflyd -rate 20 -burst 40       # per-remote submissions/sec
//	butterflyd -pprof                   # expose /debug/pprof/ (off by default)
//
// API quickstart:
//
//	curl -s localhost:7788/experiments
//	curl -s -X POST localhost:7788/jobs -d '{"experiment":"numa","quick":true}'
//	curl -s localhost:7788/jobs/j0001-xxxxxxxx          # status + queue position
//	curl -s localhost:7788/jobs/j0001-xxxxxxxx/result   # the table
//	curl -s -X POST localhost:7788/sweeps -d '{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["8..128:*2"]}]}'
//	curl -s localhost:7788/metrics
//	curl -s localhost:7788/readyz       # 503 during journal replay and drain
//
// SIGINT/SIGTERM shut down gracefully: /readyz flips to 503 immediately,
// intake stops, queued and in-flight jobs drain (bounded by -drain-timeout)
// while status polling keeps working, then the journal is compacted and the
// process exits.
//
// # Fleet mode
//
// butterflyd also runs as a fleet: one coordinator that places jobs on
// workers by consistent-hashing the spec content-address, and N workers
// that execute them. The coordinator speaks the exact same job API — point
// butterflybench -server (or any client) at it and a sweep fans out across
// the fleet, reassembling byte-identical to a single-node run.
//
//	butterflyd -role coordinator -addr :7788
//	butterflyd -role worker -addr :7790 -join http://127.0.0.1:7788
//	butterflyd -role worker -addr :7791 -join http://127.0.0.1:7788
//
// Robustness: workers heartbeat the coordinator (-heartbeat); a worker
// that misses them for -dead-after has its in-flight jobs reassigned to
// the next ring node (logged as `fleet: reassign ...`, idempotent because
// results are content-addressed); workers probe ring siblings' caches
// before simulating (peer fill); and the coordinator journals fleet
// membership through its write-ahead journal, so a SIGKILLed coordinator
// restarts, replays, re-probes the last-known workers, and resumes the
// sweep under the original job IDs.
//
// # Coordinator failover
//
// A standby replicates the coordinator's journal over HTTP — no shared
// disk — and promotes itself when the primary goes silent:
//
//	butterflyd -role coordinator -addr :7788
//	butterflyd -role standby -addr :7789 -follow http://127.0.0.1:7788
//
// The standby pulls journal records (job lifecycle, fleet membership,
// sweep identities) into its own journal on its own disk. When the primary
// stops answering at the connection level for -dead-after, the standby
// durably fences a new epoch, replays its replicated journal, re-probes
// the last-known workers, and resumes the sweep under the original job
// IDs — reassembled byte-identical to a single-node run. Workers learn the
// standby's URL from heartbeat acks and fail over to it; their epoch gates
// answer 412 to any dispatch from the deposed primary, which steps down
// the moment it sees one. Replication lag, epoch, and takeover count are
// on /metrics (and GET /replica/status on a standby that has not yet
// promoted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/fleet"
)

func main() {
	var (
		addr         = flag.String("addr", ":7788", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "bounded work queue depth")
		cacheDir     = flag.String("cache-dir", lab.DefaultCacheDir, "content-addressed result cache directory")
		noCache      = flag.Bool("no-cache", false, "disable the result cache (always execute)")
		journalDir   = flag.String("journal-dir", lab.DefaultJournalDir, "write-ahead job journal directory")
		noJournal    = flag.Bool("no-journal", false, "disable the journal (jobs do not survive restarts)")
		rate         = flag.Float64("rate", 50, "per-remote submission rate limit in requests/sec (0 = unlimited)")
		burst        = flag.Int("burst", 100, "per-remote submission burst size")
		maxBody      = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for queued and in-flight jobs")
		pprofOn      = flag.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/ (off by default; do not enable on untrusted networks)")

		role      = flag.String("role", "single", `fleet role: "single" (default), "coordinator" (place jobs on workers), "worker" (execute jobs for a coordinator), or "standby" (replicate a coordinator's journal; promote on its death)`)
		joinURL   = flag.String("join", "", "worker: coordinator base URL to join (required with -role worker)")
		followURL = flag.String("follow", "", "standby: primary coordinator base URL to replicate (required with -role standby)")
		advertise = flag.String("advertise", "", "worker/standby: base URL peers reach this daemon on (default derived from -addr on loopback)")
		workerID  = flag.String("worker-id", "", "worker: stable ring identity (default: the advertise host:port)")
		heartbeat = flag.Duration("heartbeat", time.Second, "worker: heartbeat interval")
		deadAfter = flag.Duration("dead-after", 5*time.Second, "coordinator: reassign a worker's jobs after this long without a heartbeat; standby: take over after this long of primary silence")
		dispatch  = flag.Int("dispatch", 16, "coordinator: concurrent remote dispatches (used when -workers is 0)")
		pullEvery = flag.Duration("pull-interval", 200*time.Millisecond, "standby: journal replication pull interval")
	)
	flag.Parse()
	log.SetPrefix("butterflyd: ")
	log.SetFlags(log.LstdFlags)

	switch *role {
	case "single", "coordinator", "worker", "standby":
	default:
		log.Fatalf("-role must be single, coordinator, worker, or standby (got %q)", *role)
	}
	if *role == "worker" && *joinURL == "" {
		log.Fatalf("-role worker requires -join <coordinator URL>")
	}
	if *role == "standby" {
		if *followURL == "" {
			log.Fatalf("-role standby requires -follow <primary coordinator URL>")
		}
		if *noJournal {
			log.Fatalf("-role standby is pointless without a journal: the replicated journal IS the standby")
		}
	}

	// A worker's fleet runtime exists before the listener so its epoch gate
	// can wrap the whole HTTP surface: dispatches from a fenced (replaced)
	// coordinator are rejected with 412 before they reach the job API.
	var fworker *fleet.Worker
	if *role == "worker" {
		self := core.WorkerRecord{ID: *workerID, URL: *advertise}
		if self.URL == "" {
			self.URL = advertiseFromAddr(*addr)
		}
		if self.ID == "" {
			self.ID = idFromURL(self.URL)
		}
		fworker = fleet.NewWorker(fleet.WorkerConfig{
			Self:           self,
			Coordinator:    *joinURL,
			HeartbeatEvery: *heartbeat,
			Logf:           log.Printf,
		})
	}

	// Listen before the journal replay so health probes get answers from
	// the first moment: /healthz is alive, /readyz is 503 until the
	// scheduler is attached.
	srv := lab.NewServer(lab.ServerConfig{
		MaxBodyBytes: *maxBody,
		RatePerSec:   *rate,
		RateBurst:    *burst,
	})
	// Profiling endpoints are mounted on an explicit mux (never the default
	// one) and only when asked for: the lab API stays the whole surface on a
	// stock deployment.
	var handler http.Handler = srv
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		mux.Handle("/", srv)
		handler = mux
	}
	if fworker != nil {
		// Outermost: a stale-epoch dispatch is rejected before anything else
		// sees it. Requests without an epoch header pass untouched.
		handler = fworker.Gate().Middleware(handler)
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slow-client hygiene: a peer that trickles its headers, never
		// reads its response, or parks an idle keep-alive cannot pin a
		// connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	var cache *lab.Cache
	if !*noCache {
		cache = lab.OpenCache(*cacheDir)
	}
	var journal *lab.Journal
	if !*noJournal {
		var err error
		journal, err = lab.OpenJournal(*journalDir)
		if err != nil {
			// A corrupt journal is an operator decision, not something to
			// silently discard: refuse to start.
			log.Fatalf("journal: %v (repair or remove %s to start fresh)", err, *journalDir)
		}
		if journal.Torn() {
			log.Printf("journal: dropped a torn final record (previous process died mid-append)")
		}
	}
	cfg := lab.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		Cache:      cache,
		Journal:    journal,
	}

	selfURL := *advertise
	if selfURL == "" {
		selfURL = advertiseFromAddr(*addr)
	}

	// buildCoordinator assembles a serving coordinator — used at startup by
	// -role coordinator (takeovers=0) and at promotion time by a standby
	// (takeovers=1, epoch freshly fenced). Returns the coordinator and the
	// scheduler config it drives.
	buildCoordinator := func(epoch, takeovers uint64) (*fleet.Coordinator, lab.Config) {
		ccfg := cfg
		var rep *fleet.Replicator
		if journal != nil {
			rep = fleet.NewReplicator(journal)
		}
		coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
			DeadAfter:  *deadAfter,
			Journal:    journal,
			Epoch:      epoch,
			Takeovers:  takeovers,
			SelfURL:    selfURL,
			Replicator: rep,
			Logf:       log.Printf,
		})
		if journal != nil {
			if known := journal.Workers(); len(known) > 0 {
				log.Printf("fleet: probing %d journaled workers", len(known))
				coord.RecoverWorkers(known)
			}
		}
		coord.Mount(srv)
		ccfg.Execute = coord.Execute
		if ccfg.Workers == 0 {
			// Dispatch slots are parked on HTTP polls, not CPU; give the
			// coordinator more of them than it has cores.
			ccfg.Workers = *dispatch
		}
		// A coordinator's memory is bounded by its largest single result,
		// not the sum of a sweep: finished tables spool to the cache and
		// sweep reassembly streams them back one point at a time.
		ccfg.SpoolResults = cache != nil
		return coord, ccfg
	}

	// The serving scheduler and coordinator are atomic because a standby
	// creates them on its replication goroutine at takeover time, while
	// main sleeps on signals.
	var schedPtr atomic.Pointer[lab.Scheduler]
	var coordPtr atomic.Pointer[fleet.Coordinator]
	var follower *fleet.Follower

	attach := func(coord *fleet.Coordinator, ccfg lab.Config) {
		sched := lab.NewScheduler(ccfg)
		coordPtr.Store(coord)
		schedPtr.Store(sched)
		srv.Attach(sched)
		if rec := sched.Recovery(); rec.Replayed > 0 {
			log.Printf("journal: replayed %d jobs (%d restored, %d requeued)",
				rec.Replayed, rec.Restored, rec.Requeued)
		}
	}

	// Fleet wiring happens between journal replay and scheduler creation:
	// a restarting coordinator must rediscover live workers BEFORE the
	// scheduler requeues mid-flight jobs, so those jobs re-dispatch
	// immediately instead of spinning on an empty ring.
	switch *role {
	case "single":
		attach(nil, cfg)
	case "coordinator":
		// The first coordinator on a journal fences epoch 1; a restart
		// inherits whatever epoch the journal last fenced.
		epoch := uint64(0)
		if journal != nil {
			if journal.Epoch() == 0 {
				if _, err := journal.BumpEpoch(); err != nil {
					log.Fatalf("journal: fencing initial epoch: %v", err)
				}
			}
			epoch = journal.Epoch()
		}
		attach(buildCoordinator(epoch, 0))
	case "worker":
		cfg.PeerFill = fworker.PeerFill
		srv.AugmentMetrics(func() any { return fworker.Metrics() })
		attach(nil, cfg)
	case "standby":
		// No scheduler yet: /readyz stays 503 until promotion. The follower
		// replicates the primary's journal into ours; OnTakeover fences the
		// epoch (already durable when it fires), replays the replicated
		// journal, re-probes the fleet, and starts serving — the in-flight
		// sweep resumes under its original job IDs.
		follower = fleet.NewFollower(fleet.FollowerConfig{
			Self:         core.WorkerRecord{ID: idFromURL(selfURL), URL: selfURL},
			Primary:      *followURL,
			Journal:      journal,
			PullInterval: *pullEvery,
			DeadAfter:    *deadAfter,
			Logf:         log.Printf,
			OnTakeover: func(epoch uint64) {
				log.Printf("standby: promoting to coordinator (epoch %d)", epoch)
				attach(buildCoordinator(epoch, 1))
				log.Printf("standby: serving as coordinator on %s (epoch %d)", *addr, epoch)
			},
		})
		follower.Mount(srv)
		follower.Start()
	}

	if fworker != nil {
		fworker.Start()
	}
	if sched := schedPtr.Load(); sched != nil {
		log.Printf("serving %d experiments on %s (role %s, %d workers, queue %d, cache %s, journal %s)",
			len(core.Experiments()), *addr, *role, sched.Workers(), *queueDepth, cacheDesc(cache), journalDesc(journal))
	} else {
		log.Printf("standby on %s following %s (journal %s)", *addr, *followURL, journalDesc(journal))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("%v: draining (timeout %s)", got, *drainTimeout)
	}

	// Drain order matters: readiness flips first (load balancers stop
	// routing; /healthz stays ok — the process is alive, just not taking
	// work), then a worker announces its departure (so the coordinator
	// stops placing new jobs here instead of later mistaking the silence
	// for a death), then the job queue drains while the HTTP listener keeps
	// serving status polls, then the listener closes and the journal
	// compacts.
	srv.BeginDrain()
	if fworker != nil {
		fworker.Leave()
	}
	if follower != nil {
		follower.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	sched := schedPtr.Load()
	var drainErr error
	if sched != nil {
		drainErr = sched.Shutdown(ctx)
	}
	// A worker keeps heartbeating through its own drain — the coordinator
	// must see it alive while it finishes dispatched jobs — and only goes
	// quiet once the queue is empty.
	if fworker != nil {
		fworker.Stop()
	}
	if coord := coordPtr.Load(); coord != nil {
		coord.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	if drainErr != nil {
		log.Printf("drain incomplete, jobs canceled: %v", drainErr)
		os.Exit(1)
	}
	if sched == nil {
		log.Printf("standby exiting (never promoted)")
		return
	}
	m := sched.Metrics()
	log.Printf("drained: %d completed, %d failed, %d canceled, cache hit rate %.0f%%",
		m.Completed, m.Failed, m.Canceled, 100*m.CacheHitRate)
}

// cacheDesc names the cache for the startup log line.
func cacheDesc(c *lab.Cache) string {
	if c == nil {
		return "off"
	}
	return fmt.Sprintf("%q", c.Dir())
}

// journalDesc names the journal for the startup log line.
func journalDesc(j *lab.Journal) string {
	if j == nil {
		return "off"
	}
	return fmt.Sprintf("%q", j.Dir())
}

// advertiseFromAddr derives a peer-reachable base URL from a listen
// address: a bare ":port" becomes loopback (the single-box fleet case);
// anything with a host keeps it.
func advertiseFromAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// idFromURL derives a stable worker identity from the advertise URL, so a
// worker restarted on the same address reclaims its ring arcs (and the
// cached results parked behind them).
func idFromURL(u string) string {
	return strings.TrimPrefix(strings.TrimPrefix(u, "https://"), "http://")
}
