// Command butterflyd serves the experiment lab over HTTP: submit jobs
// against the paper's experiment registry, poll their status, fetch result
// tables, and watch queue/cache metrics. Simulations run concurrently on a
// worker pool; identical jobs are served from the content-addressed result
// cache without re-execution.
//
// Usage:
//
//	butterflyd                          # listen on :7788, GOMAXPROCS workers
//	butterflyd -addr :9000 -workers 4
//	butterflyd -no-cache                # always execute
//	butterflyd -cache-dir /tmp/labcache
//
// API quickstart:
//
//	curl -s localhost:7788/experiments
//	curl -s -X POST localhost:7788/jobs -d '{"experiment":"numa","quick":true}'
//	curl -s localhost:7788/jobs/j0001-xxxxxxxx          # status + queue position
//	curl -s localhost:7788/jobs/j0001-xxxxxxxx/result   # the table
//	curl -s -X POST localhost:7788/sweeps -d '{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["8..128:*2"]}]}'
//	curl -s localhost:7788/metrics
//
// SIGINT/SIGTERM shut down gracefully: intake stops, queued and in-flight
// jobs drain (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

func main() {
	var (
		addr         = flag.String("addr", ":7788", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 256, "bounded work queue depth")
		cacheDir     = flag.String("cache-dir", lab.DefaultCacheDir, "content-addressed result cache directory")
		noCache      = flag.Bool("no-cache", false, "disable the result cache (always execute)")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for queued and in-flight jobs")
	)
	flag.Parse()
	log.SetPrefix("butterflyd: ")
	log.SetFlags(log.LstdFlags)

	var cache *lab.Cache
	if !*noCache {
		cache = lab.OpenCache(*cacheDir)
	}
	sched := lab.NewScheduler(lab.Config{Workers: *workers, QueueDepth: *queueDepth, Cache: cache})

	srv := &http.Server{Addr: *addr, Handler: lab.NewServer(sched)}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d experiments on %s (%d workers, queue %d, cache %s)",
			len(core.Experiments()), *addr, sched.Workers(), *queueDepth, cacheDesc(cache))
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("%v: draining (timeout %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete, jobs canceled: %v", err)
		os.Exit(1)
	}
	m := sched.Metrics()
	log.Printf("drained: %d completed, %d failed, %d canceled, cache hit rate %.0f%%",
		m.Completed, m.Failed, m.Canceled, 100*m.CacheHitRate)
}

// cacheDesc names the cache for the startup log line.
func cacheDesc(c *lab.Cache) string {
	if c == nil {
		return "off"
	}
	return fmt.Sprintf("%q", c.Dir())
}
