package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/client"
)

// fleetStatus fetches the coordinator's GET /fleet document.
func fleetStatus(t *testing.T, base string) (core.FleetMetrics, error) {
	t.Helper()
	var m core.FleetMetrics
	resp, err := http.Get(base + "/fleet")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&m)
	return m, err
}

// waitLiveWorkers polls GET /fleet until the coordinator reports n live
// workers.
func waitLiveWorkers(t *testing.T, ctx context.Context, base string, n int) {
	t.Helper()
	for {
		if m, err := fleetStatus(t, base); err == nil && m.LiveWorkers >= n {
			return
		}
		if ctx.Err() != nil {
			t.Fatalf("coordinator never reported %d live workers", n)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitCompleted polls coordinator metrics until at least n jobs completed.
func waitCompleted(t *testing.T, ctx context.Context, c *client.Client, n uint64, what string) {
	t.Helper()
	for {
		m, err := c.Metrics(ctx)
		if err == nil && m.Completed >= n {
			return
		}
		if ctx.Err() != nil {
			t.Fatalf("never reached %d completed jobs before %s", n, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetChaos is the fleet's version of TestCrashRecovery: a
// registry-wide sweep runs across a coordinator and three workers; one
// worker is SIGKILLed mid-sweep, then the coordinator itself is SIGKILLed
// and restarted on the same journal directory (and the same address, which
// is fleet configuration — workers keep heartbeating it). Every job must
// complete under its original ID with output byte-identical to the
// sequential in-process driver.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()
	coordJournal := filepath.Join(stateDir, "coord-journal")
	coordCache := filepath.Join(stateDir, "coord-cache")
	coordLog := filepath.Join(stateDir, "coordinator.log")

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	coordAddr := freeAddr(t)
	coordURL := "http://" + coordAddr
	coord := startDaemon(t, bin, coordAddr, coordJournal, coordCache, coordLog,
		"-role", "coordinator", "-dead-after", "2s", "-workers", "8")
	coordKilled := false
	defer func() {
		if !coordKilled {
			coord.cmd.Process.Kill()
			coord.cmd.Wait()
		}
	}()

	// Three workers, volatile (no journal): their durability is the fleet's
	// problem, which is the point of the exercise.
	workers := make([]*daemon, 3)
	for i := range workers {
		addr := freeAddr(t)
		logPath := filepath.Join(stateDir, "worker"+string(rune('A'+i))+".log")
		workers[i] = startDaemon(t, bin, addr,
			filepath.Join(stateDir, "unused-journal"), filepath.Join(stateDir, "wcache"+string(rune('A'+i))), logPath,
			"-role", "worker", "-join", coordURL, "-no-journal", "-heartbeat", "250ms")
	}
	workerKilled := false
	defer func() {
		for i, w := range workers {
			if i == 1 && workerKilled {
				continue
			}
			w.cmd.Process.Signal(syscall.SIGTERM)
		}
		for i, w := range workers {
			if i == 1 && workerKilled {
				continue
			}
			w.cmd.Wait()
			if t.Failed() {
				w.dumpLog(t)
			}
		}
	}()
	dumpOnFail := func(d *daemon) {
		if t.Failed() {
			d.dumpLog(t)
		}
	}
	defer dumpOnFail(coord)

	c := client.New(coordURL)
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("coordinator never ready: %v", err)
	}
	waitLiveWorkers(t, ctx, coordURL, 3)

	// Submit the full registry as quick specs through the coordinator.
	specs := make([]core.Spec, 0)
	for _, e := range core.Experiments() {
		specs = append(specs, core.Spec{Experiment: e.ID, Quick: true})
	}
	ids := make([]string, len(specs))
	fps := make([]string, len(specs))
	for i, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Experiment, err)
		}
		ids[i] = st.ID
		fps[i] = st.Fingerprint
	}

	// Mid-sweep, SIGKILL one worker. Its in-flight jobs must be reassigned
	// to the surviving ring nodes.
	waitCompleted(t, ctx, c, 3, "worker kill")
	if err := workers[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[1].cmd.Wait()
	workerKilled = true

	// A little deeper in, SIGKILL the coordinator itself.
	waitCompleted(t, ctx, c, 6, "coordinator kill")
	if err := coord.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	coord.cmd.Wait()
	coordKilled = true

	// Restart it on the same journal, cache, and address. The journal
	// replays job state and fleet membership; the recovery probe finds the
	// two surviving workers (and journals the dead one down); requeued jobs
	// re-dispatch under their original IDs.
	coord2 := startDaemon(t, bin, coordAddr, coordJournal, coordCache, coordLog,
		"-role", "coordinator", "-dead-after", "2s", "-workers", "8")
	coord2Done := false
	defer func() {
		if !coord2Done {
			coord2.cmd.Process.Kill()
			coord2.cmd.Wait()
		}
	}()
	defer dumpOnFail(coord2)

	c2 := client.New(coordURL)
	if err := c2.WaitReady(ctx); err != nil {
		t.Fatalf("restarted coordinator never ready: %v", err)
	}

	// Every pre-crash job completes, byte-identical to the sequential
	// driver, under the fingerprint it was submitted with.
	for i, id := range ids {
		res, err := c2.WaitResult(ctx, id)
		if err != nil {
			t.Fatalf("job %s (%s) after fleet chaos: %v", id, specs[i].Experiment, err)
		}
		clean, err := lab.RunSpec(specs[i])
		if err != nil {
			t.Fatalf("clean run %s: %v", specs[i].Experiment, err)
		}
		if res.Table != clean.Table {
			t.Errorf("experiment %s: fleet table diverges from sequential driver", specs[i].Experiment)
		}
		if res.Fingerprint != fps[i] {
			t.Errorf("experiment %s: fingerprint drifted across the fleet (%s -> %s)",
				specs[i].Experiment, fps[i], res.Fingerprint)
		}
	}

	// The restarted coordinator sees exactly the two survivors.
	waitLiveWorkers(t, ctx, coordURL, 2)
	if m, err := fleetStatus(t, coordURL); err != nil || m.LiveWorkers != 2 {
		t.Errorf("fleet status after chaos = %+v (err %v), want 2 live workers", m, err)
	}

	// The worker death left its structured trail in the coordinator log.
	if b, err := os.ReadFile(coordLog); err == nil {
		if !strings.Contains(string(b), "fleet: worker-down") {
			t.Error("coordinator log has no fleet: worker-down line despite a SIGKILLed worker")
		}
	}

	// SIGTERM drains the restarted coordinator cleanly.
	if err := coord2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coord2.cmd.Wait(); err != nil {
		t.Errorf("coordinator clean shutdown exited non-zero: %v", err)
	}
	coord2Done = true
}
