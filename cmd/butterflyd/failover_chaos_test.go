package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/client"
)

// getJSON decodes one GET endpoint into out, reporting non-2xx as an error
// via the returned status code.
func getJSON(base, path string, out any) (int, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// sweepProgress is the slice of the GET /sweeps/{id} document this test
// reads.
type sweepProgress struct {
	ID     string   `json:"id"`
	Points int      `json:"points"`
	Done   int      `json:"done"`
	Failed int      `json:"failed"`
	Jobs   []string `json:"jobs"`
}

// TestFailoverChaos is the coordinator's version of TestFleetChaos: a
// primary coordinator replicates its journal to a standby over HTTP (no
// shared disk), two workers run a sweep, and the primary is SIGKILLed
// mid-sweep. The standby must detect the silence, fence a new epoch,
// promote itself, re-learn the workers from its replicated journal, and
// finish the sweep — same sweep ID, same grid-ordered job IDs, reassembled
// document byte-identical to an in-process run.
func TestFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Primary coordinator: its own journal and cache.
	primAddr := freeAddr(t)
	primURL := "http://" + primAddr
	primLog := filepath.Join(stateDir, "primary.log")
	prim := startDaemon(t, bin, primAddr,
		filepath.Join(stateDir, "prim-journal"), filepath.Join(stateDir, "prim-cache"), primLog,
		"-role", "coordinator", "-dead-after", "2s", "-workers", "8")
	primKilled := false
	defer func() {
		if !primKilled {
			prim.cmd.Process.Kill()
			prim.cmd.Wait()
		}
		if t.Failed() {
			prim.dumpLog(t)
		}
	}()

	// Standby: separate journal and cache directories — the whole point is
	// that no disk is shared; everything it knows arrived over the wire.
	sbAddr := freeAddr(t)
	sbURL := "http://" + sbAddr
	sbLog := filepath.Join(stateDir, "standby.log")
	sb := startDaemon(t, bin, sbAddr,
		filepath.Join(stateDir, "sb-journal"), filepath.Join(stateDir, "sb-cache"), sbLog,
		"-role", "standby", "-follow", primURL, "-dead-after", "2s",
		"-pull-interval", "50ms", "-workers", "8")
	sbDone := false
	defer func() {
		if !sbDone {
			sb.cmd.Process.Kill()
			sb.cmd.Wait()
		}
		if t.Failed() {
			sb.dumpLog(t)
		}
	}()

	// Two workers joined to the primary. They learn the standby's address
	// from heartbeat acks — that list is their failover plan.
	workers := make([]*daemon, 2)
	workerURLs := make([]string, 2)
	for i := range workers {
		addr := freeAddr(t)
		workerURLs[i] = "http://" + addr
		logPath := filepath.Join(stateDir, "worker"+string(rune('A'+i))+".log")
		workers[i] = startDaemon(t, bin, addr,
			filepath.Join(stateDir, "unused-journal"), filepath.Join(stateDir, "wcache"+string(rune('A'+i))), logPath,
			"-role", "worker", "-join", primURL, "-no-journal", "-heartbeat", "250ms")
	}
	defer func() {
		for _, w := range workers {
			w.cmd.Process.Signal(syscall.SIGTERM)
		}
		for _, w := range workers {
			w.cmd.Wait()
			if t.Failed() {
				w.dumpLog(t)
			}
		}
	}()

	c := client.New(primURL)
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("primary never ready: %v", err)
	}
	waitLiveWorkers(t, ctx, primURL, 2)

	// The standby must be replicating (primary sees one follower with zero
	// lag) and both workers must know both coordinators before any chaos —
	// otherwise there is nothing to fail over to.
	poll := func(what string, cond func() bool) {
		t.Helper()
		for !cond() {
			if ctx.Err() != nil {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	poll("primary to report a caught-up follower", func() bool {
		m, err := fleetStatus(t, primURL)
		return err == nil && len(m.Followers) == 1 && m.Followers[0].LagRecs == 0
	})
	var sbStatus core.StandbyMetrics
	if code, err := getJSON(sbURL, "/replica/status", &sbStatus); err != nil || code != http.StatusOK {
		t.Fatalf("standby /replica/status = %d, %v", code, err)
	}
	if sbStatus.Role != "standby" || sbStatus.Primary != primURL {
		t.Fatalf("standby status = %+v", sbStatus)
	}
	for _, wu := range workerURLs {
		wu := wu
		poll("worker "+wu+" to learn the failover list", func() bool {
			var doc struct {
				Fleet core.WorkerMetrics `json:"fleet"`
			}
			code, err := getJSON(wu, "/metrics", &doc)
			return err == nil && code == http.StatusOK && len(doc.Fleet.Coordinators) >= 2 && doc.Fleet.Epoch >= 1
		})
	}

	// An 8-point sweep through the primary.
	const sweepBody = `{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["16..2048:*2"]}]}`
	var submitted struct {
		ID     string          `json:"id"`
		Points int             `json:"points"`
		Jobs   []lab.JobStatus `json:"jobs"`
	}
	resp, err := http.Post(primURL+"/sweeps", "application/json", bytes.NewBufferString(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps = %d, %v", resp.StatusCode, err)
	}
	if submitted.ID == "" || submitted.Points != 8 {
		t.Fatalf("sweep = %+v, want 8 tracked points", submitted)
	}
	originalIDs := make([]string, len(submitted.Jobs))
	for i, j := range submitted.Jobs {
		originalIDs[i] = j.ID
	}

	// Mid-sweep — some points done, not all — SIGKILL the primary. No
	// drain, no handoff message: the standby only has silence to go on.
	// The tight poll keeps the kill inside the sweep on fast machines.
	for {
		var p sweepProgress
		code, err := getJSON(primURL, "/sweeps/"+submitted.ID, &p)
		if err == nil && code == http.StatusOK && p.Done >= 2 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("timed out waiting for a couple of sweep points to finish")
		}
		time.Sleep(time.Millisecond)
	}
	if err := prim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	prim.cmd.Wait()
	primKilled = true

	// The standby notices, fences a new epoch, and promotes: its /fleet
	// endpoint (coordinator-only) starts answering with a takeover counted.
	var promoted core.FleetMetrics
	poll("standby takeover", func() bool {
		m, err := fleetStatus(t, sbURL)
		if err != nil || m.Takeovers != 1 {
			return false
		}
		promoted = m
		return true
	})
	if promoted.Epoch < 2 {
		t.Errorf("promoted epoch = %d, want >= 2 (primary fenced 1)", promoted.Epoch)
	}
	waitLiveWorkers(t, ctx, sbURL, 2)

	// The sweep survived under its identity: same sweep ID, same
	// grid-ordered job IDs, replicated — not recomputed — by the standby.
	var after sweepProgress
	if code, err := getJSON(sbURL, "/sweeps/"+submitted.ID, &after); err != nil || code != http.StatusOK {
		t.Fatalf("promoted standby GET /sweeps/%s = %d, %v", submitted.ID, code, err)
	}
	if len(after.Jobs) != len(originalIDs) {
		t.Fatalf("promoted sweep has %d jobs, want %d", len(after.Jobs), len(originalIDs))
	}
	for i, id := range originalIDs {
		if after.Jobs[i] != id {
			t.Fatalf("job ID %d drifted across failover: %s -> %s", i, id, after.Jobs[i])
		}
	}

	// The standby finishes the sweep and streams the reassembled document.
	var doc string
	poll("promoted standby to finish the sweep", func() bool {
		resp, err := http.Get(sbURL + "/sweeps/" + submitted.ID + "/result")
		if err != nil {
			return false
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		doc = string(body)
		return true
	})

	// Byte-identical to a clean in-process run of the same sweep.
	sched := lab.NewScheduler(lab.Config{Workers: 2})
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		sched.Shutdown(sctx)
	}()
	var sw lab.Sweep
	if err := json.Unmarshal([]byte(sweepBody), &sw); err != nil {
		t.Fatal(err)
	}
	refJobs, err := sched.SubmitSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range refJobs {
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := lab.AssembleSweep(refJobs)
	if err != nil {
		t.Fatal(err)
	}
	if doc != want {
		t.Errorf("failover sweep document diverges from in-process run (%d vs %d bytes)", len(doc), len(want))
	}

	// The takeover left its structured trail.
	if b, err := os.ReadFile(sbLog); err == nil {
		if !strings.Contains(string(b), "replica: takeover") {
			t.Error("standby log has no replica: takeover line despite a promotion")
		}
	}

	// SIGTERM drains the promoted coordinator cleanly.
	if err := sb.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := sb.cmd.Wait(); err != nil {
		t.Errorf("promoted standby clean shutdown exited non-zero: %v", err)
	}
	sbDone = true
}
