// Cross-partition identity: the partitioned engine's contract is that the
// partition count trades wall-clock time and nothing else. These tests pin
// it at the level users see — registered experiments — complementing the
// engine-level invariance suite in internal/sim and the reference-model
// suite in internal/machine: every partitionable experiment must print a
// byte-identical table and walk a bit-identical trajectory at 1, 2, 4, and
// 8 partitions, including with one OS processor (the graceful-degradation
// path, where windows execute sequentially).
package main

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// partitionedRun executes one experiment at quick scale with its machines
// raised to the given partition count, returning the printed table and the
// trajectory fingerprint.
func partitionedRun(t *testing.T, e core.Experiment, parts int) (table, fingerprint string) {
	t.Helper()
	transform := core.Spec{Partitions: parts}.ConfigTransform()
	var engines []*sim.Engine
	release := machine.ScopeHooks(transform, func(m *machine.Machine) {
		engines = append(engines, m.E)
	})
	defer release()
	var buf bytes.Buffer
	if err := e.Run(&buf, true); err != nil {
		t.Fatalf("experiment %s at %d partitions: %v", e.ID, parts, err)
	}
	var vtime int64
	var events, exchanges uint64
	for _, eng := range engines {
		st := eng.Stats()
		vtime += eng.Now()
		events += st.Events
		exchanges += st.Exchanges
	}
	return buf.String(), fmt.Sprintf("machines=%d vtime=%d events=%d exchanges=%d",
		len(engines), vtime, events, exchanges)
}

// TestPartitionableExperimentsExist guards the registry wiring: the byte-
// identity suite below must never silently become a no-op.
func TestPartitionableExperimentsExist(t *testing.T) {
	for _, e := range core.Experiments() {
		if e.Partitionable {
			return
		}
	}
	t.Fatal("no partitionable experiments registered")
}

// TestPartitionCountByteIdentity is the user-facing determinism oracle for
// the partitioned engine: same table bytes, same trajectory, at every
// partition count.
func TestPartitionCountByteIdentity(t *testing.T) {
	for _, e := range core.Experiments() {
		if !e.Partitionable {
			continue
		}
		refTable, refFP := partitionedRun(t, e, 1)
		for _, parts := range []int{2, 4, 8} {
			table, fp := partitionedRun(t, e, parts)
			if table != refTable {
				t.Errorf("%s: table at %d partitions differs from the 1-partition reference", e.ID, parts)
			}
			if fp != refFP {
				t.Errorf("%s: trajectory at %d partitions: %s, want %s", e.ID, parts, fp, refFP)
			}
		}
	}
}

// TestPartitionedExperimentsGOMAXPROCS1 pins graceful degradation end to
// end: with one OS processor the coordinator runs each window's partitions
// sequentially, and experiments still produce the multi-core results.
func TestPartitionedExperimentsGOMAXPROCS1(t *testing.T) {
	for _, e := range core.Experiments() {
		if !e.Partitionable {
			continue
		}
		refTable, refFP := partitionedRun(t, e, 4)
		prev := runtime.GOMAXPROCS(1)
		table, fp := partitionedRun(t, e, 4)
		runtime.GOMAXPROCS(prev)
		if table != refTable || fp != refFP {
			t.Errorf("%s: GOMAXPROCS=1 run differs: %s, want %s", e.ID, fp, refFP)
		}
	}
}
