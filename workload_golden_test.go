// Golden SLO-report regression: the `service` experiment, run at quick
// scale under a fixed workload directive, must reproduce its full per-window
// SLO report byte-for-byte — every histogram quantile, every verdict, every
// queue-depth sample. This is the workload subsystem's determinism contract
// stated at its strongest: not just matching fingerprints, but the literal
// report a user would read, identical across runs, with probes attached, and
// under -race.
//
// Regenerate after an intentional model change with:
//
//	go test -run TestWorkloadReportGolden -update .
package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/workload"
)

// workloadGoldenDirectives is the pinned traffic config: bursty arrivals so
// the stream exercises the MMPP generator, detail so the report includes the
// per-window verdict table.
const workloadGoldenDirectives = "pattern bursty; rate 1200; burst-rate 4800; seed 11; detail"

// serviceReport runs the `service` experiment at quick scale under the
// pinned workload directive and returns the full report bytes. When probed
// is non-nil every machine gets an observability probe attached.
func serviceReport(t *testing.T, probed *probe.Counter) []byte {
	t.Helper()
	e, ok := core.Lookup("service")
	if !ok {
		t.Fatal("service experiment not registered")
	}
	release := workload.Scope(workloadGoldenDirectives)
	defer release()
	var hooksRelease func()
	if probed != nil {
		hooksRelease = machine.ScopeHooks(nil, func(m *machine.Machine) {
			m.AttachProbe(probe.New(probed))
		})
		defer hooksRelease()
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, true); err != nil {
		t.Fatalf("service: %v", err)
	}
	return buf.Bytes()
}

func TestWorkloadReportGolden(t *testing.T) {
	got := serviceReport(t, nil)

	path := filepath.Join("testdata", "slo_service.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test -run TestWorkloadReportGolden -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SLO report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Same spec, same seed, second run: byte-identical.
	if again := serviceReport(t, nil); !bytes.Equal(again, got) {
		t.Errorf("second run produced a different report:\n--- run2 ---\n%s", again)
	}

	// Probes attached: still byte-identical (observation must not perturb),
	// and the probe must actually have seen traffic.
	var c probe.Counter
	if probed := serviceReport(t, &c); !bytes.Equal(probed, got) {
		t.Errorf("probed run produced a different report:\n--- probed ---\n%s", probed)
	}
	if c.Total() == 0 {
		t.Error("probe recorded no events during the workload run")
	}
}
