// Package fault is a deterministic, schedule-driven fault injector for the
// simulated Butterfly. It mirrors internal/probe's integration style: the
// machine layer holds a nil-checked pointer, attached via
// machine.AttachFaults, and every hot-path check is a single pointer test
// when no injector is present.
//
// Three fault classes are modelled, matching the operating reality of the
// real 128-node Butterfly-I (dead nodes configured out by operators, switch
// packets dropped on collision and recovered by PNC retry with randomized
// backoff, and memory parity errors surfacing as Chrysalis exceptions):
//
//   - Node failures at a scheduled virtual time: the node's memory module
//     starts rejecting references and its processes are killed.
//   - Transient switch-packet drops, recovered by bounded randomized
//     retry/backoff; a reference whose retries are exhausted fails.
//   - Memory-module parity errors on individual references.
//
// All randomness is drawn from a single seeded rand.PCG stream in simulation
// dispatch order, so a given (seed, schedule, workload) triple yields a
// bit-identical event sequence — the determinism the golden suite pins.
//
// Failed references surface as a *RefError panic, the software analogue of a
// hardware trap: it implements sim.Terminator, so an unhandled one
// terminates only the raising process. chrysalis.Catch converts RefError
// into a catchable *ThrowError; non-Chrysalis code can use CatchRef.
package fault

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"strconv"
	"strings"

	"butterfly/internal/sim"
)

// Kind classifies a reference failure.
type Kind uint8

const (
	// NodeDown: the reference targeted a failed node. Permanent.
	NodeDown Kind = iota
	// PacketLoss: the switch dropped the packet and PNC retry was exhausted.
	PacketLoss
	// Parity: the memory module returned a parity error. Transient.
	Parity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case PacketLoss:
		return "packet-loss"
	case Parity:
		return "parity"
	}
	return "unknown"
}

// RefError is the panic value raised when a memory reference fails. It
// implements error and sim.Terminator: a process that does not catch it (via
// chrysalis.Catch or CatchRef) is terminated, the rest of the simulation
// continues.
type RefError struct {
	Kind Kind  // what failed
	Node int   // the node whose memory was targeted
	Time int64 // virtual time of the failure
}

// Error implements the error interface.
func (e *RefError) Error() string {
	return fmt.Sprintf("fault: %s on node %d at t=%dns", e.Kind, e.Node, e.Time)
}

// TerminatesProcess implements sim.Terminator: an uncaught reference fault
// kills only the process that issued the reference.
func (e *RefError) TerminatesProcess() bool { return true }

// CatchRef converts a *RefError panic into an error return. Use as
//
//	func remoteWork() (err error) {
//	    defer fault.CatchRef(&err)
//	    ... remote references ...
//	}
//
// Other panic values propagate unchanged.
func CatchRef(errp *error) {
	switch r := recover().(type) {
	case nil:
	case *RefError:
		*errp = r
	default:
		panic(r)
	}
}

// NodeFailure schedules one node death at a virtual time.
type NodeFailure struct {
	Node int   // node to kill
	At   int64 // virtual time (ns) at which it dies
}

// Config is a complete fault schedule plus the knobs of the retry model.
type Config struct {
	// Seed initialises the PCG stream all probabilistic draws come from.
	Seed uint64
	// Failures lists scheduled node deaths (any order; applied by time).
	Failures []NodeFailure
	// DropProb is the per-reference probability that the switch drops the
	// packet (each retry is a fresh draw). Zero disables drops.
	DropProb float64
	// ParityProb is the per-reference probability of a memory parity error.
	// Zero disables parity faults.
	ParityProb float64
	// MaxRetries bounds PNC retransmissions of a dropped packet before the
	// reference fails with PacketLoss. Defaults to DefaultMaxRetries.
	MaxRetries int
	// BackoffNs is the base randomized-backoff unit between retries.
	// Defaults to DefaultBackoffNs.
	BackoffNs int64
}

// Defaults for the retry model, loosely matching the PNC's bounded
// exponential backoff.
const (
	DefaultMaxRetries = 8
	DefaultBackoffNs  = 10 * sim.Microsecond
)

// normalize fills zero-valued knobs with their defaults.
func (c *Config) normalize() {
	if c.MaxRetries <= 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.BackoffNs <= 0 {
		c.BackoffNs = DefaultBackoffNs
	}
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	return c != nil && (len(c.Failures) > 0 || c.DropProb > 0 || c.ParityProb > 0)
}

// ParseConfig parses a fault schedule from a -faults flag value. A spec
// starting with '@' names a file to read; otherwise the spec itself is the
// schedule. The format is line-oriented (';' also separates directives, '#'
// starts a comment):
//
//	seed N            # PCG seed (the -fault-seed flag overrides)
//	kill NODE @ TIME  # node NODE dies at virtual time TIME (e.g. 20ms)
//	drop P            # per-reference packet-drop probability
//	parity P          # per-reference parity-error probability
//	retries N         # max PNC retransmissions before a reference fails
//	backoff DUR       # base randomized-backoff unit (e.g. 10us)
//
// Durations accept ns, us, ms and s suffixes (bare numbers are nanoseconds).
func ParseConfig(spec string) (*Config, error) {
	if strings.HasPrefix(spec, "@") {
		b, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("fault schedule: %w", err)
		}
		spec = string(b)
	}
	cfg := &Config{Seed: 1}
	split := func(r rune) bool { return r == ';' || r == '\n' || r == '\r' }
	for _, line := range strings.FieldsFunc(spec, split) {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "seed":
			err = expectArgs(fields, 1, func() error {
				v, e := strconv.ParseUint(fields[1], 10, 64)
				cfg.Seed = v
				return e
			})
		case "kill":
			// "kill N @ DUR" or "kill N DUR"
			args := fields[1:]
			if len(args) == 3 && args[1] == "@" {
				args = []string{args[0], args[2]}
			}
			if len(args) != 2 {
				err = fmt.Errorf("want `kill NODE @ TIME`")
				break
			}
			node, e1 := strconv.Atoi(args[0])
			at, e2 := parseDuration(args[1])
			if e1 != nil {
				err = e1
			} else if e2 != nil {
				err = e2
			} else if node < 0 {
				err = fmt.Errorf("negative node %d", node)
			} else {
				cfg.Failures = append(cfg.Failures, NodeFailure{Node: node, At: at})
			}
		case "drop":
			err = expectArgs(fields, 1, func() error {
				v, e := parseProb(fields[1])
				cfg.DropProb = v
				return e
			})
		case "parity":
			err = expectArgs(fields, 1, func() error {
				v, e := parseProb(fields[1])
				cfg.ParityProb = v
				return e
			})
		case "retries":
			err = expectArgs(fields, 1, func() error {
				v, e := strconv.Atoi(fields[1])
				cfg.MaxRetries = v
				return e
			})
		case "backoff":
			err = expectArgs(fields, 1, func() error {
				v, e := parseDuration(fields[1])
				cfg.BackoffNs = v
				return e
			})
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("fault schedule: %q: %v", strings.TrimSpace(line), err)
		}
	}
	cfg.normalize()
	return cfg, nil
}

func expectArgs(fields []string, n int, apply func() error) error {
	if len(fields) != n+1 {
		return fmt.Errorf("want %d argument(s), got %d", n, len(fields)-1)
	}
	return apply()
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", v)
	}
	return v, nil
}

// parseDuration parses a virtual-time duration with an optional ns/us/ms/s
// suffix; a bare number is nanoseconds.
func parseDuration(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s, mult = s[:len(s)-2], sim.Nanosecond
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], sim.Millisecond
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], sim.Second
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return int64(v * float64(mult)), nil
}

// Stats counts injected faults, for reports and tests.
type Stats struct {
	NodesFailed  int    // scheduled node deaths executed
	Drops        uint64 // packets dropped (each retry that happened)
	Retransmits  uint64 // successful retransmissions after a drop
	DropFailures uint64 // references that exhausted MaxRetries
	ParityErrors uint64 // parity faults raised
}

// Injector holds the runtime state of one machine's fault schedule. Create
// with NewInjector and attach with machine.AttachFaults; all methods are
// called from simulation context (one process at a time), never concurrently.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	deadAt []int64 // per node: virtual time of death, MaxInt64 while alive
	stats  Stats
	bound  bool
}

// NewInjector creates an injector for the given schedule. The config is
// copied; zero-valued retry knobs get defaults.
func NewInjector(cfg Config) *Injector {
	cfg.normalize()
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xb0))}
}

// Config returns the injector's (normalized) schedule.
func (f *Injector) Config() Config { return f.cfg }

// Stats returns a copy of the fault counters.
func (f *Injector) Stats() Stats { return f.stats }

// Bind arms the injector on an engine modelling a machine with the given
// node count: it spawns a daemon process (on node 0, which must never be in
// the kill schedule) that executes each scheduled node failure at its
// virtual time — marking the node dead, invoking onDeath (the machine layer
// fails the node's memory module there), and killing every process bound to
// the node. Bind panics if called twice or if the schedule kills node 0.
func (f *Injector) Bind(e *sim.Engine, nodes int, onDeath func(node int)) {
	if f.bound {
		panic("fault: Injector bound twice")
	}
	f.bound = true
	f.deadAt = make([]int64, nodes)
	for i := range f.deadAt {
		f.deadAt[i] = math.MaxInt64
	}
	failures := make([]NodeFailure, 0, len(f.cfg.Failures))
	for _, nf := range f.cfg.Failures {
		if nf.Node == 0 {
			panic("fault: schedule kills node 0 (the daemon node)")
		}
		if nf.Node >= nodes {
			continue // schedule written for a bigger machine; ignore
		}
		failures = append(failures, nf)
	}
	sort.SliceStable(failures, func(i, j int) bool {
		if failures[i].At != failures[j].At {
			return failures[i].At < failures[j].At
		}
		return failures[i].Node < failures[j].Node
	})
	if len(failures) == 0 {
		return
	}
	e.Spawn("fault-daemon", 0, func(p *sim.Proc) {
		for _, nf := range failures {
			if d := nf.At - p.LocalNow(); d > 0 {
				p.Advance(d)
			}
			f.failNode(e, nf.Node, onDeath)
		}
	})
}

// failNode executes one node death: marks the node's memory dead, notifies
// the machine layer, and kills every live process bound to the node.
func (f *Injector) failNode(e *sim.Engine, node int, onDeath func(int)) {
	if f.deadAt[node] != math.MaxInt64 {
		return // already dead
	}
	f.deadAt[node] = e.Now()
	f.stats.NodesFailed++
	if onDeath != nil {
		onDeath(node)
	}
	for _, p := range e.Procs() {
		if p.Node == node && !p.Done() && p != e.Running() {
			e.Kill(p)
		}
	}
	if pr := e.Probe(); pr != nil {
		pr.Fault(e.Now(), -1, node, "node-down")
	}
}

// NodeDead reports whether node is dead at virtual time now.
func (f *Injector) NodeDead(node int, now int64) bool {
	return f.deadAt != nil && now >= f.deadAt[node]
}

// DropsEnabled reports whether packet-drop injection is active.
func (f *Injector) DropsEnabled() bool { return f.cfg.DropProb > 0 }

// ParityEnabled reports whether parity-error injection is active.
func (f *Injector) ParityEnabled() bool { return f.cfg.ParityProb > 0 }

// PacketAttempts draws the fate of one switch transaction. It returns the
// extra virtual time consumed by retransmissions and backoff, the total
// number of send attempts, and whether the transaction ultimately got
// through (ok=false means MaxRetries were exhausted: raise PacketLoss).
// Backoff is bounded-exponential with a randomized term, after the PNC.
func (f *Injector) PacketAttempts() (extraNs int64, attempts int, ok bool) {
	attempts = 1
	for f.rng.Float64() < f.cfg.DropProb {
		f.stats.Drops++
		if attempts > f.cfg.MaxRetries {
			f.stats.DropFailures++
			return extraNs, attempts, false
		}
		shift := attempts - 1
		if shift > 8 {
			shift = 8
		}
		extraNs += f.cfg.BackoffNs<<shift + f.rng.Int64N(f.cfg.BackoffNs)
		attempts++
		f.stats.Retransmits++
	}
	return extraNs, attempts, true
}

// ParityHit draws whether one memory reference suffers a parity error.
func (f *Injector) ParityHit() bool {
	if f.rng.Float64() < f.cfg.ParityProb {
		f.stats.ParityErrors++
		return true
	}
	return false
}

// ambient is the process-wide fault schedule installed by the -faults flag;
// the benchmark driver attaches a fresh injector per machine from it.
var ambient *Config

// SetAmbient installs (or, with nil, clears) the process-wide fault config.
func SetAmbient(c *Config) { ambient = c }

// Ambient returns the process-wide fault config, or nil.
func Ambient() *Config { return ambient }
