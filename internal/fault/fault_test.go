package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"butterfly/internal/sim"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("seed 7; drop 0.001; parity 0.0001; retries 4; backoff 20us; kill 5 @ 10ms; kill 9 2000000")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DropProb != 0.001 || cfg.ParityProb != 0.0001 {
		t.Errorf("probabilistic knobs wrong: %+v", cfg)
	}
	if cfg.MaxRetries != 4 || cfg.BackoffNs != 20*sim.Microsecond {
		t.Errorf("retry knobs wrong: %+v", cfg)
	}
	want := []NodeFailure{{Node: 5, At: 10 * sim.Millisecond}, {Node: 9, At: 2 * sim.Millisecond}}
	if len(cfg.Failures) != len(want) {
		t.Fatalf("failures = %v, want %v", cfg.Failures, want)
	}
	for i := range want {
		if cfg.Failures[i] != want[i] {
			t.Errorf("failure[%d] = %v, want %v", i, cfg.Failures[i], want[i])
		}
	}
}

func TestParseConfigCommentsAndNewlines(t *testing.T) {
	cfg, err := ParseConfig("# a whole-line comment\nkill 3 @ 1ms # trailing comment\n\ndrop 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Failures) != 1 || cfg.Failures[0] != (NodeFailure{Node: 3, At: sim.Millisecond}) {
		t.Errorf("failures = %v", cfg.Failures)
	}
	if cfg.DropProb != 0.5 {
		t.Errorf("drop = %v, want 0.5", cfg.DropProb)
	}
}

func TestParseConfigFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.txt")
	if err := os.WriteFile(path, []byte("seed 42\nkill 2 @ 5ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || len(cfg.Failures) != 1 {
		t.Errorf("parsed %+v", cfg)
	}
}

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig("drop 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxRetries != DefaultMaxRetries || cfg.BackoffNs != DefaultBackoffNs {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Error("config with drops should be Enabled")
	}
	empty, err := ParseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() {
		t.Error("empty config must not be Enabled")
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, spec := range []string{
		"drop 1.5",                    // probability out of range
		"drop -0.1",                   // negative probability
		"kill -3 @ 1ms",               // negative node
		"kill 3 @ -1ms",               // negative time
		"kill 3",                      // missing time
		"backoff 10parsecs",           // bad unit
		"frobnicate 1",                // unknown directive
		"@/nonexistent/schedule/file", // unreadable file
	} {
		if _, err := ParseConfig(spec); err == nil {
			t.Errorf("ParseConfig(%q) accepted an invalid spec", spec)
		}
	}
}

// TestPacketAttemptsDeterminism pins the core reproducibility property: two
// injectors with the same seed draw bit-identical fault sequences.
func TestPacketAttemptsDeterminism(t *testing.T) {
	cfg := Config{Seed: 123, DropProb: 0.4}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 10_000; i++ {
		ea, aa, oka := a.PacketAttempts()
		eb, ab, okb := b.PacketAttempts()
		if ea != eb || aa != ab || oka != okb {
			t.Fatalf("draw %d diverged: (%d,%d,%v) vs (%d,%d,%v)", i, ea, aa, oka, eb, ab, okb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Drops == 0 || a.Stats().Retransmits == 0 {
		t.Errorf("0.4 drop probability over 10k draws produced no activity: %+v", a.Stats())
	}
}

func TestPacketAttemptsBoundedRetries(t *testing.T) {
	// DropProb 1: every attempt drops, so every transaction must exhaust
	// MaxRetries and fail — never loop forever.
	inj := NewInjector(Config{Seed: 1, DropProb: 1, MaxRetries: 3})
	extra, attempts, ok := inj.PacketAttempts()
	if ok {
		t.Error("guaranteed-drop transaction reported success")
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want MaxRetries+1 = 4", attempts)
	}
	if extra <= 0 {
		t.Error("retransmissions consumed no time")
	}
	if inj.Stats().DropFailures != 1 {
		t.Errorf("DropFailures = %d, want 1", inj.Stats().DropFailures)
	}
}

func TestBindKillsScheduledNodes(t *testing.T) {
	e := sim.New()
	inj := NewInjector(Config{Failures: []NodeFailure{
		{Node: 2, At: 100},
		{Node: 1, At: 300},
	}})
	var died []int
	inj.Bind(e, 4, func(node int) { died = append(died, node) })

	var victimLast, survivorLast int64
	victim := e.Spawn("victim", 2, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(10)
			victimLast = p.LocalNow()
		}
	})
	e.Spawn("survivor", 3, func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			p.Advance(10)
			survivorLast = p.LocalNow()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(died) != 2 || died[0] != 2 || died[1] != 1 {
		t.Errorf("onDeath order = %v, want [2 1] (time order, not schedule order)", died)
	}
	if !victim.Done() || !victim.Killed() {
		t.Error("proc on failed node not killed")
	}
	if victimLast > 100 {
		t.Errorf("victim advanced to %d, past its node's death at 100", victimLast)
	}
	if survivorLast != 500 {
		t.Errorf("survivor stopped at %d, want 500", survivorLast)
	}
	if !inj.NodeDead(2, 100) || inj.NodeDead(2, 99) {
		t.Error("NodeDead wrong around the death instant")
	}
	if inj.NodeDead(3, 1<<40) {
		t.Error("NodeDead true for a node never scheduled to die")
	}
	if inj.Stats().NodesFailed != 2 {
		t.Errorf("NodesFailed = %d, want 2", inj.Stats().NodesFailed)
	}
}

func TestBindPanicsOnNodeZeroKill(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bind accepted a schedule that kills node 0")
		}
	}()
	NewInjector(Config{Failures: []NodeFailure{{Node: 0, At: 1}}}).Bind(sim.New(), 4, nil)
}

func TestBindIgnoresOutOfRangeNodes(t *testing.T) {
	e := sim.New()
	inj := NewInjector(Config{Failures: []NodeFailure{{Node: 100, At: 50}}})
	inj.Bind(e, 4, func(int) { t.Error("onDeath called for a node outside the machine") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if inj.Stats().NodesFailed != 0 {
		t.Error("out-of-range failure executed")
	}
}

func TestCatchRef(t *testing.T) {
	fire := func() (err error) {
		defer CatchRef(&err)
		panic(&RefError{Kind: NodeDown, Node: 3, Time: 42})
	}
	err := fire()
	var re *RefError
	if !errors.As(err, &re) || re.Kind != NodeDown || re.Node != 3 {
		t.Fatalf("CatchRef returned %v", err)
	}
	clean := func() (err error) {
		defer CatchRef(&err)
		return nil
	}
	if err := clean(); err != nil {
		t.Errorf("CatchRef invented an error: %v", err)
	}
	// Non-RefError panics must pass through untouched.
	other := func() (err error) {
		defer func() {
			if recover() == nil {
				t.Error("CatchRef swallowed a foreign panic")
			}
		}()
		defer CatchRef(&err)
		panic("unrelated")
	}
	_ = other()
}

func TestRefErrorTerminatesProcess(t *testing.T) {
	var _ sim.Terminator = (*RefError)(nil)
	if !(&RefError{}).TerminatesProcess() {
		t.Error("RefError must terminate the raising process when uncaught")
	}
}
