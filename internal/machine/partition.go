package machine

// Partitioned-machine reference paths.
//
// On a partitioned machine (Config.Partitions > 0) every reference that
// leaves the issuing process's node is serviced at the window barrier via
// sim.Proc.Exchange: the process parks, and the reservation math below runs
// on the engine's coordinator while all partitions are quiescent, so it may
// touch any node's memory-module calendar and any switch-port calendar
// without synchronization. Routing is by node, not by partition — an
// off-node reference that happens to target the caller's own partition still
// goes through the exchange — so the simulated timeline is independent of
// how nodes are grouped into partitions.
//
// The formulas mirror the classic paths in machine.go exactly (same
// overheads, same transit and module-service sequence); only the issue
// mechanism differs. Fault injection is rejected on partitioned machines, so
// these paths carry no fault draws.

import (
	"butterfly/internal/calendar"
	"butterfly/internal/memory"
	"butterfly/internal/sim"
)

// sweepScratch is the reusable buffer set of one Sweep call site: the
// modules with an open placement batch, the per-ref module resolution, and
// the merge scratch their commits share.
type sweepScratch struct {
	mods    []*memory.Module
	refMods []*memory.Module
	commit  calendar.Scratch
}

// exchangeAccess services a word-at-a-time off-node read/write at the
// window barrier (the partitioned counterpart of the classic remote branch
// of access).
func (m *Machine) exchangeAccess(p *sim.Proc, n *Node, words int) {
	p.Exchange(func(now int64) int64 {
		m.stats.RemoteRefs += uint64(words)
		if m.Cfg.NoSwitchContention {
			gap := m.Cfg.PNCOverheadNs + 2*m.wordTransit
			done := n.Mem.ServiceRun(now+m.Cfg.PNCOverheadNs+m.wordTransit, words, gap, false)
			return done + m.wordTransit
		}
		t := now
		for w := 0; w < words; w++ {
			t += m.Cfg.PNCOverheadNs
			t = m.transit(t, p.Node, n.ID, wordBytes)
			_, t = n.Mem.Service(t, 1, false)
			t = m.transit(t, n.ID, p.Node, wordBytes)
		}
		return t
	})
}

// exchangeBlockCopy services a block transfer with an off-node endpoint at
// the window barrier.
func (m *Machine) exchangeBlockCopy(p *sim.Proc, sn, dn *Node, words int) {
	p.Exchange(func(now int64) int64 {
		m.stats.BlockCopies++
		t := now + m.Cfg.PNCOverheadNs
		if sn == dn {
			_, t = sn.Mem.Service(t, 2*words, sn.ID == p.Node)
			return t
		}
		sStart, sDone := sn.Mem.Service(t, words, sn.ID == p.Node)
		nDone := m.transit(sStart, sn.ID, dn.ID, words*wordBytes)
		if nDone < sDone {
			nDone = sDone
		}
		_, dDone := dn.Mem.Service(nDone-int64(words)*dn.Mem.CycleNs, words, dn.ID == p.Node)
		if dDone < nDone {
			dDone = nDone
		}
		return dDone
	})
}

// exchangeAtomic services an off-node atomic read-modify-write at the
// window barrier. The returned-value contract of Atomic is unchanged: the
// caller performs the data operation itself, which stays safe because all
// processes referencing the word serialize through the coordinator. On a
// combining machine the barrier services exchanges in deterministic
// (issue time, process) order, so the combining layer sees the same request
// sequence at every partition count.
func (m *Machine) exchangeAtomic(p *sim.Proc, n *Node, word int) {
	p.Exchange(func(now int64) int64 {
		m.stats.AtomicOps++
		if m.comb != nil {
			return m.comb.FetchAdd(now+m.Cfg.PNCOverheadNs, p.Node, n.ID, word, func(arrive int64) int64 {
				_, d := n.Mem.Service(arrive, 2, false)
				return d
			})
		}
		t := now + m.Cfg.PNCOverheadNs
		t = m.transit(t, p.Node, n.ID, wordBytes)
		_, t = n.Mem.Service(t, 2, false)
		return m.transit(t, n.ID, p.Node, wordBytes)
	})
}

// exchangeMicrocode services an off-node PNC-microcoded operation at the
// window barrier.
func (m *Machine) exchangeMicrocode(p *sim.Proc, n *Node, words int) {
	p.Exchange(func(now int64) int64 {
		t := now + m.Cfg.PNCOverheadNs
		t = m.transit(t, p.Node, n.ID, wordBytes)
		_, t = n.Mem.Service(t, words, false)
		return m.transit(t, n.ID, p.Node, wordBytes)
	})
}

// partitionedSweep is Sweep on a partitioned machine: a sweep touching only
// the caller's own node books directly during the window (on the caller's
// partition-private scratch); a sweep with any off-node reference runs
// whole at the window barrier, preserving the single-pass batched placement.
func (m *Machine) partitionedSweep(p *sim.Proc, items int, computeNs int64, refs []Ref) {
	allLocal := true
	for _, r := range refs {
		if r.Node != p.Node {
			allLocal = false
			break
		}
	}
	if allLocal {
		now := p.Now()
		end := m.sweepBook(now, p.Node, items, computeNs, refs, &m.scr[m.pid(p.Node)], m.statsFor(p))
		p.Charge(end - now)
		return
	}
	p.Exchange(func(now int64) int64 {
		return m.sweepBook(now, p.Node, items, computeNs, refs, &m.xscr, &m.stats)
	})
}

// sweepBook books the module (and switch-port) occupancy of a sweep
// starting at start, issued from home, and returns its completion time. It
// is the fault-free core of the classic Sweep loop, shared by the in-window
// local path and the barrier-time exchange path.
func (m *Machine) sweepBook(start int64, home int, items int, computeNs int64, refs []Ref, scr *sweepScratch, st *Stats) int64 {
	t := start
	fixedNet := m.Cfg.NoSwitchContention
	gap := m.Cfg.PNCOverheadNs + 2*m.wordTransit
	lead := m.Cfg.PNCOverheadNs + m.wordTransit
	mods := scr.refMods[:0]
	for _, r := range refs {
		mod := m.node(r.Node).Mem
		mods = append(mods, mod)
		if r.Words > 0 && !mod.InBatch() {
			mod.BeginBatch()
			scr.mods = append(scr.mods, mod)
		}
	}
	scr.refMods = mods
	for it := 0; it < items; it++ {
		t += computeNs
		for j, r := range refs {
			words := r.Words
			if words <= 0 {
				continue
			}
			mod := mods[j]
			switch {
			case r.Node == home:
				st.LocalRefs++
				_, t = mod.ServiceBatch(t+m.Cfg.LocalOverheadNs, words, true)
			case fixedNet:
				st.RemoteRefs += uint64(words)
				t = mod.ServiceRunBatch(t+lead, words, gap, false) + m.wordTransit
			default:
				st.RemoteRefs += uint64(words)
				for w := 0; w < words; w++ {
					t += m.Cfg.PNCOverheadNs
					t = m.transit(t, home, r.Node, wordBytes)
					_, t = mod.ServiceBatch(t, 1, false)
					t = m.transit(t, r.Node, home, wordBytes)
				}
			}
		}
	}
	for _, mod := range scr.mods {
		mod.CommitBatchScratch(&scr.commit)
	}
	scr.mods = scr.mods[:0]
	return t
}
