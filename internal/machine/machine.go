// Package machine assembles the Butterfly Parallel Processor model: N
// processing nodes (8 MHz MC68000 plus PNC co-processor and local memory)
// connected by the multistage switching network. It provides the typed,
// time-charging access API every higher layer uses: local and remote word
// references, block transfers, atomic read-modify-write operations, and
// integer/floating-point compute charges.
//
// Calibration follows §2.1 of the paper: a remote read takes about 4 µs,
// roughly five times a local reference; remote references steal memory cycles
// from the local processor; block transfers stream through the switch at the
// 32 Mbit/s port rate.
package machine

import (
	"fmt"

	"butterfly/internal/fault"
	"butterfly/internal/memory"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
)

// Config holds the machine's calibration parameters.
type Config struct {
	// Nodes is the number of processing nodes (up to 256 on the Butterfly).
	Nodes int
	// MemBytes is the per-node memory size (1 MB standard, 4 MB expanded).
	MemBytes int
	// MemCycleNs is the memory module service time per 32-bit word.
	MemCycleNs int64
	// LocalOverheadNs is the processor-side cost of a local reference in
	// addition to the memory cycle.
	LocalOverheadNs int64
	// PNCOverheadNs is the processor-node-controller cost added to every
	// remote reference (request formatting, microcode dispatch).
	PNCOverheadNs int64
	// IntOpNs is the cost of one integer operation (register arithmetic,
	// address computation) on the 8 MHz MC68000.
	IntOpNs int64
	// FlopNs is the cost of one floating-point operation. 25 µs (~40
	// kflops) models the Butterfly-I's software floating point; 4 µs models
	// the MC68881 daughter-board upgrade of 1986.
	FlopNs int64
	// Net configures the switching network; if zero-valued it is derived
	// from Nodes with switchnet.DefaultConfig. HopLatency and
	// BytesPerSecond describe the link technology; the selected Topology
	// derives its own geometry and per-hop timing from them.
	Net switchnet.Config
	// Topology selects the interconnect family (butterfly, fattree,
	// dragonfly, mesh). The zero value is the Butterfly's own multistage
	// network, so existing configurations are bit-for-bit unchanged.
	Topology switchnet.Topology
	// Combining equips the interconnect with combining fetch-and-add
	// switches (the NYU Ultracomputer design): concurrent Atomic
	// operations on the same word merge at shared switch links instead of
	// convoying into the destination memory module. Atomic traffic is
	// then always routed through the full link-reservation model — even
	// under NoSwitchContention, which keeps its shortcut for ordinary
	// references — because the combine decision lives in the switches.
	Combining bool
	// NoSwitchContention replaces per-packet switch-port reservation with
	// the fixed uncontended path latency. Experiment E6 (and Rettberg &
	// Thomas) established that switch contention is almost negligible, so
	// reference-heavy workloads (Figure 5's 10^8-word sweeps) can use this
	// much cheaper path; memory-module contention is always modelled.
	NoSwitchContention bool
	// Partitions, when > 0, builds the machine on a partitioned conservative
	// parallel-DES engine: the nodes are split into that many contiguous
	// groups, each simulated by its own event queue, with every off-node
	// reference routed through a window-boundary exchange (see
	// sim.EnablePartitions). Results are bit-identical for every partition
	// count, including 1 — the sequential reference. Partitioned machines
	// require partition-safe experiment code (all processes spawned before
	// Run, no cross-node wait-queue wakes, no shared Go state between
	// processes on different nodes) and do not support fault injection.
	// 0 keeps the classic strictly-sequential engine.
	Partitions int
}

// DefaultConfig returns the Butterfly-I calibration for n nodes (software
// floating point, 1 MB memories).
func DefaultConfig(n int) Config {
	return Config{
		Nodes:    n,
		MemBytes: 1 << 20,
		// The MC68000 has a 16-bit data bus: a 32-bit word costs two memory
		// cycles of ~500 ns.
		MemCycleNs:      1000,
		LocalOverheadNs: 100,
		PNCOverheadNs:   400,
		IntOpNs:         500,
		FlopNs:          25_000,
		Net:             switchnet.DefaultConfig(n),
	}
}

// HardwareFloatConfig returns the calibration for nodes upgraded with the
// MC68020/MC68881 daughter board (the department's 16-node floating-point
// machine in §2.1).
func HardwareFloatConfig(n int) Config {
	c := DefaultConfig(n)
	c.FlopNs = 4_000
	return c
}

// Node is one processing node: processor, PNC state, memory module, SAR pool.
type Node struct {
	ID   int
	Mem  *memory.Module
	SARs *memory.SARPool
}

// Machine is the assembled Butterfly.
type Machine struct {
	E     *sim.Engine
	Net   switchnet.Interconnect
	Nodes []*Node
	Cfg   Config

	// comb, when non-nil, is the combining fetch-and-add layer over Net's
	// link calendars; Atomic traffic routes through it (Config.Combining).
	comb *switchnet.Combining

	stats     Stats
	lastPrune int64
	// parts is the partition count (0 = classic sequential engine). On a
	// partitioned machine pstats shards the in-window reference counters by
	// partition (barrier-time exchange work accounts into stats, which only
	// the coordinator touches).
	parts  int
	pstats []Stats
	// wordTransit caches the uncontended end-to-end network time for a
	// one-word packet — the constant added twice per word on the
	// NoSwitchContention remote path.
	wordTransit int64
	// scr holds Sweep's placement-batch scratch: the modules with an open
	// batch, the per-ref module resolution, and the merge buffer the batch
	// commits share. Classic machines use scr[0]; partitioned machines keep
	// one per partition (sweeps on different partitions run concurrently)
	// plus xscr for the coordinator's barrier-time exchange sweeps.
	scr  []sweepScratch
	xscr sweepScratch

	// probe, when non-nil, is the machine-wide observability probe, shared
	// with the engine, the network, and every memory module.
	probe *probe.Probe
	// faults, when non-nil, is the machine's fault injector: every reference
	// consults it for node deaths, packet drops, and parity errors. Like the
	// probe, absence costs each hot path one nil check.
	faults *fault.Injector
}

// AttachProbe threads an observability probe through every layer of the
// machine: the engine (dispatch/park/flush events), the switch network
// (port traversals), and each node's memory module (reference occupancy and
// queueing). Pass nil to detach. Probes are purely observational — virtual
// time, dispatch order, and all statistics are unaffected — and a detached
// probe costs each hot path one nil check.
func (m *Machine) AttachProbe(p *probe.Probe) {
	m.probe = p
	m.E.SetProbe(p)
	m.Net.SetProbe(p)
	for _, n := range m.Nodes {
		n.Mem.SetProbe(p)
	}
}

// Probe returns the attached probe, or nil. Layers above the machine
// (Chrysalis, the programming models) emit their events through it.
func (m *Machine) Probe() *probe.Probe { return m.probe }

// AttachFaults arms a fault injector on the machine: its schedule of node
// deaths is bound to the engine (a daemon process executes each one,
// marking the node's memory module failed and killing the node's
// processes), and every subsequent memory reference consults the injector
// for drop and parity fates. Attach at most once, before Run. A machine
// without an injector pays one nil check per reference and behaves exactly
// as before. Fault injection requires the classic sequential engine
// (node-death kills cut across partitions), so attaching to a partitioned
// machine panics.
func (m *Machine) AttachFaults(f *fault.Injector) {
	if m.faults != nil {
		panic("machine: AttachFaults called twice")
	}
	if m.parts > 0 && f != nil {
		panic("machine: fault injection requires an unpartitioned machine (Config.Partitions = 0)")
	}
	if f == nil {
		return
	}
	m.faults = f
	f.Bind(m.E, m.Cfg.Nodes, func(node int) {
		m.Nodes[node].Mem.SetFailed(true)
	})
}

// Faults returns the attached fault injector, or nil.
func (m *Machine) Faults() *fault.Injector { return m.faults }

// NodeFailed reports whether node is dead at the current virtual time.
// Runtime layers use it to route work away from failed nodes.
func (m *Machine) NodeFailed(node int) bool {
	return m.faults != nil && m.faults.NodeDead(node, m.E.Now())
}

// preFault guards a reference from p to node: a process whose own node has
// died exits immediately (its processor no longer runs), and a reference to
// a dead node raises NodeDown. Called only when an injector is attached.
func (m *Machine) preFault(p *sim.Proc, node int) {
	now := m.E.Now()
	if m.faults.NodeDead(p.Node, now) {
		p.Exit()
	}
	if m.faults.NodeDead(node, now) {
		m.raiseFault(p, node, fault.NodeDown)
	}
}

// raiseFault records the fault on the probe and panics the corresponding
// *fault.RefError — the simulated hardware trap. chrysalis.Catch converts it
// into a catchable ThrowError; an unhandled one terminates only p.
func (m *Machine) raiseFault(p *sim.Proc, node int, kind fault.Kind) {
	if pr := m.probe; pr != nil {
		pr.Fault(m.E.Now(), p.ID, node, kind.String())
	}
	panic(&fault.RefError{Kind: kind, Node: node, Time: m.E.Now()})
}

// refFault draws the fate of one reference burst against node: extraNs is
// retransmission backoff latency to charge, and failed reports that the
// burst ultimately failed with kind. remote bursts risk packet drops; all
// bursts risk parity errors. One drop draw covers the whole burst — drop
// recovery is per switch transaction, and modelling it per word would break
// the folded single-pass calendar paths for no observable gain.
func (m *Machine) refFault(node int, remote bool) (extraNs int64, kind fault.Kind, failed bool) {
	f := m.faults
	if remote && f.DropsEnabled() {
		extra, attempts, ok := f.PacketAttempts()
		extraNs += extra
		if attempts > 1 {
			m.Net.NoteDrops(attempts - 1)
		}
		if !ok {
			return extraNs, fault.PacketLoss, true
		}
	}
	if f.ParityEnabled() && f.ParityHit() {
		return extraNs, fault.Parity, true
	}
	return extraNs, 0, false
}

// chargeFaulty charges p for a reference of duration d to node, adding any
// injected retransmission latency and raising the drawn fault after the
// charge. Called only when an injector is attached.
func (m *Machine) chargeFaulty(p *sim.Proc, node int, remote bool, d int64) {
	extra, kind, failed := m.refFault(node, remote)
	p.Charge(d + extra)
	if failed {
		m.raiseFault(p, node, kind)
	}
}

// Stats aggregates machine-level reference counters.
type Stats struct {
	LocalRefs   uint64
	RemoteRefs  uint64
	BlockCopies uint64
	AtomicOps   uint64
}

// New builds a machine with the given configuration and a fresh simulation
// engine.
func New(cfg Config) *Machine {
	scope := currentScope()
	if scope != nil && scope.config != nil {
		cfg = scope.config(cfg)
	}
	if cfg.Nodes <= 0 {
		panic("machine: node count must be positive")
	}
	if cfg.Net.Nodes == 0 {
		cfg.Net = switchnet.DefaultConfig(cfg.Nodes)
	}
	if cfg.Partitions > cfg.Nodes {
		cfg.Partitions = cfg.Nodes
	}
	if _, err := switchnet.ParseTopology(string(cfg.Topology)); err != nil {
		panic("machine: " + err.Error())
	}
	m := &Machine{
		E:   sim.New(),
		Net: switchnet.Build(cfg.Topology, cfg.Net),
		Cfg: cfg,
	}
	if cfg.Combining {
		m.comb = switchnet.NewCombining(m.Net, switchnet.DefaultCombiningConfig())
	}
	if p := cfg.Partitions; p > 0 {
		// Contiguous node blocks: node n belongs to partition n*p/Nodes.
		// The mapping only affects wall-clock balance, never results —
		// off-node references go through the exchange path regardless of
		// whether they land in the caller's own partition.
		nodes := cfg.Nodes
		m.parts = p
		m.pstats = make([]Stats, p)
		m.scr = make([]sweepScratch, p)
		m.E.EnablePartitions(p, func(node int) int { return node * p / nodes })
		m.E.SetBarrierHook(m.pruneAtBarrier)
	} else {
		m.scr = make([]sweepScratch, 1)
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.Nodes = append(m.Nodes, &Node{
			ID:   i,
			Mem:  memory.NewModule(i, cfg.MemBytes, cfg.MemCycleNs),
			SARs: memory.NewSARPool(),
		})
	}
	m.wordTransit = m.fixedTransitNs(wordBytes)
	if scope != nil {
		if scope.onNew != nil {
			scope.onNew(m)
		}
	} else if newHook != nil {
		newHook(m)
	}
	return m
}

// newHook, when non-nil, observes every Machine built. The golden
// determinism test and butterflybench's sequential reporting use it to reach
// the engines an experiment creates internally. Goroutines with ScopeHooks
// registered see their scoped hooks instead (see scope.go).
var newHook func(*Machine)

// SetNewHook installs an observer called with every Machine New builds.
// Pass nil to remove it. Not safe for concurrent use with New — concurrent
// callers (the experiment lab's workers) must use ScopeHooks instead.
func SetNewHook(fn func(*Machine)) { newHook = fn }

// Stats returns a copy of the machine counters (summed across partition
// shards on a partitioned machine).
func (m *Machine) Stats() Stats {
	s := m.stats
	for i := range m.pstats {
		ps := &m.pstats[i]
		s.LocalRefs += ps.LocalRefs
		s.RemoteRefs += ps.RemoteRefs
		s.BlockCopies += ps.BlockCopies
		s.AtomicOps += ps.AtomicOps
	}
	return s
}

// Partitions returns the machine's partition count (0 = classic engine).
func (m *Machine) Partitions() int { return m.parts }

// pid maps a node index to its partition.
func (m *Machine) pid(node int) int { return node * m.parts / m.Cfg.Nodes }

// statsFor returns the counter shard a reference issued by p during a window
// must account into: the partition's shard on a partitioned machine (windows
// execute concurrently), the machine-wide counters otherwise.
func (m *Machine) statsFor(p *sim.Proc) *Stats {
	if m.parts > 0 {
		return &m.pstats[m.pid(p.Node)]
	}
	return &m.stats
}

// N returns the number of nodes.
func (m *Machine) N() int { return m.Cfg.Nodes }

// node validates and returns a node index's descriptor.
func (m *Machine) node(i int) *Node {
	if i < 0 || i >= len(m.Nodes) {
		panic(fmt.Sprintf("machine: node %d out of range 0..%d", i, len(m.Nodes)-1))
	}
	return m.Nodes[i]
}

// wordBytes is the transfer unit of the reference API.
const wordBytes = 4

// transit routes a packet, honouring the NoSwitchContention shortcut.
func (m *Machine) transit(t int64, src, dst, bytes int) int64 {
	if m.Cfg.NoSwitchContention {
		if bytes == wordBytes {
			return t + m.wordTransit
		}
		return t + m.fixedTransitNs(bytes)
	}
	return m.Net.Transit(t, src, dst, bytes)
}

// fixedTransitNs is the uncontended end-to-end network time for a packet
// (the topology's idle diameter path).
func (m *Machine) fixedTransitNs(bytes int) int64 {
	return m.Net.UncontendedNs(bytes)
}

// maybePrune periodically discards stale server reservations (calendar
// entries ending before the current virtual time can never matter again).
func (m *Machine) maybePrune() {
	// Pruning discards only intervals entirely in the past (no request can
	// arrive before the current virtual time), so the period is purely a
	// wall-clock trade-off: short enough to keep calendars compact for the
	// insertion memmoves, long enough to amortize the sweep over all nodes.
	const every = 20 * 1_000_000 // 20 ms of virtual time
	if m.parts > 0 {
		// Partitioned machines prune at window barriers (pruneAtBarrier),
		// where all partitions are quiescent; pruning from inside a window
		// would race with concurrent calendar use.
		return
	}
	if m.E.Now()-m.lastPrune < every {
		return
	}
	m.lastPrune = m.E.Now()
	m.Net.Prune(m.lastPrune)
	if m.comb != nil {
		m.comb.Prune(m.lastPrune)
	}
	for _, n := range m.Nodes {
		n.Mem.Prune(m.lastPrune)
	}
}

// pruneAtBarrier is the partitioned machine's calendar pruning, installed as
// the engine's barrier hook: it runs on the coordinator between windows. No
// reservation can be requested before the window's start time, so intervals
// ending earlier can never matter again.
func (m *Machine) pruneAtBarrier(windowStart int64) {
	const every = 20 * 1_000_000 // 20 ms of virtual time
	if windowStart-m.lastPrune < every {
		return
	}
	m.lastPrune = windowStart
	m.Net.Prune(windowStart)
	if m.comb != nil {
		m.comb.Prune(windowStart)
	}
	for _, n := range m.Nodes {
		n.Mem.Prune(windowStart)
	}
}

// Read charges p for reading words 32-bit words from the memory of the given
// node. Single-word remote reads model the PNC's word-at-a-time references:
// each word is a separate network round trip. Multi-word local reads occupy
// the module back to back.
func (m *Machine) Read(p *sim.Proc, node, words int) {
	m.access(p, node, words)
}

// Write charges p for writing words 32-bit words to the memory of the given
// node. The Butterfly's write path costs the same as the read path at this
// model's granularity.
func (m *Machine) Write(p *sim.Proc, node, words int) {
	m.access(p, node, words)
}

func (m *Machine) access(p *sim.Proc, node, words int) {
	// Reservations must issue at the process's true time: flush the local
	// clock first, then charge the reference lazily.
	p.Sync()
	m.maybePrune()
	if words <= 0 {
		words = 1
	}
	faulty := m.faults != nil
	if faulty {
		m.preFault(p, node)
	}
	n := m.node(node)
	if node == p.Node {
		// Local: processor overhead once, then the module streams the words.
		m.statsFor(p).LocalRefs++
		now := p.Now()
		_, done := n.Mem.Service(now+m.Cfg.LocalOverheadNs, words, true)
		if faulty {
			m.chargeFaulty(p, node, false, done-now)
			return
		}
		p.Charge(done - now)
		return
	}
	if m.parts > 0 {
		// Partitioned: every off-node reference is serviced at the window
		// barrier, whether or not the target happens to share the caller's
		// partition — so the timeline never depends on the node-to-partition
		// mapping.
		m.exchangeAccess(p, n, words)
		return
	}
	// Remote: each word is an independent reference through the switch
	// (request out, memory cycle, reply back). The PNC overlaps nothing, so
	// the references serialize; they are charged as one batch (a single
	// local-clock charge) with full per-word cost and module/port occupancy.
	m.stats.RemoteRefs += uint64(words)
	now := m.E.Now()
	if m.Cfg.NoSwitchContention {
		// Fixed network latency makes the request chain deterministic, so
		// the per-word loop folds into a single calendar pass.
		gap := m.Cfg.PNCOverheadNs + 2*m.wordTransit
		done := n.Mem.ServiceRun(now+m.Cfg.PNCOverheadNs+m.wordTransit, words, gap, false)
		if faulty {
			m.chargeFaulty(p, node, true, done+m.wordTransit-now)
			return
		}
		p.Charge(done + m.wordTransit - now)
		return
	}
	t := now
	for w := 0; w < words; w++ {
		t += m.Cfg.PNCOverheadNs
		t = m.transit(t, p.Node, node, wordBytes)
		_, t = n.Mem.Service(t, 1, false)
		t = m.transit(t, node, p.Node, wordBytes)
	}
	if faulty {
		m.chargeFaulty(p, node, true, t-now)
		return
	}
	p.Charge(t - now)
}

// BlockCopy charges p for streaming words 32-bit words from the memory of
// node src to the memory of node dst. This is the Uniform System "copy into
// local memory" idiom (§4.1): the block streams through the switch in one
// transfer, amortizing the per-reference overhead that makes word-at-a-time
// remote access five times slower.
func (m *Machine) BlockCopy(p *sim.Proc, src, dst, words int) {
	p.Sync()
	m.maybePrune()
	if words <= 0 {
		return
	}
	faulty := m.faults != nil
	if faulty {
		m.preFault(p, src)
		if dst != src {
			m.preFault(p, dst)
		}
	}
	sn, dn := m.node(src), m.node(dst)
	if m.parts > 0 && (src != p.Node || dst != p.Node) {
		m.exchangeBlockCopy(p, sn, dn, words)
		return
	}
	m.statsFor(p).BlockCopies++
	now := p.Now()
	t := now + m.Cfg.PNCOverheadNs
	if src == dst {
		// Local copy: read + write through the one module.
		_, t = sn.Mem.Service(t, 2*words, src == p.Node)
		if faulty {
			m.chargeFaulty(p, src, src != p.Node, t-now)
			return
		}
		p.Charge(t - now)
		return
	}
	// Source module streams the block, the network carries it, the
	// destination module absorbs it; the phases pipeline, so total time is
	// dominated by the slowest stage plus fixed latency.
	sStart, sDone := sn.Mem.Service(t, words, src == p.Node)
	nDone := m.transit(sStart, src, dst, words*wordBytes)
	if nDone < sDone {
		nDone = sDone
	}
	// The destination module overlaps the tail of the transfer: its pipeline
	// is offset by its own per-word cycle time (not the machine-wide default,
	// which diverges from it in mixed-memory configurations).
	_, dDone := dn.Mem.Service(nDone-int64(words)*dn.Mem.CycleNs, words, dst == p.Node)
	if dDone < nDone {
		dDone = nDone
	}
	if faulty {
		// Blame the remote end of the transfer for any drawn fault.
		rnode := dst
		if rnode == p.Node {
			rnode = src
		}
		m.chargeFaulty(p, rnode, true, dDone-now)
		return
	}
	p.Charge(dDone - now)
}

// Atomic charges p for one atomic read-modify-write (test-and-set,
// fetch-and-add, atomic-ior...) on a word in the given node's memory, and
// returns nothing: the caller performs the actual operation on its own data,
// which is safe because the engine runs one process at a time. An atomic op
// occupies the module for two cycles (read + write). On a combining machine
// the word identity matters (only operations on the same word merge), so
// callers that distinguish words use AtomicWord; Atomic is word 0.
func (m *Machine) Atomic(p *sim.Proc, node int) {
	m.AtomicWord(p, node, 0)
}

// AtomicWord is Atomic on an identified word of the node's memory. The word
// index only influences the combining layer's merge decision; without
// Config.Combining it is ignored and the charge is identical to Atomic's.
func (m *Machine) AtomicWord(p *sim.Proc, node, word int) {
	p.Sync()
	m.maybePrune()
	faulty := m.faults != nil
	if faulty {
		m.preFault(p, node)
	}
	n := m.node(node)
	if node == p.Node {
		m.statsFor(p).AtomicOps++
		now := p.Now()
		_, done := n.Mem.Service(now+m.Cfg.LocalOverheadNs, 2, true)
		if faulty {
			m.chargeFaulty(p, node, false, done-now)
			return
		}
		p.Charge(done - now)
		return
	}
	if m.parts > 0 {
		m.exchangeAtomic(p, n, word)
		return
	}
	m.stats.AtomicOps++
	now := m.E.Now()
	if m.comb != nil {
		done := m.comb.FetchAdd(now+m.Cfg.PNCOverheadNs, p.Node, node, word, func(arrive int64) int64 {
			_, d := n.Mem.Service(arrive, 2, false)
			return d
		})
		if faulty {
			m.chargeFaulty(p, node, true, done-now)
			return
		}
		p.Charge(done - now)
		return
	}
	t := now + m.Cfg.PNCOverheadNs
	t = m.transit(t, p.Node, node, wordBytes)
	_, t = n.Mem.Service(t, 2, false)
	t = m.transit(t, node, p.Node, wordBytes)
	if faulty {
		m.chargeFaulty(p, node, true, t-now)
		return
	}
	p.Charge(t - now)
}

// CombineStats returns the combining layer's counters (zero without
// Config.Combining).
func (m *Machine) CombineStats() switchnet.CombineStats {
	if m.comb == nil {
		return switchnet.CombineStats{}
	}
	return m.comb.Stats()
}

// Topology reports the interconnect family the machine was built with.
func (m *Machine) Topology() switchnet.Topology { return m.Net.Name() }

// Ref describes one shared-memory reference stream of a Sweep element.
type Ref struct {
	// Node is the home memory of the referenced data.
	Node int
	// Words is how many 32-bit words each element references there.
	Words int
}

// Sweep charges p for `items` loop iterations, each consisting of computeNs
// of processor time interleaved with one reference group per entry of refs
// (local or remote as appropriate). The whole sweep is charged as a single
// engine event, but module and switch-port occupancy is booked per word at
// the realistic issue times, so contention with other processors is modelled
// without the artificial convoys that batching all references back to back
// would create. This is the workhorse for inner loops such as the Gaussian
// elimination row update, where two flops and a handful of shared-memory
// references alternate millions of times.
func (m *Machine) Sweep(p *sim.Proc, items int, computeNs int64, refs []Ref) {
	p.Sync()
	m.maybePrune()
	if items <= 0 {
		return
	}
	if m.parts > 0 {
		m.partitionedSweep(p, items, computeNs, refs)
		return
	}
	faulty := m.faults != nil
	if faulty {
		m.preFault(p, p.Node)
		for _, r := range refs {
			if r.Node != p.Node {
				m.preFault(p, r.Node)
			}
		}
	}
	now := p.Now()
	t := now
	scr := &m.scr[0]
	fixedNet := m.Cfg.NoSwitchContention
	gap := m.Cfg.PNCOverheadNs + 2*m.wordTransit
	lead := m.Cfg.PNCOverheadNs + m.wordTransit
	// The whole sweep runs inside one engine event, so no other process can
	// observe a module's calendar before the sweep charges, and the sweep's
	// own references reach each module in arrival-time order. Both conditions
	// of the calendar batch contract hold, so each touched module's bookings
	// are placed in a batch and spliced in once at the end — one merge pass
	// instead of items*len(refs) mid-schedule inserts. Resolve each ref's
	// module and open its batch once, outside the item loop.
	mods := scr.refMods[:0]
	for _, r := range refs {
		mod := m.node(r.Node).Mem
		mods = append(mods, mod)
		if r.Words > 0 && !mod.InBatch() {
			mod.BeginBatch()
			scr.mods = append(scr.mods, mod)
		}
	}
	scr.refMods = mods
	var failNode int
	var failKind fault.Kind
	failed := false
outer:
	for it := 0; it < items; it++ {
		t += computeNs
		for j, r := range refs {
			words := r.Words
			if words <= 0 {
				continue
			}
			mod := mods[j]
			switch {
			case r.Node == p.Node:
				m.stats.LocalRefs++
				_, t = mod.ServiceBatch(t+m.Cfg.LocalOverheadNs, words, true)
			case fixedNet:
				m.stats.RemoteRefs += uint64(words)
				t = mod.ServiceRunBatch(t+lead, words, gap, false) + m.wordTransit
			default:
				m.stats.RemoteRefs += uint64(words)
				for w := 0; w < words; w++ {
					t += m.Cfg.PNCOverheadNs
					t = m.transit(t, p.Node, r.Node, wordBytes)
					_, t = mod.ServiceBatch(t, 1, false)
					t = m.transit(t, r.Node, p.Node, wordBytes)
				}
			}
			if faulty {
				// One fate draw per reference group. On failure the sweep
				// stops here: the work already booked happened, the rest of
				// the sweep never does.
				extra, kind, bad := m.refFault(r.Node, r.Node != p.Node)
				t += extra
				if bad {
					failNode, failKind, failed = r.Node, kind, true
					break outer
				}
			}
		}
	}
	// Commit before Charge: Charge may flush and park, handing the token to
	// another process that must see the completed schedule. A drawn fault is
	// raised only after both, so batches are never left open.
	for _, mod := range scr.mods {
		mod.CommitBatchScratch(&scr.commit)
	}
	scr.mods = scr.mods[:0]
	p.Charge(t - now)
	if failed {
		m.raiseFault(p, failNode, failKind)
	}
}

// Microcode charges p for a PNC-microcoded operation (event post, dual
// queue enqueue/dequeue) executed at the object's home node. The microcode
// runs in the home node's PNC and occupies that node's memory for busyNs,
// so concurrent microcoded operations on objects sharing a home node
// serialize there — the reason heavily shared queues become bottlenecks.
func (m *Machine) Microcode(p *sim.Proc, node int, busyNs int64) {
	p.Sync()
	m.maybePrune()
	faulty := m.faults != nil
	if faulty {
		m.preFault(p, node)
	}
	n := m.node(node)
	words := int(busyNs / m.Cfg.MemCycleNs)
	if words < 1 {
		words = 1
	}
	if m.parts > 0 && node != p.Node {
		m.exchangeMicrocode(p, n, words)
		return
	}
	now := p.Now()
	t := now
	if node != p.Node {
		t += m.Cfg.PNCOverheadNs
		t = m.transit(t, p.Node, node, wordBytes)
	} else {
		t += m.Cfg.LocalOverheadNs
	}
	_, t = n.Mem.Service(t, words, node == p.Node)
	if node != p.Node {
		t = m.transit(t, node, p.Node, wordBytes)
	}
	if faulty {
		m.chargeFaulty(p, node, node != p.Node, t-now)
		return
	}
	p.Charge(t - now)
}

// IntOps charges p for n integer operations of pure processor time. The
// charge is purely local — no shared server is reserved — so it never
// forces a flush of the caller's local clock.
func (m *Machine) IntOps(p *sim.Proc, n int) {
	if n > 0 {
		p.Charge(int64(n) * m.Cfg.IntOpNs)
	}
}

// Flops charges p for n floating-point operations (purely local, like IntOps).
func (m *Machine) Flops(p *sim.Proc, n int) {
	if n > 0 {
		p.Charge(int64(n) * m.Cfg.FlopNs)
	}
}

// Spawn creates a simulated process bound to a node. It is a thin wrapper
// over the engine that validates the node index.
func (m *Machine) Spawn(name string, node int, fn func(p *sim.Proc)) *sim.Proc {
	m.node(node)
	return m.E.Spawn(name, node, fn)
}

// LocalReadNs returns the uncontended cost of a one-word local read — the
// denominator of the paper's "roughly five times" NUMA ratio.
func (m *Machine) LocalReadNs() int64 {
	return m.Cfg.LocalOverheadNs + m.Cfg.MemCycleNs
}

// RemoteReadNs returns the uncontended cost of a one-word remote read
// between two maximally distant nodes (on the butterfly, every distinct
// pair; on direct networks, a diameter pair).
func (m *Machine) RemoteReadNs() int64 {
	return m.Cfg.PNCOverheadNs + 2*m.Net.UncontendedNs(wordBytes) + m.Cfg.MemCycleNs
}
