package machine

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"butterfly/internal/fault"
	"butterfly/internal/sim"
)

// machineWorkload drives a deterministic random mix of every machine
// reference type across 8 nodes on a partitioned machine and fingerprints
// all observable physics: per-process operation timestamps, per-module
// traffic and queueing counters, machine counters, and final virtual time.
func machineWorkload(t *testing.T, seed int64, parts int, contended bool) uint64 {
	t.Helper()
	const nodes = 8
	cfg := DefaultConfig(nodes)
	cfg.Partitions = parts
	cfg.NoSwitchContention = !contended
	m := New(cfg)
	traces := make([]uint64, nodes)
	for n := 0; n < nodes; n++ {
		node := n
		m.Spawn(fmt.Sprintf("w%d", node), node, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed + int64(node)*104729))
			h := fnv.New64a()
			for s := 0; s < 60; s++ {
				target := rng.Intn(nodes)
				switch rng.Intn(12) {
				case 0, 1, 2:
					m.Read(p, node, 1+rng.Intn(8)) // local stream
				case 3, 4:
					m.Read(p, target, 1+rng.Intn(4)) // possibly remote
				case 5:
					m.Write(p, target, 1+rng.Intn(4))
				case 6:
					m.Atomic(p, target)
				case 7:
					m.BlockCopy(p, target, node, 16+rng.Intn(64))
				case 8:
					m.Microcode(p, target, int64(1_000+rng.Intn(4_000)))
				case 9:
					m.Sweep(p, 1+rng.Intn(20), int64(rng.Intn(2_000)), []Ref{
						{Node: node, Words: 2},
						{Node: target, Words: 1},
					})
				default:
					m.IntOps(p, 1+rng.Intn(50))
				}
				fmt.Fprintf(h, "%d %d %d\n", node, s, p.LocalNow())
			}
			traces[node] = h.Sum64()
		})
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("parts=%d: %v", parts, err)
	}
	h := fnv.New64a()
	for _, tr := range traces {
		fmt.Fprintf(h, "%#x\n", tr)
	}
	for _, n := range m.Nodes {
		ms := n.Mem.Stats()
		fmt.Fprintf(h, "mod%d %d %d %d %d %d\n", n.ID, ms.LocalWords, ms.RemoteWords, ms.WaitNs, ms.LocalWaitNs, ms.RemoteWaitNs)
	}
	st := m.Stats()
	fmt.Fprintf(h, "now=%d local=%d remote=%d copies=%d atomics=%d\n",
		m.E.Now(), st.LocalRefs, st.RemoteRefs, st.BlockCopies, st.AtomicOps)
	return h.Sum64()
}

// TestMachinePartitionInvariance checks that the full reference model —
// module queueing, switch transit, sweeps, block copies — produces
// bit-identical physics at every partition count, with and without switch
// contention modelling.
func TestMachinePartitionInvariance(t *testing.T) {
	for _, contended := range []bool{false, true} {
		for _, seed := range []int64{3, 1988} {
			ref := machineWorkload(t, seed, 1, contended)
			for _, parts := range []int{2, 4, 8} {
				if got := machineWorkload(t, seed, parts, contended); got != ref {
					t.Errorf("contended=%v seed=%d: fingerprint differs at %d partitions", contended, seed, parts)
				}
			}
		}
	}
}

// TestPartitionedFaultsRejected: fault injection requires the classic
// sequential engine; a partitioned machine refuses the injector loudly.
func TestPartitionedFaultsRejected(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Partitions = 2
	m := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("AttachFaults on a partitioned machine should panic")
		}
	}()
	m.AttachFaults(fault.NewInjector(fault.Config{}))
}
