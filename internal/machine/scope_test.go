package machine

import (
	"sync"
	"testing"
)

func TestScopeHooksIsolation(t *testing.T) {
	// A scope registered on this goroutine rewrites configs and observes
	// machines built here — and only here.
	var seen []*Machine
	release := ScopeHooks(
		func(c Config) Config {
			c.MemCycleNs *= 3
			return c
		},
		func(m *Machine) { seen = append(seen, m) },
	)

	m := New(DefaultConfig(4))
	if len(seen) != 1 || seen[0] != m {
		t.Fatalf("onNew saw %d machines", len(seen))
	}
	if want := DefaultConfig(4).MemCycleNs * 3; m.Cfg.MemCycleNs != want {
		t.Errorf("config transform not applied: MemCycleNs = %d, want %d", m.Cfg.MemCycleNs, want)
	}

	// Another goroutine's construction bypasses this scope entirely.
	var otherCfg Config
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		otherCfg = New(DefaultConfig(4)).Cfg
	}()
	wg.Wait()
	if otherCfg.MemCycleNs != DefaultConfig(4).MemCycleNs {
		t.Error("scope leaked into another goroutine's machine")
	}
	if len(seen) != 1 {
		t.Error("onNew observed a machine built on another goroutine")
	}

	release()
	after := New(DefaultConfig(4))
	if len(seen) != 1 || after.Cfg.MemCycleNs != DefaultConfig(4).MemCycleNs {
		t.Error("hooks survived release")
	}
}

func TestScopeHooksPrecedenceOverGlobal(t *testing.T) {
	var global, scoped int
	SetNewHook(func(*Machine) { global++ })
	defer SetNewHook(nil)

	release := ScopeHooks(nil, func(*Machine) { scoped++ })
	New(DefaultConfig(2))
	release()
	if scoped != 1 || global != 0 {
		t.Errorf("scoped=%d global=%d; the scope must shadow the global hook", scoped, global)
	}

	New(DefaultConfig(2))
	if global != 1 {
		t.Errorf("global hook not restored after release: %d", global)
	}
}

func TestScopeHooksDoubleRegisterPanics(t *testing.T) {
	release := ScopeHooks(nil, func(*Machine) {})
	defer release()
	defer func() {
		if recover() == nil {
			t.Error("second ScopeHooks on one goroutine did not panic")
		}
	}()
	ScopeHooks(nil, func(*Machine) {})
}

func TestGoidStable(t *testing.T) {
	if goid() != goid() {
		t.Fatal("goid changed between calls on one goroutine")
	}
	ch := make(chan uint64, 1)
	go func() { ch <- goid() }()
	if other := <-ch; other == goid() {
		t.Fatal("two goroutines share one goid")
	}
}
