package machine

import (
	"testing"

	"butterfly/internal/sim"
)

// run executes fn as a single simulated process on node and returns the
// virtual time it consumed.
func run(t *testing.T, m *Machine, node int, fn func(p *sim.Proc)) int64 {
	t.Helper()
	var elapsed int64
	m.Spawn("t", node, func(p *sim.Proc) {
		start := m.E.Now()
		fn(p)
		p.Sync() // flush lazily charged time before reading the clock
		elapsed = m.E.Now() - start
	})
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return elapsed
}

func TestNUMARatio(t *testing.T) {
	// §2.1: remote references take about 4 µs, roughly five times as long
	// as a local reference.
	m := New(DefaultConfig(128))
	local := run(t, m, 0, func(p *sim.Proc) { m.Read(p, 0, 1) })

	m2 := New(DefaultConfig(128))
	remote := run(t, m2, 0, func(p *sim.Proc) { m2.Read(p, 100, 1) })

	if local < 500 || local > 1200 {
		t.Errorf("local read = %d ns, want ~800", local)
	}
	if remote < 3200 || remote > 4800 {
		t.Errorf("remote read = %d ns, want ~4000", remote)
	}
	ratio := float64(remote) / float64(local)
	if ratio < 4.0 || ratio > 6.5 {
		t.Errorf("NUMA ratio = %.2f, want roughly 5", ratio)
	}
	if m.LocalReadNs() != local {
		t.Errorf("LocalReadNs() = %d, measured %d", m.LocalReadNs(), local)
	}
	if m2.RemoteReadNs() != remote {
		t.Errorf("RemoteReadNs() = %d, measured %d", m2.RemoteReadNs(), remote)
	}
}

func TestRemoteWordAtATime(t *testing.T) {
	// Remote multi-word reads pay the full round trip per word.
	m := New(DefaultConfig(64))
	one := run(t, m, 0, func(p *sim.Proc) { m.Read(p, 5, 1) })
	m2 := New(DefaultConfig(64))
	ten := run(t, m2, 0, func(p *sim.Proc) { m2.Read(p, 5, 10) })
	if ten < 9*one {
		t.Errorf("10-word remote read = %d, want >= 9x one word (%d)", ten, one)
	}
}

func TestBlockCopyAmortizes(t *testing.T) {
	// The caching idiom: a block copy of N words is much cheaper than N
	// word-at-a-time remote reads.
	const words = 256
	m := New(DefaultConfig(64))
	wordwise := run(t, m, 0, func(p *sim.Proc) { m.Read(p, 5, words) })
	m2 := New(DefaultConfig(64))
	block := run(t, m2, 0, func(p *sim.Proc) { m2.BlockCopy(p, 5, 0, words) })
	if block*2 > wordwise {
		t.Errorf("block copy (%d) not at least 2x faster than word reads (%d)", block, wordwise)
	}
}

func TestLocalBatchedRead(t *testing.T) {
	// Local multi-word reads stream through the module: one overhead, then
	// per-word cycles.
	cfg := DefaultConfig(16)
	m := New(cfg)
	got := run(t, m, 0, func(p *sim.Proc) { m.Read(p, 0, 100) })
	want := cfg.LocalOverheadNs + 100*cfg.MemCycleNs
	if got != want {
		t.Errorf("local 100-word read = %d, want %d", got, want)
	}
}

func TestMemoryContentionStealsCycles(t *testing.T) {
	// E5 seed: many remote spinners hammering one module inflate a local
	// reference far beyond the nominal 5x remote/local split.
	m := New(DefaultConfig(64))
	nominal := m.LocalReadNs()
	var localLatency int64
	// 32 remote processes each issue 50 atomic ops against node 0's memory.
	for i := 1; i <= 32; i++ {
		node := i
		m.Spawn("spinner", node, func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				m.Atomic(p, 0)
			}
		})
	}
	m.Spawn("owner", 0, func(p *sim.Proc) {
		p.Advance(10_000) // let the spinners pile up
		start := m.E.Now()
		m.Read(p, 0, 1)
		p.Sync()
		localLatency = m.E.Now() - start
	})
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if localLatency < 5*nominal {
		t.Errorf("contended local read = %d ns (nominal %d); want severe degradation", localLatency, nominal)
	}
}

func TestComputeCharges(t *testing.T) {
	cfg := DefaultConfig(4)
	m := New(cfg)
	got := run(t, m, 0, func(p *sim.Proc) {
		m.IntOps(p, 10)
		m.Flops(p, 3)
	})
	want := 10*cfg.IntOpNs + 3*cfg.FlopNs
	if got != want {
		t.Errorf("compute = %d, want %d", got, want)
	}
}

func TestHardwareFloatConfig(t *testing.T) {
	soft := DefaultConfig(16)
	hard := HardwareFloatConfig(16)
	if hard.FlopNs >= soft.FlopNs {
		t.Errorf("hardware flops (%d) not faster than software (%d)", hard.FlopNs, soft.FlopNs)
	}
	if soft.FlopNs/hard.FlopNs < 5 {
		t.Errorf("upgrade speedup only %dx", soft.FlopNs/hard.FlopNs)
	}
}

func TestAtomicCosts(t *testing.T) {
	m := New(DefaultConfig(64))
	localAtomic := run(t, m, 0, func(p *sim.Proc) { m.Atomic(p, 0) })
	m2 := New(DefaultConfig(64))
	remoteAtomic := run(t, m2, 0, func(p *sim.Proc) { m2.Atomic(p, 5) })
	if localAtomic >= remoteAtomic {
		t.Errorf("local atomic (%d) should cost less than remote (%d)", localAtomic, remoteAtomic)
	}
	if m2.Stats().AtomicOps != 1 {
		t.Errorf("stats = %+v", m2.Stats())
	}
}

func TestStatsCounting(t *testing.T) {
	m := New(DefaultConfig(8))
	run(t, m, 0, func(p *sim.Proc) {
		m.Read(p, 0, 1)
		m.Write(p, 3, 2)
		m.BlockCopy(p, 3, 0, 16)
	})
	st := m.Stats()
	if st.LocalRefs != 1 || st.RemoteRefs != 2 || st.BlockCopies != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBadNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad node did not panic")
		}
	}()
	m := New(DefaultConfig(4))
	m.node(4)
}

func TestSpawnValidatesNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad spawn node did not panic")
		}
	}()
	m := New(DefaultConfig(4))
	m.Spawn("x", 9, func(p *sim.Proc) {})
}

func TestZeroWordAccessesAreSafe(t *testing.T) {
	m := New(DefaultConfig(4))
	elapsed := run(t, m, 0, func(p *sim.Proc) {
		m.BlockCopy(p, 1, 0, 0) // no-op
		m.IntOps(p, 0)
		m.Flops(p, 0)
	})
	if elapsed != 0 {
		t.Errorf("zero-size ops consumed %d ns", elapsed)
	}
}

func TestSweepCostMatchesComponents(t *testing.T) {
	// A sweep's total must equal items * (compute + per-ref costs) when
	// uncontended.
	cfg := DefaultConfig(16)
	m := New(cfg)
	const items = 50
	got := run(t, m, 0, func(p *sim.Proc) {
		m.Sweep(p, items, 2000, []Ref{
			{Node: 0, Words: 1}, // local
			{Node: 5, Words: 1}, // remote
		})
	})
	local := cfg.LocalOverheadNs + cfg.MemCycleNs
	remote := m.RemoteReadNs()
	want := items * (2000 + local + remote)
	if got != want {
		t.Errorf("sweep = %d, want %d", got, want)
	}
}

func TestSweepBooksModuleOccupancy(t *testing.T) {
	// A sweep pre-books the target module; a later single read that lands
	// mid-sweep must queue (or backfill a gap, but never corrupt totals).
	m := New(DefaultConfig(4))
	m.Spawn("sweeper", 0, func(p *sim.Proc) {
		m.Sweep(p, 1000, 0, []Ref{{Node: 2, Words: 1}})
	})
	var readerLatency int64
	m.Spawn("reader", 1, func(p *sim.Proc) {
		p.Advance(100_000) // arrive mid-sweep
		t0 := m.E.Now()
		m.Read(p, 2, 1)
		p.Sync()
		readerLatency = m.E.Now() - t0
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	// The sweeper's refs leave gaps >= 2.9us between 1us services, so the
	// reader backfills with at most a cycle of extra wait.
	if readerLatency > 3*m.RemoteReadNs() {
		t.Errorf("reader latency %d implausibly high", readerLatency)
	}
}

func TestSweepZeroItems(t *testing.T) {
	m := New(DefaultConfig(2))
	if got := run(t, m, 0, func(p *sim.Proc) { m.Sweep(p, 0, 1000, nil) }); got != 0 {
		t.Errorf("zero-item sweep took %d", got)
	}
}

func TestMicrocodeSerializesAtHomeNode(t *testing.T) {
	// Two processes running 30us microcoded ops against the same home node
	// serialize there.
	m := New(DefaultConfig(4))
	ends := make([]int64, 2)
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn("µ", i+1, func(p *sim.Proc) {
			m.Microcode(p, 0, 30_000)
			p.Sync()
			ends[i] = m.E.Now()
		})
	}
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	d := ends[1] - ends[0]
	if d < 0 {
		d = -d
	}
	if d < 30_000 {
		t.Errorf("microcode ops overlapped: ends %v", ends)
	}
}

func TestNoSwitchContentionShortcut(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.NoSwitchContention = true
	m := New(cfg)
	got := run(t, m, 0, func(p *sim.Proc) { m.Read(p, 9, 1) })
	if got != m.RemoteReadNs() {
		t.Errorf("shortcut remote read = %d, want %d", got, m.RemoteReadNs())
	}
	if m.Net.Stats().Packets != 0 {
		t.Error("shortcut still routed packets")
	}
}

func TestBlockCopyBooksDestinationAtItsOwnCycle(t *testing.T) {
	// The destination module's absorb window is offset by *its own* per-word
	// cycle time, which diverges from the machine-wide default in
	// mixed-memory configurations. Two identical copies, one into a module
	// with a doubled cycle: the slow module's window starts earlier (same
	// end), so a probe landing between the two window starts backfills the
	// idle gap on the fast machine but queues to the window's end on the
	// slow one.
	const words = 100
	copyElapsed := func(slowDst bool) (elapsed int64, m *Machine) {
		m = New(DefaultConfig(4))
		if slowDst {
			m.Nodes[2].Mem.CycleNs = 2 * m.Cfg.MemCycleNs
		}
		elapsed = run(t, m, 0, func(p *sim.Proc) { m.BlockCopy(p, 1, 2, words) })
		return elapsed, m
	}
	fastElapsed, fast := copyElapsed(false)
	slowElapsed, slow := copyElapsed(true)
	if fastElapsed != slowElapsed {
		// Uncontended, the destination pipeline overlaps the transfer tail
		// completely; total time must not depend on the destination cycle.
		t.Fatalf("elapsed diverged: fast %d, slow %d", fastElapsed, slowElapsed)
	}
	// The copy finished at virtual time `elapsed`; probe both destination
	// modules at a time inside the slow window but before the fast one.
	probe := fastElapsed - int64(words)*fast.Cfg.MemCycleNs - 50_000
	if start, _ := fast.Nodes[2].Mem.Service(probe, 1, false); start != probe {
		t.Errorf("fast destination did not backfill: start %d, want %d", start, probe)
	}
	if start, _ := slow.Nodes[2].Mem.Service(probe, 1, false); start != fastElapsed {
		t.Errorf("slow destination window wrong: probe start %d, want %d", start, fastElapsed)
	}
}
