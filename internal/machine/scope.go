package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment lab runs independent simulations concurrently, one per
// worker OS thread, and each worker needs to observe (and optionally
// re-parameterize) exactly the machines its own job builds. The global
// SetNewHook cannot express that — it is process-wide and documented as
// unsafe for concurrent use — so New also consults a goroutine-scoped hook
// table: a worker registers its hooks with ScopeHooks, runs the job's
// experiment on the same goroutine, and releases them. Machines built by
// other goroutines never see them.
//
// Experiments construct their machines on the goroutine that called
// Experiment.Run (simulated processes are goroutines, but they only use
// machines, never build them), so goroutine scoping is exactly job scoping.

// hookScope is one goroutine's registered construction hooks.
type hookScope struct {
	// config, when non-nil, transforms every Config before the machine is
	// assembled — the lab uses it to apply per-job machine overrides
	// (hardware preset, node count) without threading parameters through
	// every experiment signature.
	config func(Config) Config
	// onNew, when non-nil, observes every machine after assembly, exactly
	// like the global new-machine hook.
	onNew func(*Machine)
}

var (
	// scopeCount lets the common case (no scopes anywhere) skip the
	// goroutine-id lookup entirely: New pays one atomic load.
	scopeCount atomic.Int32
	scopeMu    sync.RWMutex
	scopes     map[uint64]*hookScope
)

// ScopeHooks registers machine-construction hooks visible only on the
// calling goroutine: config (may be nil) rewrites every Config before New
// assembles the machine, and onNew (may be nil) observes every machine New
// builds. The returned release function unregisters them and must be called
// on any goroutine when the scope ends. Scoped hooks take precedence over
// the global SetNewHook hook. Registering twice on one goroutine without
// releasing panics.
func ScopeHooks(config func(Config) Config, onNew func(*Machine)) (release func()) {
	id := goid()
	scopeMu.Lock()
	if scopes == nil {
		scopes = make(map[uint64]*hookScope)
	}
	if _, dup := scopes[id]; dup {
		scopeMu.Unlock()
		panic("machine: ScopeHooks already registered on this goroutine")
	}
	scopes[id] = &hookScope{config: config, onNew: onNew}
	scopeMu.Unlock()
	scopeCount.Add(1)
	return func() {
		scopeMu.Lock()
		delete(scopes, id)
		scopeMu.Unlock()
		scopeCount.Add(-1)
	}
}

// currentScope returns the calling goroutine's registered hooks, or nil.
func currentScope() *hookScope {
	if scopeCount.Load() == 0 {
		return nil
	}
	id := goid()
	scopeMu.RLock()
	s := scopes[id]
	scopeMu.RUnlock()
	return s
}

// goid returns the runtime's id for the calling goroutine, parsed from the
// header of a single-goroutine stack dump ("goroutine 123 [running]:").
// This costs about a microsecond, which is why it is guarded by scopeCount
// and only paid on machine construction, never on a simulation hot path.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
