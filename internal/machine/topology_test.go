package machine

import (
	"fmt"
	"hash/fnv"
	"testing"

	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
)

// TestMachineTopologyAxis: a machine boots on every interconnect family,
// reports it, and services remote references on it.
func TestMachineTopologyAxis(t *testing.T) {
	for _, topo := range switchnet.Topologies() {
		cfg := DefaultConfig(16)
		cfg.Topology = topo
		m := New(cfg)
		if m.Topology() != topo {
			t.Errorf("Topology() = %q, want %q", m.Topology(), topo)
		}
		var lat int64
		m.Spawn("reader", 3, func(p *sim.Proc) {
			t0 := p.Now()
			m.Read(p, 9, 1)
			p.Sync()
			lat = p.Now() - t0
		})
		if err := m.E.Run(); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if lat <= 0 {
			t.Errorf("%s: remote read cost %d ns", topo, lat)
		}
	}
}

// TestMachineBadTopologyPanics: an unknown family must fail loudly at boot,
// not fall back to the default.
func TestMachineBadTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an unknown topology")
		}
	}()
	cfg := DefaultConfig(16)
	cfg.Topology = "torus"
	New(cfg)
}

// combiningWorkload drives a hot-spot fetch-and-add storm (plus background
// reads) on a combining machine and fingerprints the observable physics.
func combiningWorkload(t *testing.T, parts int) uint64 {
	t.Helper()
	const nodes = 16
	cfg := DefaultConfig(nodes)
	cfg.Combining = true
	cfg.Partitions = parts
	m := New(cfg)
	traces := make([]int64, nodes)
	for n := 1; n < nodes; n++ {
		node := n
		m.Spawn(fmt.Sprintf("s%d", node), node, func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				m.AtomicWord(p, 0, i%2)
				if i%3 == 0 {
					m.Read(p, (node+5)%nodes, 2)
				}
				p.Advance(sim.Microsecond)
			}
			p.Sync()
			traces[node] = p.Now()
		})
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("parts=%d: %v", parts, err)
	}
	h := fnv.New64a()
	for _, tr := range traces {
		fmt.Fprintf(h, "%d\n", tr)
	}
	cs := m.CombineStats()
	fmt.Fprintf(h, "now=%d req=%d comb=%d saved=%d atomics=%d\n",
		m.E.Now(), cs.Requests, cs.Combined, cs.SavedHops, m.Stats().AtomicOps)
	if cs.Combined == 0 {
		t.Fatalf("parts=%d: hot-spot storm never combined", parts)
	}
	return h.Sum64()
}

// TestCombiningPartitionInvariance: the wait-buffer state is a pure function
// of the deterministic request sequence, so a combining machine walks a
// bit-identical trajectory at every partition count.
func TestCombiningPartitionInvariance(t *testing.T) {
	ref := combiningWorkload(t, 1)
	for _, parts := range []int{2, 4, 8} {
		if got := combiningWorkload(t, parts); got != ref {
			t.Errorf("fingerprint differs at %d partitions", parts)
		}
	}
}

// TestCombiningReducesHotSpotLatency: the machine-level restatement of the
// combine experiment's claim, pinned as a regression test.
func TestCombiningReducesHotSpotLatency(t *testing.T) {
	storm := func(combining bool) int64 {
		cfg := DefaultConfig(64)
		cfg.Combining = combining
		m := New(cfg)
		for n := 1; n < 64; n++ {
			node := n
			m.Spawn(fmt.Sprintf("s%d", node), node, func(p *sim.Proc) {
				for i := 0; i < 6; i++ {
					m.AtomicWord(p, 0, 0)
					p.Advance(sim.Microsecond)
				}
			})
		}
		if err := m.E.Run(); err != nil {
			t.Fatal(err)
		}
		return m.E.Now()
	}
	off, on := storm(false), storm(true)
	if on*4 > off {
		t.Errorf("combining finished the storm at %d ns vs %d ns off — expected at least 4x faster", on, off)
	}
}
