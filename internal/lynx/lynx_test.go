package lynx

import (
	"errors"
	"strings"
	"testing"

	"butterfly/internal/antfarm"
	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

func newOS(t *testing.T, nodes int) *chrysalis.OS {
	t.Helper()
	return chrysalis.New(machine.New(machine.DefaultConfig(nodes)))
}

func TestBasicRPC(t *testing.T) {
	os := newOS(t, 2)
	server, err := Spawn(os, "server", 1, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	server.Bind("double", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		return args.(int) * 2, 1, nil
	})
	var got int
	client, err := Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		v, err := self.Call(th, l, "double", 21, 1)
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		got = v.(int)
		server.Shutdown(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = client
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 42 {
		t.Errorf("got = %d, want 42", got)
	}
	if server.Stats().CallsServiced != 1 {
		t.Errorf("server stats = %+v", server.Stats())
	}
}

func TestRemoteException(t *testing.T) {
	os := newOS(t, 2)
	server, _ := Spawn(os, "server", 1, DefaultConfig(), nil)
	server.Bind("fail", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		return nil, 0, errors.New("constraint violated")
	})
	var callErr error
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		_, callErr = self.Call(th, l, "fail", nil, 1)
		server.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var re *RemoteError
	if !errors.As(callErr, &re) {
		t.Fatalf("err = %v, want RemoteError", callErr)
	}
	if !strings.Contains(re.Error(), "constraint violated") {
		t.Errorf("error text = %q", re.Error())
	}
	if server.Stats().Exceptions != 1 {
		t.Errorf("exceptions = %d", server.Stats().Exceptions)
	}
}

func TestUnknownEntry(t *testing.T) {
	os := newOS(t, 2)
	server, _ := Spawn(os, "server", 1, DefaultConfig(), nil)
	var callErr error
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		_, callErr = self.Call(th, l, "nonesuch", nil, 1)
		server.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if callErr == nil || !strings.Contains(callErr.Error(), "no entry") {
		t.Errorf("err = %v", callErr)
	}
}

func TestInterleavedConversations(t *testing.T) {
	// Two client threads call concurrently; each conversation keeps its own
	// context (a fresh handler thread per call).
	os := newOS(t, 3)
	server, _ := Spawn(os, "server", 2, DefaultConfig(), nil)
	server.Bind("slowEcho", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		ht.P().Advance(5 * sim.Millisecond)
		return args, 1, nil
	})
	results := map[int]int{}
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		done := th.Farm.NewChannel(2)
		for i := 1; i <= 2; i++ {
			i := i
			th.Farm.Spawn("caller", func(ct *antfarm.Thread) {
				v, err := self.Call(ct, l, "slowEcho", i*100, 1)
				if err != nil {
					t.Errorf("Call: %v", err)
				}
				results[i] = v.(int)
				done.Send(ct, i, 1)
			})
		}
		done.Recv(th)
		done.Recv(th)
		server.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[1] != 100 || results[2] != 200 {
		t.Errorf("results = %v", results)
	}
}

func TestLinkMove(t *testing.T) {
	os := newOS(t, 3)
	s1, _ := Spawn(os, "s1", 1, DefaultConfig(), nil)
	s1.Bind("who", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		return "s1", 1, nil
	})
	s2, _ := Spawn(os, "s2", 2, DefaultConfig(), nil)
	s2.Bind("who", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		return "s2", 1, nil
	})
	var first, second string
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, s1)
		v, err := self.Call(th, l, "who", nil, 1)
		if err != nil {
			t.Errorf("call 1: %v", err)
		}
		first, _ = v.(string)
		if err := l.Move(s1, s2); err != nil {
			t.Errorf("Move: %v", err)
		}
		v, err = self.Call(th, l, "who", nil, 1)
		if err != nil {
			t.Errorf("call 2: %v", err)
		}
		second, _ = v.(string)
		s1.Shutdown(th)
		s2.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first != "s1" || second != "s2" {
		t.Errorf("first=%q second=%q", first, second)
	}
}

func TestLinkDestroy(t *testing.T) {
	os := newOS(t, 2)
	server, _ := Spawn(os, "server", 1, DefaultConfig(), nil)
	var callErr error
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		l.Destroy()
		if l.Alive() {
			t.Error("destroyed link still alive")
		}
		_, callErr = self.Call(th, l, "x", nil, 1)
		server.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if callErr != ErrLinkDestroyed {
		t.Errorf("err = %v, want ErrLinkDestroyed", callErr)
	}
}

func TestCallOnForeignLink(t *testing.T) {
	os := newOS(t, 3)
	s1, _ := Spawn(os, "s1", 1, DefaultConfig(), nil)
	s2, _ := Spawn(os, "s2", 2, DefaultConfig(), nil)
	var callErr error
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		foreign := NewLink(s1, s2)
		_, callErr = self.Call(th, foreign, "x", nil, 1)
		s1.Shutdown(th)
		s2.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if callErr != ErrNotAnEnd {
		t.Errorf("err = %v, want ErrNotAnEnd", callErr)
	}
}

func TestCallAfterShutdown(t *testing.T) {
	os := newOS(t, 2)
	server, _ := Spawn(os, "server", 1, DefaultConfig(), nil)
	server.Bind("noop", func(ht *antfarm.Thread, args any, words int) (any, int, error) { return nil, 0, nil })
	var callErr error
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		if _, err := self.Call(th, l, "noop", nil, 1); err != nil {
			t.Errorf("first call: %v", err)
		}
		server.Shutdown(th)
		th.P().Advance(10 * sim.Millisecond)
		_, callErr = self.Call(th, l, "noop", nil, 1)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if callErr != ErrDown {
		t.Errorf("err = %v, want ErrDown", callErr)
	}
}

func TestRPCCostIsMilliseconds(t *testing.T) {
	// §4.2: "for the semantics provided, the costs are very reasonable" —
	// Lynx round trips measure in low milliseconds.
	os := newOS(t, 2)
	server, _ := Spawn(os, "server", 1, DefaultConfig(), nil)
	server.Bind("echo", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		return args, words, nil
	})
	var perCall int64
	Spawn(os, "client", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		l := NewLink(self, server)
		start := th.P().Engine().Now()
		const n = 20
		for i := 0; i < n; i++ {
			if _, err := self.Call(th, l, "echo", i, 8); err != nil {
				t.Errorf("Call: %v", err)
			}
		}
		perCall = (th.P().Engine().Now() - start) / n
		server.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if perCall < 500*sim.Microsecond || perCall > 10*sim.Millisecond {
		t.Errorf("per-call = %d ns, want 0.5-10 ms", perCall)
	}
}

func TestEndsAccessors(t *testing.T) {
	os := newOS(t, 2)
	a, _ := Spawn(os, "a", 0, DefaultConfig(), nil)
	b, _ := Spawn(os, "b", 1, DefaultConfig(), nil)
	l := NewLink(a, b)
	x, y := l.Ends()
	if x != a || y != b {
		t.Error("Ends mismatch")
	}
	if err := l.Move(nil, a); err != ErrNotAnEnd {
		t.Errorf("Move from non-end: %v", err)
	}
	l.Destroy()
	if err := l.Move(a, b); err != ErrLinkDestroyed {
		t.Errorf("Move on destroyed link: %v", err)
	}
	// Drain the two idle dispatchers so the sim terminates.
	Spawn(os, "killer", 0, DefaultConfig(), func(self *Proc, th *antfarm.Thread) {
		a.Shutdown(th)
		b.Shutdown(th)
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
