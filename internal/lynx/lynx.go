// Package lynx models the Lynx distributed programming language runtime
// (§3.2 of the paper): heavyweight processes containing lightweight threads,
// communicating by remote procedure call over links. Links are first-class:
// they can be created, destroyed, and moved dynamically, giving the
// programmer complete run-time control over the communication topology. A
// message dispatcher and thread scheduler in the run-time support package
// deliver the performance of asynchronous message passing while client
// threads see blocking RPC semantics; a fresh thread handles each incoming
// call, providing "automatic management of context for interleaved
// conversations". Remote exceptions propagate back to the caller, Ada-style.
package lynx

import (
	"errors"
	"fmt"

	"butterfly/internal/antfarm"
	"butterfly/internal/chrysalis"
	"butterfly/internal/fault"
	"butterfly/internal/sim"
)

// Config tunes the Lynx runtime costs.
type Config struct {
	// CallNs is the fixed client-side cost of issuing an RPC (stub entry,
	// secure type check, context save).
	CallNs int64
	// DispatchNs is the server-side dispatcher cost per message.
	DispatchNs int64
	// MarshalNsPerWord is the per-word cost of gathering/scattering message
	// parameters.
	MarshalNsPerWord int64
	// CallTimeoutNs bounds how long a caller waits for a reply; 0 (the
	// default) blocks forever. Set it under fault injection so a call to a
	// process whose node dies mid-conversation returns ErrTimeout instead of
	// hanging the calling thread.
	CallTimeoutNs int64
	// Farm tunes the embedded coroutine scheduler.
	Farm antfarm.Config
}

// DefaultConfig follows the measured message-passing overheads of Scott &
// Cox (cited as [49]): small RPCs complete in roughly two milliseconds.
func DefaultConfig() Config {
	return Config{
		CallNs:           400 * sim.Microsecond,
		DispatchNs:       300 * sim.Microsecond,
		MarshalNsPerWord: 2 * sim.Microsecond,
		Farm:             antfarm.DefaultConfig(),
	}
}

// Handler services one operation. It runs on its own thread inside the
// server process; args/words are the unmarshalled request. Returning a
// non-nil error raises the exception in the caller.
type Handler func(t *antfarm.Thread, args any, words int) (reply any, replyWords int, err error)

// Proc is a Lynx process.
type Proc struct {
	Name string
	Node int
	OS   *chrysalis.OS
	Cfg  Config

	farm     *antfarm.Farm
	reqCh    *antfarm.Channel
	handlers map[string]Handler
	links    map[*Link]bool
	stats    Stats
	down     bool
}

// Stats counts RPC activity at one process.
type Stats struct {
	CallsIssued   uint64
	CallsServiced uint64
	Exceptions    uint64
	Timeouts      uint64 // calls abandoned after CallTimeoutNs
}

// request is the on-the-wire form of a call.
type request struct {
	link    *Link
	op      string
	args    any
	words   int
	replyCh *antfarm.Channel
}

// reply is the on-the-wire form of a response.
type replyMsg struct {
	payload any
	errText string
}

const shutdownOp = "\x00shutdown"

// Spawn creates a Lynx process on a node. main, if non-nil, runs as the
// process's initial thread (alongside the dispatcher). Handlers service
// incoming calls; they may be bound before or during execution with Bind.
func Spawn(os *chrysalis.OS, name string, node int, cfg Config, main func(self *Proc, t *antfarm.Thread)) (*Proc, error) {
	if cfg.CallNs == 0 {
		cfg = DefaultConfig()
	}
	lp := &Proc{
		Name:     name,
		Node:     node,
		OS:       os,
		Cfg:      cfg,
		reqCh:    antfarm.NewChannelOn(os, node, 64),
		handlers: make(map[string]Handler),
		links:    make(map[*Link]bool),
	}
	_, err := os.MakeProcess(nil, "lynx:"+name, node, 64, func(self *chrysalis.Process) {
		antfarm.Run(self, cfg.Farm, func(t *antfarm.Thread) {
			lp.farm = t.Farm
			t.Farm.Spawn("dispatcher", lp.dispatcher)
			if main != nil {
				main(lp, t)
				// The initial thread's return ends the process: stop our own
				// dispatcher so the farm can drain. Pure servers pass a nil
				// main and run until another process calls Shutdown.
				lp.Shutdown(t)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return lp, nil
}

// Bind registers a handler for an operation name.
func (lp *Proc) Bind(op string, h Handler) {
	lp.handlers[op] = h
}

// dispatcher receives requests and spawns a handler thread per call.
func (lp *Proc) dispatcher(t *antfarm.Thread) {
	for {
		v, _ := lp.reqCh.Recv(t)
		req := v.(request)
		if req.op == shutdownOp {
			lp.down = true
			return
		}
		t.P().Advance(lp.Cfg.DispatchNs)
		lp.stats.CallsServiced++
		h, ok := lp.handlers[req.op]
		t.Farm.Spawn("handler:"+req.op, func(ht *antfarm.Thread) {
			if !ok {
				ht.P().Advance(lp.Cfg.MarshalNsPerWord) // error path marshal
				req.replyCh.Send(ht, replyMsg{errText: fmt.Sprintf("lynx: no entry %q in %s", req.op, lp.Name)}, 1)
				return
			}
			out, outWords, err := h(ht, req.args, req.words)
			msg := replyMsg{payload: out}
			if err != nil {
				lp.stats.Exceptions++
				msg.errText = err.Error()
				outWords = 1
			}
			ht.P().Advance(int64(outWords) * lp.Cfg.MarshalNsPerWord)
			req.replyCh.Send(ht, msg, outWords)
		})
	}
}

// Stats returns a copy of the process counters.
func (lp *Proc) Stats() Stats { return lp.stats }

// Farm exposes the process's coroutine scheduler (nil until started).
func (lp *Proc) Farm() *antfarm.Farm { return lp.farm }

// Shutdown stops the process's dispatcher. It must be called from a running
// thread (of any process).
func (lp *Proc) Shutdown(t *antfarm.Thread) {
	lp.reqCh.Send(t, request{op: shutdownOp}, 1)
}

// Link errors.
var (
	ErrLinkDestroyed = errors.New("lynx: link has been destroyed")
	ErrNotAnEnd      = errors.New("lynx: calling process holds no end of this link")
	ErrDown          = errors.New("lynx: remote process has shut down")
	ErrTimeout       = errors.New("lynx: call timed out awaiting reply")
)

// Link is a movable, destroyable connection between two processes.
type Link struct {
	ends  [2]*Proc
	alive bool
}

// NewLink connects two processes.
func NewLink(a, b *Proc) *Link {
	l := &Link{ends: [2]*Proc{a, b}, alive: true}
	a.links[l] = true
	b.links[l] = true
	return l
}

// Ends returns the current endpoint processes.
func (l *Link) Ends() (a, b *Proc) { return l.ends[0], l.ends[1] }

// Alive reports whether the link still exists.
func (l *Link) Alive() bool { return l.alive }

// Destroy removes the link; subsequent calls through it fail.
func (l *Link) Destroy() {
	l.alive = false
	delete(l.ends[0].links, l)
	delete(l.ends[1].links, l)
}

// Move transfers the end currently bound to from onto to — the dynamic
// topology reconfiguration that distinguishes Lynx from compile-time-bound
// languages.
func (l *Link) Move(from, to *Proc) error {
	if !l.alive {
		return ErrLinkDestroyed
	}
	for i, e := range l.ends {
		if e == from {
			delete(from.links, l)
			l.ends[i] = to
			to.links[l] = true
			return nil
		}
	}
	return ErrNotAnEnd
}

// other returns the process at the far end of the link from lp.
func (l *Link) other(lp *Proc) (*Proc, error) {
	if !l.alive {
		return nil, ErrLinkDestroyed
	}
	switch lp {
	case l.ends[0]:
		return l.ends[1], nil
	case l.ends[1]:
		return l.ends[0], nil
	}
	return nil, ErrNotAnEnd
}

// Call performs a blocking remote procedure call over the link from the
// calling thread's process. Other threads of the caller keep running while
// this thread awaits the reply — that is the whole point of the
// thread/dispatcher design.
func (lp *Proc) Call(t *antfarm.Thread, l *Link, op string, args any, words int) (reply any, err error) {
	callee, err := l.other(lp)
	if err != nil {
		return nil, err
	}
	if callee.down {
		return nil, ErrDown
	}
	if lp.OS.M.NodeFailed(callee.Node) {
		return nil, ErrDown
	}
	lp.stats.CallsIssued++
	t.P().Advance(lp.Cfg.CallNs + int64(words)*lp.Cfg.MarshalNsPerWord)
	replyCh := antfarm.NewChannelOn(lp.OS, lp.Node, 1)
	if err := lp.sendRequest(t, callee, request{link: l, op: op, args: args, words: words, replyCh: replyCh}, words); err != nil {
		return nil, err
	}
	var v any
	if lp.Cfg.CallTimeoutNs > 0 {
		var ok bool
		v, _, ok = replyCh.RecvTimeout(t, lp.Cfg.CallTimeoutNs)
		if !ok {
			lp.stats.Timeouts++
			return nil, ErrTimeout
		}
	} else {
		v, _ = replyCh.Recv(t)
	}
	msg := v.(replyMsg)
	if msg.errText != "" {
		return nil, &RemoteError{Op: op, Process: callee.Name, Text: msg.errText}
	}
	return msg.payload, nil
}

// sendRequest delivers a request to the callee's channel, converting a
// reference-fault panic (the callee's node failing mid-send, or an
// exhausted retransmission) into an error on the calling thread.
func (lp *Proc) sendRequest(t *antfarm.Thread, callee *Proc, req request, words int) (err error) {
	defer fault.CatchRef(&err)
	callee.reqCh.Send(t, req, words)
	return nil
}

// RemoteError is an exception raised in a remote handler and re-raised at
// the caller.
type RemoteError struct {
	Op      string
	Process string
	Text    string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("lynx: remote exception in %s.%s: %s", e.Process, e.Op, e.Text)
}
