package antfarm

import (
	"fmt"
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

func newOS(t *testing.T, nodes int) *chrysalis.OS {
	t.Helper()
	return chrysalis.New(machine.New(machine.DefaultConfig(nodes)))
}

func TestThreadsInterleave(t *testing.T) {
	os := newOS(t, 2)
	var order []string
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			main.Farm.Spawn("a", func(a *Thread) {
				for i := 0; i < 3; i++ {
					order = append(order, "a")
					a.YieldThread()
				}
			})
			main.Farm.Spawn("b", func(b *Thread) {
				for i := 0; i < 3; i++ {
					order = append(order, "b")
					b.YieldThread()
				}
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestManyThreads(t *testing.T) {
	// The point of Ant Farm: very large numbers of lightweight blockable
	// threads (one per graph node).
	os := newOS(t, 2)
	const n = 1000
	count := 0
	var farm *Farm
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		farm = Run(self, DefaultConfig(), func(main *Thread) {
			for i := 0; i < n; i++ {
				main.Farm.Spawn(fmt.Sprintf("t%d", i), func(x *Thread) {
					count++
				})
			}
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
	if farm.Stats().Spawned != n+1 {
		t.Errorf("spawned = %d", farm.Stats().Spawned)
	}
}

func TestBlockUnblockWithinFarm(t *testing.T) {
	os := newOS(t, 2)
	var woke bool
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			var waiter *Thread
			waiter = main.Farm.Spawn("waiter", func(w *Thread) {
				w.BlockThread("test")
				woke = true
			})
			main.Farm.Spawn("waker", func(k *Thread) {
				k.P().Advance(1 * sim.Millisecond)
				if !waiter.Blocked() {
					t.Error("waiter not blocked")
				}
				waiter.Unblock(k.P())
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !woke {
		t.Error("waiter never woke")
	}
}

func TestChannelSameFarm(t *testing.T) {
	os := newOS(t, 2)
	var got []int
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			ch := main.Farm.NewChannel(2)
			main.Farm.Spawn("producer", func(p *Thread) {
				for i := 0; i < 5; i++ {
					ch.Send(p, i, 1)
				}
			})
			main.Farm.Spawn("consumer", func(c *Thread) {
				for i := 0; i < 5; i++ {
					v, _ := ch.Recv(c)
					got = append(got, v.(int))
				}
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestChannelCrossFarm(t *testing.T) {
	// Threads communicate "without regard to location": a thread on node 0
	// talks to a thread on node 1; the idle receiving farm is woken by a
	// Chrysalis event.
	os := newOS(t, 2)
	var farmB *Farm
	ready := make(chan *Channel, 1) // Go-level plumbing executed at setup
	var got int
	os.MakeProcess(nil, "farmB", 1, 16, func(self *chrysalis.Process) {
		farmB = Run(self, DefaultConfig(), func(main *Thread) {
			ch := main.Farm.NewChannel(0)
			ready <- ch
			v, words := ch.Recv(main)
			got = v.(int)
			if words != 64 {
				t.Errorf("words = %d", words)
			}
		})
	})
	os.MakeProcess(nil, "farmA", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			main.P().Advance(5 * sim.Millisecond) // let B block first
			ch := <-ready
			ch.Send(main, 77, 64)
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 77 {
		t.Errorf("got = %d", got)
	}
	if farmB.Stats().Idles == 0 {
		t.Error("farm B never idled; cross-farm wake not exercised")
	}
}

func TestRendezvousChannelBlocksSender(t *testing.T) {
	os := newOS(t, 2)
	var sendDone, recvStart int64
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			ch := main.Farm.NewChannel(0)
			main.Farm.Spawn("s", func(s *Thread) {
				ch.Send(s, "x", 1)
				sendDone = s.P().Engine().Now()
			})
			main.Farm.Spawn("r", func(r *Thread) {
				r.P().Advance(3 * sim.Millisecond)
				recvStart = r.P().Engine().Now()
				ch.Recv(r)
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sendDone < recvStart {
		t.Errorf("rendezvous send completed at %d before receiver arrived at %d", sendDone, recvStart)
	}
}

func TestRemoteSpawn(t *testing.T) {
	os := newOS(t, 2)
	var ranOn int
	farmReady := make(chan *Farm, 1)
	hold := make(chan struct{})
	os.MakeProcess(nil, "target", 1, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			farmReady <- main.Farm
			close(hold)
			main.BlockThread("awaiting remote work") // woken implicitly? no: keep alive via spawn
		})
	})
	os.MakeProcess(nil, "spawner", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			<-hold
			main.P().Advance(2 * sim.Millisecond)
			target := <-farmReady
			target.Spawn("remote", func(r *Thread) {
				ranOn = r.P().Node
				// Wake the blocked main thread so the farm can finish.
				for _, th := range r.Farm.threads {
					if th.Blocked() {
						th.Unblock(r.P())
					}
				}
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ranOn != 1 {
		t.Errorf("remote thread ran on node %d, want 1", ranOn)
	}
}

func TestTryRecv(t *testing.T) {
	os := newOS(t, 2)
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			ch := main.Farm.NewChannel(4)
			if _, _, ok := ch.TryRecv(main); ok {
				t.Error("TryRecv on empty channel returned ok")
			}
			ch.Send(main, 5, 1)
			if v, _, ok := ch.TryRecv(main); !ok || v.(int) != 5 {
				t.Errorf("TryRecv = %v,%v", v, ok)
			}
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBufferAdmitsBlockedSender(t *testing.T) {
	os := newOS(t, 2)
	sent := 0
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			ch := main.Farm.NewChannel(1)
			main.Farm.Spawn("s", func(s *Thread) {
				for i := 0; i < 3; i++ {
					ch.Send(s, i, 1) // second send blocks on the full buffer
					sent++
				}
			})
			main.Farm.Spawn("r", func(r *Thread) {
				for i := 0; i < 3; i++ {
					r.P().Advance(1 * sim.Millisecond)
					if v, _ := ch.Recv(r); v.(int) != i {
						t.Errorf("recv %d != %d", v, i)
					}
				}
			})
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sent != 3 {
		t.Errorf("sent = %d", sent)
	}
}

func TestCheapSwitches(t *testing.T) {
	// Coroutine switches must cost tens of microseconds — far less than
	// Chrysalis process operations.
	os := newOS(t, 2)
	var elapsed int64
	var farm *Farm
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		start := os.M.E.Now()
		farm = Run(self, DefaultConfig(), func(main *Thread) {
			for i := 0; i < 100; i++ {
				main.YieldThread()
			}
		})
		elapsed = os.M.E.Now() - start
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	perSwitch := elapsed / int64(farm.Stats().Switches)
	if perSwitch > 100*sim.Microsecond {
		t.Errorf("per-switch cost = %d ns, want tens of us", perSwitch)
	}
}

func TestFarmOf(t *testing.T) {
	os := newOS(t, 2)
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			if FarmOf(self) != main.Farm {
				t.Error("FarmOf mismatch during run")
			}
		})
		if FarmOf(self) != nil {
			t.Error("FarmOf should be nil after Run returns")
		}
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockedFarmReported(t *testing.T) {
	os := newOS(t, 2)
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			main.BlockThread("never woken")
		})
	})
	err := os.M.E.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %T", err)
	}
}

func TestJoinWithinFarm(t *testing.T) {
	os := newOS(t, 2)
	var order []string
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			worker := main.Farm.Spawn("worker", func(w *Thread) {
				w.Sleep(3 * sim.Millisecond)
				order = append(order, "worker")
			})
			main.Join(worker)
			order = append(order, "main")
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "worker" || order[1] != "main" {
		t.Errorf("order = %v", order)
	}
}

func TestJoinFinishedThread(t *testing.T) {
	os := newOS(t, 2)
	ok := false
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			w := main.Farm.Spawn("quick", func(w *Thread) {})
			main.YieldThread() // let it finish
			main.Join(w)       // must not block
			ok = true
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ok {
		t.Error("join on finished thread hung")
	}
}

func TestSleepChargesTime(t *testing.T) {
	os := newOS(t, 2)
	var elapsed int64
	os.MakeProcess(nil, "farm", 0, 16, func(self *chrysalis.Process) {
		Run(self, DefaultConfig(), func(main *Thread) {
			t0 := os.M.E.Now()
			main.Sleep(5 * sim.Millisecond)
			elapsed = os.M.E.Now() - t0
		})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed != 5*sim.Millisecond {
		t.Errorf("slept %d", elapsed)
	}
}
