// Package antfarm implements the Ant Farm package (§3.2 of the paper): very
// large numbers of lightweight, blockable threads layered over Chrysalis.
// Invocation of a blocking operation by a thread causes an implicit context
// switch to another runnable thread in the same Chrysalis process; if no
// thread is runnable, the coroutine scheduler blocks the whole process until
// a Chrysalis event is received. Combined with a global name space and
// facilities for starting remote threads, lightweight threads communicate
// without regard to location.
//
// Ant Farm was created because parallel graph algorithms "often call for one
// process per node of the graph" and none of the earlier environments
// supported blockable lightweight processes (§4.2).
package antfarm

import (
	"fmt"
	"sync"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Config tunes a farm.
type Config struct {
	// SwitchNs is the coroutine context-switch cost.
	SwitchNs int64
	// SpawnNs is the cost of creating a thread (stack carving, descriptor).
	SpawnNs int64
}

// DefaultConfig returns the standard calibration: coroutine switches cost
// tens of microseconds, far below Chrysalis process operations.
func DefaultConfig() Config {
	return Config{
		SwitchNs: 30 * sim.Microsecond,
		SpawnNs:  150 * sim.Microsecond,
	}
}

// threadState tracks a thread's lifecycle.
type threadState int

const (
	threadReady threadState = iota
	threadRunning
	threadBlocked
	threadDone
)

// Thread is one lightweight Ant Farm thread. While a thread runs, it *is*
// the farm's Chrysalis process: it issues machine operations through
// Farm.P and charges that process's virtual time.
type Thread struct {
	ID   int
	Name string
	Farm *Farm

	resume    chan struct{}
	state     threadState
	blockedOn string
	body      func(t *Thread)
	joiners   []*Thread
	// timedSeq is a generation counter for timed blocks: each block bumps
	// it, so stale deadline entries from an earlier block never expire the
	// thread's current one. timedOut reports how the last timed block ended.
	timedSeq uint64
	timedOut bool
}

// Farm is the per-process coroutine scheduler plus thread table.
type Farm struct {
	Pr  *chrysalis.Process
	P   *sim.Proc
	OS  *chrysalis.OS
	Cfg Config

	threads  []*Thread
	runnable []*Thread
	current  *Thread
	live     int
	yield    chan struct{}
	wakeup   *chrysalis.Event
	// fatal holds a process-terminating panic value (the engine's kill/exit
	// sentinel or a hardware-fault Terminator) that unwound a *thread*
	// goroutine; the scheduler re-raises it on the farm's root goroutine,
	// where the engine's recovery handler runs.
	fatal any
	// pendingWake records that a wakeup post is owed because the farm may
	// be blocked in its scheduler.
	idle bool
	// timed holds the pending deadlines of threads blocked with a timeout;
	// the scheduler expires them and bounds its idle waits by the nearest.
	timed []timedWaiter

	stats Stats
}

// timedWaiter is one thread's pending timed-block deadline. seq snapshots
// the thread's generation counter so a wake-then-reblock cannot be expired
// by a stale entry.
type timedWaiter struct {
	t        *Thread
	seq      uint64
	deadline int64
}

// Stats counts farm activity.
type Stats struct {
	Spawned  int
	Switches uint64
	Idles    uint64 // times the whole process blocked awaiting an event
}

// Run turns the calling Chrysalis process into an Ant Farm: it creates the
// farm, starts main as the first thread, and schedules threads until none
// remain alive. It returns the farm (whose Stats are then final). Run must
// be called from within the process's body function.
func Run(self *chrysalis.Process, cfg Config, main func(t *Thread)) *Farm {
	if cfg.SwitchNs == 0 {
		cfg = DefaultConfig()
	}
	f := &Farm{
		Pr:    self,
		P:     self.P,
		OS:    self.OS,
		Cfg:   cfg,
		yield: make(chan struct{}),
	}
	f.wakeup = f.OS.NewEvent(self)
	farmsMu.Lock()
	farms[self] = f
	farmsMu.Unlock()
	// Deregister on the way out even when a kill or fault unwinds the
	// scheduler (a farm on a failed node must not leak its table entry).
	defer func() {
		farmsMu.Lock()
		delete(farms, self)
		farmsMu.Unlock()
	}()
	f.Spawn("main", main)
	f.scheduleLoop()
	return f
}

// farms maps Chrysalis processes to their farms. One simulation is
// single-threaded, but the experiment lab runs independent simulations
// concurrently on separate OS threads, and this is the one package-level
// mutable table they share — hence the mutex. Keys never collide across
// simulations (each machine has its own processes), so the lock protects
// only the map structure, never logical state.
var (
	farmsMu sync.Mutex
	farms   = map[*chrysalis.Process]*Farm{}
)

// FarmOf returns the farm running inside a Chrysalis process, or nil.
func FarmOf(pr *chrysalis.Process) *Farm {
	farmsMu.Lock()
	defer farmsMu.Unlock()
	return farms[pr]
}

// Spawn creates a new thread in this farm. It may be called from any thread
// of any farm (remote spawn: "facilities for starting remote coroutines");
// the *caller's* process is charged the spawn cost, plus remote references
// when the farm lives on another node.
func (f *Farm) Spawn(name string, body func(t *Thread)) *Thread {
	t := &Thread{
		ID:     len(f.threads),
		Name:   name,
		Farm:   f,
		resume: make(chan struct{}),
		state:  threadReady,
		body:   body,
	}
	f.threads = append(f.threads, t)
	f.live++
	f.stats.Spawned++
	go func() {
		<-t.resume
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			// While a thread runs it *is* the farm's process, so a node kill
			// (the engine's exit sentinel) or an unhandled hardware fault can
			// unwind this goroutine instead of the process's root. Forward
			// the value to the scheduler, which dies with it in the right
			// place; anything else is a real bug and propagates.
			if term, ok := r.(sim.Terminator); sim.IsExitPanic(r) || (ok && term.TerminatesProcess()) {
				f.fatal = r
				f.yield <- struct{}{}
				return
			}
			panic(r)
		}()
		t.body(t)
		t.state = threadDone
		f.live--
		for _, j := range t.joiners {
			j.Unblock(f.P)
		}
		t.joiners = nil
		f.yield <- struct{}{}
	}()
	f.runnable = append(f.runnable, t)
	// Charge the spawning process (which may be a thread of another farm).
	if cur := f.P.Engine().Running(); cur != nil {
		cur.Advance(f.Cfg.SpawnNs)
		if cur != f.P {
			// Remote spawn: touch the farm's node and wake it if idle. Flush
			// the lazy reference charge before inspecting the idle flag.
			f.OS.M.Atomic(cur, f.P.Node)
			cur.Sync()
			f.kick(cur)
		}
	}
	return t
}

// kick wakes the farm's scheduler if it is blocked awaiting work. waker is
// the process performing the wake.
func (f *Farm) kick(waker *sim.Proc) {
	if f.idle {
		f.idle = false
		f.wakeup.Post(waker, 0)
	}
}

// scheduleLoop runs threads until none are alive.
func (f *Farm) scheduleLoop() {
	for f.live > 0 {
		f.expireTimed()
		if len(f.runnable) == 0 {
			// Block the whole process until a Chrysalis event arrives — or,
			// when threads hold timed blocks, until the nearest deadline.
			f.idle = true
			f.stats.Idles++
			if dl, pending := f.nextDeadline(); pending {
				if wait := dl - f.P.LocalNow(); wait > 0 {
					f.wakeup.WaitTimeout(f.P, wait)
				}
			} else {
				f.wakeup.Wait(f.P)
			}
			f.idle = false
			continue
		}
		t := f.runnable[0]
		f.runnable = f.runnable[:copy(f.runnable, f.runnable[1:])]
		f.P.Advance(f.Cfg.SwitchNs)
		f.stats.Switches++
		f.current = t
		t.state = threadRunning
		t.resume <- struct{}{}
		<-f.yield
		if f.fatal != nil {
			panic(f.fatal) // re-raise a forwarded kill/fault on the root goroutine
		}
		f.current = nil
	}
}

// Current returns the running thread, or nil while the scheduler itself is
// active.
func (f *Farm) Current() *Thread { return f.current }

// Stats returns a copy of the farm counters.
func (f *Farm) Stats() Stats { return f.stats }

// Live returns the number of threads not yet finished.
func (f *Farm) Live() int { return f.live }

// park hands control from the running thread back to the scheduler.
func (t *Thread) park() {
	t.Farm.yield <- struct{}{}
	<-t.resume
	t.state = threadRunning
}

// mustBeCurrent panics unless t is the farm's running thread.
func (t *Thread) mustBeCurrent(op string) {
	if t.Farm.current != t {
		panic(fmt.Sprintf("antfarm: %s called on thread %q which is not running", op, t.Name))
	}
}

// YieldThread voluntarily reschedules the thread behind its runnable peers.
func (t *Thread) YieldThread() {
	t.mustBeCurrent("YieldThread")
	t.state = threadReady
	t.Farm.runnable = append(t.Farm.runnable, t)
	t.park()
}

// expireTimed requeues every timed-blocked thread whose deadline has
// passed, marking it timed out. Stale entries (the thread was woken, or
// finished, or re-blocked since) are discarded.
func (f *Farm) expireTimed() {
	if len(f.timed) == 0 {
		return
	}
	now := f.P.LocalNow()
	kept := f.timed[:0]
	for _, e := range f.timed {
		if e.seq != e.t.timedSeq || e.t.state != threadBlocked {
			continue
		}
		if now >= e.deadline {
			e.t.timedOut = true
			e.t.state = threadReady
			f.runnable = append(f.runnable, e.t)
			continue
		}
		kept = append(kept, e)
	}
	f.timed = kept
}

// nextDeadline returns the earliest live timed-block deadline.
func (f *Farm) nextDeadline() (dl int64, pending bool) {
	for _, e := range f.timed {
		if e.seq != e.t.timedSeq || e.t.state != threadBlocked {
			continue
		}
		if !pending || e.deadline < dl {
			dl, pending = e.deadline, true
		}
	}
	return dl, pending
}

// BlockThread suspends the thread until another thread (possibly in another
// farm) calls Unblock.
func (t *Thread) BlockThread(reason string) {
	t.mustBeCurrent("BlockThread")
	t.timedSeq++ // invalidate any stale timed entry from an earlier block
	t.state = threadBlocked
	t.blockedOn = reason
	t.park()
}

// BlockThreadTimeout suspends the thread until Unblock or until d
// nanoseconds of virtual time elapse, whichever comes first. It reports
// whether the block timed out. A timed-out thread is requeued by its own
// scheduler, so a lost wake-up can never hang the farm.
func (t *Thread) BlockThreadTimeout(reason string, d int64) (timedOut bool) {
	t.mustBeCurrent("BlockThreadTimeout")
	t.timedSeq++
	t.timedOut = false
	t.state = threadBlocked
	t.blockedOn = reason
	t.Farm.timed = append(t.Farm.timed, timedWaiter{t: t, seq: t.timedSeq, deadline: t.Farm.P.LocalNow() + d})
	t.park()
	return t.timedOut
}

// Unblock makes a blocked thread runnable. waker is the process performing
// the wake (charged for the remote reference and event post if the thread's
// farm is idle on another node).
func (t *Thread) Unblock(waker *sim.Proc) {
	if t.state != threadBlocked {
		panic(fmt.Sprintf("antfarm: Unblock of thread %q in state %d", t.Name, t.state))
	}
	t.state = threadReady
	t.Farm.runnable = append(t.Farm.runnable, t)
	if waker != t.Farm.P {
		t.Farm.OS.M.Atomic(waker, t.Farm.P.Node)
		waker.Sync() // observe the farm's idle flag at the reference's completion time
	}
	t.Farm.kick(waker)
}

// Blocked reports whether the thread is blocked.
func (t *Thread) Blocked() bool { return t.state == threadBlocked }

// Done reports whether the thread has finished.
func (t *Thread) Done() bool { return t.state == threadDone }

// P returns the simulated process the thread executes on, for issuing
// machine operations (reads, flops) while the thread runs.
func (t *Thread) P() *sim.Proc { return t.Farm.P }

// Join blocks the calling thread until target finishes. It is implemented
// with a channel handshake so joins work across farms.
func (t *Thread) Join(target *Thread) {
	t.mustBeCurrent("Join")
	if target.state == threadDone {
		return
	}
	target.joiners = append(target.joiners, t)
	t.BlockThread("join " + target.Name)
}

// Sleep suspends the calling thread (and, because threads are coroutines,
// its whole farm's processor) for d nanoseconds of virtual time — the
// faithful cost of a compute-bound or delaying thread on the Butterfly.
func (t *Thread) Sleep(d int64) {
	t.mustBeCurrent("Sleep")
	t.Farm.P.Advance(d)
}
