package antfarm

import (
	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Channel carries typed values between threads "without regard to location":
// same-farm communication costs a coroutine switch; cross-farm communication
// pays remote references and a block copy of the payload, and wakes the
// receiving farm through its Chrysalis event. Channels live in the global
// heap on the node of their creating farm.
type Channel struct {
	// Node is the home node of the channel descriptor.
	Node int
	// Cap is the buffer capacity in messages; 0 means rendezvous.
	Cap int

	os       osRef
	buf      []chanMsg
	sendersQ []*Thread
	recvQ    []*Thread
	// handoff carries a message directly to a woken receiver.
	handoff map[*Thread]chanMsg
	// sendersW counts words pending from blocked senders (rendezvous).
	pendingSend map[*Thread]chanMsg
}

type chanMsg struct {
	payload any
	words   int
	from    int // sender's node, for copy accounting on late receive
}

// osRef is the subset of the OS the channel needs; it avoids holding a farm
// pointer (channels outlive and span farms).
type osRef interface {
	Atomic(p *sim.Proc, node int)
	BlockCopy(p *sim.Proc, src, dst, words int)
}

// NewChannel creates a channel homed on the creating farm's node.
func (f *Farm) NewChannel(capacity int) *Channel {
	return NewChannelOn(f.OS, f.P.Node, capacity)
}

// NewChannelOn creates a channel homed on an arbitrary node, usable before
// any farm exists (higher layers such as Lynx allocate request channels at
// process-creation time).
func NewChannelOn(os *chrysalis.OS, node, capacity int) *Channel {
	return &Channel{
		Node:        node,
		Cap:         capacity,
		os:          os.M,
		handoff:     map[*Thread]chanMsg{},
		pendingSend: map[*Thread]chanMsg{},
	}
}

// chargeTouch charges the running thread for touching the channel
// descriptor (atomic on its home node).
func (c *Channel) chargeTouch(t *Thread) {
	c.os.Atomic(t.P(), c.Node)
	// Channel state is shared across farms: flush the lazy reference charge
	// so the queues are observed at the touch's completion time.
	t.P().Sync()
}

// Send transmits payload (charged as words 32-bit words) on the channel,
// blocking while the buffer is full (or, for a rendezvous channel, until a
// receiver arrives).
func (c *Channel) Send(t *Thread, payload any, words int) {
	t.mustBeCurrent("Channel.Send")
	c.chargeTouch(t)
	msg := chanMsg{payload: payload, words: words, from: t.P().Node}
	// Direct handoff to a waiting receiver.
	if r := c.popReceiver(); r != nil {
		c.deliver(t.P(), r, msg)
		return
	}
	if len(c.buf) < c.Cap {
		c.buf = append(c.buf, msg)
		return
	}
	// Buffer full (or rendezvous): block until a receiver takes it.
	c.pendingSend[t] = msg
	c.sendersQ = append(c.sendersQ, t)
	t.BlockThread("antfarm channel send")
}

// popReceiver returns the longest-waiting receiver that is still blocked,
// discarding stale queue entries: a RecvTimeout whose deadline has expired
// leaves its thread in recvQ (marked ready by its farm's scheduler) until
// the thread runs and withdraws, and delivering to it would misdeliver the
// message and panic the wake.
func (c *Channel) popReceiver() *Thread {
	for len(c.recvQ) > 0 {
		r := c.recvQ[0]
		c.recvQ = c.recvQ[:copy(c.recvQ, c.recvQ[1:])]
		if r.state == threadBlocked {
			return r
		}
	}
	return nil
}

// deliver hands msg to receiver thread r, paying the payload copy if the
// farms live on different nodes, and wakes r.
func (c *Channel) deliver(sender *sim.Proc, r *Thread, msg chanMsg) {
	if msg.words > 0 && msg.from != r.Farm.P.Node {
		c.os.BlockCopy(sender, msg.from, r.Farm.P.Node, msg.words)
		// Flush the lazy copy charge: the receiver becomes runnable at the
		// copy's completion time, not its start.
		sender.Sync()
	}
	c.handoff[r] = msg
	r.Unblock(sender)
}

// Recv blocks until a message is available and returns it with its charged
// word count.
func (c *Channel) Recv(t *Thread) (payload any, words int) {
	t.mustBeCurrent("Channel.Recv")
	c.chargeTouch(t)
	if len(c.buf) > 0 {
		msg := c.buf[0]
		c.buf = c.buf[:copy(c.buf, c.buf[1:])]
		if msg.words > 0 && msg.from != t.Farm.P.Node {
			c.os.BlockCopy(t.P(), msg.from, t.Farm.P.Node, msg.words)
			t.P().Sync()
		}
		// A blocked sender can now slot its message into the buffer.
		c.admitSender(t.P())
		return msg.payload, msg.words
	}
	if len(c.sendersQ) > 0 {
		// Rendezvous with a blocked sender.
		s := c.sendersQ[0]
		c.sendersQ = c.sendersQ[:copy(c.sendersQ, c.sendersQ[1:])]
		msg := c.pendingSend[s]
		delete(c.pendingSend, s)
		if msg.words > 0 && msg.from != t.Farm.P.Node {
			c.os.BlockCopy(t.P(), msg.from, t.Farm.P.Node, msg.words)
			t.P().Sync()
		}
		s.Unblock(t.P())
		return msg.payload, msg.words
	}
	// Nothing available: block.
	c.recvQ = append(c.recvQ, t)
	t.BlockThread("antfarm channel recv")
	msg := c.handoff[t]
	delete(c.handoff, t)
	return msg.payload, msg.words
}

// RecvTimeout is Recv bounded by d nanoseconds of virtual time: ok is false
// if no message arrived before the deadline. On timeout the thread has
// withdrawn from the receiver queue, so a later Send is not misdelivered.
func (c *Channel) RecvTimeout(t *Thread, d int64) (payload any, words int, ok bool) {
	t.mustBeCurrent("Channel.RecvTimeout")
	c.chargeTouch(t)
	if len(c.buf) > 0 {
		msg := c.buf[0]
		c.buf = c.buf[:copy(c.buf, c.buf[1:])]
		if msg.words > 0 && msg.from != t.Farm.P.Node {
			c.os.BlockCopy(t.P(), msg.from, t.Farm.P.Node, msg.words)
			t.P().Sync()
		}
		c.admitSender(t.P())
		return msg.payload, msg.words, true
	}
	if len(c.sendersQ) > 0 {
		s := c.sendersQ[0]
		c.sendersQ = c.sendersQ[:copy(c.sendersQ, c.sendersQ[1:])]
		msg := c.pendingSend[s]
		delete(c.pendingSend, s)
		if msg.words > 0 && msg.from != t.Farm.P.Node {
			c.os.BlockCopy(t.P(), msg.from, t.Farm.P.Node, msg.words)
			t.P().Sync()
		}
		s.Unblock(t.P())
		return msg.payload, msg.words, true
	}
	c.recvQ = append(c.recvQ, t)
	if t.BlockThreadTimeout("antfarm channel recv", d) {
		for i, r := range c.recvQ {
			if r == t {
				c.recvQ = append(c.recvQ[:i], c.recvQ[i+1:]...)
				break
			}
		}
		return nil, 0, false
	}
	msg := c.handoff[t]
	delete(c.handoff, t)
	return msg.payload, msg.words, true
}

// TryRecv returns immediately; ok is false when no buffered message exists.
func (c *Channel) TryRecv(t *Thread) (payload any, words int, ok bool) {
	t.mustBeCurrent("Channel.TryRecv")
	c.chargeTouch(t)
	if len(c.buf) == 0 {
		return nil, 0, false
	}
	msg := c.buf[0]
	c.buf = c.buf[:copy(c.buf, c.buf[1:])]
	if msg.words > 0 && msg.from != t.Farm.P.Node {
		c.os.BlockCopy(t.P(), msg.from, t.Farm.P.Node, msg.words)
		t.P().Sync()
	}
	c.admitSender(t.P())
	return msg.payload, msg.words, true
}

// admitSender moves the longest-blocked sender's message into the freed
// buffer slot.
func (c *Channel) admitSender(waker *sim.Proc) {
	if len(c.sendersQ) == 0 || len(c.buf) >= c.Cap {
		return
	}
	s := c.sendersQ[0]
	c.sendersQ = c.sendersQ[:copy(c.sendersQ, c.sendersQ[1:])]
	c.buf = append(c.buf, c.pendingSend[s])
	delete(c.pendingSend, s)
	s.Unblock(waker)
}

// Len reports buffered messages.
func (c *Channel) Len() int { return len(c.buf) }
