// Package psyche models the Psyche operating system design (Scott, LeBlanc
// & Marsh; §3.4 of the paper — under construction on the Butterfly Plus when
// the paper was written). Psyche aims at truly general-purpose parallel
// computing: it must support many programming models at once and let program
// fragments written under different models coexist and interact.
//
// Its mechanisms, reproduced here:
//
//   - A uniform virtual address space shared by all threads, in which
//     passive data abstractions called realms live. A realm's access
//     protocol (its operations) defines the conventions for sharing.
//   - An explicit tradeoff between protection and performance: a realm
//     opened without protection boundaries is invoked as efficiently as a
//     procedure call; a protected realm costs a kernel trap on every
//     invocation.
//   - Lazy evaluation of privileges: rights are checked (against keys and
//     access lists) only on first contact between a protection domain and a
//     realm; the verified privilege is then cached so later invocations pay
//     nothing for protection they have already established.
package psyche

import (
	"errors"
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Right is a privilege bit.
type Right int

// Rights.
const (
	// RightInvoke permits calling the realm's operations.
	RightInvoke Right = 1 << iota
	// RightDestroy permits destroying the realm.
	RightDestroy
	// RightGrant permits adding entries to the realm's access list.
	RightGrant
)

// Key is an unforgeable capability token held by protection domains.
type Key uint64

// Protection selects a realm's invocation discipline — the explicit
// protection/performance tradeoff.
type Protection int

// Protection levels.
const (
	// Optimized realms are invoked like procedure calls; the access
	// conventions are not enforced after the first (lazy) check.
	Optimized Protection = iota
	// Protected realms trap to the kernel on every invocation.
	Protected
)

func (p Protection) String() string {
	if p == Protected {
		return "protected"
	}
	return "optimized"
}

// Costs calibrates the kernel.
type Costs struct {
	// ProcCallNs is an optimized invocation's overhead (a procedure call).
	ProcCallNs int64
	// KernelTrapNs is the cost of entering and leaving the kernel.
	KernelTrapNs int64
	// ACLCheckNsPerEntry is the per-entry cost of scanning an access list
	// during lazy privilege evaluation.
	ACLCheckNsPerEntry int64
}

// DefaultCosts returns plausible Butterfly Plus figures.
func DefaultCosts() Costs {
	return Costs{
		ProcCallNs:         5 * sim.Microsecond,
		KernelTrapNs:       250 * sim.Microsecond,
		ACLCheckNsPerEntry: 10 * sim.Microsecond,
	}
}

// Kernel is one Psyche instance.
type Kernel struct {
	OS    *chrysalis.OS
	Costs Costs

	nextKey Key
	realms  []*Realm
	stats   Stats
}

// Stats counts kernel activity.
type Stats struct {
	Invocations     uint64
	KernelTraps     uint64
	PrivilegeFaults uint64 // lazy checks performed
}

// New boots Psyche over a Chrysalis machine (the real project targeted the
// Butterfly Plus; any machine configuration works here).
func New(os *chrysalis.OS) *Kernel {
	return &Kernel{OS: os, Costs: DefaultCosts()}
}

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// NewKey mints a fresh key.
func (k *Kernel) NewKey() Key {
	k.nextKey++
	return k.nextKey
}

// Operation is a realm operation: data plus protocol.
type Operation func(p *sim.Proc, args any) any

// Realm is a passive data abstraction in the uniform address space.
type Realm struct {
	Name string
	// Node is where the realm's data lives; invocations from other nodes
	// pay remote references for the touched words.
	Node int
	// Prot is the invocation discipline.
	Prot Protection
	// TouchWords is how many data words a typical operation references.
	TouchWords int

	kernel *Kernel
	ops    map[string]Operation
	acl    map[Key]Right
	// version invalidates cached privileges when the ACL changes.
	version uint64
}

// NewRealm creates a realm with an initial access list entry for ownerKey.
func (k *Kernel) NewRealm(name string, node int, prot Protection, ownerKey Key) *Realm {
	r := &Realm{
		Name:       name,
		Node:       node,
		Prot:       prot,
		TouchWords: 4,
		kernel:     k,
		ops:        make(map[string]Operation),
		acl:        map[Key]Right{ownerKey: RightInvoke | RightDestroy | RightGrant},
	}
	k.realms = append(k.realms, r)
	return r
}

// Bind installs an operation in the realm's access protocol.
func (r *Realm) Bind(op string, fn Operation) { r.ops[op] = fn }

// Grant adds rights for a key. The caller's domain must hold RightGrant.
func (r *Realm) Grant(d *Domain, key Key, rights Right) error {
	if err := r.check(d, RightGrant); err != nil {
		return err
	}
	r.acl[key] |= rights
	r.version++
	return nil
}

// Revoke removes a key's rights and invalidates every cached privilege.
func (r *Realm) Revoke(d *Domain, key Key) error {
	if err := r.check(d, RightGrant); err != nil {
		return err
	}
	delete(r.acl, key)
	r.version++
	return nil
}

// Errors.
var (
	ErrNoRight = errors.New("psyche: protection violation")
	ErrNoOp    = errors.New("psyche: no such operation in access protocol")
)

// Domain is a protection domain: a Chrysalis process plus its keys and the
// realms it has (lazily) opened.
type Domain struct {
	Pr     *chrysalis.Process
	Kernel *Kernel

	keys   []Key
	opened map[*Realm]openState
}

type openState struct {
	rights  Right
	version uint64
}

// NewDomain wraps a Chrysalis process as a protection domain.
func (k *Kernel) NewDomain(pr *chrysalis.Process, keys ...Key) *Domain {
	return &Domain{Pr: pr, Kernel: k, keys: keys, opened: make(map[*Realm]openState)}
}

// AddKey gives the domain another key.
func (d *Domain) AddKey(key Key) { d.keys = append(d.keys, key) }

// check performs lazy privilege evaluation: the first contact between the
// domain and the realm (or the first after an ACL change) costs a kernel
// trap plus an access-list scan; afterwards the verified rights are cached
// and checking is free.
func (r *Realm) check(d *Domain, need Right) error {
	if st, ok := d.opened[r]; ok && st.version == r.version {
		if st.rights&need == need {
			return nil
		}
		return fmt.Errorf("%w: domain lacks right %d on realm %q", ErrNoRight, need, r.Name)
	}
	// Privilege fault: evaluate now.
	k := r.kernel
	k.stats.PrivilegeFaults++
	k.stats.KernelTraps++
	d.Pr.P.Advance(k.Costs.KernelTrapNs + int64(len(r.acl))*k.Costs.ACLCheckNsPerEntry)
	var have Right
	for _, key := range d.keys {
		have |= r.acl[key]
	}
	d.opened[r] = openState{rights: have, version: r.version}
	if have&need == need {
		return nil
	}
	return fmt.Errorf("%w: domain lacks right %d on realm %q", ErrNoRight, need, r.Name)
}

// Invoke calls a realm operation from the domain. Optimized realms cost a
// procedure call (plus the data references); protected realms trap to the
// kernel every time. Either way the first contact pays the lazy privilege
// evaluation.
func (d *Domain) Invoke(r *Realm, op string, args any) (any, error) {
	if err := r.check(d, RightInvoke); err != nil {
		return nil, err
	}
	fn, ok := r.ops[op]
	if !ok {
		return nil, fmt.Errorf("%w: %q on realm %q", ErrNoOp, op, r.Name)
	}
	k := r.kernel
	k.stats.Invocations++
	p := d.Pr.P
	switch r.Prot {
	case Protected:
		k.stats.KernelTraps++
		p.Advance(k.Costs.KernelTrapNs)
	default:
		p.Advance(k.Costs.ProcCallNs)
	}
	// Touch the realm's data in the uniform address space; flush the lazy
	// reference charge so the operation body runs at the touch's completion
	// time.
	k.OS.M.Read(p, r.Node, r.TouchWords)
	p.Sync()
	return fn(p, args), nil
}

// Destroy removes the realm (requires RightDestroy).
func (d *Domain) Destroy(r *Realm) error {
	if err := r.check(d, RightDestroy); err != nil {
		return err
	}
	r.ops = nil
	r.acl = map[Key]Right{}
	r.version++
	return nil
}
