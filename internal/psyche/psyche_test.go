package psyche

import (
	"errors"
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// world spins up a machine, kernel, and one domain process on node 0, runs
// body inside it, and returns the kernel.
func world(t *testing.T, nodes int, body func(k *Kernel, d *Domain)) *Kernel {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	os := chrysalis.New(m)
	k := New(os)
	key := k.NewKey()
	if _, err := os.MakeProcess(nil, "domain", 0, 16, func(self *chrysalis.Process) {
		d := k.NewDomain(self, key)
		body(k, d)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestInvokeRunsOperation(t *testing.T) {
	world(t, 2, func(k *Kernel, d *Domain) {
		r := k.NewRealm("counter", 0, Optimized, d.keys[0])
		n := 0
		r.Bind("incr", func(p *sim.Proc, args any) any {
			n += args.(int)
			return n
		})
		v, err := d.Invoke(r, "incr", 5)
		if err != nil || v.(int) != 5 {
			t.Fatalf("invoke = %v, %v", v, err)
		}
		v, err = d.Invoke(r, "incr", 3)
		if err != nil || v.(int) != 8 {
			t.Fatalf("invoke 2 = %v, %v", v, err)
		}
	})
}

func TestProtectionEnforced(t *testing.T) {
	world(t, 2, func(k *Kernel, d *Domain) {
		stranger := k.NewKey() // a key the domain does not hold
		r := k.NewRealm("secret", 0, Protected, stranger)
		r.Bind("peek", func(p *sim.Proc, args any) any { return 42 })
		if _, err := d.Invoke(r, "peek", nil); !errors.Is(err, ErrNoRight) {
			t.Errorf("err = %v, want ErrNoRight", err)
		}
	})
}

func TestLazyEvaluationCachesCheck(t *testing.T) {
	world(t, 2, func(k *Kernel, d *Domain) {
		r := k.NewRealm("r", 0, Optimized, d.keys[0])
		r.Bind("op", func(p *sim.Proc, args any) any { return nil })
		e := d.Pr.P.Engine()

		t0 := e.Now()
		if _, err := d.Invoke(r, "op", nil); err != nil {
			t.Fatal(err)
		}
		first := e.Now() - t0

		t0 = e.Now()
		if _, err := d.Invoke(r, "op", nil); err != nil {
			t.Fatal(err)
		}
		second := e.Now() - t0

		if first <= second {
			t.Errorf("first invoke (%d) should pay the privilege fault; second (%d) should not", first, second)
		}
		if first-second < k.Costs.KernelTrapNs {
			t.Errorf("lazy check saved only %d ns", first-second)
		}
	})
	// Exactly one privilege fault despite two invocations.
}

func TestOptimizedVsProtectedCost(t *testing.T) {
	// The explicit tradeoff: optimized access is as efficient as a
	// procedure call; protected access traps on every invocation.
	var opt, prot int64
	k := world(t, 2, func(k *Kernel, d *Domain) {
		ro := k.NewRealm("fast", 0, Optimized, d.keys[0])
		ro.Bind("op", func(p *sim.Proc, args any) any { return nil })
		rp := k.NewRealm("safe", 0, Protected, d.keys[0])
		rp.Bind("op", func(p *sim.Proc, args any) any { return nil })
		e := d.Pr.P.Engine()

		d.Invoke(ro, "op", nil) // pay the lazy checks up front
		d.Invoke(rp, "op", nil)

		t0 := e.Now()
		for i := 0; i < 10; i++ {
			d.Invoke(ro, "op", nil)
		}
		opt = (e.Now() - t0) / 10

		t0 = e.Now()
		for i := 0; i < 10; i++ {
			d.Invoke(rp, "op", nil)
		}
		prot = (e.Now() - t0) / 10
	})
	if opt*10 > prot {
		t.Errorf("optimized (%d ns) not much cheaper than protected (%d ns)", opt, prot)
	}
	if k.Stats().Invocations != 22 {
		t.Errorf("invocations = %d", k.Stats().Invocations)
	}
}

func TestGrantAndSharing(t *testing.T) {
	// Two domains share a realm through the uniform address space once the
	// second is granted rights.
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	k := New(os)
	ownerKey, guestKey := k.NewKey(), k.NewKey()
	r := k.NewRealm("shared", 0, Optimized, ownerKey)
	total := 0
	r.Bind("add", func(p *sim.Proc, args any) any {
		total += args.(int)
		return total
	})
	os.MakeProcess(nil, "owner", 0, 16, func(self *chrysalis.Process) {
		d := k.NewDomain(self, ownerKey)
		if _, err := d.Invoke(r, "add", 1); err != nil {
			t.Errorf("owner invoke: %v", err)
		}
		if err := r.Grant(d, guestKey, RightInvoke); err != nil {
			t.Errorf("grant: %v", err)
		}
	})
	os.MakeProcess(nil, "guest", 1, 16, func(self *chrysalis.Process) {
		self.P.Advance(10 * sim.Millisecond) // after the grant
		d := k.NewDomain(self, guestKey)
		if _, err := d.Invoke(r, "add", 2); err != nil {
			t.Errorf("guest invoke: %v", err)
		}
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Errorf("total = %d", total)
	}
}

func TestRevokeInvalidatesCache(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	k := New(os)
	ownerKey, guestKey := k.NewKey(), k.NewKey()
	r := k.NewRealm("r", 0, Optimized, ownerKey)
	r.Bind("op", func(p *sim.Proc, args any) any { return nil })
	var guestErr error
	os.MakeProcess(nil, "owner", 0, 16, func(self *chrysalis.Process) {
		d := k.NewDomain(self, ownerKey)
		if err := r.Grant(d, guestKey, RightInvoke); err != nil {
			t.Errorf("grant: %v", err)
		}
		self.P.Advance(20 * sim.Millisecond)
		if err := r.Revoke(d, guestKey); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	os.MakeProcess(nil, "guest", 1, 16, func(self *chrysalis.Process) {
		self.P.Advance(10 * sim.Millisecond)
		d := k.NewDomain(self, guestKey)
		if _, err := d.Invoke(r, "op", nil); err != nil {
			t.Errorf("pre-revoke invoke: %v", err)
		}
		self.P.Advance(20 * sim.Millisecond) // revocation happens here
		_, guestErr = d.Invoke(r, "op", nil)
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(guestErr, ErrNoRight) {
		t.Errorf("post-revoke err = %v, want ErrNoRight", guestErr)
	}
}

func TestDestroyRequiresRight(t *testing.T) {
	world(t, 2, func(k *Kernel, d *Domain) {
		stranger := k.NewKey()
		r := k.NewRealm("r", 0, Optimized, stranger)
		if err := d.Destroy(r); !errors.Is(err, ErrNoRight) {
			t.Errorf("destroy err = %v", err)
		}
	})
}

func TestUnknownOperation(t *testing.T) {
	world(t, 2, func(k *Kernel, d *Domain) {
		r := k.NewRealm("r", 0, Optimized, d.keys[0])
		if _, err := d.Invoke(r, "nope", nil); !errors.Is(err, ErrNoOp) {
			t.Errorf("err = %v, want ErrNoOp", err)
		}
	})
}

func TestStatsCount(t *testing.T) {
	k := world(t, 2, func(k *Kernel, d *Domain) {
		r := k.NewRealm("r", 0, Protected, d.keys[0])
		r.Bind("op", func(p *sim.Proc, args any) any { return nil })
		d.Invoke(r, "op", nil)
		d.Invoke(r, "op", nil)
	})
	st := k.Stats()
	if st.Invocations != 2 || st.PrivilegeFaults != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Protected: one trap per invocation plus the privilege fault.
	if st.KernelTraps != 3 {
		t.Errorf("traps = %d, want 3", st.KernelTraps)
	}
}

func TestProtectionString(t *testing.T) {
	if Optimized.String() != "optimized" || Protected.String() != "protected" {
		t.Error("bad protection names")
	}
}
