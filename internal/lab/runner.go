package lab

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
	"butterfly/internal/workload"
)

// Execution errors, classified so retry policy can reuse the fault
// taxonomy: timeouts are the one wall-clock-dependent (hence retryable)
// failure; everything a deterministic simulation produces — including
// injected *fault.RefError terminations surfacing as experiment errors —
// would recur identically on a retry and is therefore permanent.
var (
	// ErrTimeout marks a job whose wall-clock budget expired; its engines
	// were interrupted mid-run.
	ErrTimeout = errors.New("lab: job timed out")
	// ErrCanceled marks a job canceled by the submitter, either while
	// queued or mid-run.
	ErrCanceled = errors.New("lab: job canceled")
)

// execState is the bridge between a running job and the outside world: the
// engines the job's experiment has booted so far, and whether an interrupt
// (timeout or cancellation) has been requested. The watchdog goroutine and
// the worker touch it under the mutex; engines registered after an
// interrupt are interrupted immediately so a timed-out job cannot keep
// booting fresh machines.
type execState struct {
	mu          sync.Mutex
	engines     []*sim.Engine
	interrupted bool
}

// add registers an engine the job just booted. Engines run by the lab
// trap process panics (a hostile or out-of-range spec fails the job, not
// the daemon) — see sim.Engine.TrapPanics.
func (x *execState) add(e *sim.Engine) {
	x.mu.Lock()
	defer x.mu.Unlock()
	e.TrapPanics()
	x.engines = append(x.engines, e)
	if x.interrupted {
		e.Interrupt()
	}
}

// interrupt stops every engine the job has booted and all it will boot.
func (x *execState) interrupt() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.interrupted = true
	for _, e := range x.engines {
		e.Interrupt()
	}
}

// wasInterrupted reports whether interrupt was requested.
func (x *execState) wasInterrupted() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.interrupted
}

// executeOnce runs one attempt of the spec on the calling goroutine. The
// worker must be the only user of machine.ScopeHooks on this goroutine.
// Tables go to a private buffer and probe reports to the result, so
// concurrent jobs never interleave output.
func executeOnce(exp core.Experiment, spec core.Spec, st *execState) (res *core.Result, err error) {
	faultCfg, err := spec.FaultConfig()
	if err != nil {
		return nil, err
	}
	inject := faultCfg.Enabled() && !exp.ManagesFaults

	type probedMachine struct {
		m  *machine.Machine
		pr *probe.Probe
	}
	var engines []*sim.Engine
	var probed []probedMachine
	// The workload directive rides a goroutine scope, like the machine
	// hooks: two lab workers can run different workloads concurrently, and
	// an empty scope shields lab jobs from any ambient CLI workload.
	wlRelease := workload.Scope(spec.Workload)
	defer wlRelease()
	release := machine.ScopeHooks(spec.ConfigTransform(), func(m *machine.Machine) {
		st.add(m.E)
		engines = append(engines, m.E)
		if inject {
			m.AttachFaults(fault.NewInjector(*faultCfg))
		}
		if spec.Probe {
			pr := probe.New(nil)
			m.AttachProbe(pr)
			probed = append(probed, probedMachine{m: m, pr: pr})
		}
	})
	defer release()
	defer func() {
		// An experiment that panics on the worker goroutine (e.g. a machine
		// override out of an experiment's tolerated range) fails the job,
		// not the service.
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("lab: experiment %s panicked: %v", spec.Experiment, r)
		}
	}()

	var table bytes.Buffer
	start := time.Now()
	runErr := exp.Run(&table, spec.Quick)
	wall := time.Since(start)

	var ie *sim.InterruptError
	if errors.As(runErr, &ie) || (runErr != nil && st.wasInterrupted()) {
		// The run was torn down from outside; the partial table is garbage.
		return nil, ErrTimeout
	}
	if runErr != nil {
		return nil, runErr
	}

	res = &core.Result{
		Spec:     spec,
		Table:    table.String(),
		Machines: len(engines),
		WallNs:   wall.Nanoseconds(),
	}
	for _, e := range engines {
		res.VTimeNs += e.Now()
		res.Events += e.Stats().Events
	}
	if spec.Probe {
		var rep strings.Builder
		for i, pm := range probed {
			fmt.Fprintf(&rep, "[probe] %s machine %d/%d\n", spec.Experiment, i+1, len(probed))
			pm.pr.Metrics().WriteReport(&rep, pm.m.E.Now(), 8)
			rep.WriteString("\n")
		}
		res.ProbeReport = rep.String()
	}
	return res, nil
}

// runSpec executes a validated spec with its retry/timeout policy and
// returns the finished result (Attempts set) or the final error. canceled,
// when non-nil, is consulted between attempts and wired to the watchdog so
// an external cancel interrupts a running simulation.
func runSpec(spec core.Spec, canceled func() bool, bindExec func(*execState)) (*core.Result, error) {
	exp, ok := core.Lookup(spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("lab: unknown experiment %q", spec.Experiment)
	}
	for attempt := 1; ; attempt++ {
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		st := &execState{}
		if bindExec != nil {
			bindExec(st)
		}
		var watchdog *time.Timer
		if spec.TimeoutMs > 0 {
			watchdog = time.AfterFunc(time.Duration(spec.TimeoutMs)*time.Millisecond, st.interrupt)
		}
		res, err := executeOnce(exp, spec, st)
		if watchdog != nil {
			watchdog.Stop()
		}
		if bindExec != nil {
			bindExec(nil)
		}
		if err == nil {
			res.Attempts = attempt
			return res, nil
		}
		if canceled != nil && canceled() {
			return nil, ErrCanceled
		}
		retryable := errors.Is(err, ErrTimeout)
		if !retryable || attempt > spec.Retries {
			return nil, fmt.Errorf("attempt %d: %w", attempt, err)
		}
	}
}

// RunSpec executes one spec synchronously on the calling goroutine, outside
// any scheduler — the building block butterflybench's sequential paths and
// tests use. The spec is validated first.
func RunSpec(spec core.Spec) (*core.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res, err := runSpec(spec, nil, nil)
	if err != nil {
		return nil, err
	}
	res.Fingerprint = Fingerprint(spec)
	return res, nil
}
