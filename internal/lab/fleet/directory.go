package fleet

import (
	"sort"
	"sync"
	"time"

	"butterfly/internal/core"
)

// Directory is the coordinator's membership table: which workers exist,
// when each last heartbeat, and the counters they reported. Liveness is
// purely heartbeat-driven — a worker that misses beats for DeadAfter is
// dead until it beats again (a SIGKILLed worker and a partitioned one
// look identical from here, and both are handled the same way: their
// in-flight jobs move to the next ring node).
type Directory struct {
	deadAfter time.Duration
	now       func() time.Time // injectable for tests

	mu      sync.Mutex
	members map[string]*member
}

type member struct {
	rec      core.WorkerRecord
	lastBeat time.Time
	alive    bool
	// draining marks a planned departure (explicit leave): the worker gets
	// no new placements but stays alive for in-flight polling until its
	// heartbeats stop — at which point it is downed quietly, with no
	// reassignment churn.
	draining  bool
	peerHits  uint64
	simulated uint64
}

// NewDirectory builds a directory that declares a worker dead after
// deadAfter without a heartbeat (minimum 100ms to keep a mistyped flag
// from flapping the whole fleet).
func NewDirectory(deadAfter time.Duration) *Directory {
	if deadAfter < 100*time.Millisecond {
		deadAfter = 100 * time.Millisecond
	}
	return &Directory{deadAfter: deadAfter, now: time.Now, members: make(map[string]*member)}
}

// Upsert records a worker as alive right now — a join, or the implicit
// join every heartbeat carries (how a restarted coordinator re-learns its
// fleet from traffic). It reports whether the worker was previously
// unknown or dead, i.e. whether membership just changed.
func (d *Directory) Upsert(rec core.WorkerRecord) (changed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[rec.ID]
	if !ok {
		m = &member{}
		d.members[rec.ID] = m
	}
	changed = !ok || !m.alive || m.draining || m.rec.URL != rec.URL
	m.rec = rec
	m.lastBeat = d.now()
	m.alive = true
	// An explicit join is a deliberate (re)arrival: it cancels any pending
	// drain. Heartbeats go through Beat, which preserves the drain.
	m.draining = false
	return changed
}

// Beat folds one heartbeat in: liveness plus the worker's reported
// counters. Unknown and dead workers are revived via Upsert semantics —
// except that a draining worker's heartbeats keep it alive for in-flight
// polling without making it placeable again.
func (d *Directory) Beat(req core.HeartbeatRequest) (changed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[req.Worker.ID]
	if !ok {
		m = &member{}
		d.members[req.Worker.ID] = m
	}
	changed = !ok || (!m.alive && !m.draining) || (!m.draining && m.rec.URL != req.Worker.URL)
	m.rec = req.Worker
	m.lastBeat = d.now()
	m.alive = true
	m.peerHits = req.PeerHits
	m.simulated = req.Simulated
	return changed
}

// Depart marks a planned departure (an explicit leave): the worker leaves
// the placement set immediately but stays alive for in-flight polling.
// Reports whether the worker was known and placeable (i.e. whether the
// caller should journal and announce the departure).
func (d *Directory) Depart(id string) (was bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok || !m.alive || m.draining {
		return false
	}
	m.draining = true
	return true
}

// MarkDead downs a worker immediately — the coordinator calls it when a
// dispatch fails at the connection level, rather than waiting out the
// heartbeat timeout. Reports whether the worker was alive.
func (d *Directory) MarkDead(id string) (was bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	if !ok || !m.alive {
		return false
	}
	m.alive = false
	return true
}

// Sweep downs every worker whose last heartbeat is older than DeadAfter
// and returns the newly-dead, for the caller to journal and log.
func (d *Directory) Sweep() []core.WorkerRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	var dead []core.WorkerRecord
	for _, m := range d.members {
		if m.alive && now.Sub(m.lastBeat) > d.deadAfter {
			m.alive = false
			if m.draining {
				// A drained worker going silent is the plan succeeding, not
				// a failure: finalize quietly, no reassignment.
				continue
			}
			dead = append(dead, m.rec)
		}
	}
	sort.Slice(dead, func(a, b int) bool { return dead[a].ID < dead[b].ID })
	return dead
}

// Alive reports whether the worker is currently believed live.
func (d *Directory) Alive(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	return ok && m.alive
}

// Placeable reports whether the worker may receive new placements: alive
// and not draining.
func (d *Directory) Placeable(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[id]
	return ok && m.alive && !m.draining
}

// Live returns the placeable membership sorted by ID — the input to
// NewRing. Draining workers are excluded: they finish what they hold but
// receive nothing new.
func (d *Directory) Live() []core.WorkerRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]core.WorkerRecord, 0, len(d.members))
	for _, m := range d.members {
		if m.alive && !m.draining {
			out = append(out, m.rec)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Health snapshots every known worker for the fleet metrics block.
func (d *Directory) Health() []core.WorkerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	out := make([]core.WorkerHealth, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, core.WorkerHealth{
			ID:             m.rec.ID,
			URL:            m.rec.URL,
			Alive:          m.alive,
			Draining:       m.draining,
			HeartbeatAgeMs: now.Sub(m.lastBeat).Milliseconds(),
			PeerHits:       m.peerHits,
			Simulated:      m.simulated,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
