package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

// replicaBatchMax bounds one pull response; a follower that is further
// behind simply pulls again immediately.
const replicaBatchMax = 1024

// Replicator is the primary side of journal replication: it answers
// standbys' pulls from the journal's bounded record tail (or with a full
// state snapshot when a follower is beyond the tail) and tracks each
// follower's acknowledged record for the replication-lag gauge.
//
// Replication is pull-based on purpose: the primary keeps no connection
// state, a standby can appear (or reappear) at any time, and the ack rides
// the next request for free — the same traffic-re-learns-everything shape
// the fleet's heartbeats already use.
type Replicator struct {
	j   *lab.Journal
	now func() time.Time

	mu        sync.Mutex
	followers map[string]*followerState
}

type followerState struct {
	url      string
	acked    int64
	lastPull time.Time
}

// NewReplicator builds the primary-side replication endpoint for a journal.
func NewReplicator(j *lab.Journal) *Replicator {
	return &Replicator{j: j, now: time.Now, followers: make(map[string]*followerState)}
}

// HandlePull answers POST /replica/pull: records after the follower's ack,
// or a full snapshot when the tail no longer reaches back that far.
func (rp *Replicator) HandlePull(w http.ResponseWriter, r *http.Request) {
	var req core.ReplicaPullRequest
	if !decodeFleetBody(w, r, &req) {
		return
	}
	if req.FollowerID == "" {
		http.Error(w, `{"error":"follower_id is required"}`, http.StatusBadRequest)
		return
	}
	resp := core.ReplicaPullResponse{Epoch: rp.j.Epoch(), LastRec: rp.j.Rec()}
	if req.FullState {
		st := rp.j.ReplicaState()
		resp.State = &st
	} else if recs, ok := rp.j.RecordsAfter(req.AfterRec, replicaBatchMax); ok {
		resp.Records = recs
	} else {
		st := rp.j.ReplicaState()
		resp.State = &st
	}
	rp.mu.Lock()
	fs, ok := rp.followers[req.FollowerID]
	if !ok {
		fs = &followerState{}
		rp.followers[req.FollowerID] = fs
	}
	if req.FollowerURL != "" {
		fs.url = req.FollowerURL
	}
	if req.AfterRec > fs.acked {
		fs.acked = req.AfterRec
	}
	fs.lastPull = rp.now()
	rp.mu.Unlock()
	writeFleetJSON(w, resp)
}

// Followers snapshots per-standby replication health, sorted by ID.
func (rp *Replicator) Followers() []core.FollowerHealth {
	last := rp.j.Rec()
	rp.mu.Lock()
	defer rp.mu.Unlock()
	out := make([]core.FollowerHealth, 0, len(rp.followers))
	for id, fs := range rp.followers {
		out = append(out, core.FollowerHealth{
			ID:            id,
			URL:           fs.url,
			AckedRec:      fs.acked,
			LagRecs:       last - fs.acked,
			LastPullAgeMs: rp.now().Sub(fs.lastPull).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// FollowerURLs lists the standby endpoints that have pulled, sorted by ID —
// what heartbeat acks advertise so workers know where to fail over.
func (rp *Replicator) FollowerURLs() []string {
	var urls []string
	for _, f := range rp.Followers() {
		if f.URL != "" {
			urls = append(urls, f.URL)
		}
	}
	return urls
}

// FollowerConfig parameterizes a standby's replication loop.
type FollowerConfig struct {
	// Self identifies this standby to the primary (ID required; URL is
	// advertised to workers as a failover coordinator endpoint).
	Self core.WorkerRecord
	// Primary is the primary coordinator's base URL (butterflyd -follow).
	Primary string
	// Journal is the standby's own journal — a faithful, same-numbering
	// copy of the primary's, on this host's disk.
	Journal *lab.Journal
	// PullInterval paces replication pulls (default 200ms).
	PullInterval time.Duration
	// DeadAfter is how long the primary may stay unreachable before the
	// standby takes over (default 5s). Only connection-level silence
	// counts; any HTTP answer proves the primary alive.
	DeadAfter time.Duration
	// OnTakeover runs exactly once, after the takeover epoch is durably
	// fenced into the journal — the hook that promotes this process into a
	// serving coordinator.
	OnTakeover func(epoch uint64)
	// Logf receives the follower's log lines (default: discard).
	Logf func(format string, args ...any)
}

// Follower is the standby side of replication: it pulls the primary's
// journal into its own, watches for the primary's death, and — after
// DeadAfter of connection-level silence — fences a new epoch and fires
// OnTakeover. Death detection deliberately reuses the fleet's
// classification: an HTTP answer of any status is a live primary; only no
// answer at all counts toward the deadline.
type Follower struct {
	cfg FollowerConfig
	hc  *http.Client

	lastAlive atomic.Int64 // UnixNano of the last HTTP answer from the primary
	lastSync  atomic.Int64 // UnixNano of the last successfully applied pull
	fullState atomic.Bool  // next pull must request a snapshot (gap detected)
	tookOver  atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewFollower builds a standby replication loop. Call Start to begin.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.PullInterval <= 0 {
		cfg.PullInterval = 200 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Follower{
		cfg:  cfg,
		hc:   &http.Client{Timeout: 2 * time.Second},
		stop: make(chan struct{}),
	}
}

// Start runs the pull loop on a background goroutine.
func (f *Follower) Start() {
	f.done.Add(1)
	go func() {
		defer f.done.Done()
		t := time.NewTicker(f.cfg.PullInterval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				if f.tick() {
					return // took over; the loop's job is done
				}
			}
		}
	}()
}

// Stop halts the pull loop (it is already stopped after a takeover).
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.done.Wait()
}

// TookOver reports whether this follower has promoted itself.
func (f *Follower) TookOver() bool { return f.tookOver.Load() }

// tick performs one replication round; returns true when the follower took
// over (and the loop should exit).
func (f *Follower) tick() bool {
	// Drain until caught up: a full batch means more records are waiting.
	for {
		n, answered, err := f.pullOnce()
		if answered {
			f.lastAlive.Store(time.Now().UnixNano())
		}
		if err != nil {
			f.cfg.Logf("replica: pull failed primary=%s err=%v", f.cfg.Primary, err)
			break
		}
		if n < replicaBatchMax {
			break
		}
	}
	// Takeover check: only connection-level silence counts, and only once
	// we have synced at least once (a standby that never reached its
	// primary has nothing to take over).
	last := f.lastAlive.Load()
	if f.lastSync.Load() == 0 || last == 0 {
		return false
	}
	if time.Since(time.Unix(0, last)) <= f.cfg.DeadAfter {
		return false
	}
	epoch, err := f.cfg.Journal.BumpEpoch()
	if err != nil {
		f.cfg.Logf("replica: takeover epoch fence failed: %v", err)
		return false
	}
	f.tookOver.Store(true)
	f.cfg.Logf("replica: takeover primary=%s silent>%s epoch=%d rec=%d",
		f.cfg.Primary, f.cfg.DeadAfter, epoch, f.cfg.Journal.Rec())
	if f.cfg.OnTakeover != nil {
		f.cfg.OnTakeover(epoch)
	}
	return true
}

// pullOnce does one pull round-trip and applies its payload. answered
// reports whether the primary produced any HTTP response (alive), even a
// failing one.
func (f *Follower) pullOnce() (applied int, answered bool, err error) {
	req := core.ReplicaPullRequest{
		FollowerID:  f.cfg.Self.ID,
		FollowerURL: f.cfg.Self.URL,
		AfterRec:    f.cfg.Journal.Rec(),
		FullState:   f.fullState.Load(),
	}
	body, _ := json.Marshal(req)
	resp, err := f.hc.Post(f.cfg.Primary+"/replica/pull", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, true, errors.New("primary answered " + resp.Status)
	}
	var pr core.ReplicaPullResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, true, err
	}
	if pr.State != nil {
		if err := f.cfg.Journal.InstallReplicaState(*pr.State); err != nil {
			return 0, true, err
		}
		f.fullState.Store(false)
		f.lastSync.Store(time.Now().UnixNano())
		f.cfg.Logf("replica: installed state snapshot rec=%d jobs=%d epoch=%d",
			pr.State.Rec, len(pr.State.Jobs), pr.State.Epoch)
		return len(pr.State.Jobs), true, nil
	}
	for _, rec := range pr.Records {
		if err := f.cfg.Journal.AppendReplica(rec); err != nil {
			if errors.Is(err, lab.ErrReplicaGap) {
				// The stream skipped past us (torn local tail truncated on
				// restart, or the primary compacted beyond our ack): ask
				// for a snapshot and resync rather than refusing.
				f.fullState.Store(true)
				f.cfg.Logf("replica: gap at rec=%d, resyncing via snapshot: %v", rec.Rec, err)
				return applied, true, nil
			}
			return applied, true, err
		}
		applied++
	}
	f.lastSync.Store(time.Now().UnixNano())
	return len(pr.Records), true, nil
}

// Metrics assembles the standby's replication gauges.
func (f *Follower) Metrics() core.StandbyMetrics {
	syncAge := int64(-1)
	if ts := f.lastSync.Load(); ts > 0 {
		syncAge = time.Since(time.Unix(0, ts)).Milliseconds()
	}
	return core.StandbyMetrics{
		Role:          "standby",
		Primary:       f.cfg.Primary,
		Epoch:         f.cfg.Journal.Epoch(),
		AckedRec:      f.cfg.Journal.Rec(),
		LastSyncAgeMs: syncAge,
	}
}

// Mount exposes the standby's pre-takeover observability: GET
// /replica/status answers even while /metrics still 503s (no scheduler is
// attached until promotion).
func (f *Follower) Mount(srv *lab.Server) {
	srv.Handle("GET /replica/status", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeFleetJSON(w, f.Metrics())
	}))
	srv.AugmentMetrics(func() any { return f.Metrics() })
}
