// Package fleet makes butterflyd horizontal: one coordinator places jobs
// on a ring of workers by spec content-address, workers heartbeat the
// coordinator and fill their caches from ring siblings, and the
// coordinator journals fleet state through the lab's write-ahead journal
// so a SIGKILL of any member — worker or coordinator — never loses a job
// or changes a byte of output.
//
// The design leans on the same property the single-box lab does: every
// simulation is deterministic and its result is content-addressed.
// Placement by fingerprint makes scheduling cache-friendly (the same spec
// always lands where its result already is), reassignment after a worker
// death is idempotent (a re-executed job reproduces the same bytes), and
// byte-identity of a fleet sweep against the sequential driver is a
// theorem, not a hope — the chaos test enforces it anyway.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"

	"butterfly/internal/core"
)

// vnodesPerWorker is how many points each worker claims on the hash ring.
// Enough that a 3-worker fleet splits a sweep roughly evenly; placement
// only needs balance, not perfection, because the cache forgives moves.
const vnodesPerWorker = 64

// Ring is an immutable consistent-hash ring over a set of workers. Build
// one from the current live membership; rebuild on every membership
// change (rings are tiny — rebuild costs microseconds and immutability
// makes them safe to share across dispatch goroutines without locks).
type Ring struct {
	points  []ringPoint
	workers map[string]core.WorkerRecord
}

type ringPoint struct {
	hash uint64
	id   string // worker ID
}

// NewRing builds the ring for the given members. Order does not matter:
// two processes that agree on the member set agree on every placement —
// the property that lets workers compute their own siblings from the
// membership list the coordinator's heartbeat acks carry.
func NewRing(members []core.WorkerRecord) *Ring {
	r := &Ring{workers: make(map[string]core.WorkerRecord, len(members))}
	for _, m := range members {
		if _, dup := r.workers[m.ID]; dup {
			continue
		}
		r.workers[m.ID] = m
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(m.ID + "#" + strconv.Itoa(v)), id: m.ID})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].id < r.points[b].id // deterministic even on hash collision
	})
	return r
}

// Len returns the number of distinct workers on the ring.
func (r *Ring) Len() int { return len(r.workers) }

// Members returns the ring's workers sorted by ID.
func (r *Ring) Members() []core.WorkerRecord {
	out := make([]core.WorkerRecord, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Owner returns the worker owning the fingerprint: the first ring point at
// or clockwise of the fingerprint's hash. ok is false on an empty ring.
func (r *Ring) Owner(fingerprint string) (core.WorkerRecord, bool) {
	seq := r.Successors(fingerprint, 1)
	if len(seq) == 0 {
		return core.WorkerRecord{}, false
	}
	return seq[0], true
}

// Successors returns up to n distinct workers in ring order starting at
// the fingerprint's owner. Successors(fp, Len()) is the full failover
// order: when the owner dies, the next entry inherits the job; the
// entries after the owner are the "siblings" a worker probes for a cached
// result before simulating.
func (r *Ring) Successors(fingerprint string, n int) []core.WorkerRecord {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashString(fingerprint)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if n > len(r.workers) {
		n = len(r.workers)
	}
	out := make([]core.WorkerRecord, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, r.workers[p.id])
	}
	return out
}

// hashString maps a key to a ring position. SHA-256 keeps placement
// well-mixed and — unlike a seeded fast hash — identical across every
// process and architecture in the fleet.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
