package fleet

import (
	"fmt"
	"math/bits"

	"butterfly/internal/core"
)

// PlacementKey derives the ring key a job is placed by. Results stay
// content-addressed by fingerprint — the key only decides *where* a spec
// runs, never what its result is called — so placement can afford to be
// coarser than identity: numeric sweep axes are bucketed (nodes by power of
// two, fault seeds in runs of 16) so a sweep's axis-neighbors pin to the
// same worker. When the next refinement of a sweep densifies an axis, its
// new points land on the worker whose content-addressed cache already holds
// the neighboring (and any repeated) results, and whose ring siblings are
// one probe away for the rest.
func PlacementKey(spec core.Spec) string {
	nodes := spec.Nodes
	if nodes < 0 {
		nodes = 0
	}
	var seedBucket uint64
	if spec.FaultSeed != nil {
		seedBucket = 1 + *spec.FaultSeed/16
	}
	return fmt.Sprintf("%s|%s|%t|%s|%s|%s|p%d|n%d|s%d",
		spec.Experiment, spec.Preset, spec.Quick, spec.Topology,
		spec.Workload, spec.Faults, spec.Partitions,
		bits.Len(uint(nodes)), seedBucket)
}
