package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
)

// WorkerConfig parameterizes a fleet Worker.
type WorkerConfig struct {
	// Self identifies this worker on the ring: a stable ID and the URL
	// the coordinator and ring siblings reach its job API on.
	Self core.WorkerRecord
	// Coordinator is the coordinator's base URL (butterflyd -join).
	Coordinator string
	// HeartbeatEvery paces liveness reports (default 1s).
	HeartbeatEvery time.Duration
	// ProbeSiblings is how many ring siblings to ask for a cached result
	// before simulating (default 2).
	ProbeSiblings int
	// Logf receives the worker's log lines (default: discard).
	Logf func(format string, args ...any)
}

// Worker is the fleet-side of a butterflyd worker process: it joins the
// coordinator, heartbeats it (carrying peer-fill counters), keeps a local
// copy of the ring from each heartbeat ack, and offers PeerFill — the
// scheduler hook that resolves a job from a ring sibling's cache instead
// of simulating it.
type Worker struct {
	cfg   WorkerConfig
	hc    *http.Client // heartbeats and sibling cache probes
	peers atomic.Pointer[Ring]

	peerHits  atomic.Uint64
	simulated atomic.Uint64
	lastAck   atomic.Int64 // UnixNano of the last heartbeat ack; 0 = never

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewWorker builds a worker runtime. Call Start to begin heartbeating and
// Stop to halt.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.ProbeSiblings <= 0 {
		cfg.ProbeSiblings = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	// A missed heartbeat is retried by the next tick, not by backoff: one
	// bounded attempt per tick keeps the cadence honest while the
	// coordinator is down, and the first successful beat after its restart
	// re-joins this worker automatically.
	w := &Worker{
		cfg:  cfg,
		hc:   &http.Client{Timeout: 2 * time.Second},
		stop: make(chan struct{}),
	}
	w.peers.Store(NewRing(nil))
	return w
}

// Start joins the coordinator (retrying until it answers) and then
// heartbeats forever. Both run on a background goroutine so a worker can
// come up before its coordinator does.
func (w *Worker) Start() {
	w.done.Add(1)
	go func() {
		defer w.done.Done()
		w.join()
		t := time.NewTicker(w.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.beat()
			}
		}
	}()
}

// Stop halts the heartbeat loop.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.done.Wait()
}

// join announces the worker until the coordinator answers. Heartbeats
// would get there eventually (they join implicitly), but an explicit join
// makes a fresh worker placeable after one round-trip.
func (w *Worker) join() {
	body, _ := json.Marshal(core.JoinRequest{Worker: w.cfg.Self})
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		resp, err := w.hc.Post(w.cfg.Coordinator+"/fleet/join", "application/json", bytes.NewReader(body))
		if err == nil {
			view, derr := decodeView(resp)
			if derr == nil {
				w.acceptView(view)
				w.cfg.Logf("fleet: joined coordinator=%s ring=%d", w.cfg.Coordinator, len(view.Workers))
				return
			}
			err = derr
		}
		w.cfg.Logf("fleet: join pending coordinator=%s err=%v", w.cfg.Coordinator, err)
		select {
		case <-w.stop:
			return
		case <-time.After(w.cfg.HeartbeatEvery):
		}
	}
}

// beat sends one heartbeat and folds the ack's membership into the local
// ring. Failure is logged and forgotten: the next tick tries again, and
// the first beat a restarted coordinator receives re-joins this worker.
func (w *Worker) beat() {
	body, _ := json.Marshal(core.HeartbeatRequest{
		Worker:    w.cfg.Self,
		PeerHits:  w.peerHits.Load(),
		Simulated: w.simulated.Load(),
	})
	resp, err := w.hc.Post(w.cfg.Coordinator+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		w.cfg.Logf("fleet: heartbeat failed coordinator=%s err=%v", w.cfg.Coordinator, err)
		return
	}
	view, err := decodeView(resp)
	if err != nil {
		w.cfg.Logf("fleet: heartbeat ack unreadable err=%v", err)
		return
	}
	w.acceptView(view)
}

// acceptView installs the coordinator's membership list as the local ring.
func (w *Worker) acceptView(view core.FleetView) {
	w.peers.Store(NewRing(view.Workers))
	w.lastAck.Store(time.Now().UnixNano())
}

// PeerFill is the lab.Config.PeerFill hook: before simulating, ask up to
// ProbeSiblings ring neighbors whether they already hold the result. The
// fleet has usually computed any given fingerprint exactly once — on this
// job's previous owner — so a worker that just joined (or inherited an
// arc in a reassignment) fills its cache instead of burning CPU.
func (w *Worker) PeerFill(fp string) (*core.Result, bool) {
	ring := w.peers.Load()
	probes := 0
	for _, peer := range ring.Successors(fp, ring.Len()) {
		if peer.ID == w.cfg.Self.ID {
			continue
		}
		if probes++; probes > w.cfg.ProbeSiblings {
			break
		}
		res, ok := w.probe(peer, fp)
		if ok {
			w.peerHits.Add(1)
			w.cfg.Logf("fleet: peer-fill fp=%.12s from=%s", fp, peer.ID)
			return res, true
		}
	}
	w.simulated.Add(1)
	return nil, false
}

// probe fetches one fingerprint from one sibling's cache endpoint.
func (w *Worker) probe(peer core.WorkerRecord, fp string) (*core.Result, bool) {
	resp, err := w.hc.Get(peer.URL + "/cache/" + fp)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var res core.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || res.Fingerprint != fp {
		return nil, false
	}
	return &res, true
}

// Metrics assembles the worker's fleet gauges for /metrics.
func (w *Worker) Metrics() core.WorkerMetrics {
	ackAge := int64(-1)
	if ts := w.lastAck.Load(); ts > 0 {
		ackAge = time.Since(time.Unix(0, ts)).Milliseconds()
	}
	return core.WorkerMetrics{
		Role:         "worker",
		ID:           w.cfg.Self.ID,
		Coordinator:  w.cfg.Coordinator,
		RingSize:     w.peers.Load().Len(),
		PeerHits:     w.peerHits.Load(),
		Simulated:    w.simulated.Load(),
		LastAckAgeMs: ackAge,
	}
}

// PeerHits returns how many jobs this worker resolved from ring siblings.
func (w *Worker) PeerHits() uint64 { return w.peerHits.Load() }

// Simulated returns how many jobs this worker executed locally.
func (w *Worker) Simulated() uint64 { return w.simulated.Load() }

// decodeView reads a FleetView response, consuming and closing the body.
func decodeView(resp *http.Response) (core.FleetView, error) {
	defer resp.Body.Close()
	var view core.FleetView
	if resp.StatusCode != http.StatusOK {
		return view, fmt.Errorf("fleet: coordinator answered %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, err
	}
	return view, nil
}
