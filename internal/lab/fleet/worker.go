package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
)

// WorkerConfig parameterizes a fleet Worker.
type WorkerConfig struct {
	// Self identifies this worker on the ring: a stable ID and the URL
	// the coordinator and ring siblings reach its job API on.
	Self core.WorkerRecord
	// Coordinator is the coordinator's base URL (butterflyd -join).
	Coordinator string
	// HeartbeatEvery paces liveness reports (default 1s).
	HeartbeatEvery time.Duration
	// ProbeSiblings is how many ring siblings to ask for a cached result
	// before simulating (default 2).
	ProbeSiblings int
	// Logf receives the worker's log lines (default: discard).
	Logf func(format string, args ...any)
}

// Worker is the fleet-side of a butterflyd worker process: it joins the
// coordinator, heartbeats it (carrying peer-fill counters), keeps a local
// copy of the ring from each heartbeat ack, and offers PeerFill — the
// scheduler hook that resolves a job from a ring sibling's cache instead
// of simulating it. Heartbeat acks also carry the coordinator failover
// list and epoch: when the primary stops answering, the worker walks the
// list until a (possibly promoted) coordinator answers, and its EpochGate
// rejects dispatches from any coordinator older than the newest it has
// seen.
type Worker struct {
	cfg   WorkerConfig
	hc    *http.Client // heartbeats and sibling cache probes
	peers atomic.Pointer[Ring]
	gate  EpochGate

	// coords is the failover list (primary first) learned from acks;
	// coordsMu guards it and cur, the index currently answering.
	coordsMu sync.Mutex
	coords   []string
	cur      int

	peerHits  atomic.Uint64
	simulated atomic.Uint64
	lastAck   atomic.Int64 // UnixNano of the last heartbeat ack; 0 = never

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// NewWorker builds a worker runtime. Call Start to begin heartbeating and
// Stop to halt.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.ProbeSiblings <= 0 {
		cfg.ProbeSiblings = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	// A missed heartbeat is retried by the next tick, not by backoff: one
	// bounded attempt per tick keeps the cadence honest while the
	// coordinator is down, and the first successful beat after its restart
	// re-joins this worker automatically.
	w := &Worker{
		cfg:    cfg,
		hc:     &http.Client{Timeout: 2 * time.Second},
		coords: []string{cfg.Coordinator},
		stop:   make(chan struct{}),
	}
	w.peers.Store(NewRing(nil))
	return w
}

// Gate returns the worker's epoch fence, for wrapping its job API (see
// EpochGate.Middleware).
func (w *Worker) Gate() *EpochGate { return &w.gate }

// coordinator returns the coordinator URL currently believed to answer.
func (w *Worker) coordinator() string {
	w.coordsMu.Lock()
	defer w.coordsMu.Unlock()
	return w.coords[w.cur]
}

// coordinators snapshots the failover list.
func (w *Worker) coordinators() []string {
	w.coordsMu.Lock()
	defer w.coordsMu.Unlock()
	out := make([]string, len(w.coords))
	copy(out, w.coords)
	return out
}

// advanceCoordinator rotates to the next failover candidate after a failed
// round-trip, returning the new target. With a single-entry list this is a
// no-op (the next tick retries the same coordinator).
func (w *Worker) advanceCoordinator() string {
	w.coordsMu.Lock()
	defer w.coordsMu.Unlock()
	if len(w.coords) > 1 {
		w.cur = (w.cur + 1) % len(w.coords)
	}
	return w.coords[w.cur]
}

// adoptCoordinators installs the failover list an ack carried, keeping the
// URL that just answered as the current target.
func (w *Worker) adoptCoordinators(answered string, list []string) {
	if len(list) == 0 {
		return
	}
	w.coordsMu.Lock()
	defer w.coordsMu.Unlock()
	w.coords = append(w.coords[:0], list...)
	w.cur = 0
	for i, u := range w.coords {
		if u == answered {
			w.cur = i
			break
		}
	}
}

// Start joins the coordinator (retrying until it answers) and then
// heartbeats forever. Both run on a background goroutine so a worker can
// come up before its coordinator does.
func (w *Worker) Start() {
	w.done.Add(1)
	go func() {
		defer w.done.Done()
		w.join()
		t := time.NewTicker(w.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.beat()
			}
		}
	}()
}

// Stop halts the heartbeat loop.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.done.Wait()
}

// join announces the worker until the coordinator answers. Heartbeats
// would get there eventually (they join implicitly), but an explicit join
// makes a fresh worker placeable after one round-trip.
func (w *Worker) join() {
	body, _ := json.Marshal(core.JoinRequest{Worker: w.cfg.Self})
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		coord := w.coordinator()
		resp, err := w.hc.Post(coord+"/fleet/join", "application/json", bytes.NewReader(body))
		if err == nil {
			view, derr := decodeView(resp)
			if derr == nil {
				w.acceptView(coord, view)
				w.cfg.Logf("fleet: joined coordinator=%s ring=%d epoch=%d", coord, len(view.Workers), view.Epoch)
				return
			}
			err = derr
		}
		w.cfg.Logf("fleet: join pending coordinator=%s err=%v", coord, err)
		w.advanceCoordinator()
		select {
		case <-w.stop:
			return
		case <-time.After(w.cfg.HeartbeatEvery):
		}
	}
}

// beat sends one heartbeat and folds the ack's membership into the local
// ring. Failure rotates to the next coordinator on the failover list (a
// standby that took over answers there) and is otherwise forgotten: the
// next tick tries again, and the first beat a restarted — or newly
// promoted — coordinator receives re-joins this worker.
func (w *Worker) beat() {
	body, _ := json.Marshal(core.HeartbeatRequest{
		Worker:    w.cfg.Self,
		PeerHits:  w.peerHits.Load(),
		Simulated: w.simulated.Load(),
	})
	coord := w.coordinator()
	resp, err := w.hc.Post(coord+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		next := w.advanceCoordinator()
		if next != coord {
			w.cfg.Logf("fleet: heartbeat failed coordinator=%s err=%v — failing over to %s", coord, err, next)
		} else {
			w.cfg.Logf("fleet: heartbeat failed coordinator=%s err=%v", coord, err)
		}
		return
	}
	view, err := decodeView(resp)
	if err != nil {
		// An HTTP answer that is not a valid ack: the endpoint is alive but
		// not (yet) a coordinator — a standby still waiting to promote.
		// Rotate so the next tick tries another candidate.
		w.advanceCoordinator()
		w.cfg.Logf("fleet: heartbeat ack unreadable coordinator=%s err=%v", coord, err)
		return
	}
	w.acceptView(coord, view)
}

// Leave announces a planned departure to the current coordinator — called
// on SIGTERM, before the drain, so the fleet stops placing new jobs here
// and never mistakes the shutdown for a death. Best-effort: an unreachable
// coordinator means the heartbeat timeout will (noisily) get there anyway.
func (w *Worker) Leave() {
	body, _ := json.Marshal(core.LeaveRequest{Worker: w.cfg.Self})
	coord := w.coordinator()
	resp, err := w.hc.Post(coord+"/fleet/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		w.cfg.Logf("fleet: leave failed coordinator=%s err=%v", coord, err)
		return
	}
	resp.Body.Close()
	w.cfg.Logf("fleet: left coordinator=%s", coord)
}

// acceptView installs the coordinator's membership list as the local ring
// and adopts the ack's epoch and coordinator failover list.
func (w *Worker) acceptView(answered string, view core.FleetView) {
	w.peers.Store(NewRing(view.Workers))
	w.gate.Observe(view.Epoch)
	w.adoptCoordinators(answered, view.Coordinators)
	w.lastAck.Store(time.Now().UnixNano())
}

// PeerFill is the lab.Config.PeerFill hook: before simulating, ask up to
// ProbeSiblings ring neighbors whether they already hold the result. The
// fleet has usually computed any given fingerprint exactly once — on this
// job's previous owner — so a worker that just joined (or inherited an
// arc in a reassignment) fills its cache instead of burning CPU. Probing
// walks the ring from the spec's placement key, the same walk the
// coordinator places by, so the first sibling asked is the worker most
// likely to have owned this job (or its axis-neighbors) before.
func (w *Worker) PeerFill(spec core.Spec, fp string) (*core.Result, bool) {
	ring := w.peers.Load()
	probes := 0
	for _, peer := range ring.Successors(PlacementKey(spec), ring.Len()) {
		if peer.ID == w.cfg.Self.ID {
			continue
		}
		if probes++; probes > w.cfg.ProbeSiblings {
			break
		}
		res, ok := w.probe(peer, fp)
		if ok {
			w.peerHits.Add(1)
			w.cfg.Logf("fleet: peer-fill fp=%.12s from=%s", fp, peer.ID)
			return res, true
		}
	}
	w.simulated.Add(1)
	return nil, false
}

// probe fetches one fingerprint from one sibling's cache endpoint.
func (w *Worker) probe(peer core.WorkerRecord, fp string) (*core.Result, bool) {
	resp, err := w.hc.Get(peer.URL + "/cache/" + fp)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var res core.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || res.Fingerprint != fp {
		return nil, false
	}
	return &res, true
}

// Metrics assembles the worker's fleet gauges for /metrics.
func (w *Worker) Metrics() core.WorkerMetrics {
	ackAge := int64(-1)
	if ts := w.lastAck.Load(); ts > 0 {
		ackAge = time.Since(time.Unix(0, ts)).Milliseconds()
	}
	return core.WorkerMetrics{
		Role:         "worker",
		ID:           w.cfg.Self.ID,
		Coordinator:  w.coordinator(),
		Coordinators: w.coordinators(),
		Epoch:        w.gate.Current(),
		RingSize:     w.peers.Load().Len(),
		PeerHits:     w.peerHits.Load(),
		Simulated:    w.simulated.Load(),
		LastAckAgeMs: ackAge,
	}
}

// PeerHits returns how many jobs this worker resolved from ring siblings.
func (w *Worker) PeerHits() uint64 { return w.peerHits.Load() }

// Simulated returns how many jobs this worker executed locally.
func (w *Worker) Simulated() uint64 { return w.simulated.Load() }

// decodeView reads a FleetView response, consuming and closing the body.
func decodeView(resp *http.Response) (core.FleetView, error) {
	defer resp.Body.Close()
	var view core.FleetView
	if resp.StatusCode != http.StatusOK {
		return view, fmt.Errorf("fleet: coordinator answered %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, err
	}
	return view, nil
}
