package fleet

import (
	"fmt"
	"testing"
	"time"

	"butterfly/internal/core"
)

func members(ids ...string) []core.WorkerRecord {
	out := make([]core.WorkerRecord, len(ids))
	for i, id := range ids {
		out[i] = core.WorkerRecord{ID: id, URL: "http://" + id}
	}
	return out
}

func fps(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fp-%04d-abcdef", i)
	}
	return out
}

// TestRingPlacementIsOrderIndependent: two processes that agree on the
// member set must agree on every placement, regardless of the order the
// members arrived in — that is what lets workers compute their own
// siblings from the membership list in heartbeat acks.
func TestRingPlacementIsOrderIndependent(t *testing.T) {
	a := NewRing(members("w1", "w2", "w3"))
	b := NewRing(members("w3", "w1", "w2"))
	for _, fp := range fps(200) {
		oa, _ := a.Owner(fp)
		ob, _ := b.Owner(fp)
		if oa.ID != ob.ID {
			t.Fatalf("placement depends on member order: %s vs %s for %s", oa.ID, ob.ID, fp)
		}
	}
}

// TestRingRemovalOnlyMovesTheDeadWorkersKeys: consistent hashing's whole
// point — when w2 dies, every key owned by w1 or w3 stays put.
func TestRingRemovalOnlyMovesTheDeadWorkersKeys(t *testing.T) {
	full := NewRing(members("w1", "w2", "w3"))
	reduced := NewRing(members("w1", "w3"))
	moved, kept := 0, 0
	for _, fp := range fps(300) {
		before, _ := full.Owner(fp)
		after, _ := reduced.Owner(fp)
		if before.ID == "w2" {
			if after.ID == "w2" {
				t.Fatalf("dead worker still owns %s", fp)
			}
			moved++
			continue
		}
		if after.ID != before.ID {
			t.Fatalf("key %s moved from surviving worker %s to %s", fp, before.ID, after.ID)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingBalance: 64 vnodes per worker must split a sweep roughly evenly —
// no worker starved, none doing the whole job.
func TestRingBalance(t *testing.T) {
	r := NewRing(members("w1", "w2", "w3"))
	counts := map[string]int{}
	const n = 600
	for _, fp := range fps(n) {
		o, ok := r.Owner(fp)
		if !ok {
			t.Fatal("owner missing on non-empty ring")
		}
		counts[o.ID]++
	}
	for id, c := range counts {
		if c < n/6 || c > n/2+n/10 {
			t.Errorf("worker %s owns %d of %d keys — too skewed", id, c, n)
		}
	}
}

// TestRingSuccessors: the failover order starts at the owner, visits each
// worker at most once, and covers the whole fleet.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(members("w1", "w2", "w3"))
	for _, fp := range fps(50) {
		seq := r.Successors(fp, r.Len())
		if len(seq) != 3 {
			t.Fatalf("successors(%s) = %d workers, want 3", fp, len(seq))
		}
		owner, _ := r.Owner(fp)
		if seq[0].ID != owner.ID {
			t.Fatalf("successors(%s)[0] = %s, owner = %s", fp, seq[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w.ID] {
				t.Fatalf("successors(%s) repeats %s", fp, w.ID)
			}
			seen[w.ID] = true
		}
	}
	if got := r.Successors("fp", 0); got != nil {
		t.Errorf("Successors(_, 0) = %v, want nil", got)
	}
}

// TestPickOwnerSkipsTwoSimultaneousDeaths: the reassignment walk must not
// hand a dead worker's jobs to a successor that is itself dead. The ring is
// a snapshot — two deaths recorded in the directory but not yet folded into
// a ring refresh leave both the owner and its successor on the ring — so
// pickOwner must check every candidate against the live directory and land
// on the first actually-placeable member, however many corpses in a row.
func TestPickOwnerSkipsTwoSimultaneousDeaths(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{DeadAfter: time.Hour, Logf: t.Logf})
	defer c.Close()
	for _, w := range members("w1", "w2", "w3") {
		c.dir.Upsert(w)
	}
	c.refreshRing()

	for _, key := range fps(50) {
		seq := c.Ring().Successors(key, 3)
		// Both the owner and its immediate successor die; the ring is NOT
		// refreshed (that is the race under test).
		c.dir.MarkDead(seq[0].ID)
		c.dir.MarkDead(seq[1].ID)

		got, ok := c.pickOwner(key)
		if !ok {
			t.Fatalf("pickOwner(%s) found no owner with one live worker left", key)
		}
		if got.ID != seq[2].ID {
			t.Fatalf("pickOwner(%s) = %s, want the only live member %s (dead: %s, %s)",
				key, got.ID, seq[2].ID, seq[0].ID, seq[1].ID)
		}

		// Revive for the next key (Upsert marks alive again).
		c.dir.Upsert(seq[0])
		c.dir.Upsert(seq[1])
	}

	// All three dead: no owner, and pickOwner says so instead of returning
	// a corpse.
	for _, w := range members("w1", "w2", "w3") {
		c.dir.MarkDead(w.ID)
	}
	if _, ok := c.pickOwner("fp-anything"); ok {
		t.Fatal("pickOwner returned an owner from an all-dead fleet")
	}
}

// TestRingEmptyAndDuplicates: an empty ring owns nothing; duplicate IDs
// collapse to one member.
func TestRingEmptyAndDuplicates(t *testing.T) {
	empty := NewRing(nil)
	if _, ok := empty.Owner("fp"); ok {
		t.Error("empty ring claims an owner")
	}
	if empty.Len() != 0 {
		t.Errorf("empty ring Len = %d", empty.Len())
	}
	dup := NewRing(append(members("w1"), members("w1")...))
	if dup.Len() != 1 {
		t.Errorf("duplicate member counted twice: Len = %d", dup.Len())
	}
}
