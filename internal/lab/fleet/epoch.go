package fleet

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
)

// EpochHeader stamps coordinator-originated requests with the dispatching
// coordinator's generation. Workers reject requests below the highest
// epoch they have seen — the fence that keeps a deposed primary (alive but
// already replaced) from racing the new one for the same jobs.
const EpochHeader = "X-Butterfly-Epoch"

// EpochGate is a worker's fence: a raise-only epoch register plus the HTTP
// middleware that enforces it. Requests without an epoch header pass
// untouched, so ordinary clients (curl, butterflybench -server) are never
// fenced — only coordinators identify themselves.
type EpochGate struct {
	max atomic.Uint64
}

// Observe folds an epoch into the gate (raise-only) and reports whether it
// raised the fence.
func (g *EpochGate) Observe(e uint64) bool {
	for {
		cur := g.max.Load()
		if e <= cur {
			return false
		}
		if g.max.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// Current returns the highest epoch observed.
func (g *EpochGate) Current() uint64 { return g.max.Load() }

// Middleware wraps a handler with the fence: a request stamped with an
// epoch below the gate's answers 412 Precondition Failed (a verdict, not
// backpressure — the client must not retry it), and a higher stamp raises
// the gate, so the first dispatch from a new primary fences the old one
// even before a heartbeat ack announces the takeover.
func (g *EpochGate) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(EpochHeader); h != "" {
			e, err := strconv.ParseUint(h, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":"bad %s: %v"}`, EpochHeader, err), http.StatusBadRequest)
				return
			}
			if cur := g.Current(); e < cur {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusPreconditionFailed)
				fmt.Fprintf(w, `{"error":"stale coordinator epoch %d, fenced at %d"}`+"\n", e, cur)
				return
			}
			g.Observe(e)
		}
		next.ServeHTTP(w, r)
	})
}
