package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

// openTestJournal opens a journal in a fresh temp dir and closes it with
// the test.
func openTestJournal(t *testing.T) *lab.Journal {
	t.Helper()
	j, err := lab.OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// primaryFor serves a journal's replication endpoint over httptest.
func primaryFor(t *testing.T, j *lab.Journal) (*Replicator, *httptest.Server) {
	t.Helper()
	rep := NewReplicator(j)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /replica/pull", rep.HandlePull)
	hts := httptest.NewServer(mux)
	t.Cleanup(hts.Close)
	return rep, hts
}

// TestEpochGateMiddleware: requests without an epoch header pass untouched;
// a stale epoch is rejected with 412 before reaching the handler; a newer
// epoch raises the fence and passes.
func TestEpochGateMiddleware(t *testing.T) {
	var gate EpochGate
	var reached atomic.Int32
	h := gate.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(epoch string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if epoch != "" {
			req.Header.Set(EpochHeader, epoch)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get(""); got != http.StatusOK {
		t.Fatalf("headerless request answered %d, want 200", got)
	}
	if got := get("3"); got != http.StatusOK { // first epoch seen: raises the fence
		t.Fatalf("epoch 3 answered %d, want 200", got)
	}
	if gate.Current() != 3 {
		t.Fatalf("gate = %d after observing 3", gate.Current())
	}
	if got := get("2"); got != http.StatusPreconditionFailed {
		t.Fatalf("stale epoch 2 answered %d, want 412", got)
	}
	if got := get("5"); got != http.StatusOK { // takeover: fence rises
		t.Fatalf("epoch 5 answered %d, want 200", got)
	}
	if got := get("notanumber"); got != http.StatusBadRequest {
		t.Fatalf("garbage epoch answered %d, want 400", got)
	}
	if reached.Load() != 3 { // headerless + epoch 3 + epoch 5
		t.Fatalf("handler reached %d times, want 3", reached.Load())
	}
}

// TestReplicationStreamsJournal: a follower pulling an active primary ends
// up with a faithful, same-numbering copy — jobs, workers, sweeps, epoch —
// and the primary's lag gauge for it drains to zero.
func TestReplicationStreamsJournal(t *testing.T) {
	primary := openTestJournal(t)
	rep, hts := primaryFor(t, primary)

	if _, err := primary.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := primary.WorkerUp(core.WorkerRecord{ID: "w1", URL: "http://w1"}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Submitted("j0001-aaaa", 1, core.Spec{Experiment: "numa", Quick: true}, "fp-a"); err != nil {
		t.Fatal(err)
	}
	if err := primary.SweepSubmitted("s0001", []string{"j0001-aaaa"}); err != nil {
		t.Fatal(err)
	}

	standby := openTestJournal(t)
	f := NewFollower(FollowerConfig{
		Self:         core.WorkerRecord{ID: "sb", URL: "http://sb"},
		Primary:      hts.URL,
		Journal:      standby,
		PullInterval: 10 * time.Millisecond,
		DeadAfter:    time.Hour, // never take over in this test
		Logf:         t.Logf,
	})
	f.Start()
	defer f.Stop()

	waitFor(t, "standby to catch up", func() bool { return standby.Rec() == primary.Rec() })

	// More records after the initial sync: the stream keeps flowing.
	if err := primary.Finished("j0001-aaaa", core.JobDone, ""); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "standby to stream the new record", func() bool { return standby.Rec() == primary.Rec() })

	if got, want := standby.Epoch(), primary.Epoch(); got != want {
		t.Errorf("standby epoch %d, primary %d", got, want)
	}
	jobs := standby.Jobs()
	if len(jobs) != 1 || jobs[0].State != core.JobDone {
		t.Fatalf("standby jobs = %+v, want one done job", jobs)
	}
	if ws := standby.Workers(); len(ws) != 1 || ws[0].ID != "w1" {
		t.Fatalf("standby workers = %+v", ws)
	}
	if sw := standby.Sweeps(); len(sw) != 1 || sw[0].SweepID != "s0001" || len(sw[0].JobIDs) != 1 {
		t.Fatalf("standby sweeps = %+v", sw)
	}

	waitFor(t, "primary lag gauge to drain", func() bool {
		fs := rep.Followers()
		return len(fs) == 1 && fs[0].ID == "sb" && fs[0].LagRecs == 0
	})
	if urls := rep.FollowerURLs(); len(urls) != 1 || urls[0] != "http://sb" {
		t.Errorf("FollowerURLs = %v", urls)
	}
}

// TestReplicationSnapshotBootstrap: a follower whose ack is beyond the
// primary's bounded tail gets a full state snapshot instead of a stream,
// then streams normally.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	primary := openTestJournal(t)
	primary.TailMax = 4 // force the tail to forget early records
	_, hts := primaryFor(t, primary)

	if _, err := primary.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := string(rune('a'+i%26)) + "-job"
		if err := primary.Submitted(id, i+1, core.Spec{Experiment: "numa", Quick: true}, "fp-"+id); err != nil {
			t.Fatal(err)
		}
	}

	standby := openTestJournal(t)
	f := NewFollower(FollowerConfig{
		Self:         core.WorkerRecord{ID: "sb"},
		Primary:      hts.URL,
		Journal:      standby,
		PullInterval: 10 * time.Millisecond,
		DeadAfter:    time.Hour,
		Logf:         t.Logf,
	})
	f.Start()
	defer f.Stop()

	waitFor(t, "standby to bootstrap from a snapshot", func() bool { return standby.Rec() == primary.Rec() })
	if got, want := len(standby.Jobs()), len(primary.Jobs()); got != want {
		t.Fatalf("standby has %d jobs, primary %d", got, want)
	}

	// Post-snapshot, streaming resumes record-by-record.
	if err := primary.Submitted("late-job", 99, core.Spec{Experiment: "numa", Quick: true}, "fp-late"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "standby to stream post-snapshot", func() bool { return standby.Rec() == primary.Rec() })
}

// TestFollowerTakeover: a primary that stops answering at the connection
// level for DeadAfter triggers exactly one takeover — epoch durably bumped
// first, then OnTakeover. An HTTP-alive primary (any status) never does.
func TestFollowerTakeover(t *testing.T) {
	primary := openTestJournal(t)
	_, hts := primaryFor(t, primary)
	if _, err := primary.BumpEpoch(); err != nil { // primary fences epoch 1
		t.Fatal(err)
	}
	if err := primary.Submitted("j0001-aaaa", 1, core.Spec{Experiment: "numa", Quick: true}, "fp-a"); err != nil {
		t.Fatal(err)
	}

	standby := openTestJournal(t)
	var tookOver atomic.Uint64
	f := NewFollower(FollowerConfig{
		Self:         core.WorkerRecord{ID: "sb", URL: "http://sb"},
		Primary:      hts.URL,
		Journal:      standby,
		PullInterval: 10 * time.Millisecond,
		DeadAfter:    200 * time.Millisecond,
		OnTakeover:   func(epoch uint64) { tookOver.Store(epoch) },
		Logf:         t.Logf,
	})
	f.Start()
	defer f.Stop()

	waitFor(t, "standby to sync", func() bool { return standby.Rec() == primary.Rec() })

	// The primary stays up well past DeadAfter: no takeover while it answers.
	time.Sleep(400 * time.Millisecond)
	if f.TookOver() {
		t.Fatal("follower took over from a live primary")
	}

	// SIGKILL equivalent: the listener vanishes.
	hts.Close()
	waitFor(t, "takeover", func() bool { return f.TookOver() })
	if got := tookOver.Load(); got != 2 {
		t.Errorf("takeover epoch = %d, want 2 (primary fenced 1)", got)
	}
	if standby.Epoch() != 2 {
		t.Errorf("standby journal epoch = %d after takeover, want 2", standby.Epoch())
	}
	// The replicated job came along: the promoted coordinator can resume it
	// under its original ID.
	jobs := standby.Jobs()
	if len(jobs) != 1 || jobs[0].JobID != "j0001-aaaa" {
		t.Fatalf("standby jobs after takeover = %+v", jobs)
	}
}

// TestFencedCoordinatorStepsDown: a worker whose gate saw a newer epoch
// answers the old coordinator's dispatches with 412; the old coordinator
// classifies that as fencing, fails the dispatch with ErrFenced, and
// refuses all further Executes.
func TestFencedCoordinatorStepsDown(t *testing.T) {
	// A "worker" that always answers 412 — the shape a real worker has
	// after observing a newer coordinator's epoch.
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"stale coordinator epoch"}`, http.StatusPreconditionFailed)
	}))
	defer worker.Close()

	c := NewCoordinator(CoordinatorConfig{DeadAfter: time.Hour, Epoch: 1, Logf: t.Logf})
	defer c.Close()
	c.dir.Upsert(core.WorkerRecord{ID: "w1", URL: worker.URL})
	c.refreshRing()

	_, err := c.Execute(core.Spec{Experiment: "numa", Quick: true}, "fp-x", func() bool { return false })
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("Execute error = %v, want ErrFenced", err)
	}
	if !c.Fenced() {
		t.Fatal("coordinator did not step down after a 412")
	}
	// Every later Execute fast-fails — no more split-brain dispatches.
	if _, err := c.Execute(core.Spec{Experiment: "numa", Quick: true}, "fp-y", func() bool { return false }); err == nil {
		t.Fatal("fenced coordinator dispatched again")
	}
}
