package fleet

import (
	"testing"
	"time"

	"butterfly/internal/core"
)

func testDirectory(deadAfter time.Duration) (*Directory, *time.Time) {
	d := NewDirectory(deadAfter)
	now := time.Unix(1_000_000, 0)
	d.now = func() time.Time { return now }
	return d, &now
}

func TestDirectoryLifecycle(t *testing.T) {
	d, now := testDirectory(time.Second)
	w := core.WorkerRecord{ID: "w1", URL: "http://w1"}

	if !d.Upsert(w) {
		t.Fatal("first join not reported as a membership change")
	}
	if d.Upsert(w) {
		t.Error("repeat join of a live worker reported as a change")
	}
	if !d.Alive("w1") {
		t.Fatal("joined worker not alive")
	}

	// Silence for longer than deadAfter downs the worker — exactly once.
	*now = now.Add(1500 * time.Millisecond)
	dead := d.Sweep()
	if len(dead) != 1 || dead[0].ID != "w1" {
		t.Fatalf("sweep = %v, want [w1]", dead)
	}
	if len(d.Sweep()) != 0 {
		t.Error("second sweep re-reported the same death")
	}
	if d.Alive("w1") {
		t.Error("swept worker still alive")
	}

	// A heartbeat revives it (implicit rejoin) and reports the change.
	if !d.Beat(core.HeartbeatRequest{Worker: w, PeerHits: 3, Simulated: 7}) {
		t.Fatal("revival heartbeat not reported as a change")
	}
	h := d.Health()
	if len(h) != 1 || !h[0].Alive || h[0].PeerHits != 3 || h[0].Simulated != 7 {
		t.Fatalf("health after revival = %+v", h)
	}
}

func TestDirectoryMarkDead(t *testing.T) {
	d, _ := testDirectory(time.Hour) // heartbeat timeout far away: only MarkDead acts
	d.Upsert(core.WorkerRecord{ID: "w1", URL: "http://w1"})
	d.Upsert(core.WorkerRecord{ID: "w2", URL: "http://w2"})

	if !d.MarkDead("w1") {
		t.Fatal("MarkDead on a live worker reported nothing")
	}
	if d.MarkDead("w1") {
		t.Error("MarkDead twice reported a second transition")
	}
	if d.MarkDead("ghost") {
		t.Error("MarkDead on an unknown worker reported a transition")
	}
	live := d.Live()
	if len(live) != 1 || live[0].ID != "w2" {
		t.Fatalf("live = %v, want [w2]", live)
	}
}

// TestDirectoryURLChange: a worker rejoining under a new URL (same identity,
// new port) must be reported as a change so the ring and client cache refresh.
func TestDirectoryURLChange(t *testing.T) {
	d, _ := testDirectory(time.Second)
	d.Upsert(core.WorkerRecord{ID: "w1", URL: "http://old"})
	if !d.Upsert(core.WorkerRecord{ID: "w1", URL: "http://new"}) {
		t.Error("URL change not reported")
	}
	live := d.Live()
	if len(live) != 1 || live[0].URL != "http://new" {
		t.Fatalf("live = %v, want the new URL", live)
	}
}
