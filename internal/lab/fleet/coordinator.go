package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
	"butterfly/internal/lab/client"
)

// errWorkerLost marks a dispatch abandoned because its worker died (or
// vanished from the network) — the one error Execute answers by moving
// the job to the next ring node instead of failing it.
var errWorkerLost = errors.New("fleet: worker lost")

// ErrFenced marks a dispatch rejected by a worker's epoch gate: a newer
// coordinator has taken over and this one must stop dispatching — its
// journal is no longer the authority on anything.
var ErrFenced = errors.New("fleet: fenced by a newer coordinator epoch")

// CoordinatorConfig parameterizes a Coordinator.
type CoordinatorConfig struct {
	// DeadAfter is how long a worker may go without a heartbeat before
	// its jobs are reassigned (default 5s).
	DeadAfter time.Duration
	// PollInterval paces the coordinator's polling of dispatched jobs
	// (default 50ms).
	PollInterval time.Duration
	// Journal, when non-nil, receives worker-up/worker-down records so a
	// restarted coordinator can probe the last-known fleet immediately.
	Journal *lab.Journal
	// Epoch is this coordinator's generation, stamped on every dispatch.
	// The first coordinator on a journal fences epoch 1; a standby bumps
	// the epoch durably before building its coordinator. Zero means the
	// fleet predates fencing (dispatches go unstamped).
	Epoch uint64
	// Takeovers is how many failovers produced this coordinator (0 for a
	// primary that started as one; surfaced on /metrics).
	Takeovers uint64
	// SelfURL is the base URL workers reach this coordinator on; it leads
	// the coordinator list heartbeat acks advertise.
	SelfURL string
	// Replicator, when non-nil, streams this coordinator's journal to
	// standbys (mounted at POST /replica/pull) and contributes the
	// replication-lag gauges and the standby URLs workers fail over to.
	Replicator *Replicator
	// Logf receives the coordinator's structured log lines (default:
	// discard). Reassignments always log through it — one key=value line
	// per reassignment, so operators can reconstruct failure timelines.
	Logf func(format string, args ...any)
}

// Coordinator owns fleet membership and remote dispatch. It plugs into a
// lab.Scheduler as its Execute hook: the scheduler keeps owning the
// queue, journal, cache, admission, and job IDs — exactly the machinery
// PR 5 made crash-safe — while the coordinator turns "run this spec" into
// "place it on the ring, watch the worker, reassign on death".
type Coordinator struct {
	cfg  CoordinatorConfig
	dir  *Directory
	ring atomic.Pointer[Ring]

	mu      sync.Mutex
	clients map[string]*client.Client // worker ID → client (rebuilt on URL change)
	urls    map[string]string         // worker ID → URL the client above targets

	reassigned atomic.Uint64
	fenced     atomic.Bool // a worker rejected our epoch: a successor runs
	stop       chan struct{}
	stopOnce   sync.Once
	swept      sync.WaitGroup
}

// NewCoordinator builds a coordinator and starts its heartbeat-timeout
// sweeper. Call Close to stop it.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		dir:     NewDirectory(cfg.DeadAfter),
		clients: make(map[string]*client.Client),
		urls:    make(map[string]string),
		stop:    make(chan struct{}),
	}
	c.ring.Store(NewRing(nil))
	c.swept.Add(1)
	go c.sweepLoop()
	return c
}

// Close stops the heartbeat sweeper. In-flight Executes keep running;
// they exit through their jobs' cancellation.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.swept.Wait()
}

// sweepLoop downs workers whose heartbeats stopped, twice per timeout.
func (c *Coordinator) sweepLoop() {
	defer c.swept.Done()
	t := time.NewTicker(c.cfg.DeadAfter / 2)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, w := range c.dir.Sweep() {
				c.workerDown(w, "heartbeat-timeout")
			}
		}
	}
}

// workerDown records a worker's death everywhere it matters: directory
// (already done by the caller or Sweep), journal, log, ring.
func (c *Coordinator) workerDown(w core.WorkerRecord, reason string) {
	if c.cfg.Journal != nil {
		_ = c.cfg.Journal.WorkerDown(w)
	}
	c.cfg.Logf("fleet: worker-down id=%s url=%s reason=%s live=%d", w.ID, w.URL, reason, len(c.dir.Live()))
	c.refreshRing()
}

// workerUp records a worker joining (or rejoining).
func (c *Coordinator) workerUp(w core.WorkerRecord, how string) {
	if c.cfg.Journal != nil {
		_ = c.cfg.Journal.WorkerUp(w)
	}
	c.cfg.Logf("fleet: worker-up id=%s url=%s via=%s live=%d", w.ID, w.URL, how, len(c.dir.Live()))
	c.refreshRing()
}

// refreshRing rebuilds the placement ring from the live membership.
func (c *Coordinator) refreshRing() { c.ring.Store(NewRing(c.dir.Live())) }

// Ring returns the current placement ring (never nil).
func (c *Coordinator) Ring() *Ring { return c.ring.Load() }

// Directory returns the coordinator's membership table.
func (c *Coordinator) Directory() *Directory { return c.dir }

// Reassigned returns how many dispatches moved to another worker after a
// death.
func (c *Coordinator) Reassigned() uint64 { return c.reassigned.Load() }

// clientFor returns the (breaker-armed) client for a worker, caching per
// worker ID and rebuilding when the worker rejoined under a new URL.
func (c *Coordinator) clientFor(w core.WorkerRecord) *client.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.clients[w.ID]; ok && c.urls[w.ID] == w.URL {
		return cl
	}
	cl := client.New(w.URL)
	// Dispatch wants fast failure detection, not patient backoff: the
	// ring has somewhere else to put the job. The breaker makes repeat
	// dispatches to a dead worker fail in microseconds until it proves
	// itself alive again.
	cl.MaxAttempts = 3
	cl.BaseDelay = 50 * time.Millisecond
	cl.MaxDelay = 500 * time.Millisecond
	cl.Breaker = client.NewBreaker(3, c.cfg.DeadAfter)
	if c.cfg.Epoch > 0 {
		epoch := strconv.FormatUint(c.cfg.Epoch, 10)
		cl.Headers = func() map[string]string { return map[string]string{EpochHeader: epoch} }
	}
	c.clients[w.ID] = cl
	c.urls[w.ID] = w.URL
	return cl
}

// RecoverWorkers probes the journal's last-known membership — called once
// at startup, so a restarted coordinator rediscovers its fleet in one
// round-trip instead of waiting out each worker's heartbeat interval.
// Workers that fail the probe are journaled down; live ones rejoin the
// ring immediately (and keep refreshing via their own heartbeats).
func (c *Coordinator) RecoverWorkers(known []core.WorkerRecord) {
	var wg sync.WaitGroup
	for _, w := range known {
		wg.Add(1)
		go func(w core.WorkerRecord) {
			defer wg.Done()
			hc := &http.Client{Timeout: 2 * time.Second}
			resp, err := hc.Get(w.URL + "/healthz")
			if err == nil {
				resp.Body.Close()
			}
			if err == nil && resp.StatusCode == http.StatusOK {
				if c.dir.Upsert(w) {
					c.workerUp(w, "recovery-probe")
				}
				return
			}
			c.dir.MarkDead(w.ID)
			c.workerDown(w, "recovery-probe-failed")
		}(w)
	}
	wg.Wait()
}

// pickOwner walks the ring clockwise from the placement key and returns
// the first member the directory still believes placeable. The ring is a
// snapshot — between a death being recorded and the ring refresh landing,
// Owner can name a worker that is already dead, and after two simultaneous
// deaths the *successor* can be dead too. Checking each candidate against
// the live directory closes that window: the job goes to the next live
// member, however many corpses sit between.
func (c *Coordinator) pickOwner(key string) (core.WorkerRecord, bool) {
	ring := c.Ring()
	for _, w := range ring.Successors(key, ring.Len()) {
		if c.dir.Placeable(w.ID) {
			return w, true
		}
	}
	return core.WorkerRecord{}, false
}

// Execute is the lab.Config.Execute hook: place the job's locality key on
// the ring, dispatch it to the owning worker, and wait — reassigning to
// the next live ring node whenever the worker dies mid-flight.
// Re-execution after a reassignment is idempotent: the result is
// content-addressed, and any worker that already holds it (its own cache
// or a ring sibling's) serves it without simulating. Placement hashes
// PlacementKey(spec), not the fingerprint, so a sweep's axis-neighbors pin
// to one worker and its cache serves the sweep's next refinement.
func (c *Coordinator) Execute(spec core.Spec, fp string, canceled func() bool) (*core.Result, error) {
	key := PlacementKey(spec)
	var lastWorker string
	for {
		if canceled() {
			return nil, lab.ErrCanceled
		}
		if c.fenced.Load() {
			return nil, ErrFenced
		}
		w, ok := c.pickOwner(key)
		if !ok {
			// No live workers. Hold the job rather than failing it — the
			// fleet losing its last worker is exactly when an operator is
			// mid-restart. Cancellation (or shutdown) is the way out.
			if !sleepUnlessCanceled(200*time.Millisecond, canceled) {
				return nil, lab.ErrCanceled
			}
			continue
		}
		if lastWorker != "" && lastWorker != w.ID {
			n := c.reassigned.Add(1)
			c.cfg.Logf("fleet: reassign fp=%.12s from=%s to=%s reason=worker-lost total_reassigned=%d",
				fp, lastWorker, w.ID, n)
		}
		lastWorker = w.ID
		res, err := c.dispatch(w, spec, fp, canceled)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, errWorkerLost):
			continue // the ring has already been refreshed without w
		case errors.Is(err, errWorkerBusy):
			if !sleepUnlessCanceled(c.cfg.PollInterval, canceled) {
				return nil, lab.ErrCanceled
			}
			continue // same worker, after a breath
		default:
			return nil, err // deterministic job failure — reassignment cannot help
		}
	}
}

// errWorkerBusy marks a dispatch turned away by a live worker (429/503
// after the client's own retries): back off and try again rather than
// declaring the worker dead.
var errWorkerBusy = errors.New("fleet: worker busy")

// dispatch submits the spec to one worker and waits for its result,
// watching the directory so a worker death mid-wait abandons the attempt
// promptly instead of waiting out a network timeout.
func (c *Coordinator) dispatch(w core.WorkerRecord, spec core.Spec, fp string, canceled func() bool) (*core.Result, error) {
	ctx := context.Background()
	cl := c.clientFor(w)
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return nil, c.classify(w, err, "submit")
	}
	for {
		if canceled() {
			// Best-effort: stop the worker burning cycles on a job nobody
			// will collect.
			_ = cl.Cancel(ctx, st.ID)
			return nil, lab.ErrCanceled
		}
		if !c.dir.Alive(w.ID) {
			return nil, errWorkerLost
		}
		jst, err := cl.Job(ctx, st.ID)
		if err != nil {
			return nil, c.classify(w, err, "poll")
		}
		switch jst.State {
		case core.JobDone:
			res, err := cl.Result(ctx, st.ID)
			if err != nil {
				return nil, c.classify(w, err, "fetch")
			}
			return res, nil
		case core.JobFailed:
			return nil, fmt.Errorf("fleet: job failed on worker %s: %s", w.ID, jst.Error)
		case core.JobCanceled:
			// Only the coordinator cancels worker jobs; a cancellation it
			// did not ask for means the worker restarted confused — rerun.
			return nil, errWorkerLost
		}
		if !sleepUnlessCanceled(c.cfg.PollInterval, canceled) {
			_ = cl.Cancel(ctx, st.ID)
			return nil, lab.ErrCanceled
		}
	}
}

// classify sorts a client error into the fleet's three kinds: an HTTP
// answer that is backpressure (busy), an HTTP answer that is a verdict
// (permanent), and no answer at all (the worker is gone — mark it dead,
// reassign its work).
func (c *Coordinator) classify(w core.WorkerRecord, err error, op string) error {
	var ae *client.APIError
	if errors.As(err, &ae) {
		switch ae.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return fmt.Errorf("%w: %s %s: %v", errWorkerBusy, w.ID, op, err)
		case http.StatusPreconditionFailed:
			// The worker's epoch gate rejected us: a newer coordinator has
			// taken over. Step down loudly — every further dispatch from
			// this process would be a split-brain write.
			if !c.fenced.Swap(true) {
				c.cfg.Logf("fleet: FENCED epoch=%d worker=%s op=%s — a newer coordinator has taken over, stepping down",
					c.cfg.Epoch, w.ID, op)
			}
			return fmt.Errorf("%w: worker %s %s: %v", ErrFenced, w.ID, op, err)
		}
		return fmt.Errorf("fleet: worker %s %s: %w", w.ID, op, err)
	}
	// Connection-level failure (or an open breaker): the worker is
	// unreachable. Down it now — the heartbeat timeout would get there,
	// but the job should not wait for it.
	if c.dir.MarkDead(w.ID) {
		c.workerDown(w, "connection-failed op="+op)
	}
	return fmt.Errorf("%w: %s %s: %v", errWorkerLost, w.ID, op, err)
}

// sleepUnlessCanceled naps in small slices so cancellation is honored
// within ~20ms. Reports false when canceled.
func sleepUnlessCanceled(d time.Duration, canceled func() bool) bool {
	const slice = 20 * time.Millisecond
	for d > 0 {
		if canceled != nil && canceled() {
			return false
		}
		step := d
		if step > slice {
			step = slice
		}
		time.Sleep(step)
		d -= step
	}
	return canceled == nil || !canceled()
}

// Fenced reports whether a worker has rejected this coordinator's epoch —
// i.e. a successor has taken over and this process must not dispatch.
func (c *Coordinator) Fenced() bool { return c.fenced.Load() }

// Metrics assembles the coordinator's fleet gauges for /metrics.
func (c *Coordinator) Metrics() core.FleetMetrics {
	health := c.dir.Health()
	m := core.FleetMetrics{
		Role:           "coordinator",
		Epoch:          c.cfg.Epoch,
		Takeovers:      c.cfg.Takeovers,
		KnownWorkers:   len(health),
		ReassignedJobs: c.reassigned.Load(),
		Workers:        health,
	}
	for _, h := range health {
		if h.Alive {
			m.LiveWorkers++
			if h.HeartbeatAgeMs > m.MaxBeatAgeMs {
				m.MaxBeatAgeMs = h.HeartbeatAgeMs
			}
		}
		m.PeerHits += h.PeerHits
		m.Simulated += h.Simulated
	}
	if c.cfg.Replicator != nil {
		m.Followers = c.cfg.Replicator.Followers()
		for _, f := range m.Followers {
			if f.LagRecs > m.ReplicationLagRecs {
				m.ReplicationLagRecs = f.LagRecs
			}
		}
	}
	return m
}

// view assembles the membership answer to joins and heartbeats, carrying
// the epoch (so workers raise their fences without waiting for a dispatch)
// and the coordinator failover list (self first, then pulling standbys).
func (c *Coordinator) view() core.FleetView {
	v := core.FleetView{Workers: c.dir.Live(), Epoch: c.cfg.Epoch}
	if c.cfg.SelfURL != "" {
		v.Coordinators = append(v.Coordinators, c.cfg.SelfURL)
	}
	if c.cfg.Replicator != nil {
		v.Coordinators = append(v.Coordinators, c.cfg.Replicator.FollowerURLs()...)
	}
	return v
}

// Mount wires the coordinator's HTTP surface onto a lab server:
//
//	POST /fleet/join       worker announces itself (body: core.JoinRequest)
//	POST /fleet/heartbeat  liveness + counters (body: core.HeartbeatRequest)
//	POST /fleet/leave      worker's planned departure (body: core.LeaveRequest)
//	GET  /fleet            fleet status document (core.FleetMetrics)
//	POST /replica/pull     standby journal replication (with a Replicator)
//
// and registers the fleet block of /metrics.
func (c *Coordinator) Mount(srv *lab.Server) {
	srv.Handle("POST /fleet/join", http.HandlerFunc(c.handleJoin))
	srv.Handle("POST /fleet/heartbeat", http.HandlerFunc(c.handleHeartbeat))
	srv.Handle("POST /fleet/leave", http.HandlerFunc(c.handleLeave))
	srv.Handle("GET /fleet", http.HandlerFunc(c.handleStatus))
	if c.cfg.Replicator != nil {
		srv.Handle("POST /replica/pull", http.HandlerFunc(c.cfg.Replicator.HandlePull))
	}
	srv.AugmentMetrics(func() any { return c.Metrics() })
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req core.JoinRequest
	if !decodeFleetBody(w, r, &req) || !validWorker(w, req.Worker) {
		return
	}
	if c.dir.Upsert(req.Worker) {
		c.workerUp(req.Worker, "join")
	}
	writeFleetJSON(w, c.view())
}

// handleLeave is a worker's planned departure: journal it and drop it from
// the placement set immediately, but keep it pollable for its in-flight
// jobs — no reassignment churn, because nothing was abandoned.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req core.LeaveRequest
	if !decodeFleetBody(w, r, &req) || !validWorker(w, req.Worker) {
		return
	}
	if c.dir.Depart(req.Worker.ID) {
		if c.cfg.Journal != nil {
			_ = c.cfg.Journal.WorkerDown(req.Worker)
		}
		c.cfg.Logf("fleet: worker-leave id=%s url=%s reason=drain live=%d",
			req.Worker.ID, req.Worker.URL, len(c.dir.Live()))
		c.refreshRing()
	}
	writeFleetJSON(w, c.view())
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req core.HeartbeatRequest
	if !decodeFleetBody(w, r, &req) || !validWorker(w, req.Worker) {
		return
	}
	// A heartbeat from an unknown (or believed-dead) worker is an
	// implicit join: this is how a restarted coordinator re-learns its
	// fleet from traffic alone.
	if c.dir.Beat(req) {
		c.workerUp(req.Worker, "heartbeat")
	}
	writeFleetJSON(w, c.view())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeFleetJSON(w, c.Metrics())
}

// decodeFleetBody parses a small fleet POST (bounded well under the lab's
// body cap — a membership record is a hundred bytes).
func decodeFleetBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"bad fleet body: %v"}`, err), http.StatusBadRequest)
		return false
	}
	return true
}

func validWorker(w http.ResponseWriter, rec core.WorkerRecord) bool {
	if rec.ID == "" || rec.URL == "" {
		http.Error(w, `{"error":"worker id and url are required"}`, http.StatusBadRequest)
		return false
	}
	return true
}

func writeFleetJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
