package fleet

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

// testNode is one in-process fleet member: a real lab server on a real
// HTTP listener, backed by its own scheduler and cache, plus the fleet
// Worker runtime heartbeating the coordinator.
type testNode struct {
	w     *Worker
	sched *lab.Scheduler
	hts   *httptest.Server
}

// startNode brings up a worker node against the coordinator at coordURL.
func startNode(t *testing.T, id, coordURL, cacheDir string) *testNode {
	t.Helper()
	srv := lab.NewServer(lab.ServerConfig{})
	hts := httptest.NewServer(srv)
	w := NewWorker(WorkerConfig{
		Self:           core.WorkerRecord{ID: id, URL: hts.URL},
		Coordinator:    coordURL,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	sched := lab.NewScheduler(lab.Config{
		Workers:  2,
		Cache:    lab.OpenCache(cacheDir),
		PeerFill: w.PeerFill,
	})
	srv.Attach(sched)
	w.Start()
	n := &testNode{w: w, sched: sched, hts: hts}
	t.Cleanup(func() { n.kill(t) })
	return n
}

// kill tears the node down abruptly: heartbeats stop, the listener closes.
// Safe to call twice.
func (n *testNode) kill(t *testing.T) {
	t.Helper()
	n.w.Stop()
	n.hts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = n.sched.Shutdown(ctx)
}

// startCoordinator brings up a coordinator node whose scheduler dispatches
// through the ring. A nil cache keeps every submission flowing to the
// fleet — exactly what the placement tests need.
func startCoordinator(t *testing.T, deadAfter time.Duration) (*Coordinator, *lab.Scheduler, string) {
	t.Helper()
	srv := lab.NewServer(lab.ServerConfig{})
	hts := httptest.NewServer(srv)
	coord := NewCoordinator(CoordinatorConfig{
		DeadAfter:    deadAfter,
		PollInterval: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	coord.Mount(srv)
	sched := lab.NewScheduler(lab.Config{Workers: 8, Execute: coord.Execute})
	srv.Attach(sched)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sched.Shutdown(ctx)
		coord.Close()
		hts.Close()
	})
	return coord, sched, hts.URL
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sweepSpecs(n int) []core.Spec {
	specs := make([]core.Spec, n)
	for i := range specs {
		specs[i] = core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)}
	}
	return specs
}

// TestFleetExecutesByteIdentical: a two-worker fleet must produce exactly
// the tables the sequential in-process driver does.
func TestFleetExecutesByteIdentical(t *testing.T) {
	coord, sched, coordURL := startCoordinator(t, 5*time.Second)
	startNode(t, "wA", coordURL, filepath.Join(t.TempDir(), "a"))
	startNode(t, "wB", coordURL, filepath.Join(t.TempDir(), "b"))
	waitFor(t, "2 workers on the ring", func() bool { return coord.Ring().Len() == 2 })

	for _, spec := range sweepSpecs(6) {
		job, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			t.Fatalf("nodes=%d: %v", spec.Nodes, err)
		}
		clean, err := lab.RunSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table != clean.Table {
			t.Errorf("nodes=%d: fleet table diverges from sequential driver", spec.Nodes)
		}
		if res.Fingerprint != lab.Fingerprint(spec) {
			t.Errorf("nodes=%d: fingerprint drifted across the wire", spec.Nodes)
		}
	}
}

// TestFleetReassignsOnWorkerDeath: jobs placed on a worker that dies are
// moved to the next ring node and still finish byte-identical. The dead
// worker is detected by connection failure (faster than the heartbeat
// timeout), journaled down, and counted in ReassignedJobs.
func TestFleetReassignsOnWorkerDeath(t *testing.T) {
	coord, sched, coordURL := startCoordinator(t, 2*time.Second)
	a := startNode(t, "wA", coordURL, filepath.Join(t.TempDir(), "a"))
	startNode(t, "wB", coordURL, filepath.Join(t.TempDir(), "b"))
	waitFor(t, "2 workers on the ring", func() bool { return coord.Ring().Len() == 2 })

	// Kill A after it joined but before any dispatch: every job the ring
	// places on it must fail over to B.
	a.kill(t)

	specs := sweepSpecs(10)
	jobs := make([]*lab.Job, len(specs))
	for i, spec := range specs {
		job, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	for i, job := range jobs {
		res, err := job.Wait()
		if err != nil {
			t.Fatalf("nodes=%d: %v", specs[i].Nodes, err)
		}
		clean, err := lab.RunSpec(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Table != clean.Table {
			t.Errorf("nodes=%d: reassigned run diverges from sequential driver", specs[i].Nodes)
		}
	}
	if coord.Reassigned() == 0 {
		t.Error("no job was reassigned — the dead worker owned none of 10 placements?")
	}
	waitFor(t, "ring to shrink to the survivor", func() bool { return coord.Ring().Len() == 1 })
}

// TestFleetPeerCacheFill: a fresh worker joining a warm fleet fills its
// jobs from ring siblings' caches instead of simulating. The ISSUE's
// acceptance bar is >= 90% fill on the second sweep; with every result
// already on the first worker it should be 100%.
func TestFleetPeerCacheFill(t *testing.T) {
	coord, sched, coordURL := startCoordinator(t, 5*time.Second)
	a := startNode(t, "wA", coordURL, filepath.Join(t.TempDir(), "a"))
	waitFor(t, "first worker on the ring", func() bool { return coord.Ring().Len() == 1 })

	// Sweep 1: everything lands on A and is cached there.
	specs := sweepSpecs(10)
	for _, spec := range specs {
		job, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if a.w.Simulated() == 0 {
		t.Fatal("first sweep simulated nothing — test premise broken")
	}

	// A fresh worker B joins with an empty cache.
	b := startNode(t, "wB", coordURL, filepath.Join(t.TempDir(), "b"))
	waitFor(t, "2 workers on the ring", func() bool { return coord.Ring().Len() == 2 })
	waitFor(t, "B to learn the ring", func() bool { return b.w.Metrics().RingSize == 2 })

	// Sweep 2: same specs. The coordinator has no cache, so every job is
	// re-placed; B-owned jobs must come from A's cache, not simulation.
	for _, spec := range specs {
		job, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			t.Fatal(err)
		}
		clean, err := lab.RunSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table != clean.Table {
			t.Errorf("nodes=%d: peer-filled run diverges from sequential driver", spec.Nodes)
		}
	}
	hits, sim := b.w.PeerHits(), b.w.Simulated()
	if hits == 0 {
		t.Fatal("fresh worker handled no jobs (or probed no siblings) — placement never split")
	}
	if rate := float64(hits) / float64(hits+sim); rate < 0.9 {
		t.Errorf("peer fill rate = %.0f%% (%d hits, %d simulated), want >= 90%%", 100*rate, hits, sim)
	}
}

// TestFleetGracefulLeaveDrainsWithoutReassignment: a worker that announces
// its departure (SIGTERM path) leaves the placement set immediately — no
// waiting out -dead-after, and crucially no reassignment churn, because
// nothing was abandoned. New jobs land on the survivor; the leaver stays
// alive (draining) for in-flight polling until its heartbeats stop.
func TestFleetGracefulLeaveDrainsWithoutReassignment(t *testing.T) {
	coord, sched, coordURL := startCoordinator(t, 5*time.Second)
	a := startNode(t, "wA", coordURL, filepath.Join(t.TempDir(), "a"))
	startNode(t, "wB", coordURL, filepath.Join(t.TempDir(), "b"))
	waitFor(t, "2 workers on the ring", func() bool { return coord.Ring().Len() == 2 })

	// wA announces a planned departure. It keeps heartbeating (its queue
	// may still hold dispatched jobs) but must stop being placeable.
	a.w.Leave()
	waitFor(t, "ring to exclude the leaver", func() bool { return coord.Ring().Len() == 1 })
	if !coord.Directory().Alive("wA") {
		t.Fatal("draining worker went dead instead of draining")
	}
	if coord.Directory().Placeable("wA") {
		t.Fatal("draining worker still placeable")
	}
	var drainingSeen bool
	for _, h := range coord.Directory().Health() {
		if h.ID == "wA" && h.Draining {
			drainingSeen = true
		}
	}
	if !drainingSeen {
		t.Fatal("directory health does not show wA draining")
	}

	// Every post-leave job lands on wB, byte-identical, with zero
	// reassignments — a drain is not a death.
	for _, spec := range sweepSpecs(6) {
		job, err := sched.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait()
		if err != nil {
			t.Fatalf("nodes=%d: %v", spec.Nodes, err)
		}
		clean, err := lab.RunSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table != clean.Table {
			t.Errorf("nodes=%d: post-drain run diverges from sequential driver", spec.Nodes)
		}
	}
	if n := coord.Reassigned(); n != 0 {
		t.Errorf("graceful leave caused %d reassignments, want 0", n)
	}
	if got := a.w.Simulated(); got != 0 {
		t.Errorf("draining worker simulated %d new jobs after leaving", got)
	}

	// A draining worker's heartbeats must not resurrect it onto the ring.
	time.Sleep(150 * time.Millisecond) // a few heartbeat intervals
	if coord.Ring().Len() != 1 {
		t.Errorf("heartbeats resurrected the draining worker: ring=%d", coord.Ring().Len())
	}
}

// TestFleetHoldsJobsWithNoWorkers: with every worker gone the coordinator
// parks jobs rather than failing them, and releases them the moment a
// worker appears.
func TestFleetHoldsJobsWithNoWorkers(t *testing.T) {
	coord, sched, coordURL := startCoordinator(t, 5*time.Second)

	job, err := sched.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
		t.Fatal("job finished with no workers on the ring")
	case <-time.After(300 * time.Millisecond):
	}

	startNode(t, "wA", coordURL, filepath.Join(t.TempDir(), "a"))
	waitFor(t, "worker to join", func() bool { return coord.Ring().Len() == 1 })
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := lab.RunSpec(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table != clean.Table {
		t.Error("held-then-released job diverges from sequential driver")
	}
}
