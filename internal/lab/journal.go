package lab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"butterfly/internal/core"
)

// DefaultJournalDir is where butterflyd keeps its write-ahead job journal,
// next to the result cache under results/.
const DefaultJournalDir = "results/journal"

// journalSchema versions the journal encoding; a snapshot written by a
// different schema refuses to load rather than being misread.
const journalSchema = "butterfly-journal-v1"

// ErrJournalClosed is returned by appends after Close.
var ErrJournalClosed = errors.New("lab: journal closed")

// Journal is the lab's durable job log: an append-only JSONL file of
// lifecycle records plus a periodically compacted snapshot, both under one
// directory. Opening a journal replays snapshot + tail into an in-memory
// job table the scheduler uses to recover: terminal jobs are restored,
// mid-flight jobs are requeued.
//
// Durability model: every record is a single buffered write of one JSON
// line; terminal records (completed/failed/canceled) are additionally
// fsynced, so an acknowledged result can never be lost to a crash. A torn
// final line (the process died mid-append) is tolerated and dropped on
// replay — the affected job simply replays from its previous state and is
// requeued, which is safe because execution is deterministic and
// idempotent. Any corruption *before* the final record means the file was
// damaged at rest, and replay fails loudly instead of guessing.
type Journal struct {
	dir string

	// CompactEvery is how many appended records accumulate before the
	// journal folds them into the snapshot and truncates the log file
	// (default 4096). Set it before handing the journal to a scheduler.
	CompactEvery int

	mu      sync.Mutex
	f       *os.File
	rec     int64 // last record number written (survives compaction)
	appends int   // records since the last compaction
	state   map[string]*core.JobRecord
	order   []string // job IDs by submission order
	maxSeq  int
	torn    bool // replay dropped a truncated final record

	// workers is the fleet membership table a coordinator journals
	// alongside its jobs: worker ID → record for every worker currently
	// believed up. Single-box daemons never touch it.
	workers map[string]core.WorkerRecord
}

// journalSnapshot is the compacted on-disk form: every known job at its
// last applied state, plus the record number the snapshot reflects so
// replay can skip already-folded journal lines.
type journalSnapshot struct {
	Schema string           `json:"schema"`
	Rec    int64            `json:"rec"`
	Seq    int              `json:"seq"`
	Jobs   []core.JobRecord `json:"jobs"`
	// Workers is the coordinator's last-known fleet membership (absent for
	// single-box journals and snapshots written before fleets existed).
	Workers []core.WorkerRecord `json:"workers,omitempty"`
}

func (j *Journal) snapshotPath() string { return filepath.Join(j.dir, "snapshot.json") }
func (j *Journal) logPath() string      { return filepath.Join(j.dir, "journal.jsonl") }

// OpenJournal opens (creating if needed) the journal rooted at dir ("" means
// DefaultJournalDir), replays its contents, compacts them into a fresh
// snapshot, and leaves the log open for appending. A corrupt snapshot or a
// corrupt record anywhere but the torn tail is a hard error: the caller
// should refuse to start rather than silently forget jobs.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		dir = DefaultJournalDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lab: journal: %w", err)
	}
	j := &Journal{
		dir: dir, CompactEvery: 4096,
		state:   make(map[string]*core.JobRecord),
		workers: make(map[string]core.WorkerRecord),
	}

	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.replayLog(); err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Compacting on open folds the replayed tail into the snapshot and
	// truncates the log — clearing any tolerated torn tail in the process.
	if err := j.compactLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// loadSnapshot reads snapshot.json if present.
func (j *Journal) loadSnapshot() error {
	b, err := os.ReadFile(j.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lab: journal snapshot: %w", err)
	}
	var snap journalSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("lab: journal snapshot %s corrupt: %w", j.snapshotPath(), err)
	}
	if snap.Schema != journalSchema {
		return fmt.Errorf("lab: journal snapshot schema %q, want %q", snap.Schema, journalSchema)
	}
	j.rec = snap.Rec
	j.maxSeq = snap.Seq
	for i := range snap.Jobs {
		r := snap.Jobs[i]
		if r.JobID == "" {
			return fmt.Errorf("lab: journal snapshot %s corrupt: job %d has no id", j.snapshotPath(), i)
		}
		j.state[r.JobID] = &r
		j.order = append(j.order, r.JobID)
	}
	for _, w := range snap.Workers {
		if w.ID == "" {
			return fmt.Errorf("lab: journal snapshot %s corrupt: worker with no id", j.snapshotPath())
		}
		j.workers[w.ID] = w
	}
	return nil
}

// replayLog applies journal.jsonl on top of the snapshot state. Only the
// final, newline-less fragment may be dropped (a torn append); a complete
// line that does not parse, a record-number hole, or an impossible
// transition is corruption and fails the open.
func (j *Journal) replayLog() error {
	data, err := os.ReadFile(j.logPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lab: journal: %w", err)
	}
	// Split off a torn tail: everything after the last newline is an append
	// the dying process never finished.
	if n := bytes.LastIndexByte(data, '\n'); n < 0 {
		j.torn = len(data) > 0
		data = nil
	} else {
		j.torn = n+1 < len(data)
		data = data[:n+1]
	}
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r core.JournalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("lab: journal %s corrupt at line %d: %w", j.logPath(), lineNo+1, err)
		}
		if r.Rec <= j.rec {
			// Already folded into the snapshot (a crash between snapshot
			// rename and log truncation leaves such records behind).
			continue
		}
		if r.Rec != j.rec+1 {
			return fmt.Errorf("lab: journal %s corrupt at line %d: record %d follows %d (hole torn mid-file)",
				j.logPath(), lineNo+1, r.Rec, j.rec)
		}
		if err := j.applyReplay(r); err != nil {
			return fmt.Errorf("lab: journal %s corrupt at line %d: %w", j.logPath(), lineNo+1, err)
		}
		j.rec = r.Rec
	}
	return nil
}

// applyReplay folds one replayed record into the in-memory job table (or,
// for fleet events, the membership table).
func (j *Journal) applyReplay(r core.JournalRecord) error {
	if r.Event.FleetEvent() {
		return j.applyWorker(r)
	}
	if r.Event == core.EventSubmitted {
		if r.Spec == nil {
			return fmt.Errorf("submitted record for %s has no spec", r.JobID)
		}
		if _, dup := j.state[r.JobID]; dup {
			return fmt.Errorf("duplicate submission of job %s", r.JobID)
		}
		j.state[r.JobID] = &core.JobRecord{
			JobID: r.JobID, Seq: r.Seq, Spec: *r.Spec,
			Fingerprint: r.Fingerprint, State: core.JobQueued,
		}
		j.order = append(j.order, r.JobID)
		if r.Seq > j.maxSeq {
			j.maxSeq = r.Seq
		}
		return nil
	}
	jr, ok := j.state[r.JobID]
	if !ok {
		return fmt.Errorf("event %q for unknown job %s", r.Event, r.JobID)
	}
	return jr.Apply(r.Event, r.Error)
}

// applyWorker folds one fleet membership event. Deliberately idempotent —
// a down for an unknown worker and an up for a known one are both fine,
// because membership changes race the journal writes that record them.
func (j *Journal) applyWorker(r core.JournalRecord) error {
	if r.Worker == nil || r.Worker.ID == "" {
		return fmt.Errorf("fleet event %q without a worker record", r.Event)
	}
	switch r.Event {
	case core.EventWorkerUp:
		j.workers[r.Worker.ID] = *r.Worker
	case core.EventWorkerDown:
		delete(j.workers, r.Worker.ID)
	}
	return nil
}

// Torn reports whether replay dropped a truncated final record.
func (j *Journal) Torn() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// MaxSeq returns the highest job sequence number the journal has seen, so a
// recovering scheduler continues numbering where its predecessor stopped.
func (j *Journal) MaxSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeq
}

// Jobs returns every known job at its last recorded state, in submission
// (sequence) order.
func (j *Journal) Jobs() []core.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]core.JobRecord, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.state[id])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// append validates, writes, and commits one record. The in-memory state
// mutates only after the line is handed to the OS, so a failed write leaves
// the journal's view consistent with the file.
func (j *Journal) append(r core.JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrJournalClosed
	}
	// Stage the state transition so an invalid record never reaches disk.
	var staged *core.JobRecord
	if r.Event.FleetEvent() {
		if r.Worker == nil || r.Worker.ID == "" {
			return fmt.Errorf("lab: journal: fleet event %q without a worker record", r.Event)
		}
	} else if r.Event == core.EventSubmitted {
		if r.Spec == nil {
			return fmt.Errorf("lab: journal: submitted record for %s has no spec", r.JobID)
		}
		if _, dup := j.state[r.JobID]; dup {
			return fmt.Errorf("lab: journal: duplicate submission of job %s", r.JobID)
		}
		staged = &core.JobRecord{
			JobID: r.JobID, Seq: r.Seq, Spec: *r.Spec,
			Fingerprint: r.Fingerprint, State: core.JobQueued,
		}
	} else {
		cur, ok := j.state[r.JobID]
		if !ok {
			return fmt.Errorf("lab: journal: event %q for unknown job %s", r.Event, r.JobID)
		}
		next := *cur
		if err := next.Apply(r.Event, r.Error); err != nil {
			return fmt.Errorf("lab: journal: %w", err)
		}
		staged = &next
	}

	r.Rec = j.rec + 1
	r.UnixMs = time.Now().UnixMilli()
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("lab: journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("lab: journal append: %w", err)
	}
	if r.Event.Terminal() {
		// A job's outcome must survive a crash the instant it is
		// acknowledged; transient records may ride the page cache.
		_ = j.f.Sync()
	}
	j.rec = r.Rec
	if r.Event.FleetEvent() {
		_ = j.applyWorker(r) // validated above; idempotent by design
	} else {
		j.state[r.JobID] = staged
	}
	if r.Event == core.EventSubmitted {
		j.order = append(j.order, r.JobID)
		if r.Seq > j.maxSeq {
			j.maxSeq = r.Seq
		}
	}
	j.appends++
	if j.CompactEvery > 0 && j.appends >= j.CompactEvery {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Submitted journals a new job, durably, before it is enqueued.
func (j *Journal) Submitted(id string, seq int, spec core.Spec, fp string) error {
	return j.append(core.JournalRecord{Event: core.EventSubmitted, JobID: id, Seq: seq, Spec: &spec, Fingerprint: fp})
}

// Started journals a job leaving the queue for a worker.
func (j *Journal) Started(id string) error {
	return j.append(core.JournalRecord{Event: core.EventStarted, JobID: id})
}

// Finished journals a job reaching a terminal state.
func (j *Journal) Finished(id string, st core.JobState, errText string) error {
	var ev core.JournalEvent
	switch st {
	case core.JobDone:
		ev = core.EventCompleted
	case core.JobFailed:
		ev = core.EventFailed
	case core.JobCanceled:
		ev = core.EventCanceled
	default:
		return fmt.Errorf("lab: journal: Finished with non-terminal state %q", st)
	}
	return j.append(core.JournalRecord{Event: ev, JobID: id, Error: errText})
}

// Interrupted journals a recovery requeue: the job was mid-flight (or done
// but uncached) when the previous process died.
func (j *Journal) Interrupted(id string) error {
	return j.append(core.JournalRecord{Event: core.EventInterrupted, JobID: id})
}

// WorkerUp journals a fleet worker joining (or rejoining) the coordinator.
func (j *Journal) WorkerUp(w core.WorkerRecord) error {
	return j.append(core.JournalRecord{Event: core.EventWorkerUp, Worker: &w})
}

// WorkerDown journals a fleet worker leaving (missed heartbeats or an
// explicit departure).
func (j *Journal) WorkerDown(w core.WorkerRecord) error {
	return j.append(core.JournalRecord{Event: core.EventWorkerDown, Worker: &w})
}

// Workers returns the last-known fleet membership, sorted by worker ID — a
// restarted coordinator probes these before any worker happens to
// heartbeat again.
func (j *Journal) Workers() []core.WorkerRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]core.WorkerRecord, 0, len(j.workers))
	for _, w := range j.workers {
		out = append(out, w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// compactLocked folds the full job table into snapshot.json (atomically, via
// temp file + rename) and truncates the log. A crash between the two steps
// is safe: the snapshot's record number makes the leftover log lines
// no-ops on the next replay.
func (j *Journal) compactLocked() error {
	snap := journalSnapshot{Schema: journalSchema, Rec: j.rec, Seq: j.maxSeq}
	snap.Jobs = make([]core.JobRecord, 0, len(j.order))
	for _, id := range j.order {
		snap.Jobs = append(snap.Jobs, *j.state[id])
	}
	for _, id := range sortedWorkerIDs(j.workers) {
		snap.Workers = append(snap.Workers, j.workers[id])
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	tmp, err := os.CreateTemp(j.dir, ".snapshot.*")
	if err != nil {
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: journal compact: %w", errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp.Name(), j.snapshotPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.logPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	j.f = f
	j.appends = 0
	return nil
}

// sortedWorkerIDs orders the membership table for deterministic snapshots.
func sortedWorkerIDs(m map[string]core.WorkerRecord) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Close compacts one last time (a clean shutdown leaves only a snapshot)
// and releases the log file. Further appends return ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.compactLocked()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	return err
}
