package lab

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"butterfly/internal/core"
)

// DefaultJournalDir is where butterflyd keeps its write-ahead job journal,
// next to the result cache under results/.
const DefaultJournalDir = "results/journal"

// journalSchema versions the journal encoding; a snapshot written by a
// different schema refuses to load rather than being misread.
const journalSchema = "butterfly-journal-v1"

// ErrJournalClosed is returned by appends after Close.
var ErrJournalClosed = errors.New("lab: journal closed")

// ErrReplicaGap is returned by AppendReplica when the record does not
// directly follow the journal's last record — the follower missed part of
// the stream (e.g. its torn tail was truncated on restart) and must ask the
// primary for a full state snapshot instead.
var ErrReplicaGap = errors.New("lab: replica record gap")

// Journal is the lab's durable job log: an append-only JSONL file of
// lifecycle records plus a periodically compacted snapshot, both under one
// directory. Opening a journal replays snapshot + tail into an in-memory
// job table the scheduler uses to recover: terminal jobs are restored,
// mid-flight jobs are requeued.
//
// Durability model: every record is a single buffered write of one JSON
// line; terminal records (completed/failed/canceled) are additionally
// fsynced, so an acknowledged result can never be lost to a crash. A torn
// final line (the process died mid-append) is tolerated and dropped on
// replay — the affected job simply replays from its previous state and is
// requeued, which is safe because execution is deterministic and
// idempotent. Any corruption *before* the final record means the file was
// damaged at rest, and replay fails loudly instead of guessing.
type Journal struct {
	dir string

	// CompactEvery is how many appended records accumulate before the
	// journal folds them into the snapshot and truncates the log file
	// (default 4096). Set it before handing the journal to a scheduler.
	CompactEvery int

	// TailMax bounds the in-memory record tail kept for replication
	// (default 4096). The tail survives compaction — followers stream
	// records even after the log file is truncated — and a follower whose
	// ack falls off the tail gets a full state snapshot instead.
	TailMax int

	mu      sync.Mutex
	f       *os.File
	rec     int64 // last record number written (survives compaction)
	appends int   // records since the last compaction
	state   map[string]*core.JobRecord
	order   []string // job IDs by submission order
	maxSeq  int
	torn    bool // replay dropped a truncated final record

	// epoch is the highest coordinator generation fenced into this journal
	// (EventEpoch); takeovers bump it durably before dispatching anything.
	epoch uint64

	// tail holds the most recent records (bounded by TailMax) for
	// streaming to replication followers; tail[0].Rec is the oldest
	// record still streamable.
	tail []core.JournalRecord

	// workers is the fleet membership table a coordinator journals
	// alongside its jobs: worker ID → record for every worker currently
	// believed up. Single-box daemons never touch it.
	workers map[string]core.WorkerRecord

	// sweeps maps sweep ID → grid-ordered job IDs (EventSweep), so a
	// replacement coordinator can reassemble sweeps it never accepted.
	sweeps     map[string]core.SweepRecord
	sweepOrder []string
}

// journalSnapshot is the compacted on-disk form: every known job at its
// last applied state, plus the record number the snapshot reflects so
// replay can skip already-folded journal lines.
type journalSnapshot struct {
	Schema string           `json:"schema"`
	Rec    int64            `json:"rec"`
	Seq    int              `json:"seq"`
	Jobs   []core.JobRecord `json:"jobs"`
	// Workers is the coordinator's last-known fleet membership (absent for
	// single-box journals and snapshots written before fleets existed).
	Workers []core.WorkerRecord `json:"workers,omitempty"`
	// Epoch is the highest coordinator generation fenced so far (absent
	// before failover existed).
	Epoch uint64 `json:"epoch,omitempty"`
	// Sweeps are the known sweep identities, in submission order.
	Sweeps []core.SweepRecord `json:"sweeps,omitempty"`
}

func (j *Journal) snapshotPath() string { return filepath.Join(j.dir, "snapshot.json") }
func (j *Journal) logPath() string      { return filepath.Join(j.dir, "journal.jsonl") }

// OpenJournal opens (creating if needed) the journal rooted at dir ("" means
// DefaultJournalDir), replays its contents, compacts them into a fresh
// snapshot, and leaves the log open for appending. A corrupt snapshot or a
// corrupt record anywhere but the torn tail is a hard error: the caller
// should refuse to start rather than silently forget jobs.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		dir = DefaultJournalDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lab: journal: %w", err)
	}
	j := &Journal{
		dir: dir, CompactEvery: 4096, TailMax: 4096,
		state:   make(map[string]*core.JobRecord),
		workers: make(map[string]core.WorkerRecord),
		sweeps:  make(map[string]core.SweepRecord),
	}

	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.replayLog(); err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Compacting on open folds the replayed tail into the snapshot and
	// truncates the log — clearing any tolerated torn tail in the process.
	if err := j.compactLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// loadSnapshot reads snapshot.json if present.
func (j *Journal) loadSnapshot() error {
	b, err := os.ReadFile(j.snapshotPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lab: journal snapshot: %w", err)
	}
	var snap journalSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("lab: journal snapshot %s corrupt: %w", j.snapshotPath(), err)
	}
	if snap.Schema != journalSchema {
		return fmt.Errorf("lab: journal snapshot schema %q, want %q", snap.Schema, journalSchema)
	}
	j.rec = snap.Rec
	j.maxSeq = snap.Seq
	j.epoch = snap.Epoch
	for _, sw := range snap.Sweeps {
		if sw.SweepID == "" {
			return fmt.Errorf("lab: journal snapshot %s corrupt: sweep with no id", j.snapshotPath())
		}
		j.sweeps[sw.SweepID] = sw
		j.sweepOrder = append(j.sweepOrder, sw.SweepID)
	}
	for i := range snap.Jobs {
		r := snap.Jobs[i]
		if r.JobID == "" {
			return fmt.Errorf("lab: journal snapshot %s corrupt: job %d has no id", j.snapshotPath(), i)
		}
		j.state[r.JobID] = &r
		j.order = append(j.order, r.JobID)
	}
	for _, w := range snap.Workers {
		if w.ID == "" {
			return fmt.Errorf("lab: journal snapshot %s corrupt: worker with no id", j.snapshotPath())
		}
		j.workers[w.ID] = w
	}
	return nil
}

// replayLog applies journal.jsonl on top of the snapshot state. Only the
// final, newline-less fragment may be dropped (a torn append); a complete
// line that does not parse, a record-number hole, or an impossible
// transition is corruption and fails the open.
func (j *Journal) replayLog() error {
	data, err := os.ReadFile(j.logPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lab: journal: %w", err)
	}
	// Split off a torn tail: everything after the last newline is an append
	// the dying process never finished.
	if n := bytes.LastIndexByte(data, '\n'); n < 0 {
		j.torn = len(data) > 0
		data = nil
	} else {
		j.torn = n+1 < len(data)
		data = data[:n+1]
	}
	for lineNo, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r core.JournalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("lab: journal %s corrupt at line %d: %w", j.logPath(), lineNo+1, err)
		}
		if r.Rec <= j.rec {
			// Already folded into the snapshot (a crash between snapshot
			// rename and log truncation leaves such records behind).
			continue
		}
		if r.Rec != j.rec+1 {
			return fmt.Errorf("lab: journal %s corrupt at line %d: record %d follows %d (hole torn mid-file)",
				j.logPath(), lineNo+1, r.Rec, j.rec)
		}
		if err := j.applyReplay(r); err != nil {
			return fmt.Errorf("lab: journal %s corrupt at line %d: %w", j.logPath(), lineNo+1, err)
		}
		j.rec = r.Rec
	}
	return nil
}

// applyReplay folds one replayed record into the in-memory job table (or,
// for fleet events, the membership table).
func (j *Journal) applyReplay(r core.JournalRecord) error {
	if r.Event.FleetEvent() {
		return j.applyWorker(r)
	}
	if r.Event.ControlEvent() {
		return j.applyControl(r)
	}
	if r.Event == core.EventSubmitted {
		if r.Spec == nil {
			return fmt.Errorf("submitted record for %s has no spec", r.JobID)
		}
		if _, dup := j.state[r.JobID]; dup {
			return fmt.Errorf("duplicate submission of job %s", r.JobID)
		}
		j.state[r.JobID] = &core.JobRecord{
			JobID: r.JobID, Seq: r.Seq, Spec: *r.Spec,
			Fingerprint: r.Fingerprint, State: core.JobQueued,
		}
		j.order = append(j.order, r.JobID)
		if r.Seq > j.maxSeq {
			j.maxSeq = r.Seq
		}
		return nil
	}
	jr, ok := j.state[r.JobID]
	if !ok {
		return fmt.Errorf("event %q for unknown job %s", r.Event, r.JobID)
	}
	return jr.Apply(r.Event, r.Error)
}

// applyWorker folds one fleet membership event. Deliberately idempotent —
// a down for an unknown worker and an up for a known one are both fine,
// because membership changes race the journal writes that record them.
func (j *Journal) applyWorker(r core.JournalRecord) error {
	if r.Worker == nil || r.Worker.ID == "" {
		return fmt.Errorf("fleet event %q without a worker record", r.Event)
	}
	switch r.Event {
	case core.EventWorkerUp:
		j.workers[r.Worker.ID] = *r.Worker
	case core.EventWorkerDown:
		delete(j.workers, r.Worker.ID)
	}
	return nil
}

// applyControl folds one coordination event: epoch fences only ever rise
// (a stale epoch record is tolerated as a no-op — it can ride in a
// replicated stream that predates the follower's own takeover), and sweep
// records are idempotent by ID for the same reason membership events are.
func (j *Journal) applyControl(r core.JournalRecord) error {
	switch r.Event {
	case core.EventEpoch:
		if r.Epoch == 0 {
			return fmt.Errorf("epoch event without an epoch")
		}
		if r.Epoch > j.epoch {
			j.epoch = r.Epoch
		}
	case core.EventSweep:
		if r.Sweep == nil || r.Sweep.SweepID == "" {
			return fmt.Errorf("sweep event without a sweep record")
		}
		if _, dup := j.sweeps[r.Sweep.SweepID]; !dup {
			j.sweepOrder = append(j.sweepOrder, r.Sweep.SweepID)
		}
		j.sweeps[r.Sweep.SweepID] = *r.Sweep
	}
	return nil
}

// Torn reports whether replay dropped a truncated final record.
func (j *Journal) Torn() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// MaxSeq returns the highest job sequence number the journal has seen, so a
// recovering scheduler continues numbering where its predecessor stopped.
func (j *Journal) MaxSeq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeq
}

// Jobs returns every known job at its last recorded state, in submission
// (sequence) order.
func (j *Journal) Jobs() []core.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]core.JobRecord, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.state[id])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// append validates, writes, and commits one record. The in-memory state
// mutates only after the line is handed to the OS, so a failed write leaves
// the journal's view consistent with the file.
func (j *Journal) append(r core.JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrJournalClosed
	}
	// Stage the state transition so an invalid record never reaches disk.
	var staged *core.JobRecord
	if r.Event.FleetEvent() {
		if r.Worker == nil || r.Worker.ID == "" {
			return fmt.Errorf("lab: journal: fleet event %q without a worker record", r.Event)
		}
	} else if r.Event == core.EventEpoch {
		if r.Epoch <= j.epoch {
			return fmt.Errorf("lab: journal: epoch %d not above current %d", r.Epoch, j.epoch)
		}
	} else if r.Event == core.EventSweep {
		if r.Sweep == nil || r.Sweep.SweepID == "" {
			return fmt.Errorf("lab: journal: sweep event without a sweep record")
		}
		if _, dup := j.sweeps[r.Sweep.SweepID]; dup {
			return fmt.Errorf("lab: journal: duplicate sweep %s", r.Sweep.SweepID)
		}
	} else if r.Event == core.EventSubmitted {
		if r.Spec == nil {
			return fmt.Errorf("lab: journal: submitted record for %s has no spec", r.JobID)
		}
		if _, dup := j.state[r.JobID]; dup {
			return fmt.Errorf("lab: journal: duplicate submission of job %s", r.JobID)
		}
		staged = &core.JobRecord{
			JobID: r.JobID, Seq: r.Seq, Spec: *r.Spec,
			Fingerprint: r.Fingerprint, State: core.JobQueued,
		}
	} else {
		cur, ok := j.state[r.JobID]
		if !ok {
			return fmt.Errorf("lab: journal: event %q for unknown job %s", r.Event, r.JobID)
		}
		next := *cur
		if err := next.Apply(r.Event, r.Error); err != nil {
			return fmt.Errorf("lab: journal: %w", err)
		}
		staged = &next
	}

	r.Rec = j.rec + 1
	r.UnixMs = time.Now().UnixMilli()
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("lab: journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("lab: journal append: %w", err)
	}
	if r.Event.Terminal() || r.Event == core.EventEpoch {
		// A job's outcome must survive a crash the instant it is
		// acknowledged, and an epoch fence must be durable before the new
		// coordinator dispatches anything; transient records may ride the
		// page cache.
		_ = j.f.Sync()
	}
	j.rec = r.Rec
	switch {
	case r.Event.FleetEvent():
		_ = j.applyWorker(r) // validated above; idempotent by design
	case r.Event.ControlEvent():
		_ = j.applyControl(r) // validated above
	default:
		j.state[r.JobID] = staged
	}
	if r.Event == core.EventSubmitted {
		j.order = append(j.order, r.JobID)
		if r.Seq > j.maxSeq {
			j.maxSeq = r.Seq
		}
	}
	j.pushTail(r)
	j.appends++
	if j.CompactEvery > 0 && j.appends >= j.CompactEvery {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// pushTail keeps the bounded in-memory record tail replication streams
// from. Callers hold j.mu.
func (j *Journal) pushTail(r core.JournalRecord) {
	max := j.TailMax
	if max <= 0 {
		max = 1
	}
	j.tail = append(j.tail, r)
	if len(j.tail) > max {
		// Drop the oldest half in one copy so a hot journal is not
		// memmoving the tail on every append.
		keep := max/2 + 1
		j.tail = append(j.tail[:0], j.tail[len(j.tail)-keep:]...)
	}
}

// Submitted journals a new job, durably, before it is enqueued.
func (j *Journal) Submitted(id string, seq int, spec core.Spec, fp string) error {
	return j.append(core.JournalRecord{Event: core.EventSubmitted, JobID: id, Seq: seq, Spec: &spec, Fingerprint: fp})
}

// Started journals a job leaving the queue for a worker.
func (j *Journal) Started(id string) error {
	return j.append(core.JournalRecord{Event: core.EventStarted, JobID: id})
}

// Finished journals a job reaching a terminal state.
func (j *Journal) Finished(id string, st core.JobState, errText string) error {
	var ev core.JournalEvent
	switch st {
	case core.JobDone:
		ev = core.EventCompleted
	case core.JobFailed:
		ev = core.EventFailed
	case core.JobCanceled:
		ev = core.EventCanceled
	default:
		return fmt.Errorf("lab: journal: Finished with non-terminal state %q", st)
	}
	return j.append(core.JournalRecord{Event: ev, JobID: id, Error: errText})
}

// Interrupted journals a recovery requeue: the job was mid-flight (or done
// but uncached) when the previous process died.
func (j *Journal) Interrupted(id string) error {
	return j.append(core.JournalRecord{Event: core.EventInterrupted, JobID: id})
}

// WorkerUp journals a fleet worker joining (or rejoining) the coordinator.
func (j *Journal) WorkerUp(w core.WorkerRecord) error {
	return j.append(core.JournalRecord{Event: core.EventWorkerUp, Worker: &w})
}

// WorkerDown journals a fleet worker leaving (missed heartbeats or an
// explicit departure).
func (j *Journal) WorkerDown(w core.WorkerRecord) error {
	return j.append(core.JournalRecord{Event: core.EventWorkerDown, Worker: &w})
}

// Workers returns the last-known fleet membership, sorted by worker ID — a
// restarted coordinator probes these before any worker happens to
// heartbeat again.
func (j *Journal) Workers() []core.WorkerRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]core.WorkerRecord, 0, len(j.workers))
	for _, w := range j.workers {
		out = append(out, w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// SweepSubmitted journals a sweep's identity: its ID and grid-ordered job
// IDs, durably tied to the jobs it expanded to.
func (j *Journal) SweepSubmitted(id string, jobIDs []string) error {
	return j.append(core.JournalRecord{Event: core.EventSweep,
		Sweep: &core.SweepRecord{SweepID: id, JobIDs: jobIDs}})
}

// Sweeps returns every known sweep identity in submission order.
func (j *Journal) Sweeps() []core.SweepRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]core.SweepRecord, 0, len(j.sweepOrder))
	for _, id := range j.sweepOrder {
		out = append(out, j.sweeps[id])
	}
	return out
}

// Epoch returns the highest coordinator generation fenced into the journal
// (0 before any coordinator claimed it).
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// BumpEpoch durably fences a new coordinator generation — current epoch
// plus one, fsynced before it returns — and returns the new epoch. A
// standby calls this exactly once at takeover, before dispatching anything,
// so the old primary's later dispatches are recognizably stale.
func (j *Journal) BumpEpoch() (uint64, error) {
	j.mu.Lock()
	next := j.epoch + 1
	j.mu.Unlock()
	if err := j.append(core.JournalRecord{Event: core.EventEpoch, Epoch: next}); err != nil {
		return 0, err
	}
	return next, nil
}

// Rec returns the last record number written.
func (j *Journal) Rec() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// RecordsAfter returns up to max records with Rec > after, in order, for
// streaming to a replication follower. ok is false when the tail no longer
// reaches back to after+1 (the follower is too far behind — e.g. it just
// started, or the tail was bounded past its ack) and the caller must send a
// full state snapshot instead.
func (j *Journal) RecordsAfter(after int64, max int) (recs []core.JournalRecord, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after >= j.rec {
		return nil, true
	}
	if len(j.tail) == 0 || j.tail[0].Rec > after+1 {
		return nil, false
	}
	start := int(after + 1 - j.tail[0].Rec)
	end := len(j.tail)
	if max > 0 && end-start > max {
		end = start + max
	}
	recs = make([]core.JournalRecord, end-start)
	copy(recs, j.tail[start:end])
	return recs, true
}

// ReplicaState captures the full journal state for a follower that cannot
// be served from the record tail.
func (j *Journal) ReplicaState() core.ReplicaState {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := core.ReplicaState{Schema: journalSchema, Rec: j.rec, Seq: j.maxSeq, Epoch: j.epoch}
	st.Jobs = make([]core.JobRecord, 0, len(j.order))
	for _, id := range j.order {
		st.Jobs = append(st.Jobs, *j.state[id])
	}
	for _, id := range sortedWorkerIDs(j.workers) {
		st.Workers = append(st.Workers, j.workers[id])
	}
	for _, id := range j.sweepOrder {
		st.Sweeps = append(st.Sweeps, j.sweeps[id])
	}
	return st
}

// InstallReplicaState replaces the journal's contents with a primary's
// state snapshot and persists it — how a follower bootstraps (or recovers
// from a gap) before streaming resumes. Refuses to move backwards: a
// snapshot older than what is already replicated here means the "primary"
// is stale, not this follower.
func (j *Journal) InstallReplicaState(st core.ReplicaState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrJournalClosed
	}
	if st.Schema != journalSchema {
		return fmt.Errorf("lab: replica state schema %q, want %q", st.Schema, journalSchema)
	}
	if st.Rec < j.rec {
		return fmt.Errorf("lab: replica state at record %d behind local journal at %d", st.Rec, j.rec)
	}
	j.rec = st.Rec
	j.maxSeq = st.Seq
	if st.Epoch > j.epoch {
		j.epoch = st.Epoch
	}
	j.state = make(map[string]*core.JobRecord, len(st.Jobs))
	j.order = j.order[:0]
	for i := range st.Jobs {
		r := st.Jobs[i]
		if r.JobID == "" {
			return fmt.Errorf("lab: replica state job %d has no id", i)
		}
		j.state[r.JobID] = &r
		j.order = append(j.order, r.JobID)
	}
	j.workers = make(map[string]core.WorkerRecord, len(st.Workers))
	for _, w := range st.Workers {
		j.workers[w.ID] = w
	}
	j.sweeps = make(map[string]core.SweepRecord, len(st.Sweeps))
	j.sweepOrder = j.sweepOrder[:0]
	for _, sw := range st.Sweeps {
		j.sweeps[sw.SweepID] = sw
		j.sweepOrder = append(j.sweepOrder, sw.SweepID)
	}
	j.tail = nil
	return j.compactLocked()
}

// AppendReplica appends one record received from the replication stream,
// preserving its original record number (the follower's journal is a
// faithful copy of the primary's, so a promoted follower's own appends
// continue the same numbering). Returns ErrReplicaGap when the record does
// not directly follow the local journal.
func (j *Journal) AppendReplica(r core.JournalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrJournalClosed
	}
	if r.Rec <= j.rec {
		return nil // duplicate delivery; already replicated
	}
	if r.Rec != j.rec+1 {
		return fmt.Errorf("%w: record %d does not follow %d", ErrReplicaGap, r.Rec, j.rec)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("lab: replica append: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("lab: replica append: %w", err)
	}
	if r.Event.Terminal() || r.Event == core.EventEpoch {
		_ = j.f.Sync()
	}
	if err := j.applyReplay(r); err != nil {
		// The stream was validated on the primary; an impossible
		// transition here means the copies diverged.
		return fmt.Errorf("lab: replica append: %w", err)
	}
	j.rec = r.Rec
	j.pushTail(r)
	j.appends++
	if j.CompactEvery > 0 && j.appends >= j.CompactEvery {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked folds the full job table into snapshot.json (atomically, via
// temp file + rename) and truncates the log. A crash between the two steps
// is safe: the snapshot's record number makes the leftover log lines
// no-ops on the next replay.
func (j *Journal) compactLocked() error {
	snap := journalSnapshot{Schema: journalSchema, Rec: j.rec, Seq: j.maxSeq, Epoch: j.epoch}
	snap.Jobs = make([]core.JobRecord, 0, len(j.order))
	for _, id := range j.order {
		snap.Jobs = append(snap.Jobs, *j.state[id])
	}
	for _, id := range sortedWorkerIDs(j.workers) {
		snap.Workers = append(snap.Workers, j.workers[id])
	}
	for _, id := range j.sweepOrder {
		snap.Sweeps = append(snap.Sweeps, j.sweeps[id])
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	tmp, err := os.CreateTemp(j.dir, ".snapshot.*")
	if err != nil {
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: journal compact: %w", errors.Join(werr, serr, cerr))
	}
	if err := os.Rename(tmp.Name(), j.snapshotPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.logPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("lab: journal compact: %w", err)
	}
	j.f = f
	j.appends = 0
	return nil
}

// sortedWorkerIDs orders the membership table for deterministic snapshots.
func sortedWorkerIDs(m map[string]core.WorkerRecord) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Close compacts one last time (a clean shutdown leaves only a snapshot)
// and releases the log file. Further appends return ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.compactLocked()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	return err
}
