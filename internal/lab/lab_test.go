package lab

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"butterfly/internal/core"
)

// runDirect runs an experiment the way the pre-lab sequential driver did:
// straight through the registry on the calling goroutine.
func runDirect(t *testing.T, id string, quick bool) string {
	t.Helper()
	exp, ok := core.Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	var b bytes.Buffer
	if err := exp.Run(&b, quick); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

func TestRunSpecMatchesDirect(t *testing.T) {
	want := runDirect(t, "numa", true)
	res, err := RunSpec(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table != want {
		t.Errorf("lab table diverges from direct run:\nlab:\n%s\ndirect:\n%s", res.Table, want)
	}
	if res.Machines < 1 || res.Events == 0 || res.VTimeNs == 0 {
		t.Errorf("trajectory fingerprint empty: machines=%d events=%d vtime=%d",
			res.Machines, res.Events, res.VTimeNs)
	}
	if res.Attempts != 1 || res.CacheHit || res.Fingerprint == "" {
		t.Errorf("result bookkeeping wrong: %+v", res)
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	base := core.Spec{Experiment: "numa", Quick: true}
	if Fingerprint(base) != Fingerprint(base) {
		t.Fatal("fingerprint not stable")
	}

	// Every simulation-relevant field must move the fingerprint.
	seed := uint64(3)
	variants := []core.Spec{
		{Experiment: "hotspot", Quick: true},
		{Experiment: "numa"},
		{Experiment: "numa", Quick: true, Preset: "bplus"},
		{Experiment: "numa", Quick: true, Nodes: 32},
		{Experiment: "numa", Quick: true, Probe: true},
		{Experiment: "numa", Quick: true, Faults: "seed 1; drop 0.001"},
		{Experiment: "numa", Quick: true, Faults: "seed 1; drop 0.001", FaultSeed: &seed},
	}
	seen := map[string]int{Fingerprint(base): -1}
	for i, v := range variants {
		fp := Fingerprint(v)
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[fp] = i
	}

	// Execution policy is not simulation content: same address.
	policy := base
	policy.TimeoutMs = 5000
	policy.Retries = 3
	if Fingerprint(policy) != Fingerprint(base) {
		t.Error("timeout/retries must not participate in the fingerprint")
	}

	// Two spellings of one fault schedule canonicalize identically: seed
	// directive position and failure listing order are not semantic.
	a := core.Spec{Experiment: "numa", Quick: true, Faults: "seed 7; kill 2 @ 10ms; kill 1 @ 5ms"}
	b := core.Spec{Experiment: "numa", Quick: true, Faults: "kill 1 @ 5ms; kill 2 @ 10ms; seed 7"}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("equivalent fault schedules produced different fingerprints")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c := OpenCache(t.TempDir())
	fp := Fingerprint(core.Spec{Experiment: "numa", Quick: true})

	if _, ok := c.Get(fp); ok {
		t.Fatal("hit on empty cache")
	}
	res := &core.Result{
		Spec:        core.Spec{Experiment: "numa", Quick: true},
		Fingerprint: fp,
		Table:       "pretend table\n",
		Machines:    1, Events: 42, VTimeNs: 1000, WallNs: 77, Attempts: 1,
	}
	if err := c.Put(res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(fp)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Table != res.Table || got.Events != 42 || got.WallNs != 77 {
		t.Errorf("round trip mangled result: %+v", got)
	}
	if !got.CacheHit || got.Attempts != 0 {
		t.Errorf("hit not marked as cache-served: hit=%v attempts=%d", got.CacheHit, got.Attempts)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}

	if err := c.Put(&core.Result{}); err == nil {
		t.Error("Put without fingerprint must fail")
	}
}

func TestCacheRejectsMismatchedBlob(t *testing.T) {
	c := OpenCache(t.TempDir())
	// A blob stored under one fingerprint but recording another (say, a
	// hand-copied file) must not be served.
	fpA := Fingerprint(core.Spec{Experiment: "numa", Quick: true})
	fpB := Fingerprint(core.Spec{Experiment: "hotspot", Quick: true})
	if err := c.Put(&core.Result{Fingerprint: fpB, Table: "x\n"}); err != nil {
		t.Fatal(err)
	}
	blob := c.path(fpB)
	if err := copyFile(blob, c.path(fpA)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(fpA); ok {
		t.Error("cache served a blob whose recorded fingerprint mismatches its address")
	}
}

// TestSchedulerParallelDeterminism is the tentpole invariant: running
// experiments concurrently on the worker pool yields byte-identical tables
// and identical trajectory fingerprints to sequential execution. Run under
// -race this also proves the workers share no simulation state.
func TestSchedulerParallelDeterminism(t *testing.T) {
	ids := []string{"numa", "hotspot", "prims", "alloc", "fig6", "crowd", "sarcache", "rpc"}
	if !testing.Short() {
		ids = nil
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	type baseline struct {
		table    string
		machines int
		events   uint64
		vtime    int64
	}
	want := make(map[string]baseline, len(ids))
	for _, id := range ids {
		res, err := RunSpec(core.Spec{Experiment: id, Quick: true})
		if err != nil {
			t.Fatalf("sequential %s: %v", id, err)
		}
		want[id] = baseline{res.Table, res.Machines, res.Events, res.VTimeNs}
	}

	s := NewScheduler(Config{Workers: 4})
	defer s.Shutdown(context.Background())
	var jobs []*Job
	for _, id := range ids {
		j, err := s.Submit(core.Spec{Experiment: id, Quick: true})
		if err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		jobs = append(jobs, j)
	}
	results, err := WaitAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		id := ids[i]
		w := want[id]
		if res.Table != w.table {
			t.Errorf("%s: parallel table diverges from sequential run", id)
		}
		if res.Machines != w.machines || res.Events != w.events || res.VTimeNs != w.vtime {
			t.Errorf("%s: trajectory diverged: got (%d, %d, %d), want (%d, %d, %d)",
				id, res.Machines, res.Events, res.VTimeNs, w.machines, w.events, w.vtime)
		}
	}

	m := s.Metrics()
	if m.Completed != uint64(len(ids)) || m.Failed != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestSchedulerCacheHit(t *testing.T) {
	cache := OpenCache(t.TempDir())
	s := NewScheduler(Config{Workers: 2, Cache: cache})
	defer s.Shutdown(context.Background())

	spec := core.Spec{Experiment: "numa", Quick: true}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first run reported a cache hit")
	}

	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State() != StateDone {
		t.Errorf("cache-hit job not finished at submit time: %s", j2.State())
	}
	r2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || r2.Attempts != 0 {
		t.Errorf("second run not served from cache: hit=%v attempts=%d", r2.CacheHit, r2.Attempts)
	}
	if r2.Table != r1.Table || r2.Fingerprint != r1.Fingerprint {
		t.Error("cached result differs from executed result")
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d blobs", cache.Len())
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A different spec is a different address: no false hit.
	j3, err := s.Submit(core.Spec{Experiment: "numa", Quick: true, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := j3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Error("probe variant incorrectly served from non-probe blob")
	}
	if r3.ProbeReport == "" {
		t.Error("probe report missing")
	}
	if r3.Table != r1.Table {
		t.Error("probes perturbed the table")
	}
}

func TestJobTimeoutAndRetry(t *testing.T) {
	// spread at full scale runs for seconds; a 25 ms budget always expires.
	spec := core.Spec{Experiment: "spread", TimeoutMs: 25, Retries: 1}
	res, err := RunSpec(spec)
	if err == nil {
		t.Fatalf("expected timeout, got result with %d machines", res.Machines)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	// Retries=1 means two attempts; the final error names the last one.
	if !strings.Contains(err.Error(), "attempt 2") {
		t.Errorf("error = %v, want evidence of the retry", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := NewScheduler(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	running, err := s.Submit(core.Spec{Experiment: "spread"}) // seconds of work
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}

	waitState(t, running, StateRunning)
	if pos := s.QueuePosition(queued); pos != 1 {
		t.Errorf("queue position = %d, want 1", pos)
	}

	queued.Cancel()
	if queued.State() != StateCanceled {
		t.Errorf("queued job state = %s after cancel", queued.State())
	}
	if _, err := queued.Wait(); !errors.Is(err, ErrCanceled) {
		t.Errorf("queued job error = %v", err)
	}

	running.Cancel()
	if _, err := running.Wait(); !errors.Is(err, ErrCanceled) {
		t.Errorf("running job error = %v", err)
	}

	if m := s.Metrics(); m.Canceled != 2 {
		t.Errorf("canceled count = %d", m.Canceled)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, QueueDepth: 1})
	running, err := s.Submit(core.Spec{Experiment: "spread"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)

	queued, err := s.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(core.Spec{Experiment: "hotspot", Quick: true}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	// The rejected job must leave no residue.
	if n := len(s.Jobs()); n != 2 {
		t.Errorf("scheduler tracks %d jobs after rejection, want 2", n)
	}

	running.Cancel()
	queued.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestShutdownDrainsAndRefusesIntake(t *testing.T) {
	s := NewScheduler(Config{Workers: 2})
	j1, err := s.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(core.Spec{Experiment: "fig6", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{j1, j2} {
		if j.State() != StateDone {
			t.Errorf("job %s not drained: %s", j.ID, j.State())
		}
	}
	if _, err := s.Submit(core.Spec{Experiment: "numa", Quick: true}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit error = %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsRunningJobs(t *testing.T) {
	s := NewScheduler(Config{Workers: 1})
	j, err := s.Submit(core.Spec{Experiment: "spread"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
	if j.State() != StateCanceled {
		t.Errorf("in-flight job state = %s after forced shutdown", j.State())
	}
}

func TestRunSpecRejectsBadSpec(t *testing.T) {
	if _, err := RunSpec(core.Spec{Experiment: "nonesuch"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := RunSpec(core.Spec{Experiment: "numa", Faults: "gibberish"}); err == nil {
		t.Error("unparseable fault schedule accepted")
	}
}

// waitState polls until the job reaches the state or the test times out.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := j.State()
		if st == want {
			return
		}
		switch st {
		case StateDone, StateFailed, StateCanceled:
			t.Fatalf("job %s reached terminal state %s while waiting for %s", j.ID, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", j.ID, want)
}

// copyFile duplicates a cache blob for corruption tests.
func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}
