package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while an
// endpoint's circuit breaker is open: the endpoint failed at the
// connection level often enough in a row that further attempts would only
// burn the caller's backoff schedule. A fleet coordinator uses this to
// fail over a dead worker's jobs in milliseconds instead of retry-minutes.
var ErrCircuitOpen = errors.New("client: circuit open")

// Breaker is a per-endpoint consecutive-failure circuit breaker. Each
// Client owns at most one (a Client talks to one base URL, so per-client
// is per-endpoint).
//
// States: closed (requests flow; consecutive connection failures are
// counted), open (requests fail fast with ErrCircuitOpen until Cooldown
// elapses), half-open (exactly one probe request is let through; its
// outcome closes or re-opens the circuit).
//
// Only connection-level failures trip it — a daemon answering 429/503 is
// alive and shedding load, which the retry/backoff policy already
// handles; a daemon answering nothing at all is what the breaker is for.
type Breaker struct {
	// Threshold is how many consecutive connection failures open the
	// circuit (default 3).
	Threshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed (default 2s).
	Cooldown time.Duration

	// now is injectable so tests can script the clock.
	now func() time.Time

	mu       sync.Mutex
	fails    int
	open     bool
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a breaker opening after threshold consecutive
// connection failures and probing again after cooldown. Zero values pick
// the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{Threshold: threshold, Cooldown: cooldown, now: time.Now}
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 2 * time.Second
	}
	return b.Cooldown
}

// Allow reports whether a request may be attempted now. While open it
// returns ErrCircuitOpen until the cooldown elapses, then admits exactly
// one probe (half-open); concurrent requests keep failing fast until that
// probe settles via Success or Failure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown() {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// Success reports a request that reached the endpoint and got any HTTP
// answer at all: the endpoint is alive, so the circuit closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.open = false
	b.probing = false
}

// Failure reports a connection-level failure. The streak grows; at the
// threshold (or on a failed half-open probe) the circuit opens and the
// cooldown restarts.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.probing || b.fails >= b.threshold() {
		b.open = true
		b.openedAt = b.now()
		b.probing = false
	}
}

// Open reports whether the circuit is currently open (fail-fast mode).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
