package client

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newListenerAt rebinds the host:port a (now closed) httptest server used,
// so a "revived endpoint on the same address" can be simulated.
func newListenerAt(t *testing.T, baseURL string) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", strings.TrimPrefix(baseURL, "http://"))
}

// scriptedClock advances only when told, so cooldown timing is exact.
type scriptedClock struct{ t time.Time }

func (c *scriptedClock) now() time.Time          { return c.t }
func (c *scriptedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *scriptedClock) {
	clk := &scriptedClock{t: time.Unix(1_000_000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerStateMachine walks the full closed -> open -> half-open ->
// closed cycle on a scripted clock.
func TestBreakerStateMachine(t *testing.T) {
	b, clk := newTestBreaker(3, 2*time.Second)

	// Closed: requests flow; two failures are below threshold.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker denied request %d: %v", i, err)
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("breaker opened below threshold")
	}

	// Third consecutive failure opens it: fail-fast, no network.
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker closed at threshold")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}

	// Cooldown not yet elapsed: still failing fast.
	clk.advance(1999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker probed before cooldown: %v", err)
	}

	// Cooldown elapsed: exactly one half-open probe; concurrent requests
	// keep failing fast until the probe settles.
	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe denied: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second in-flight probe admitted: %v", err)
	}

	// The probe succeeds: circuit closes, streak resets.
	b.Success()
	if b.Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker denied post-recovery request: %v", err)
	}

	// The reset is complete: it takes a full threshold of new failures to
	// re-open, not a leftover streak.
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("failure streak survived the reset")
	}
}

// TestBreakerFailedProbeReopens: a half-open probe that fails re-opens the
// circuit immediately and restarts the cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure()
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe denied: %v", err)
	}
	b.Failure() // probe failed
	if !b.Open() {
		t.Fatal("breaker closed after failed probe")
	}
	// A fresh full cooldown is required before the next probe.
	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("cooldown did not restart after failed probe: %v", err)
	}
	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
}

// TestBreakerSuccessInterruptsStreak: consecutive means consecutive — an
// HTTP answer between failures resets the count.
func TestBreakerSuccessInterruptsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.Open() {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

// TestClientBreakerAgainstScriptedServer drives a breaker-armed Client
// against a server that dies and comes back: the breaker must fail fast
// while the endpoint is down and recover transparently once it answers.
func TestClientBreakerAgainstScriptedServer(t *testing.T) {
	var served atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(`[]`))
	}))
	defer backend.Close()
	// A reverse proxy we can "kill": while down, connections are refused at
	// the TCP level — the failure mode breakers exist for.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(backend.URL + r.URL.Path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	proxyURL := proxy.URL

	c := New(proxyURL)
	c.MaxAttempts = 1 // isolate breaker behavior from retry behavior
	c.Breaker = NewBreaker(2, 50*time.Millisecond)
	ctx := context.Background()

	// Healthy endpoint: requests flow.
	if _, err := c.Experiments(ctx); err != nil {
		t.Fatalf("healthy request failed: %v", err)
	}

	// Endpoint dies. Two connection failures open the circuit.
	proxy.CloseClientConnections()
	proxy.Close()
	for i := 0; i < 2; i++ {
		if _, err := c.Experiments(ctx); err == nil {
			t.Fatalf("request %d to dead endpoint succeeded", i)
		}
	}
	if !c.Breaker.Open() {
		t.Fatal("breaker closed after consecutive connection failures")
	}
	// While open, calls fail instantly without touching the network.
	start := time.Now()
	_, err := c.Experiments(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit call error = %v, want ErrCircuitOpen", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("open-circuit call took %v — it dialed instead of failing fast", elapsed)
	}

	// The endpoint comes back on the same address after the cooldown: the
	// half-open probe succeeds and traffic resumes.
	l, err := newListenerAt(t, proxyURL)
	if err != nil {
		t.Skipf("could not rebind proxy address: %v", err)
	}
	revived := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[]`))
	})}
	go revived.Serve(l)
	defer revived.Close()

	time.Sleep(60 * time.Millisecond) // past the 50ms cooldown
	if _, err := c.Experiments(ctx); err != nil {
		t.Fatalf("post-recovery probe failed: %v", err)
	}
	if c.Breaker.Open() {
		t.Error("breaker still open after successful probe")
	}
}
