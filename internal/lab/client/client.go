// Package client is the Go client for a remote butterflyd: submit jobs,
// poll status, and fetch results over HTTP, with the retry discipline a
// load-shedding server expects. Idempotent requests — and every request
// here is idempotent, because a job submission is content-addressed and a
// duplicate submit of the same spec converges on the same cached result —
// are retried on connection errors and backpressure statuses (429, 502,
// 503, 504) with capped exponential backoff plus jitter, honoring any
// Retry-After the server sends.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

// ErrNotFinished is returned by Result for a job still queued or running.
var ErrNotFinished = errors.New("client: job not finished")

// APIError is a non-retryable (or retries-exhausted) HTTP-level failure.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("butterflyd: %d: %s", e.StatusCode, e.Message)
	}
	return fmt.Sprintf("butterflyd: HTTP %d", e.StatusCode)
}

// Client talks to one butterflyd base URL.
type Client struct {
	// MaxAttempts bounds each request's tries (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); each retry
	// doubles it up to MaxDelay (default 5s), then adds jitter. A server
	// Retry-After overrides the computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// PollInterval paces WaitResult's status polling (default 100ms).
	PollInterval time.Duration
	// Breaker, when non-nil, short-circuits requests to an endpoint that
	// keeps failing at the connection level (see Breaker). Off by default:
	// a single-daemon client prefers patient backoff across restarts; a
	// fleet coordinator arms it so dead workers fail over fast.
	Breaker *Breaker
	// Headers, when non-nil, is called per attempt and its entries are set
	// on the request — how a fleet coordinator stamps dispatches with its
	// epoch so fenced (replaced) coordinators are rejected by workers.
	Headers func() map[string]string

	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:7788").
func New(base string) *Client {
	return &Client{
		MaxAttempts:  8,
		BaseDelay:    100 * time.Millisecond,
		MaxDelay:     5 * time.Second,
		PollInterval: 100 * time.Millisecond,
		base:         strings.TrimRight(base, "/"),
		hc:           &http.Client{Timeout: 60 * time.Second},
	}
}

// Submit sends one spec. A 200 means the result was served from the
// daemon's cache at submit time; a 202 means the job was queued.
func (c *Client) Submit(ctx context.Context, spec core.Spec) (*lab.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var st lab.JobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*lab.JobStatus, error) {
	var st lab.JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]lab.JobStatus, error) {
	var list []lab.JobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &list); err != nil {
		return nil, err
	}
	return list, nil
}

// Cancel requests the job stop.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, nil)
}

// Result fetches a finished job's structured result. A job still in flight
// returns ErrNotFinished; a canceled job returns an APIError with status
// 410.
func (c *Client) Result(ctx context.Context, id string) (*core.Result, error) {
	var res core.Result
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result?format=json", nil, &res); err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusConflict {
			return nil, ErrNotFinished
		}
		return nil, err
	}
	return &res, nil
}

// WaitResult polls the job until it reaches a terminal state and returns
// its result (or an error naming the terminal state for failed/canceled).
func (c *Client) WaitResult(ctx context.Context, id string) (*core.Result, error) {
	poll := c.PollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case core.JobDone:
			return c.Result(ctx, id)
		case core.JobFailed:
			return nil, fmt.Errorf("client: job %s failed: %s", id, st.Error)
		case core.JobCanceled:
			return nil, fmt.Errorf("client: job %s canceled", id)
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return nil, err
		}
	}
}

// Experiments fetches the daemon's registry.
func (c *Client) Experiments(ctx context.Context) ([]lab.ExperimentInfo, error) {
	var list []lab.ExperimentInfo
	if err := c.do(ctx, http.MethodGet, "/experiments", nil, &list); err != nil {
		return nil, err
	}
	return list, nil
}

// Metrics fetches the daemon's scheduler metrics.
func (c *Client) Metrics(ctx context.Context) (*lab.Metrics, error) {
	var m lab.Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WaitReady polls /readyz until the daemon reports ready (it answers 503
// during journal replay and drain) or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if err := sleepCtx(ctx, 100*time.Millisecond); err != nil {
			return fmt.Errorf("client: daemon at %s never became ready: %w", c.base, err)
		}
	}
}

// do performs one logical request with the retry policy. body is re-sent
// verbatim on each attempt; out, when non-nil, receives the decoded JSON
// response.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	delay := c.BaseDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if c.Breaker != nil {
			if berr := c.Breaker.Allow(); berr != nil {
				// Fail fast: the endpoint is known-dead and the cooldown
				// has not elapsed. Preserve the underlying cause when this
				// request saw one before the circuit opened.
				if lastErr != nil {
					return fmt.Errorf("client: %w (last error: %v)", berr, lastErr)
				}
				return berr
			}
		}
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.Headers != nil {
			for k, v := range c.Headers() {
				req.Header.Set(k, v)
			}
		}
		retryAfter := time.Duration(0)
		retryable := false
		resp, err := c.hc.Do(req)
		if err != nil {
			// Connection-level failure: the daemon may be restarting. A
			// canceled context is the caller's doing, not the endpoint's —
			// it never counts against the breaker.
			if c.Breaker != nil && ctx.Err() == nil {
				c.Breaker.Failure()
			}
			retryable, lastErr = true, err
		} else {
			// Any HTTP answer — even a 429 or 503 — proves the endpoint
			// alive; load shedding is the backoff policy's business.
			if c.Breaker != nil {
				c.Breaker.Success()
			}
			done, derr := consume(resp, out)
			if done {
				return derr
			}
			retryable = retryableStatus(resp.StatusCode)
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = derr
		}
		if !retryable || attempt >= attempts {
			if retryable {
				return fmt.Errorf("client: gave up after %d attempts: %w", attempt, lastErr)
			}
			return lastErr
		}
		wait := delay/2 + rand.N(delay/2+1) // equal jitter over [delay/2, delay]
		if retryAfter > 0 {
			wait = retryAfter
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return fmt.Errorf("client: %w (last error: %v)", err, lastErr)
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// consume reads one response. done reports that the request is settled
// (success or a non-retryable verdict the caller should see as-is).
func consume(resp *http.Response, out any) (done bool, err error) {
	defer resp.Body.Close()
	if resp.StatusCode < 300 {
		if out == nil {
			return true, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return true, fmt.Errorf("client: decode %s: %w", resp.Request.URL.Path, err)
		}
		return true, nil
	}
	var envelope struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&envelope)
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: envelope.Error}
	return !retryableStatus(resp.StatusCode), apiErr
}

// retryableStatus marks the backpressure/transient statuses.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter understands the delta-seconds form of Retry-After (the
// only form butterflyd emits).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// sleepCtx sleeps or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
