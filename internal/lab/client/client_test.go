package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"butterfly/internal/core"
	"butterfly/internal/lab"
)

// fastClient trims the retry schedule so tests spend milliseconds, not
// seconds, inside backoff sleeps.
func fastClient(base string) *Client {
	c := New(base)
	c.BaseDelay = 2 * time.Millisecond
	c.MaxDelay = 20 * time.Millisecond
	c.PollInterval = 2 * time.Millisecond
	return c
}

// TestClientDrainsBurstThroughBackpressure is the acceptance scenario: a
// burst of 4x the daemon's queue capacity, pushed through the retrying
// client, must fully drain — the 429s the server emits become backoff and
// resubmission, never user-visible errors.
func TestClientDrainsBurstThroughBackpressure(t *testing.T) {
	const depth = 2
	sched := lab.NewScheduler(lab.Config{Workers: 1, QueueDepth: depth, Cache: lab.OpenCache(t.TempDir())})
	ts := httptest.NewServer(lab.NewServerFor(sched, lab.ServerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	c := fastClient(ts.URL)
	c.MaxAttempts = 50 // a deep burst through a depth-2 queue needs patience

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	var failures atomic.Int32
	tables := make([]string, 4*depth)
	for i := 0; i < 4*depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)}
			st, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				failures.Add(1)
				return
			}
			res, err := c.WaitResult(ctx, st.ID)
			if err != nil {
				t.Errorf("wait %d: %v", i, err)
				failures.Add(1)
				return
			}
			tables[i] = res.Table
		}(i)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d of %d burst jobs failed", failures.Load(), 4*depth)
	}
	// Each spec's result matches a direct in-process run.
	for i := 0; i < 4*depth; i++ {
		want, err := lab.RunSpec(core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if tables[i] != want.Table {
			t.Errorf("burst job %d table diverges from direct run", i)
		}
	}
}

// TestClientRetriesAndHonorsRetryAfter: scripted server answers 429 with
// Retry-After twice, then succeeds; the client must wait at least the
// advertised delay and deliver the final answer.
func TestClientRetriesAndHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		json.NewEncoder(w).Encode(lab.JobStatus{ID: "j0001-ok"})
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	start := time.Now()
	st, err := c.Submit(context.Background(), core.Spec{Experiment: "numa"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j0001-ok" {
		t.Errorf("status = %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	// Two enforced Retry-After waits of 1s each dominate the fast backoff.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("client waited %v, want >= 2s of Retry-After honoring", elapsed)
	}
}

// TestClientGivesUpAfterMaxAttempts: permanent overload surfaces as an
// error naming the attempt count, not an infinite loop.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	c.MaxAttempts = 3
	_, err := c.Submit(context.Background(), core.Spec{Experiment: "numa"})
	if err == nil {
		t.Fatal("submit succeeded against a permanently-503 server")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("err = %v, want wrapped 503 APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want MaxAttempts=3", got)
	}
}

// TestClientDoesNotRetryClientErrors: a 400 is the caller's bug; retrying
// it would only hammer the server.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "spec: unknown experiment"})
	}))
	defer srv.Close()

	_, err := fastClient(srv.URL).Submit(context.Background(), core.Spec{Experiment: "nope"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls for a 400, want 1", got)
	}
}

// TestClientRetriesConnectionErrors: a daemon restart mid-conversation (the
// crash-recovery story) appears as connection errors; the client must ride
// through them once the daemon is back.
func TestClientRetriesConnectionErrors(t *testing.T) {
	sched := lab.NewScheduler(lab.Config{Workers: 1})
	t.Cleanup(func() { sched.Shutdown(context.Background()) })
	real := lab.NewServerFor(sched, lab.ServerConfig{})

	var down atomic.Bool
	down.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			// Simulate a dead daemon: sever the connection without a response.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		down.Store(false) // the daemon comes back
	}()
	c := fastClient(srv.URL)
	c.MaxAttempts = 30
	st, err := c.Submit(context.Background(), core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatalf("submit across restart: %v", err)
	}
	if _, err := c.WaitResult(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestClientWaitReady: readiness polling resolves once a scheduler is
// attached, mirroring the daemon's listen-then-replay startup.
func TestClientWaitReady(t *testing.T) {
	srv := lab.NewServer(lab.ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := fastClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Not ready yet: a bounded wait fails.
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := c.WaitReady(shortCtx); err == nil {
		t.Error("WaitReady succeeded with no scheduler attached")
	}
	shortCancel()

	sched := lab.NewScheduler(lab.Config{Workers: 1})
	t.Cleanup(func() { sched.Shutdown(context.Background()) })
	go func() {
		time.Sleep(10 * time.Millisecond)
		srv.Attach(sched)
	}()
	if err := c.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady after attach: %v", err)
	}
}

// TestClientFlakyMixCappedBackoff: a server that flaps between 429 and 503
// (no Retry-After) before recovering. The client must ride through every
// failure and its sleeps must show the capped-jitter shape: each gap at
// least half the current backoff step, and no gap beyond MaxDelay plus
// scheduling slack — the exponential schedule stops growing at the cap.
func TestClientFlakyMixCappedBackoff(t *testing.T) {
	const failures = 6
	var mu sync.Mutex
	var stamps []time.Time
	statuses := []int{
		http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusTooManyRequests,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := len(stamps)
		stamps = append(stamps, time.Now())
		mu.Unlock()
		if n < failures {
			w.WriteHeader(statuses[n])
			json.NewEncoder(w).Encode(map[string]string{"error": "flaky"})
			return
		}
		json.NewEncoder(w).Encode(lab.JobStatus{ID: "j0001-flaky"})
	}))
	defer srv.Close()

	c := fastClient(srv.URL)
	c.BaseDelay = 2 * time.Millisecond
	c.MaxDelay = 8 * time.Millisecond
	c.MaxAttempts = failures + 2

	start := time.Now()
	st, err := c.Submit(context.Background(), core.Spec{Experiment: "numa"})
	if err != nil {
		t.Fatalf("submit through flaky server: %v", err)
	}
	if st.ID != "j0001-flaky" {
		t.Errorf("status = %+v", st)
	}
	if got := len(stamps); got != failures+1 {
		t.Fatalf("server saw %d calls, want %d", got, failures+1)
	}
	// The whole conversation is bounded by the cap: 6 sleeps of at most
	// 8ms each, far below what an uncapped doubling schedule would reach.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("conversation took %v; backoff cap not applied", elapsed)
	}
	delay := c.BaseDelay
	for i := 1; i < len(stamps); i++ {
		gap := stamps[i].Sub(stamps[i-1])
		if gap < delay/2 {
			t.Errorf("gap %d = %v, want >= %v (jitter floor of the backoff step)", i, gap, delay/2)
		}
		// Generous slack: wall-clock sleeps on a loaded CI host overshoot.
		if gap > c.MaxDelay+250*time.Millisecond {
			t.Errorf("gap %d = %v, want <= MaxDelay %v (plus slack)", i, gap, c.MaxDelay)
		}
		if delay *= 2; delay > c.MaxDelay {
			delay = c.MaxDelay
		}
	}
}

// TestClientFailsFastAcrossNonRetryable4xx: every client-error status
// (other than 429) settles in exactly one attempt.
func TestClientFailsFastAcrossNonRetryable4xx(t *testing.T) {
	for _, code := range []int{
		http.StatusBadRequest, http.StatusForbidden, http.StatusNotFound,
		http.StatusConflict, http.StatusUnprocessableEntity,
	} {
		var calls atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": "nope"})
		}))
		_, err := fastClient(srv.URL).Submit(context.Background(), core.Spec{Experiment: "numa"})
		srv.Close()
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != code {
			t.Errorf("status %d: err = %v, want APIError with that code", code, err)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("status %d: server saw %d calls, want 1", code, got)
		}
	}
}
