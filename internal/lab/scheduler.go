package lab

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded work queue has no
	// free slot — backpressure a service can surface as HTTP 503.
	ErrQueueFull = errors.New("lab: work queue full")
	// ErrShuttingDown is returned by Submit after Shutdown began.
	ErrShuttingDown = errors.New("lab: scheduler shutting down")
)

// State is a job's lifecycle phase — an alias of the journal's record
// vocabulary so the scheduler, the wire, and the durable log agree.
type State = core.JobState

// Job states. Queued and Running are transient; the other three are final.
const (
	StateQueued   = core.JobQueued
	StateRunning  = core.JobRunning
	StateDone     = core.JobDone
	StateFailed   = core.JobFailed
	StateCanceled = core.JobCanceled
)

// Job is one submitted spec moving through the scheduler.
type Job struct {
	// ID is the scheduler-unique handle ("j0007-3fa2b1c9": submission
	// sequence plus fingerprint prefix).
	ID string
	// Spec is the submitted job description.
	Spec core.Spec
	// Fingerprint is the spec's content address.
	Fingerprint string

	seq   int
	sched *Scheduler
	done  chan struct{}

	mu        sync.Mutex
	state     State
	res       *core.Result
	err       error
	exec      *execState
	cancelled bool
	// spooled marks a done job whose payload (table, probe report) was
	// released to the cache; Wait/Result reload it from there.
	spooled   bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a final state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its result or error.
func (j *Job) Wait() (*core.Result, error) {
	<-j.done
	j.mu.Lock()
	res, err, spooled := j.res, j.err, j.spooled
	j.mu.Unlock()
	if spooled {
		return j.reload(res)
	}
	return res, err
}

// Result returns the job's result and error without blocking; both are nil
// while the job is still queued or running.
func (j *Job) Result() (*core.Result, error) {
	j.mu.Lock()
	res, err, spooled := j.res, j.err, j.spooled
	j.mu.Unlock()
	if spooled {
		return j.reload(res)
	}
	return res, err
}

// reload rematerializes a spooled result from the cache (outside j.mu —
// this is file IO). The blob was written before the payload was released,
// so a miss means the cache directory was tampered with underneath us;
// failing loudly beats serving a silently empty table.
func (j *Job) reload(trimmed *core.Result) (*core.Result, error) {
	if hit, ok := j.sched.cache.Get(j.Fingerprint); ok {
		return hit, nil
	}
	return trimmed, fmt.Errorf("lab: spooled result %s lost from cache", j.Fingerprint)
}

// Cancel requests the job stop: a queued job finishes immediately as
// canceled; a running job has its simulation engines interrupted. Canceling
// a finished job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelled = true
	switch j.state {
	case StateQueued:
		j.finishLocked(StateCanceled, nil, ErrCanceled)
		j.mu.Unlock()
	case StateRunning:
		exec := j.exec
		j.mu.Unlock()
		if exec != nil {
			exec.interrupt()
		}
	default:
		j.mu.Unlock()
	}
}

// isCanceled reports whether Cancel has been requested.
func (j *Job) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// bindExec publishes (or, with nil, retracts) the attempt's execution state
// so Cancel can reach the running engines.
func (j *Job) bindExec(x *execState) {
	j.mu.Lock()
	j.exec = x
	j.mu.Unlock()
	if x != nil && j.isCanceled() {
		x.interrupt()
	}
}

// finishLocked moves the job to a final state. Callers hold j.mu.
func (j *Job) finishLocked(st State, res *core.Result, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.res = res
	j.err = err
	j.finished = time.Now()
	close(j.done)
	s := j.sched
	switch st {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	}
	// Journal the outcome durably (fsynced) the moment it becomes
	// observable. During recovery the journal already holds the terminal
	// record being restored, so nothing is re-appended. A journal write
	// failure here is deliberately non-fatal: the result stands, and at
	// worst a restart re-executes the job — idempotent by construction.
	if s.journal != nil && !s.recovering {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		_ = s.journal.Finished(j.ID, st, msg)
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Each worker locks an OS thread and owns the engines of the job it is
	// running — workers share no mutable simulation state.
	Workers int
	// QueueDepth bounds the work queue; <= 0 means 256.
	QueueDepth int
	// Cache, when non-nil, serves fingerprint hits without execution and
	// stores fresh results.
	Cache *Cache
	// Journal, when non-nil, makes the scheduler durable: submissions are
	// journaled before they are enqueued, lifecycle transitions are
	// appended as they happen, and NewScheduler replays the journal —
	// restoring terminal jobs (done jobs re-bind their cached results) and
	// requeuing everything the previous process left mid-flight.
	Journal *Journal
	// Execute, when non-nil, replaces local simulation: workers call it
	// instead of booting engines on their own OS threads. A fleet
	// coordinator uses this to dispatch the job to a ring worker — the
	// scheduler keeps owning the queue, the journal, the cache, and the
	// job lifecycle, so recovery and admission behave identically in both
	// modes. canceled is polled by the executor; a true return must
	// surface as ErrCanceled.
	Execute func(spec core.Spec, fingerprint string, canceled func() bool) (*core.Result, error)
	// PeerFill, when non-nil, is consulted after a job leaves the queue
	// and before it executes: a fleet worker asks its ring siblings for a
	// cached result here, so a rebalanced or freshly-joined worker never
	// re-simulates work the fleet has already done. The spec travels along
	// so the probe can walk the ring by placement key, the same walk the
	// coordinator placed by. The returned result must carry the job's
	// fingerprint.
	PeerFill func(spec core.Spec, fingerprint string) (*core.Result, bool)
	// SpoolResults, when true (and a Cache is configured), releases each
	// finished job's result payload from scheduler memory once the cache
	// holds it durably; Wait and Result rematerialize it from the cache on
	// demand. This bounds a coordinator's memory by its largest single
	// result instead of the sum of a sweep — 10k-job sweeps reassemble by
	// streaming results one at a time off disk, not by holding every table
	// at once.
	SpoolResults bool
}

// RecoveryStats summarizes what NewScheduler replayed from the journal.
type RecoveryStats struct {
	// Replayed is how many jobs the journal knew about.
	Replayed int
	// Restored is how many replayed jobs were already terminal and stayed
	// so (failed, canceled, or done with a cached result to serve).
	Restored int
	// Requeued is how many replayed jobs were put back on the queue:
	// queued or running at the crash, or done without a cached result.
	Requeued int
}

// Scheduler owns the bounded job queue and the worker pool.
type Scheduler struct {
	cfg     Config
	workers int
	queue   chan *Job
	cache   *Cache
	journal *Journal
	recov   RecoveryStats
	wg      sync.WaitGroup
	began   time.Time

	// recovering is true only inside NewScheduler's single-threaded
	// replay, before any worker or submitter exists; finishLocked checks
	// it to avoid re-journaling restored terminal states.
	recovering bool

	busy      atomic.Int32
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	seq       int
	quiescing bool

	// Tracked sweeps: ID → grid-ordered job IDs, journaled so a restart —
	// or a standby promoted from a replicated journal — can still serve
	// GET /sweeps/{id}/result under the original identity.
	sweeps     map[string]core.SweepRecord
	sweepOrder []string
	sweepSeq   int
}

// NewScheduler starts a scheduler with its worker pool running. With a
// journal configured, the journal is replayed first: terminal jobs are
// restored (done jobs re-bind their cached results; done jobs whose blob is
// gone are requeued), and jobs the previous process left queued or running
// are marked interrupted and requeued — sound because every simulation is
// deterministic and re-execution through the content-addressed cache is
// idempotent.
func NewScheduler(cfg Config) *Scheduler {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	s := &Scheduler{
		cfg:     cfg,
		workers: workers,
		cache:   cfg.Cache,
		journal: cfg.Journal,
		began:   time.Now(),
		jobs:    make(map[string]*Job),
		sweeps:  make(map[string]core.SweepRecord),
	}
	var requeue []*Job
	if s.journal != nil {
		requeue = s.replayJournal()
		s.replaySweeps()
	}
	// The queue must at least hold every requeued job — recovery is never
	// turned away by the admission bound it predates.
	if len(requeue) > depth {
		depth = len(requeue)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range requeue {
		s.queue <- j
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// replayJournal reconstructs jobs from the journal's compacted state and
// returns the ones that must run (again). Runs single-threaded inside
// NewScheduler, before workers exist.
func (s *Scheduler) replayJournal() []*Job {
	s.recovering = true
	defer func() { s.recovering = false }()
	var requeue []*Job
	for _, r := range s.journal.Jobs() {
		s.recov.Replayed++
		j := &Job{
			ID:          r.JobID,
			Spec:        r.Spec,
			Fingerprint: r.Fingerprint,
			seq:         r.Seq,
			sched:       s,
			done:        make(chan struct{}),
			state:       StateQueued,
			submitted:   time.Now(),
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.submitted.Add(1)
		switch r.State {
		case core.JobDone:
			if s.cache != nil {
				if hit, ok := s.cache.Get(r.Fingerprint); ok {
					j.mu.Lock()
					j.finishLocked(StateDone, hit, nil)
					j.mu.Unlock()
					s.recov.Restored++
					continue
				}
			}
			// Completed, but the result blob is gone (or caching is off):
			// re-execute — deterministic, so the rerun reproduces it.
			_ = s.journal.Interrupted(j.ID)
			s.recov.Requeued++
			requeue = append(requeue, j)
		case core.JobFailed:
			j.mu.Lock()
			j.finishLocked(StateFailed, nil, errors.New(r.Error))
			j.mu.Unlock()
			s.recov.Restored++
		case core.JobCanceled:
			j.mu.Lock()
			j.finishLocked(StateCanceled, nil, ErrCanceled)
			j.mu.Unlock()
			s.recov.Restored++
		case core.JobRunning:
			_ = s.journal.Interrupted(j.ID)
			s.recov.Requeued++
			requeue = append(requeue, j)
		default: // queued: already so in the journal, nothing to append
			s.recov.Requeued++
			requeue = append(requeue, j)
		}
	}
	s.seq = s.journal.MaxSeq()
	return requeue
}

// replaySweeps restores tracked-sweep identities from the journal and
// re-derives the ID sequence so new sweeps never collide with replayed ones.
// Runs single-threaded inside NewScheduler.
func (s *Scheduler) replaySweeps() {
	for _, rec := range s.journal.Sweeps() {
		s.sweeps[rec.SweepID] = rec
		s.sweepOrder = append(s.sweepOrder, rec.SweepID)
		var n int
		if _, err := fmt.Sscanf(rec.SweepID, "s%d", &n); err == nil && n > s.sweepSeq {
			s.sweepSeq = n
		}
	}
}

// Recovery reports what the scheduler replayed from its journal at startup
// (zero-valued without a journal).
func (s *Scheduler) Recovery() RecoveryStats { return s.recov }

// Cache returns the scheduler's cache, or nil.
func (s *Scheduler) Cache() *Cache { return s.cache }

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// worker runs jobs from the queue until it closes. Each worker locks its OS
// thread: a job's simulation (engine, machines, goroutine-scoped machine
// hooks) is owned by this one worker, so N workers run N fully independent
// simulations with no shared mutable state.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	runtime.LockOSThread()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one dequeued job through its retry/timeout policy.
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	if s.journal != nil {
		// Best-effort: if the append fails the job still runs; a restart
		// would requeue it from "queued", which is harmlessly idempotent.
		_ = s.journal.Started(j.ID)
	}
	j.mu.Unlock()

	s.busy.Add(1)
	var res *core.Result
	var err error
	if s.cfg.PeerFill != nil {
		if hit, ok := s.cfg.PeerFill(j.Spec, j.Fingerprint); ok && hit != nil && hit.Fingerprint == j.Fingerprint {
			res = hit
		}
	}
	if res == nil {
		if s.cfg.Execute != nil {
			res, err = s.cfg.Execute(j.Spec, j.Fingerprint, j.isCanceled)
		} else {
			res, err = runSpec(j.Spec, j.isCanceled, j.bindExec)
		}
	}
	s.busy.Add(-1)

	if err == nil && res == nil {
		err = errors.New("lab: executor returned no result")
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		res.Fingerprint = j.Fingerprint
		cached := false
		if s.cache != nil {
			// A cache write failure degrades to cache-off behavior; the
			// result itself is fine.
			cached = s.cache.Put(res) == nil
		}
		if s.cfg.SpoolResults && cached {
			// The payload is durable on disk; keep only the light header in
			// memory and reload the rest on demand. Spooling is what lets a
			// coordinator hold a 10k-job sweep without the sum of its tables.
			trimmed := *res
			trimmed.Table = ""
			trimmed.ProbeReport = ""
			res = &trimmed
			j.spooled = true
		}
		j.finishLocked(StateDone, res, nil)
	case errors.Is(err, ErrCanceled) || j.cancelled:
		j.finishLocked(StateCanceled, nil, ErrCanceled)
	default:
		j.finishLocked(StateFailed, nil, err)
	}
}

// Submit validates and enqueues a spec. A cache hit finishes the job
// immediately without queueing; a full queue returns ErrQueueFull.
func (s *Scheduler) Submit(spec core.Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fp := Fingerprint(spec)

	var hit *core.Result
	if s.cache != nil {
		hit, _ = s.cache.Get(fp)
	}

	s.mu.Lock()
	if s.quiescing {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	// Admission: reject before the job exists anywhere — in particular
	// before the journal's write-ahead record, so a turned-away submission
	// leaves no trace to replay. Holding s.mu from this check through the
	// enqueue below makes the reservation sound: Submit is the only sender.
	if hit == nil && len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%04d-%s", s.seq, fp[:8]),
		Spec:        spec,
		Fingerprint: fp,
		seq:         s.seq,
		sched:       s,
		done:        make(chan struct{}),
		state:       StateQueued,
		submitted:   time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.submitted.Add(1)
	if s.journal != nil {
		// Write-ahead: the job is durable before it is runnable, so a crash
		// between acknowledgment and execution loses nothing. If the
		// journal cannot accept it, neither does the scheduler — a durable
		// service must not take work it would forget.
		if err := s.journal.Submitted(j.ID, j.seq, spec, fp); err != nil {
			delete(s.jobs, j.ID)
			s.order = s.order[:len(s.order)-1]
			s.submitted.Add(^uint64(0))
			s.mu.Unlock()
			return nil, fmt.Errorf("lab: journal submission: %w", err)
		}
	}
	if hit != nil {
		j.mu.Lock()
		j.finishLocked(StateDone, hit, nil)
		j.mu.Unlock()
		s.mu.Unlock()
		return j, nil
	}
	// The enqueue stays under s.mu so it cannot race Shutdown's close of
	// the queue, and it cannot block: the slot was reserved by the
	// admission check above and workers only ever drain.
	s.queue <- j
	s.mu.Unlock()
	return j, nil
}

// Lookup finds a job by ID.
func (s *Scheduler) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueuePosition returns how many queued jobs are ahead of j (0 for a job
// that is running or finished; 1 means next in line).
func (s *Scheduler) QueuePosition(j *Job) int {
	if j.State() != StateQueued {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pos := 1
	for _, id := range s.order {
		o := s.jobs[id]
		if o.seq < j.seq && o.State() == StateQueued {
			pos++
		}
	}
	return pos
}

// Metrics is a point-in-time snapshot of scheduler health.
type Metrics struct {
	Workers      int        `json:"workers"`
	Busy         int        `json:"busy"`
	QueueDepth   int        `json:"queue_depth"`
	QueueCap     int        `json:"queue_cap"`
	Submitted    uint64     `json:"submitted"`
	Completed    uint64     `json:"completed"`
	Failed       uint64     `json:"failed"`
	Canceled     uint64     `json:"canceled"`
	JobsPerSec   float64    `json:"jobs_per_sec"`
	UptimeMs     int64      `json:"uptime_ms"`
	Cache        CacheStats `json:"cache"`
	CacheHitRate float64    `json:"cache_hit_rate"`
	// Fleet carries the role-specific fleet gauges (core.FleetMetrics on a
	// coordinator, core.WorkerMetrics on a worker) when butterflyd runs as
	// part of a fleet; absent on a single-box daemon.
	Fleet any `json:"fleet,omitempty"`
}

// Metrics snapshots queue depth, worker utilization, throughput, and cache
// traffic.
func (s *Scheduler) Metrics() Metrics {
	up := time.Since(s.began)
	m := Metrics{
		Workers:    s.workers,
		Busy:       int(s.busy.Load()),
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Canceled:   s.canceled.Load(),
		UptimeMs:   up.Milliseconds(),
	}
	if up > 0 {
		m.JobsPerSec = float64(m.Completed) / up.Seconds()
	}
	if s.cache != nil {
		m.Cache = s.cache.Stats()
		m.CacheHitRate = m.Cache.HitRate()
	}
	return m
}

// Retry-After clamp bounds: a turned-away client is never told to come
// back in 0 seconds (a thundering herd) nor parked longer than 30.
const (
	retryAfterMin = time.Second
	retryAfterMax = 30 * time.Second
)

// RetryAfterHint estimates how long a turned-away client should wait before
// resubmitting: roughly the time for one queue slot to free at the pool's
// observed completion rate, clamped to [1s, 30s]. With zero observed
// throughput — cold start, or the first job still running — there is no
// rate to divide by, so the hint falls back to a flat 2 seconds instead of
// dividing by zero or emitting a 0s (retry-immediately) header.
func (s *Scheduler) RetryAfterHint() time.Duration {
	completed := s.completed.Load()
	up := time.Since(s.began)
	if completed == 0 || up <= 0 {
		return clampRetryAfter(2 * time.Second)
	}
	return clampRetryAfter(up / time.Duration(completed))
}

// clampRetryAfter pins a per-slot estimate into [retryAfterMin,
// retryAfterMax]. Zero and negative inputs (no throughput observed yet, or
// a clock step) clamp to the minimum — never to "retry now".
func clampRetryAfter(d time.Duration) time.Duration {
	if d < retryAfterMin {
		return retryAfterMin
	}
	if d > retryAfterMax {
		return retryAfterMax
	}
	return d
}

// Shutdown stops intake and drains: queued and in-flight jobs run to
// completion, then the workers exit. If ctx expires first, every live job
// is canceled (running simulations are interrupted) and Shutdown returns
// the context's error once the workers finish unwinding.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.quiescing {
		s.quiescing = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		for _, j := range s.Jobs() {
			j.Cancel()
		}
		<-drained
		return ctx.Err()
	}
}

// WaitAll waits for every job and returns their results in the given order.
// The first job error is returned (with its job ID) but all jobs are waited
// for regardless, so no worker is left writing into a shared structure.
func WaitAll(jobs []*Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	var firstErr error
	for i, j := range jobs {
		res, err := j.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("job %s (%s): %w", j.ID, j.Spec.Experiment, err)
		}
		results[i] = res
	}
	return results, firstErr
}
