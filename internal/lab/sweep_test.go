package lab

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"butterfly/internal/core"
)

func TestExpandValues(t *testing.T) {
	cases := []struct {
		in   []string
		want []string
	}{
		{[]string{"8..12"}, []string{"8", "9", "10", "11", "12"}},
		{[]string{"8..64:+8"}, []string{"8", "16", "24", "32", "40", "48", "56", "64"}},
		{[]string{"8..128:*2"}, []string{"8", "16", "32", "64", "128"}},
		{[]string{"4", "8..16:*2", "100"}, []string{"4", "8", "16", "100"}},
		{[]string{"b1", "bplus"}, []string{"b1", "bplus"}}, // literals pass through
		{[]string{"3..3"}, []string{"3"}},
	}
	for _, tc := range cases {
		got, err := expandValues(tc.in)
		if err != nil {
			t.Errorf("%v: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%v → %v, want %v", tc.in, got, tc.want)
		}
	}

	bad := []string{"8..2", "8..16:+0", "8..16:*1", "0..16:*2", "8..16:xyz"}
	for _, v := range bad {
		if _, err := expandValues([]string{v}); err == nil {
			t.Errorf("%q: expected error", v)
		}
	}
}

func TestSweepExpand(t *testing.T) {
	sw := Sweep{
		Base: core.Spec{Experiment: "numa", Quick: true},
		Axes: []Axis{
			{Field: "preset", Values: []string{"b1", "bplus"}},
			{Field: "nodes", Values: []string{"16..64:*2"}},
		},
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded to %d specs, want 6", len(specs))
	}
	// Row-major: the last axis (nodes) varies fastest.
	wantOrder := []struct {
		preset string
		nodes  int
	}{
		{"b1", 16}, {"b1", 32}, {"b1", 64},
		{"bplus", 16}, {"bplus", 32}, {"bplus", 64},
	}
	for i, w := range wantOrder {
		if specs[i].Preset != w.preset || specs[i].Nodes != w.nodes {
			t.Errorf("point %d = (%s, %d), want (%s, %d)",
				i, specs[i].Preset, specs[i].Nodes, w.preset, w.nodes)
		}
		if specs[i].Experiment != "numa" || !specs[i].Quick {
			t.Errorf("point %d lost base fields: %+v", i, specs[i])
		}
	}

	// No axes: the base passes through alone.
	solo, err := Sweep{Base: core.Spec{Experiment: "numa"}}.Expand()
	if err != nil || len(solo) != 1 {
		t.Errorf("axis-less sweep: %v, %v", solo, err)
	}

	bad := []Sweep{
		{Base: core.Spec{Experiment: "numa"}, Axes: []Axis{{Field: "warp", Values: []string{"9"}}}},
		{Base: core.Spec{Experiment: "numa"}, Axes: []Axis{{Field: "nodes", Values: nil}}},
		{Base: core.Spec{Experiment: "numa"}, Axes: []Axis{{Field: "nodes", Values: []string{"x"}}}},
		{Base: core.Spec{Experiment: "numa"}, Axes: []Axis{{Field: "quick", Values: []string{"maybe"}}}},
		// Valid grammar, invalid point: preset unknown to the registry.
		{Base: core.Spec{Experiment: "numa"}, Axes: []Axis{{Field: "preset", Values: []string{"cray"}}}},
	}
	for i, sw := range bad {
		if _, err := sw.Expand(); err == nil {
			t.Errorf("bad sweep %d expanded cleanly", i)
		}
	}
}

func TestSweepFaultSeedAxis(t *testing.T) {
	sw := Sweep{
		Base: core.Spec{Experiment: "numa", Quick: true, Faults: "seed 1; drop 0.001"},
		Axes: []Axis{{Field: "fault_seed", Values: []string{"1..3"}}},
	}
	specs, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("%d specs", len(specs))
	}
	for i, sp := range specs {
		if sp.FaultSeed == nil || *sp.FaultSeed != uint64(i+1) {
			t.Errorf("point %d seed = %v", i, sp.FaultSeed)
		}
	}
	// The seed pointer must not be shared between points.
	if specs[0].FaultSeed == specs[1].FaultSeed {
		t.Error("sweep points alias one FaultSeed pointer")
	}
}

func TestSweepEndToEnd(t *testing.T) {
	s := NewScheduler(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	sw := Sweep{
		Base: core.Spec{Experiment: "numa", Quick: true},
		Axes: []Axis{{Field: "nodes", Values: []string{"16..64:*2"}}},
	}
	jobs, err := s.SubmitSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("%d jobs", len(jobs))
	}
	doc, err := AssembleSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Points appear in grid order regardless of completion order.
	idx := []int{
		strings.Index(doc, "--- point 1/3: numa quick nodes=16 ---"),
		strings.Index(doc, "--- point 2/3: numa quick nodes=32 ---"),
		strings.Index(doc, "--- point 3/3: numa quick nodes=64 ---"),
	}
	for i, at := range idx {
		if at < 0 {
			t.Fatalf("missing point header %d in:\n%s", i+1, doc)
		}
		if i > 0 && at < idx[i-1] {
			t.Errorf("point %d appears before point %d", i+1, i)
		}
	}

	// Each point really ran at its own scale: tables must differ.
	r0, _ := jobs[0].Result()
	r2, _ := jobs[2].Result()
	if r0.Table == r2.Table {
		t.Error("16-node and 64-node sweeps produced identical tables")
	}
}
