package lab

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-key token bucket: each remote gets burst tokens that
// refill at rate per second. It bounds how fast any single client can push
// submissions into the queue, so one chatty front-end cannot starve the
// rest — the admission counterpart of the paper's lesson that one serial
// bottleneck wrecks a 128-node machine.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	now     func() time.Time // injectable for tests
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets caps the per-remote table; when full, idle (fully refilled)
// buckets are evicted — a full bucket and no bucket are indistinguishable.
const maxBuckets = 4096

// newRateLimiter builds a limiter admitting rate requests/second per key
// with the given burst size.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// Allow spends one token from key's bucket. When the bucket is empty it
// reports false plus how long until the next token accrues — the
// Retry-After a 429 response should carry.
func (l *rateLimiter) Allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictIdleLocked()
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += l.rate * now.Sub(b.last).Seconds()
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration(float64(time.Second) * (1 - b.tokens) / l.rate)
	return false, wait
}

// evictIdleLocked drops buckets that have fully refilled.
func (l *rateLimiter) evictIdleLocked() {
	now := l.now()
	for k, b := range l.buckets {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// remoteKey buckets requests by client host, ignoring the ephemeral port.
func remoteKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
