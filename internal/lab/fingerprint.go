// Package lab is the parallel experiment-execution service: a job model over
// the core experiment registry, a bounded work queue feeding a pool of
// workers that run independent simulations concurrently on separate OS
// threads, a content-addressed result cache that short-circuits re-execution
// of identical jobs, and parameter-sweep fan-out.
//
// The design leans on one property the whole repository is built around:
// every simulation is sequential-deterministic and self-contained. A job's
// canonicalized spec therefore names its result — the same spec always
// produces byte-identical tables and the same trajectory fingerprint — which
// makes experiment runs embarrassingly parallel across OS threads and makes
// results safely cacheable by content address.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime/debug"
	"sort"
	"sync"

	"butterfly/internal/core"
	"butterfly/internal/fault"
)

// cacheSchema versions the canonical spec encoding and the Result layout.
// Bump it when either changes shape, so stale blobs are never deserialized.
const cacheSchema = "butterfly-lab-v1"

// canonicalSpec is the fingerprinted projection of a core.Spec: only the
// fields that determine the simulation's output, with the fault schedule
// resolved to its parsed form so that two spellings of the same schedule
// ("drop 0.001; seed 7" vs "seed 7; drop 0.001") address the same result.
// Execution policy (timeout, retries) deliberately does not participate.
// Neither does Spec.Partitions: the partitioned engine's results are
// bit-identical at every partition count (the invariant the determinism
// suite pins at -partitions 1/2/4 under -race), so a spec run at any
// partition count addresses — and may be served by — the same cached
// result.
type canonicalSpec struct {
	Schema     string        `json:"schema"`
	Code       string        `json:"code"`
	Experiment string        `json:"experiment"`
	Quick      bool          `json:"quick"`
	Preset     string        `json:"preset"`
	Nodes      int           `json:"nodes"`
	Faults     *fault.Config `json:"faults,omitempty"`
	// Workload is fingerprinted as the raw directive string: two spellings
	// of the same workload are merely a cache miss, never a wrong hit.
	// omitempty keeps every pre-workload fingerprint stable.
	Workload string `json:"workload,omitempty"`
	// Topology changes every remote-reference latency, so it addresses a
	// distinct result. omitempty keeps every topology-less fingerprint
	// stable; an explicit "butterfly" is merely a cache miss against the
	// default spelling, never a wrong hit.
	Topology string `json:"topology,omitempty"`
	Probe    bool   `json:"probe"`
}

// codeVersion is the code salt mixed into every fingerprint: a result is
// only addressable by a spec if it was produced by the same revision of the
// simulator. Built once — debug.ReadBuildInfo walks the whole build graph.
var codeVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			return rev + "+dirty=" + modified
		}
	}
	// No VCS stamp (go test binaries, vendored builds): all such builds
	// share one salt, so a developer editing simulation code should clear
	// results/cache or run with caching off.
	return "unstamped"
})

// Fingerprint returns the content address of the spec's result: a SHA-256
// over the canonical spec encoding, salted with the cache schema and the
// code version. Spec must have passed Validate (an unparseable fault
// schedule panics here rather than silently fingerprinting the raw string).
func Fingerprint(spec core.Spec) string {
	cfg, err := spec.FaultConfig()
	if err != nil {
		panic("lab: Fingerprint on unvalidated spec: " + err.Error())
	}
	if cfg != nil && len(cfg.Failures) > 1 {
		// Failure order within a schedule is not semantic (the injector
		// applies them by time): sort so equivalent schedules hash equal.
		sorted := append([]fault.NodeFailure(nil), cfg.Failures...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].At != sorted[j].At {
				return sorted[i].At < sorted[j].At
			}
			return sorted[i].Node < sorted[j].Node
		})
		cfg.Failures = sorted
	}
	c := canonicalSpec{
		Schema:     cacheSchema,
		Code:       codeVersion(),
		Experiment: spec.Experiment,
		Quick:      spec.Quick,
		Preset:     spec.Preset,
		Nodes:      spec.Nodes,
		Faults:     cfg,
		Workload:   spec.Workload,
		Topology:   spec.Topology,
		Probe:      spec.Probe,
	}
	b, err := json.Marshal(c)
	if err != nil {
		panic("lab: canonical spec not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
