package lab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"butterfly/internal/core"
)

// Server exposes a Scheduler over HTTP — the butterflyd API:
//
//	POST   /jobs            submit a job (body: core.Spec JSON)
//	GET    /jobs            list jobs in submission order
//	GET    /jobs/{id}       status + queue position
//	DELETE /jobs/{id}       cancel
//	GET    /jobs/{id}/result  table text (default) or ?format=json
//	POST   /sweeps          expand + submit a parameter sweep
//	GET    /experiments     the registry
//	GET    /metrics         queue depth, utilization, cache hit rate, jobs/sec
//	GET    /healthz         liveness
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires the handlers around a scheduler.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /jobs", srv.submitJob)
	srv.mux.HandleFunc("GET /jobs", srv.listJobs)
	srv.mux.HandleFunc("GET /jobs/{id}", srv.jobStatus)
	srv.mux.HandleFunc("DELETE /jobs/{id}", srv.cancelJob)
	srv.mux.HandleFunc("GET /jobs/{id}/result", srv.jobResult)
	srv.mux.HandleFunc("POST /sweeps", srv.submitSweep)
	srv.mux.HandleFunc("GET /experiments", srv.listExperiments)
	srv.mux.HandleFunc("GET /metrics", srv.metrics)
	srv.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return srv
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// jobStatusView is the wire form of a job's status.
type jobStatusView struct {
	ID            string    `json:"id"`
	Fingerprint   string    `json:"fingerprint"`
	Spec          core.Spec `json:"spec"`
	State         State     `json:"state"`
	QueuePosition int       `json:"queue_position,omitempty"`
	CacheHit      bool      `json:"cache_hit,omitempty"`
	Error         string    `json:"error,omitempty"`
	WallMs        int64     `json:"wall_ms,omitempty"`
}

// statusView snapshots a job for the wire.
func (s *Server) statusView(j *Job) jobStatusView {
	v := jobStatusView{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Spec:        j.Spec,
		State:       j.State(),
	}
	v.QueuePosition = s.sched.QueuePosition(j)
	res, err := j.Result()
	if res != nil {
		v.CacheHit = res.CacheHit
		v.WallMs = res.WallNs / int64(time.Millisecond)
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// submitStatus maps a submission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec core.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	j, err := s.sched.Submit(spec)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	status := http.StatusAccepted
	if j.State() == StateDone { // served from cache at submit time
		status = http.StatusOK
	}
	writeJSON(w, status, s.statusView(j))
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	views := make([]jobStatusView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, s.statusView(j))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.statusView(j))
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, s.statusView(j))
}

func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	switch j.State() {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusConflict, s.statusView(j))
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, res)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, res.Table)
}

// sweepResponse is the wire form of a submitted sweep.
type sweepResponse struct {
	Points int             `json:"points"`
	Jobs   []jobStatusView `json:"jobs"`
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	var sw Sweep
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad sweep: %w", err))
		return
	}
	jobs, err := s.sched.SubmitSweep(sw)
	if err != nil && len(jobs) == 0 {
		writeError(w, submitStatus(err), err)
		return
	}
	resp := sweepResponse{Points: len(jobs)}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, s.statusView(j))
	}
	status := http.StatusAccepted
	if err != nil {
		// Partial submission (queue filled up mid-sweep): report what ran.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// experimentView is the wire form of a registry entry.
type experimentView struct {
	ID            string `json:"id"`
	Title         string `json:"title"`
	Paper         string `json:"paper"`
	ManagesFaults bool   `json:"manages_faults,omitempty"`
}

func (s *Server) listExperiments(w http.ResponseWriter, r *http.Request) {
	exps := core.Experiments()
	views := make([]experimentView, 0, len(exps))
	for _, e := range exps {
		views = append(views, experimentView{ID: e.ID, Title: e.Title, Paper: e.Paper, ManagesFaults: e.ManagesFaults})
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Metrics())
}
