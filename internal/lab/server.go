package lab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"butterfly/internal/core"
)

// ServerConfig parameterizes the HTTP surface's admission controls.
type ServerConfig struct {
	// MaxBodyBytes caps POST bodies (http.MaxBytesReader); <= 0 means 1 MiB.
	// A spec or sweep is a few hundred bytes — anything near the cap is
	// either a mistake or an attack.
	MaxBodyBytes int64
	// RatePerSec, when > 0, token-bucket rate-limits submissions (POST
	// /jobs, POST /sweeps) per remote host at this sustained rate.
	RatePerSec float64
	// RateBurst is the token-bucket size; <= 0 means 16.
	RateBurst int
}

func (c ServerConfig) maxBody() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

// Server exposes a Scheduler over HTTP — the butterflyd API:
//
//	POST   /jobs            submit a job (body: core.Spec JSON)
//	GET    /jobs            list jobs in submission order
//	GET    /jobs/{id}       status + queue position
//	DELETE /jobs/{id}       cancel
//	GET    /jobs/{id}/result  table text (default) or ?format=json
//	POST   /sweeps          expand + submit a parameter sweep
//	GET    /experiments     the registry
//	GET    /metrics         queue depth, utilization, cache hit rate, jobs/sec
//	GET    /healthz         liveness (ok for the whole process lifetime)
//	GET    /readyz          readiness (503 during journal replay and drain)
//
// Overload never blocks and never hangs: a full queue or an over-rate
// remote gets 429 with a Retry-After hint, an oversized body gets 413, and
// a server that is still replaying its journal (or draining for shutdown)
// answers 503 on /readyz while /healthz stays up.
type Server struct {
	cfg      ServerConfig
	mux      *http.ServeMux
	limiter  *rateLimiter
	sched    atomic.Pointer[Scheduler]
	draining atomic.Bool
	fleet    atomic.Pointer[func() any]
}

// NewServer wires the handlers. The scheduler is attached separately (see
// Attach) so butterflyd can listen — and answer health probes — while the
// journal replay that builds the scheduler is still running.
func NewServer(cfg ServerConfig) *Server {
	srv := &Server{cfg: cfg, mux: http.NewServeMux()}
	if cfg.RatePerSec > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = 16
		}
		srv.limiter = newRateLimiter(cfg.RatePerSec, burst)
	}
	srv.mux.HandleFunc("POST /jobs", srv.submitJob)
	srv.mux.HandleFunc("GET /jobs", srv.listJobs)
	srv.mux.HandleFunc("GET /jobs/{id}", srv.jobStatus)
	srv.mux.HandleFunc("DELETE /jobs/{id}", srv.cancelJob)
	srv.mux.HandleFunc("GET /jobs/{id}/result", srv.jobResult)
	srv.mux.HandleFunc("POST /sweeps", srv.submitSweep)
	srv.mux.HandleFunc("GET /sweeps/{id}", srv.sweepStatus)
	srv.mux.HandleFunc("GET /sweeps/{id}/result", srv.sweepResult)
	srv.mux.HandleFunc("GET /experiments", srv.listExperiments)
	srv.mux.HandleFunc("GET /metrics", srv.metrics)
	srv.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv.mux.HandleFunc("GET /cache/{fp}", srv.cacheBlob)
	srv.mux.HandleFunc("GET /readyz", srv.readyz)
	return srv
}

// Handle mounts an extra handler on the server's mux — the hook the fleet
// package uses to add its membership endpoints (/fleet/...) without the
// lab layer knowing about fleets. Call before serving traffic.
func (s *Server) Handle(pattern string, handler http.Handler) {
	s.mux.Handle(pattern, handler)
}

// AugmentMetrics registers a callback whose value lands in the /metrics
// document's "fleet" field — live workers, reassignments, peer-cache hits.
func (s *Server) AugmentMetrics(fn func() any) { s.fleet.Store(&fn) }

// cacheBlob serves one content-addressed result straight from the local
// cache — the peer-fill endpoint ring siblings probe before simulating.
// A miss is 404: the sibling just runs the job itself.
func (s *Server) cacheBlob(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	fp := r.PathValue("fp")
	if sched.Cache() == nil {
		writeError(w, http.StatusNotFound, errors.New("cache disabled"))
		return
	}
	if len(fp) < 8 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad fingerprint %q", fp))
		return
	}
	res, hit := sched.Cache().Get(fp)
	if !hit {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", fp))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// NewServerFor returns a server already attached to sched — the one-step
// constructor tests and in-process embedders use.
func NewServerFor(sched *Scheduler, cfg ServerConfig) *Server {
	srv := NewServer(cfg)
	srv.Attach(sched)
	return srv
}

// Attach publishes the scheduler and flips /readyz to ready.
func (s *Server) Attach(sched *Scheduler) { s.sched.Store(sched) }

// BeginDrain marks the server draining: /readyz turns 503 immediately (so
// load balancers stop routing) while /healthz and the rest of the API stay
// up for clients polling their in-flight jobs.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Ready reports whether the server is attached and not draining.
func (s *Server) Ready() bool { return s.sched.Load() != nil && !s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// scheduler fetches the attached scheduler, answering 503 (retryable) while
// the journal replay that precedes attachment is still running.
func (s *Server) scheduler(w http.ResponseWriter) (*Scheduler, bool) {
	sc := s.sched.Load()
	if sc == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("starting: journal replay in progress"))
		return nil, false
	}
	return sc, true
}

func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.sched.Load() == nil:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("starting: journal replay in progress"))
	case s.draining.Load():
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errors.New("draining: shutting down"))
	default:
		fmt.Fprintln(w, "ready")
	}
}

// JobStatus is the wire form of a job's status.
type JobStatus struct {
	ID            string    `json:"id"`
	Fingerprint   string    `json:"fingerprint"`
	Spec          core.Spec `json:"spec"`
	State         State     `json:"state"`
	QueuePosition int       `json:"queue_position,omitempty"`
	CacheHit      bool      `json:"cache_hit,omitempty"`
	Error         string    `json:"error,omitempty"`
	WallMs        int64     `json:"wall_ms,omitempty"`
}

// statusView snapshots a job for the wire.
func statusView(sched *Scheduler, j *Job) JobStatus {
	v := JobStatus{
		ID:          j.ID,
		Fingerprint: j.Fingerprint,
		Spec:        j.Spec,
		State:       j.State(),
	}
	v.QueuePosition = sched.QueuePosition(j)
	res, err := j.Result()
	if res != nil {
		v.CacheHit = res.CacheHit
		v.WallMs = res.WallNs / int64(time.Millisecond)
	}
	if err != nil {
		v.Error = err.Error()
	}
	return v
}

// writeJSON emits a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeSubmitError maps a submission error onto backpressure semantics: a
// full queue is 429 with a Retry-After hint (the client should back off and
// retry — the work was not taken), shutdown is 503, anything else is the
// submitter's fault.
func writeSubmitError(w http.ResponseWriter, sched *Scheduler, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(sched.RetryAfterHint()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// retryAfterValue renders a duration as a whole-second Retry-After header
// value, rounding up so "wait 300ms" never becomes "wait 0s".
func retryAfterValue(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// admitPost runs the per-remote rate limit and arms the body-size cap.
// It reports false after writing the 429 itself.
func (s *Server) admitPost(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter != nil {
		if ok, wait := s.limiter.Allow(remoteKey(r.RemoteAddr)); !ok {
			w.Header().Set("Retry-After", retryAfterValue(wait))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("rate limit: %s exceeded %.3g submissions/sec", remoteKey(r.RemoteAddr), s.cfg.RatePerSec))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody())
	return true
}

// decodeBody parses a JSON POST body, distinguishing an oversized body
// (413) from a malformed one (400).
func decodeBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("bad %s: body exceeds %d bytes", what, tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", what, err))
		}
		return false
	}
	return true
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok || !s.admitPost(w, r) {
		return
	}
	var spec core.Spec
	if !decodeBody(w, r, "spec", &spec) {
		return
	}
	j, err := sched.Submit(spec)
	if err != nil {
		writeSubmitError(w, sched, err)
		return
	}
	status := http.StatusAccepted
	if j.State() == StateDone { // served from cache at submit time
		status = http.StatusOK
	}
	writeJSON(w, status, statusView(sched, j))
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	jobs := sched.Jobs()
	views := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, statusView(sched, j))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	j, found := sched.Lookup(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, statusView(sched, j))
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	j, found := sched.Lookup(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, statusView(sched, j))
}

func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	j, found := sched.Lookup(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	switch j.State() {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusConflict, statusView(sched, j))
		return
	case StateCanceled:
		// The job will never have a result; 410 tells the client to stop
		// asking (409 would invite another poll).
		writeError(w, http.StatusGone, fmt.Errorf("job %s was canceled", j.ID))
		return
	}
	res, err := j.Result()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, res)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, res.Table)
}

// sweepResponse is the wire form of a submitted sweep. ID is empty for a
// partial submission (and for a journal hiccup that lost only the sweep
// grouping): the jobs run regardless, but the reassembled document is only
// addressable when the full grid was admitted.
type sweepResponse struct {
	ID     string      `json:"id,omitempty"`
	Points int         `json:"points"`
	Jobs   []JobStatus `json:"jobs"`
}

func (s *Server) submitSweep(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok || !s.admitPost(w, r) {
		return
	}
	var sw Sweep
	if !decodeBody(w, r, "sweep", &sw) {
		return
	}
	id, jobs, err := sched.SubmitSweepTracked(sw)
	if err != nil && len(jobs) == 0 {
		writeSubmitError(w, sched, err)
		return
	}
	resp := sweepResponse{ID: id, Points: len(jobs)}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, statusView(sched, j))
	}
	status := http.StatusAccepted
	if err != nil {
		// Partial submission (queue filled up mid-sweep): report what ran
		// and tell the client when to come back for the rest.
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterValue(sched.RetryAfterHint()))
	}
	writeJSON(w, status, resp)
}

// sweepView summarizes a tracked sweep's progress.
type sweepView struct {
	ID     string `json:"id"`
	Points int    `json:"points"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Jobs are the grid-ordered job IDs — the identity that survives a
	// coordinator failover via the replicated journal.
	Jobs []string `json:"jobs"`
}

// sweepLookup resolves a sweep ID to its record and grid-ordered jobs.
func sweepLookup(w http.ResponseWriter, sched *Scheduler, id string) (core.SweepRecord, []*Job, bool) {
	rec, ok := sched.Sweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such sweep %q", id))
		return rec, nil, false
	}
	jobs := make([]*Job, 0, len(rec.JobIDs))
	for _, jid := range rec.JobIDs {
		j, found := sched.Lookup(jid)
		if !found {
			// A sweep record naming an unknown job means the journal the
			// sweep was replayed from predates the job — a corrupt pairing
			// that should be surfaced, not papered over.
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("sweep %s names unknown job %s", id, jid))
			return rec, nil, false
		}
		jobs = append(jobs, j)
	}
	return rec, jobs, true
}

func sweepViewOf(rec core.SweepRecord, jobs []*Job) sweepView {
	v := sweepView{ID: rec.SweepID, Points: len(jobs), Jobs: rec.JobIDs}
	for _, j := range jobs {
		switch j.State() {
		case StateDone:
			v.Done++
		case StateFailed, StateCanceled:
			v.Failed++
		}
	}
	return v
}

func (s *Server) sweepStatus(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	rec, jobs, ok := sweepLookup(w, sched, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sweepViewOf(rec, jobs))
}

// sweepResult streams the reassembled sweep document — byte-identical to
// AssembleSweep's output — one point at a time, so a 10k-point sweep whose
// results were spooled to the cache never needs them all in memory at once.
// A sweep with unfinished or failed points answers 409 with the progress
// summary; the client polls until done.
func (s *Server) sweepResult(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	rec, jobs, ok := sweepLookup(w, sched, r.PathValue("id"))
	if !ok {
		return
	}
	view := sweepViewOf(rec, jobs)
	if view.Done != view.Points {
		writeJSON(w, http.StatusConflict, view)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for i, j := range jobs {
		res, err := j.Result() // loads a spooled table from the cache, one point at a time
		if err != nil || res == nil {
			// Headers are out; all we can do is truncate loudly.
			fmt.Fprintf(w, "--- sweep %s truncated at point %d/%d: %v ---\n", rec.SweepID, i+1, len(jobs), err)
			return
		}
		fmt.Fprintf(w, "--- point %d/%d: %s ---\n", i+1, len(jobs), describeSpec(res.Spec))
		fmt.Fprint(w, res.Table)
		if len(res.Table) == 0 || res.Table[len(res.Table)-1] != '\n' {
			fmt.Fprintln(w)
		}
	}
}

// ExperimentInfo is the wire form of a registry entry.
type ExperimentInfo struct {
	ID            string `json:"id"`
	Title         string `json:"title"`
	Paper         string `json:"paper"`
	ManagesFaults bool   `json:"manages_faults,omitempty"`
}

func (s *Server) listExperiments(w http.ResponseWriter, r *http.Request) {
	exps := core.Experiments()
	views := make([]ExperimentInfo, 0, len(exps))
	for _, e := range exps {
		views = append(views, ExperimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper, ManagesFaults: e.ManagesFaults})
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduler(w)
	if !ok {
		return
	}
	m := sched.Metrics()
	if fn := s.fleet.Load(); fn != nil {
		m.Fleet = (*fn)()
	}
	writeJSON(w, http.StatusOK, m)
}
