package lab

import (
	"errors"
	"testing"

	"butterfly/internal/core"
)

// TestJournalReplayMembershipEdgeCases: a raw log (as a standby's
// replicated journal is — records written verbatim, not validated by this
// process's append path) may carry duplicate worker-up records or a
// worker-down for an ID never seen up. Replay must fold both idempotently,
// because membership changes race the journal writes that record them.
func TestJournalReplayMembershipEdgeCases(t *testing.T) {
	wA := core.WorkerRecord{ID: "wA", URL: "http://a"}
	dir := t.TempDir()
	content := jline(t, core.JournalRecord{Rec: 1, Event: core.EventWorkerUp, Worker: &wA}) +
		jline(t, core.JournalRecord{Rec: 2, Event: core.EventWorkerUp, Worker: &wA}) + // duplicate up
		jline(t, core.JournalRecord{Rec: 3, Event: core.EventWorkerDown, Worker: &core.WorkerRecord{ID: "ghost", URL: "http://ghost"}}) + // down for unknown ID
		jline(t, core.JournalRecord{Rec: 4, Event: core.EventWorkerUp, Worker: &core.WorkerRecord{ID: "wB", URL: "http://b"}}) +
		jline(t, core.JournalRecord{Rec: 5, Event: core.EventWorkerDown, Worker: &core.WorkerRecord{ID: "wB", URL: "http://b"}})
	writeLog(t, dir, content)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("membership edge cases must replay cleanly, got: %v", err)
	}
	defer j.Close()
	got := j.Workers()
	if len(got) != 1 || got[0].ID != "wA" {
		t.Fatalf("workers after replay = %+v, want [wA]", got)
	}
	if j.Rec() != 5 {
		t.Errorf("Rec = %d after replaying 5 records", j.Rec())
	}
}

// TestReplicaAppendDuplicateAndGap: duplicate delivery from the stream is a
// silent no-op (the record is already replicated); a record that skips
// ahead is ErrReplicaGap, the signal to resync via snapshot.
func TestReplicaAppendDuplicateAndGap(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	spec := specNuma()
	rec1 := core.JournalRecord{Rec: 1, Event: core.EventSubmitted, JobID: "j0001-a", Seq: 1, Spec: &spec, Fingerprint: "fp-a"}
	if err := j.AppendReplica(rec1); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendReplica(rec1); err != nil {
		t.Fatalf("duplicate delivery errored: %v", err)
	}
	if j.Rec() != 1 {
		t.Fatalf("Rec = %d after duplicate, want 1", j.Rec())
	}
	gap := core.JournalRecord{Rec: 3, Event: core.EventStarted, JobID: "j0001-a"}
	if err := j.AppendReplica(gap); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap append error = %v, want ErrReplicaGap", err)
	}
	// The gap left no trace: record 2 still applies.
	if err := j.AppendReplica(core.JournalRecord{Rec: 2, Event: core.EventStarted, JobID: "j0001-a"}); err != nil {
		t.Fatalf("in-order append after a rejected gap: %v", err)
	}
}

// TestReplicaTornTailTruncatesAndResyncs: the standby died mid-append to
// its replicated log. On restart the torn final record is truncated (not a
// refusal to start), the journal reports the last complete record, and the
// stream resumes from there — re-delivery of the truncated record is just
// the next in-order append.
func TestReplicaTornTailTruncatesAndResyncs(t *testing.T) {
	spec := specNuma()
	dir := t.TempDir()
	content := jline(t, core.JournalRecord{Rec: 1, Event: core.EventEpoch, Epoch: 1}) +
		jline(t, core.JournalRecord{Rec: 2, Event: core.EventSubmitted, JobID: "j0001-a", Seq: 1, Spec: &spec, Fingerprint: "fp-a"}) +
		`{"rec":3,"event":"start` // died replicating record 3
	writeLog(t, dir, content)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn replicated log must truncate, not refuse startup: %v", err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after dropping the torn record")
	}
	if j.Rec() != 2 {
		t.Fatalf("Rec = %d after truncation, want 2 (the last complete record)", j.Rec())
	}
	if j.Epoch() != 1 {
		t.Errorf("Epoch = %d after replay, want 1", j.Epoch())
	}

	// Resync: the follower's next pull asks for records after 2, and the
	// primary re-sends record 3 — which now applies in order.
	if err := j.AppendReplica(core.JournalRecord{Rec: 3, Event: core.EventStarted, JobID: "j0001-a"}); err != nil {
		t.Fatalf("resync append after truncation: %v", err)
	}
	jobs := j.Jobs()
	if len(jobs) != 1 || jobs[0].State != core.JobRunning {
		t.Fatalf("jobs after resync = %+v, want one running job", jobs)
	}
}

// TestReplicaStateInstallGuards: a state snapshot with the wrong schema, or
// one older than what is already replicated locally, must be refused — a
// stale "primary" cannot rewind a follower.
func TestReplicaStateInstallGuards(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	spec := specNuma()
	for rec := int64(1); rec <= 3; rec++ {
		r := core.JournalRecord{Rec: rec, Event: core.EventSubmitted,
			JobID: string(rune('a'+rec)) + "-job", Seq: int(rec), Spec: &spec, Fingerprint: "fp"}
		if err := j.AppendReplica(r); err != nil {
			t.Fatal(err)
		}
	}

	if err := j.InstallReplicaState(core.ReplicaState{Schema: "other-schema-v9", Rec: 10}); err == nil {
		t.Error("wrong-schema state installed")
	}
	if err := j.InstallReplicaState(core.ReplicaState{Schema: "butterfly-journal-v1", Rec: 1}); err == nil {
		t.Error("backwards state installed")
	}

	st := core.ReplicaState{Schema: "butterfly-journal-v1", Rec: 7, Seq: 5, Epoch: 2,
		Jobs: []core.JobRecord{{JobID: "j0009-x", Seq: 5, Spec: spec, Fingerprint: "fp-x", State: core.JobQueued}}}
	if err := j.InstallReplicaState(st); err != nil {
		t.Fatal(err)
	}
	if j.Rec() != 7 || j.Epoch() != 2 || j.MaxSeq() != 5 {
		t.Errorf("after install: rec=%d epoch=%d seq=%d, want 7/2/5", j.Rec(), j.Epoch(), j.MaxSeq())
	}
	if jobs := j.Jobs(); len(jobs) != 1 || jobs[0].JobID != "j0009-x" {
		t.Errorf("jobs after install = %+v", jobs)
	}
}

// TestJournalEpochRules: epochs only rise through the validated append path
// (BumpEpoch), survive reopen, and a stale epoch record arriving in a
// replicated stream is tolerated as a no-op.
func TestJournalEpochRules(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e, err := j.BumpEpoch(); err != nil || e != 1 {
		t.Fatalf("first BumpEpoch = (%d, %v), want (1, nil)", e, err)
	}
	if e, err := j.BumpEpoch(); err != nil || e != 2 {
		t.Fatalf("second BumpEpoch = (%d, %v), want (2, nil)", e, err)
	}
	// A stale epoch in the replica stream (possible when the stream predates
	// this follower's own takeover) is a no-op, not an error.
	if err := j.AppendReplica(core.JournalRecord{Rec: j.Rec() + 1, Event: core.EventEpoch, Epoch: 1}); err != nil {
		t.Fatalf("stale replicated epoch errored: %v", err)
	}
	if j.Epoch() != 2 {
		t.Errorf("stale replicated epoch lowered the fence to %d", j.Epoch())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 2 {
		t.Errorf("epoch %d after reopen, want 2", re.Epoch())
	}
}

// TestRecordsAfterTailSemantics: the bounded tail streams what it holds and
// signals snapshot-needed when asked to reach further back.
func TestRecordsAfterTailSemantics(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.TailMax = 4
	spec := specNuma()
	for i := 1; i <= 10; i++ {
		id := string(rune('a'+i)) + "-job"
		if err := j.Submitted(id, i, spec, "fp-"+id); err != nil {
			t.Fatal(err)
		}
	}

	if recs, ok := j.RecordsAfter(10, 100); !ok || recs != nil {
		t.Errorf("caught-up follower: recs=%v ok=%v, want nil/true", recs, ok)
	}
	if _, ok := j.RecordsAfter(0, 100); ok {
		t.Error("tail claims to reach back to record 1 with TailMax=4")
	}
	recs, ok := j.RecordsAfter(8, 100)
	if !ok || len(recs) != 2 || recs[0].Rec != 9 || recs[1].Rec != 10 {
		t.Errorf("RecordsAfter(8) = %+v ok=%v, want records 9,10", recs, ok)
	}
	// max bounds the batch.
	recs, ok = j.RecordsAfter(8, 1)
	if !ok || len(recs) != 1 || recs[0].Rec != 9 {
		t.Errorf("RecordsAfter(8, max=1) = %+v ok=%v, want just record 9", recs, ok)
	}
}
