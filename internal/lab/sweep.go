package lab

import (
	"fmt"
	"strconv"
	"strings"

	"butterfly/internal/core"
)

// Axis is one dimension of a parameter sweep: a spec field and the values
// it takes. Values are strings so a grid serializes naturally; numeric
// fields additionally accept range shorthand:
//
//	"8..12"      → 8 9 10 11 12
//	"8..64:+8"   → 8 16 24 ... 64   (additive step)
//	"8..128:*2"  → 8 16 32 64 128   (multiplicative step, Gustafson-style
//	                                  P sweeps)
type Axis struct {
	// Field is the spec field to vary: "experiment", "quick", "preset",
	// "nodes", "topology", or "fault_seed".
	Field string `json:"field"`
	// Values are the points along this axis, in order.
	Values []string `json:"values"`
}

// Sweep expands a base spec across a grid of axis values into independent
// jobs. Expansion is row-major — the last axis varies fastest — and the
// per-point results reassemble in exactly that order, so a sweep's table is
// deterministic no matter how the points were scheduled.
type Sweep struct {
	Base core.Spec `json:"base"`
	Axes []Axis    `json:"axes"`
}

// sweepFields maps axis names to spec-field setters.
var sweepFields = map[string]func(*core.Spec, string) error{
	"experiment": func(s *core.Spec, v string) error {
		s.Experiment = v
		return nil
	},
	"quick": func(s *core.Spec, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("quick value %q: %w", v, err)
		}
		s.Quick = b
		return nil
	},
	"preset": func(s *core.Spec, v string) error {
		s.Preset = v
		return nil
	},
	"nodes": func(s *core.Spec, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("nodes value %q: %w", v, err)
		}
		s.Nodes = n
		return nil
	},
	"topology": func(s *core.Spec, v string) error {
		s.Topology = v
		return nil
	},
	"fault_seed": func(s *core.Spec, v string) error {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("fault_seed value %q: %w", v, err)
		}
		s.FaultSeed = &n
		return nil
	},
}

// expandValues resolves range shorthand in an axis's value list.
func expandValues(vals []string) ([]string, error) {
	var out []string
	for _, v := range vals {
		lo, hi, step, mul, isRange, err := parseRange(v)
		if err != nil {
			return nil, err
		}
		if !isRange {
			out = append(out, v)
			continue
		}
		for x := lo; x <= hi; {
			out = append(out, strconv.FormatInt(x, 10))
			if mul {
				x *= step
			} else {
				x += step
			}
		}
	}
	return out, nil
}

// parseRange recognizes "lo..hi", "lo..hi:+k", and "lo..hi:*k".
func parseRange(v string) (lo, hi, step int64, mul, isRange bool, err error) {
	body, stepPart, hasStep := strings.Cut(v, ":")
	loS, hiS, ok := strings.Cut(body, "..")
	if !ok {
		return 0, 0, 0, false, false, nil
	}
	lo, err1 := strconv.ParseInt(loS, 10, 64)
	hi, err2 := strconv.ParseInt(hiS, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, 0, false, false, nil // not a range; treat as literal
	}
	step = 1
	if hasStep {
		switch {
		case strings.HasPrefix(stepPart, "*"):
			mul = true
			step, err = strconv.ParseInt(stepPart[1:], 10, 64)
		case strings.HasPrefix(stepPart, "+"):
			step, err = strconv.ParseInt(stepPart[1:], 10, 64)
		default:
			step, err = strconv.ParseInt(stepPart, 10, 64)
		}
		if err != nil {
			return 0, 0, 0, false, false, fmt.Errorf("lab: bad range step in %q", v)
		}
	}
	if lo > hi || step <= 0 || (mul && (step < 2 || lo < 1)) {
		return 0, 0, 0, false, false, fmt.Errorf("lab: bad range %q", v)
	}
	return lo, hi, step, mul, true, nil
}

// Expand materializes the grid into validated specs in row-major order.
func (sw Sweep) Expand() ([]core.Spec, error) {
	if len(sw.Axes) == 0 {
		if err := sw.Base.Validate(); err != nil {
			return nil, err
		}
		return []core.Spec{sw.Base}, nil
	}
	expanded := make([][]string, len(sw.Axes))
	for i, ax := range sw.Axes {
		if _, ok := sweepFields[ax.Field]; !ok {
			return nil, fmt.Errorf("lab: unknown sweep axis %q", ax.Field)
		}
		vals, err := expandValues(ax.Values)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("lab: sweep axis %q has no values", ax.Field)
		}
		expanded[i] = vals
	}
	specs := []core.Spec{sw.Base}
	for i, ax := range sw.Axes {
		next := make([]core.Spec, 0, len(specs)*len(expanded[i]))
		for _, base := range specs {
			for _, v := range expanded[i] {
				sp := base
				if err := sweepFields[ax.Field](&sp, v); err != nil {
					return nil, fmt.Errorf("lab: axis %q: %w", ax.Field, err)
				}
				next = append(next, sp)
			}
		}
		specs = next
	}
	for i, sp := range specs {
		if err := sp.Validate(); err != nil {
			return nil, fmt.Errorf("lab: sweep point %d: %w", i, err)
		}
	}
	return specs, nil
}

// SubmitSweep expands the sweep and submits every point, returning the jobs
// in grid order. Validation is all-or-nothing: nothing is submitted unless
// the whole grid expands cleanly (individual submissions can still fail on
// a full queue, in which case the already-submitted prefix keeps running
// and the error reports how far submission got).
func (s *Scheduler) SubmitSweep(sw Sweep) ([]*Job, error) {
	specs, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, 0, len(specs))
	for i, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			return jobs, fmt.Errorf("lab: sweep point %d/%d: %w", i+1, len(specs), err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// SubmitSweepTracked submits the sweep and records its identity — a sweep
// ID bound to the grid-ordered job IDs — durably in the journal (when one
// is configured). The identity is what lets GET /sweeps/{id}/result stream
// the reassembled document later, from this process or from a standby that
// replicated the journal and took over. Partial submissions (queue filled
// mid-sweep) get no identity: the submitted prefix keeps running as plain
// jobs and the client resubmits the sweep when admission reopens —
// idempotent, since every point is content-addressed.
func (s *Scheduler) SubmitSweepTracked(sw Sweep) (string, []*Job, error) {
	jobs, err := s.SubmitSweep(sw)
	if err != nil {
		return "", jobs, err
	}
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	s.mu.Lock()
	s.sweepSeq++
	id := fmt.Sprintf("s%04d", s.sweepSeq)
	rec := core.SweepRecord{SweepID: id, JobIDs: ids}
	if s.journal != nil {
		if jerr := s.journal.SweepSubmitted(id, ids); jerr != nil {
			// The jobs are durable and running; only the sweep grouping was
			// lost. Hand the jobs back without an ID rather than failing
			// work that is already in flight.
			s.sweepSeq--
			s.mu.Unlock()
			return "", jobs, nil
		}
	}
	s.sweeps[id] = rec
	s.sweepOrder = append(s.sweepOrder, id)
	s.mu.Unlock()
	return id, jobs, nil
}

// Sweep returns a tracked sweep's identity record.
func (s *Scheduler) Sweep(id string) (core.SweepRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.sweeps[id]
	return rec, ok
}

// SweepIDs lists tracked sweeps in submission order.
func (s *Scheduler) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.sweepOrder))
	copy(out, s.sweepOrder)
	return out
}

// AssembleSweep waits for a sweep's jobs and reassembles their tables into
// one document in grid order, each point introduced by a header naming the
// varied fields. The per-point results carry their own structured data;
// this is the human-readable composite.
func AssembleSweep(jobs []*Job) (string, error) {
	results, err := WaitAll(jobs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, r := range results {
		fmt.Fprintf(&b, "--- point %d/%d: %s ---\n", i+1, len(results), describeSpec(r.Spec))
		b.WriteString(r.Table)
		if !strings.HasSuffix(r.Table, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// DescribeSpec renders the spec fields a sweep can vary, compactly — the
// per-point header text both AssembleSweep and the streaming reassembly
// endpoint emit, exported so tests can construct expected documents.
func DescribeSpec(sp core.Spec) string { return describeSpec(sp) }

// describeSpec renders the spec fields a sweep can vary, compactly.
func describeSpec(sp core.Spec) string {
	parts := []string{sp.Experiment}
	if sp.Quick {
		parts = append(parts, "quick")
	}
	if sp.Preset != "" {
		parts = append(parts, "preset="+sp.Preset)
	}
	if sp.Nodes > 0 {
		parts = append(parts, fmt.Sprintf("nodes=%d", sp.Nodes))
	}
	if sp.Topology != "" {
		parts = append(parts, "topology="+sp.Topology)
	}
	if sp.FaultSeed != nil {
		parts = append(parts, fmt.Sprintf("fault_seed=%d", *sp.FaultSeed))
	}
	return strings.Join(parts, " ")
}
