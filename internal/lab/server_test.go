package lab

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"butterfly/internal/core"
)

// testServer wires a live scheduler behind an httptest server.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := NewScheduler(cfg)
	ts := httptest.NewServer(NewServer(sched))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts, sched
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServerJobLifecycle(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 2, Cache: OpenCache(t.TempDir())})

	var sub jobStatusView
	code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if sub.ID == "" || sub.Fingerprint == "" {
		t.Fatalf("submit view = %+v", sub)
	}

	// Poll until done.
	deadline := time.Now().Add(30 * time.Second)
	var st jobStatusView
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+sub.ID, "", &st)
		if st.State == StateDone || st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job finished as %s: %s", st.State, st.Error)
	}

	// Text result matches a direct run of the experiment.
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := runDirect(t, "numa", true); string(table) != want {
		t.Error("HTTP result table diverges from direct run")
	}

	// JSON result carries the full structured record.
	var res core.Result
	doJSON(t, "GET", ts.URL+"/jobs/"+sub.ID+"/result?format=json", "", &res)
	if res.Fingerprint != sub.Fingerprint || res.Events == 0 {
		t.Errorf("json result = %+v", res)
	}

	// Resubmitting the same spec is served from cache with 200, not 202.
	var again jobStatusView
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &again); code != http.StatusOK {
		t.Errorf("cache-hit submit status = %d", code)
	}
	if !again.CacheHit {
		t.Errorf("resubmit not marked cache hit: %+v", again)
	}

	// Job listing shows both, in submission order.
	var list []jobStatusView
	doJSON(t, "GET", ts.URL+"/jobs", "", &list)
	if len(list) != 2 || list[0].ID != sub.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestServerValidationAndNotFound(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	var e map[string]string
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"nonesuch"}`, &e); code != http.StatusBadRequest {
		t.Errorf("bad experiment status = %d", code)
	}
	if e["error"] == "" {
		t.Error("error envelope empty")
	}
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","warp":9}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/jobs/j9999-deadbeef", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/jobs/j9999-deadbeef", "", nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job status = %d", code)
	}
}

func TestServerResultWhileRunningConflicts(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	var slow jobStatusView
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"spread"}`, &slow)
	var queued jobStatusView
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &queued)

	if code := doJSON(t, "GET", ts.URL+"/jobs/"+queued.ID+"/result", "", nil); code != http.StatusConflict {
		t.Errorf("result of queued job status = %d", code)
	}
	var qst jobStatusView
	doJSON(t, "GET", ts.URL+"/jobs/"+queued.ID, "", &qst)
	if qst.State == StateQueued && qst.QueuePosition < 1 {
		t.Errorf("queued job has no queue position: %+v", qst)
	}

	// Cancel both over the API.
	var cv jobStatusView
	doJSON(t, "DELETE", ts.URL+"/jobs/"+queued.ID, "", &cv)
	if cv.State != StateCanceled && cv.State != StateDone {
		t.Errorf("canceled view = %+v", cv)
	}
	doJSON(t, "DELETE", ts.URL+"/jobs/"+slow.ID, "", nil)
}

func TestServerSweepAndMetrics(t *testing.T) {
	ts, sched := testServer(t, Config{Workers: 2})

	var sw sweepResponse
	code := doJSON(t, "POST", ts.URL+"/sweeps",
		`{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["16..64:*2"]}]}`, &sw)
	if code != http.StatusAccepted {
		t.Fatalf("sweep status = %d", code)
	}
	if sw.Points != 3 || len(sw.Jobs) != 3 {
		t.Fatalf("sweep response = %+v", sw)
	}
	if code := doJSON(t, "POST", ts.URL+"/sweeps",
		`{"base":{"experiment":"numa"},"axes":[{"field":"warp","values":["9"]}]}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad sweep status = %d", code)
	}

	// Wait for the sweep so metrics see completions.
	for _, jv := range sw.Jobs {
		j, ok := sched.Lookup(jv.ID)
		if !ok {
			t.Fatalf("job %s missing", jv.ID)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatalf("sweep point: %v", err)
		}
	}

	var m Metrics
	doJSON(t, "GET", ts.URL+"/metrics", "", &m)
	if m.Workers != 2 || m.Submitted != 3 || m.Completed != 3 {
		t.Errorf("metrics = %+v", m)
	}

	var exps []experimentView
	doJSON(t, "GET", ts.URL+"/experiments", "", &exps)
	if len(exps) != len(core.Experiments()) {
		t.Errorf("experiments listed = %d", len(exps))
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", resp, err)
	}
	if resp != nil {
		resp.Body.Close()
	}
}
