package lab

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"butterfly/internal/core"
)

// testServer wires a live scheduler behind an httptest server.
func testServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	return testServerCfg(t, cfg, ServerConfig{})
}

// testServerCfg is testServer with explicit admission controls.
func testServerCfg(t *testing.T, cfg Config, scfg ServerConfig) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := NewScheduler(cfg)
	ts := httptest.NewServer(NewServerFor(sched, scfg))
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})
	return ts, sched
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServerJobLifecycle(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 2, Cache: OpenCache(t.TempDir())})

	var sub JobStatus
	code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if sub.ID == "" || sub.Fingerprint == "" {
		t.Fatalf("submit view = %+v", sub)
	}

	// Poll until done.
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+sub.ID, "", &st)
		if st.State == StateDone || st.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job finished as %s: %s", st.State, st.Error)
	}

	// Text result matches a direct run of the experiment.
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := runDirect(t, "numa", true); string(table) != want {
		t.Error("HTTP result table diverges from direct run")
	}

	// JSON result carries the full structured record.
	var res core.Result
	doJSON(t, "GET", ts.URL+"/jobs/"+sub.ID+"/result?format=json", "", &res)
	if res.Fingerprint != sub.Fingerprint || res.Events == 0 {
		t.Errorf("json result = %+v", res)
	}

	// Resubmitting the same spec is served from cache with 200, not 202.
	var again JobStatus
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &again); code != http.StatusOK {
		t.Errorf("cache-hit submit status = %d", code)
	}
	if !again.CacheHit {
		t.Errorf("resubmit not marked cache hit: %+v", again)
	}

	// Job listing shows both, in submission order.
	var list []JobStatus
	doJSON(t, "GET", ts.URL+"/jobs", "", &list)
	if len(list) != 2 || list[0].ID != sub.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestServerValidationAndNotFound(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	var e map[string]string
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"nonesuch"}`, &e); code != http.StatusBadRequest {
		t.Errorf("bad experiment status = %d", code)
	}
	if e["error"] == "" {
		t.Error("error envelope empty")
	}
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","warp":9}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/jobs/j9999-deadbeef", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/jobs/j9999-deadbeef", "", nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job status = %d", code)
	}
}

func TestServerResultWhileRunningConflicts(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	var slow JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"spread"}`, &slow)
	var queued JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &queued)

	if code := doJSON(t, "GET", ts.URL+"/jobs/"+queued.ID+"/result", "", nil); code != http.StatusConflict {
		t.Errorf("result of queued job status = %d", code)
	}
	var qst JobStatus
	doJSON(t, "GET", ts.URL+"/jobs/"+queued.ID, "", &qst)
	if qst.State == StateQueued && qst.QueuePosition < 1 {
		t.Errorf("queued job has no queue position: %+v", qst)
	}

	// Cancel both over the API.
	var cv JobStatus
	doJSON(t, "DELETE", ts.URL+"/jobs/"+queued.ID, "", &cv)
	if cv.State != StateCanceled && cv.State != StateDone {
		t.Errorf("canceled view = %+v", cv)
	}
	doJSON(t, "DELETE", ts.URL+"/jobs/"+slow.ID, "", nil)
}

func TestServerSweepAndMetrics(t *testing.T) {
	ts, sched := testServer(t, Config{Workers: 2})

	var sw sweepResponse
	code := doJSON(t, "POST", ts.URL+"/sweeps",
		`{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["16..64:*2"]}]}`, &sw)
	if code != http.StatusAccepted {
		t.Fatalf("sweep status = %d", code)
	}
	if sw.Points != 3 || len(sw.Jobs) != 3 {
		t.Fatalf("sweep response = %+v", sw)
	}
	if code := doJSON(t, "POST", ts.URL+"/sweeps",
		`{"base":{"experiment":"numa"},"axes":[{"field":"warp","values":["9"]}]}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad sweep status = %d", code)
	}

	// Wait for the sweep so metrics see completions.
	for _, jv := range sw.Jobs {
		j, ok := sched.Lookup(jv.ID)
		if !ok {
			t.Fatalf("job %s missing", jv.ID)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatalf("sweep point: %v", err)
		}
	}

	var m Metrics
	doJSON(t, "GET", ts.URL+"/metrics", "", &m)
	if m.Workers != 2 || m.Submitted != 3 || m.Completed != 3 {
		t.Errorf("metrics = %+v", m)
	}

	var exps []ExperimentInfo
	doJSON(t, "GET", ts.URL+"/experiments", "", &exps)
	if len(exps) != len(core.Experiments()) {
		t.Errorf("experiments listed = %d", len(exps))
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", resp, err)
	}
	if resp != nil {
		resp.Body.Close()
	}
}

// doRaw performs a request and returns the full response (caller closes).
func doRaw(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServerCancelEdgeCases pins the cancel corners: cancel while queued,
// cancel after completion (a no-op), and fetching the result of a canceled
// job (410 Gone — there will never be one).
func TestServerCancelEdgeCases(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	// Occupy the single worker so the next submission stays queued.
	var slow JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"spread"}`, &slow)
	var queued JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &queued)

	// Cancel while queued: immediate terminal state, never runs.
	var cv JobStatus
	if code := doJSON(t, "DELETE", ts.URL+"/jobs/"+queued.ID, "", &cv); code != http.StatusOK {
		t.Fatalf("cancel queued status = %d", code)
	}
	if cv.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %s", cv.State)
	}

	// Result of a canceled job: 410 Gone with an error envelope.
	resp := doRaw(t, "GET", ts.URL+"/jobs/"+queued.ID+"/result", "")
	if resp.StatusCode != http.StatusGone {
		t.Errorf("result of canceled job status = %d, want 410", resp.StatusCode)
	}
	var env map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env["error"] == "" {
		t.Errorf("canceled result envelope = %v (%v)", env, err)
	}
	resp.Body.Close()

	// Unblock the worker and let a fresh job finish.
	doJSON(t, "DELETE", ts.URL+"/jobs/"+slow.ID, "", nil)
	var done JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &done)
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+done.ID, "", &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job finished as %s: %s", st.State, st.Error)
	}

	// Cancel after completion: a no-op — the job stays done and its result
	// stays fetchable.
	var after JobStatus
	if code := doJSON(t, "DELETE", ts.URL+"/jobs/"+done.ID, "", &after); code != http.StatusOK {
		t.Fatalf("cancel done status = %d", code)
	}
	if after.State != StateDone {
		t.Errorf("done job state after cancel = %s, want done", after.State)
	}
	resp = doRaw(t, "GET", ts.URL+"/jobs/"+done.ID+"/result", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("result after post-completion cancel = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerBackpressure floods a tiny queue with 4x its capacity of
// distinct jobs: the overflow must come back as 429 + Retry-After
// immediately (never a hang), and the accepted jobs must still drain.
func TestServerBackpressure(t *testing.T) {
	const depth = 2
	ts, sched := testServer(t, Config{Workers: 1, QueueDepth: depth})

	// One long job pins the worker so queue slots stay occupied.
	var slow JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"spread"}`, &slow)
	waitState(t, mustLookup(t, sched, slow.ID), StateRunning)

	var accepted []string
	rejected := 0
	for i := 0; i < 4*depth; i++ {
		body := fmt.Sprintf(`{"experiment":"numa","quick":true,"nodes":%d}`, 16*(i+1))
		resp := doRaw(t, "POST", ts.URL+"/jobs", body)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if len(accepted) != depth {
		t.Errorf("accepted %d jobs, want exactly the queue depth %d", len(accepted), depth)
	}
	if rejected != 4*depth-depth {
		t.Errorf("rejected %d, want %d", rejected, 4*depth-depth)
	}

	// Free the worker: everything accepted must drain to done.
	doJSON(t, "DELETE", ts.URL+"/jobs/"+slow.ID, "", nil)
	for _, id := range accepted {
		if _, err := mustLookup(t, sched, id).Wait(); err != nil {
			t.Errorf("accepted job %s: %v", id, err)
		}
	}
}

// TestServerRateLimit exercises the per-remote token bucket: a burst beyond
// the bucket gets 429 + Retry-After before the queue is even consulted.
func TestServerRateLimit(t *testing.T) {
	ts, _ := testServerCfg(t, Config{Workers: 1, QueueDepth: 64},
		ServerConfig{RatePerSec: 0.5, RateBurst: 2})

	codes := make(map[int]int)
	var retryAfter string
	for i := 0; i < 6; i++ {
		resp := doRaw(t, "POST", ts.URL+"/jobs",
			fmt.Sprintf(`{"experiment":"numa","quick":true,"nodes":%d}`, 16*(i+1)))
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
		}
		resp.Body.Close()
	}
	if codes[http.StatusAccepted] != 2 {
		t.Errorf("accepted = %d, want the burst size 2 (codes %v)", codes[http.StatusAccepted], codes)
	}
	if codes[http.StatusTooManyRequests] != 4 {
		t.Errorf("rate-limited = %d, want 4 (codes %v)", codes[http.StatusTooManyRequests], codes)
	}
	if retryAfter == "" {
		t.Error("rate-limit 429 carried no Retry-After")
	}
}

// TestServerBodyLimit: an oversized POST body is 413, not an OOM.
func TestServerBodyLimit(t *testing.T) {
	ts, _ := testServerCfg(t, Config{Workers: 1}, ServerConfig{MaxBodyBytes: 512})
	big := `{"experiment":"` + strings.Repeat("x", 4096) + `"}`
	resp := doRaw(t, "POST", ts.URL+"/jobs", big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

// TestServerReadyzDrain pins the liveness/readiness split: during drain
// /healthz stays ok (the process is alive) while /readyz flips to 503 the
// moment drain begins.
func TestServerReadyzDrain(t *testing.T) {
	sched := NewScheduler(Config{Workers: 1})
	srv := NewServerFor(sched, ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		sched.Shutdown(context.Background())
	})

	check := func(path string, want int) {
		t.Helper()
		resp := doRaw(t, "GET", ts.URL+path, "")
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)

	srv.BeginDrain()
	check("/healthz", http.StatusOK) // liveness must NOT drop during drain
	check("/readyz", http.StatusServiceUnavailable)
	resp := doRaw(t, "GET", ts.URL+"/readyz", "")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz carried no Retry-After")
	}
	resp.Body.Close()
}

// TestServerUnattachedIsUnready: before a scheduler is attached (journal
// replay still running), /readyz and the API answer 503 but /healthz is ok.
func TestServerUnattachedIsUnready(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := doRaw(t, "GET", ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz before attach = %d", resp.StatusCode)
	}
	resp.Body.Close()
	for _, path := range []string{"/readyz", "/jobs", "/metrics"} {
		resp := doRaw(t, "GET", ts.URL+path, "")
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before attach = %d, want 503", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// mustLookup fetches a job the server reported.
func mustLookup(t *testing.T, s *Scheduler, id string) *Job {
	t.Helper()
	j, ok := s.Lookup(id)
	if !ok {
		t.Fatalf("job %s missing from scheduler", id)
	}
	return j
}

// TestServerSurvivesPanickingSpec: a spec whose machine override is outside
// an experiment's tolerated range (quick numa indexes node 15, so fewer
// than 16 nodes panics the machine layer) must fail that one job with a
// clear error — never take the daemon down.
func TestServerSurvivesPanickingSpec(t *testing.T) {
	ts, _ := testServer(t, Config{Workers: 1})

	var sub JobStatus
	if code := doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true,"nodes":8}`, &sub); code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st JobStatus
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+sub.ID, "", &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking spec: state=%s err=%q, want failed with panic message", st.State, st.Error)
	}

	// The daemon is still healthy and still runs sane jobs.
	var ok JobStatus
	doJSON(t, "POST", ts.URL+"/jobs", `{"experiment":"numa","quick":true}`, &ok)
	deadline = time.Now().Add(30 * time.Second)
	for {
		doJSON(t, "GET", ts.URL+"/jobs/"+ok.ID, "", &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follow-up job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("follow-up job finished as %s: %s", st.State, st.Error)
	}
}
