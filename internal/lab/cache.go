package lab

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"butterfly/internal/core"
)

// DefaultCacheDir is where butterflybench and butterflyd keep result blobs
// by default, next to the committed experiment outputs in results/.
const DefaultCacheDir = "results/cache"

// Cache is the content-addressed result store: fingerprint → result blob on
// disk. A hit short-circuits execution entirely, which is sound because a
// fingerprint names a deterministic simulation salted with the code version.
// All methods are safe for concurrent use — distinct fingerprints touch
// distinct files, and identical fingerprints write identical bytes (last
// atomic rename wins).
type Cache struct {
	dir string

	hits   atomic.Uint64
	misses atomic.Uint64
	writes atomic.Uint64
}

// CacheStats is a point-in-time snapshot of cache traffic.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Writes uint64 `json:"writes"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// OpenCache returns a cache rooted at dir ("" means DefaultCacheDir). The
// directory is created on first write, so opening a cache never touches the
// filesystem.
func OpenCache(dir string) *Cache {
	if dir == "" {
		dir = DefaultCacheDir
	}
	return &Cache{dir: dir}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of cache traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Writes: c.writes.Load()}
}

// path shards blobs by the first fingerprint byte to keep directories small.
func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp[:2], fp+".json")
}

// Get looks up a result by fingerprint. On a hit the returned result is
// marked CacheHit with Attempts zeroed (this process never executed it); the
// recorded WallNs of the producing run is preserved so hit reporting can say
// how much time the cache saved. A corrupt blob counts as a miss.
func (c *Cache) Get(fp string) (*core.Result, bool) {
	b, err := os.ReadFile(c.path(fp))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var r core.Result
	if err := json.Unmarshal(b, &r); err != nil || r.Fingerprint != fp {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	r.CacheHit = true
	r.Attempts = 0
	return &r, true
}

// Put stores a result under its fingerprint, atomically (temp file + rename)
// so a concurrent Get never observes a partial blob.
func (c *Cache) Put(r *core.Result) error {
	if r.Fingerprint == "" {
		return errors.New("lab: Put of result without fingerprint")
	}
	dst := c.path(r.Fingerprint)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("lab: cache: %w", err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("lab: cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+r.Fingerprint[:8]+".*")
	if err != nil {
		return fmt.Errorf("lab: cache: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: cache write: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: cache: %w", err)
	}
	c.writes.Add(1)
	return nil
}

// Len counts stored blobs (a maintenance/metrics helper, not a hot path).
func (c *Cache) Len() int {
	n := 0
	_ = filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
