package lab

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeClock advances only when told, so bucket refill is exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rate float64, burst int) (*rateLimiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	l := newRateLimiter(rate, burst)
	l.now = clk.now
	return l, clk
}

func TestRateLimiterBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(2, 3) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("10.0.0.1"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.Allow("10.0.0.1")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("wait hint = %v, want (0, 1s] at 2 tokens/s", wait)
	}

	// Half a second refills one token at rate 2.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("10.0.0.1"); !ok {
		t.Error("refilled token denied")
	}
	if ok, _ := l.Allow("10.0.0.1"); ok {
		t.Error("second request admitted after a single-token refill")
	}

	// A long idle period refills to burst, never beyond.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("10.0.0.1"); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d after long idle, want burst 3", admitted)
	}
}

func TestRateLimiterIsolatesKeys(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request for a denied")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's bucket should be empty")
	}
	// A different remote is unaffected by a's exhaustion.
	if ok, _ := l.Allow("b"); !ok {
		t.Error("b throttled by a's traffic")
	}
}

func TestRateLimiterEvictsIdleBuckets(t *testing.T) {
	l, clk := newTestLimiter(10, 2)
	for i := 0; i < maxBuckets; i++ {
		l.Allow(fmt.Sprintf("host-%d", i))
	}
	if len(l.buckets) != maxBuckets {
		t.Fatalf("bucket table = %d, want full at %d", len(l.buckets), maxBuckets)
	}
	// Everyone refills to full; the next new key evicts the idle crowd
	// instead of growing without bound.
	clk.advance(time.Minute)
	if ok, _ := l.Allow("newcomer"); !ok {
		t.Fatal("newcomer denied")
	}
	if len(l.buckets) > 2 {
		t.Errorf("idle buckets not evicted: %d remain", len(l.buckets))
	}
}

func TestRemoteKey(t *testing.T) {
	cases := map[string]string{
		"10.1.2.3:5555": "10.1.2.3",
		"[::1]:8080":    "::1",
		"not-an-addr":   "not-an-addr", // fall back to the raw string
	}
	for in, want := range cases {
		if got := remoteKey(in); got != want {
			t.Errorf("remoteKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRetryAfterHintColdStart: before any job has completed there is no
// observed throughput — the hint must not divide by zero and must not emit
// 0s (which would invite an immediate thundering-herd retry).
func TestRetryAfterHintColdStart(t *testing.T) {
	s := NewScheduler(Config{Workers: 1})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	got := s.RetryAfterHint()
	if got < retryAfterMin || got > retryAfterMax {
		t.Fatalf("cold-start hint %v escapes [%v, %v]", got, retryAfterMin, retryAfterMax)
	}
	if got != 2*time.Second {
		t.Errorf("cold-start hint = %v, want the flat 2s fallback", got)
	}
}

// TestRetryAfterHintClampEdges pins both clamp edges: a pool completing
// jobs faster than one per second hints the 1s floor (never 0), and a pool
// slower than one per 30s hints the 30s ceiling (never parks a client for
// minutes).
func TestRetryAfterHintClampEdges(t *testing.T) {
	fast := NewScheduler(Config{Workers: 1})
	t.Cleanup(func() { fast.Shutdown(context.Background()) })
	fast.began = time.Now().Add(-10 * time.Millisecond)
	fast.completed.Store(1_000_000) // ~10ns per slot: far below the floor
	if got := fast.RetryAfterHint(); got != retryAfterMin {
		t.Errorf("fast-pipeline hint = %v, want clamp to %v", got, retryAfterMin)
	}

	slow := NewScheduler(Config{Workers: 1})
	t.Cleanup(func() { slow.Shutdown(context.Background()) })
	slow.began = time.Now().Add(-2 * time.Hour)
	slow.completed.Store(1) // one job in two hours: far above the ceiling
	if got := slow.RetryAfterHint(); got != retryAfterMax {
		t.Errorf("slow-pipeline hint = %v, want clamp to %v", got, retryAfterMax)
	}

	// A scheduler whose clock appears to have stepped backward (up <= 0)
	// takes the cold-start path, not a negative division.
	stepped := NewScheduler(Config{Workers: 1})
	t.Cleanup(func() { stepped.Shutdown(context.Background()) })
	stepped.began = time.Now().Add(time.Hour)
	stepped.completed.Store(50)
	if got := stepped.RetryAfterHint(); got < retryAfterMin || got > retryAfterMax {
		t.Errorf("clock-step hint %v escapes the clamp", got)
	}
}

// TestClampRetryAfter covers the raw clamp on exact boundary values.
func TestClampRetryAfter(t *testing.T) {
	cases := []struct{ in, want time.Duration }{
		{-time.Second, retryAfterMin},
		{0, retryAfterMin},
		{retryAfterMin, retryAfterMin},
		{retryAfterMin + time.Millisecond, retryAfterMin + time.Millisecond},
		{retryAfterMax - time.Millisecond, retryAfterMax - time.Millisecond},
		{retryAfterMax, retryAfterMax},
		{time.Hour, retryAfterMax},
	}
	for _, tc := range cases {
		if got := clampRetryAfter(tc.in); got != tc.want {
			t.Errorf("clampRetryAfter(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
