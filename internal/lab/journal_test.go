package lab

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"butterfly/internal/core"
)

// jline renders one journal record the way the journal writes it.
func jline(t *testing.T, r core.JournalRecord) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// writeLog writes a raw journal.jsonl (no snapshot) into dir.
func writeLog(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func specNuma() core.Spec { return core.Spec{Experiment: "numa", Quick: true} }

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Submitted("j0001-aaaa", 1, specNuma(), "fp-a"))
	must(j.Started("j0001-aaaa"))
	must(j.Finished("j0001-aaaa", core.JobDone, ""))
	must(j.Submitted("j0002-bbbb", 2, specNuma(), "fp-b"))
	must(j.Started("j0002-bbbb"))
	must(j.Finished("j0002-bbbb", core.JobFailed, "boom"))
	must(j.Submitted("j0003-cccc", 3, specNuma(), "fp-c"))
	must(j.Finished("j0003-cccc", core.JobCanceled, ""))
	must(j.Submitted("j0004-dddd", 4, specNuma(), "fp-d"))
	must(j.Started("j0004-dddd")) // left running: a crash victim
	must(j.Close())

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Torn() {
		t.Error("clean journal reported a torn record")
	}
	if got := re.MaxSeq(); got != 4 {
		t.Errorf("MaxSeq = %d, want 4", got)
	}
	jobs := re.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(jobs))
	}
	want := []struct {
		id    string
		state core.JobState
		err   string
	}{
		{"j0001-aaaa", core.JobDone, ""},
		{"j0002-bbbb", core.JobFailed, "boom"},
		{"j0003-cccc", core.JobCanceled, ""},
		{"j0004-dddd", core.JobRunning, ""},
	}
	for i, w := range want {
		got := jobs[i]
		if got.JobID != w.id || got.State != w.state || got.Error != w.err {
			t.Errorf("job %d = {%s %s %q}, want {%s %s %q}",
				i, got.JobID, got.State, got.Error, w.id, w.state, w.err)
		}
		if got.Seq != i+1 || got.Spec.Experiment != "numa" {
			t.Errorf("job %d lost submission data: %+v", i, got)
		}
	}
}

// TestJournalCompaction drives the automatic fold: with CompactEvery=4 the
// log is repeatedly truncated into the snapshot, record numbers keep
// climbing across compactions, and a reopen sees the union.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactEvery = 4
	const n = 10
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j%04d-compact", i+1)
		if err := j.Submitted(id, i+1, specNuma(), fmt.Sprintf("fp-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Started(id); err != nil {
			t.Fatal(err)
		}
		if err := j.Finished(id, core.JobDone, ""); err != nil {
			t.Fatal(err)
		}
	}
	// 30 records at CompactEvery=4: the live log must stay short.
	if fi, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	} else if fi.Size() > 4*1024 {
		t.Errorf("log never compacted: %d bytes", fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != n {
		t.Fatalf("replayed %d jobs, want %d", len(jobs), n)
	}
	for _, r := range jobs {
		if r.State != core.JobDone {
			t.Errorf("job %s replayed as %s, want done", r.JobID, r.State)
		}
	}
	if re.MaxSeq() != n {
		t.Errorf("MaxSeq = %d, want %d", re.MaxSeq(), n)
	}
}

// TestJournalTornFinalRecord: a truncated last line (the process died
// mid-append) is tolerated — replay drops it, reports Torn, and the job
// simply resumes from its previous state.
func TestJournalTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	spec := specNuma()
	content := jline(t, core.JournalRecord{Rec: 1, Event: core.EventSubmitted, JobID: "j0001-torn", Seq: 1, Spec: &spec, Fingerprint: "fp"}) +
		jline(t, core.JournalRecord{Rec: 2, Event: core.EventStarted, JobID: "j0001-torn"}) +
		`{"rec":3,"event":"comp` // the crash happened here
	writeLog(t, dir, content)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got: %v", err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after dropping a truncated record")
	}
	jobs := j.Jobs()
	if len(jobs) != 1 || jobs[0].State != core.JobRunning {
		t.Fatalf("jobs after torn replay = %+v, want one running job", jobs)
	}

	// The open compacted: a reopen is clean, no lingering torn flag.
	j.Close()
	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Torn() {
		t.Error("torn flag survived compaction")
	}
}

// TestJournalMidFileCorruption: damage anywhere before the final record is
// not a torn append — it means the file was corrupted at rest, and the open
// must fail loudly rather than silently forget jobs.
func TestJournalMidFileCorruption(t *testing.T) {
	spec := specNuma()
	sub := func(rec int64, id string, seq int) string {
		return jline(t, core.JournalRecord{Rec: rec, Event: core.EventSubmitted, JobID: id, Seq: seq, Spec: &spec, Fingerprint: "fp"})
	}

	cases := []struct {
		name    string
		content string
		wantSub string
	}{
		{
			name:    "garbage line mid-file",
			content: sub(1, "j0001-a", 1) + "{{{ not json }}}\n" + sub(3, "j0003-c", 3),
			wantSub: "corrupt",
		},
		{
			name:    "record number hole",
			content: sub(1, "j0001-a", 1) + sub(3, "j0003-c", 3),
			wantSub: "hole",
		},
		{
			name: "impossible transition",
			content: sub(1, "j0001-a", 1) +
				jline(t, core.JournalRecord{Rec: 2, Event: core.EventCompleted, JobID: "j0001-a"}) +
				jline(t, core.JournalRecord{Rec: 3, Event: core.EventStarted, JobID: "j0001-a"}),
			wantSub: "invalid",
		},
		{
			name:    "event for unknown job",
			content: jline(t, core.JournalRecord{Rec: 1, Event: core.EventStarted, JobID: "j9999-ghost"}),
			wantSub: "unknown job",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, tc.content)
			_, err := OpenJournal(dir)
			if err == nil {
				t.Fatal("corrupt journal opened without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestJournalCorruptSnapshot: an unreadable or wrong-schema snapshot is a
// hard error, not a silent fresh start.
func TestJournalCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt snapshot: err = %v", err)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "snapshot.json"), []byte(`{"schema":"other-v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir2); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
}

// TestJournalAppendAfterClose.
func TestJournalAppendAfterClose(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Submitted("j0001-late", 1, specNuma(), "fp"); err != ErrJournalClosed {
		t.Errorf("append after close: %v, want ErrJournalClosed", err)
	}
}

// TestSchedulerRecoveryRestoresAndRequeues is the in-process version of the
// crash chaos test: a scheduler runs jobs against a journal + cache, the
// "process" dies (journal reopened without a clean scheduler drain), and a
// new scheduler must restore the finished work and requeue the rest —
// preserving IDs, sequence numbers, and results.
func TestSchedulerRecoveryRestoresAndRequeues(t *testing.T) {
	dir := t.TempDir()
	cache := OpenCache(filepath.Join(dir, "cache"))

	j, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(Config{Workers: 2, Cache: cache, Journal: j})
	done, err := s1.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := done.Wait()
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := s1.Submit(core.Spec{Experiment: "spread"})
	if err != nil {
		t.Fatal(err)
	}
	canceled.Cancel()
	waitState(t, canceled, StateCanceled)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash aftermath: journal Submitted+Started for a job the
	// dead process never finished.
	spec3 := core.Spec{Experiment: "numa", Quick: true, Nodes: 32}
	if err := j.Submitted("j0099-crashed", 99, spec3, Fingerprint(spec3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Started("j0099-crashed"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directories.
	j2, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewScheduler(Config{Workers: 2, Cache: OpenCache(filepath.Join(dir, "cache")), Journal: j2})
	t.Cleanup(func() {
		s2.Shutdown(context.Background())
		j2.Close()
	})

	rec := s2.Recovery()
	if rec.Replayed != 3 || rec.Restored != 2 || rec.Requeued != 1 {
		t.Errorf("recovery stats = %+v, want replayed 3, restored 2, requeued 1", rec)
	}

	// The done job is back, same ID, same bytes, no re-execution needed.
	jd, ok := s2.Lookup(done.ID)
	if !ok {
		t.Fatalf("done job %s lost across restart", done.ID)
	}
	res2, err := jd.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Table != res1.Table {
		t.Error("restored result table diverges from pre-crash result")
	}

	// The canceled job is back and stays terminal — never re-run.
	jc, ok := s2.Lookup(canceled.ID)
	if !ok {
		t.Fatalf("canceled job %s lost across restart", canceled.ID)
	}
	if _, err := jc.Wait(); err != ErrCanceled {
		t.Errorf("canceled job replayed with err %v, want ErrCanceled", err)
	}

	// The crashed mid-flight job was requeued and completes on the new
	// scheduler, byte-identical to a clean run.
	jr, ok := s2.Lookup("j0099-crashed")
	if !ok {
		t.Fatal("crashed job not requeued")
	}
	res3, err := jr.Wait()
	if err != nil {
		t.Fatalf("requeued job: %v", err)
	}
	clean, err := RunSpec(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Table != clean.Table {
		t.Error("recovered run diverges from clean run")
	}

	// Sequence numbering continues past the journal's high-water mark.
	next, err := s2.Submit(core.Spec{Experiment: "numa", Quick: true, Nodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(next.ID, "j0100-") {
		t.Errorf("post-recovery job ID %s does not continue the sequence", next.ID)
	}
	if _, err := next.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRecoveryGrowsQueueForBacklog: a journal holding more queued
// jobs than the configured queue depth must not deadlock or reject its own
// recovery — the queue grows to hold the backlog.
func TestSchedulerRecoveryGrowsQueueForBacklog(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 6
	for i := 0; i < backlog; i++ {
		spec := core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)}
		if err := j.Submitted(fmt.Sprintf("j%04d-backlog", i+1), i+1, spec, Fingerprint(spec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(Config{Workers: 2, QueueDepth: 2, Journal: j2})
	t.Cleanup(func() {
		s.Shutdown(context.Background())
		j2.Close()
	})
	if got := s.Recovery().Requeued; got != backlog {
		t.Fatalf("requeued %d, want %d", got, backlog)
	}
	for _, job := range s.Jobs() {
		if _, err := job.Wait(); err != nil {
			t.Errorf("backlog job %s: %v", job.ID, err)
		}
	}
}

// TestJournalCompactionRacesAppends: compaction folding the table into the
// snapshot while lifecycle records land from concurrent schedulers must
// lose nothing. CompactEvery=3 forces a compaction mid-stream constantly;
// under -race this also proves the locking.
func TestJournalCompactionRacesAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactEvery = 3

	const goroutines = 8
	const jobsEach = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsEach; i++ {
				id := fmt.Sprintf("j%02d%02d-race", g, i)
				seq := g*jobsEach + i + 1
				if err := j.Submitted(id, seq, specNuma(), fmt.Sprintf("fp-%s", id)); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				if err := j.Started(id); err != nil {
					t.Errorf("start %s: %v", id, err)
					return
				}
				if err := j.Finished(id, core.JobDone, ""); err != nil {
					t.Errorf("finish %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	// Fleet membership events race the job stream too, as they do on a live
	// coordinator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			w := core.WorkerRecord{ID: fmt.Sprintf("w%d", i%4), URL: "http://w"}
			if err := j.WorkerUp(w); err != nil {
				t.Errorf("worker up: %v", err)
				return
			}
			if i%2 == 1 {
				if err := j.WorkerDown(w); err != nil {
					t.Errorf("worker down: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen after racing compactions: %v", err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != goroutines*jobsEach {
		t.Fatalf("replayed %d jobs, want %d", len(jobs), goroutines*jobsEach)
	}
	for _, r := range jobs {
		if r.State != core.JobDone {
			t.Errorf("job %s replayed as %s, want done", r.JobID, r.State)
		}
	}
	if re.MaxSeq() != goroutines*jobsEach {
		t.Errorf("MaxSeq = %d, want %d", re.MaxSeq(), goroutines*jobsEach)
	}
}

// TestJournalStaleLogAfterSnapshotRename: a crash between the snapshot
// rename and the log truncation leaves the old log on disk. Its records
// are already folded into the snapshot — replay must skip them (by record
// number) and apply only the fresh tail.
func TestJournalStaleLogAfterSnapshotRename(t *testing.T) {
	dir := t.TempDir()
	spec := specNuma()
	snap := fmt.Sprintf(`{"schema":%q,"rec":3,"seq":1,"jobs":[{"job_id":"j0001-old","seq":1,"spec":{"experiment":"numa","quick":true},"fingerprint":"fp-old","state":"done"}]}`, journalSchema)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	// Log: records 1-3 are the stale pre-compaction history of j0001-old
	// (including its submission — a duplicate if wrongly replayed); 4-5 are
	// the fresh tail for a new job.
	content := jline(t, core.JournalRecord{Rec: 1, Event: core.EventSubmitted, JobID: "j0001-old", Seq: 1, Spec: &spec, Fingerprint: "fp-old"}) +
		jline(t, core.JournalRecord{Rec: 2, Event: core.EventStarted, JobID: "j0001-old"}) +
		jline(t, core.JournalRecord{Rec: 3, Event: core.EventCompleted, JobID: "j0001-old"}) +
		jline(t, core.JournalRecord{Rec: 4, Event: core.EventSubmitted, JobID: "j0002-new", Seq: 2, Spec: &spec, Fingerprint: "fp-new"}) +
		jline(t, core.JournalRecord{Rec: 5, Event: core.EventStarted, JobID: "j0002-new"})
	writeLog(t, dir, content)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("stale-log replay must succeed, got: %v", err)
	}
	defer j.Close()
	jobs := j.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].JobID != "j0001-old" || jobs[0].State != core.JobDone {
		t.Errorf("snapshot job = %+v, want j0001-old done", jobs[0])
	}
	if jobs[1].JobID != "j0002-new" || jobs[1].State != core.JobRunning {
		t.Errorf("tail job = %+v, want j0002-new running", jobs[1])
	}
}

// TestJournalTornSnapshotTempIgnored: a crash mid-compaction leaves a
// half-written .snapshot.* temp file behind. It was never renamed into
// place, so the open must ignore it and replay the intact state.
func TestJournalTornSnapshotTempIgnored(t *testing.T) {
	dir := t.TempDir()
	spec := specNuma()
	writeLog(t, dir,
		jline(t, core.JournalRecord{Rec: 1, Event: core.EventSubmitted, JobID: "j0001-a", Seq: 1, Spec: &spec, Fingerprint: "fp"}))
	if err := os.WriteFile(filepath.Join(dir, ".snapshot.1234"), []byte(`{"schema":"butterfly-jo`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn snapshot temp file broke the open: %v", err)
	}
	defer j.Close()
	if jobs := j.Jobs(); len(jobs) != 1 || jobs[0].JobID != "j0001-a" {
		t.Fatalf("jobs = %+v, want the one intact job", jobs)
	}
}

// TestJournalWorkerMembershipRoundTrip: worker-up/worker-down records and
// their snapshot form survive close/reopen, and are idempotent the way
// live membership churn requires.
func TestJournalWorkerMembershipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	wA := core.WorkerRecord{ID: "wA", URL: "http://a"}
	wB := core.WorkerRecord{ID: "wB", URL: "http://b"}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.WorkerUp(wA))
	must(j.WorkerUp(wA)) // re-join: idempotent
	must(j.WorkerUp(wB))
	must(j.WorkerDown(core.WorkerRecord{ID: "ghost", URL: "http://ghost"})) // unknown: fine
	must(j.WorkerDown(wB))
	// Jobs and fleet events interleave in one log.
	must(j.Submitted("j0001-mix", 1, specNuma(), "fp"))
	must(j.WorkerUp(core.WorkerRecord{ID: "wC", URL: "http://c"}))
	must(j.Close())

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Workers()
	if len(got) != 2 || got[0].ID != "wA" || got[1].ID != "wC" {
		t.Fatalf("workers after reopen = %+v, want [wA wC]", got)
	}
	if jobs := re.Jobs(); len(jobs) != 1 || jobs[0].JobID != "j0001-mix" {
		t.Errorf("fleet events disturbed the job table: %+v", jobs)
	}

	// A worker record with no ID must be rejected before reaching disk.
	if err := re.WorkerUp(core.WorkerRecord{URL: "http://nameless"}); err == nil {
		t.Error("worker-up without an ID was journaled")
	}
}
