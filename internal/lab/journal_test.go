package lab

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/core"
)

// jline renders one journal record the way the journal writes it.
func jline(t *testing.T, r core.JournalRecord) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// writeLog writes a raw journal.jsonl (no snapshot) into dir.
func writeLog(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func specNuma() core.Spec { return core.Spec{Experiment: "numa", Quick: true} }

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Submitted("j0001-aaaa", 1, specNuma(), "fp-a"))
	must(j.Started("j0001-aaaa"))
	must(j.Finished("j0001-aaaa", core.JobDone, ""))
	must(j.Submitted("j0002-bbbb", 2, specNuma(), "fp-b"))
	must(j.Started("j0002-bbbb"))
	must(j.Finished("j0002-bbbb", core.JobFailed, "boom"))
	must(j.Submitted("j0003-cccc", 3, specNuma(), "fp-c"))
	must(j.Finished("j0003-cccc", core.JobCanceled, ""))
	must(j.Submitted("j0004-dddd", 4, specNuma(), "fp-d"))
	must(j.Started("j0004-dddd")) // left running: a crash victim
	must(j.Close())

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Torn() {
		t.Error("clean journal reported a torn record")
	}
	if got := re.MaxSeq(); got != 4 {
		t.Errorf("MaxSeq = %d, want 4", got)
	}
	jobs := re.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(jobs))
	}
	want := []struct {
		id    string
		state core.JobState
		err   string
	}{
		{"j0001-aaaa", core.JobDone, ""},
		{"j0002-bbbb", core.JobFailed, "boom"},
		{"j0003-cccc", core.JobCanceled, ""},
		{"j0004-dddd", core.JobRunning, ""},
	}
	for i, w := range want {
		got := jobs[i]
		if got.JobID != w.id || got.State != w.state || got.Error != w.err {
			t.Errorf("job %d = {%s %s %q}, want {%s %s %q}",
				i, got.JobID, got.State, got.Error, w.id, w.state, w.err)
		}
		if got.Seq != i+1 || got.Spec.Experiment != "numa" {
			t.Errorf("job %d lost submission data: %+v", i, got)
		}
	}
}

// TestJournalCompaction drives the automatic fold: with CompactEvery=4 the
// log is repeatedly truncated into the snapshot, record numbers keep
// climbing across compactions, and a reopen sees the union.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactEvery = 4
	const n = 10
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("j%04d-compact", i+1)
		if err := j.Submitted(id, i+1, specNuma(), fmt.Sprintf("fp-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := j.Started(id); err != nil {
			t.Fatal(err)
		}
		if err := j.Finished(id, core.JobDone, ""); err != nil {
			t.Fatal(err)
		}
	}
	// 30 records at CompactEvery=4: the live log must stay short.
	if fi, err := os.Stat(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	} else if fi.Size() > 4*1024 {
		t.Errorf("log never compacted: %d bytes", fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	jobs := re.Jobs()
	if len(jobs) != n {
		t.Fatalf("replayed %d jobs, want %d", len(jobs), n)
	}
	for _, r := range jobs {
		if r.State != core.JobDone {
			t.Errorf("job %s replayed as %s, want done", r.JobID, r.State)
		}
	}
	if re.MaxSeq() != n {
		t.Errorf("MaxSeq = %d, want %d", re.MaxSeq(), n)
	}
}

// TestJournalTornFinalRecord: a truncated last line (the process died
// mid-append) is tolerated — replay drops it, reports Torn, and the job
// simply resumes from its previous state.
func TestJournalTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	spec := specNuma()
	content := jline(t, core.JournalRecord{Rec: 1, Event: core.EventSubmitted, JobID: "j0001-torn", Seq: 1, Spec: &spec, Fingerprint: "fp"}) +
		jline(t, core.JournalRecord{Rec: 2, Event: core.EventStarted, JobID: "j0001-torn"}) +
		`{"rec":3,"event":"comp` // the crash happened here
	writeLog(t, dir, content)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got: %v", err)
	}
	defer j.Close()
	if !j.Torn() {
		t.Error("Torn() = false after dropping a truncated record")
	}
	jobs := j.Jobs()
	if len(jobs) != 1 || jobs[0].State != core.JobRunning {
		t.Fatalf("jobs after torn replay = %+v, want one running job", jobs)
	}

	// The open compacted: a reopen is clean, no lingering torn flag.
	j.Close()
	re, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Torn() {
		t.Error("torn flag survived compaction")
	}
}

// TestJournalMidFileCorruption: damage anywhere before the final record is
// not a torn append — it means the file was corrupted at rest, and the open
// must fail loudly rather than silently forget jobs.
func TestJournalMidFileCorruption(t *testing.T) {
	spec := specNuma()
	sub := func(rec int64, id string, seq int) string {
		return jline(t, core.JournalRecord{Rec: rec, Event: core.EventSubmitted, JobID: id, Seq: seq, Spec: &spec, Fingerprint: "fp"})
	}

	cases := []struct {
		name    string
		content string
		wantSub string
	}{
		{
			name:    "garbage line mid-file",
			content: sub(1, "j0001-a", 1) + "{{{ not json }}}\n" + sub(3, "j0003-c", 3),
			wantSub: "corrupt",
		},
		{
			name:    "record number hole",
			content: sub(1, "j0001-a", 1) + sub(3, "j0003-c", 3),
			wantSub: "hole",
		},
		{
			name: "impossible transition",
			content: sub(1, "j0001-a", 1) +
				jline(t, core.JournalRecord{Rec: 2, Event: core.EventCompleted, JobID: "j0001-a"}) +
				jline(t, core.JournalRecord{Rec: 3, Event: core.EventStarted, JobID: "j0001-a"}),
			wantSub: "invalid",
		},
		{
			name:    "event for unknown job",
			content: jline(t, core.JournalRecord{Rec: 1, Event: core.EventStarted, JobID: "j9999-ghost"}),
			wantSub: "unknown job",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeLog(t, dir, tc.content)
			_, err := OpenJournal(dir)
			if err == nil {
				t.Fatal("corrupt journal opened without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestJournalCorruptSnapshot: an unreadable or wrong-schema snapshot is a
// hard error, not a silent fresh start.
func TestJournalCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt snapshot: err = %v", err)
	}

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "snapshot.json"), []byte(`{"schema":"other-v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir2); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
}

// TestJournalAppendAfterClose.
func TestJournalAppendAfterClose(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Submitted("j0001-late", 1, specNuma(), "fp"); err != ErrJournalClosed {
		t.Errorf("append after close: %v, want ErrJournalClosed", err)
	}
}

// TestSchedulerRecoveryRestoresAndRequeues is the in-process version of the
// crash chaos test: a scheduler runs jobs against a journal + cache, the
// "process" dies (journal reopened without a clean scheduler drain), and a
// new scheduler must restore the finished work and requeue the rest —
// preserving IDs, sequence numbers, and results.
func TestSchedulerRecoveryRestoresAndRequeues(t *testing.T) {
	dir := t.TempDir()
	cache := OpenCache(filepath.Join(dir, "cache"))

	j, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(Config{Workers: 2, Cache: cache, Journal: j})
	done, err := s1.Submit(core.Spec{Experiment: "numa", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := done.Wait()
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := s1.Submit(core.Spec{Experiment: "spread"})
	if err != nil {
		t.Fatal(err)
	}
	canceled.Cancel()
	waitState(t, canceled, StateCanceled)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash aftermath: journal Submitted+Started for a job the
	// dead process never finished.
	spec3 := core.Spec{Experiment: "numa", Quick: true, Nodes: 32}
	if err := j.Submitted("j0099-crashed", 99, spec3, Fingerprint(spec3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Started("j0099-crashed"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directories.
	j2, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewScheduler(Config{Workers: 2, Cache: OpenCache(filepath.Join(dir, "cache")), Journal: j2})
	t.Cleanup(func() {
		s2.Shutdown(context.Background())
		j2.Close()
	})

	rec := s2.Recovery()
	if rec.Replayed != 3 || rec.Restored != 2 || rec.Requeued != 1 {
		t.Errorf("recovery stats = %+v, want replayed 3, restored 2, requeued 1", rec)
	}

	// The done job is back, same ID, same bytes, no re-execution needed.
	jd, ok := s2.Lookup(done.ID)
	if !ok {
		t.Fatalf("done job %s lost across restart", done.ID)
	}
	res2, err := jd.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Table != res1.Table {
		t.Error("restored result table diverges from pre-crash result")
	}

	// The canceled job is back and stays terminal — never re-run.
	jc, ok := s2.Lookup(canceled.ID)
	if !ok {
		t.Fatalf("canceled job %s lost across restart", canceled.ID)
	}
	if _, err := jc.Wait(); err != ErrCanceled {
		t.Errorf("canceled job replayed with err %v, want ErrCanceled", err)
	}

	// The crashed mid-flight job was requeued and completes on the new
	// scheduler, byte-identical to a clean run.
	jr, ok := s2.Lookup("j0099-crashed")
	if !ok {
		t.Fatal("crashed job not requeued")
	}
	res3, err := jr.Wait()
	if err != nil {
		t.Fatalf("requeued job: %v", err)
	}
	clean, err := RunSpec(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Table != clean.Table {
		t.Error("recovered run diverges from clean run")
	}

	// Sequence numbering continues past the journal's high-water mark.
	next, err := s2.Submit(core.Spec{Experiment: "numa", Quick: true, Nodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(next.ID, "j0100-") {
		t.Errorf("post-recovery job ID %s does not continue the sequence", next.ID)
	}
	if _, err := next.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRecoveryGrowsQueueForBacklog: a journal holding more queued
// jobs than the configured queue depth must not deadlock or reject its own
// recovery — the queue grows to hold the backlog.
func TestSchedulerRecoveryGrowsQueueForBacklog(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	const backlog = 6
	for i := 0; i < backlog; i++ {
		spec := core.Spec{Experiment: "numa", Quick: true, Nodes: 16 * (i + 1)}
		if err := j.Submitted(fmt.Sprintf("j%04d-backlog", i+1), i+1, spec, Fingerprint(spec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(Config{Workers: 2, QueueDepth: 2, Journal: j2})
	t.Cleanup(func() {
		s.Shutdown(context.Background())
		j2.Close()
	})
	if got := s.Recovery().Requeued; got != backlog {
		t.Fatalf("requeued %d, want %d", got, backlog)
	}
	for _, job := range s.Jobs() {
		if _, err := job.Wait(); err != nil {
			t.Errorf("backlog job %s: %v", job.ID, err)
		}
	}
}
