package lab

import (
	"context"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// submitTestSweep posts a 4-point quick numa sweep and returns its ID and
// point count.
func submitTestSweep(t *testing.T, base string) (string, int) {
	t.Helper()
	var resp struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	code := doJSON(t, "POST", base+"/sweeps",
		`{"base":{"experiment":"numa","quick":true},"axes":[{"field":"nodes","values":["16..64:*2"]}]}`, &resp)
	if code != http.StatusAccepted {
		t.Fatalf("POST /sweeps = %d", code)
	}
	if resp.ID == "" {
		t.Fatal("sweep submission carried no ID")
	}
	return resp.ID, resp.Points
}

// fetchSweepDoc GETs the streamed sweep document once it stops answering
// 409 (points still running).
func fetchSweepDoc(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/sweeps/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			return string(body)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("GET /sweeps/%s/result = %d: %s", id, resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s never finished: %s", id, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSweepStreamingResultByteIdentical: GET /sweeps/{id}/result streams a
// document byte-identical to AssembleSweep's in-process output — with
// SpoolResults on, so every table is reloaded from the cache one point at a
// time, never all in memory.
func TestSweepStreamingResultByteIdentical(t *testing.T) {
	ts, sched := testServer(t, Config{
		Workers:      2,
		Cache:        OpenCache(t.TempDir()),
		SpoolResults: true,
	})
	id, points := submitTestSweep(t, ts.URL)
	if points != 3 { // 16, 32, 64
		t.Fatalf("sweep expanded to %d points, want 3", points)
	}
	got := fetchSweepDoc(t, ts.URL, id)

	// The reference document, assembled in-process from the same jobs.
	rec, ok := sched.Sweep(id)
	if !ok {
		t.Fatalf("scheduler lost sweep %s", id)
	}
	jobs := make([]*Job, 0, len(rec.JobIDs))
	for _, jid := range rec.JobIDs {
		j, found := sched.Lookup(jid)
		if !found {
			t.Fatalf("sweep names unknown job %s", jid)
		}
		jobs = append(jobs, j)
	}
	want, err := AssembleSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streamed document diverges from AssembleSweep (%d vs %d bytes)", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("empty sweep document")
	}

	// Status document agrees.
	var status struct {
		ID     string   `json:"id"`
		Points int      `json:"points"`
		Done   int      `json:"done"`
		Jobs   []string `json:"jobs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/sweeps/"+id, "", &status); code != http.StatusOK {
		t.Fatalf("GET /sweeps/%s = %d", id, code)
	}
	if status.Done != status.Points || len(status.Jobs) != points {
		t.Errorf("status = %+v, want all %d points done", status, points)
	}

	if code := doJSON(t, "GET", ts.URL+"/sweeps/s9999", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep answered %d, want 404", code)
	}
}

// TestSweepIdentitySurvivesRestart: a journaled sweep keeps its ID and its
// grid-ordered job IDs across a scheduler restart — the property a promoted
// standby relies on to serve the sweep it never accepted.
func TestSweepIdentitySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalDir := filepath.Join(dir, "journal")

	j1, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(Config{Workers: 2, Cache: OpenCache(cacheDir), Journal: j1, SpoolResults: true})
	id, jobs, err := s1.SubmitSweepTracked(Sweep{
		Base: specNuma(),
		Axes: []Axis{{Field: "nodes", Values: []string{"16", "32"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := AssembleSweep(jobs)
	if err != nil {
		t.Fatal(err)
	}
	shutdownCtx(t, s1)
	j1.Close()

	// Restart: replay the journal, rebuild the sweep table.
	j2, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := NewScheduler(Config{Workers: 2, Cache: OpenCache(cacheDir), Journal: j2, SpoolResults: true})
	defer shutdownCtx(t, s2)

	rec, ok := s2.Sweep(id)
	if !ok {
		t.Fatalf("sweep %s lost across restart (known: %v)", id, s2.SweepIDs())
	}
	re := make([]*Job, 0, len(rec.JobIDs))
	for _, jid := range rec.JobIDs {
		job, found := s2.Lookup(jid)
		if !found {
			t.Fatalf("replayed sweep names unknown job %s", jid)
		}
		re = append(re, job)
	}
	got, err := AssembleSweep(re)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("reassembled sweep diverges after restart")
	}

	// New sweeps keep numbering past the replayed ones.
	id2, _, err := s2.SubmitSweepTracked(Sweep{Base: specNuma()})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted scheduler reissued sweep ID %s", id)
	}
}

// TestSpooledResultsReloadFromCache: with SpoolResults on, a finished job's
// in-memory result drops its table, and Wait/Result transparently reload it
// from the cache — the memory bound that lets a coordinator hold 10k-job
// sweeps.
func TestSpooledResultsReloadFromCache(t *testing.T) {
	sched := NewScheduler(Config{Workers: 1, Cache: OpenCache(t.TempDir()), SpoolResults: true})
	defer shutdownCtx(t, sched)
	job, err := sched.Submit(specNuma())
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == "" {
		t.Fatal("spooled reload returned an empty table")
	}
	// The retained (pre-reload) result really is trimmed.
	job.mu.Lock()
	trimmed := job.res.Table
	spooled := job.spooled
	job.mu.Unlock()
	if !spooled {
		t.Fatal("job not marked spooled with SpoolResults on and a cache hit")
	}
	if trimmed != "" {
		t.Fatalf("retained result still holds %d table bytes", len(trimmed))
	}
	// Reload twice: idempotent.
	res2, err := job.Result()
	if err != nil || res2.Table != res.Table {
		t.Fatalf("second reload: err=%v, tables equal=%t", err, res2 != nil && res2.Table == res.Table)
	}
}

// shutdownCtx drains a scheduler with a bounded context.
func shutdownCtx(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
