package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModuleServiceUncontended(t *testing.T) {
	m := NewModule(0, 1<<20, 500)
	start, done := m.Service(1000, 1, true)
	if start != 1000 || done != 1500 {
		t.Errorf("service = (%d,%d), want (1000,1500)", start, done)
	}
}

func TestModuleQueueing(t *testing.T) {
	m := NewModule(0, 1<<20, 500)
	m.Service(0, 10, false)                 // busy until 5000
	start, done := m.Service(1000, 2, true) // arrives while busy
	if start != 5000 || done != 6000 {
		t.Errorf("queued service = (%d,%d), want (5000,6000)", start, done)
	}
	st := m.Stats()
	if st.LocalWaitNs != 4000 {
		t.Errorf("local wait = %d, want 4000", st.LocalWaitNs)
	}
	if st.RemoteWords != 10 || st.LocalWords != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestModuleCycleStealing(t *testing.T) {
	// The paper's contention effect: a burst of remote references delays the
	// owner's local reference far beyond its nominal cost.
	m := NewModule(0, 1<<20, 500)
	now := int64(0)
	for i := 0; i < 100; i++ {
		m.Service(now, 1, false) // remote spinners, all arriving at t=0
	}
	start, done := m.Service(0, 1, true)
	if start != 100*500 {
		t.Errorf("local ref started at %d, want 50000", start)
	}
	if done-0 < 50*500 {
		t.Errorf("local ref latency %d suspiciously low", done)
	}
}

func TestFirstFitBasic(t *testing.T) {
	f := NewFirstFit(1000)
	a, err := f.Alloc(100)
	if err != nil || a != 0 {
		t.Fatalf("alloc = %d,%v", a, err)
	}
	b, err := f.Alloc(200)
	if err != nil || b != 100 {
		t.Fatalf("alloc = %d,%v", b, err)
	}
	if f.BytesFree() != 700 {
		t.Errorf("free = %d, want 700", f.BytesFree())
	}
	if err := f.Free(a, 100); err != nil {
		t.Fatalf("free: %v", err)
	}
	// First fit reuses the freed hole.
	c, err := f.Alloc(50)
	if err != nil || c != 0 {
		t.Fatalf("alloc after free = %d,%v, want 0", c, err)
	}
}

func TestFirstFitCoalesce(t *testing.T) {
	f := NewFirstFit(300)
	a, _ := f.Alloc(100)
	b, _ := f.Alloc(100)
	c, _ := f.Alloc(100)
	if err := f.Free(a, 100); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(c, 100); err != nil {
		t.Fatal(err)
	}
	if f.Fragments() != 2 {
		t.Errorf("fragments = %d, want 2", f.Fragments())
	}
	if err := f.Free(b, 100); err != nil {
		t.Fatal(err)
	}
	if f.Fragments() != 1 || f.BytesFree() != 300 {
		t.Errorf("after full free: frags=%d free=%d", f.Fragments(), f.BytesFree())
	}
}

func TestFirstFitDoubleFree(t *testing.T) {
	f := NewFirstFit(100)
	a, _ := f.Alloc(40)
	if err := f.Free(a, 40); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(a, 40); err == nil {
		t.Error("double free not detected")
	}
	if err := f.Free(-1, 10); err == nil {
		t.Error("bad range not detected")
	}
}

func TestFirstFitExhaustion(t *testing.T) {
	f := NewFirstFit(100)
	if _, err := f.Alloc(101); err != ErrNoMemory {
		t.Errorf("err = %v, want ErrNoMemory", err)
	}
	if _, err := f.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
}

func TestFirstFitProperty(t *testing.T) {
	// Property: random alloc/free sequences never hand out overlapping
	// ranges, and freeing everything restores full capacity.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewFirstFit(4096)
		type alloc struct{ off, size int }
		var live []alloc
		for step := 0; step < 200; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := 1 + rng.Intn(256)
				off, err := f.Alloc(size)
				if err != nil {
					continue
				}
				for _, a := range live {
					if off < a.off+a.size && a.off < off+size {
						return false // overlap!
					}
				}
				live = append(live, alloc{off, size})
			} else {
				i := rng.Intn(len(live))
				if err := f.Free(live[i].off, live[i].size); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, a := range live {
			if err := f.Free(a.off, a.size); err != nil {
				return false
			}
		}
		return f.BytesFree() == 4096 && f.Fragments() == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRoundSize(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 256}, {256, 256}, {257, 512}, {5000, 8192},
		{65536, 65536}, {60000, 61440},
	}
	for _, c := range cases {
		got, err := RoundSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("RoundSize(%d) = %d,%v, want %d", c.in, got, err, c.want)
		}
	}
	if _, err := RoundSize(65537); err == nil {
		t.Error("oversized object accepted")
	}
	if _, err := RoundSize(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestSARBlockSizes(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 8}, {8, 8}, {9, 16}, {100, 128}, {256, 256},
	}
	for _, c := range cases {
		got, err := BlockSizeFor(c.in)
		if err != nil || got != c.want {
			t.Errorf("BlockSizeFor(%d) = %d,%v, want %d", c.in, got, err, c.want)
		}
	}
	if _, err := BlockSizeFor(257); err == nil {
		t.Error("over-max block accepted")
	}
	if _, err := BlockSizeFor(0); err == nil {
		t.Error("zero block accepted")
	}
}

func TestSARPoolSplitAndCoalesce(t *testing.T) {
	p := NewSARPool()
	if p.FreeSARs() != SARsPerNode {
		t.Fatalf("fresh pool has %d SARs", p.FreeSARs())
	}
	s1, sz1, err := p.Alloc(8)
	if err != nil || sz1 != 8 || s1 != 0 {
		t.Fatalf("alloc = %d,%d,%v", s1, sz1, err)
	}
	if p.FreeSARs() != SARsPerNode-8 {
		t.Errorf("free = %d", p.FreeSARs())
	}
	if err := p.Free(s1); err != nil {
		t.Fatal(err)
	}
	if p.FreeSARs() != SARsPerNode {
		t.Errorf("after free, free = %d, want %d", p.FreeSARs(), SARsPerNode)
	}
	// After full coalescing we must again be able to grab two 256 blocks.
	a, _, err := p.Alloc(256)
	if err != nil {
		t.Fatalf("big alloc 1: %v", err)
	}
	b, _, err := p.Alloc(256)
	if err != nil {
		t.Fatalf("big alloc 2: %v", err)
	}
	if a == b {
		t.Error("same block allocated twice")
	}
	if _, _, err := p.Alloc(8); err != ErrNoSARs {
		t.Errorf("expected exhaustion, got %v", err)
	}
}

func TestSARPoolProperty(t *testing.T) {
	// Property: random alloc/free never double-allocates registers and
	// always coalesces back to two top-level blocks.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewSARPool()
		type blk struct{ start, size int }
		var live []blk
		inUse := map[int]bool{}
		for step := 0; step < 100; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				n := 1 + rng.Intn(256)
				start, size, err := p.Alloc(n)
				if err != nil {
					continue
				}
				for r := start; r < start+size; r++ {
					if inUse[r] {
						return false
					}
					inUse[r] = true
				}
				live = append(live, blk{start, size})
			} else {
				i := rng.Intn(len(live))
				if err := p.Free(live[i].start); err != nil {
					return false
				}
				for r := live[i].start; r < live[i].start+live[i].size; r++ {
					delete(inUse, r)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, b := range live {
			if err := p.Free(b.start); err != nil {
				return false
			}
		}
		return p.FreeSARs() == SARsPerNode
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSARFreeUnallocated(t *testing.T) {
	p := NewSARPool()
	if err := p.Free(0); err == nil {
		t.Error("free of unallocated block accepted")
	}
}

func TestAddressSpace(t *testing.T) {
	pool := NewSARPool()
	as, err := NewAddressSpace(pool, 10) // gets a block of 16
	if err != nil {
		t.Fatal(err)
	}
	if as.Capacity() != 16 {
		t.Errorf("capacity = %d, want 16", as.Capacity())
	}
	slot, err := as.Map(3, 0, 65536)
	if err != nil {
		t.Fatal(err)
	}
	seg := as.Segment(slot)
	if seg == nil || seg.Node != 3 || seg.Bytes != 65536 {
		t.Errorf("segment = %+v", seg)
	}
	if as.Mapped() != 1 {
		t.Errorf("mapped = %d", as.Mapped())
	}
	if err := as.Unmap(slot); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(slot); err == nil {
		t.Error("double unmap accepted")
	}
	if err := as.Release(); err != nil {
		t.Fatal(err)
	}
	if pool.FreeSARs() != SARsPerNode {
		t.Errorf("pool not restored: %d", pool.FreeSARs())
	}
}

func TestAddressSpaceFull(t *testing.T) {
	pool := NewSARPool()
	as, err := NewAddressSpace(pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := as.Map(0, i*100, 256); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	if _, err := as.Map(0, 0, 256); err != ErrAddressSpaceFull {
		t.Errorf("err = %v, want ErrAddressSpaceFull", err)
	}
}

func TestTwoProcessSixteenMegabyteLimit(t *testing.T) {
	// §2.1: "the virtual address space of a process could include at most
	// 16 Mbytes ... and then only if there were at most two processes per
	// processor". Two full 256-SAR address spaces exhaust the node's pool.
	pool := NewSARPool()
	a, err := NewAddressSpace(pool, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAddressSpace(pool, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := NewAddressSpace(pool, 8); err != ErrNoSARs {
		t.Errorf("third process got SARs: %v", err)
	}
	maxBytes := a.Capacity() * MaxSegmentBytes
	if maxBytes != 16*1024*1024 {
		t.Errorf("max address space = %d bytes, want 16 MB", maxBytes)
	}
}
