// Package memory models Butterfly-I per-node memory: a single-ported memory
// module shared between the local processor and remote references arriving
// through the switch (the source of the paper's cycle-stealing contention), a
// first-fit storage allocator per module, and the PNC's segmented virtual
// memory: SARs (Segment Attribute Registers) allocated in buddy-system blocks
// and address spaces of at most 256 segments of at most 64 Kbytes each.
package memory

import (
	"errors"
	"fmt"
	"sort"

	"butterfly/internal/calendar"
	"butterfly/internal/probe"
)

// Module is one node's memory: a single server with a fixed per-word cycle
// time. Local and remote references contend for the same port, so heavy
// remote traffic inflates the owning processor's local access times — the
// effect §4.1 of the paper calls "stealing memory cycles".
type Module struct {
	// Node is the owning node's index.
	Node int
	// CycleNs is the service time for one 32-bit word, in nanoseconds.
	CycleNs int64
	// Size is the module capacity in bytes (1 MB standard, 4 MB expanded).
	Size int

	cal   calendar.Calendar
	alloc *FirstFit
	stats ModuleStats
	// failed marks the module dead (its node was failed by the fault
	// injector): allocation requests are rejected. Reference-level rejection
	// is handled above, in the machine layer, which knows the issuer.
	failed bool
	// probe, when non-nil, observes every reference served (occupancy,
	// queueing delay, local/remote origin). Purely observational.
	probe *probe.Probe
}

// SetProbe attaches an observability probe (nil detaches).
func (m *Module) SetProbe(p *probe.Probe) { m.probe = p }

// ModuleStats counts traffic through one memory module.
type ModuleStats struct {
	LocalWords   uint64
	RemoteWords  uint64
	WaitNs       int64 // total queueing delay inflicted on references
	LocalWaitNs  int64 // portion of WaitNs suffered by local references
	RemoteWaitNs int64
}

// NewModule creates a memory module of the given capacity.
func NewModule(node int, size int, cycleNs int64) *Module {
	return &Module{Node: node, CycleNs: cycleNs, Size: size, alloc: NewFirstFit(size)}
}

// Service performs a reference of the given number of words arriving at
// virtual time now. It returns the time service starts (after any queueing
// behind earlier references) and the time it completes. local marks whether
// the reference came from the owning processor (for the stats split only —
// the port makes no distinction, which is exactly the Butterfly's problem).
//
// Higher layers may pre-book references into the virtual future; the module
// therefore keeps a reservation calendar rather than a scalar busy-until, so
// a reference arriving at an earlier virtual time backfills idle gaps
// instead of queueing behind the whole booked schedule.
func (m *Module) Service(now int64, words int, local bool) (start, done int64) {
	if words <= 0 {
		words = 1
	}
	dur := int64(words) * m.CycleNs
	start = m.cal.Reserve(now, dur)
	if wait := start - now; wait > 0 {
		m.stats.WaitNs += wait
		if local {
			m.stats.LocalWaitNs += wait
		} else {
			m.stats.RemoteWaitNs += wait
		}
	}
	done = start + dur
	if local {
		m.stats.LocalWords += uint64(words)
	} else {
		m.stats.RemoteWords += uint64(words)
	}
	if pr := m.probe; pr != nil {
		pr.MemRef(start, dur, start-now, m.Node, words, local)
	}
	return start, done
}

// ServiceRun performs words independent one-word references issued
// back-to-back with a fixed gap between them: reference i+1 arrives gap
// nanoseconds after reference i completes (the PNC's word-at-a-time remote
// pattern, where the gap is the network round trip plus request overhead).
// It is an exact, single-pass fold of words sequential Service(_, 1, _)
// calls and returns the completion time of the last word.
func (m *Module) ServiceRun(now int64, words int, gap int64, local bool) (done int64) {
	if words <= 0 {
		words = 1
	}
	lastStart, wait := m.cal.ReserveRun(now, m.CycleNs, gap, words)
	if wait > 0 {
		m.stats.WaitNs += wait
		if local {
			m.stats.LocalWaitNs += wait
		} else {
			m.stats.RemoteWaitNs += wait
		}
	}
	if local {
		m.stats.LocalWords += uint64(words)
	} else {
		m.stats.RemoteWords += uint64(words)
	}
	if pr := m.probe; pr != nil {
		// One aggregate event for the whole run: the span starts at arrival
		// and Dur is the true occupancy (the per-word gaps are elided).
		pr.MemRef(now, int64(words)*m.CycleNs, wait, m.Node, words, local)
	}
	return lastStart + m.CycleNs
}

// BeginBatch opens a placement batch on the module's calendar: subsequent
// ServiceBatch/ServiceRunBatch calls place reservations without mutating
// the schedule, and CommitBatch splices them in with one merge pass. The
// caller must issue a monotone flow (each reference arriving at or after
// the previous one's completion) and commit before any other process can
// touch the module — e.g. within a single engine event.
func (m *Module) BeginBatch() { m.cal.BeginBatch() }

// InBatch reports whether a placement batch is open.
func (m *Module) InBatch() bool { return m.cal.InBatch() }

// CommitBatch splices the open batch into the schedule.
func (m *Module) CommitBatch() { m.cal.CommitBatch() }

// CommitBatchScratch is CommitBatch with shared merge scratch.
func (m *Module) CommitBatchScratch(s *calendar.Scratch) { m.cal.CommitBatchScratch(s) }

// ServiceBatch is Service within the open placement batch.
func (m *Module) ServiceBatch(now int64, words int, local bool) (start, done int64) {
	if words <= 0 {
		words = 1
	}
	dur := int64(words) * m.CycleNs
	start = m.cal.BatchReserve(now, dur)
	if wait := start - now; wait > 0 {
		m.stats.WaitNs += wait
		if local {
			m.stats.LocalWaitNs += wait
		} else {
			m.stats.RemoteWaitNs += wait
		}
	}
	done = start + dur
	if local {
		m.stats.LocalWords += uint64(words)
	} else {
		m.stats.RemoteWords += uint64(words)
	}
	if pr := m.probe; pr != nil {
		pr.MemRef(start, dur, start-now, m.Node, words, local)
	}
	return start, done
}

// ServiceRunBatch is ServiceRun within the open placement batch.
func (m *Module) ServiceRunBatch(now int64, words int, gap int64, local bool) (done int64) {
	if words <= 0 {
		words = 1
	}
	lastStart, wait := m.cal.BatchReserveRun(now, m.CycleNs, gap, words)
	if wait > 0 {
		m.stats.WaitNs += wait
		if local {
			m.stats.LocalWaitNs += wait
		} else {
			m.stats.RemoteWaitNs += wait
		}
	}
	if local {
		m.stats.LocalWords += uint64(words)
	} else {
		m.stats.RemoteWords += uint64(words)
	}
	if pr := m.probe; pr != nil {
		pr.MemRef(now, int64(words)*m.CycleNs, wait, m.Node, words, local)
	}
	return lastStart + m.CycleNs
}

// Prune discards reservations that ended before now (no future reference
// can arrive earlier); the machine calls it periodically to bound calendar
// size.
func (m *Module) Prune(now int64) { m.cal.PruneBefore(now) }

// Stats returns a copy of the module's counters.
func (m *Module) Stats() ModuleStats { return m.stats }

// ResetStats zeroes the counters (occupancy is retained).
func (m *Module) ResetStats() { m.stats = ModuleStats{} }

// SetFailed marks the module dead or alive. A dead module rejects storage
// allocation; the machine layer additionally fails every reference to it.
func (m *Module) SetFailed(failed bool) { m.failed = failed }

// Failed reports whether the module has been marked dead.
func (m *Module) Failed() bool { return m.failed }

// ErrModuleFailed is returned by Alloc on a dead module.
var ErrModuleFailed = errors.New("memory: module failed")

// Alloc reserves size bytes in the module and returns the byte offset.
func (m *Module) Alloc(size int) (int, error) {
	if m.failed {
		return 0, ErrModuleFailed
	}
	return m.alloc.Alloc(size)
}

// Free releases a previously allocated range.
func (m *Module) Free(off, size int) error { return m.alloc.Free(off, size) }

// BytesFree reports the remaining unallocated capacity.
func (m *Module) BytesFree() int { return m.alloc.BytesFree() }

// FirstFit is a simple address-ordered first-fit free-list allocator, after
// the serial allocator whose contention Ellis and Olson's parallel first-fit
// work (cited in §3.3) set out to fix. The time cost of allocation is charged
// by the layer above; this type provides only the placement machinery.
type FirstFit struct {
	size int
	free []span // address-ordered, coalesced
}

type span struct{ off, len int }

// NewFirstFit creates an allocator managing [0, size).
func NewFirstFit(size int) *FirstFit {
	return &FirstFit{size: size, free: []span{{0, size}}}
}

// ErrNoMemory is returned when no free span can satisfy a request.
var ErrNoMemory = errors.New("memory: out of storage")

// Alloc finds the first free span large enough and carves the request from
// its front.
func (f *FirstFit) Alloc(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memory: bad allocation size %d", size)
	}
	for i := range f.free {
		if f.free[i].len >= size {
			off := f.free[i].off
			f.free[i].off += size
			f.free[i].len -= size
			if f.free[i].len == 0 {
				f.free = append(f.free[:i], f.free[i+1:]...)
			}
			return off, nil
		}
	}
	return 0, ErrNoMemory
}

// Free returns a range to the free list, coalescing with neighbours. It
// rejects ranges that overlap existing free space (double free).
func (f *FirstFit) Free(off, size int) error {
	if size <= 0 || off < 0 || off+size > f.size {
		return fmt.Errorf("memory: bad free [%d,%d)", off, off+size)
	}
	i := sort.Search(len(f.free), func(i int) bool { return f.free[i].off >= off })
	if i < len(f.free) && off+size > f.free[i].off {
		return fmt.Errorf("memory: double free at %d", off)
	}
	if i > 0 && f.free[i-1].off+f.free[i-1].len > off {
		return fmt.Errorf("memory: double free at %d", off)
	}
	f.free = append(f.free, span{})
	copy(f.free[i+1:], f.free[i:])
	f.free[i] = span{off, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(f.free) && f.free[i].off+f.free[i].len == f.free[i+1].off {
		f.free[i].len += f.free[i+1].len
		f.free = append(f.free[:i+1], f.free[i+2:]...)
	}
	if i > 0 && f.free[i-1].off+f.free[i-1].len == f.free[i].off {
		f.free[i-1].len += f.free[i].len
		f.free = append(f.free[:i], f.free[i+1:]...)
	}
	return nil
}

// BytesFree reports total free capacity.
func (f *FirstFit) BytesFree() int {
	n := 0
	for _, s := range f.free {
		n += s.len
	}
	return n
}

// Fragments reports the number of disjoint free spans (for fragmentation
// experiments and tests).
func (f *FirstFit) Fragments() int { return len(f.free) }
