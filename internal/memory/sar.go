package memory

import (
	"errors"
	"fmt"
)

// Butterfly-I segmented virtual memory constants (§2.1 of the paper).
const (
	// SARsPerNode is the number of Segment Attribute Registers per processor.
	SARsPerNode = 512
	// MinSARBlock is the smallest allocatable block of SARs; blocks come in
	// sizes 8, 16, 32, 64, 128, 256 arranged in a buddy system.
	MinSARBlock = 8
	// MaxSARBlock is the largest SAR block (and the maximum number of
	// segments in one process's address space).
	MaxSARBlock = 256
	// MaxSegmentBytes is the largest segment a SAR can describe (16-bit
	// offsets).
	MaxSegmentBytes = 64 * 1024
)

// StandardSizes are the 16 standard memory-object sizes of Chrysalis
// (footnote 3 of the paper: "segments can only be allocated in 16 standard
// sizes", odd sizes round up, leaving an inaccessible fragment). The exact
// table is not published; this is a plausible reconstruction spanning 256 B
// to 64 KB.
var StandardSizes = []int{
	256, 512, 1024, 2048, 4096, 8192, 12288, 16384,
	20480, 24576, 32768, 40960, 49152, 57344, 61440, 65536,
}

// RoundSize rounds a requested object size up to the next standard size.
// It returns an error for sizes above 64 KB (a single Chrysalis memory
// object cannot exceed one segment).
func RoundSize(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("memory: negative size %d", n)
	}
	if n == 0 {
		return 0, nil // zero-length objects are legal in Chrysalis
	}
	for _, s := range StandardSizes {
		if n <= s {
			return s, nil
		}
	}
	return 0, fmt.Errorf("memory: object size %d exceeds the %d-byte segment limit", n, MaxSegmentBytes)
}

// ErrNoSARs is returned when the buddy pool cannot satisfy a block request.
var ErrNoSARs = errors.New("memory: out of SARs")

// SARPool is the per-node pool of 512 SARs, handed out in power-of-two buddy
// blocks of 8..256 registers. Chrysalis allocates each process a static block
// at creation; the block size (one of 8, 16, 32, 64, 128, 256) is encoded in
// the process's ASAR.
type SARPool struct {
	// freeByOrder[k] holds the start indices of free blocks of size
	// MinSARBlock<<k, for k in 0..5.
	freeByOrder [6][]int
	allocated   map[int]int // start -> order, for validation
}

// NewSARPool creates a full pool of SARsPerNode registers.
func NewSARPool() *SARPool {
	p := &SARPool{allocated: make(map[int]int)}
	// 512 = 2 blocks of 256.
	top := len(p.freeByOrder) - 1
	for start := 0; start < SARsPerNode; start += MaxSARBlock {
		p.freeByOrder[top] = append(p.freeByOrder[top], start)
	}
	return p
}

// orderFor returns the buddy order for a block of at least n SARs.
func orderFor(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memory: bad SAR block size %d", n)
	}
	size := MinSARBlock
	for k := 0; k < 6; k++ {
		if n <= size {
			return k, nil
		}
		size <<= 1
	}
	return 0, fmt.Errorf("memory: SAR block size %d exceeds %d", n, MaxSARBlock)
}

// BlockSizeFor reports the actual block size allocated for a request of n
// segments (the next power-of-two multiple of 8, at least 8, at most 256).
func BlockSizeFor(n int) (int, error) {
	k, err := orderFor(n)
	if err != nil {
		return 0, err
	}
	return MinSARBlock << k, nil
}

// Alloc reserves a buddy block with room for at least n SARs and returns its
// starting register index and actual size.
func (p *SARPool) Alloc(n int) (start, size int, err error) {
	k, err := orderFor(n)
	if err != nil {
		return 0, 0, err
	}
	// Find the smallest free order >= k, splitting down as needed.
	j := k
	for j < len(p.freeByOrder) && len(p.freeByOrder[j]) == 0 {
		j++
	}
	if j == len(p.freeByOrder) {
		return 0, 0, ErrNoSARs
	}
	// Pop the lowest-addressed block at order j for determinism.
	idx := minIndex(p.freeByOrder[j])
	start = p.freeByOrder[j][idx]
	p.freeByOrder[j] = append(p.freeByOrder[j][:idx], p.freeByOrder[j][idx+1:]...)
	for j > k {
		j--
		// Split: keep the low half, free the high half.
		buddy := start + MinSARBlock<<j
		p.freeByOrder[j] = append(p.freeByOrder[j], buddy)
	}
	p.allocated[start] = k
	return start, MinSARBlock << k, nil
}

// Free returns a block to the pool, coalescing buddies.
func (p *SARPool) Free(start int) error {
	k, ok := p.allocated[start]
	if !ok {
		return fmt.Errorf("memory: SAR free of unallocated block at %d", start)
	}
	delete(p.allocated, start)
	for k < len(p.freeByOrder)-1 {
		size := MinSARBlock << k
		buddy := start ^ size
		found := -1
		for i, b := range p.freeByOrder[k] {
			if b == buddy {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		p.freeByOrder[k] = append(p.freeByOrder[k][:found], p.freeByOrder[k][found+1:]...)
		if buddy < start {
			start = buddy
		}
		k++
	}
	p.freeByOrder[k] = append(p.freeByOrder[k], start)
	return nil
}

// FreeSARs reports how many registers remain unallocated.
func (p *SARPool) FreeSARs() int {
	n := 0
	for k, blocks := range p.freeByOrder {
		n += len(blocks) * (MinSARBlock << k)
	}
	return n
}

func minIndex(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// AddressSpace models one process's segment map: a SAR block plus the set of
// currently mapped memory objects. Mapping and unmapping are the operations
// whose ~1 ms cost (§2.1) forced Butterfly programmers to manage address
// spaces explicitly; the time is charged by the Chrysalis layer.
type AddressSpace struct {
	pool     *SARPool
	start    int // SAR block start
	capacity int // SAR block size
	segments map[int]*Segment
	nextSlot int
}

// Segment is one mapped memory object view.
type Segment struct {
	Slot   int // SAR index within the process's block
	Node   int // node whose module holds the object
	Offset int // byte offset within the module
	Bytes  int // rounded (standard) size
}

// NewAddressSpace allocates a SAR block of at least nSegs segments from the
// pool. The paper notes a process can have at most 256 segments.
func NewAddressSpace(pool *SARPool, nSegs int) (*AddressSpace, error) {
	start, size, err := pool.Alloc(nSegs)
	if err != nil {
		return nil, err
	}
	return &AddressSpace{
		pool:     pool,
		start:    start,
		capacity: size,
		segments: make(map[int]*Segment),
	}, nil
}

// Capacity returns the number of SARs in the process's block.
func (a *AddressSpace) Capacity() int { return a.capacity }

// Mapped returns the number of currently mapped segments.
func (a *AddressSpace) Mapped() int { return len(a.segments) }

// ErrAddressSpaceFull is returned when every SAR in the block is in use.
var ErrAddressSpaceFull = errors.New("memory: address space full (no free SAR)")

// Map installs a view of an object into the first free SAR slot and returns
// the slot index.
func (a *AddressSpace) Map(node, offset, bytes int) (int, error) {
	if len(a.segments) >= a.capacity {
		return 0, ErrAddressSpaceFull
	}
	// First free slot, scanning from nextSlot for O(1) amortized behaviour.
	for i := 0; i < a.capacity; i++ {
		slot := (a.nextSlot + i) % a.capacity
		if _, used := a.segments[slot]; !used {
			a.segments[slot] = &Segment{Slot: slot, Node: node, Offset: offset, Bytes: bytes}
			a.nextSlot = (slot + 1) % a.capacity
			return slot, nil
		}
	}
	return 0, ErrAddressSpaceFull
}

// Unmap removes the segment in the given slot.
func (a *AddressSpace) Unmap(slot int) error {
	if _, ok := a.segments[slot]; !ok {
		return fmt.Errorf("memory: unmap of empty slot %d", slot)
	}
	delete(a.segments, slot)
	return nil
}

// Segment returns the mapping in a slot, or nil.
func (a *AddressSpace) Segment(slot int) *Segment { return a.segments[slot] }

// Release returns the SAR block to the pool. The address space must not be
// used afterwards.
func (a *AddressSpace) Release() error {
	return a.pool.Free(a.start)
}
