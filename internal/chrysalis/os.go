// Package chrysalis models BBN's Chrysalis operating system (§2.2 of the
// paper): heavyweight processes that do not migrate, memory objects mapped
// into segmented address spaces at ~1 ms per map/unmap, microcoded events and
// dual queues that complete in tens of microseconds, spin locks over atomic
// memory operations, MacLISP-style catch/throw exception handling at ~70 µs
// per protected block, and a uniform object model with ownership hierarchies
// and reference counts — including the infamous "transfer ownership to the
// system" facility that makes Chrysalis leak storage.
//
// The package charges the published costs (Dibble's BPR 18 benchmarks, cited
// throughout §2 and §3.3) against the simulated machine, so higher layers
// (Uniform System, SMP, Lynx, Ant Farm) inherit realistic primitive costs.
package chrysalis

import (
	"errors"
	"fmt"

	"butterfly/internal/machine"
	"butterfly/internal/memory"
	"butterfly/internal/sim"
)

// Costs is the calibration table for Chrysalis primitives, in nanoseconds.
// Defaults follow the paper: events and dual queues "complete in only tens of
// microseconds"; mapping or unmapping a segment costs "over 1 ms"; entering
// and leaving a protected (catch) block costs "about 70 µs"; process creation
// is orders of magnitude more expensive and partly serialized on shared
// system resources such as process templates (§4.1, Crowd Control).
type Costs struct {
	EventPost   int64
	EventWait   int64 // charged when the event is already posted; blocking waits charge on wake
	DualEnqueue int64
	DualDequeue int64
	MakeObj     int64
	MapObj      int64
	UnmapObj    int64
	CatchEnter  int64
	CatchExit   int64
	Throw       int64
	// ProcCreateLocal is the parallelizable part of process creation
	// (building the address space, loading state) charged to the creator.
	ProcCreateLocal int64
	// ProcCreateSerial is the serial section: every creation in the machine
	// holds the global process-template resource for this long. This is the
	// Amdahl bottleneck the Crowd Control package runs into.
	ProcCreateSerial int64
	ProcDestroy      int64
}

// DefaultCosts returns the Butterfly-I calibration.
func DefaultCosts() Costs {
	return Costs{
		EventPost:        20 * sim.Microsecond,
		EventWait:        25 * sim.Microsecond,
		DualEnqueue:      30 * sim.Microsecond,
		DualDequeue:      35 * sim.Microsecond,
		MakeObj:          500 * sim.Microsecond,
		MapObj:           1100 * sim.Microsecond,
		UnmapObj:         1000 * sim.Microsecond,
		CatchEnter:       35 * sim.Microsecond,
		CatchExit:        35 * sim.Microsecond,
		Throw:            150 * sim.Microsecond,
		ProcCreateLocal:  21 * sim.Millisecond,
		ProcCreateSerial: 4 * sim.Millisecond,
		ProcDestroy:      5 * sim.Millisecond,
	}
}

// OS is one Chrysalis instance managing a machine.
type OS struct {
	M     *machine.Machine
	Costs Costs

	objects  map[ObjID]*Object
	nextID   ObjID
	leaked   int // bytes owned by "the system", never reclaimed
	template serialServer
	perNode  []int // process count per node

	procs []*Process
}

// serialServer models a serially accessed system resource (the process
// template). Requests queue in virtual time.
type serialServer struct {
	busyUntil int64
}

// acquireFor returns the extra waiting time a request arriving at now incurs
// and marks the server busy for holdNs beyond the start of service.
func (s *serialServer) acquireFor(now, holdNs int64) (wait int64) {
	start := now
	if s.busyUntil > start {
		wait = s.busyUntil - start
		start = s.busyUntil
	}
	s.busyUntil = start + holdNs
	return wait
}

// New boots Chrysalis on a machine.
func New(m *machine.Machine) *OS {
	return &OS{
		M:       m,
		Costs:   DefaultCosts(),
		objects: make(map[ObjID]*Object),
		perNode: make([]int, m.N()),
	}
}

// Process is a Chrysalis heavyweight process: a simulated process plus a
// segmented address space and an ownership root for the objects it creates.
type Process struct {
	P    *sim.Proc
	OS   *OS
	AS   *memory.AddressSpace
	Root *Object // ownership root; deleting it reclaims the process's objects

	sarCacheHits int64
}

// ErrTooManyProcesses is returned when a node's SAR pool cannot host another
// process's address space.
var ErrTooManyProcesses = errors.New("chrysalis: node out of SARs for new process")

// MakeProcess creates a process on the given node with an address space of
// at least nSegs segments. creator, if non-nil, is charged the creation cost
// including queueing on the serial template resource; a nil creator models
// initial-boot creation and charges nothing. body runs as the new process.
func (os *OS) MakeProcess(creator *sim.Proc, name string, node, nSegs int, body func(self *Process)) (*Process, error) {
	if creator != nil {
		// Flush the creator's local clock so the serial template resource is
		// acquired at the creator's true time.
		creator.Sync()
		wait := os.template.acquireFor(os.M.E.Now(), os.Costs.ProcCreateSerial)
		creator.Advance(wait + os.Costs.ProcCreateSerial + os.Costs.ProcCreateLocal)
		if pr := os.M.Probe(); pr != nil {
			pr.Prim(creator.LocalNow(), creator.ID, node, "make_process",
				wait+os.Costs.ProcCreateSerial+os.Costs.ProcCreateLocal)
		}
	}
	as, err := memory.NewAddressSpace(os.M.Nodes[node].SARs, nSegs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTooManyProcesses, err)
	}
	proc := &Process{OS: os}
	proc.Root = os.newObject(KindProcess, node, 0, nil)
	proc.AS = as
	proc.P = os.M.Spawn(name, node, func(p *sim.Proc) {
		body(proc)
	})
	proc.P.Ctx = proc
	os.perNode[node]++
	os.procs = append(os.procs, proc)
	return proc, nil
}

// Self returns the Chrysalis process owning a simulated process, or nil for
// raw engine processes.
func Self(p *sim.Proc) *Process {
	if pr, ok := p.Ctx.(*Process); ok {
		return pr
	}
	return nil
}

// DestroyProcess tears down a process's address space and reclaims every
// object it still owns (the ownership hierarchy of §2.2). The process itself
// must have finished or be about to exit; caller is charged the destroy cost.
func (os *OS) DestroyProcess(caller *sim.Proc, pr *Process) {
	if caller != nil {
		caller.Advance(os.Costs.ProcDestroy)
		if p := os.M.Probe(); p != nil {
			p.Prim(caller.LocalNow(), caller.ID, pr.P.Node, "destroy_process", os.Costs.ProcDestroy)
		}
	}
	os.DeleteObj(nil, pr.Root)
	if pr.AS != nil {
		_ = pr.AS.Release()
		pr.AS = nil
	}
	os.perNode[pr.P.Node]--
}

// ProcsOnNode reports how many live processes a node hosts.
func (os *OS) ProcsOnNode(node int) int { return os.perNode[node] }

// Processes returns every process created so far.
func (os *OS) Processes() []*Process { return os.procs }

// LeakedBytes reports storage owned by "the system" that will never be
// reclaimed — the leak the paper complains about.
func (os *OS) LeakedBytes() int { return os.leaked }
