package chrysalis

import (
	"testing"

	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// TestCatchRethrowInHandler models the common Chrysalis idiom of catching an
// exception, doing local cleanup, and rethrowing it to the caller's handler:
// the rethrown value must unwind to the next enclosing Catch with its code
// and message intact.
func TestCatchRethrowInHandler(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		cleaned := false
		outer := os.Catch(self.P, func() {
			inner := os.Catch(self.P, func() {
				os.Throw(self.P, 0x42, "dual queue overflow")
			})
			if inner == nil {
				t.Fatal("inner handler saw nothing")
			}
			cleaned = true
			os.Throw(self.P, inner.Code, inner.Msg) // rethrow after cleanup
		})
		if !cleaned {
			t.Error("handler cleanup did not run before the rethrow")
		}
		if outer == nil || outer.Code != 0x42 || outer.Msg != "dual queue overflow" {
			t.Errorf("rethrown exception mangled: %+v", outer)
		}
	})
}

// TestUncaughtThrowTerminatesProcess pins the no-handler path: a throw
// outside any protected block terminates the throwing process only (the real
// system suspends it for a debugger), never the machine. Sibling processes
// keep running and the engine completes normally.
func TestUncaughtThrowTerminatesProcess(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	var afterThrow, siblingRan bool
	thrower, err := os.MakeProcess(nil, "thrower", 1, 16, func(self *Process) {
		self.P.Advance(10 * sim.Microsecond)
		os.Throw(self.P, 0x13, "unhandled segment violation")
		afterThrow = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.MakeProcess(nil, "sibling", 2, 16, func(self *Process) {
		self.P.Advance(1 * sim.Millisecond)
		siblingRan = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v (an uncaught throw must never crash the machine)", err)
	}
	if afterThrow {
		t.Error("code after an uncaught throw executed")
	}
	if !siblingRan {
		t.Error("sibling process did not survive the uncaught throw")
	}
	if !thrower.P.Done() {
		t.Error("throwing process never completed")
	}
	te, ok := thrower.P.Fatal().(*ThrowError)
	if !ok || te.Code != 0x13 {
		t.Errorf("Fatal() = %#v, want the uncaught ThrowError", thrower.P.Fatal())
	}
}

// TestCatchConvertsInjectedFaults verifies the trap-handler path: a hardware
// fault (fault.RefError) raised inside a protected block surfaces as an
// ordinary Chrysalis exception carrying the matching 0x70x code.
func TestCatchConvertsInjectedFaults(t *testing.T) {
	cases := []struct {
		kind fault.Kind
		code int
	}{
		{fault.NodeDown, CodeNodeDown},
		{fault.PacketLoss, CodePacketLoss},
		{fault.Parity, CodeParity},
	}
	boot(t, 2, func(os *OS, self *Process) {
		for _, tc := range cases {
			caught := os.Catch(self.P, func() {
				panic(&fault.RefError{Kind: tc.kind, Node: 1, Time: self.P.LocalNow()})
			})
			if caught == nil {
				t.Fatalf("fault kind %v not converted to an exception", tc.kind)
			}
			if caught.Code != tc.code {
				t.Errorf("fault kind %v → code %#x, want %#x", tc.kind, caught.Code, tc.code)
			}
		}
	})
}

// TestCatchPassesForeignPanics: a panic that is neither a ThrowError nor a
// RefError is a simulator bug, not a modelled exception — Catch must not
// swallow it.
func TestCatchPassesForeignPanics(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		defer func() {
			if recover() == nil {
				t.Error("Catch swallowed a foreign panic")
			}
		}()
		os.Catch(self.P, func() { panic("simulator bug") })
	})
}
