package chrysalis

import (
	"fmt"

	"butterfly/internal/sim"
)

// ThrowError is the exception value carried by a Chrysalis throw. In the
// event of an error — detected by hardware (trap handler) or software
// (kernel call or user program) — Chrysalis unwinds the stack to the nearest
// exception handler.
type ThrowError struct {
	Code int
	Msg  string
}

// Error implements the error interface.
func (t *ThrowError) Error() string {
	return fmt.Sprintf("chrysalis throw %d: %s", t.Code, t.Msg)
}

// Catch runs body inside a protected block, modelled after the MacLISP
// catch/throw mechanism Chrysalis borrowed. Entering and leaving the block
// costs about 70 µs in total — expensive enough that "a highly-tuned program
// must have every possible catch block removed from its critical path". A
// throw inside body (including nested calls) unwinds to this Catch, which
// returns the ThrowError; a normal completion returns nil.
func (os *OS) Catch(p *sim.Proc, body func()) (caught *ThrowError) {
	p.Charge(os.Costs.CatchEnter)
	if pr := os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, p.Node, "catch", os.Costs.CatchEnter+os.Costs.CatchExit)
	}
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(*ThrowError); ok {
				caught = te
				return
			}
			panic(r)
		}
	}()
	defer p.Advance(os.Costs.CatchExit)
	body()
	return nil
}

// Throw unwinds to the nearest enclosing Catch on this process's stack.
// Throwing outside any protected block is a fatal error (the real system
// would suspend the process for a debugger; we panic).
func (os *OS) Throw(p *sim.Proc, code int, msg string) {
	p.Advance(os.Costs.Throw)
	if pr := os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, p.Node, "throw", os.Costs.Throw)
	}
	panic(&ThrowError{Code: code, Msg: msg})
}
