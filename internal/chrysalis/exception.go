package chrysalis

import (
	"fmt"

	"butterfly/internal/fault"
	"butterfly/internal/sim"
)

// ThrowError is the exception value carried by a Chrysalis throw. In the
// event of an error — detected by hardware (trap handler) or software
// (kernel call or user program) — Chrysalis unwinds the stack to the nearest
// exception handler.
type ThrowError struct {
	Code int
	Msg  string
}

// Error implements the error interface.
func (t *ThrowError) Error() string {
	return fmt.Sprintf("chrysalis throw %d: %s", t.Code, t.Msg)
}

// TerminatesProcess implements sim.Terminator: a throw with no enclosing
// Catch terminates the throwing process (the real system would suspend it
// for a debugger), never the whole machine.
func (t *ThrowError) TerminatesProcess() bool { return true }

// Exception codes for hardware faults surfaced by the injector. The trap
// handler (Catch) converts a fault.RefError into a ThrowError carrying one
// of these, so application code catches injected faults exactly like any
// other Chrysalis exception.
const (
	CodeNodeDown   = 0x700 // remote reference to a failed node
	CodePacketLoss = 0x701 // switch packet dropped, PNC retries exhausted
	CodeParity     = 0x702 // memory-module parity error
)

// codeForFault maps an injected fault kind to its exception code.
func codeForFault(k fault.Kind) int {
	switch k {
	case fault.NodeDown:
		return CodeNodeDown
	case fault.PacketLoss:
		return CodePacketLoss
	case fault.Parity:
		return CodeParity
	}
	return CodeParity
}

// Catch runs body inside a protected block, modelled after the MacLISP
// catch/throw mechanism Chrysalis borrowed. Entering and leaving the block
// costs about 70 µs in total — expensive enough that "a highly-tuned program
// must have every possible catch block removed from its critical path". A
// throw inside body (including nested calls) unwinds to this Catch, which
// returns the ThrowError; a normal completion returns nil.
func (os *OS) Catch(p *sim.Proc, body func()) (caught *ThrowError) {
	p.Charge(os.Costs.CatchEnter)
	if pr := os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, p.Node, "catch", os.Costs.CatchEnter+os.Costs.CatchExit)
	}
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *ThrowError:
			caught = r
		case *fault.RefError:
			// Hardware trap inside the protected block: Chrysalis's trap
			// handler rethrows it as an ordinary exception.
			caught = &ThrowError{Code: codeForFault(r.Kind), Msg: r.Error()}
		default:
			panic(r)
		}
	}()
	defer p.Advance(os.Costs.CatchExit)
	body()
	return nil
}

// Throw unwinds to the nearest enclosing Catch on this process's stack.
// A throw outside any protected block terminates the throwing process (the
// real system would suspend it for a debugger): ThrowError implements
// sim.Terminator, so the engine completes the process and records the value,
// retrievable via Proc.Fatal.
func (os *OS) Throw(p *sim.Proc, code int, msg string) {
	p.Advance(os.Costs.Throw)
	if pr := os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, p.Node, "throw", os.Costs.Throw)
	}
	panic(&ThrowError{Code: code, Msg: msg})
}
