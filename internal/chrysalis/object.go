package chrysalis

import (
	"errors"
	"fmt"

	"butterfly/internal/memory"
	"butterfly/internal/sim"
)

// ObjID names a Chrysalis object globally. Names are guessable small
// integers; Chrysalis lets any process map any object it can name, a
// protection loophole the paper calls out, and this model preserves that.
type ObjID int

// Kind distinguishes the object types subsumed by Chrysalis's single object
// model.
type Kind int

// Object kinds.
const (
	KindMemory Kind = iota
	KindEvent
	KindDualQueue
	KindProcess
)

func (k Kind) String() string {
	switch k {
	case KindMemory:
		return "memory"
	case KindEvent:
		return "event"
	case KindDualQueue:
		return "dual queue"
	case KindProcess:
		return "process"
	}
	return "unknown"
}

// Object is a node in the uniform ownership hierarchy: every object has an
// owner (another object) and a reference count; deleting a parent reclaims
// its subsidiary objects. Transferring ownership to "the system" detaches an
// object permanently — it will never be reclaimed (storage leak).
type Object struct {
	ID   ObjID
	Kind Kind
	Node int
	// Off and Size locate a KindMemory object's storage within its node's
	// module. Size is the rounded (standard) size.
	Off, Size int

	owner    *Object
	children []*Object
	refs     int
	deleted  bool
	system   bool // owned by "the system"

	// payload points back to the typed wrapper (Event, DualQueue, ...).
	payload any
}

// newObject registers an object in the global name space.
func (os *OS) newObject(kind Kind, node, size int, owner *Object) *Object {
	os.nextID++
	o := &Object{ID: os.nextID, Kind: kind, Node: node, Size: size, owner: owner, refs: 1}
	if owner != nil {
		owner.children = append(owner.children, o)
	}
	os.objects[o.ID] = o
	return o
}

// Lookup finds an object by name. Any process may look up any object — names
// are easy to guess on the real system.
func (os *OS) Lookup(id ObjID) *Object {
	o := os.objects[id]
	if o == nil || o.deleted {
		return nil
	}
	return o
}

// ErrObjectDeleted is returned for operations on reclaimed objects.
var ErrObjectDeleted = errors.New("chrysalis: object has been deleted")

// MakeObj allocates a memory object of the given size (rounded up to one of
// the 16 standard sizes) in node's memory. The creating process p is charged
// the creation cost; owner defaults to the caller's process root when p
// belongs to a Chrysalis process and owner is nil.
func (os *OS) MakeObj(p *sim.Proc, node, size int, owner *Object) (*Object, error) {
	rounded, err := memory.RoundSize(size)
	if err != nil {
		return nil, err
	}
	if p != nil {
		p.Advance(os.Costs.MakeObj)
		if pr := os.M.Probe(); pr != nil {
			pr.Prim(p.LocalNow(), p.ID, node, "make_obj", os.Costs.MakeObj)
		}
	}
	off := 0
	if rounded > 0 {
		off, err = os.M.Nodes[node].Mem.Alloc(rounded)
		if err != nil {
			return nil, err
		}
	}
	if owner == nil && p != nil {
		if self := Self(p); self != nil {
			owner = self.Root
		}
	}
	o := os.newObject(KindMemory, node, rounded, owner)
	o.Off = off
	return o, nil
}

// DeleteObj removes an object and recursively reclaims everything it owns.
// Deleting a memory object frees its storage.
func (os *OS) DeleteObj(p *sim.Proc, o *Object) {
	if o == nil || o.deleted {
		return
	}
	o.deleted = true
	for _, c := range o.children {
		if !c.system {
			os.DeleteObj(nil, c)
		}
	}
	o.children = nil
	if o.Kind == KindMemory && o.Size > 0 {
		// Best effort; double frees cannot happen because deleted is set.
		_ = os.M.Nodes[o.Node].Mem.Free(o.Off, o.Size)
	}
	delete(os.objects, o.ID)
}

// TransferToSystem re-parents an object to "the system". The object becomes
// immortal: no ownership chain will ever reclaim it. The paper: "a facility
// for transferring ownership to 'the system' makes it easy to produce
// objects that are never reclaimed. Chrysalis tends to leak storage."
func (os *OS) TransferToSystem(o *Object) {
	if o.deleted || o.system {
		return
	}
	if o.owner != nil {
		for i, c := range o.owner.children {
			if c == o {
				o.owner.children = append(o.owner.children[:i], o.owner.children[i+1:]...)
				break
			}
		}
		o.owner = nil
	}
	o.system = true
	if o.Kind == KindMemory {
		os.leaked += o.Size
	}
}

// MapObj installs a memory object into the calling process's address space,
// consuming one SAR and over a millisecond of time — the recurring
// irritation of §2.1. It returns the SAR slot.
func (pr *Process) MapObj(o *Object) (int, error) {
	if o.deleted {
		return 0, ErrObjectDeleted
	}
	if o.Kind != KindMemory {
		return 0, fmt.Errorf("chrysalis: cannot map %s object", o.Kind)
	}
	pr.P.Advance(pr.OS.Costs.MapObj)
	if probe := pr.OS.M.Probe(); probe != nil {
		probe.Prim(pr.P.LocalNow(), pr.P.ID, o.Node, "map_obj", pr.OS.Costs.MapObj)
	}
	return pr.AS.Map(o.Node, o.Off, o.Size)
}

// UnmapObj removes a segment from the process's address space.
func (pr *Process) UnmapObj(slot int) error {
	pr.P.Advance(pr.OS.Costs.UnmapObj)
	if probe := pr.OS.M.Probe(); probe != nil {
		probe.Prim(pr.P.LocalNow(), pr.P.ID, pr.P.Node, "unmap_obj", pr.OS.Costs.UnmapObj)
	}
	return pr.AS.Unmap(slot)
}
