package chrysalis

import (
	"testing"

	"butterfly/internal/machine"
	"butterfly/internal/memory"
	"butterfly/internal/sim"
)

// boot builds a small machine + OS and one root process on node 0, runs body
// inside it, then runs the simulation.
func boot(t *testing.T, nodes int, body func(os *OS, self *Process)) *OS {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	os := New(m)
	if _, err := os.MakeProcess(nil, "root", 0, 16, func(self *Process) {
		body(os, self)
	}); err != nil {
		t.Fatalf("MakeProcess: %v", err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return os
}

func TestEventPostThenWait(t *testing.T) {
	boot(t, 4, func(os *OS, self *Process) {
		ev := os.NewEvent(self)
		ev.Post(self.P, 42)
		if !ev.Posted() {
			t.Error("event not posted")
		}
		if got := ev.Wait(self.P); got != 42 {
			t.Errorf("datum = %d, want 42", got)
		}
		if ev.Posted() {
			t.Error("event still posted after wait")
		}
	})
}

func TestEventWaitThenPost(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	var got uint32
	var when int64
	owner, err := os.MakeProcess(nil, "owner", 0, 16, func(self *Process) {
		ev := os.NewEvent(self)
		// Expose the event through the global name space.
		os.MakeProcess(self.P, "poster", 1, 16, func(other *Process) {
			other.P.Advance(1 * sim.Millisecond)
			ev.Post(other.P, 7)
		})
		got = ev.Wait(self.P)
		when = m.E.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = owner
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 7 {
		t.Errorf("datum = %d, want 7", got)
	}
	if when < 1*sim.Millisecond {
		t.Errorf("owner woke at %d, before the post", when)
	}
}

func TestEventOnlyOwnerWaits(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	panicked := false
	owner, _ := os.MakeProcess(nil, "owner", 0, 16, func(self *Process) {
		self.P.Advance(10 * sim.Millisecond)
	})
	ev := os.NewEvent(owner)
	os.MakeProcess(nil, "thief", 1, 16, func(other *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			other.P.Exit()
		}()
		ev.Wait(other.P)
	})
	_ = m.E.Run()
	if !panicked {
		t.Error("non-owner wait did not panic")
	}
}

func TestEventDoublePostOverwrites(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		ev := os.NewEvent(self)
		ev.Post(self.P, 1)
		ev.Post(self.P, 2)
		if got := ev.Wait(self.P); got != 2 {
			t.Errorf("datum = %d, want 2 (binary semantics)", got)
		}
	})
}

func TestDualQueueBuffersData(t *testing.T) {
	boot(t, 4, func(os *OS, self *Process) {
		q := os.NewDualQueue(0, self.Root)
		for i := uint32(0); i < 5; i++ {
			q.Enqueue(self.P, i*10)
		}
		if q.Len() != 5 {
			t.Errorf("len = %d, want 5", q.Len())
		}
		for i := uint32(0); i < 5; i++ {
			if got := q.Dequeue(self.P); got != i*10 {
				t.Errorf("dequeue %d = %d, want %d", i, got, i*10)
			}
		}
	})
}

func TestDualQueueBuffersWaiters(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	var got []uint32
	root, _ := os.MakeProcess(nil, "root", 0, 16, func(self *Process) {
		self.P.Advance(1)
	})
	q := os.NewDualQueue(0, root.Root)
	for i := 0; i < 3; i++ {
		os.MakeProcess(nil, "waiter", 1+i, 16, func(pr *Process) {
			got = append(got, q.Dequeue(pr.P))
		})
	}
	os.MakeProcess(nil, "producer", 0, 16, func(pr *Process) {
		pr.P.Advance(5 * sim.Millisecond) // let all three block
		if q.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", q.Waiters())
		}
		q.Enqueue(pr.P, 100)
		q.Enqueue(pr.P, 200)
		q.Enqueue(pr.P, 300)
	})
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []uint32{100, 200, 300} // FIFO: first waiter gets first datum
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

func TestDualQueueTryDequeue(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		q := os.NewDualQueue(0, self.Root)
		if _, ok := q.TryDequeue(self.P); ok {
			t.Error("TryDequeue on empty queue returned ok")
		}
		q.Enqueue(self.P, 9)
		if d, ok := q.TryDequeue(self.P); !ok || d != 9 {
			t.Errorf("TryDequeue = %d,%v", d, ok)
		}
	})
}

func TestSpinLock(t *testing.T) {
	m := machine.New(machine.DefaultConfig(8))
	os := New(m)
	lock := os.NewSpinLock(0)
	counter := 0
	for i := 0; i < 4; i++ {
		os.MakeProcess(nil, "worker", i, 16, func(pr *Process) {
			for j := 0; j < 10; j++ {
				lock.Lock(pr.P)
				v := counter
				pr.P.Advance(5 * sim.Microsecond) // critical section
				counter = v + 1
				lock.Unlock(pr.P)
			}
		})
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counter != 40 {
		t.Errorf("counter = %d, want 40 (mutual exclusion violated)", counter)
	}
}

func TestSpinLockUnlockByNonHolder(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		lock := os.NewSpinLock(0)
		defer func() {
			if recover() == nil {
				t.Error("unlock of unheld lock did not panic")
			}
			self.P.Exit()
		}()
		lock.Unlock(self.P)
	})
}

func TestCatchThrow(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		before := os.M.E.Now()
		caught := os.Catch(self.P, func() {
			self.P.Advance(1 * sim.Microsecond)
			os.Throw(self.P, 13, "segment violation")
			t.Error("code after throw executed")
		})
		if caught == nil || caught.Code != 13 {
			t.Fatalf("caught = %+v", caught)
		}
		if caught.Error() == "" {
			t.Error("empty error text")
		}
		// The protected block must have cost at least the 70 us entry/exit.
		if os.M.E.Now()-before < 70*sim.Microsecond {
			t.Errorf("catch block too cheap: %d ns", os.M.E.Now()-before)
		}
	})
}

func TestCatchNormalPath(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		ran := false
		if caught := os.Catch(self.P, func() { ran = true }); caught != nil {
			t.Errorf("unexpected catch: %v", caught)
		}
		if !ran {
			t.Error("body did not run")
		}
	})
}

func TestNestedCatch(t *testing.T) {
	boot(t, 2, func(os *OS, self *Process) {
		outer := os.Catch(self.P, func() {
			inner := os.Catch(self.P, func() {
				os.Throw(self.P, 1, "inner")
			})
			if inner == nil || inner.Code != 1 {
				t.Errorf("inner = %+v", inner)
			}
			os.Throw(self.P, 2, "outer")
		})
		if outer == nil || outer.Code != 2 {
			t.Errorf("outer = %+v", outer)
		}
	})
}

func TestMakeObjAndMap(t *testing.T) {
	boot(t, 4, func(os *OS, self *Process) {
		obj, err := os.MakeObj(self.P, 2, 5000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if obj.Size != 8192 { // rounded to standard size
			t.Errorf("size = %d, want 8192", obj.Size)
		}
		if os.Lookup(obj.ID) != obj {
			t.Error("lookup failed")
		}
		before := os.M.E.Now()
		slot, err := self.MapObj(obj)
		if err != nil {
			t.Fatal(err)
		}
		if os.M.E.Now()-before < 1*sim.Millisecond {
			t.Error("map cost under 1 ms")
		}
		seg := self.AS.Segment(slot)
		if seg == nil || seg.Node != 2 {
			t.Errorf("segment = %+v", seg)
		}
		if err := self.UnmapObj(slot); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOwnershipReclamation(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	var child *Object
	pr, err := os.MakeProcess(nil, "p", 0, 16, func(self *Process) {
		var err error
		child, err = os.MakeObj(self.P, 0, 1000, nil)
		if err != nil {
			t.Errorf("MakeObj: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	free := os.M.Nodes[0].Mem.BytesFree()
	os.DestroyProcess(nil, pr)
	if os.Lookup(child.ID) != nil {
		t.Error("child object survived parent deletion")
	}
	if got := os.M.Nodes[0].Mem.BytesFree(); got != free+1024 {
		t.Errorf("storage not reclaimed: %d -> %d", free, got)
	}
}

func TestSystemOwnershipLeaks(t *testing.T) {
	m := machine.New(machine.DefaultConfig(4))
	os := New(m)
	pr, _ := os.MakeProcess(nil, "p", 0, 16, func(self *Process) {
		obj, err := os.MakeObj(self.P, 0, 1000, nil)
		if err != nil {
			t.Errorf("MakeObj: %v", err)
			return
		}
		os.TransferToSystem(obj)
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	os.DestroyProcess(nil, pr)
	if os.LeakedBytes() != 1024 {
		t.Errorf("leaked = %d, want 1024 (Chrysalis tends to leak storage)", os.LeakedBytes())
	}
}

func TestProcessCreationSerialization(t *testing.T) {
	// Two simultaneous creators serialize on the process template: the
	// second pays the first's serial section as queueing delay.
	m := machine.New(machine.DefaultConfig(8))
	os := New(m)
	var t1, t2 int64
	os.MakeProcess(nil, "creator1", 0, 16, func(self *Process) {
		start := m.E.Now()
		os.MakeProcess(self.P, "c1", 2, 8, func(pr *Process) {})
		t1 = m.E.Now() - start
	})
	os.MakeProcess(nil, "creator2", 1, 16, func(self *Process) {
		start := m.E.Now()
		os.MakeProcess(self.P, "c2", 3, 8, func(pr *Process) {})
		t2 = m.E.Now() - start
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	c := os.Costs
	if t1 != c.ProcCreateSerial+c.ProcCreateLocal {
		t.Errorf("first creation = %d", t1)
	}
	if t2 != 2*c.ProcCreateSerial+c.ProcCreateLocal {
		t.Errorf("second creation = %d, want serialized %d", t2, 2*c.ProcCreateSerial+c.ProcCreateLocal)
	}
}

func TestProcessesDoNotExceedSARs(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := New(m)
	// 512 SARs / 256 per max process = 2 processes.
	if _, err := os.MakeProcess(nil, "a", 0, 256, func(pr *Process) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.MakeProcess(nil, "b", 0, 256, func(pr *Process) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.MakeProcess(nil, "c", 0, 8, func(pr *Process) {}); err == nil {
		t.Error("third large process fit")
	}
	if os.ProcsOnNode(0) != 2 {
		t.Errorf("procs on node 0 = %d", os.ProcsOnNode(0))
	}
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundSizeConsistency(t *testing.T) {
	// MakeObj must reject objects larger than one segment.
	boot(t, 2, func(os *OS, self *Process) {
		if _, err := os.MakeObj(self.P, 0, memory.MaxSegmentBytes+1, nil); err == nil {
			t.Error("oversized object accepted")
		}
	})
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindMemory: "memory", KindEvent: "event",
		KindDualQueue: "dual queue", KindProcess: "process", Kind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
