package chrysalis

import (
	"fmt"

	"butterfly/internal/sim"
)

// Event resembles a binary semaphore on which only one process — the owner —
// can wait. The posting process supplies a 32-bit datum returned to the
// owner by Wait. Events are microcoded in the PNC and complete in tens of
// microseconds.
type Event struct {
	os     *OS
	obj    *Object
	owner  *Process
	posted bool
	datum  uint32
	wq     *sim.WaitQueue
}

// NewEvent creates an event owned by pr.
func (os *OS) NewEvent(pr *Process) *Event {
	e := &Event{
		os:    os,
		owner: pr,
		wq:    sim.NewWaitQueue("event"),
	}
	e.obj = os.newObject(KindEvent, pr.P.Node, 0, pr.Root)
	e.obj.payload = e
	e.wq = sim.NewWaitQueue(fmt.Sprintf("event %d", e.obj.ID))
	return e
}

// ID returns the event's global object name.
func (e *Event) ID() ObjID { return e.obj.ID }

// Post makes the event available, delivering datum to the owner. A second
// post before the owner waits overwrites the datum (binary semantics). The
// poster is charged the microcode cost plus a reference to the event's home
// node.
func (e *Event) Post(p *sim.Proc, datum uint32) {
	e.os.M.Microcode(p, e.obj.Node, e.os.Costs.EventPost)
	// The microcode charge is lazy; flush it before touching the event's
	// shared state so the post lands at the operation's completion time.
	p.Sync()
	if pr := e.os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, e.obj.Node, "event.post", e.os.Costs.EventPost)
	}
	e.datum = datum
	if e.wq.Len() > 0 {
		e.posted = false
		e.wq.WakeOne(e.os.M.E, 0)
		return
	}
	e.posted = true
}

// Wait blocks the owner until the event is posted and returns the datum.
// Only the owner may wait; Chrysalis treats anything else as an error.
func (e *Event) Wait(p *sim.Proc) uint32 {
	if Self(p) != e.owner {
		panic(fmt.Sprintf("chrysalis: process %q waits on event %d it does not own", p.Name, e.obj.ID))
	}
	e.os.M.Microcode(p, e.obj.Node, e.os.Costs.EventWait)
	p.Sync()
	if pr := e.os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, e.obj.Node, "event.wait", e.os.Costs.EventWait)
	}
	if e.posted {
		e.posted = false
		return e.datum
	}
	e.wq.Wait(p)
	return e.datum
}

// WaitTimeout is Wait bounded by d nanoseconds of virtual time: ok is false
// if the timeout expired before a post arrived. Only the owner may wait.
func (e *Event) WaitTimeout(p *sim.Proc, d int64) (datum uint32, ok bool) {
	if Self(p) != e.owner {
		panic(fmt.Sprintf("chrysalis: process %q waits on event %d it does not own", p.Name, e.obj.ID))
	}
	e.os.M.Microcode(p, e.obj.Node, e.os.Costs.EventWait)
	p.Sync()
	if pr := e.os.M.Probe(); pr != nil {
		pr.Prim(p.LocalNow(), p.ID, e.obj.Node, "event.wait", e.os.Costs.EventWait)
	}
	if e.posted {
		e.posted = false
		return e.datum, true
	}
	if e.wq.WaitTimeout(p, d) {
		return 0, false
	}
	return e.datum, true
}

// Posted reports whether a post is pending.
func (e *Event) Posted() bool { return e.posted }

// DualQueue generalizes events: it can hold the data from multiple posts and
// supply that data to multiple waiters. When data outnumbers waiters the
// queue buffers data; when waiters outnumber data the queue buffers waiting
// processes — hence "dual". Microcoded; tens of microseconds per operation.
//
// The PNC microcode lets any process that can name a dual queue enqueue or
// dequeue on it regardless of any OS precautions (the protection loophole of
// §2.2), so no access checks are performed here either.
type DualQueue struct {
	os      *OS
	obj     *Object
	data    []uint32
	waiters *sim.WaitQueue
	// order mirrors waiters so Enqueue can address the head process.
	order []*sim.Proc
	// handoff carries the datum to a woken waiter.
	handoff map[*sim.Proc]uint32
}

// NewDualQueue creates a dual queue homed on the given node, owned by owner
// (may be nil for system-owned queues, which are leaked by definition).
func (os *OS) NewDualQueue(node int, owner *Object) *DualQueue {
	q := &DualQueue{
		os:      os,
		handoff: make(map[*sim.Proc]uint32),
	}
	q.obj = os.newObject(KindDualQueue, node, 0, owner)
	q.obj.payload = q
	q.waiters = sim.NewWaitQueue(fmt.Sprintf("dual queue %d", q.obj.ID))
	return q
}

// ID returns the queue's global object name.
func (q *DualQueue) ID() ObjID { return q.obj.ID }

// Enqueue appends a datum, waking the longest-waiting dequeuer if any.
func (q *DualQueue) Enqueue(p *sim.Proc, datum uint32) {
	q.os.M.Microcode(p, q.obj.Node, q.os.Costs.DualEnqueue)
	p.Sync()
	if pr := q.os.M.Probe(); pr != nil {
		pr.QueueOp(p.LocalNow(), p.ID, q.obj.Node, true, fmt.Sprintf("dq%d", q.obj.ID))
	}
	if q.waiters.Len() > 0 && q.wakeFirstWith(datum) {
		// The datum was handed directly to a live waiter.
		return
	}
	q.data = append(q.data, datum)
}

// wakeFirstWith hands datum to the longest-waiting live dequeuer and wakes
// it, discarding waiters killed by a node failure. It reports whether a
// waiter took the datum (false means every queued waiter was dead and the
// caller should buffer it instead). order and waiters stay consistent:
// both are FIFO with killed entries interleaved identically, so the skip
// loops pop the same live process.
func (q *DualQueue) wakeFirstWith(datum uint32) bool {
	for len(q.order) > 0 {
		p := q.order[0]
		q.order = q.order[1:]
		if p.Killed() {
			q.waiters.Remove(p)
			continue
		}
		q.handoff[p] = datum
		q.waiters.WakeOne(q.os.M.E, 0)
		return true
	}
	return false
}

// Dequeue removes the oldest datum, blocking if the queue is empty.
func (q *DualQueue) Dequeue(p *sim.Proc) uint32 {
	q.os.M.Microcode(p, q.obj.Node, q.os.Costs.DualDequeue)
	p.Sync()
	if pr := q.os.M.Probe(); pr != nil {
		pr.QueueOp(p.LocalNow(), p.ID, q.obj.Node, false, fmt.Sprintf("dq%d", q.obj.ID))
	}
	if len(q.data) > 0 {
		d := q.data[0]
		q.data = q.data[1:]
		return d
	}
	q.order = append(q.order, p)
	q.waiters.Wait(p)
	d := q.handoff[p]
	delete(q.handoff, p)
	return d
}

// DequeueTimeout is Dequeue bounded by d nanoseconds of virtual time: ok is
// false if the timeout expired with the queue still empty. It is the
// survival primitive for processes whose peers may die mid-protocol.
func (q *DualQueue) DequeueTimeout(p *sim.Proc, d int64) (datum uint32, ok bool) {
	q.os.M.Microcode(p, q.obj.Node, q.os.Costs.DualDequeue)
	p.Sync()
	if pr := q.os.M.Probe(); pr != nil {
		pr.QueueOp(p.LocalNow(), p.ID, q.obj.Node, false, fmt.Sprintf("dq%d", q.obj.ID))
	}
	if len(q.data) > 0 {
		v := q.data[0]
		q.data = q.data[1:]
		return v, true
	}
	q.order = append(q.order, p)
	if q.waiters.WaitTimeout(p, d) {
		// Timed out: withdraw from the waiter order too.
		for i, w := range q.order {
			if w == p {
				q.order = append(q.order[:i], q.order[i+1:]...)
				break
			}
		}
		return 0, false
	}
	v := q.handoff[p]
	delete(q.handoff, p)
	return v, true
}

// TryDequeue removes the oldest datum without blocking; ok is false if the
// queue was empty.
func (q *DualQueue) TryDequeue(p *sim.Proc) (datum uint32, ok bool) {
	q.os.M.Microcode(p, q.obj.Node, q.os.Costs.DualDequeue)
	p.Sync()
	if pr := q.os.M.Probe(); pr != nil {
		pr.QueueOp(p.LocalNow(), p.ID, q.obj.Node, false, fmt.Sprintf("dq%d", q.obj.ID))
	}
	if len(q.data) == 0 {
		return 0, false
	}
	d := q.data[0]
	q.data = q.data[1:]
	return d, true
}

// Len reports the number of buffered data (0 when waiters are queued).
func (q *DualQueue) Len() int { return len(q.data) }

// Waiters reports the number of blocked dequeuers.
func (q *DualQueue) Waiters() int { return q.waiters.Len() }

// SpinLock is a test-and-set lock over an atomic memory word. Waiting
// processors accomplish no useful work and their polling steals memory
// cycles from the lock's home node — both §2.3 complaints about Uniform
// System synchronization. PollNs controls the delay between attempts;
// programs "can be highly sensitive to the amount of time spent between
// attempts to set a lock" (Thomas, BBN WGN 4).
type SpinLock struct {
	os     *OS
	node   int
	held   bool
	holder *sim.Proc
	// PollNs is the back-off between failed test-and-set attempts.
	PollNs int64
	// Spins counts failed acquisition attempts (for contention reporting).
	Spins uint64
}

// NewSpinLock creates a spin lock whose word lives on the given node.
func (os *OS) NewSpinLock(node int) *SpinLock {
	return &SpinLock{os: os, node: node, PollNs: 2 * sim.Microsecond}
}

// Lock busy-waits until the lock is acquired.
func (l *SpinLock) Lock(p *sim.Proc) {
	for {
		l.os.M.Atomic(p, l.node) // test-and-set reference
		p.Sync()                 // observe the word at the reference's completion time
		if !l.held {
			l.held = true
			l.holder = p
			return
		}
		l.Spins++
		p.Advance(l.PollNs)
	}
}

// TryLock attempts a single test-and-set.
func (l *SpinLock) TryLock(p *sim.Proc) bool {
	l.os.M.Atomic(p, l.node)
	p.Sync()
	if l.held {
		l.Spins++
		return false
	}
	l.held = true
	l.holder = p
	return true
}

// Unlock releases the lock; only the holder may unlock.
func (l *SpinLock) Unlock(p *sim.Proc) {
	if !l.held || l.holder != p {
		panic("chrysalis: unlock of lock not held by caller")
	}
	l.os.M.Atomic(p, l.node) // clear reference
	p.Sync()                 // the release is visible at the reference's completion time
	l.held = false
	l.holder = nil
}
