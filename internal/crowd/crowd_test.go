package crowd

import (
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
)

func nodes(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

// creationTime measures the virtual time until every member of a crowd of
// size n has started running.
func creationTime(t *testing.T, n int, tree bool, fanout int) int64 {
	t.Helper()
	m := machine.New(machine.DefaultConfig(n))
	os := chrysalis.New(m)
	started := make([]bool, n)
	var lastStart int64
	_, err := os.MakeProcess(nil, "boot", 0, 16, func(self *chrysalis.Process) {
		ns := nodes(n)
		body := func(pr *chrysalis.Process, idx int) {
			started[idx] = true
			if now := m.E.Now(); now > lastStart {
				lastStart = now
			}
		}
		var err error
		if tree {
			err = CreateTree(os, self.P, "crowd", ns, fanout, body)
		} else {
			err = CreateSerial(os, self.P, "crowd", ns, body)
		}
		if err != nil {
			t.Errorf("create: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range started {
		if !s {
			t.Fatalf("member %d never started", i)
		}
	}
	return lastStart
}

func TestAllMembersCreated(t *testing.T) {
	creationTime(t, 16, true, 4)
	creationTime(t, 16, false, 0)
}

func TestTreeBeatsSerial(t *testing.T) {
	serial := creationTime(t, 64, false, 0)
	tree := creationTime(t, 64, true, 4)
	if float64(tree) > 0.7*float64(serial) {
		t.Errorf("tree creation (%d ns) not much faster than serial (%d ns)", tree, serial)
	}
}

func TestAmdahlCapsTreeCreation(t *testing.T) {
	// E8: the serial template section bounds the speedup. Tree creation of
	// n processes can never beat n * serial-section.
	n := 64
	tree := creationTime(t, n, true, 4)
	os := chrysalis.DefaultCosts()
	floor := int64(n) * os.ProcCreateSerial
	if tree < floor {
		t.Errorf("tree creation %d ns beat the serial floor %d ns — template serialization lost", tree, floor)
	}
	// But it should be within ~3x of the floor (i.e. the tree works).
	if tree > 4*floor {
		t.Errorf("tree creation %d ns far above serial floor %d ns", tree, floor)
	}
}

func TestMembersOnCorrectNodes(t *testing.T) {
	m := machine.New(machine.DefaultConfig(8))
	os := chrysalis.New(m)
	where := make([]int, 8)
	os.MakeProcess(nil, "boot", 0, 16, func(self *chrysalis.Process) {
		if err := CreateTree(os, self.P, "crowd", nodes(8), 2, func(pr *chrysalis.Process, idx int) {
			where[idx] = pr.P.Node
		}); err != nil {
			t.Errorf("create: %v", err)
		}
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range where {
		if n != i {
			t.Errorf("member %d on node %d", i, n)
		}
	}
}

func TestEmptyCrowd(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	os.MakeProcess(nil, "boot", 0, 16, func(self *chrysalis.Process) {
		if err := CreateTree(os, self.P, "crowd", nil, 2, func(pr *chrysalis.Process, idx int) {
			t.Error("body ran for empty crowd")
		}); err != nil {
			t.Errorf("create: %v", err)
		}
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadFanout(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	os.MakeProcess(nil, "boot", 0, 16, func(self *chrysalis.Process) {
		if err := CreateTree(os, self.P, "crowd", nodes(2), 0, func(pr *chrysalis.Process, idx int) {}); err == nil {
			t.Error("fanout 0 accepted")
		}
	})
	if err := m.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastTree(t *testing.T) {
	// Tree broadcast must beat everyone copying from the root node, because
	// the root's memory module serializes the naive version.
	measure := func(tree bool) int64 {
		m := machine.New(machine.DefaultConfig(32))
		os := chrysalis.New(m)
		const words = 4096
		for i := 1; i < 32; i++ {
			i := i
			os.MakeProcess(nil, "member", i, 16, func(self *chrysalis.Process) {
				if tree {
					// Wait for the parent's copy to exist: parents have
					// smaller indices and copy first; approximate with a
					// depth-proportional delay.
					depth := 0
					for a := i; a > 0; a = (a - 1) / 4 {
						depth++
					}
					self.P.Advance(int64(depth) * 1_000_000)
					Broadcast(os, 4, words, nodes(32), self.P, i)
				} else {
					os.M.BlockCopy(self.P, 0, i, words)
				}
			})
		}
		if err := m.E.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m.E.Now()
	}
	naive := measure(false)
	treed := measure(true)
	if treed >= naive {
		t.Errorf("tree broadcast (%d) not faster than root-hammering (%d)", treed, naive)
	}
}
