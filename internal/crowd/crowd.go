// Package crowd implements the Crowd Control package (§3.3, §4.1): spreading
// the work of creating (and coordinating) large numbers of processes over a
// tree of creators, so that process creation proceeds in parallel. The same
// tree technique "can be used to parallelize almost any function whose
// serial component is due to contention for read-only data".
//
// Crowd Control's own limit is the paper's Amdahl's-law lesson: "serial
// access to system resources (such as process templates in Chrysalis)
// ultimately limits our ability to exploit large-scale parallelism during
// process creation" — reproduced here because chrysalis.MakeProcess holds a
// global serial template resource for part of every creation.
package crowd

import (
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Body runs as each created process; index identifies the member (0 is the
// tree root).
type Body func(self *chrysalis.Process, index int)

// CreateSerial creates one process per node, all from the calling process —
// the naive approach whose creation time grows linearly with the crowd size.
func CreateSerial(os *chrysalis.OS, caller *sim.Proc, name string, nodes []int, body Body) error {
	for i, node := range nodes {
		i := i
		if _, err := os.MakeProcess(caller, fmt.Sprintf("%s[%d]", name, i), node, 16, func(self *chrysalis.Process) {
			body(self, i)
		}); err != nil {
			return err
		}
	}
	return nil
}

// CreateTree creates one process per node using a creation tree of the given
// fanout: member i creates members fanout*i+1 .. fanout*i+fanout before
// running its body, so creations on different branches proceed in parallel
// (up to the serial template bottleneck).
func CreateTree(os *chrysalis.OS, caller *sim.Proc, name string, nodes []int, fanout int, body Body) error {
	if fanout < 1 {
		return fmt.Errorf("crowd: fanout %d invalid", fanout)
	}
	n := len(nodes)
	var create func(creator *sim.Proc, idx int) error
	create = func(creator *sim.Proc, idx int) error {
		_, err := os.MakeProcess(creator, fmt.Sprintf("%s[%d]", name, idx), nodes[idx], 16, func(self *chrysalis.Process) {
			for c := fanout*idx + 1; c <= fanout*idx+fanout && c < n; c++ {
				if err := create(self.P, c); err != nil {
					panic(err) // cannot happen unless SARs exhausted mid-tree
				}
			}
			body(self, idx)
		})
		return err
	}
	if n == 0 {
		return nil
	}
	return create(caller, 0)
}

// Broadcast spreads a read-only datum to all members of a crowd using the
// same tree technique: each member copies the block from its parent's node
// rather than everyone hammering the root's memory. It returns per-member
// completion times via the done callback. members[i] gives the node of
// member i; the datum is words long; parent relationships follow the fanout
// tree rooted at member 0 (whose copy already exists).
func Broadcast(os *chrysalis.OS, fanout, words int, members []int, self *sim.Proc, idx int) {
	// Copy from the tree parent's node into our own.
	if idx == 0 {
		return
	}
	parent := (idx - 1) / fanout
	os.M.BlockCopy(self, members[parent], members[idx], words)
	// Flush the lazy copy charge: callers read the clock to report
	// per-member completion times.
	self.Sync()
}
