package connect

import (
	"math"
	"testing"
)

func TestMatchesReference(t *testing.T) {
	n := Random(200, 4, 1)
	ref := Reference(n, 5)
	r, err := Run(n, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for u := range ref {
		if math.Abs(ref[u]-r.Activation[u]) > 1e-12 {
			t.Fatalf("unit %d: %g vs %g", u, ref[u], r.Activation[u])
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	n := Random(50, 3, 2)
	ref := Reference(n, 3)
	r, err := Run(n, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for u := range ref {
		if math.Abs(ref[u]-r.Activation[u]) > 1e-12 {
			t.Fatalf("unit %d differs", u)
		}
	}
}

func TestNearLinearSpeedup(t *testing.T) {
	// §3.1/§4.1: significant, often almost linear speedups.
	n := Random(2048, 6, 3)
	t1, err := Run(n, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t32, err := Run(n, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(t1.ElapsedNs) / float64(t32.ElapsedNs)
	if speedup < 20 {
		t.Errorf("speedup on 32 procs = %.1f, want near-linear (>20)", speedup)
	}
}

func TestVAXThrashing(t *testing.T) {
	// A network that fits in VAX memory runs fine; one that does not
	// thrashes hopelessly.
	small := Random(1000, 4, 4) // ~256 KB
	big := Random(100_000, 4, 4)
	cfg := DefaultVAX()
	smallNs := RunVAX(small, 1, cfg)
	bigNs := RunVAX(big, 1, cfg)
	// Per-unit cost must explode for the big network.
	perSmall := float64(smallNs) / 1000
	perBig := float64(bigNs) / 100_000
	if perBig < 20*perSmall {
		t.Errorf("no thrashing: per-unit %f vs %f", perBig, perSmall)
	}
}

func TestButterflyBeatsThrashingVAX(t *testing.T) {
	// "simulate in minutes networks that had previously taken hours":
	// a network larger than VAX core, on many Butterfly nodes.
	n := Random(60_000, 4, 5)
	vax := RunVAX(n, 1, DefaultVAX())
	bf, err := Run(n, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(vax) / float64(bf.ElapsedNs)
	if ratio < 10 {
		t.Errorf("Butterfly/VAX ratio = %.1f, want order-of-magnitude win", ratio)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 4, 9)
	b := Random(100, 4, 9)
	for u := range a.In {
		if len(a.In[u]) != len(b.In[u]) || a.Activation[u] != b.Activation[u] {
			t.Fatal("networks differ for same seed")
		}
	}
}
