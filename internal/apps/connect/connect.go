// Package connect implements a connectionist (neural) network simulator in
// the style of the Rochester Connectionist Simulator (Fanty, TR 164; §3.1 of
// the paper) — the first significant Butterfly application at Rochester. The
// simulator supports a neural-like model of massively parallel computing:
// units hold activation levels; weighted links feed them; simulation
// proceeds in synchronous rounds.
//
// Two of the paper's claims are reproduced:
//
//   - "With 120 Mbytes of physical memory we were able to build networks
//     that had led to hopeless thrashing on a VAX": RunVAX models a faster
//     uniprocessor with limited physical memory that pages to disk once the
//     network spills out of core.
//   - "With 120-way parallelism, we were able to simulate in minutes
//     networks that had previously taken hours": Run distributes units over
//     up to 120+ nodes with near-linear speedup.
package connect

import (
	"math"
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// Network is a weighted directed graph of units.
type Network struct {
	Units int
	// In[u] lists the incoming links of unit u.
	In [][]Link
	// Activation holds the current activation of each unit.
	Activation []float64
}

// Link is one weighted connection.
type Link struct {
	From   int
	Weight float64
}

// Random builds a network with the given number of units and average fan-in,
// deterministically from seed.
func Random(units, fanIn int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{
		Units:      units,
		In:         make([][]Link, units),
		Activation: make([]float64, units),
	}
	for u := 0; u < units; u++ {
		n.Activation[u] = rng.Float64()
		k := 1 + rng.Intn(2*fanIn)
		for j := 0; j < k; j++ {
			n.In[u] = append(n.In[u], Link{
				From:   rng.Intn(units),
				Weight: rng.Float64()*2 - 1,
			})
		}
	}
	return n
}

// BytesPerUnit approximates the storage footprint of a unit with its links
// (descriptor, activation, link array).
const BytesPerUnit = 256

// squash is the unit activation function.
func squash(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// step advances the network one synchronous round in place, returning the
// new activation vector.
func step(n *Network, act []float64) []float64 {
	next := make([]float64, n.Units)
	for u := 0; u < n.Units; u++ {
		sum := 0.0
		for _, l := range n.In[u] {
			sum += l.Weight * act[l.From]
		}
		next[u] = squash(sum)
	}
	return next
}

// Reference simulates rounds sequentially in plain Go for correctness
// checks.
func Reference(n *Network, rounds int) []float64 {
	act := append([]float64(nil), n.Activation...)
	for r := 0; r < rounds; r++ {
		act = step(n, act)
	}
	return act
}

// Result reports a simulation run.
type Result struct {
	Procs      int
	Rounds     int
	ElapsedNs  int64
	Activation []float64
}

// Run simulates the network for rounds synchronous rounds on procs Butterfly
// nodes: units are dealt round-robin; reading a remote unit's activation is
// a remote reference; each link costs two flops plus the squash.
func Run(n *Network, rounds, procs int) (Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	nodeOf := func(u int) int { return u % procs }

	act := append([]float64(nil), n.Activation...)
	next := make([]float64, n.Units)
	barrier := sim.NewBarrier("connect round barrier", procs)
	var start, end int64
	for p := 0; p < procs; p++ {
		p := p
		if _, err := os.MakeProcess(nil, "connect", p, 16, func(self *chrysalis.Process) {
			if p == 0 {
				start = m.E.Now()
			}
			for r := 0; r < rounds; r++ {
				for u := p; u < n.Units; u += procs {
					// Gather inputs: batch the remote activation reads per
					// source node, local ones are cheap.
					var local, remote int
					sum := 0.0
					for _, l := range n.In[u] {
						if nodeOf(l.From) == p {
							local++
						} else {
							remote++
						}
						sum += l.Weight * act[l.From]
					}
					m.Read(self.P, p, local+2)
					if remote > 0 {
						// Remote activations come from many nodes; charge
						// them against a rotating victim to spread module
						// load the way the scattered network does.
						m.Read(self.P, (u+1)%procs, remote)
					}
					m.Flops(self.P, 2*len(n.In[u])+4)
					next[u] = squash(sum)
				}
				barrier.Wait(self.P)
				// Node 0 swaps the generation vectors (cheap pointer swap).
				if p == 0 {
					copy(act, next)
				}
				barrier.Wait(self.P)
			}
			if p == 0 {
				end = m.E.Now()
			}
		}); err != nil {
			return Result{}, err
		}
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{
		Procs:      procs,
		Rounds:     rounds,
		ElapsedNs:  end - start,
		Activation: append([]float64(nil), act...),
	}, nil
}

// VAXConfig models the department VAX the simulator outgrew.
type VAXConfig struct {
	// FlopNs is the VAX's floating-point cost (4 µs ~ a VAX-11/780 with
	// FPA — six times faster than the Butterfly node's software float).
	FlopNs int64
	// MemoryBytes is physical memory (8 MB was generous in 1985).
	MemoryBytes int64
	// PageBytes and PageFaultNs model demand paging to disk.
	PageBytes   int64
	PageFaultNs int64
}

// DefaultVAX returns the 1985 departmental VAX calibration.
func DefaultVAX() VAXConfig {
	return VAXConfig{
		FlopNs:      4_000,
		MemoryBytes: 8 << 20,
		PageBytes:   4096,
		PageFaultNs: 25 * sim.Millisecond,
	}
}

// RunVAX estimates the sequential simulation time on the VAX, including
// thrashing once the network exceeds physical memory. The model is
// analytical (no event simulation needed for one processor): each round
// touches every unit's working set; the fraction that cannot be resident
// faults at random-access cost.
func RunVAX(n *Network, rounds int, cfg VAXConfig) int64 {
	links := 0
	for _, in := range n.In {
		links += len(in)
	}
	flops := int64(rounds) * int64(2*links+4*n.Units)
	compute := flops * cfg.FlopNs

	netBytes := int64(n.Units) * BytesPerUnit
	if netBytes <= cfg.MemoryBytes {
		return compute
	}
	// Fraction of unit touches that miss core. Random link sources make
	// locality poor: misses approximate the out-of-core fraction.
	missFrac := float64(netBytes-cfg.MemoryBytes) / float64(netBytes)
	touches := int64(rounds) * int64(links+n.Units)
	faults := int64(missFrac * float64(touches))
	return compute + faults*cfg.PageFaultNs
}
