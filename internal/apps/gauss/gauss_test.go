package gauss

import (
	"testing"
	"testing/quick"
)

func TestUSCorrectness(t *testing.T) {
	r, err := RunUS(USConfig{N: 48, Procs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidue > 1e-9 {
		t.Errorf("US residue = %g", r.MaxResidue)
	}
	if r.ElapsedNs <= 0 {
		t.Error("no elapsed time")
	}
}

func TestSMPCorrectness(t *testing.T) {
	r, err := RunSMP(SMPConfig{N: 48, Procs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidue > 1e-9 {
		t.Errorf("SMP residue = %g", r.MaxResidue)
	}
}

func TestBothSolveSameSystem(t *testing.T) {
	a, err := RunUS(USConfig{N: 32, Procs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSMP(SMPConfig{N: 32, Procs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		d := a.X[i] - b.X[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("solutions differ at %d: %g vs %g", i, a.X[i], b.X[i])
		}
	}
}

func TestCorrectnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		r, err := RunSMP(SMPConfig{N: 24, Procs: 3, Seed: seed})
		if err != nil || r.MaxResidue > 1e-9 {
			return false
		}
		u, err := RunUS(USConfig{N: 24, Procs: 3, Seed: seed})
		return err == nil && u.MaxResidue < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSingleProcessorWorks(t *testing.T) {
	r, err := RunSMP(SMPConfig{N: 16, Procs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxResidue > 1e-9 {
		t.Errorf("residue = %g", r.MaxResidue)
	}
	u, err := RunUS(USConfig{N: 16, Procs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if u.MaxResidue > 1e-9 {
		t.Errorf("US residue = %g", u.MaxResidue)
	}
}

func TestMessageCountFormula(t *testing.T) {
	// §4.1: "The number of messages sent in the SMP implementation is P*N"
	// (we count the dominant broadcast term exactly).
	r, err := RunSMP(SMPConfig{N: 32, Procs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedMessagesSMP(4, 32)
	if r.Messages != want {
		t.Errorf("messages = %d, want %d", r.Messages, want)
	}
}

func TestCommOpsGrowth(t *testing.T) {
	// Doubling parallelism must double SMP communication but barely move
	// the US count — the structural cause of Figure 5.
	m4 := ExpectedMessagesSMP(4, 256)
	m8 := ExpectedMessagesSMP(8, 256)
	if m8 < 2*m4-256 {
		t.Errorf("SMP messages did not double: %d -> %d", m4, m8)
	}
	u4 := ExpectedCommOpsUS(4, 256)
	u8 := ExpectedCommOpsUS(8, 256)
	growth := float64(u8) / float64(u4)
	if growth > 1.05 {
		t.Errorf("US comm ops grew %.2fx when doubling P; should be ~flat", growth)
	}
}

func TestDataSpreadReducesContention(t *testing.T) {
	// E4 at test scale: spreading rows over more memories speeds up the
	// shared-memory run.
	narrow, err := RunUS(USConfig{N: 64, Procs: 16, Seed: 2, SpreadK: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunUS(USConfig{N: 64, Procs: 16, Seed: 2, SpreadK: 16})
	if err != nil {
		t.Fatal(err)
	}
	if wide.ElapsedNs >= narrow.ElapsedNs {
		t.Errorf("spreading did not help: narrow %d, wide %d", narrow.ElapsedNs, wide.ElapsedNs)
	}
}

func TestResidualDetectsWrongAnswer(t *testing.T) {
	a, b := RandomMatrix(8, 1)
	x := make([]float64, 8) // all zeros: wrong
	if Residual(a, b, x) < 1e-3 {
		t.Error("residual failed to flag a wrong solution")
	}
}
