// Package gauss implements the paper's best-studied application: the
// diagonalization of matrices by Gaussian elimination, in both a Uniform
// System shared-memory version (after Thomas, BBN) and an SMP
// message-passing version (after LeBlanc). The comparison between the two is
// Figure 5 of the paper: message passing wins below 64 processors, shared
// memory is flat beyond 64 while message passing degrades, because the SMP
// implementation sends P*N messages (doubling parallelism doubles
// communication) while the Uniform System performs (N^2-N)+P(N-1)
// communication operations (dominated by the parallelism-independent N^2
// term).
//
// The data-placement variants reproduce §4.1's contention result: spreading
// the matrix over all 128 memories improves performance by over 30% when 64
// or fewer processors compute.
package gauss

import (
	"fmt"
	"math"
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/smp"
	"butterfly/internal/us"
)

// RandomMatrix builds a well-conditioned random N x N system (diagonally
// dominant) plus a right-hand side, for correctness checking.
func RandomMatrix(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		sum := 0.0
		for j := range a[i] {
			a[i][j] = rng.Float64()*2 - 1
			sum += math.Abs(a[i][j])
		}
		a[i][i] = sum + 1 // diagonal dominance: no pivoting needed
		b[i] = rng.Float64()
	}
	return a, b
}

// Residual returns max_i |A x - b|_i for a solution check.
func Residual(a [][]float64, b, x []float64) float64 {
	worst := 0.0
	for i := range a {
		s := 0.0
		for j := range a[i] {
			s += a[i][j] * x[j]
		}
		if r := math.Abs(s - b[i]); r > worst {
			worst = r
		}
	}
	return worst
}

// copyMatrix deep-copies a system so a run cannot corrupt the reference.
func copyMatrix(a [][]float64, b []float64) ([][]float64, []float64) {
	a2 := make([][]float64, len(a))
	for i := range a {
		a2[i] = append([]float64(nil), a[i]...)
	}
	return a2, append([]float64(nil), b...)
}

// backSubstitute solves the upper-triangular system in place and returns x.
// It is the (serial) epilogue of both implementations.
func backSubstitute(a [][]float64, b []float64) []float64 {
	n := len(a)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

// Result reports one elimination run.
type Result struct {
	Model      string
	Procs      int
	N          int
	ElapsedNs  int64
	Messages   uint64 // message-passing version: messages sent
	CommOps    uint64 // shared-memory version: remote communication ops
	X          []float64
	MaxResidue float64
	Debug      string // breakdown of where simulated time went
}

// String formats a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-14s P=%3d N=%4d  %8.2f s", r.Model, r.Procs, r.N, sim.Seconds(r.ElapsedNs))
}

// USConfig parameterizes the shared-memory run.
type USConfig struct {
	N       int
	Procs   int
	Seed    int64
	SpreadK int // memories to spread rows over; 0 = all Procs (E4 varies this)
	// Cached enables the §4.1 caching idiom: tasks block-copy the rows into
	// local memory instead of referencing shared memory word by word. The
	// Figure 5 comparison (LeBlanc's study) used the straightforward
	// uncached style; Cached is the locality ablation.
	Cached bool
}

// RunUS performs Gaussian elimination under the Uniform System. Each
// elimination step k generates one task per remaining row; a task reads the
// pivot row and updates its own row through the (logically) global shared
// memory. In the default (uncached) style every element reference is a
// remote memory reference — all P workers hammer the pivot row's home
// memory, which is the §4.1 contention effect and the reason the US curve
// goes flat at high processor counts.
func RunUS(cfg USConfig) (Result, error) {
	a, bvec := RandomMatrix(cfg.N, cfg.Seed)
	aRef, bRef := copyMatrix(a, bvec)
	mcfg := machine.DefaultConfig(maxInt(cfg.Procs, cfg.SpreadK))
	mcfg.NoSwitchContention = true // E6: switch contention negligible; skip per-word port booking
	m := machine.New(mcfg)
	os := chrysalis.New(m)

	spread := cfg.SpreadK
	if spread <= 0 {
		spread = cfg.Procs
	}
	rowNode := func(i int) int { return i % spread }

	n := cfg.N
	var start, end int64
	var commOps uint64
	ucfg := us.DefaultConfig(cfg.Procs)
	ucfg.ParallelAlloc = true
	u, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start = m.E.Now()
		for k := 0; k < n-1; k++ {
			k := k
			rows := n - 1 - k
			if rows == 0 {
				continue
			}
			w.U.GenOnIndex(w, rows, func(tw *us.Worker, idx int) {
				i := k + 1 + idx
				words := n - k + 1
				if cfg.Cached {
					// Caching idiom: block-copy pivot and target rows into
					// local memory, compute locally, copy the result back.
					m.BlockCopy(tw.P, rowNode(k), tw.P.Node, words)
					m.BlockCopy(tw.P, rowNode(i), tw.P.Node, words)
					m.Flops(tw.P, 2*(n-k)+2)
					m.BlockCopy(tw.P, tw.P.Node, rowNode(i), words)
					commOps += 2 // pivot fetch + row update, the paper's unit
				} else {
					// Straightforward shared-memory style: the inner loop
					// references everything through the (logically) global
					// shared memory word by word — the pivot element
					// a[k][j], the target element a[i][j] (read and write),
					// and the row-descriptor/index structures the compiler
					// cannot keep in registers — interleaved with the two
					// flops of the multiply-subtract.
					m.Sweep(tw.P, n-k, 2*m.Cfg.FlopNs, []machine.Ref{
						{Node: rowNode(k), Words: 1},     // pivot element
						{Node: rowNode(i), Words: 2},     // target read+write
						{Node: rowNode(i + k), Words: 2}, // descriptors, indices
					})
					commOps += 2 // pivot fetch + row update, the paper's unit
				}
				f := a[i][k] / a[k][k]
				for j := k; j < n; j++ {
					a[i][j] -= f * a[k][j]
				}
				bvec[i] -= f * bvec[k]
			})
			// Each step also costs one dispatch interaction per processor —
			// the P(N-1) term of the paper's formula.
			commOps += uint64(cfg.Procs)
		}
		end = m.E.Now()
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	_ = u
	var memWait, netWait int64
	for _, nd := range m.Nodes {
		memWait += nd.Mem.Stats().WaitNs
	}
	netWait = m.Net.Stats().ContentionNs
	x := backSubstitute(a, bvec)
	return Result{
		Model:      "shared-memory",
		Procs:      cfg.Procs,
		N:          cfg.N,
		ElapsedNs:  end - start,
		CommOps:    commOps,
		X:          x,
		MaxResidue: Residual(aRef, bRef, x),
		Debug: fmt.Sprintf("memWait=%.1fs netWait=%.1fs remote=%d",
			sim.Seconds(memWait), sim.Seconds(netWait), m.Stats().RemoteRefs),
	}, nil
}

// SMPConfig parameterizes the message-passing run.
type SMPConfig struct {
	N     int
	Procs int
	Seed  int64
}

// RunSMP performs Gaussian elimination with message passing: rows are dealt
// round-robin to P family members; at step k the owner of the pivot row
// broadcasts it to the other P-1 members (P*N messages over the whole run),
// and every member updates its local rows with no further communication.
func RunSMP(cfg SMPConfig) (Result, error) {
	a, bvec := RandomMatrix(cfg.N, cfg.Seed)
	aRef, bRef := copyMatrix(a, bvec)
	mcfg := machine.DefaultConfig(cfg.Procs)
	mcfg.NoSwitchContention = true
	m := machine.New(mcfg)
	os := chrysalis.New(m)

	n, p := cfg.N, cfg.Procs
	nodes := make([]int, p)
	for i := range nodes {
		nodes[i] = i
	}
	ownerOf := func(row int) int { return row % p }

	var start, end int64
	barrier := sim.NewBarrier("gauss step barrier", p)
	// The elimination family dedicates its SAR budget to peer message
	// buffers so broadcasts avoid the 1 ms map/unmap per message.
	scfg := smp.DefaultConfig()
	scfg.SARCacheSize = 192
	fam, err := smp.NewFamily(os, nil, "gauss", nodes, smp.Full{}, scfg, func(mem *smp.Member) {
		if mem.ID == 0 {
			start = m.E.Now()
		}
		pivot := make([]float64, n+1)
		for k := 0; k < n-1; k++ {
			owner := ownerOf(k)
			words := n - k + 1
			if mem.ID == owner {
				// Broadcast the pivot row to the other members.
				copy(pivot, a[k][k:])
				pivot[n-k] = bvec[k]
				for d := 0; d < p; d++ {
					if d == mem.ID {
						continue
					}
					if err := mem.Send(d, k, words, nil); err != nil {
						panic(err)
					}
				}
			} else if p > 1 {
				msg := mem.Recv()
				if msg.Tag != k {
					panic(fmt.Sprintf("gauss: member %d got step %d, want %d", mem.ID, msg.Tag, k))
				}
			}
			// Update the local rows (every member holds its own slice in
			// its own memory: reads and writes are local references).
			flops, localWords := 0, 0
			for i := k + 1; i < n; i++ {
				if ownerOf(i) != mem.ID {
					continue
				}
				f := a[i][k] / a[k][k]
				for j := k; j < n; j++ {
					a[i][j] -= f * a[k][j]
				}
				bvec[i] -= f * bvec[k]
				flops += 2*(n-k) + 2
				localWords += 2 * (n - k + 1) // row in + row out; pivot is cached
			}
			m.Read(mem.P, mem.P.Node, localWords)
			m.Flops(mem.P, flops)
			// Each elimination step ends with a family barrier, keeping the
			// members in lockstep. This is the structure of the measured
			// implementation: the per-step broadcast of P-1 messages sits
			// squarely on the critical path, which is why the paper's P*N
			// message count translates directly into the rising half of
			// Figure 5.
			barrier.Wait(mem.P)
		}
		barrier.Wait(mem.P)
		if mem.ID == 0 {
			end = m.E.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	x := backSubstitute(a, bvec)
	return Result{
		Model:      "message-passing",
		Procs:      cfg.Procs,
		N:          cfg.N,
		ElapsedNs:  end - start,
		Messages:   fam.Stats().MessagesSent,
		X:          x,
		MaxResidue: Residual(aRef, bRef, x),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExpectedMessagesSMP returns the paper's P*N message-count formula.
func ExpectedMessagesSMP(p, n int) uint64 {
	if p <= 1 {
		return 0
	}
	// One broadcast of P-1 messages per elimination step (N-1 steps), plus
	// a handful of termination messages; the paper rounds this to P*N.
	return uint64(p-1) * uint64(n-1)
}

// ExpectedCommOpsUS returns the paper's (N^2-N)+P(N-1) formula for the
// Uniform System implementation's communication operations.
func ExpectedCommOpsUS(p, n int) uint64 {
	return uint64(n*n-n) + uint64(p)*uint64(n-1)
}
