package msort

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"butterfly/internal/replay"
)

func randomKeys(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32() % 10000
	}
	return keys
}

func TestSortsCorrectly(t *testing.T) {
	keys := randomKeys(256, 1)
	r, err := Run(keys, Config{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(r.Sorted) {
		t.Error("output not sorted")
	}
	want := append([]uint32(nil), keys...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for i := range want {
		if r.Sorted[i] != want[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func TestSortProperty(t *testing.T) {
	check := func(seed int64) bool {
		keys := randomKeys(96+int(seed%64+64)%64, seed)
		r, err := Run(keys, Config{Procs: 6})
		if err != nil || !IsSorted(r.Sorted) || len(r.Sorted) != len(keys) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBuggyVersionDeadlocks(t *testing.T) {
	keys := randomKeys(64, 2)
	_, err := Run(keys, Config{Procs: 8, Buggy: true})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error text: %v", err)
	}
}

func TestFigure6MoviolaView(t *testing.T) {
	// Record the buggy run with Instant Replay and render the partial
	// order — the reproduction of Figure 6.
	keys := randomKeys(64, 3)
	res, err := Run(keys, Config{Procs: 4, Buggy: true, Record: true})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	if len(res.Log) == 0 {
		t.Fatal("no events recorded before the deadlock")
	}
	out := replay.BuildGraph(res.Log).RenderASCII()
	if !strings.Contains(out, "msort[0]") {
		t.Errorf("render missing process column:\n%s", out)
	}
}

func TestMonitoredRunStillSorts(t *testing.T) {
	keys := randomKeys(128, 4)
	r, err := Run(keys, Config{Procs: 4, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(r.Sorted) {
		t.Error("monitored run not sorted")
	}
	if len(r.Log) == 0 {
		t.Error("monitor recorded nothing")
	}
}

func TestTooFewProcs(t *testing.T) {
	if _, err := Run(randomKeys(8, 5), Config{Procs: 1}); err == nil {
		t.Error("1-proc sort accepted")
	}
}

func TestMergeSorted(t *testing.T) {
	got := mergeSorted([]uint32{1, 3, 5}, []uint32{2, 3, 6})
	want := []uint32{1, 2, 3, 3, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v", got)
		}
	}
	if len(mergeSorted(nil, nil)) != 0 {
		t.Error("empty merge")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]uint32{1, 1, 2}) || IsSorted([]uint32{2, 1}) {
		t.Error("IsSorted wrong")
	}
}
