// Package msort implements the odd-even merge sort studied with Instant
// Replay and Moviola (§3.3 of the paper; Figure 6 is Moviola's graphical
// view of a deadlock in this very program). P processes each hold a block of
// keys; rounds of partner exchanges sort the whole sequence (odd-even
// transposition at block granularity). The Buggy flag reintroduces the
// message-ordering bug of Figure 6: in odd rounds both partners wait to
// receive before sending, so the program deadlocks — and the recorded
// partial order shows exactly who was waiting for whom.
package msort

import (
	"errors"
	"fmt"
	"sort"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/replay"
	"butterfly/internal/smp"
)

// Config parameterizes a sort run.
type Config struct {
	Procs int
	// Buggy selects the deadlocking message protocol of Figure 6.
	Buggy bool
	// Record instruments the exchanges with Instant Replay shared objects
	// and returns the access log in Result.Log (even after a deadlock).
	Record bool
}

// Result reports a sort run.
type Result struct {
	Sorted    []uint32
	ElapsedNs int64
	Rounds    int
	// Log is the Instant Replay record when Config.Record was set; it is
	// populated even when the run deadlocks (that partial order is what
	// Figure 6 visualizes).
	Log []replay.Entry
}

// ErrDeadlock wraps the engine's deadlock report.
var ErrDeadlock = errors.New("msort: deadlock")

// Run sorts keys across cfg.Procs processes. With cfg.Buggy it returns
// ErrDeadlock (wrapping the *sim.DeadlockError detail) and whatever the
// monitor recorded up to the hang.
func Run(keys []uint32, cfg Config) (Result, error) {
	p := cfg.Procs
	if p < 2 {
		return Result{}, errors.New("msort: need at least 2 processes")
	}
	m := machine.New(machine.DefaultConfig(p))
	os := chrysalis.New(m)

	// Deal keys into blocks.
	blocks := make([][]uint32, p)
	for i, k := range keys {
		blocks[i%p] = append(blocks[i%p], k)
	}
	for i := range blocks {
		sort.Slice(blocks[i], func(a, b int) bool { return blocks[i][a] < blocks[i][b] })
	}

	// Instant Replay objects: one per member's inbox.
	var mon *replay.Monitor
	var objs []*replay.Object
	if cfg.Record {
		mon = replay.NewMonitor(os, replay.ModeRecord)
		for i := 0; i < p; i++ {
			objs = append(objs, mon.NewObject(fmt.Sprintf("inbox%d", i), i))
		}
	}

	nodes := make([]int, p)
	for i := range nodes {
		nodes[i] = i
	}
	rounds := p
	var elapsed int64
	_, err := smp.NewFamily(os, nil, "msort", nodes, smp.Full{}, smp.DefaultConfig(), func(mem *smp.Member) {
		me := mem.ID
		mine := blocks[me]
		// Members without a partner skip rounds and may run ahead, so
		// messages can arrive early; stash them by round tag.
		pending := map[int][]uint32{}
		for r := 0; r < rounds; r++ {
			// Partner for this round (odd-even transposition).
			var partner int
			if r%2 == 0 {
				if me%2 == 0 {
					partner = me + 1
				} else {
					partner = me - 1
				}
			} else {
				if me%2 == 1 {
					partner = me + 1
				} else {
					partner = me - 1
				}
			}
			if partner < 0 || partner >= p {
				continue // no partner this round; idle
			}
			words := len(mine)
			send := func() {
				if mon != nil {
					objs[partner].Write(mem.P, func() {
						if err := mem.Send(partner, r, words, append([]uint32(nil), mine...)); err != nil {
							panic(err)
						}
					})
				} else if err := mem.Send(partner, r, words, append([]uint32(nil), mine...)); err != nil {
					panic(err)
				}
			}
			var other []uint32
			recv := func() {
				get := func() {
					if stash, ok := pending[r]; ok {
						delete(pending, r)
						other = stash
						return
					}
					for {
						msg := mem.Recv()
						payload := msg.Payload.([]uint32)
						if msg.Tag == r {
							other = payload
							return
						}
						pending[msg.Tag] = payload
					}
				}
				if mon != nil {
					objs[me].Read(mem.P, get)
				} else {
					get()
				}
			}
			buggyRound := cfg.Buggy && r%2 == 1
			if buggyRound {
				// Figure 6's bug: both partners receive before sending.
				recv()
				send()
			} else if me < partner {
				send()
				recv()
			} else {
				recv()
				send()
			}
			// Merge and keep my half; charge the comparison work.
			merged := mergeSorted(mine, other)
			m.IntOps(mem.P, 2*len(merged))
			if me < partner {
				mine = merged[:len(mine)]
			} else {
				mine = merged[len(merged)-len(mine):]
			}
		}
		blocks[me] = mine
		mem.P.Sync() // flush the final merge charge before reading the clock
		if t := m.E.Now(); t > elapsed {
			elapsed = t
		}
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		res := Result{}
		if mon != nil {
			res.Log = mon.Log()
		}
		return res, fmt.Errorf("%w: %v", ErrDeadlock, err)
	}
	var out []uint32
	for _, b := range blocks {
		out = append(out, b...)
	}
	res := Result{Sorted: out, ElapsedNs: elapsed, Rounds: rounds}
	if mon != nil {
		res.Log = mon.Log()
	}
	return res, nil
}

// mergeSorted merges two sorted slices.
func mergeSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []uint32) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
