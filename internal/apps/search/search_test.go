package search

import (
	"testing"
	"testing/quick"
)

func TestSequentialDeterministic(t *testing.T) {
	tr := Tree{Branch: 4, Depth: 5, Seed: 1}
	v1, c1 := tr.Sequential()
	v2, c2 := tr.Sequential()
	if v1 != v2 || c1 != c2 {
		t.Error("sequential search not deterministic")
	}
	if c1.Nodes <= c1.Leaves || c1.Leaves == 0 {
		t.Errorf("counters = %+v", c1)
	}
}

func TestPruningReducesNodes(t *testing.T) {
	tr := Tree{Branch: 5, Depth: 5, Seed: 2}
	_, c := tr.Sequential()
	full := int64(1)
	pow := int64(1)
	for d := 0; d < tr.Depth; d++ {
		pow *= int64(tr.Branch)
		full += pow
	}
	if c.Nodes >= full {
		t.Errorf("alpha-beta visited %d of %d nodes; no pruning", c.Nodes, full)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	tr := Tree{Branch: 6, Depth: 4, Seed: 3}
	want, _ := tr.Sequential()
	r, err := tr.Parallel(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != want {
		t.Errorf("parallel value %d, want %d", r.Value, want)
	}
	if r.BestMove < 0 || r.BestMove >= tr.Branch {
		t.Errorf("best move = %d", r.BestMove)
	}
}

func TestParallelValueProperty(t *testing.T) {
	check := func(seed uint64) bool {
		tr := Tree{Branch: 4, Depth: 4, Seed: seed%100 + 1}
		want, _ := tr.Sequential()
		r, err := tr.Parallel(2)
		return err == nil && r.Value == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSearchOverhead(t *testing.T) {
	// Root splitting must visit at least as many nodes as sequential
	// alpha-beta (workers lack each other's window tightenings), but not
	// absurdly more.
	tr := Tree{Branch: 8, Depth: 5, Seed: 4}
	r, err := tr.Parallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes < r.SeqNodes {
		t.Errorf("parallel visited %d < sequential %d", r.Nodes, r.SeqNodes)
	}
	if over := r.Overhead(); over < 0 || over > 5 {
		t.Errorf("search overhead = %.2f, implausible", over)
	}
}

func TestParallelSpeedup(t *testing.T) {
	tr := Tree{Branch: 8, Depth: 6, Seed: 5}
	r1, err := tr.Parallel(1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := tr.Parallel(4)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.ElapsedNs) / float64(r4.ElapsedNs)
	if speedup < 1.5 {
		t.Errorf("speedup with 4 workers = %.2f", speedup)
	}
}

func TestWorkerClamping(t *testing.T) {
	tr := Tree{Branch: 3, Depth: 3, Seed: 6}
	r, err := tr.Parallel(10) // more workers than root moves
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tr.Sequential()
	if r.Value != want {
		t.Errorf("value = %d, want %d", r.Value, want)
	}
	if _, err := tr.Parallel(0); err == nil {
		t.Error("0 workers accepted")
	}
}
