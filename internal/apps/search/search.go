// Package search implements parallel alpha-beta game-tree search in the
// style of the checkers-playing program of §3.1 (written in Lynx, using a
// parallel version of alpha-beta after Fishburn & Finkel). The game is a
// deterministic synthetic tree — uniform branching, leaf values derived from
// a hash of the move path — so every configuration has a checkable minimax
// value without embedding a full checkers rule engine.
//
// The parallel strategy is root splitting: a master Lynx process deals the
// root moves to worker processes over links; each worker searches its
// subtree with sequential alpha-beta and returns the score. Workers cannot
// share window tightenings across machines mid-move, so the parallel search
// visits more nodes than the sequential one — the classic "search overhead"
// of parallel alpha-beta, which the tests quantify.
package search

import (
	"fmt"

	"butterfly/internal/antfarm"
	"butterfly/internal/chrysalis"
	"butterfly/internal/lynx"
	"butterfly/internal/machine"
)

// Tree describes a synthetic game tree.
type Tree struct {
	// Branch is the uniform branching factor.
	Branch int
	// Depth is the distance from root to leaves.
	Depth int
	// Seed varies the position.
	Seed uint64
}

// child extends a path hash by move index m (splitmix-style mixing).
func (t Tree) child(h uint64, m int) uint64 {
	x := h ^ (uint64(m+1) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// leafValue scores a leaf in [-100, 100].
func (t Tree) leafValue(h uint64) int {
	return int(h%201) - 100
}

// Root returns the root position hash.
func (t Tree) Root() uint64 { return t.Seed * 0x2545F4914F6CDD1D }

// Counters tallies visited nodes.
type Counters struct {
	Nodes  int64
	Leaves int64
}

// alphaBeta is the sequential negamax search with pruning. charge, if
// non-nil, is invoked per visited node so simulated processes can pay for
// the work.
func (t Tree) alphaBeta(h uint64, depth, alpha, beta int, c *Counters, charge func(leaf bool)) int {
	c.Nodes++
	if charge != nil {
		charge(depth == 0)
	}
	if depth == 0 {
		c.Leaves++
		return t.leafValue(h)
	}
	best := -1000
	for m := 0; m < t.Branch; m++ {
		v := -t.alphaBeta(t.child(h, m), depth-1, -beta, -alpha, c, charge)
		if v > best {
			best = v
		}
		if best > alpha {
			alpha = best
		}
		if alpha >= beta {
			break // prune
		}
	}
	return best
}

// Sequential computes the reference minimax value and node counts.
func (t Tree) Sequential() (int, Counters) {
	var c Counters
	v := t.alphaBeta(t.Root(), t.Depth, -1000, 1000, &c, nil)
	return v, c
}

// Result reports a parallel search.
type Result struct {
	Value     int
	BestMove  int
	ElapsedNs int64
	// Nodes is the total visited across all workers (>= sequential: the
	// search overhead of root splitting).
	Nodes int64
	// SeqNodes is the sequential visit count for the same position.
	SeqNodes int64
}

// Overhead returns the extra fraction of nodes the parallel search visited.
func (r Result) Overhead() float64 {
	return float64(r.Nodes-r.SeqNodes) / float64(r.SeqNodes)
}

// nodeCostOps is the integer-operation charge per visited node (move
// generation, ordering) and per leaf (evaluation).
const (
	nodeCostOps = 25
	leafCostOps = 15
)

// Parallel searches the tree with root splitting over `workers` Lynx worker
// processes (plus a master). The master deals root moves round-robin; each
// worker returns its subtree's negamax value; the master folds the results.
func (t Tree) Parallel(workers int) (Result, error) {
	if workers < 1 {
		return Result{}, fmt.Errorf("search: need at least 1 worker")
	}
	if workers > t.Branch {
		workers = t.Branch
	}
	m := machine.New(machine.DefaultConfig(workers + 1))
	os := chrysalis.New(m)

	var totalNodes int64
	// Worker processes, each binding a "search" entry.
	procs := make([]*lynx.Proc, workers)
	for i := 0; i < workers; i++ {
		w, err := lynx.Spawn(os, fmt.Sprintf("worker%d", i), i+1, lynx.DefaultConfig(), nil)
		if err != nil {
			return Result{}, err
		}
		w.Bind("search", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
			move := args.(int)
			var c Counters
			pending := 0
			charge := func(leaf bool) {
				// Batch the per-node charge to bound engine events.
				pending += nodeCostOps
				if leaf {
					pending += leafCostOps
				}
				if pending >= 4000 {
					os.M.IntOps(ht.P(), pending)
					pending = 0
				}
			}
			v := -t.alphaBeta(t.child(t.Root(), move), t.Depth-1, -1000, 1000, &c, charge)
			os.M.IntOps(ht.P(), pending)
			totalNodes += c.Nodes
			return [2]int{move, v}, 2, nil
		})
		procs[i] = w
	}

	res := Result{Value: -1000, BestMove: -1}
	_, err := lynx.Spawn(os, "master", 0, lynx.DefaultConfig(), func(self *lynx.Proc, th *antfarm.Thread) {
		links := make([]*lynx.Link, workers)
		for i, w := range procs {
			links[i] = lynx.NewLink(self, w)
		}
		start := th.P().Engine().Now()
		// Fan the root moves out as concurrent calls (one client thread per
		// outstanding move), then fold the replies.
		done := th.Farm.NewChannel(t.Branch)
		for mv := 0; mv < t.Branch; mv++ {
			mv := mv
			th.Farm.Spawn("call", func(ct *antfarm.Thread) {
				reply, err := self.Call(ct, links[mv%workers], "search", mv, 1)
				if err != nil {
					panic(err)
				}
				done.Send(ct, reply, 2)
			})
		}
		for i := 0; i < t.Branch; i++ {
			v, _ := done.Recv(th)
			pair := v.([2]int)
			if pair[1] > res.Value {
				res.Value = pair[1]
				res.BestMove = pair[0]
			}
		}
		res.ElapsedNs = th.P().Engine().Now() - start
		for _, w := range procs {
			w.Shutdown(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	res.Nodes = totalNodes + 1 // count the root
	_, seq := t.Sequential()
	res.SeqNodes = seq.Nodes
	return res, nil
}
