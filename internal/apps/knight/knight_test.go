package knight

import (
	"testing"

	"butterfly/internal/replay"
	"butterfly/internal/sim"
)

func TestFindsValidTour(t *testing.T) {
	r, err := Run(Config{N: 6, Procs: 4, Start: 0, MaxPool: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Tour.complete() {
		t.Fatalf("tour incomplete: %d/%d", len(r.Tour.Path), 36)
	}
	if err := r.Tour.Valid(); err != nil {
		t.Fatal(err)
	}
	if r.Grabs == 0 {
		t.Error("no pool activity")
	}
}

func TestValidCatchesBadTours(t *testing.T) {
	bad := Tour{N: 5, Path: []int{0, 1}} // not a knight move
	if bad.Valid() == nil {
		t.Error("illegal move accepted")
	}
	dup := Tour{N: 5, Path: []int{0, 7, 0}}
	if dup.Valid() == nil {
		t.Error("revisit accepted")
	}
	oob := Tour{N: 5, Path: []int{99}}
	if oob.Valid() == nil {
		t.Error("out-of-range square accepted")
	}
}

func TestNondeterminismAcrossJitter(t *testing.T) {
	// Different worker timings may find different tours (the program is
	// genuinely racy). We only require both to be valid; if they happen to
	// be equal that's fine too, but the access logs must both be non-empty.
	a, err := Run(Config{N: 6, Procs: 4, Start: 0, MaxPool: 64, Mode: replay.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 6, Procs: 4, Start: 0, MaxPool: 64, Mode: replay.ModeRecord,
		Jitter: []int64{900 * sim.Microsecond, 100, 40 * sim.Microsecond, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Tour.Valid(); err != nil {
		t.Fatal(err)
	}
	if err := b.Tour.Valid(); err != nil {
		t.Fatal(err)
	}
	if len(a.Log) == 0 || len(b.Log) == 0 {
		t.Error("empty access logs")
	}
}

func TestInstantReplayReproducesTour(t *testing.T) {
	// Record a run, then replay its log under very different worker timing:
	// the same tour must come out, with the same pool-access count.
	rec, err := Run(Config{N: 6, Procs: 4, Start: 0, MaxPool: 64, Mode: replay.ModeRecord})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{N: 6, Procs: 4, Start: 0, MaxPool: 64,
		Mode: replay.ModeReplay, Log: rec.Log,
		Jitter: []int64{2 * sim.Millisecond, 0, 700 * sim.Microsecond, 90 * sim.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tour.Path) != len(rec.Tour.Path) {
		t.Fatalf("tour lengths differ: %d vs %d", len(rep.Tour.Path), len(rec.Tour.Path))
	}
	for i := range rec.Tour.Path {
		if rep.Tour.Path[i] != rec.Tour.Path[i] {
			t.Fatalf("replayed tour diverges at move %d", i)
		}
	}
	if rep.Grabs != rec.Grabs {
		t.Errorf("pool accesses differ: %d vs %d", rep.Grabs, rec.Grabs)
	}
}

func TestTooSmallBoard(t *testing.T) {
	if _, err := Run(Config{N: 4, Procs: 2, Start: 0}); err == nil {
		t.Error("4x4 board accepted (no tours exist)")
	}
}

func TestSingleWorker(t *testing.T) {
	r, err := Run(Config{N: 5, Procs: 1, Start: 0, MaxPool: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Tour.Valid(); err != nil {
		t.Fatal(err)
	}
	if !r.Tour.complete() {
		t.Error("incomplete tour")
	}
}
