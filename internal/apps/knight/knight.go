// Package knight implements the non-deterministic knight's tour studied
// with Instant Replay (§3.3 of the paper). Worker processes share a pool of
// partial tours; each worker repeatedly grabs the most promising partial
// tour, extends it by one legal knight move (Warnsdorff-ordered), and puts
// the extensions back. Which worker grabs which partial tour depends on
// timing — the program is genuinely non-deterministic across machines — but
// the pool is an Instant Replay shared object, so a recorded run can be
// replayed exactly, timing differences notwithstanding.
package knight

import (
	"fmt"
	"sort"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/replay"
	"butterfly/internal/sim"
)

// moves are the eight knight offsets.
var moves = [8][2]int{
	{1, 2}, {2, 1}, {2, -1}, {1, -2},
	{-1, -2}, {-2, -1}, {-2, 1}, {-1, 2},
}

// Tour is a sequence of visited squares on an N x N board.
type Tour struct {
	N    int
	Path []int // square indices y*N+x, in visit order
}

// complete reports whether every square is visited.
func (t Tour) complete() bool { return len(t.Path) == t.N*t.N }

// Valid checks the path is a legal knight's tour prefix.
func (t Tour) Valid() error {
	seen := make([]bool, t.N*t.N)
	for i, sq := range t.Path {
		if sq < 0 || sq >= t.N*t.N {
			return fmt.Errorf("knight: square %d out of range", sq)
		}
		if seen[sq] {
			return fmt.Errorf("knight: square %d visited twice", sq)
		}
		seen[sq] = true
		if i > 0 {
			ax, ay := t.Path[i-1]%t.N, t.Path[i-1]/t.N
			bx, by := sq%t.N, sq/t.N
			dx, dy := ax-bx, ay-by
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if !(dx == 1 && dy == 2 || dx == 2 && dy == 1) {
				return fmt.Errorf("knight: illegal move %d -> %d", t.Path[i-1], sq)
			}
		}
	}
	return nil
}

// extensions returns the legal continuations, Warnsdorff-ordered (fewest
// onward moves first), which makes the search finish quickly.
func extensions(t Tour) []Tour {
	n := t.N
	seen := make([]bool, n*n)
	for _, sq := range t.Path {
		seen[sq] = true
	}
	last := t.Path[len(t.Path)-1]
	x, y := last%n, last/n
	degree := func(sq int) int {
		sx, sy := sq%n, sq/n
		d := 0
		for _, mv := range moves {
			nx, ny := sx+mv[0], sy+mv[1]
			if nx >= 0 && nx < n && ny >= 0 && ny < n && !seen[ny*n+nx] {
				d++
			}
		}
		return d
	}
	var next []int
	for _, mv := range moves {
		nx, ny := x+mv[0], y+mv[1]
		if nx >= 0 && nx < n && ny >= 0 && ny < n && !seen[ny*n+nx] {
			next = append(next, ny*n+nx)
		}
	}
	sort.Slice(next, func(a, b int) bool {
		da, db := degree(next[a]), degree(next[b])
		if da != db {
			return da < db
		}
		return next[a] < next[b]
	})
	out := make([]Tour, 0, len(next))
	for _, sq := range next {
		out = append(out, Tour{N: n, Path: append(append([]int(nil), t.Path...), sq)})
	}
	return out
}

// Config parameterizes a parallel search.
type Config struct {
	N       int
	Procs   int
	Start   int // starting square
	Mode    replay.Mode
	Log     []replay.Entry // replay input when Mode == ModeReplay
	Jitter  []int64        // per-worker extra delay (ns), varies the race
	MaxPool int
}

// Result reports a run.
type Result struct {
	Tour      Tour
	Grabs     int // pool operations performed
	ElapsedNs int64
	Log       []replay.Entry
}

// Run searches for a knight's tour with `procs` workers sharing a
// best-first pool. The pool is a monitored Instant Replay object: every
// grab/insert is a Write access, so record mode captures the exact
// interleaving and replay mode reproduces it under different timing.
func Run(cfg Config) (Result, error) {
	if cfg.N < 5 {
		return Result{}, fmt.Errorf("knight: board too small for tours (N=%d)", cfg.N)
	}
	m := machine.New(machine.DefaultConfig(cfg.Procs))
	os := chrysalis.New(m)

	var mon *replay.Monitor
	switch cfg.Mode {
	case replay.ModeReplay:
		mon = replay.NewReplayMonitor(os, cfg.Log)
	default:
		mon = replay.NewMonitor(os, cfg.Mode)
	}
	poolObj := mon.NewObject("pool", 0)

	// Best-first pool ordered by path length (longest first).
	var pool []Tour
	pool = append(pool, Tour{N: cfg.N, Path: []int{cfg.Start}})
	var found *Tour
	grabs := 0

	wq := sim.NewWaitQueue("knight pool")
	idle := 0

	for w := 0; w < cfg.Procs; w++ {
		w := w
		jitter := int64(0)
		if w < len(cfg.Jitter) {
			jitter = cfg.Jitter[w]
		}
		if _, err := os.MakeProcess(nil, fmt.Sprintf("knight%d", w), w, 16, func(self *chrysalis.Process) {
			for {
				// Every control decision (stop, grab, spin) is taken inside
				// the monitored access, so the worker's behaviour is fully
				// determined by the forced access order during replay.
				var work *Tour
				stop := false
				poolObj.Write(self.P, func() {
					grabs++
					if found != nil {
						stop = true
						return
					}
					if len(pool) > 0 {
						// Grab the longest prefix (best-first).
						best := 0
						for i := range pool {
							if len(pool[i].Path) > len(pool[best].Path) {
								best = i
							}
						}
						t := pool[best]
						pool = append(pool[:best], pool[best+1:]...)
						work = &t
					}
				})
				if stop {
					return
				}
				if work == nil {
					// Pool drained but the search is alive: park briefly.
					idle++
					if idle >= cfg.Procs {
						// Nothing anywhere: no tour from this square.
						wq.WakeAll(m.E, 0)
						return
					}
					self.P.Advance(200 * sim.Microsecond)
					idle--
					continue
				}
				m.IntOps(self.P, 200) // move generation and ordering
				self.P.Advance(jitter)
				if work.complete() {
					poolObj.Write(self.P, func() {
						if found == nil {
							found = work
						}
					})
					return
				}
				exts := extensions(*work)
				if len(exts) == 0 {
					continue // dead end
				}
				poolObj.Write(self.P, func() {
					// Keep the pool bounded; best-first means dropping the
					// shortest entries is safe for finding some tour.
					pool = append(pool, exts...)
					if max := cfg.MaxPool; max > 0 && len(pool) > max {
						sort.Slice(pool, func(a, b int) bool {
							return len(pool[a].Path) > len(pool[b].Path)
						})
						pool = pool[:max]
					}
				})
			}
		}); err != nil {
			return Result{}, err
		}
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	res := Result{Grabs: grabs, ElapsedNs: m.E.Now(), Log: mon.Log()}
	if cfg.Mode == replay.ModeReplay {
		res.Log = cfg.Log
	}
	if found == nil {
		return res, fmt.Errorf("knight: no tour found from square %d", cfg.Start)
	}
	res.Tour = *found
	return res, nil
}
