package hough

import (
	"testing"
)

func smallImage() *Image {
	return SyntheticImage(64, 64, 5, 0.08, 1)
}

func TestMatchesReference(t *testing.T) {
	im := smallImage()
	ref := Reference(im, 45)
	for _, v := range []Variant{VariantShared, VariantCached, VariantLocalTables} {
		r, err := Run(Config{Image: im, Angles: 45, Procs: 4, Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if err := Equal(ref, r.Votes); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

func TestCachingHelps(t *testing.T) {
	im := smallImage()
	shared, err := Run(Config{Image: im, Angles: 45, Procs: 8, Variant: VariantShared})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(Config{Image: im, Angles: 45, Procs: 8, Variant: VariantCached})
	if err != nil {
		t.Fatal(err)
	}
	if cached.ElapsedNs >= shared.ElapsedNs {
		t.Errorf("caching did not help: %d vs %d", cached.ElapsedNs, shared.ElapsedNs)
	}
}

func TestLocalTablesHelp(t *testing.T) {
	im := smallImage()
	cached, err := Run(Config{Image: im, Angles: 45, Procs: 8, Variant: VariantCached})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Run(Config{Image: im, Angles: 45, Procs: 8, Variant: VariantLocalTables})
	if err != nil {
		t.Fatal(err)
	}
	if tables.ElapsedNs >= cached.ElapsedNs {
		t.Errorf("local tables did not help: %d vs %d", tables.ElapsedNs, cached.ElapsedNs)
	}
}

func TestPeaksFindPlantedLines(t *testing.T) {
	// An image with 2 strong lines must put them among the top peaks.
	im := SyntheticImage(96, 96, 2, 0.0, 7)
	r, err := Run(Config{Image: im, Angles: 60, Procs: 4, Variant: VariantLocalTables})
	if err != nil {
		t.Fatal(err)
	}
	peaks := r.Peaks(4)
	if len(peaks) == 0 {
		t.Fatal("no peaks found")
	}
	// The strongest peak must collect a line's worth of votes.
	best := r.Votes[peaks[0][0]][peaks[0][1]]
	if best < 40 {
		t.Errorf("top peak only %d votes; line not detected", best)
	}
}

func TestSyntheticImageDeterministic(t *testing.T) {
	a := SyntheticImage(32, 32, 2, 0.05, 3)
	b := SyntheticImage(32, 32, 2, 0.05, 3)
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatal("images differ for same seed")
		}
	}
	c := SyntheticImage(32, 32, 2, 0.05, 4)
	same := true
	for i := range a.Pixels {
		if a.Pixels[i] != c.Pixels[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical images")
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantShared.String() == "" || VariantCached.String() == "" ||
		VariantLocalTables.String() == "" || Variant(9).String() != "unknown" {
		t.Error("bad variant strings")
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 58) != 42 {
		t.Errorf("Speedup = %v", Speedup(100, 58))
	}
}
