// Package hough implements the Hough-transform line finder of the DARPA
// benchmark suite (Olson, BPR 10), the paper's showcase for the Uniform
// System caching idiom (§4.1): copying blocks of data from the (logically)
// global shared memory into local memory improved performance by 42% on 64
// processors, and keeping lookup tables for transcendental functions in
// local memory improved it by a further 22%.
//
// Three variants reproduce the progression:
//
//   - VariantShared: the naive port. Tasks read image rows from shared
//     memory word by word, fetch sine/cosine values from the shared trig
//     table (two remote references per angle), and cast votes directly into
//     the shared accumulator under per-angle spin locks.
//   - VariantCached: + block-copy caching. Image rows are block-copied to
//     local memory and votes accumulate into a local array merged at the
//     end of the run; the trig table is still read remotely.
//   - VariantLocalTables: + per-processor trig tables, built once per
//     worker with software floating point and kept in local memory across
//     tasks, so the per-angle fetches become local references.
package hough

import (
	"fmt"
	"math"
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// Variant selects the implementation style.
type Variant int

// Variants, in the order the Rochester vision group improved the code.
const (
	VariantShared Variant = iota
	VariantCached
	VariantLocalTables
)

func (v Variant) String() string {
	switch v {
	case VariantShared:
		return "shared (no caching)"
	case VariantCached:
		return "block-copy caching"
	case VariantLocalTables:
		return "caching + local tables"
	}
	return "unknown"
}

// Image is a binary edge image.
type Image struct {
	W, H   int
	Pixels []bool
}

// At reports the pixel at (x, y).
func (im *Image) At(x, y int) bool { return im.Pixels[y*im.W+x] }

// SyntheticImage builds a W x H edge image containing strong lines plus
// salt noise — the workload shape that makes Hough peaks (and their lock
// convoys) realistic.
func SyntheticImage(w, h, lines int, noise float64, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := &Image{W: w, H: h, Pixels: make([]bool, w*h)}
	for l := 0; l < lines; l++ {
		theta := rng.Float64() * math.Pi
		rho := (rng.Float64() - 0.5) * float64(w+h) / 2
		c, s := math.Cos(theta), math.Sin(theta)
		for t := -w - h; t < w+h; t++ {
			x := int(rho*c - float64(t)*s + float64(w)/2)
			y := int(rho*s + float64(t)*c + float64(h)/2)
			if x >= 0 && x < w && y >= 0 && y < h {
				im.Pixels[y*w+x] = true
			}
		}
	}
	for i := range im.Pixels {
		if rng.Float64() < noise {
			im.Pixels[i] = true
		}
	}
	return im
}

// Config parameterizes a run.
type Config struct {
	Image   *Image
	Angles  int // theta resolution (the benchmark used 180)
	Procs   int
	Variant Variant
}

// Result reports one run.
type Result struct {
	Variant   Variant
	Procs     int
	ElapsedNs int64
	// Votes is the accumulator, Angles x NRho.
	Votes [][]int
	NRho  int
}

// trigFlops is the software-floating-point cost of evaluating one
// sine/cosine pair (a polynomial approximation on the MC68000).
const trigFlops = 10

// NRhoFor returns the rho resolution used for a given image (rho is
// quantized to two-pixel buckets, halving the accumulator).
func NRhoFor(im *Image) int { return im.W + im.H }

// Reference computes the transform sequentially in plain Go (no simulation)
// for correctness checks.
func Reference(im *Image, angles int) [][]int {
	nrho := NRhoFor(im)
	votes := make([][]int, angles)
	for a := range votes {
		votes[a] = make([]int, nrho)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			if !im.At(x, y) {
				continue
			}
			for a := 0; a < angles; a++ {
				th := float64(a) * math.Pi / float64(angles)
				rho := float64(x)*math.Cos(th) + float64(y)*math.Sin(th)
				votes[a][(int(rho)+im.W+im.H)/2]++
			}
		}
	}
	return votes
}

// Run executes the parallel transform on a simulated machine and returns the
// timing plus the (verified-identical) accumulator.
func Run(cfg Config) (Result, error) {
	im := cfg.Image
	nrho := NRhoFor(im)
	m := machine.New(machine.DefaultConfig(cfg.Procs))
	os := chrysalis.New(m)

	votes := make([][]int, cfg.Angles)
	for a := range votes {
		votes[a] = make([]int, nrho)
	}
	// Per-worker local accumulators for the cached variants.
	local := make([][][]int, cfg.Procs)

	// Vote-cell spin locks for the shared variant: one lock per theta row,
	// co-located with that row of the accumulator (scattered round-robin).
	locks := make([]*chrysalis.SpinLock, cfg.Angles)
	for a := range locks {
		locks[a] = os.NewSpinLock(a % cfg.Procs)
	}

	// tablesReady[w] marks that worker w has built its local trig tables.
	tablesReady := make([]bool, cfg.Procs)

	var start, end int64
	ucfg := us.DefaultConfig(cfg.Procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start = m.E.Now()
		w.U.GenOnIndex(w, im.H, func(tw *us.Worker, row int) {
			p := tw.P
			// --- fetch the image row ---
			if cfg.Variant == VariantShared {
				m.Read(p, row%cfg.Procs, im.W/32+1) // bitmap words, word at a time
			} else {
				m.BlockCopy(p, row%cfg.Procs, p.Node, im.W/32+1)
			}
			// --- trig tables ---
			if cfg.Variant == VariantLocalTables && !tablesReady[tw.ID] {
				// Once per worker: build the table into local memory with
				// software floating point.
				m.Flops(p, cfg.Angles*trigFlops)
				m.Write(p, p.Node, 2*cfg.Angles)
				tablesReady[tw.ID] = true
			}
			if cfg.Variant != VariantShared && local[tw.ID] == nil {
				acc := make([][]int, cfg.Angles)
				for a := range acc {
					acc[a] = make([]int, nrho)
				}
				local[tw.ID] = acc
			}
			// --- accumulate ---
			for x := 0; x < im.W; x++ {
				if !im.At(x, row) {
					continue
				}
				// Per-angle compute: rho = x*cos(theta) + y*sin(theta) plus
				// a local vote for the cached variants; charged in one event
				// for the whole angle sweep. Remote operations (shared table
				// fetches, locked shared votes) are charged per angle below.
				costPerAngle := 2 * m.Cfg.FlopNs
				if cfg.Variant == VariantLocalTables {
					// Three local table references per angle (coarse table
					// plus two-point interpolation).
					costPerAngle += 3 * (m.Cfg.LocalOverheadNs + m.Cfg.MemCycleNs)
				}
				if cfg.Variant != VariantShared {
					costPerAngle += m.Cfg.LocalOverheadNs + m.Cfg.MemCycleNs // local vote
				}
				p.Advance(int64(cfg.Angles) * costPerAngle)
				for a := 0; a < cfg.Angles; a++ {
					th := float64(a) * math.Pi / float64(cfg.Angles)
					rho := float64(x)*math.Cos(th) + float64(row)*math.Sin(th)
					cell := (int(rho) + im.W + im.H) / 2
					switch cfg.Variant {
					case VariantShared, VariantCached:
						// Fetch cos/sin from the shared scattered table
						// (coarse table plus two-point interpolation).
						m.Read(p, a%cfg.Procs, 3)
					default:
						// Local table: already charged in costPerAngle.
					}
					if cfg.Variant == VariantShared {
						// Locked vote straight into shared memory: load the
						// cell, increment, store it back — all under the
						// per-angle spin lock.
						locks[a].Lock(p)
						m.Read(p, a%cfg.Procs, 1)
						m.Write(p, a%cfg.Procs, 1)
						votes[a][cell]++
						locks[a].Unlock(p)
					} else {
						local[tw.ID][a][cell]++
					}
				}
			}
		})
		// --- merge local accumulators (cached variants) ---
		// Each worker merges one theta band from every local accumulator,
		// so the merge itself is parallel (a serial merge would dwarf the
		// kernel at 64 processors).
		if cfg.Variant != VariantShared {
			w.U.GenOnIndex(w, cfg.Procs, func(tw *us.Worker, band int) {
				lo := band * cfg.Angles / cfg.Procs
				hi := (band + 1) * cfg.Angles / cfg.Procs
				bandWords := (hi - lo) * nrho
				if bandWords == 0 {
					return
				}
				// Bands start at different source accumulators so the copies
				// do not march across the memories in lockstep.
				for j := 0; j < cfg.Procs; j++ {
					id := (band + j) % cfg.Procs
					if local[id] == nil {
						continue
					}
					m.BlockCopy(tw.P, id, tw.P.Node, bandWords)
					m.IntOps(tw.P, bandWords/2)
					for a := lo; a < hi; a++ {
						for r := 0; r < nrho; r++ {
							votes[a][r] += local[id][a][r]
						}
					}
				}
			})
		}
		end = m.E.Now()
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{
		Variant:   cfg.Variant,
		Procs:     cfg.Procs,
		ElapsedNs: end - start,
		Votes:     votes,
		NRho:      nrho,
	}, nil
}

// Peaks returns the k highest-vote (theta, rho) cells — the detected lines.
func (r Result) Peaks(k int) [][2]int {
	type cell struct{ a, rho, v int }
	var best []cell
	for a := range r.Votes {
		for rho, v := range r.Votes[a] {
			if v == 0 {
				continue
			}
			best = append(best, cell{a, rho, v})
		}
	}
	// Partial selection sort: k is small.
	out := make([][2]int, 0, k)
	for len(out) < k && len(best) > 0 {
		m := 0
		for i := range best {
			if best[i].v > best[m].v {
				m = i
			}
		}
		out = append(out, [2]int{best[m].a, best[m].rho})
		best = append(best[:m], best[m+1:]...)
	}
	return out
}

// Equal reports whether two accumulators match exactly.
func Equal(a, b [][]int) error {
	if len(a) != len(b) {
		return fmt.Errorf("hough: angle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("hough: votes differ at (%d,%d): %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}

// Speedup is a convenience for experiment tables.
func Speedup(base, improved int64) float64 {
	return float64(base-improved) / float64(base) * 100
}
