package queens

import "testing"

func TestKnownCounts(t *testing.T) {
	want := map[int]int{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		if got := CountSequential(n); got != w {
			t.Errorf("sequential %d-queens = %d, want %d", n, got, w)
		}
	}
}

func TestParallelMatches(t *testing.T) {
	for _, n := range []int{6, 8} {
		r, err := CountParallel(n, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r.Solutions != CountSequential(n) {
			t.Errorf("parallel %d-queens = %d, want %d", n, r.Solutions, CountSequential(n))
		}
		if r.Tasks == 0 || r.ElapsedNs <= 0 {
			t.Errorf("result = %+v", r)
		}
	}
}

func TestSpeedup(t *testing.T) {
	r1, err := CountParallel(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := CountParallel(9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s := float64(r1.ElapsedNs) / float64(r8.ElapsedNs); s < 3 {
		t.Errorf("speedup on 8 procs = %.1f", s)
	}
}

func TestTaskCount(t *testing.T) {
	// First-two-row placements for n=8: 8*8 minus same-column and the two
	// adjacent diagonals.
	r, err := CountParallel(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tasks != 42 {
		t.Errorf("tasks = %d, want 42", r.Tasks)
	}
}
