// Package queens implements the 8-queens class project of §3.1 under the
// Uniform System: the first two queen placements define independent subtrees
// that become run-to-completion tasks, and each task backtracks over the
// remaining rows in local memory. Counting all solutions for n=8 must give
// the textbook 92.
package queens

import (
	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// CountSequential backtracks in plain Go (the reference).
func CountSequential(n int) int {
	cols := make([]int, n)
	return place(cols, 0, n)
}

func place(cols []int, row, n int) int {
	if row == n {
		return 1
	}
	count := 0
	for c := 0; c < n; c++ {
		if legal(cols, row, c) {
			cols[row] = c
			count += place(cols, row+1, n)
		}
	}
	return count
}

func legal(cols []int, row, c int) bool {
	for r := 0; r < row; r++ {
		if cols[r] == c || cols[r]-c == row-r || c-cols[r] == row-r {
			return false
		}
	}
	return true
}

// Result reports a parallel run.
type Result struct {
	N         int
	Procs     int
	Solutions int
	Tasks     int
	ElapsedNs int64
}

// CountParallel counts n-queens solutions with one Uniform System task per
// legal placement of the first two queens. The per-task subtree search is
// charged as integer work proportional to the nodes it visits.
func CountParallel(n, procs int) (Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)

	// Enumerate the first-two-row placements (the task list).
	type seed struct{ c0, c1 int }
	var seeds []seed
	for c0 := 0; c0 < n; c0++ {
		for c1 := 0; c1 < n; c1++ {
			probe := []int{c0}
			if legal(probe, 1, c1) {
				seeds = append(seeds, seed{c0, c1})
			}
		}
	}

	res := Result{N: n, Procs: procs, Tasks: len(seeds)}
	total := 0
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		w.U.GenOnIndex(w, len(seeds), func(tw *us.Worker, i int) {
			cols := make([]int, n)
			cols[0], cols[1] = seeds[i].c0, seeds[i].c1
			nodes := 0
			count := placeCounting(cols, 2, n, &nodes)
			// ~30 integer ops per visited search node, all local.
			m.IntOps(tw.P, 30*nodes)
			total += count
		})
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	res.Solutions = total
	return res, nil
}

func placeCounting(cols []int, row, n int, nodes *int) int {
	*nodes++
	if row == n {
		return 1
	}
	count := 0
	for c := 0; c < n; c++ {
		if legal(cols, row, c) {
			cols[row] = c
			count += placeCounting(cols, row+1, n, nodes)
		}
	}
	return count
}
