// Package subgraph implements the DARPA benchmark study's subgraph
// isomorphism problem (Costanzo, Crowl, Sanchis & Srinivas, BPR 14; §3.1 of
// the paper): counting the embeddings of a small pattern graph in a larger
// target graph by backtracking search. The parallel version deals the
// top-level branches (candidate images of the first pattern vertex) to
// Uniform System tasks, each of which backtracks independently — the same
// decomposition the benchmark used.
package subgraph

import (
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// Graph is a simple undirected graph as an adjacency matrix (the benchmark
// sizes are small enough that matrices beat lists).
type Graph struct {
	N   int
	Adj [][]bool
}

// NewGraph allocates an empty graph.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]bool, n)}
	for i := range g.Adj {
		g.Adj[i] = make([]bool, n)
	}
	return g
}

// AddEdge inserts an undirected edge.
func (g *Graph) AddEdge(a, b int) {
	g.Adj[a][b] = true
	g.Adj[b][a] = true
}

// Random builds a G(n, p)-style graph.
func Random(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// Cycle builds the n-cycle (a handy pattern with a known embedding count).
func Cycle(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// CountSequential counts the injective mappings of pattern into target that
// preserve pattern adjacency (subgraph isomorphisms, counting each labelled
// embedding once).
func CountSequential(pattern, target *Graph) int {
	used := make([]bool, target.N)
	assign := make([]int, pattern.N)
	nodes := 0
	return extend(pattern, target, 0, assign, used, &nodes)
}

// extend assigns pattern vertex v and recurses; nodes counts search states.
func extend(pat, tgt *Graph, v int, assign []int, used []bool, nodes *int) int {
	*nodes++
	if v == pat.N {
		return 1
	}
	count := 0
candidates:
	for c := 0; c < tgt.N; c++ {
		if used[c] {
			continue
		}
		// Every already-assigned pattern neighbour of v must map to a
		// target neighbour of c.
		for u := 0; u < v; u++ {
			if pat.Adj[v][u] && !tgt.Adj[c][assign[u]] {
				continue candidates
			}
		}
		assign[v] = c
		used[c] = true
		count += extend(pat, tgt, v+1, assign, used, nodes)
		used[c] = false
	}
	return count
}

// Result reports a parallel run.
type Result struct {
	Count     int
	Procs     int
	Tasks     int
	ElapsedNs int64
	Nodes     int
}

// CountParallel counts embeddings with one Uniform System task per candidate
// image of pattern vertex 0. Each task copies the (small) pattern and the
// target's adjacency rows it needs into local memory, then backtracks with
// local references only — the benchmark's winning structure.
func CountParallel(pattern, target *Graph, procs int) (Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	res := Result{Procs: procs, Tasks: target.N}
	total := 0
	totalNodes := 0
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		w.U.GenOnIndex(w, target.N, func(tw *us.Worker, c0 int) {
			// Copy the adjacency data into local memory once per task.
			words := (target.N*target.N)/32 + pattern.N*pattern.N/32 + 2
			m.BlockCopy(tw.P, c0%procs, tw.P.Node, words)
			used := make([]bool, target.N)
			assign := make([]int, pattern.N)
			assign[0] = c0
			used[c0] = true
			nodes := 0
			cnt := extend(pattern, target, 1, assign, used, &nodes)
			m.IntOps(tw.P, 12*nodes) // candidate filtering per search state
			total += cnt
			totalNodes += nodes
		})
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	res.Count = total
	res.Nodes = totalNodes
	return res, nil
}
