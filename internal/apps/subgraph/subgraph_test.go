package subgraph

import (
	"testing"
	"testing/quick"
)

func TestTriangleInK4(t *testing.T) {
	// K4 contains 4 triangles; each has 3! labelled embeddings = 24.
	k4 := NewGraph(4)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			k4.AddEdge(a, b)
		}
	}
	tri := Cycle(3)
	if got := CountSequential(tri, k4); got != 24 {
		t.Errorf("triangles in K4 = %d, want 24", got)
	}
}

func TestEdgeInPath(t *testing.T) {
	// P3 (path a-b-c) contains 2 edges; each maps 2 ways = 4 embeddings of K2.
	p3 := NewGraph(3)
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	k2 := NewGraph(2)
	k2.AddEdge(0, 1)
	if got := CountSequential(k2, p3); got != 4 {
		t.Errorf("edges in P3 = %d, want 4", got)
	}
}

func TestCycleInCycle(t *testing.T) {
	// C5 in C5: the automorphisms of a 5-cycle = 10.
	c5 := Cycle(5)
	if got := CountSequential(c5, c5); got != 10 {
		t.Errorf("C5 automorphisms = %d, want 10", got)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	pattern := Cycle(4)
	target := Random(24, 0.3, 1)
	want := CountSequential(pattern, target)
	r, err := CountParallel(pattern, target, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count != want {
		t.Errorf("parallel count = %d, want %d", r.Count, want)
	}
	if r.Tasks != 24 {
		t.Errorf("tasks = %d", r.Tasks)
	}
}

func TestParallelProperty(t *testing.T) {
	check := func(seed int64) bool {
		pattern := Random(4, 0.6, seed+100)
		target := Random(16, 0.35, seed)
		want := CountSequential(pattern, target)
		r, err := CountParallel(pattern, target, 4)
		return err == nil && r.Count == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	pattern := Cycle(5)
	target := Random(40, 0.25, 7)
	r1, err := CountParallel(pattern, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := CountParallel(pattern, target, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != r8.Count {
		t.Fatalf("counts differ: %d vs %d", r1.Count, r8.Count)
	}
	if s := float64(r1.ElapsedNs) / float64(r8.ElapsedNs); s < 3 {
		t.Errorf("speedup on 8 procs = %.1f", s)
	}
}

func TestNoEmbeddings(t *testing.T) {
	// A triangle cannot embed in a tree.
	tree := NewGraph(5)
	tree.AddEdge(0, 1)
	tree.AddEdge(0, 2)
	tree.AddEdge(1, 3)
	tree.AddEdge(1, 4)
	if got := CountSequential(Cycle(3), tree); got != 0 {
		t.Errorf("triangles in tree = %d", got)
	}
}
