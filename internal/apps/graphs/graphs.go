// Package graphs implements the graph applications the paper draws on: the
// DARPA benchmark study's connected component labeling and minimum-cost path
// (§3.1), and the pedagogical transitive closure class project. All three
// run under the Uniform System with real data and verified answers; the
// paper's claim of "significant speedups (often almost linear) using over
// 100 processors" on graph algorithms is experiment E13.
package graphs

import (
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// Graph is an undirected graph in adjacency-list form with non-negative
// edge weights (weights are ignored by the component labeler).
type Graph struct {
	N   int
	Adj [][]Edge
}

// Edge is one incident edge.
type Edge struct {
	To     int
	Weight int
}

// Random builds a connected-ish random graph with the given edge factor.
func Random(n, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Adj: make([][]Edge, n)}
	addEdge := func(a, b, w int) {
		g.Adj[a] = append(g.Adj[a], Edge{b, w})
		g.Adj[b] = append(g.Adj[b], Edge{a, w})
	}
	// A few disjoint chains to make components interesting, then random
	// extra edges within blocks.
	blocks := 4
	for b := 0; b < blocks; b++ {
		lo, hi := b*n/blocks, (b+1)*n/blocks
		for v := lo + 1; v < hi; v++ {
			addEdge(v-1, v, 1+rng.Intn(9))
		}
		for e := 0; e < (hi-lo)*degree/2; e++ {
			a := lo + rng.Intn(hi-lo)
			c := lo + rng.Intn(hi-lo)
			if a != c {
				addEdge(a, c, 1+rng.Intn(9))
			}
		}
	}
	return g
}

// ComponentsRef labels components sequentially (reference).
func ComponentsRef(g *Graph) []int {
	label := make([]int, g.N)
	for i := range label {
		label[i] = -1
	}
	next := 0
	for s := 0; s < g.N; s++ {
		if label[s] >= 0 {
			continue
		}
		stack := []int{s}
		label[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Adj[v] {
				if label[e.To] < 0 {
					label[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return label
}

// SameComponents checks two labelings agree up to renaming.
func SameComponents(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// Result carries a run's timing.
type Result struct {
	Procs     int
	ElapsedNs int64
	Rounds    int
}

// Components labels connected components in parallel by iterated label
// propagation (each vertex repeatedly adopts the minimum label in its
// neighbourhood), the classic DARPA-benchmark formulation. It returns the
// labels and timing.
func Components(g *Graph, procs int) ([]int, Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	label := make([]int, g.N)
	for i := range label {
		label[i] = i
	}
	nodeOf := func(v int) int { return v % procs }
	rounds := 0
	var res Result
	// Vertices are processed in bands: a task per vertex would be throttled
	// by the global work queue (tasks must be "on the order of a single
	// subroutine call", §2.3), so each task sweeps a band of vertices.
	bands := 4 * procs
	if bands > g.N {
		bands = g.N
	}
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		for {
			changed := false
			// Jacobi-style rounds: every vertex reads the previous round's
			// labels, so the number of rounds is independent of the task
			// decomposition (and of P).
			prev := append([]int(nil), label...)
			w.U.GenOnIndex(w, bands, func(tw *us.Worker, band int) {
				lo := band * g.N / bands
				hi := (band + 1) * g.N / bands
				perNode := make([]int, procs)
				for v := lo; v < hi; v++ {
					best := prev[v]
					for _, e := range g.Adj[v] {
						if prev[e.To] < best {
							best = prev[e.To]
						}
						perNode[nodeOf(e.To)]++
					}
					if best < label[v] {
						label[v] = best
						changed = true
					}
				}
				// Each edge examination reads the neighbour's label from
				// its actual home memory, interleaved with the comparisons.
				// Bands start their sweeps at different nodes so they do not
				// march across the memories in lockstep.
				for j := 0; j < procs; j++ {
					node := (band + j) % procs
					if cnt := perNode[node]; cnt > 0 {
						m.Sweep(tw.P, cnt, 6*m.Cfg.IntOpNs, []machine.Ref{{Node: node, Words: 1}})
					}
				}
				m.Write(tw.P, nodeOf(lo), (hi-lo+31)/32)
			})
			rounds++
			if !changed {
				break
			}
		}
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return nil, Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return nil, Result{}, err
	}
	res.Procs = procs
	res.Rounds = rounds
	return label, res, nil
}

// Infinity marks unreachable vertices in shortest-path results.
const Infinity = int(^uint(0) >> 1)

// ShortestPathsRef is sequential Dijkstra-less Bellman-Ford (reference).
func ShortestPathsRef(g *Graph, src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	for {
		changed := false
		for v := 0; v < g.N; v++ {
			if dist[v] == Infinity {
				continue
			}
			for _, e := range g.Adj[v] {
				if d := dist[v] + e.Weight; d < dist[e.To] {
					dist[e.To] = d
					changed = true
				}
			}
		}
		if !changed {
			return dist
		}
	}
}

// ShortestPaths computes single-source minimum-cost paths in parallel
// (round-synchronous Bellman-Ford relaxation under the Uniform System) — the
// DARPA "minimum-cost path in a graph" benchmark.
func ShortestPaths(g *Graph, src, procs int) ([]int, Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	nodeOf := func(v int) int { return v % procs }
	var res Result
	bands := 4 * procs
	if bands > g.N {
		bands = g.N
	}
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		for {
			changed := false
			next := append([]int(nil), dist...)
			w.U.GenOnIndex(w, bands, func(tw *us.Worker, band int) {
				lo := band * g.N / bands
				hi := (band + 1) * g.N / bands
				perNode := make([]int, procs)
				for v := lo; v < hi; v++ {
					best := dist[v]
					for _, e := range g.Adj[v] {
						perNode[nodeOf(e.To)]++
						if dist[e.To] == Infinity {
							continue
						}
						if d := dist[e.To] + e.Weight; d < best {
							best = d
						}
					}
					if best < next[v] {
						next[v] = best
						changed = true
					}
				}
				// Each relaxation reads the neighbour's distance and weight
				// from its home memory, sweeping nodes in a band-skewed
				// order to avoid lockstep convoys.
				for j := 0; j < procs; j++ {
					node := (band + j) % procs
					if cnt := perNode[node]; cnt > 0 {
						m.Sweep(tw.P, cnt, 8*m.Cfg.IntOpNs, []machine.Ref{{Node: node, Words: 2}})
					}
				}
				m.Write(tw.P, nodeOf(lo), (hi-lo+31)/32)
			})
			copy(dist, next)
			res.Rounds++
			if !changed {
				break
			}
		}
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return nil, Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return nil, Result{}, err
	}
	res.Procs = procs
	return dist, res, nil
}

// TransitiveClosureRef computes reachability sequentially (reference),
// returning bitsets as [][]bool.
func TransitiveClosureRef(g *Graph) [][]bool {
	reach := make([][]bool, g.N)
	for v := range reach {
		reach[v] = make([]bool, g.N)
		reach[v][v] = true
		for _, e := range g.Adj[v] {
			reach[v][e.To] = true
		}
	}
	for k := 0; k < g.N; k++ {
		for i := 0; i < g.N; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < g.N; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

// TransitiveClosure computes reachability in parallel: the Warshall k-loop
// is sequential, but each k-step parallelizes over rows (one task per row) —
// the graph transitive closure class project of §3.1.
func TransitiveClosure(g *Graph, procs int) ([][]bool, Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	reach := make([][]bool, g.N)
	for v := range reach {
		reach[v] = make([]bool, g.N)
		reach[v][v] = true
		for _, e := range g.Adj[v] {
			reach[v][e.To] = true
		}
	}
	nodeOf := func(v int) int { return v % procs }
	var res Result
	words := (g.N + 31) / 32
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		for k := 0; k < g.N; k++ {
			k := k
			w.U.GenOnIndex(w, g.N, func(tw *us.Worker, i int) {
				if !reach[i][k] {
					m.Read(tw.P, nodeOf(i), 1)
					return
				}
				// Fetch row k (remote block copy), OR it into row i.
				m.BlockCopy(tw.P, nodeOf(k), tw.P.Node, words)
				m.IntOps(tw.P, words)
				m.Write(tw.P, nodeOf(i), words)
				for j := 0; j < g.N; j++ {
					if reach[k][j] {
						reach[i][j] = true
					}
				}
			})
			res.Rounds++
		}
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return nil, Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return nil, Result{}, err
	}
	res.Procs = procs
	return reach, res, nil
}
