package graphs

import (
	"testing"
	"testing/quick"
)

func TestComponentsMatchReference(t *testing.T) {
	g := Random(300, 3, 1)
	ref := ComponentsRef(g)
	got, res, err := Components(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !SameComponents(ref, got) {
		t.Error("component labelings disagree")
	}
	if res.Rounds == 0 || res.ElapsedNs <= 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestComponentsProperty(t *testing.T) {
	check := func(seed int64) bool {
		g := Random(120, 2, seed)
		ref := ComponentsRef(g)
		got, _, err := Components(g, 4)
		return err == nil && SameComponents(ref, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestComponentsFindsFourBlocks(t *testing.T) {
	g := Random(400, 3, 2)
	labels := ComponentsRef(g)
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) != 4 {
		t.Errorf("components = %d, want 4 (test graph is 4 blocks)", len(distinct))
	}
}

func TestShortestPathsMatchReference(t *testing.T) {
	g := Random(200, 3, 3)
	ref := ShortestPathsRef(g, 0)
	got, res, err := ShortestPaths(g, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], ref[v])
		}
	}
	if res.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := Random(100, 2, 4) // 4 disjoint blocks; most vertices unreachable from 0
	got, _, err := ShortestPaths(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[len(got)-1] != Infinity {
		t.Error("vertex in another component reachable")
	}
	if got[0] != 0 {
		t.Errorf("dist[src] = %d", got[0])
	}
}

func TestTransitiveClosureMatchesReference(t *testing.T) {
	g := Random(80, 2, 5)
	ref := TransitiveClosureRef(g)
	got, _, err := TransitiveClosure(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if ref[i][j] != got[i][j] {
				t.Fatalf("reach[%d][%d] differs", i, j)
			}
		}
	}
}

func TestComponentSpeedup(t *testing.T) {
	g := Random(3000, 6, 6)
	_, r1, err := Components(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, r16, err := Components(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.ElapsedNs) / float64(r16.ElapsedNs)
	if speedup < 7 {
		t.Errorf("speedup on 16 procs = %.1f, want substantial", speedup)
	}
}

func TestSameComponentsRejectsMismatch(t *testing.T) {
	if SameComponents([]int{0, 0, 1}, []int{0, 1, 1}) {
		t.Error("mismatched labelings accepted")
	}
	if SameComponents([]int{0}, []int{0, 1}) {
		t.Error("length mismatch accepted")
	}
	if !SameComponents([]int{5, 5, 9}, []int{1, 1, 0}) {
		t.Error("renamed labeling rejected")
	}
}
