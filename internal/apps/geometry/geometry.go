// Package geometry implements two of the DARPA benchmark study's geometric
// constructions (§3.1 of the paper): convex hull and minimal spanning tree.
// Both run under the Uniform System with band decomposition and are verified
// against sequential references.
package geometry

import (
	"math/rand"
	"sort"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// Point is a 2-D point with integer coordinates (exact orientation tests).
type Point struct{ X, Y int64 }

// RandomPoints generates n distinct-ish points in a square.
func RandomPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: int64(rng.Intn(1 << 20)), Y: int64(rng.Intn(1 << 20))}
	}
	return pts
}

// cross computes the z of (b-a) x (c-a).
func cross(a, b, c Point) int64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// HullSequential computes the convex hull (Andrew's monotone chain),
// counterclockwise, without interior collinear points.
func HullSequential(pts []Point) []Point {
	p := append([]Point(nil), pts...)
	sort.Slice(p, func(i, j int) bool {
		if p[i].X != p[j].X {
			return p[i].X < p[j].X
		}
		return p[i].Y < p[j].Y
	})
	// Dedup.
	uniq := p[:0]
	for i, q := range p {
		if i == 0 || q != p[i-1] {
			uniq = append(uniq, q)
		}
	}
	p = uniq
	if len(p) < 3 {
		return append([]Point(nil), p...)
	}
	var lower, upper []Point
	for _, q := range p {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], q) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, q)
	}
	for i := len(p) - 1; i >= 0; i-- {
		q := p[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], q) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, q)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

// Result carries a parallel run's timing.
type Result struct {
	Procs     int
	ElapsedNs int64
	Rounds    int
}

// Hull computes the convex hull in parallel: each Uniform System task hulls
// one band of the (x-sorted) points, and the generator hulls the
// concatenation of the band hulls — correct because the hull of a union is
// the hull of the union of hulls.
func Hull(pts []Point, procs int) ([]Point, Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	bands := 4 * procs
	if bands > len(sorted) {
		bands = len(sorted)
	}
	partial := make([][]Point, bands)
	var res Result
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		w.U.GenOnIndex(w, bands, func(tw *us.Worker, band int) {
			lo := band * len(sorted) / bands
			hi := (band + 1) * len(sorted) / bands
			if hi <= lo {
				return
			}
			// Fetch the band (block copy) and hull it locally; the n log n
			// sort is already done (points arrive x-sorted), so the chain
			// scan is linear.
			m.BlockCopy(tw.P, band%procs, tw.P.Node, 2*(hi-lo))
			m.IntOps(tw.P, 12*(hi-lo))
			partial[band] = HullSequential(sorted[lo:hi])
			m.BlockCopy(tw.P, tw.P.Node, band%procs, 2*len(partial[band]))
		})
		// Merge: hull of the band hulls (small).
		var all []Point
		for _, h := range partial {
			all = append(all, h...)
		}
		m.BlockCopy(w.P, 1%procs, w.P.Node, 2*len(all))
		m.IntOps(w.P, 14*len(all))
		partial[0] = HullSequential(all)
		w.P.Sync() // flush the merge charges before reading the clock
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return nil, Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return nil, Result{}, err
	}
	res.Procs = procs
	return partial[0], res, nil
}

// SameHull compares hulls as point sets.
func SameHull(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p Point) [2]int64 { return [2]int64{p.X, p.Y} }
	set := map[[2]int64]bool{}
	for _, p := range a {
		set[key(p)] = true
	}
	for _, p := range b {
		if !set[key(p)] {
			return false
		}
	}
	return true
}

// WEdge is a weighted undirected edge.
type WEdge struct {
	A, B   int
	Weight int64
}

// RandomGraph builds a connected weighted graph: a spanning path plus extra
// random edges with distinct weights (so the MST is unique).
func RandomGraph(n, extra int, seed int64) []WEdge {
	rng := rand.New(rand.NewSource(seed))
	var edges []WEdge
	w := int64(1)
	next := func() int64 { w += 1 + int64(rng.Intn(7)); return w }
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		edges = append(edges, WEdge{A: perm[i-1], B: perm[i], Weight: next()})
	}
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, WEdge{A: a, B: b, Weight: next()})
		}
	}
	// Shuffle so weight is uncorrelated with position.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// MSTSequential computes the minimum spanning tree weight with Kruskal.
func MSTSequential(n int, edges []WEdge) int64 {
	es := append([]WEdge(nil), edges...)
	sort.Slice(es, func(i, j int) bool { return es[i].Weight < es[j].Weight })
	uf := newUnionFind(n)
	var total int64
	for _, e := range es {
		if uf.union(e.A, e.B) {
			total += e.Weight
		}
	}
	return total
}

// MST computes the minimum spanning tree weight with parallel Boruvka: each
// round, Uniform System tasks scan edge bands to find every component's
// minimum outgoing edge; the generator merges components and the rounds
// repeat until one component remains.
func MST(n int, edges []WEdge, procs int) (int64, Result, error) {
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	bands := 4 * procs
	if bands > len(edges) {
		bands = len(edges)
	}
	var total int64
	var res Result
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		uf := newUnionFind(n)
		components := n
		for components > 1 {
			// bestAll[comp] is the shared minimum-outgoing-edge table,
			// scattered over the memories by component id. Tasks first
			// reduce their own band locally, then fold their candidates
			// into the shared table with locked compare-and-swap updates
			// (charged per entry), so the reduction parallelizes instead of
			// funnelling through the generator.
			bestAll := map[int]WEdge{}
			w.U.GenOnIndex(w, bands, func(tw *us.Worker, band int) {
				lo := band * len(edges) / bands
				hi := (band + 1) * len(edges) / bands
				mine := map[int]WEdge{}
				for _, e := range edges[lo:hi] {
					ra, rb := uf.find(e.A), uf.find(e.B)
					if ra == rb {
						continue
					}
					if b, ok := mine[ra]; !ok || e.Weight < b.Weight {
						mine[ra] = e
					}
					if b, ok := mine[rb]; !ok || e.Weight < b.Weight {
						mine[rb] = e
					}
				}
				// Edge scan: reads from the edge array's home memories,
				// plus union-find root chasing.
				m.Sweep(tw.P, hi-lo, 8*m.Cfg.IntOpNs, []machine.Ref{{Node: band % procs, Words: 3}})
				// Fold candidates into the shared table: one locked
				// read-modify-write per entry at the component's home node.
				perNode := make([]int, procs)
				for comp, e := range mine {
					perNode[comp%procs]++
					if b, ok := bestAll[comp]; !ok || e.Weight < b.Weight {
						bestAll[comp] = e
					}
				}
				for j := 0; j < procs; j++ {
					node := (band + j) % procs
					if cnt := perNode[node]; cnt > 0 {
						m.Sweep(tw.P, cnt, 2*m.Cfg.IntOpNs, []machine.Ref{{Node: node, Words: 3}})
					}
				}
			})
			// Contract (cheap: one pass over the surviving minima).
			m.IntOps(w.P, 4*len(bestAll))
			for _, e := range bestAll {
				if uf.union(e.A, e.B) {
					total += e.Weight
					components--
				}
			}
			res.Rounds++
		}
		w.P.Sync() // flush the final contraction charge before reading the clock
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return 0, Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return 0, Result{}, err
	}
	res.Procs = procs
	return total, res, nil
}

// unionFind is a standard disjoint-set forest.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}
