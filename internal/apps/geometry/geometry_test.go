package geometry

import (
	"testing"
	"testing/quick"
)

func TestHullMatchesReference(t *testing.T) {
	pts := RandomPoints(2000, 1)
	want := HullSequential(pts)
	got, res, err := Hull(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !SameHull(want, got) {
		t.Errorf("hulls differ: %d vs %d points", len(got), len(want))
	}
	if res.ElapsedNs <= 0 {
		t.Error("no time recorded")
	}
}

func TestHullProperty(t *testing.T) {
	// Property: every input point lies inside or on the parallel hull.
	check := func(seed int64) bool {
		pts := RandomPoints(300, seed)
		hull, _, err := Hull(pts, 4)
		if err != nil || len(hull) < 3 {
			return false
		}
		for _, p := range pts {
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				if cross(a, b, p) < 0 {
					return false // point outside a hull edge
				}
			}
		}
		return SameHull(hull, HullSequential(pts))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestHullTinyInputs(t *testing.T) {
	pts := []Point{{0, 0}, {5, 5}}
	h := HullSequential(pts)
	if len(h) != 2 {
		t.Errorf("2-point hull = %v", h)
	}
	one := HullSequential([]Point{{3, 3}})
	if len(one) != 1 {
		t.Errorf("1-point hull = %v", one)
	}
}

func TestMSTMatchesKruskal(t *testing.T) {
	edges := RandomGraph(500, 2000, 2)
	want := MSTSequential(500, edges)
	got, res, err := MST(500, edges, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MST weight = %d, want %d", got, want)
	}
	if res.Rounds == 0 {
		t.Error("no Boruvka rounds recorded")
	}
}

func TestMSTProperty(t *testing.T) {
	check := func(seed int64) bool {
		edges := RandomGraph(120, 400, seed)
		want := MSTSequential(120, edges)
		got, _, err := MST(120, edges, 4)
		return err == nil && got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestMSTSpeedup(t *testing.T) {
	edges := RandomGraph(4000, 30000, 3)
	_, r1, err := MST(4000, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, r16, err := MST(4000, edges, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s := float64(r1.ElapsedNs) / float64(r16.ElapsedNs); s < 2.5 {
		t.Errorf("MST speedup on 16 procs = %.1f", s)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(4)
	if !uf.union(0, 1) || uf.union(0, 1) {
		t.Error("union semantics wrong")
	}
	if uf.find(0) != uf.find(1) || uf.find(2) == uf.find(3) {
		t.Error("find wrong")
	}
}
