package bridge

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"butterfly/internal/sim"
)

func TestTransformUppercases(t *testing.T) {
	data := bytes.Repeat([]byte("butterfly "), 1000)
	withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("src")
		b.Write(p, f, data)
		g, err := b.Transform(p, f, "upper", bytes.ToUpper)
		if err != nil {
			t.Fatal(err)
		}
		got := g.Bytes()[:len(data)]
		if !bytes.Equal(got, bytes.ToUpper(data)) {
			t.Error("transform output wrong")
		}
		if g.Blocks() != f.Blocks() {
			t.Errorf("blocks = %d vs %d", g.Blocks(), f.Blocks())
		}
	})
}

func TestTransformParallelSpeedup(t *testing.T) {
	data := make([]byte, 48*BlockBytes)
	elapsed := func(disks int) int64 {
		var start, end int64
		withBridge(t, 50, disks, func(b *Bridge, p *sim.Proc) {
			f, _ := b.Create("src")
			b.Write(p, f, data)
			start = p.Engine().Now()
			if _, err := b.Transform(p, f, "t", func(blk []byte) []byte { return blk }); err != nil {
				t.Error(err)
			}
			end = p.Engine().Now()
		})
		return end - start
	}
	t1, t8 := elapsed(1), elapsed(8)
	if float64(t1)/float64(t8) < 5 {
		t.Errorf("transform speedup on 8 disks = %.1f", float64(t1)/float64(t8))
	}
}

func TestMergeSortedFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mk := func(n int) []uint32 {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() % 5000
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		return keys
	}
	a, c := mk(1500), mk(900)
	withBridge(t, 10, 4, func(b *Bridge, p *sim.Proc) {
		fa, _ := b.Create("a")
		b.Write(p, fa, EncodeRecords(a))
		fb, _ := b.Create("b")
		b.Write(p, fb, EncodeRecords(c))
		g, err := b.Merge(p, fa, fb, "merged", len(a), len(c))
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeRecords(g.Bytes(), len(a)+len(c))
		want := append(append([]uint32(nil), a...), c...)
		sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merge wrong at %d: %d vs %d", i, got[i], want[i])
			}
		}
	})
}

func TestMergeRejectsOversizedCounts(t *testing.T) {
	withBridge(t, 4, 2, func(b *Bridge, p *sim.Proc) {
		fa, _ := b.Create("a")
		b.Write(p, fa, EncodeRecords([]uint32{1}))
		fb, _ := b.Create("b")
		b.Write(p, fb, EncodeRecords([]uint32{2}))
		if _, err := b.Merge(p, fa, fb, "m", 1<<20, 1); err == nil {
			t.Error("oversized record count accepted")
		}
	})
}
