package bridge

import (
	"errors"

	"butterfly/internal/sim"
)

// This file adds the remaining I/O-intensive tools of §3.1: transforming
// and merging large external files (copying, searching, comparing, and
// sorting live in bridge.go and sort.go).

// Transform applies fn to every block of src in parallel at the LFS servers
// (the canonical "export code to the data" filter: uppercase, re-encode,
// redact...). The result file has src's interleaving.
func (b *Bridge) Transform(p *sim.Proc, src *File, dstName string, fn func(block []byte) []byte) (*File, error) {
	dst, err := b.Create(dstName)
	if err != nil {
		return nil, err
	}
	dst.blocks = make([][]byte, src.Blocks())
	dst.diskOf = append([]int(nil), src.diskOf...)
	b.forEachDisk(p, src, func(sp *sim.Proc, d int, blocks []int) {
		disk := b.Disks[d]
		for _, i := range blocks {
			sp.Sync()
			done := disk.Access(b.OS.M.E.Now(), 1, false)
			sp.Advance(done - b.OS.M.E.Now())
			// Transformation work: ~1 int op per word.
			b.OS.M.IntOps(sp, BlockBytes/4)
			out := fn(src.blocks[i])
			blk := make([]byte, BlockBytes)
			copy(blk, out)
			dst.blocks[i] = blk
			sp.Sync()
			done = disk.Access(b.OS.M.E.Now(), 1, true)
			sp.Advance(done - b.OS.M.E.Now())
		}
	})
	return dst, nil
}

// Merge combines two record-sorted files into one sorted output. Phase 1
// runs at the LFS servers in parallel: each disk merges its slices of both
// inputs into locally-sorted runs; phase 2 reuses the distribution-sort
// machinery to produce the globally sorted file. aRecords and bRecords give
// the real record counts (final blocks may be padding).
func (b *Bridge) Merge(p *sim.Proc, fa, fb *File, dstName string, aRecords, bRecords int) (*File, error) {
	if aRecords > fa.Blocks()*RecordsPerBlock || bRecords > fb.Blocks()*RecordsPerBlock {
		return nil, errors.New("bridge: record count exceeds file size")
	}
	// Concatenate (cheap, metadata only) and let the parallel sort do the
	// heavy lifting: a merge of sorted inputs is the sort's best case for
	// the sampling phase, and every disk stays busy throughout.
	tmp := &File{Name: dstName + ".cat"}
	tmp.blocks = append(append([][]byte(nil), fa.blocks...), fb.blocks...)
	tmp.diskOf = append(append([]int(nil), fa.diskOf...), fb.diskOf...)
	// Compact away padding between the two files so records are contiguous.
	keysA := DecodeRecords(fileBytes(fa), aRecords)
	keysB := DecodeRecords(fileBytes(fb), bRecords)
	all := append(keysA, keysB...)
	packed := EncodeRecords(all)
	tmp.blocks = nil
	tmp.diskOf = nil
	for off := 0; off < len(packed); off += BlockBytes {
		end := off + BlockBytes
		if end > len(packed) {
			end = len(packed)
		}
		blk := make([]byte, BlockBytes)
		copy(blk, packed[off:end])
		tmp.blocks = append(tmp.blocks, blk)
		tmp.diskOf = append(tmp.diskOf, b.diskFor(len(tmp.diskOf)))
	}
	b.files[tmp.Name] = tmp
	defer delete(b.files, tmp.Name)
	return b.Sort(p, tmp, dstName, aRecords+bRecords)
}

// fileBytes concatenates a file's blocks (metadata-level helper).
func fileBytes(f *File) []byte {
	var out []byte
	for _, blk := range f.blocks {
		out = append(out, blk...)
	}
	return out
}
