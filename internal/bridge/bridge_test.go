package bridge

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// withBridge builds a machine with `disks` disks and runs body inside a
// client process on node 0, returning total virtual time.
func withBridge(t *testing.T, nodes, disks int, body func(b *Bridge, p *sim.Proc)) int64 {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	os := chrysalis.New(m)
	diskNodes := make([]int, disks)
	for i := range diskNodes {
		diskNodes[i] = (i + 1) % nodes // keep node 0 for the client
	}
	b, err := New(os, diskNodes, DefaultDiskConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	os.MakeProcess(nil, "client", 0, 16, func(self *chrysalis.Process) {
		body(b, self.P)
		b.Shutdown(self.P)
	})
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m.E.Now()
}

func TestWriteReadRoundTrip(t *testing.T) {
	data := make([]byte, 3*BlockBytes+100)
	rand.New(rand.NewSource(1)).Read(data)
	withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
		f, err := b.Create("data")
		if err != nil {
			t.Fatal(err)
		}
		b.Write(p, f, data)
		if f.Blocks() != 4 {
			t.Errorf("blocks = %d, want 4", f.Blocks())
		}
		got, err := b.ReadAll(p, f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Error("read-back differs")
		}
	})
}

func TestInterleaving(t *testing.T) {
	withBridge(t, 8, 3, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("f")
		b.Write(p, f, make([]byte, 7*BlockBytes))
		for i := 0; i < 7; i++ {
			if f.diskOf[i] != i%3 {
				t.Errorf("block %d on disk %d, want %d", i, f.diskOf[i], i%3)
			}
		}
	})
}

func TestCreateOpenRemove(t *testing.T) {
	withBridge(t, 4, 2, func(b *Bridge, p *sim.Proc) {
		if _, err := b.Open("nope"); err == nil {
			t.Error("Open of missing file succeeded")
		}
		f, err := b.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Create("f"); err != ErrExists {
			t.Errorf("duplicate create: %v", err)
		}
		if g, err := b.Open("f"); err != nil || g != f {
			t.Errorf("Open: %v", err)
		}
		if err := b.Remove("f"); err != nil {
			t.Fatal(err)
		}
		if err := b.Remove("f"); err == nil {
			t.Error("double remove succeeded")
		}
	})
}

func TestReadOutOfRange(t *testing.T) {
	withBridge(t, 4, 2, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("f")
		if _, err := b.Read(p, f, 0); err == nil {
			t.Error("read of empty file succeeded")
		}
	})
}

func TestParallelCopyCorrect(t *testing.T) {
	data := make([]byte, 6*BlockBytes)
	rand.New(rand.NewSource(2)).Read(data)
	withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("src")
		b.Write(p, f, data)
		g, err := b.Copy(p, f, "dst")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Bytes(), g.Bytes()) {
			t.Error("copy differs from source")
		}
	})
}

func TestSearchFindsAll(t *testing.T) {
	data := make([]byte, 4*BlockBytes)
	needle := []byte("BUTTERFLY")
	copy(data[100:], needle)
	copy(data[BlockBytes+7:], needle)
	copy(data[3*BlockBytes+500:], needle)
	withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("hay")
		b.Write(p, f, data)
		ms := b.Search(p, f, needle)
		want := []Match{{0, 100}, {1, 7}, {3, 500}}
		if len(ms) != len(want) {
			t.Fatalf("matches = %v, want %v", ms, want)
		}
		for i := range want {
			if ms[i] != want[i] {
				t.Errorf("match %d = %v, want %v", i, ms[i], want[i])
			}
		}
	})
}

func TestCompare(t *testing.T) {
	data := make([]byte, 5*BlockBytes)
	rand.New(rand.NewSource(3)).Read(data)
	withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("a")
		b.Write(p, f, data)
		g, _ := b.Copy(p, f, "b")
		diffs, err := b.Compare(p, f, g)
		if err != nil || len(diffs) != 0 {
			t.Errorf("identical files differ: %v %v", diffs, err)
		}
		g.blocks[2][17] ^= 0xFF
		diffs, _ = b.Compare(p, f, g)
		if len(diffs) != 1 || diffs[0] != 2 {
			t.Errorf("diffs = %v, want [2]", diffs)
		}
	})
}

func TestCompareSizeMismatch(t *testing.T) {
	withBridge(t, 4, 2, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("a")
		b.Write(p, f, make([]byte, BlockBytes))
		g, _ := b.Create("b")
		if _, err := b.Compare(p, f, g); err == nil {
			t.Error("size mismatch not detected")
		}
	})
}

func TestSortCorrect(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	withBridge(t, 16, 8, func(b *Bridge, p *sim.Proc) {
		f, _ := b.Create("in")
		b.Write(p, f, EncodeRecords(keys))
		g, err := b.Sort(p, f, "out", n)
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeRecords(g.Bytes(), n)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(a, c int) bool { return want[a] < want[c] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sorted output wrong at %d: %d != %d", i, got[i], want[i])
			}
		}
	})
}

func TestSortProperty(t *testing.T) {
	// Property: Sort always yields a sorted permutation of the input.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32() % 1000 // duplicates likely
		}
		ok := true
		withBridge(t, 8, 4, func(b *Bridge, p *sim.Proc) {
			f, _ := b.Create("in")
			b.Write(p, f, EncodeRecords(keys))
			g, err := b.Sort(p, f, "out", n)
			if err != nil {
				ok = false
				return
			}
			got := DecodeRecords(g.Bytes(), n)
			want := append([]uint32(nil), keys...)
			sort.Slice(want, func(a, c int) bool { return want[a] < want[c] })
			for i := range want {
				if got[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCopySpeedupNearLinear(t *testing.T) {
	// E11: the parallel copy tool speeds up nearly linearly with disks.
	const blocks = 64
	data := make([]byte, blocks*BlockBytes)
	elapsedCopy := func(disks int) int64 {
		var start, end int64
		withBridge(t, 66, disks, func(b *Bridge, p *sim.Proc) {
			f, _ := b.Create("src")
			b.Write(p, f, data)
			start = p.Engine().Now()
			if _, err := b.Copy(p, f, "dst"); err != nil {
				t.Fatal(err)
			}
			end = p.Engine().Now()
		})
		return end - start
	}
	t1 := elapsedCopy(1)
	t16 := elapsedCopy(16)
	speedup := float64(t1) / float64(t16)
	if speedup < 10 {
		t.Errorf("copy speedup on 16 disks = %.1f, want near-linear (>10)", speedup)
	}
}

func TestNaiveReadIsSerial(t *testing.T) {
	// The conventional interface gains little from extra disks: the single
	// client drives one block at a time.
	const blocks = 32
	data := make([]byte, blocks*BlockBytes)
	elapsedRead := func(disks int) int64 {
		var start, end int64
		withBridge(t, 34, disks, func(b *Bridge, p *sim.Proc) {
			f, _ := b.Create("f")
			b.Write(p, f, data)
			start = p.Engine().Now()
			if _, err := b.ReadAll(p, f); err != nil {
				t.Fatal(err)
			}
			end = p.Engine().Now()
		})
		return end - start
	}
	t1 := elapsedRead(1)
	t8 := elapsedRead(8)
	speedup := float64(t1) / float64(t8)
	if speedup > 2 {
		t.Errorf("naive read speedup = %.1f; the serial path should not scale", speedup)
	}
}

func TestNoDisks(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	if _, err := New(os, nil, DefaultDiskConfig()); err == nil {
		t.Error("bridge with no disks accepted")
	}
}

func TestDiskQueueing(t *testing.T) {
	d := NewDisk(0, DefaultDiskConfig())
	first := d.Access(0, 1, false)
	second := d.Access(0, 1, true)
	if second <= first {
		t.Error("second access did not queue")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.WaitNs == 0 {
		t.Errorf("stats = %+v", st)
	}
	if d.String() == "" {
		t.Error("empty String")
	}
	if d.Access(0, 0, false) != d.busyUntil-0 && false {
		t.Error("unreachable")
	}
}

func TestEncodeDecodeRecords(t *testing.T) {
	keys := []uint32{0, 1, 0xFFFFFFFF, 42}
	got := DecodeRecords(EncodeRecords(keys), len(keys))
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("round trip failed: %v vs %v", got, keys)
		}
	}
}
