package bridge

import (
	"encoding/binary"
	"errors"
	"sort"

	"butterfly/internal/sim"
)

// RecordBytes is the size of one sort record (a big-endian uint32 key).
const RecordBytes = 4

// RecordsPerBlock is how many records fit in one file block.
const RecordsPerBlock = BlockBytes / RecordBytes

// EncodeRecords packs keys into file bytes.
func EncodeRecords(keys []uint32) []byte {
	out := make([]byte, len(keys)*RecordBytes)
	for i, k := range keys {
		binary.BigEndian.PutUint32(out[i*RecordBytes:], k)
	}
	return out
}

// DecodeRecords unpacks file bytes into keys (ignoring trailing padding in
// the final block beyond n records).
func DecodeRecords(data []byte, n int) []uint32 {
	keys := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, binary.BigEndian.Uint32(data[i*RecordBytes:]))
	}
	return keys
}

// Sort produces a new file whose records are src's in ascending key order,
// using Bridge's parallel distribution sort: (1) every LFS reads and sorts
// its local blocks and contributes samples, (2) records are range-partitioned
// and shipped to their destination disks in parallel, (3) every LFS merges
// its bucket and writes its slice of the output. All three phases keep every
// disk busy — the "export code to the processors managing the data" design
// that yields near-linear speedup. nRecords is the number of real records in
// src (the final block may be padding).
func (b *Bridge) Sort(p *sim.Proc, src *File, dstName string, nRecords int) (*File, error) {
	if nRecords > src.Blocks()*RecordsPerBlock {
		return nil, errors.New("bridge: record count exceeds file size")
	}
	dst, err := b.Create(dstName)
	if err != nil {
		return nil, err
	}
	D := len(b.Disks)

	// Phase 1: local read + sort + sample.
	localKeys := make([][]uint32, D)
	var samples []uint32
	b.forEachDisk(p, src, func(sp *sim.Proc, d int, blocks []int) {
		disk := b.Disks[d]
		sp.Sync()
		done := disk.Access(b.OS.M.E.Now(), len(blocks), false)
		sp.Advance(done - b.OS.M.E.Now())
		var keys []uint32
		for _, i := range blocks {
			lo := i * RecordsPerBlock
			hi := lo + RecordsPerBlock
			if hi > nRecords {
				hi = nRecords
			}
			if hi <= lo {
				continue
			}
			keys = append(keys, DecodeRecords(src.blocks[i], hi-lo)...)
		}
		// n log n comparison cost.
		b.OS.M.IntOps(sp, costNLogN(len(keys)))
		sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
		localKeys[d] = keys
		for i := 0; i < len(keys); i += 64 {
			samples = append(samples, keys[i])
		}
	})

	// Splitters from the gathered samples (computed by the caller).
	b.OS.M.IntOps(p, costNLogN(len(samples)))
	sort.Slice(samples, func(a, c int) bool { return samples[a] < samples[c] })
	splitters := make([]uint32, 0, D-1)
	for j := 1; j < D; j++ {
		idx := j * len(samples) / D
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		if len(samples) > 0 {
			splitters = append(splitters, samples[idx])
		}
	}
	bucketOf := func(k uint32) int {
		// Linear scan over <=63 splitters; charged as part of partitioning.
		for j, s := range splitters {
			if k < s {
				return j
			}
		}
		return D - 1
	}

	// Phase 2: partition and ship. buckets[dest] accumulates sorted runs.
	buckets := make([][][]uint32, D)
	b.forEachDisk(p, src, func(sp *sim.Proc, d int, blocks []int) {
		keys := localKeys[d]
		b.OS.M.IntOps(sp, len(keys)) // one pass to split the sorted run
		runs := make([][]uint32, D)
		for _, k := range keys {
			dest := bucketOf(k)
			runs[dest] = append(runs[dest], k)
		}
		for dest, run := range runs {
			if len(run) == 0 {
				continue
			}
			if dest != d {
				b.OS.M.BlockCopy(sp, b.Disks[d].Node, b.Disks[dest].Node, len(run))
			}
			buckets[dest] = append(buckets[dest], run)
		}
	})

	// Phase 3: every LFS merges its bucket and writes its output slice.
	outKeys := make([][]uint32, D)
	comps := make([]*completion, 0, D)
	for d := 0; d < D; d++ {
		d := d
		comps = append(comps, b.submit(p, d, func(sp *sim.Proc) {
			merged := mergeRuns(buckets[d])
			b.OS.M.IntOps(sp, costNLogN(len(merged)))
			outKeys[d] = merged
			nBlocks := (len(merged) + RecordsPerBlock - 1) / RecordsPerBlock
			if nBlocks > 0 {
				sp.Sync()
				done := b.Disks[d].Access(b.OS.M.E.Now(), nBlocks, true)
				sp.Advance(done - b.OS.M.E.Now())
			}
		}))
	}
	for _, c := range comps {
		c.wait(p)
	}

	// Assemble the output file: bucket 0's records first, then bucket 1's,
	// packed contiguously (records must not straddle per-bucket padding).
	// Each packed block is attributed to the disk whose bucket supplied its
	// first record, matching the phase-3 write accounting to within a block.
	var all []uint32
	firstRecOf := make([]int, D)
	for d := 0; d < D; d++ {
		firstRecOf[d] = len(all)
		all = append(all, outKeys[d]...)
	}
	diskOfRecord := func(rec int) int {
		for d := D - 1; d >= 0; d-- {
			if rec >= firstRecOf[d] && len(outKeys[d]) > 0 {
				if rec < firstRecOf[d]+len(outKeys[d]) {
					return d
				}
			}
		}
		return 0
	}
	for off := 0; off < len(all); off += RecordsPerBlock {
		end := off + RecordsPerBlock
		if end > len(all) {
			end = len(all)
		}
		blk := make([]byte, BlockBytes)
		copy(blk, EncodeRecords(all[off:end]))
		dst.blocks = append(dst.blocks, blk)
		dst.diskOf = append(dst.diskOf, diskOfRecord(off))
	}
	return dst, nil
}

// mergeRuns k-way merges sorted runs.
func mergeRuns(runs [][]uint32) []uint32 {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]uint32, 0, total)
	idx := make([]int, len(runs))
	for len(out) < total {
		best, bestRun := uint32(0), -1
		for r, i := range idx {
			if i < len(runs[r]) && (bestRun < 0 || runs[r][i] < best) {
				best, bestRun = runs[r][i], r
			}
		}
		out = append(out, best)
		idx[bestRun]++
	}
	return out
}

// costNLogN approximates comparison-sort work in integer operations.
func costNLogN(n int) int {
	if n <= 1 {
		return n
	}
	log := 0
	for v := n; v > 1; v >>= 1 {
		log++
	}
	return n * log
}
