package bridge

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// File is an interleaved Bridge file: logical block i lives on the disk
// named by diskOf[i]. For freshly created files the assignment is
// round-robin; tools (such as the distribution sort) may produce other
// layouts.
type File struct {
	Name   string
	blocks [][]byte
	diskOf []int
}

// Blocks returns the number of logical blocks.
func (f *File) Blocks() int { return len(f.blocks) }

// Bytes returns the file's full contents (test/tool convenience; charges
// nothing — use Read for timed access).
func (f *File) Bytes() []byte {
	var out []byte
	for _, b := range f.blocks {
		out = append(out, b...)
	}
	return out
}

// Bridge is the parallel file system: a set of local file systems (one per
// disk node), each run by a resident server process, plus the interleaving
// logic.
type Bridge struct {
	OS    *chrysalis.OS
	Disks []*Disk

	files   map[string]*File
	servers []*chrysalis.Process
	reqQs   []*chrysalis.DualQueue
	reqs    []request
	free    []int

	// CPUPerBlockNs is server-side per-block processing cost (buffer
	// management, checksum) charged in addition to disk time.
	CPUPerBlockNs int64
}

// request is a unit of work for one LFS server.
type request struct {
	run  func(p *sim.Proc)
	done *completion
}

// completion is a one-shot wakeup flag.
type completion struct {
	done bool
	wq   *sim.WaitQueue
}

func newCompletion(what string) *completion {
	return &completion{wq: sim.NewWaitQueue(what)}
}

func (c *completion) wait(p *sim.Proc) {
	if !c.done {
		c.wq.Wait(p)
	}
}

func (c *completion) signal(e *sim.Engine) {
	c.done = true
	c.wq.WakeAll(e, 0)
}

const poison = ^uint32(0)

// New builds a Bridge over disks attached to the given nodes and starts one
// resident server process per disk.
func New(os *chrysalis.OS, diskNodes []int, cfg DiskConfig) (*Bridge, error) {
	if len(diskNodes) == 0 {
		return nil, errors.New("bridge: need at least one disk")
	}
	b := &Bridge{
		OS:            os,
		files:         make(map[string]*File),
		CPUPerBlockNs: 500 * sim.Microsecond,
	}
	for i, node := range diskNodes {
		b.Disks = append(b.Disks, NewDisk(node, cfg))
		q := os.NewDualQueue(node, nil)
		b.reqQs = append(b.reqQs, q)
		srv, err := os.MakeProcess(nil, fmt.Sprintf("bridge-lfs-%d", i), node, 16, func(self *chrysalis.Process) {
			for {
				d := q.Dequeue(self.P)
				if d == poison {
					return
				}
				req := b.reqs[d]
				b.free = append(b.free, int(d))
				req.run(self.P)
				// Flush the request's trailing lazy charges so the waiter
				// wakes at the request's true completion time.
				self.P.Sync()
				req.done.signal(os.M.E)
			}
		})
		if err != nil {
			return nil, err
		}
		b.servers = append(b.servers, srv)
	}
	return b, nil
}

// Shutdown stops all LFS servers.
func (b *Bridge) Shutdown(p *sim.Proc) {
	for _, q := range b.reqQs {
		q.Enqueue(p, poison)
	}
}

// submit hands work to LFS server d and returns its completion.
func (b *Bridge) submit(p *sim.Proc, d int, run func(p *sim.Proc)) *completion {
	c := newCompletion("bridge request")
	req := request{run: run, done: c}
	var slot int
	if n := len(b.free); n > 0 {
		slot = b.free[n-1]
		b.free = b.free[:n-1]
		b.reqs[slot] = req
	} else {
		slot = len(b.reqs)
		b.reqs = append(b.reqs, req)
	}
	b.reqQs[d].Enqueue(p, uint32(slot))
	return c
}

// Errors.
var (
	ErrNoFile = errors.New("bridge: no such file")
	ErrExists = errors.New("bridge: file exists")
)

// Create makes an empty file.
func (b *Bridge) Create(name string) (*File, error) {
	if _, ok := b.files[name]; ok {
		return nil, ErrExists
	}
	f := &File{Name: name}
	b.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (b *Bridge) Open(name string) (*File, error) {
	f, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	return f, nil
}

// Remove deletes a file.
func (b *Bridge) Remove(name string) error {
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	delete(b.files, name)
	return nil
}

// diskFor returns the round-robin home for logical block i.
func (b *Bridge) diskFor(i int) int { return i % len(b.Disks) }

// Write appends data to the file through the conventional interface: the
// calling process drives every block transfer itself, one at a time — the
// serial path whose bottleneck Bridge's tools remove. Data is padded to a
// whole number of blocks.
func (b *Bridge) Write(p *sim.Proc, f *File, data []byte) {
	for off := 0; off < len(data); off += BlockBytes {
		end := off + BlockBytes
		if end > len(data) {
			end = len(data)
		}
		blk := make([]byte, BlockBytes)
		copy(blk, data[off:end])
		i := len(f.blocks)
		d := b.diskFor(i)
		f.blocks = append(f.blocks, blk)
		f.diskOf = append(f.diskOf, d)
		b.writeBlock(p, f, i)
	}
}

// writeBlock performs a timed single-block write via the owning LFS server.
func (b *Bridge) writeBlock(p *sim.Proc, f *File, i int) {
	d := f.diskOf[i]
	disk := b.Disks[d]
	c := b.submit(p, d, func(sp *sim.Proc) {
		// Data travels from the caller's node to the LFS node, then to disk.
		b.OS.M.BlockCopy(sp, p.Node, disk.Node, BlockBytes/4)
		sp.Advance(b.CPUPerBlockNs)
		sp.Sync()
		done := disk.Access(b.OS.M.E.Now(), 1, true)
		sp.Advance(done - b.OS.M.E.Now())
	})
	c.wait(p)
}

// Read returns logical block i through the conventional interface.
func (b *Bridge) Read(p *sim.Proc, f *File, i int) ([]byte, error) {
	if i < 0 || i >= len(f.blocks) {
		return nil, fmt.Errorf("bridge: block %d out of range for %q", i, f.Name)
	}
	d := f.diskOf[i]
	disk := b.Disks[d]
	c := b.submit(p, d, func(sp *sim.Proc) {
		sp.Sync()
		done := disk.Access(b.OS.M.E.Now(), 1, false)
		sp.Advance(done - b.OS.M.E.Now())
		sp.Advance(b.CPUPerBlockNs)
		b.OS.M.BlockCopy(sp, disk.Node, p.Node, BlockBytes/4)
	})
	c.wait(p)
	return f.blocks[i], nil
}

// ReadAll reads a whole file through the conventional interface (serially).
func (b *Bridge) ReadAll(p *sim.Proc, f *File) ([]byte, error) {
	var out []byte
	for i := 0; i < f.Blocks(); i++ {
		blk, err := b.Read(p, f, i)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// forEachDisk runs fn(d, blocks-of-f-on-d) on every LFS server in parallel
// and waits for all of them. This is the "export code to the processors
// managing the data" pattern.
func (b *Bridge) forEachDisk(p *sim.Proc, f *File, fn func(sp *sim.Proc, d int, blocks []int)) {
	perDisk := make([][]int, len(b.Disks))
	for i, d := range f.diskOf {
		perDisk[d] = append(perDisk[d], i)
	}
	comps := make([]*completion, 0, len(b.Disks))
	for d := range b.Disks {
		d := d
		if len(perDisk[d]) == 0 {
			continue
		}
		comps = append(comps, b.submit(p, d, func(sp *sim.Proc) {
			fn(sp, d, perDisk[d])
		}))
	}
	for _, c := range comps {
		c.wait(p)
	}
}

// Copy duplicates src into a new file dst using the parallel tool: each LFS
// copies its own blocks disk-locally, so D disks work concurrently.
func (b *Bridge) Copy(p *sim.Proc, src *File, dstName string) (*File, error) {
	dst, err := b.Create(dstName)
	if err != nil {
		return nil, err
	}
	dst.blocks = make([][]byte, src.Blocks())
	dst.diskOf = append([]int(nil), src.diskOf...)
	b.forEachDisk(p, src, func(sp *sim.Proc, d int, blocks []int) {
		disk := b.Disks[d]
		for _, i := range blocks {
			sp.Sync()
			done := disk.Access(b.OS.M.E.Now(), 1, false)
			sp.Advance(done - b.OS.M.E.Now())
			sp.Advance(b.CPUPerBlockNs)
			blk := make([]byte, BlockBytes)
			copy(blk, src.blocks[i])
			dst.blocks[i] = blk
			sp.Sync()
			done = disk.Access(b.OS.M.E.Now(), 1, true)
			sp.Advance(done - b.OS.M.E.Now())
		}
	})
	return dst, nil
}

// Match is one search hit.
type Match struct {
	Block  int
	Offset int
}

// Search scans the file for needle with the parallel tool and returns all
// within-block matches in block order.
func (b *Bridge) Search(p *sim.Proc, f *File, needle []byte) []Match {
	var all []Match
	b.forEachDisk(p, f, func(sp *sim.Proc, d int, blocks []int) {
		disk := b.Disks[d]
		for _, i := range blocks {
			sp.Sync()
			done := disk.Access(b.OS.M.E.Now(), 1, false)
			sp.Advance(done - b.OS.M.E.Now())
			// Scanning costs ~1 int op per 4 bytes.
			b.OS.M.IntOps(sp, BlockBytes/4)
			for off := 0; ; {
				j := bytes.Index(f.blocks[i][off:], needle)
				if j < 0 {
					break
				}
				all = append(all, Match{Block: i, Offset: off + j})
				off += j + 1
			}
		}
	})
	sort.Slice(all, func(x, y int) bool {
		if all[x].Block != all[y].Block {
			return all[x].Block < all[y].Block
		}
		return all[x].Offset < all[y].Offset
	})
	return all
}

// Compare checks two equally-interleaved files for equality with the
// parallel tool; it returns the logical indices of differing blocks.
func (b *Bridge) Compare(p *sim.Proc, f, g *File) ([]int, error) {
	if f.Blocks() != g.Blocks() {
		return nil, errors.New("bridge: compare of files with different sizes")
	}
	var diffs []int
	b.forEachDisk(p, f, func(sp *sim.Proc, d int, blocks []int) {
		disk := b.Disks[d]
		for _, i := range blocks {
			nAccesses := 1
			if g.diskOf[i] == d {
				nAccesses = 2 // both copies local: one combined positioning
			}
			sp.Sync()
			done := disk.Access(b.OS.M.E.Now(), nAccesses, false)
			sp.Advance(done - b.OS.M.E.Now())
			if g.diskOf[i] != d {
				gd := b.Disks[g.diskOf[i]]
				sp.Sync()
				done := gd.Access(b.OS.M.E.Now(), 1, false)
				sp.Advance(done - b.OS.M.E.Now())
				b.OS.M.BlockCopy(sp, gd.Node, disk.Node, BlockBytes/4)
			}
			b.OS.M.IntOps(sp, BlockBytes/4)
			if !bytes.Equal(f.blocks[i], g.blocks[i]) {
				diffs = append(diffs, i)
			}
		}
	})
	sort.Ints(diffs)
	return diffs, nil
}
