// Package bridge implements the Bridge parallel file system (Dibble, Scott &
// Ellis, ICDCS 1988; §3.4 of the paper): each file is interleaved across
// multiple storage devices and processors, with consecutive logical blocks
// assigned to different physical nodes. Naive programs access files through
// a conventional (serial) interface; sophisticated programs export pieces of
// their code to the processors managing the data — the Bridge "tools" — for
// optimum performance. Analytical and experimental studies indicated linear
// speedup on several dozen disks for copying, sorting, searching, and
// comparing; experiment E11 reproduces those curves.
package bridge

import (
	"fmt"
)

// BlockBytes is the file system block size.
const BlockBytes = 4096

// DiskConfig calibrates the simulated drives (circa-1988 Winchester disks:
// tens of milliseconds to position, ~1 MB/s to transfer).
type DiskConfig struct {
	SeekNs     int64 // average positioning time per block access
	TransferNs int64 // transfer time per block
}

// DefaultDiskConfig returns the standard calibration.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		SeekNs:     20_000_000, // 20 ms
		TransferNs: 4_000_000,  // 4 ms for 4 KB at ~1 MB/s
	}
}

// Disk is one simulated drive: a single server, like a memory module but
// five orders of magnitude slower.
type Disk struct {
	Node      int
	Cfg       DiskConfig
	busyUntil int64
	stats     DiskStats
}

// DiskStats counts traffic on one disk.
type DiskStats struct {
	Reads  uint64
	Writes uint64
	WaitNs int64
}

// NewDisk creates a disk attached to the given node.
func NewDisk(node int, cfg DiskConfig) *Disk {
	return &Disk{Node: node, Cfg: cfg}
}

// Access performs n block transfers arriving at virtual time now and returns
// the completion time. Consecutive blocks in one call pay a single seek.
func (d *Disk) Access(now int64, n int, write bool) int64 {
	if n <= 0 {
		return now
	}
	start := now
	if d.busyUntil > start {
		d.stats.WaitNs += d.busyUntil - start
		start = d.busyUntil
	}
	done := start + d.Cfg.SeekNs + int64(n)*d.Cfg.TransferNs
	d.busyUntil = done
	if write {
		d.stats.Writes += uint64(n)
	} else {
		d.stats.Reads += uint64(n)
	}
	return done
}

// Stats returns a copy of the disk counters.
func (d *Disk) Stats() DiskStats { return d.stats }

// String implements fmt.Stringer.
func (d *Disk) String() string { return fmt.Sprintf("disk@node%d", d.Node) }
