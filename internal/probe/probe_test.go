package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMemRefAggregation(t *testing.T) {
	p := New(nil)
	p.MemRef(100, 500, 0, 2, 1, true)    // local, no wait
	p.MemRef(600, 1000, 50, 2, 2, false) // remote, waited
	p.MemRef(0, 250, 0, 5, 1, false)     // different module

	m := p.Metrics()
	if len(m.Mem) != 6 {
		t.Fatalf("Mem grew to %d entries, want 6 (indexed by node)", len(m.Mem))
	}
	mm := m.Mem[2]
	if mm.LocalBusyNs != 500 || mm.RemoteBusyNs != 1000 {
		t.Errorf("node 2 busy split = %d/%d, want 500/1000", mm.LocalBusyNs, mm.RemoteBusyNs)
	}
	if mm.LocalWords != 1 || mm.RemoteWords != 2 {
		t.Errorf("node 2 words = %d/%d, want 1/2", mm.LocalWords, mm.RemoteWords)
	}
	if mm.RemoteWaitNs != 50 {
		t.Errorf("node 2 remote wait = %d, want 50", mm.RemoteWaitNs)
	}
	if got, want := mm.StealFraction(), 1000.0/1500.0; got != want {
		t.Errorf("steal fraction = %v, want %v", got, want)
	}
	if (MemMetrics{}).StealFraction() != 0 {
		t.Error("idle module must report zero steal fraction")
	}

	frac, node := m.MemUtilization(3000)
	if node != 2 {
		t.Errorf("busiest node = %d, want 2", node)
	}
	if frac != 0.5 {
		t.Errorf("utilization = %v, want 0.5 (1500ns busy of 3000ns)", frac)
	}
}

func TestSwitchHopAggregation(t *testing.T) {
	p := New(nil)
	p.SwitchHop(0, 400, 0, 1, 3)
	p.SwitchHop(400, 400, 100, 1, 3)
	p.SwitchHop(0, 200, 0, 0, 7)

	m := p.Metrics()
	pm := m.Ports[1][3]
	if pm.BusyNs != 800 || pm.WaitNs != 100 || pm.Packets != 2 {
		t.Errorf("port [1][3] = %+v, want busy=800 wait=100 packets=2", pm)
	}
	frac, stage, port := m.PortUtilization(1600)
	if stage != 1 || port != 3 || frac != 0.5 {
		t.Errorf("busiest port = %v at [%d][%d], want 0.5 at [1][3]", frac, stage, port)
	}
	// Mean over the two active ports: (800+200)/2 / 1600.
	if got, want := m.MeanPortUtilization(1600), (800.0+200.0)/2/1600; got != want {
		t.Errorf("mean port utilization = %v, want %v", got, want)
	}
}

func TestProcBreakdownAndCounters(t *testing.T) {
	p := New(nil)
	p.ProcSpawn(0, 0, 3, "worker")
	p.ProcDispatch(10, 0, 10, false) // scheduled wait
	p.ProcFlush(10, 0, 40)           // lazily charged compute
	p.ProcDispatch(50, 0, 40, false)
	p.ProcBlock(50, 0, "queue")
	p.ProcDispatch(90, 0, 40, true) // blocked wait
	p.ProcRun(90, 5, 0)
	p.ProcDone(95, 0)

	m := p.Metrics()
	if m.ProcWaitNs[0] != 50 || m.ProcBlockedNs[0] != 40 {
		t.Errorf("wait/blocked = %d/%d, want 50/40", m.ProcWaitNs[0], m.ProcBlockedNs[0])
	}
	if m.ProcComputeNs[0] != 40 || m.ProcRunNs[0] != 5 {
		t.Errorf("compute/run = %d/%d, want 40/5", m.ProcComputeNs[0], m.ProcRunNs[0])
	}
	if m.Spawns != 1 || m.Dispatches != 3 || m.Parks != 1 || m.Flushes != 1 || m.Blocks != 1 {
		t.Errorf("counters = spawns:%d dispatches:%d parks:%d flushes:%d blocks:%d",
			m.Spawns, m.Dispatches, m.Parks, m.Flushes, m.Blocks)
	}
}

func TestWaitHistogram(t *testing.T) {
	var h Hist
	h.add(0)
	h.add(1)   // [1,2) -> bucket 1
	h.add(3)   // [2,4) -> bucket 2
	h.add(700) // [512,1024) -> bucket 10
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[10] != 1 {
		t.Errorf("histogram buckets wrong: %v", h.Buckets[:12])
	}
	if h.Total() != 4 {
		t.Errorf("total = %d, want 4", h.Total())
	}
}

func TestCounterSink(t *testing.T) {
	var c Counter
	p := New(&c)
	p.MemRef(0, 100, 0, 0, 1, true)
	p.SwitchHop(0, 100, 0, 0, 0)
	p.Prim(0, 1, 0, "event.post", 100)
	p.QueueOp(0, 1, 0, true, "dq1")
	p.QueueOp(0, 1, 0, false, "dq1")
	p.MsgSend(0, 1, 2, 8, "smp")
	p.MsgRecv(0, 2, 1, 8, "smp")
	if c.ByKind[KindMemRef] != 1 || c.ByKind[KindSwitchHop] != 1 || c.ByKind[KindPrim] != 1 {
		t.Errorf("counter missed events: %v", c.ByKind)
	}
	if c.ByKind[KindEnqueue] != 1 || c.ByKind[KindDequeue] != 1 {
		t.Errorf("queue ops miscounted: enq=%d deq=%d", c.ByKind[KindEnqueue], c.ByKind[KindDequeue])
	}
	if c.Total() != 7 {
		t.Errorf("total = %d, want 7", c.Total())
	}
}

func TestRecorderAndKindStrings(t *testing.T) {
	var r Recorder
	p := New(&r)
	p.ProcSpawn(0, 1, 0, "a")
	p.ProcBlock(5, 1, "lock")
	if len(r.Events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(r.Events))
	}
	if r.Events[1].Kind != KindBlock || r.Events[1].Name != "lock" {
		t.Errorf("second event = %+v", r.Events[1])
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "invalid" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if numKinds.String() != "invalid" {
		t.Error("out-of-range kind should stringify as invalid")
	}
}

func TestWriteReport(t *testing.T) {
	p := New(nil)
	// One saturated module with dominant remote traffic, light switch load.
	p.MemRef(0, 900, 0, 0, 9, false)
	p.MemRef(900, 100, 850, 0, 1, true)
	p.SwitchHop(0, 50, 0, 0, 4)
	p.ProcSpawn(0, 0, 0, "owner")
	p.ProcFlush(0, 0, 600)
	p.ProcDispatch(600, 0, 600, false)

	var b strings.Builder
	p.Metrics().WriteReport(&b, 1000, 4)
	out := b.String()
	for _, want := range []string{
		"memory modules",
		"0.900", // steal fraction of node 0
		"switch ports: 1 active",
		"busiest memory (node 0)",
		"wait histogram",
		"compute ms",
		"counters:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestChromeJSONRoundTrip pins the export format: it must parse back through
// encoding/json with the traceEvents array intact and events carrying the
// ts/dur/pid/tid fields the viewers key on.
func TestChromeJSONRoundTrip(t *testing.T) {
	var r Recorder
	p := New(&r)
	p.ProcSpawn(0, 2, 1, "worker")
	p.ProcFlush(1000, 2, 500)
	p.ProcRun(1500, 250, 2)
	p.MemRef(2000, 750, 125, 1, 3, false)
	p.SwitchHop(1800, 200, 0, 0, 9)
	p.Prim(3000, 2, 1, "event.post", 20000)
	p.ProcDone(4000, 2)

	chrome := EventsToChrome(7, "test machine", r.Events)
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, chrome); err != nil {
		t.Fatalf("write: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Pid != 7 {
			t.Errorf("event %q pid = %d, want 7", ev.Name, ev.Pid)
		}
	}
	for _, want := range []string{"process_name", "compute", "run", "remote ref", "port 9", "prim: event.post", "done"} {
		if byName[want] == 0 {
			t.Errorf("no %q event in export; got %v", want, byName)
		}
	}
	// Spans carry microsecond timestamps: the memref at 2000ns is ts=2.0us.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "remote ref" {
			if ev.Ts != 2.0 || ev.Dur != 0.75 {
				t.Errorf("remote ref ts/dur = %v/%v us, want 2.0/0.75", ev.Ts, ev.Dur)
			}
			if ev.Tid != tidMemBase+1 {
				t.Errorf("remote ref tid = %d, want %d", ev.Tid, tidMemBase+1)
			}
		}
	}
}

func TestNilProbeSafety(t *testing.T) {
	// The disabled state is the nil pointer: instrumented code only calls
	// through it behind nil checks, so the only contract here is that New(nil)
	// works sink-less and Metrics stays valid.
	p := New(nil)
	p.MemRef(0, 1, 0, 0, 1, true)
	if p.Metrics().Mem[0].LocalWords != 1 {
		t.Error("sink-less probe must still aggregate metrics")
	}
}
