package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the recorded event stream rendered as the JSON
// object format of the Chrome/Perfetto trace viewer ("traceEvents"), keyed
// by virtual time. Load the output at https://ui.perfetto.dev to scrub
// through a simulated execution — processes, memory modules, and switch
// stages each get a track.

// ChromeEvent is one entry of the trace-event JSON. Ts and Dur are in
// microseconds of virtual time (the unit the viewers expect).
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track ID layout inside one pid: engine processes use their proc ID;
// memory modules and switch stages sit in distinct high ranges so they form
// separate named tracks.
const (
	tidMemBase    = 1_000_000 // + node
	tidSwitchBase = 2_000_000 // + stage (hops of one stage share a track)
)

func usTs(ns int64) float64 { return float64(ns) / 1e3 }

// EventsToChrome converts a recorded probe event stream into trace-event
// entries under the given pid (use one pid per machine when exporting a
// multi-machine run). label names the pid's process track.
func EventsToChrome(pid int, label string, events []Event) []ChromeEvent {
	out := make([]ChromeEvent, 0, len(events)+16)
	meta := func(tid int, name string) {
		out = append(out, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	out = append(out, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": label},
	})
	memSeen := map[int]bool{}
	stageSeen := map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case KindSpawn:
			meta(ev.Proc, fmt.Sprintf("proc %d %s (node %d)", ev.Proc, ev.Name, ev.Node))
			out = append(out, ChromeEvent{
				Name: "spawn", Cat: "proc", Ph: "i", S: "t",
				Ts: usTs(ev.Time), Pid: pid, Tid: ev.Proc,
			})
		case KindRun:
			// Under lazy charging most dispatch slices have zero virtual
			// duration; only materialized slices are worth a span.
			if ev.Dur > 0 {
				out = append(out, ChromeEvent{
					Name: "run", Cat: "proc", Ph: "X",
					Ts: usTs(ev.Time), Dur: usTs(ev.Dur), Pid: pid, Tid: ev.Proc,
				})
			}
		case KindFlush:
			// A flush is the span of lazily charged compute the process just
			// folded into the calendar: [t, t+dur] of busy virtual time.
			out = append(out, ChromeEvent{
				Name: "compute", Cat: "proc", Ph: "X",
				Ts: usTs(ev.Time), Dur: usTs(ev.Dur), Pid: pid, Tid: ev.Proc,
			})
		case KindBlock:
			out = append(out, ChromeEvent{
				Name: "block: " + ev.Name, Cat: "proc", Ph: "i", S: "t",
				Ts: usTs(ev.Time), Pid: pid, Tid: ev.Proc,
			})
		case KindProcDone:
			out = append(out, ChromeEvent{
				Name: "done", Cat: "proc", Ph: "i", S: "t",
				Ts: usTs(ev.Time), Pid: pid, Tid: ev.Proc,
			})
		case KindMemRef:
			tid := tidMemBase + ev.Node
			if !memSeen[ev.Node] {
				memSeen[ev.Node] = true
				meta(tid, fmt.Sprintf("mem module %d", ev.Node))
			}
			name := "remote ref"
			if ev.Local {
				name = "local ref"
			}
			out = append(out, ChromeEvent{
				Name: name, Cat: "mem", Ph: "X",
				Ts: usTs(ev.Time), Dur: usTs(ev.Dur), Pid: pid, Tid: tid,
				Args: map[string]any{"words": ev.Words, "wait_ns": ev.Wait},
			})
		case KindSwitchHop:
			tid := tidSwitchBase + ev.Node
			if !stageSeen[ev.Node] {
				stageSeen[ev.Node] = true
				meta(tid, fmt.Sprintf("switch stage %d", ev.Node))
			}
			out = append(out, ChromeEvent{
				Name: fmt.Sprintf("port %d", ev.Port), Cat: "switch", Ph: "X",
				Ts: usTs(ev.Time), Dur: usTs(ev.Dur), Pid: pid, Tid: tid,
				Args: map[string]any{"wait_ns": ev.Wait},
			})
		case KindEnqueue, KindDequeue, KindPrim, KindMsgSend, KindMsgRecv:
			name := ev.Kind.String()
			if ev.Name != "" {
				name += ": " + ev.Name
			}
			ce := ChromeEvent{
				Name: name, Cat: "os", Ph: "i", S: "t",
				Ts: usTs(ev.Time), Pid: pid, Tid: ev.Proc,
			}
			if ev.Words > 0 {
				ce.Args = map[string]any{"words": ev.Words}
			}
			out = append(out, ce)
		case KindFault:
			// Faults render as global instants so they stand out when
			// scrubbing: on the issuing process's track when known, else on
			// the affected node's memory track.
			tid := ev.Proc
			if tid < 0 {
				tid = tidMemBase + ev.Node
				if !memSeen[ev.Node] {
					memSeen[ev.Node] = true
					meta(tid, fmt.Sprintf("mem module %d", ev.Node))
				}
			}
			out = append(out, ChromeEvent{
				Name: "fault: " + ev.Name, Cat: "fault", Ph: "i", S: "g",
				Ts: usTs(ev.Time), Pid: pid, Tid: tid,
				Args: map[string]any{"node": ev.Node},
			})
		case KindReqStart:
			out = append(out, ChromeEvent{
				Name: "req: " + ev.Name, Cat: "req", Ph: "i", S: "t",
				Ts: usTs(ev.Time), Pid: pid, Tid: ev.Proc,
			})
		case KindReqDone:
			// A completed request renders as a span covering its whole
			// lifetime [arrival, completion] on the completing process's
			// track, so queueing under overload is visible as stacked bars.
			status := "ok"
			if ev.Words == 0 {
				status = "error"
			}
			out = append(out, ChromeEvent{
				Name: "req done: " + ev.Name, Cat: "req", Ph: "X",
				Ts: usTs(ev.Time - ev.Dur), Dur: usTs(ev.Dur),
				Pid: pid, Tid: ev.Proc,
				Args: map[string]any{"status": status, "latency_us": usTs(ev.Dur)},
			})
		case KindDispatch, KindUnblock:
			// High-frequency bookkeeping instants; the compute spans already
			// show the schedule, so these stay out of the export to keep
			// traces loadable.
		}
	}
	return out
}

// WriteChromeJSON writes trace entries as the Chrome trace-event JSON object
// format. The output round-trips through encoding/json and loads in
// chrome://tracing and Perfetto.
func WriteChromeJSON(w io.Writer, events []ChromeEvent) error {
	doc := struct {
		TraceEvents     []ChromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
