package probe

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// MemMetrics aggregates one memory module's traffic, split by origin. The
// module is a single port shared by its owner and the network, so the remote
// share of BusyNs is exactly the paper's "stolen" memory-cycle fraction.
type MemMetrics struct {
	LocalBusyNs  int64
	RemoteBusyNs int64
	LocalWaitNs  int64
	RemoteWaitNs int64
	LocalWords   uint64
	RemoteWords  uint64
}

// BusyNs is the module's total occupancy.
func (m MemMetrics) BusyNs() int64 { return m.LocalBusyNs + m.RemoteBusyNs }

// StealFraction is the share of module occupancy consumed by remote
// references — the cycle-steal fraction of E5. Zero when idle.
func (m MemMetrics) StealFraction() float64 {
	if b := m.BusyNs(); b > 0 {
		return float64(m.RemoteBusyNs) / float64(b)
	}
	return 0
}

// PortMetrics aggregates one switch output port.
type PortMetrics struct {
	BusyNs  int64
	WaitNs  int64
	Packets uint64
}

// Hist is a log2 histogram of queueing delays in nanoseconds: bucket i counts
// waits in [2^(i-1), 2^i) (bucket 0 counts zero-wait references).
type Hist struct {
	Buckets [48]uint64
}

func (h *Hist) add(waitNs int64) {
	i := 0
	if waitNs > 0 {
		i = bits.Len64(uint64(waitNs))
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
	}
	h.Buckets[i]++
}

// Total counts all recorded waits.
func (h *Hist) Total() uint64 {
	var n uint64
	for _, v := range h.Buckets {
		n += v
	}
	return n
}

// Metrics is the aggregated view of one probe's event stream. Per-module and
// per-process slices grow on demand, so a Metrics never needs to know the
// machine's shape in advance.
type Metrics struct {
	// Mem is indexed by node (memory module).
	Mem []MemMetrics
	// Ports is indexed by [stage][port].
	Ports [][]PortMetrics
	// WaitHist pools the queueing delays of memory and switch reservations.
	WaitHist Hist

	// Per-process virtual-time breakdowns, indexed by engine proc ID. With
	// lazy clocks a process "computes" while parked on its own flush wake-up,
	// so ComputeNs (flushed charge) is a subset of WaitNs; idle scheduling
	// delay is WaitNs - ComputeNs.
	ProcRunNs     []int64 // dispatched and running (usually ~0 under lazy charging)
	ProcComputeNs []int64 // lazily charged compute time, attributed at flush
	ProcWaitNs    []int64 // parked awaiting a scheduled event (Advance/flush)
	ProcBlockedNs []int64 // blocked on a queue or event

	// Event counters.
	Spawns     uint64
	Dispatches uint64
	Parks      uint64
	Flushes    uint64
	Blocks     uint64
	Enqueues   uint64
	Dequeues   uint64
	Prims      uint64
	MsgSends   uint64
	MsgRecvs   uint64
	Faults     uint64

	// FaultLog retains every injected-fault record, in occurrence order.
	// Empty (and unreported) when no fault injector is attached.
	FaultLog []FaultRecord

	// Workload request lifecycle (all zero — and unreported — unless a
	// workload adapter emits request events).
	Requests   uint64 // injected
	ReqDone    uint64 // completed, ok or not
	ReqErrors  uint64 // completed with an error
	ReqLatHist Hist   // end-to-end request latencies
}

// FaultRecord is one injected-fault observation.
type FaultRecord struct {
	Time int64  // virtual time of the fault
	Proc int    // process issuing the failed reference, -1 for node deaths
	Node int    // affected node
	What string // fault label: "node-down", "packet-loss", "parity"
}

func (m *Metrics) memGrow(node int) {
	for len(m.Mem) <= node {
		m.Mem = append(m.Mem, MemMetrics{})
	}
}

func (m *Metrics) portGrow(stage, port int) {
	for len(m.Ports) <= stage {
		m.Ports = append(m.Ports, nil)
	}
	for len(m.Ports[stage]) <= port {
		m.Ports[stage] = append(m.Ports[stage], PortMetrics{})
	}
}

func (m *Metrics) procGrow(proc int) {
	for len(m.ProcRunNs) <= proc {
		m.ProcRunNs = append(m.ProcRunNs, 0)
		m.ProcComputeNs = append(m.ProcComputeNs, 0)
		m.ProcWaitNs = append(m.ProcWaitNs, 0)
		m.ProcBlockedNs = append(m.ProcBlockedNs, 0)
	}
}

// MemUtilization returns the busiest module's occupancy fraction of the
// elapsed virtual time, and its node index. elapsedNs must be positive.
func (m *Metrics) MemUtilization(elapsedNs int64) (frac float64, node int) {
	var best int64
	node = -1
	for i := range m.Mem {
		if b := m.Mem[i].BusyNs(); b > best {
			best, node = b, i
		}
	}
	if elapsedNs <= 0 {
		return 0, node
	}
	return float64(best) / float64(elapsedNs), node
}

// PortUtilization returns the busiest switch port's occupancy fraction of
// the elapsed virtual time, with its stage and port.
func (m *Metrics) PortUtilization(elapsedNs int64) (frac float64, stage, port int) {
	var best int64
	stage, port = -1, -1
	for s := range m.Ports {
		for p := range m.Ports[s] {
			if b := m.Ports[s][p].BusyNs; b > best {
				best, stage, port = b, s, p
			}
		}
	}
	if elapsedNs <= 0 {
		return 0, stage, port
	}
	return float64(best) / float64(elapsedNs), stage, port
}

// MeanPortUtilization returns the average occupancy fraction across the
// switch ports that carried any traffic — the aggregate "how busy is the
// switch" number E6 is about (a single funnel port can be moderately busy
// while the network as a whole idles).
func (m *Metrics) MeanPortUtilization(elapsedNs int64) float64 {
	var busy int64
	active := 0
	for s := range m.Ports {
		for p := range m.Ports[s] {
			if m.Ports[s][p].Packets > 0 {
				active++
				busy += m.Ports[s][p].BusyNs
			}
		}
	}
	if active == 0 || elapsedNs <= 0 {
		return 0
	}
	return float64(busy) / float64(active) / float64(elapsedNs)
}

// WriteReport renders the contention report: per-module occupancy split into
// local and remote (the cycle-steal fraction), switch-port occupancy, the
// wait histogram, per-process run/wait/blocked breakdowns, and the event
// counters. elapsedNs is the engine's final virtual time (the utilization
// denominator); topN bounds the per-module and per-process tables (<=0 means
// 8).
func (m *Metrics) WriteReport(w io.Writer, elapsedNs int64, topN int) {
	if topN <= 0 {
		topN = 8
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	pct := func(ns int64) float64 {
		if elapsedNs <= 0 {
			return 0
		}
		return 100 * float64(ns) / float64(elapsedNs)
	}

	fmt.Fprintf(w, "probe report: %.3f ms of virtual time\n", float64(elapsedNs)/1e6)

	// Memory modules, busiest first.
	order := make([]int, 0, len(m.Mem))
	for i := range m.Mem {
		if m.Mem[i].BusyNs() > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if x, y := m.Mem[order[a]].BusyNs(), m.Mem[order[b]].BusyNs(); x != y {
			return x > y
		}
		return order[a] < order[b]
	})
	fmt.Fprintf(w, "\nmemory modules (top %d of %d active, by occupancy):\n", min(topN, len(order)), len(order))
	fmt.Fprintf(w, "%6s %8s %8s %8s %8s %12s %14s\n",
		"node", "busy%", "local%", "remote%", "steal", "words L/R", "localWait us/w")
	for i, n := range order {
		if i >= topN {
			break
		}
		mm := m.Mem[n]
		perWord := 0.0
		if mm.LocalWords > 0 {
			perWord = us(mm.LocalWaitNs) / float64(mm.LocalWords)
		}
		fmt.Fprintf(w, "%6d %7.2f%% %7.2f%% %7.2f%% %8.3f %12s %14.2f\n",
			n, pct(mm.BusyNs()), pct(mm.LocalBusyNs), pct(mm.RemoteBusyNs),
			mm.StealFraction(),
			fmt.Sprintf("%d/%d", mm.LocalWords, mm.RemoteWords), perWord)
	}

	// Switch ports: summary plus the single busiest port.
	var portBusy, portWait int64
	var packets uint64
	active := 0
	for s := range m.Ports {
		for p := range m.Ports[s] {
			pm := m.Ports[s][p]
			if pm.Packets == 0 {
				continue
			}
			active++
			portBusy += pm.BusyNs
			portWait += pm.WaitNs
			packets += pm.Packets
		}
	}
	maxFrac, stage, port := m.PortUtilization(elapsedNs)
	memFrac, memNode := m.MemUtilization(elapsedNs)
	fmt.Fprintf(w, "\nswitch ports: %d active, %d hops, busiest port %.3f%% busy",
		active, packets, 100*maxFrac)
	if stage >= 0 {
		fmt.Fprintf(w, " (stage %d port %d)", stage, port)
	}
	fmt.Fprintf(w, "\n  total port occupancy %.3f ms, total port wait %.3f ms, mean active-port occupancy %.3f%%\n",
		float64(portBusy)/1e6, float64(portWait)/1e6, 100*m.MeanPortUtilization(elapsedNs))
	if memFrac > 0 && maxFrac >= 0 {
		fmt.Fprintf(w, "  busiest memory (node %d) is %.2f%% busy — %.0fx the busiest switch port\n",
			memNode, 100*memFrac, safeRatio(memFrac, maxFrac))
	}

	// Wait histogram.
	if total := m.WaitHist.Total(); total > 0 {
		fmt.Fprintf(w, "\nreservation wait histogram (%d reservations):\n", total)
		last := 0
		for i, v := range m.WaitHist.Buckets {
			if v > 0 {
				last = i
			}
		}
		for i := 0; i <= last; i++ {
			v := m.WaitHist.Buckets[i]
			if v == 0 {
				continue
			}
			label := "0"
			if i > 0 {
				label = fmt.Sprintf("<%s", humanNs(int64(1)<<uint(i)))
			}
			fmt.Fprintf(w, "  %8s %10d (%5.1f%%)\n", label, v, 100*float64(v)/float64(total))
		}
	}

	// Per-process breakdowns, longest-computing first. Compute is the lazily
	// charged (flushed) time; idle is scheduling wait net of that compute.
	procs := make([]int, 0, len(m.ProcRunNs))
	for i := range m.ProcRunNs {
		if m.ProcRunNs[i]+m.ProcWaitNs[i]+m.ProcBlockedNs[i] > 0 {
			procs = append(procs, i)
		}
	}
	compute := func(id int) int64 { return m.ProcRunNs[id] + m.ProcComputeNs[id] }
	sort.Slice(procs, func(a, b int) bool {
		if x, y := compute(procs[a]), compute(procs[b]); x != y {
			return x > y
		}
		return procs[a] < procs[b]
	})
	fmt.Fprintf(w, "\nprocesses (top %d of %d, by compute time):\n", min(topN, len(procs)), len(procs))
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "proc", "compute ms", "idle ms", "blocked ms")
	for i, id := range procs {
		if i >= topN {
			break
		}
		idle := m.ProcWaitNs[id] - m.ProcComputeNs[id]
		if idle < 0 {
			idle = 0
		}
		fmt.Fprintf(w, "%6d %12.3f %12.3f %12.3f\n", id,
			float64(compute(id))/1e6, float64(idle)/1e6, float64(m.ProcBlockedNs[id])/1e6)
	}

	// Injected faults. Reported only when an injector actually fired, so
	// fault-free probe reports stay byte-identical to the pre-fault tree.
	if m.Faults > 0 {
		byWhat := map[string]uint64{}
		for _, f := range m.FaultLog {
			byWhat[f.What]++
		}
		whats := make([]string, 0, len(byWhat))
		for k := range byWhat {
			whats = append(whats, k)
		}
		sort.Strings(whats)
		fmt.Fprintf(w, "\ninjected faults: %d total (", m.Faults)
		for i, k := range whats {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s=%d", k, byWhat[k])
		}
		fmt.Fprintf(w, ")\n")
		shown := len(m.FaultLog)
		if shown > topN {
			shown = topN
		}
		fmt.Fprintf(w, "  first %d:\n", shown)
		for _, f := range m.FaultLog[:shown] {
			fmt.Fprintf(w, "  t=%-12.3fms node=%-4d proc=%-5d %s\n",
				float64(f.Time)/1e6, f.Node, f.Proc, f.What)
		}
	}

	// Workload request lifecycle. Reported only when a workload adapter
	// injected requests, so non-service probe reports stay byte-identical.
	if m.Requests > 0 {
		fmt.Fprintf(w, "\nworkload requests: %d injected, %d completed, %d errors\n",
			m.Requests, m.ReqDone, m.ReqErrors)
		if total := m.ReqLatHist.Total(); total > 0 {
			fmt.Fprintf(w, "  latency histogram:\n")
			last := 0
			for i, v := range m.ReqLatHist.Buckets {
				if v > 0 {
					last = i
				}
			}
			for i := 0; i <= last; i++ {
				v := m.ReqLatHist.Buckets[i]
				if v == 0 {
					continue
				}
				label := "0"
				if i > 0 {
					label = fmt.Sprintf("<%s", humanNs(int64(1)<<uint(i)))
				}
				fmt.Fprintf(w, "  %8s %10d (%5.1f%%)\n", label, v, 100*float64(v)/float64(total))
			}
		}
	}

	fmt.Fprintf(w, "\ncounters: spawns=%d dispatches=%d parks=%d flushes=%d blocks=%d enq=%d deq=%d prims=%d send=%d recv=%d",
		m.Spawns, m.Dispatches, m.Parks, m.Flushes, m.Blocks,
		m.Enqueues, m.Dequeues, m.Prims, m.MsgSends, m.MsgRecvs)
	if m.Faults > 0 {
		fmt.Fprintf(w, " faults=%d", m.Faults)
	}
	if m.Requests > 0 {
		fmt.Fprintf(w, " reqs=%d", m.Requests)
	}
	fmt.Fprintf(w, "\n")
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func humanNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%ds", ns/1_000_000_000)
	case ns >= 1_000_000:
		return fmt.Sprintf("%dms", ns/1_000_000)
	case ns >= 1_000:
		return fmt.Sprintf("%dus", ns/1_000)
	}
	return fmt.Sprintf("%dns", ns)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
