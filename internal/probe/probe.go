// Package probe is the simulator-wide observability layer: a typed event
// stream and aggregated contention metrics threaded through every layer of
// the Butterfly model (engine, memory modules, switch network, machine,
// Chrysalis, programming models).
//
// Probes are purely observational. Attaching one never changes dispatch
// order, reservation calendars, or virtual time — the golden determinism
// fingerprints are byte-identical with probes on or off — and a detached
// probe (the nil pointer) costs every hot path exactly one nil check. This
// is the measurement substrate the paper argues for: end-to-end timings show
// *that* remote references steal memory cycles (E5) and that the switch is
// almost idle (E6); the probe shows *where* the virtual time goes.
//
// The package is a leaf: it imports only the standard library, so every
// simulator layer can hold a *Probe without import cycles.
package probe

// Kind classifies a probe event.
type Kind uint8

// Event kinds, one per instrumented interaction.
const (
	// KindSpawn: a process was created (Proc, Node, Name).
	KindSpawn Kind = iota
	// KindDispatch: the engine resumed a process (Proc; Wait is the virtual
	// time since it parked, Words is 1 if it had been blocked, 0 if it was
	// merely scheduled).
	KindDispatch
	// KindRun: a process suspended; the event is the run slice just ended
	// (Proc, Time = dispatch time, Dur = slice length).
	KindRun
	// KindFlush: a lazily accumulated local clock was folded into the event
	// queue (Proc, Dur = flushed nanoseconds).
	KindFlush
	// KindBlock: a process blocked indefinitely (Proc, Name = reason).
	KindBlock
	// KindUnblock: a blocked process was made runnable (Proc).
	KindUnblock
	// KindProcDone: a process ran to completion (Proc).
	KindProcDone
	// KindMemRef: a memory module served a reference (Node = module,
	// Time = service start, Dur = occupancy, Wait = queueing delay,
	// Words, Local = issued by the owning processor).
	KindMemRef
	// KindSwitchHop: a packet traversed one switch output port
	// (Node = stage, Port, Time = service start, Dur = occupancy,
	// Wait = port queueing delay).
	KindSwitchHop
	// KindEnqueue: a dual-queue enqueue completed (Proc, Node = home node,
	// Name = queue label).
	KindEnqueue
	// KindDequeue: a dual-queue dequeue completed (Proc, Node, Name).
	KindDequeue
	// KindPrim: a Chrysalis primitive invocation completed (Proc, Node,
	// Name = primitive, Dur = nominal cost).
	KindPrim
	// KindMsgSend: a model-level message was sent (Proc, Node = destination
	// node, Words, Name = model label).
	KindMsgSend
	// KindMsgRecv: a model-level message was received (Proc, Node, Words,
	// Name).
	KindMsgRecv
	// KindFault: the fault injector acted (Node = affected node, Proc = the
	// process issuing the failed reference or -1, Name = fault label like
	// "node-down", "packet-loss", "parity").
	KindFault
	// KindReqStart: a workload request was injected into a service
	// (Time = scheduled arrival, Proc = injecting process, Name = service).
	KindReqStart
	// KindReqDone: a workload request completed (Time = completion,
	// Dur = latency from scheduled arrival, Proc = completing process,
	// Name = service, Words = 1 on success, 0 on error).
	KindReqDone

	numKinds
)

// String names the kind for reports and trace exports.
func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "spawn"
	case KindDispatch:
		return "dispatch"
	case KindRun:
		return "run"
	case KindFlush:
		return "flush"
	case KindBlock:
		return "block"
	case KindUnblock:
		return "unblock"
	case KindProcDone:
		return "done"
	case KindMemRef:
		return "memref"
	case KindSwitchHop:
		return "switchhop"
	case KindEnqueue:
		return "enqueue"
	case KindDequeue:
		return "dequeue"
	case KindPrim:
		return "prim"
	case KindMsgSend:
		return "send"
	case KindMsgRecv:
		return "recv"
	case KindFault:
		return "fault"
	case KindReqStart:
		return "reqstart"
	case KindReqDone:
		return "reqdone"
	}
	return "invalid"
}

// Event is one typed observation. Field meaning varies by Kind (see the Kind
// constants); unused fields are zero. Time is virtual nanoseconds.
type Event struct {
	Kind  Kind
	Time  int64  // start of the span, or the instant for point events
	Dur   int64  // span length (0 for point events)
	Wait  int64  // queueing delay suffered before Time
	Proc  int    // engine process ID, -1 when no process is in context
	Node  int    // node / module index, or switch stage for KindSwitchHop
	Port  int    // switch output port (KindSwitchHop only)
	Words int    // words transferred (memory refs, messages)
	Local bool   // memory reference issued by the owning processor
	Name  string // label: process name, block reason, primitive, queue, model
}

// Sink receives the raw event stream of a Probe. Sinks must not call back
// into the simulation; they observe only.
type Sink interface {
	Emit(Event)
}

// Recorder is a Sink that retains every event, for trace export.
type Recorder struct {
	Events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }

// Counter is a Sink that only counts events per kind — the cheapest possible
// observer, used by the determinism suite to prove observation does not
// perturb the simulation.
type Counter struct {
	ByKind [numKinds]uint64
}

// Emit implements Sink.
func (c *Counter) Emit(ev Event) { c.ByKind[ev.Kind]++ }

// Total sums the per-kind counts.
func (c *Counter) Total() uint64 {
	var n uint64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Probe aggregates metrics from the instrumented layers and optionally
// forwards the raw event stream to a Sink. A nil *Probe is the disabled
// state; every emit helper is called only behind a nil check in the
// instrumented code.
type Probe struct {
	sink Sink
	met  Metrics
}

// New creates a probe. sink may be nil to aggregate metrics only.
func New(sink Sink) *Probe { return &Probe{sink: sink} }

// Metrics exposes the aggregated counters. The pointer stays valid for the
// probe's lifetime; read it after the simulation finishes.
func (p *Probe) Metrics() *Metrics { return &p.met }

func (p *Probe) emit(ev Event) {
	if p.sink != nil {
		p.sink.Emit(ev)
	}
}

// ProcSpawn records a process creation.
func (p *Probe) ProcSpawn(t int64, proc, node int, name string) {
	p.met.procGrow(proc)
	p.met.Spawns++
	p.emit(Event{Kind: KindSpawn, Time: t, Proc: proc, Node: node, Name: name})
}

// ProcDispatch records the engine resuming a process. sincePark is the
// virtual time the process spent off-CPU; blocked distinguishes time spent
// blocked on a queue from time merely scheduled ahead.
func (p *Probe) ProcDispatch(t int64, proc int, sincePark int64, blocked bool) {
	p.met.procGrow(proc)
	p.met.Dispatches++
	w := 0
	if blocked {
		p.met.ProcBlockedNs[proc] += sincePark
		w = 1
	} else {
		p.met.ProcWaitNs[proc] += sincePark
	}
	p.emit(Event{Kind: KindDispatch, Time: t, Proc: proc, Wait: sincePark, Words: w})
}

// ProcRun records the run slice that just ended (the process is parking).
func (p *Probe) ProcRun(start, dur int64, proc int) {
	p.met.procGrow(proc)
	p.met.Parks++
	p.met.ProcRunNs[proc] += dur
	p.emit(Event{Kind: KindRun, Time: start, Dur: dur, Proc: proc})
}

// ProcFlush records a lazy local-clock flush: the process lazily charged dur
// nanoseconds of compute spanning [t, t+dur] of virtual time.
func (p *Probe) ProcFlush(t int64, proc int, dur int64) {
	p.met.procGrow(proc)
	p.met.Flushes++
	p.met.ProcComputeNs[proc] += dur
	p.emit(Event{Kind: KindFlush, Time: t, Dur: dur, Proc: proc})
}

// ProcBlock records a process blocking; reason matches the deadlock report.
func (p *Probe) ProcBlock(t int64, proc int, reason string) {
	p.met.Blocks++
	p.emit(Event{Kind: KindBlock, Time: t, Proc: proc, Name: reason})
}

// ProcUnblock records a blocked process being made runnable.
func (p *Probe) ProcUnblock(t int64, proc int) {
	p.emit(Event{Kind: KindUnblock, Time: t, Proc: proc})
}

// ProcDone records a process completing.
func (p *Probe) ProcDone(t int64, proc int) {
	p.emit(Event{Kind: KindProcDone, Time: t, Proc: proc})
}

// MemRef records a memory module serving words 32-bit words: service starts
// at start after wait nanoseconds of queueing and occupies the module for
// dur. local marks references issued by the owning processor — the
// local/remote occupancy split is the cycle-steal measurement of E5.
func (p *Probe) MemRef(start, dur, wait int64, node, words int, local bool) {
	p.met.memGrow(node)
	mm := &p.met.Mem[node]
	if local {
		mm.LocalBusyNs += dur
		mm.LocalWaitNs += wait
		mm.LocalWords += uint64(words)
	} else {
		mm.RemoteBusyNs += dur
		mm.RemoteWaitNs += wait
		mm.RemoteWords += uint64(words)
	}
	p.met.WaitHist.add(wait)
	p.emit(Event{Kind: KindMemRef, Time: start, Dur: dur, Wait: wait, Proc: -1, Node: node, Words: words, Local: local})
}

// SwitchHop records a packet occupying one switch output port.
func (p *Probe) SwitchHop(start, dur, wait int64, stage, port int) {
	p.met.portGrow(stage, port)
	pm := &p.met.Ports[stage][port]
	pm.BusyNs += dur
	pm.WaitNs += wait
	pm.Packets++
	p.met.WaitHist.add(wait)
	p.emit(Event{Kind: KindSwitchHop, Time: start, Dur: dur, Wait: wait, Proc: -1, Node: stage, Port: port})
}

// QueueOp records a dual-queue enqueue or dequeue completing.
func (p *Probe) QueueOp(t int64, proc, node int, enqueue bool, name string) {
	k := KindDequeue
	if enqueue {
		k = KindEnqueue
		p.met.Enqueues++
	} else {
		p.met.Dequeues++
	}
	p.emit(Event{Kind: k, Time: t, Proc: proc, Node: node, Name: name})
}

// Prim records a Chrysalis primitive invocation completing at t with the
// given nominal cost.
func (p *Probe) Prim(t int64, proc, node int, name string, costNs int64) {
	p.met.Prims++
	p.emit(Event{Kind: KindPrim, Time: t, Dur: costNs, Proc: proc, Node: node, Name: name})
}

// MsgSend records a model-level message send to dstNode.
func (p *Probe) MsgSend(t int64, proc, dstNode, words int, model string) {
	p.met.MsgSends++
	p.emit(Event{Kind: KindMsgSend, Time: t, Proc: proc, Node: dstNode, Words: words, Name: model})
}

// MsgRecv records a model-level message receive.
func (p *Probe) MsgRecv(t int64, proc, srcNode, words int, model string) {
	p.met.MsgRecvs++
	p.emit(Event{Kind: KindMsgRecv, Time: t, Proc: proc, Node: srcNode, Words: words, Name: model})
}

// ReqStart records a workload request injected into a service at its
// scheduled arrival time.
func (p *Probe) ReqStart(t int64, proc int, service string) {
	p.met.Requests++
	p.emit(Event{Kind: KindReqStart, Time: t, Proc: proc, Name: service})
}

// ReqDone records a workload request completing at t with the given
// end-to-end latency (measured from the scheduled arrival). ok is false
// for timeouts, dead-node errors, and remote exceptions.
func (p *Probe) ReqDone(t, latencyNs int64, proc int, service string, ok bool) {
	p.met.ReqDone++
	w := 1
	if !ok {
		p.met.ReqErrors++
		w = 0
	}
	p.met.ReqLatHist.add(latencyNs)
	p.emit(Event{Kind: KindReqDone, Time: t, Dur: latencyNs, Proc: proc, Words: w, Name: service})
}

// Fault records an injected fault hitting the simulation: a node death, an
// exhausted packet-retry sequence, or a parity error. proc is the process
// that issued the failing reference, or -1 for machine-level events.
func (p *Probe) Fault(t int64, proc, node int, what string) {
	p.met.Faults++
	p.met.FaultLog = append(p.met.FaultLog, FaultRecord{Time: t, Proc: proc, Node: node, What: what})
	p.emit(Event{Kind: KindFault, Time: t, Proc: proc, Node: node, Name: what})
}
