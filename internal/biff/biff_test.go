package biff

import (
	"testing"
)

func TestAtClamps(t *testing.T) {
	g := NewGray(4, 4)
	g.Set(0, 0, 9)
	g.Set(3, 3, 7)
	if g.At(-5, -5) != 9 || g.At(10, 10) != 7 {
		t.Error("border clamping wrong")
	}
}

func TestThreshold(t *testing.T) {
	g := NewGray(2, 1)
	g.Set(0, 0, 100)
	g.Set(1, 0, 200)
	out := ApplySequential(Threshold{T: 128}, g)
	if out.At(0, 0) != 0 || out.At(1, 0) != 255 {
		t.Errorf("threshold = %v", out.Pix)
	}
}

func TestSmoothFlatImageUnchanged(t *testing.T) {
	g := NewGray(8, 8)
	for i := range g.Pix {
		g.Pix[i] = 100
	}
	out := ApplySequential(Smooth(), g)
	for i, v := range out.Pix {
		if v != 100 {
			t.Fatalf("pixel %d = %d", i, v)
		}
	}
}

func TestSobelFindsVerticalEdge(t *testing.T) {
	g := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			g.Set(x, y, 255)
		}
	}
	out := ApplySequential(SobelMag{}, g)
	if out.At(4, 4) == 0 || out.At(3, 4) == 0 {
		t.Error("edge not detected at boundary")
	}
	if out.At(1, 4) != 0 || out.At(6, 4) != 0 {
		t.Error("false edges in flat regions")
	}
}

func TestZeroCrossOnStep(t *testing.T) {
	g := NewGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			g.Set(x, y, 200)
		}
	}
	out := ApplySequential(ZeroCross{}, g)
	found := false
	for y := 0; y < 8; y++ {
		for x := 2; x <= 5; x++ {
			if out.At(x, y) == 255 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no zero crossings near the step")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	img := TestImage(64, 48, 1)
	pipeline := []Filter{Smooth(), SobelMag{}, Threshold{T: 60}}
	want := PipelineSequential(img, pipeline...)
	res, err := Run(img, 8, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(want, res.Out); err != nil {
		t.Fatal(err)
	}
	if len(res.StageNs) != 3 {
		t.Errorf("stages = %d", len(res.StageNs))
	}
}

func TestZeroCrossPipelineParallel(t *testing.T) {
	img := TestImage(48, 48, 2)
	pipeline := []Filter{Smooth(), ZeroCross{}}
	want := PipelineSequential(img, pipeline...)
	res, err := Run(img, 4, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equal(want, res.Out); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSpeedup(t *testing.T) {
	img := TestImage(96, 96, 3)
	pipeline := []Filter{Smooth(), SobelMag{}}
	r1, err := Run(img, 1, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(img, 16, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.ElapsedNs) / float64(r16.ElapsedNs)
	if speedup < 8 {
		t.Errorf("speedup = %.1f on 16 procs", speedup)
	}
}

func TestButterflyBeatsWorkstation(t *testing.T) {
	// The BIFF pitch: the parallel machine beats the local workstation by a
	// wide margin despite slower individual processors.
	img := TestImage(128, 128, 4)
	pipeline := []Filter{Smooth(), SobelMag{}, Threshold{T: 50}}
	res, err := Run(img, 32, pipeline...)
	if err != nil {
		t.Fatal(err)
	}
	ws := WorkstationNs(img, pipeline...)
	if res.ElapsedNs*2 > ws {
		t.Errorf("Butterfly (%d ns) not clearly faster than workstation (%d ns)", res.ElapsedNs, ws)
	}
}

func TestEmptyPipelineRejected(t *testing.T) {
	if _, err := Run(TestImage(8, 8, 5), 2); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := TestImage(8, 8, 6)
	b := TestImage(8, 8, 6)
	if err := Equal(a, b); err != nil {
		t.Fatal(err)
	}
	b.Pix[10] ^= 1
	if Equal(a, b) == nil {
		t.Error("difference not detected")
	}
	if Equal(a, NewGray(4, 4)) == nil {
		t.Error("size mismatch not detected")
	}
}

func TestFilterNames(t *testing.T) {
	for _, f := range []Filter{Threshold{T: 1}, Smooth(), SobelMag{}, ZeroCross{}} {
		if f.Name() == "" || f.CostPerPixel() <= 0 {
			t.Errorf("bad filter metadata: %T", f)
		}
	}
}
