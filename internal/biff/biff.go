// Package biff implements BIFF (Butterfly IFF; Olson, BPR 9; §3.1 of the
// paper): Uniform System-based parallel versions of the standard IFF image
// filters. IFF treats vision utilities as composable filters — an image goes
// in, an image comes out — so complex operations are built by composing
// simpler ones. "A researcher at a workstation can download an image into
// the Butterfly, apply a complex sequence of operations, and upload the
// result in a tiny fraction of the time required to perform the same
// operations locally."
//
// The package provides the DARPA-benchmark staples: thresholding, 3x3
// convolution (Sobel edge finding), gradient magnitude, Laplacian
// zero-crossing detection, and a sequential reference for each.
package biff

import (
	"errors"
	"fmt"
	"math/rand"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/us"
)

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []uint8
}

// NewGray allocates a black image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the border
// (replicated-edge convention for convolutions).
func (g *Gray) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates panic.
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// TestImage builds a deterministic image with gradients, a bright square,
// and noise — enough structure for edges and components.
func TestImage(w, h int, seed int64) *Gray {
	rng := rand.New(rand.NewSource(seed))
	g := NewGray(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (x * 255) / w
			if x > w/4 && x < w/2 && y > h/4 && y < h/2 {
				v = 230
			}
			v += rng.Intn(11) - 5
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Set(x, y, uint8(v))
		}
	}
	return g
}

// Filter is one composable image operation.
type Filter interface {
	// Name identifies the filter in pipeline reports.
	Name() string
	// At computes the output pixel at (x, y) from the source image.
	At(src *Gray, x, y int) uint8
	// CostPerPixel reports the integer-operation count charged per pixel.
	CostPerPixel() int
	// Halo reports how many neighbouring rows each side a band needs.
	Halo() int
}

// Threshold binarizes at T.
type Threshold struct{ T uint8 }

// Name implements Filter.
func (f Threshold) Name() string { return fmt.Sprintf("threshold(%d)", f.T) }

// At implements Filter.
func (f Threshold) At(src *Gray, x, y int) uint8 {
	if src.At(x, y) >= f.T {
		return 255
	}
	return 0
}

// CostPerPixel implements Filter.
func (Threshold) CostPerPixel() int { return 2 }

// Halo implements Filter.
func (Threshold) Halo() int { return 0 }

// Convolve3 applies a 3x3 kernel with divisor and offset, clamping to 0..255.
type Convolve3 struct {
	Label  string
	K      [3][3]int
	Div    int
	Offset int
}

// Name implements Filter.
func (f Convolve3) Name() string { return f.Label }

// At implements Filter.
func (f Convolve3) At(src *Gray, x, y int) uint8 {
	sum := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			sum += f.K[dy+1][dx+1] * int(src.At(x+dx, y+dy))
		}
	}
	div := f.Div
	if div == 0 {
		div = 1
	}
	v := sum/div + f.Offset
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// CostPerPixel implements Filter.
func (Convolve3) CostPerPixel() int { return 20 }

// Halo implements Filter.
func (Convolve3) Halo() int { return 1 }

// Smooth is a 3x3 box blur.
func Smooth() Convolve3 {
	return Convolve3{Label: "smooth", K: [3][3]int{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}, Div: 9}
}

// SobelMag is gradient-magnitude edge finding (|Gx| + |Gy|, clamped) — the
// DARPA benchmark's "edge finding".
type SobelMag struct{}

// Name implements Filter.
func (SobelMag) Name() string { return "sobel magnitude" }

// At implements Filter.
func (SobelMag) At(src *Gray, x, y int) uint8 {
	gx := -int(src.At(x-1, y-1)) - 2*int(src.At(x-1, y)) - int(src.At(x-1, y+1)) +
		int(src.At(x+1, y-1)) + 2*int(src.At(x+1, y)) + int(src.At(x+1, y+1))
	gy := -int(src.At(x-1, y-1)) - 2*int(src.At(x, y-1)) - int(src.At(x+1, y-1)) +
		int(src.At(x-1, y+1)) + 2*int(src.At(x, y+1)) + int(src.At(x+1, y+1))
	if gx < 0 {
		gx = -gx
	}
	if gy < 0 {
		gy = -gy
	}
	v := gx + gy
	if v > 255 {
		v = 255
	}
	return uint8(v)
}

// CostPerPixel implements Filter.
func (SobelMag) CostPerPixel() int { return 30 }

// Halo implements Filter.
func (SobelMag) Halo() int { return 1 }

// ZeroCross marks Laplacian zero crossings — the DARPA benchmark's
// "zero-crossing detection". A pixel is marked when its Laplacian response
// differs in sign from a 4-neighbour's.
type ZeroCross struct{}

// Name implements Filter.
func (ZeroCross) Name() string { return "zero crossings" }

// laplacian is the raw (unclamped) response.
func laplacian(src *Gray, x, y int) int {
	return 4*int(src.At(x, y)) -
		int(src.At(x-1, y)) - int(src.At(x+1, y)) -
		int(src.At(x, y-1)) - int(src.At(x, y+1))
}

// At implements Filter.
func (ZeroCross) At(src *Gray, x, y int) uint8 {
	c := laplacian(src, x, y)
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		n := laplacian(src, x+d[0], y+d[1])
		if (c < 0 && n > 0) || (c > 0 && n < 0) {
			return 255
		}
	}
	return 0
}

// CostPerPixel implements Filter.
func (ZeroCross) CostPerPixel() int { return 45 }

// Halo implements Filter.
func (ZeroCross) Halo() int { return 2 }

// ApplySequential runs a filter over a whole image in plain Go (the
// reference and the "workstation" path).
func ApplySequential(f Filter, src *Gray) *Gray {
	out := NewGray(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			out.Set(x, y, f.At(src, x, y))
		}
	}
	return out
}

// PipelineSequential composes filters sequentially.
func PipelineSequential(src *Gray, filters ...Filter) *Gray {
	img := src
	for _, f := range filters {
		img = ApplySequential(f, img)
	}
	return img
}

// Result reports a parallel pipeline run.
type Result struct {
	Procs     int
	ElapsedNs int64
	// StageNs records the virtual time of each filter stage.
	StageNs []int64
	Out     *Gray
}

// Run executes the filter pipeline on a simulated Butterfly: the image is
// scattered by rows; each filter is one Uniform System generation of
// row-band tasks that block-copy their band plus halo into local memory,
// compute, and copy the result back (the §4.1 caching idiom, which BIFF
// used from the start).
func Run(src *Gray, procs int, filters ...Filter) (Result, error) {
	if len(filters) == 0 {
		return Result{}, errors.New("biff: empty pipeline")
	}
	m := machine.New(machine.DefaultConfig(procs))
	os := chrysalis.New(m)
	rowNode := func(y int) int { return y % procs }
	rowWords := (src.W + 3) / 4

	img := src
	res := Result{Procs: procs}
	ucfg := us.DefaultConfig(procs)
	ucfg.ParallelAlloc = true
	_, err := us.Initialize(os, ucfg, func(w *us.Worker) {
		start := m.E.Now()
		for _, f := range filters {
			f := f
			in := img
			out := NewGray(in.W, in.H)
			bands := 2 * procs
			if bands > in.H {
				bands = in.H
			}
			stageStart := m.E.Now()
			w.U.GenOnIndex(w, bands, func(tw *us.Worker, band int) {
				lo := band * in.H / bands
				hi := (band + 1) * in.H / bands
				halo := f.Halo()
				// Copy the band plus halo rows into local memory.
				for y := lo - halo; y < hi+halo; y++ {
					if y < 0 || y >= in.H {
						continue
					}
					m.BlockCopy(tw.P, rowNode(y), tw.P.Node, rowWords)
				}
				// Compute.
				m.IntOps(tw.P, (hi-lo)*in.W*f.CostPerPixel())
				for y := lo; y < hi; y++ {
					for x := 0; x < in.W; x++ {
						out.Set(x, y, f.At(in, x, y))
					}
				}
				// Copy the result rows back to their home memories.
				for y := lo; y < hi; y++ {
					m.BlockCopy(tw.P, tw.P.Node, rowNode(y), rowWords)
				}
			})
			res.StageNs = append(res.StageNs, m.E.Now()-stageStart)
			img = out
		}
		res.ElapsedNs = m.E.Now() - start
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	res.Out = img
	return res, nil
}

// WorkstationIntOpNs models the departmental Sun workstation the vision
// group would otherwise use: a faster scalar processor (no parallelism).
const WorkstationIntOpNs = 250

// WorkstationNs estimates the same pipeline's time on the workstation.
func WorkstationNs(src *Gray, filters ...Filter) int64 {
	var ops int64
	for _, f := range filters {
		ops += int64(src.W) * int64(src.H) * int64(f.CostPerPixel())
	}
	return ops * WorkstationIntOpNs
}

// Equal compares two images.
func Equal(a, b *Gray) error {
	if a.W != b.W || a.H != b.H {
		return fmt.Errorf("biff: sizes differ: %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return fmt.Errorf("biff: pixel %d differs: %d vs %d", i, a.Pix[i], b.Pix[i])
		}
	}
	return nil
}
