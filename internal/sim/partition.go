package sim

// Partitioned conservative parallel-DES mode.
//
// EnablePartitions splits the engine's event queue into per-partition queues
// (one sched per partition, each mapping a disjoint set of machine nodes).
// Run then executes the simulation as a sequence of virtual-time windows:
//
//	W = [globalMin, globalMin + lookahead)
//
// where globalMin is the earliest pending event across all partitions. Every
// partition executes its own events inside the window concurrently — its
// processes run exactly as on the classic engine, as a chain of direct
// goroutine handoffs — and a partition that interacts with state owned by
// another partition does so only through Proc.Exchange, which parks the
// process until the window barrier. At the barrier the coordinator services
// all exchanges of the window in (issue time, process ID) order and resumes
// each requester no earlier than the window end.
//
// Why results are independent of the partition count:
//
//   - Window boundaries derive from global virtual time only. Events never
//     move backward across a barrier (everything dispatched in a window is
//     < windowEnd; everything scheduled after it is >= windowEnd), so the
//     sequence of windows is a pure function of the event timeline.
//   - Inside a window, partitions share no simulation state: the engine
//     panics on cross-node Unblock/Kill/Spawn, and the machine layer routes
//     every off-node reference through Exchange — including references that
//     happen to land in the caller's own partition, so the routing decision
//     never depends on the node-to-partition mapping.
//   - Exchanges are serviced in (issue time, process ID) order, both
//     P-independent, and completions are quantized to max(completion,
//     windowEnd), so the resume times cannot depend on which partition
//     drained first.
//
// A single-partition engine (EnablePartitions(1, ...)) therefore executes
// the identical event sequence as any multi-partition split of the same
// program, and serves as the sequential reference in tests.

import (
	"math"
	"runtime"
	"sort"
	"time"
)

// exchangeReq is one pending cross-partition operation: fn runs at the
// window barrier with the issue time and returns the completion time.
type exchangeReq struct {
	p  *Proc
	t  int64 // issue time (the process's flushed clock)
	fn func(issue int64) int64
}

// EnablePartitions switches the engine into windowed conservative-parallel
// mode with nparts partitions. partOf maps a process's node index to its
// partition in [0, nparts); it must be pure. Must be called on a fresh
// engine: before any Spawn and before Run. With nparts == 1 the engine runs
// the windowed scheme sequentially — the reference semantics every larger
// partition count must reproduce exactly.
func (e *Engine) EnablePartitions(nparts int, partOf func(node int) int) {
	if e.started {
		panic("sim: EnablePartitions after Run")
	}
	if len(e.procs) > 0 {
		panic("sim: EnablePartitions after Spawn")
	}
	if nparts < 1 {
		panic("sim: EnablePartitions needs at least one partition")
	}
	if partOf == nil {
		panic("sim: EnablePartitions with nil partOf")
	}
	e.windowed = true
	e.partOf = partOf
	e.drained = make(chan *sched, nparts)
	e.scheds = make([]*sched, nparts)
	for i := range e.scheds {
		e.scheds[i] = newSched(e, i)
	}
}

// Partitions returns the number of partitions, or 0 for a classic
// (non-windowed) engine.
func (e *Engine) Partitions() int {
	if !e.windowed {
		return 0
	}
	return len(e.scheds)
}

// SetBarrierHook installs fn to run at every window barrier, after the
// window's exchanges have been serviced, with the window's start time. The
// machine layer uses it for periodic calendar pruning, which must not race
// with in-window execution. Must be set before Run; nil removes it.
func (e *Engine) SetBarrierHook(fn func(windowStart int64)) { e.barrierHook = fn }

// Exchange issues a cross-partition operation: the calling process's local
// clock is flushed, the process parks, and fn runs at the end of the current
// window on the coordinator — where it may touch any partition's servers —
// returning the operation's completion time. The process resumes at that
// time or at the window boundary, whichever is later. Exchange panics on a
// non-partitioned engine.
func (p *Proc) Exchange(fn func(issue int64) int64) {
	p.mustBeRunning("Exchange")
	e := p.eng
	if !e.windowed {
		panic("sim: Exchange on a non-partitioned engine")
	}
	p.sync()
	s := p.sd
	s.stats.Exchanges++
	s.outbox = append(s.outbox, exchangeReq{p: p, t: s.now, fn: fn})
	p.state = stateBlocked
	p.blockedOn = "cross-partition exchange"
	s.blocked++
	if pr := e.probe; pr != nil {
		pr.ProcBlock(s.now, p.ID, p.blockedOn)
	}
	p.park()
}

// runWindows is the partitioned Run loop: the coordinator computes each
// window, lets active partitions execute it (concurrently when safe),
// services the window's exchanges at the barrier, and repeats until no
// events remain anywhere.
func (e *Engine) runWindows() {
	window := e.lookahead
	if window <= 0 {
		window = 1
	}
	// Concurrent execution needs >1 partition and real parallelism to win;
	// an attached probe forces sequential windows so the observed event
	// stream is deterministic. Sequential execution is semantically
	// identical — partitions are isolated within a window either way.
	concurrent := len(e.scheds) > 1 && e.probe == nil && runtime.GOMAXPROCS(0) > 1
	for {
		globalMin := int64(math.MaxInt64)
		for _, s := range e.scheds {
			if len(s.heap) > 0 && s.heap[0].at < globalMin {
				globalMin = s.heap[0].at
			}
		}
		if globalMin == math.MaxInt64 {
			// No pending event anywhere; outboxes were drained at the last
			// barrier, so the simulation is finished (or deadlocked).
			return
		}
		wEnd := globalMin + window
		active := e.activeScr[:0]
		for _, s := range e.scheds {
			if len(s.heap) > 0 && s.heap[0].at < wEnd {
				s.windowEnd = wEnd
				active = append(active, s)
			}
		}
		e.activeScr = active
		t0 := time.Now()
		if concurrent && len(active) > 1 {
			for _, s := range active {
				first := s.popNext()
				first.resume <- struct{}{}
			}
			for range active {
				s := <-e.drained
				s.drainedAt = int64(time.Since(t0))
			}
		} else {
			for _, s := range active {
				// Per-sched stopwatch: measuring from t0 would fold every
				// earlier partition's drain into this one's busy time.
				ds := time.Now()
				first := s.popNext()
				first.resume <- struct{}{}
				sd := <-e.drained
				sd.drainedAt = int64(time.Since(ds))
			}
		}
		execNs := int64(time.Since(t0))
		for _, s := range active {
			s.busyNs += s.drainedAt
			s.syncWaitNs += execNs - s.drainedAt
		}
		for _, s := range e.scheds {
			if len(s.heap) == 0 || s.heap[0].at >= wEnd {
				// Not active this window (or drained immediately): the
				// partition had nothing to execute here.
				if !containsSched(active, s) {
					s.idleNs += execNs
				}
			}
		}
		if e.interrupted.Load() {
			// Tear-down: in-window dispatch already killed everything it
			// touched; abandon exchange waiters like other blocked procs.
			return
		}
		e.serviceExchanges(wEnd)
		if e.barrierHook != nil {
			e.barrierHook(globalMin)
		}
		e.barrierNs += int64(time.Since(t0)) - execNs
		e.windows++
	}
}

func containsSched(ss []*sched, s *sched) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// serviceExchanges runs every exchange issued during the window, in (issue
// time, process ID) order — an ordering independent of the partition count —
// and reschedules each requester at max(completion, wEnd). The exchange
// functions execute on the coordinator while all partitions are quiescent,
// so they may touch any partition's calendars safely.
func (e *Engine) serviceExchanges(wEnd int64) {
	reqs := e.xscratch[:0]
	for _, s := range e.scheds {
		reqs = append(reqs, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	if len(reqs) > 1 {
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].t != reqs[j].t {
				return reqs[i].t < reqs[j].t
			}
			return reqs[i].p.ID < reqs[j].p.ID
		})
	}
	for i := range reqs {
		x := &reqs[i]
		c := x.fn(x.t)
		if c < wEnd {
			c = wEnd
		}
		s := x.p.sd
		s.blocked--
		x.p.blockedOn = ""
		if pr := e.probe; pr != nil {
			pr.ProcUnblock(c, x.p.ID)
		}
		s.schedule(x.p, c)
		x.fn = nil
		x.p = nil
	}
	e.xscratch = reqs[:0]
}

// PartitionTiming is the wall-clock execution profile of one partition
// across the whole run, for the -timing breakdown: Busy is time spent
// executing the partition's events, SyncWait time spent drained while
// sibling partitions finished their windows, Idle time spent in windows the
// partition had no events for.
type PartitionTiming struct {
	ID         int
	Events     uint64
	BusyNs     int64
	SyncWaitNs int64
	IdleNs     int64
}

// PartitionTimings returns the per-partition execution profile of a
// partitioned run (nil for a classic engine). Call after Run.
func (e *Engine) PartitionTimings() []PartitionTiming {
	if !e.windowed {
		return nil
	}
	out := make([]PartitionTiming, len(e.scheds))
	for i, s := range e.scheds {
		out[i] = PartitionTiming{
			ID:         s.id,
			Events:     s.stats.Events,
			BusyNs:     s.busyNs,
			SyncWaitNs: s.syncWaitNs,
			IdleNs:     s.idleNs,
		}
	}
	return out
}

// WindowStats reports how many synchronization windows a partitioned run
// executed and the total wall-clock time the coordinator spent in barriers
// (exchange service plus hooks). Zero for a classic engine.
func (e *Engine) WindowStats() (windows uint64, barrierNs int64) {
	return e.windows, e.barrierNs
}
