package sim

// Barrier is a reusable n-party barrier over the engine's wait queues: the
// last arriver wakes everyone and the barrier resets for the next round.
// (Scheduler-based, so waiting processes consume no simulated cycles —
// unlike the spin-lock barriers Uniform System programs had to use.)
type Barrier struct {
	n, arrived int
	wq         *WaitQueue
	rounds     uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{n: n, wq: NewWaitQueue(name)}
}

// Wait blocks p until all n parties have arrived. The caller's local clock
// is flushed on entry, so arrival order (and which party is last) reflects
// true local times.
func (b *Barrier) Wait(p *Proc) {
	p.mustBeRunning("Barrier.Wait")
	p.sync()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.rounds++
		b.wq.WakeAll(p.eng, 0)
		return
	}
	b.wq.Wait(p)
}

// Rounds reports how many times the barrier has opened.
func (b *Barrier) Rounds() uint64 { return b.rounds }
