package sim

// WaitQueue is a FIFO queue of blocked processes. It is the building block
// for every scheduler-based synchronization primitive in the Chrysalis layer
// (events, dual queues) and for the higher-level packages.
type WaitQueue struct {
	name  string
	procs []*Proc
}

// NewWaitQueue creates a named wait queue; the name appears in deadlock
// reports as the reason string for processes blocked on it.
func NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{name: name}
}

// Name returns the queue's name.
func (q *WaitQueue) Name() string { return q.name }

// Len returns the number of processes currently waiting.
func (q *WaitQueue) Len() int { return len(q.procs) }

// Wait blocks the calling process on the queue until some other process
// wakes it with WakeOne or WakeAll. The caller's local clock is flushed
// before it joins the queue, so FIFO order reflects true arrival times.
func (q *WaitQueue) Wait(p *Proc) {
	p.mustBeRunning("WaitQueue.Wait")
	p.sync()
	q.procs = append(q.procs, p)
	p.Block(q.name)
}

// WaitTimeout blocks the calling process on the queue for at most d
// nanoseconds of virtual time. It reports whether the wait timed out (true)
// rather than being woken (false). On timeout the process has already been
// removed from the queue.
func (q *WaitQueue) WaitTimeout(p *Proc, d int64) (timedOut bool) {
	p.mustBeRunning("WaitQueue.WaitTimeout")
	p.sync()
	q.procs = append(q.procs, p)
	if p.BlockTimeout(q.name, d) {
		q.Remove(p)
		return true
	}
	return false
}

// WakeOne unblocks the longest-waiting live process, if any, after delay
// nanoseconds of virtual time. Processes killed while waiting (their node
// failed) are discarded silently. It reports whether a process was woken.
// A running caller's local clock is flushed before the queue is examined.
func (q *WaitQueue) WakeOne(e *Engine, delay int64) bool {
	q.flushWaker(e)
	for len(q.procs) > 0 {
		p := q.procs[0]
		copy(q.procs, q.procs[1:])
		q.procs = q.procs[:len(q.procs)-1]
		if p.killed {
			continue
		}
		e.Unblock(p, delay)
		return true
	}
	return false
}

// WakeAll unblocks every live waiting process (in FIFO order, all at the same
// virtual instant plus delay), discarding killed waiters. It returns the
// number of processes woken. A running caller's local clock is flushed before
// the queue is examined.
func (q *WaitQueue) WakeAll(e *Engine, delay int64) int {
	q.flushWaker(e)
	n := 0
	for _, p := range q.procs {
		if p.killed {
			continue
		}
		e.Unblock(p, delay)
		n++
	}
	q.procs = q.procs[:0]
	return n
}

// flushWaker flushes the running caller's lazy clock before a wake operation
// examines the queue. On a classic engine the caller is the single running
// process. On a partitioned engine wakes are same-node by contract (see
// Engine.Unblock), so the caller is reached through the first waiter's
// partition; an empty queue needs no flush, since there is nobody to wake.
func (q *WaitQueue) flushWaker(e *Engine) {
	if !e.windowed {
		e.scheds[0].flushRunning()
		return
	}
	if len(q.procs) > 0 {
		q.procs[0].sd.flushRunning()
	}
}

// Remove deletes a specific process from the queue without waking it
// (used by primitives with cancellation semantics). It reports whether the
// process was present.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i, w := range q.procs {
		if w == p {
			q.procs = append(q.procs[:i], q.procs[i+1:]...)
			return true
		}
	}
	return false
}

// Time unit helpers. Virtual time is int64 nanoseconds; these constants make
// calibration tables readable.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)

// Seconds converts a virtual-time duration in nanoseconds to float seconds.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }

// Micros converts a virtual-time duration in nanoseconds to float microseconds.
func Micros(ns int64) float64 { return float64(ns) / 1e3 }

// Millis converts a virtual-time duration in nanoseconds to float milliseconds.
func Millis(ns int64) float64 { return float64(ns) / 1e6 }
