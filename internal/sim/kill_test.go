package sim

import "testing"

func TestKillRunnableProc(t *testing.T) {
	e := New()
	var reached bool
	victim := e.Spawn("victim", 1, func(p *Proc) {
		p.Advance(100)
		reached = true // must never run: the kill lands at t=50
	})
	e.Spawn("killer", 0, func(p *Proc) {
		p.Advance(50)
		e.Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Error("killed proc executed code past its kill point")
	}
	if !victim.Done() || !victim.Killed() {
		t.Errorf("victim Done=%v Killed=%v, want true/true", victim.Done(), victim.Killed())
	}
}

func TestKillBlockedProc(t *testing.T) {
	e := New()
	var woke bool
	victim := e.Spawn("victim", 1, func(p *Proc) {
		p.Block("forever")
		woke = true
	})
	e.Spawn("killer", 0, func(p *Proc) {
		p.Advance(10)
		e.Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke {
		t.Error("killed proc resumed past its block")
	}
	if !victim.Done() {
		t.Error("killed blocked proc never completed")
	}
}

func TestKillDiscardsUnflushedLocalClock(t *testing.T) {
	e := New()
	victim := e.Spawn("victim", 1, func(p *Proc) {
		p.Charge(1_000_000) // lazy: never synced before the kill
		p.Block("wait")
	})
	e.Spawn("killer", 0, func(p *Proc) {
		p.Advance(10)
		e.Kill(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Now(); got != 10 {
		t.Errorf("engine Now = %d, want 10 (victim's unflushed charge must be discarded)", got)
	}
}

func TestKillIsIdempotentAndIgnoresDone(t *testing.T) {
	e := New()
	done := e.Spawn("done", 0, func(p *Proc) { p.Advance(1) })
	victim := e.Spawn("victim", 1, func(p *Proc) { p.Block("forever") })
	e.Spawn("killer", 0, func(p *Proc) {
		p.Advance(5)
		e.Kill(done) // no-op: already finished
		e.Kill(victim)
		e.Kill(victim) // no-op: already killed
		e.Kill(nil)    // no-op
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done.Killed() {
		t.Error("Kill of a finished proc marked it killed")
	}
	if !victim.Done() || !victim.Killed() {
		t.Error("victim not terminated")
	}
}

func TestBlockTimeoutExpires(t *testing.T) {
	e := New()
	var timedOut bool
	var at int64
	e.Spawn("waiter", 0, func(p *Proc) {
		p.Advance(100)
		timedOut = p.BlockTimeout("nothing coming", 250)
		at = p.LocalNow()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Error("BlockTimeout with no Unblock must report timeout")
	}
	if at != 350 {
		t.Errorf("woke at %d, want 350", at)
	}
}

func TestBlockTimeoutWokenEarly(t *testing.T) {
	e := New()
	var timedOut bool
	var at int64
	waiter := e.Spawn("waiter", 0, func(p *Proc) {
		timedOut = p.BlockTimeout("waiting for poster", 1_000)
		at = p.LocalNow()
	})
	e.Spawn("poster", 1, func(p *Proc) {
		p.Advance(40)
		e.Unblock(waiter, 0)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if timedOut {
		t.Error("unblocked-before-deadline wait reported a timeout")
	}
	if at != 40 {
		t.Errorf("woke at %d, want 40", at)
	}
	if got := e.Now(); got >= 1_000 {
		t.Errorf("engine ran to %d: the expired deadline entry was not cancelled", got)
	}
}

// terminator is a Terminator-implementing panic value, standing in for
// fault.RefError / chrysalis.ThrowError without importing either.
type terminator struct{ msg string }

func (terminator) TerminatesProcess() bool { return true }

func TestTerminatorPanicCompletesProcess(t *testing.T) {
	e := New()
	var after bool
	p1 := e.Spawn("thrower", 0, func(p *Proc) {
		p.Advance(10)
		panic(terminator{"unhandled exception"})
	})
	e.Spawn("bystander", 1, func(p *Proc) {
		p.Advance(50)
		after = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v (a Terminator panic must kill only its process)", err)
	}
	if !p1.Done() {
		t.Error("thrower did not complete")
	}
	if tv, ok := p1.Fatal().(terminator); !ok || tv.msg != "unhandled exception" {
		t.Errorf("Fatal() = %#v, want the panic value", p1.Fatal())
	}
	if !after {
		t.Error("bystander was not scheduled after the terminator panic")
	}
}

func TestWaitQueueSkipsKilledWaiters(t *testing.T) {
	e := New()
	q := NewWaitQueue("test")
	var liveWoke bool
	dead := e.Spawn("dead", 1, func(p *Proc) { q.Wait(p) })
	e.Spawn("live", 2, func(p *Proc) {
		p.Advance(5)
		q.Wait(p)
		liveWoke = true
	})
	e.Spawn("driver", 0, func(p *Proc) {
		p.Advance(10)
		e.Kill(dead)
		p.Advance(10)
		q.WakeOne(e, 0) // must pass over the killed head and wake the live waiter
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !liveWoke {
		t.Error("WakeOne woke the killed waiter instead of the live one")
	}
}

func TestWaitTimeoutRemovesFromQueue(t *testing.T) {
	e := New()
	q := NewWaitQueue("test")
	e.Spawn("waiter", 0, func(p *Proc) {
		if !q.WaitTimeout(p, 100) {
			t.Error("WaitTimeout with no waker must time out")
		}
		if q.Len() != 0 {
			t.Errorf("timed-out waiter still queued (len=%d)", q.Len())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
