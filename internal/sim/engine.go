// Package sim provides a deterministic sequential discrete-event simulation
// engine. Simulated processes run as goroutines, but the engine resumes
// exactly one process at a time, in (virtual time, FIFO sequence) order, so a
// simulation is reproducible and free of data races by construction.
//
// The engine is the substrate for the Butterfly machine model: every higher
// layer (memory modules, the switching network, Chrysalis, the programming
// models, and the applications) charges virtual time through it. Virtual time
// is measured in integer nanoseconds.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// procState tracks the lifecycle of a simulated process.
type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

// ctrl messages flow from the running process back to the engine loop.
type ctrl int

const (
	ctrlYield ctrl = iota // process parked itself (scheduled or blocked)
	ctrlDone              // process function returned
)

// Proc is a simulated process (a coroutine under engine control). A Proc may
// only be manipulated from within the simulation: either by its own body
// function or by the body of another process that is currently running.
type Proc struct {
	// ID is a unique, small, dense identifier assigned at spawn time.
	ID int
	// Name identifies the process in traces and deadlock reports.
	Name string
	// Node is the machine node the process is bound to. The engine itself
	// does not interpret it; the machine layer does. It defaults to 0.
	Node int
	// Ctx is an arbitrary per-process context slot for higher layers.
	Ctx any

	eng        *Engine
	resume     chan struct{}
	pendingSeq uint64 // sequence of the single valid queued event for this proc
	state      procState
	blockedOn  string // reason string while blocked, for deadlock reports
	exited     bool   // set when terminated via Exit
	spawnedAt  int64
	finishedAt int64
}

// event is a scheduled resumption of a process.
type event struct {
	at  int64
	seq uint64
	p   *Proc
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// DeadlockError is returned by Run when no process is runnable but at least
// one process is blocked. It carries a human-readable report of every blocked
// process and what it is waiting for — the same information the Moviola tool
// visualizes for Figure 6 of the paper.
type DeadlockError struct {
	Now     int64
	Blocked []BlockedProc
}

// BlockedProc describes one blocked process inside a DeadlockError.
type BlockedProc struct {
	ID     int
	Name   string
	Node   int
	Reason string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("sim: deadlock at t=%dns; %d process(es) blocked:", e.Now, len(e.Blocked))
	for _, b := range e.Blocked {
		s += fmt.Sprintf("\n  proc %d %q (node %d) waiting on %s", b.ID, b.Name, b.Node, b.Reason)
	}
	return s
}

// Stats aggregates engine-level counters, useful for benchmarking the
// simulator itself and for sanity checks in tests.
type Stats struct {
	Events    uint64 // process resumptions executed
	Spawned   int    // processes ever created
	Completed int    // processes that ran to completion
}

// Engine is a sequential discrete-event simulator. The zero value is not
// usable; call New.
type Engine struct {
	now     int64
	seq     uint64
	queue   eventHeap
	control chan ctrl
	procs   []*Proc
	running *Proc
	live    int // processes spawned and not yet done
	blocked int // processes currently blocked
	stats   Stats

	// trace, when non-nil, receives a line for every state transition.
	trace func(string)
}

// New creates an empty simulation engine at virtual time zero.
func New() *Engine {
	return &Engine{control: make(chan ctrl)}
}

// SetTrace installs a trace sink (e.g. collecting into a slice in tests).
// Pass nil to disable tracing.
func (e *Engine) SetTrace(fn func(string)) { e.trace = fn }

func (e *Engine) tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(fmt.Sprintf("[%10d] ", e.now) + fmt.Sprintf(format, args...))
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Procs returns all processes ever spawned, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Running returns the currently executing process, or nil outside Run.
func (e *Engine) Running() *Proc { return e.running }

// Spawn creates a new simulated process bound to the given node and schedules
// it to start at the current virtual time. fn runs as the process body; when
// fn returns the process completes. Spawn may be called before Run or from
// inside a running process.
func (e *Engine) Spawn(name string, node int, fn func(p *Proc)) *Proc {
	p := &Proc{
		ID:        len(e.procs),
		Name:      name,
		Node:      node,
		eng:       e,
		resume:    make(chan struct{}),
		state:     stateNew,
		spawnedAt: e.now,
	}
	e.procs = append(e.procs, p)
	e.live++
	e.stats.Spawned++
	go func() {
		<-p.resume // wait for first dispatch
		// The completion notification is deferred so that it reaches the
		// engine even if fn terminates via runtime.Goexit (e.g. t.Fatal in
		// a test body) — otherwise the engine would wait forever.
		defer func() {
			p.state = stateDone
			p.finishedAt = e.now
			e.live--
			e.stats.Completed++
			e.tracef("proc %d %q done", p.ID, p.Name)
			e.control <- ctrlDone
		}()
		defer func() {
			if r := recover(); r != nil && r != errExit {
				panic(r) // real panic: propagate (crashes the test)
			}
		}()
		fn(p)
	}()
	e.schedule(p, e.now)
	e.tracef("spawn proc %d %q on node %d", p.ID, p.Name, node)
	return p
}

// errExit is the sentinel panic value used by Proc.Exit.
var errExit = new(int)

// schedule enqueues a resumption of p at time at and marks it ready.
func (e *Engine) schedule(p *Proc, at int64) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, p: p})
	p.pendingSeq = e.seq
	p.state = stateReady
}

// Run executes the simulation until no events remain. It returns nil on a
// clean finish (all processes completed) and a *DeadlockError if processes
// remain blocked with nothing runnable. Run must be called exactly once.
func (e *Engine) Run() error {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		if ev.p.state != stateReady || ev.p.pendingSeq != ev.seq {
			// Stale entry (process was rescheduled); skip.
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.stats.Events++
		e.running = ev.p
		ev.p.state = stateRunning
		ev.p.resume <- struct{}{}
		<-e.control
		e.running = nil
	}
	if e.live > 0 {
		// Everything left alive is blocked: deadlock.
		de := &DeadlockError{Now: e.now}
		for _, p := range e.procs {
			if p.state == stateBlocked {
				de.Blocked = append(de.Blocked, BlockedProc{ID: p.ID, Name: p.Name, Node: p.Node, Reason: p.blockedOn})
			}
		}
		sort.Slice(de.Blocked, func(i, j int) bool { return de.Blocked[i].ID < de.Blocked[j].ID })
		return de
	}
	return nil
}

// park hands control back to the engine loop and waits to be resumed.
func (p *Proc) park() {
	p.eng.control <- ctrlYield
	<-p.resume
	p.state = stateRunning
}

// mustBeRunning panics unless p is the currently executing process. All
// time-consuming operations must be issued by the running process itself.
func (p *Proc) mustBeRunning(op string) {
	if p.eng.running != p {
		panic(fmt.Sprintf("sim: %s called on proc %d %q which is not the running process", op, p.ID, p.Name))
	}
}

// Advance charges d nanoseconds of virtual time to the calling process: the
// process is suspended and resumes once the clock has advanced past all other
// work scheduled in the interim. d must be >= 0.
func (p *Proc) Advance(d int64) {
	p.mustBeRunning("Advance")
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	p.eng.schedule(p, p.eng.now+d)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// process scheduled for the same instant run first.
func (p *Proc) Yield() { p.Advance(0) }

// Block suspends the calling process indefinitely; some other process must
// call Unblock to resume it. reason appears in deadlock reports.
func (p *Proc) Block(reason string) {
	p.mustBeRunning("Block")
	p.state = stateBlocked
	p.blockedOn = reason
	p.eng.blocked++
	p.eng.tracef("proc %d %q blocks on %s", p.ID, p.Name, reason)
	p.park()
}

// Unblock makes a blocked process runnable again at the current virtual time
// (plus delay nanoseconds). It must be called from the running process or
// from engine setup, never on a process that is not blocked.
func (e *Engine) Unblock(p *Proc, delay int64) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: Unblock of proc %d %q in state %v", p.ID, p.Name, p.state))
	}
	e.blocked--
	p.blockedOn = ""
	e.schedule(p, e.now+delay)
	e.tracef("proc %d %q unblocked", p.ID, p.Name)
}

// Exit terminates the calling process immediately, as if its body function
// had returned.
func (p *Proc) Exit() {
	p.mustBeRunning("Exit")
	p.exited = true
	panic(errExit)
}

// Blocked reports whether the process is currently blocked.
func (p *Proc) Blocked() bool { return p.state == stateBlocked }

// Done reports whether the process has completed.
func (p *Proc) Done() bool { return p.state == stateDone }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Lifetime returns the spawn and finish times of the process; finish is -1
// if the process has not completed.
func (p *Proc) Lifetime() (spawned, finished int64) {
	if p.state != stateDone {
		return p.spawnedAt, -1
	}
	return p.spawnedAt, p.finishedAt
}

// String implements fmt.Stringer for debugging.
func (p *Proc) String() string {
	return fmt.Sprintf("proc %d %q node %d (%s)", p.ID, p.Name, p.Node, p.state)
}
