// Package sim provides a deterministic discrete-event simulation engine.
// Simulated processes run as goroutines, but the engine resumes exactly one
// process at a time per partition, in (virtual time, FIFO sequence) order, so
// a simulation is reproducible and free of data races by construction.
//
// The engine is the substrate for the Butterfly machine model: every higher
// layer (memory modules, the switching network, Chrysalis, the programming
// models, and the applications) charges virtual time through it. Virtual time
// is measured in integer nanoseconds.
//
// Time is charged through a two-tier API. Proc.Charge accumulates virtual
// time in a per-process local clock without suspending the goroutine; the
// park-based Proc.Advance (and the implicit flushes at every synchronization
// point: Block, Unblock, Yield, spawn, exit, wait-queue and barrier
// operations) folds the local clock back into the shared event queue. A
// process's local clock is therefore invisible to other processes: at every
// point where cross-process effects can be observed, the clock has been
// flushed and event ordering is identical to charging eagerly.
//
// By default the engine is strictly sequential. EnablePartitions switches it
// into windowed conservative-parallel mode (see partition.go): the event
// queue splits into per-partition queues that execute concurrently within
// lookahead-sized virtual-time windows and exchange cross-partition work only
// at window boundaries.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"butterfly/internal/probe"
)

// procState tracks the lifecycle of a simulated process.
type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

// Proc is a simulated process (a coroutine under engine control). A Proc may
// only be manipulated from within the simulation: either by its own body
// function or by the body of another process that is currently running.
type Proc struct {
	// ID is a unique, small, dense identifier assigned at spawn time.
	ID int
	// Name identifies the process in traces and deadlock reports.
	Name string
	// Node is the machine node the process is bound to. The engine itself
	// does not interpret it except to map the process to a partition; the
	// machine layer does. It defaults to 0.
	Node int
	// Ctx is an arbitrary per-process context slot for higher layers.
	Ctx any

	eng        *Engine
	sd         *sched // the partition scheduler that owns this process
	resume     chan struct{}
	state      procState
	blockedOn  string // reason string while blocked, for deadlock reports
	exited     bool   // set when terminated via Exit or Kill
	killed     bool   // terminated from outside via Engine.Kill (node failure)
	finishing  bool   // body has returned; the completion handler is running
	timedWait  bool   // parked on a timeout event while logically waiting on a queue
	fatal      any    // Terminator panic value that ended the process, if any
	spawnedAt  int64
	finishedAt int64

	// local is the lazily accumulated virtual time charged via Charge and
	// not yet flushed into the event queue.
	local int64

	// Probe bookkeeping, maintained only while a probe is attached:
	// dispatchedAt is when the current run slice began, parkedAt when the
	// process last suspended, parkedBlocked whether that suspension was a
	// Block (vs a scheduled park).
	dispatchedAt  int64
	parkedAt      int64
	parkedBlocked bool

	// Heap bookkeeping: at/seq order the pending resumption, heapIdx is the
	// process's slot in its partition's event heap (-1 when not queued). A
	// process has at most one pending event, so the heap needs no stale
	// entries and entries can be updated in place.
	at      int64
	seq     uint64
	heapIdx int
}

// DeadlockError is returned by Run when no process is runnable but at least
// one process is blocked. It carries a human-readable report of every blocked
// process and what it is waiting for — the same information the Moviola tool
// visualizes for Figure 6 of the paper.
type DeadlockError struct {
	Now     int64
	Blocked []BlockedProc
}

// BlockedProc describes one blocked process inside a DeadlockError.
type BlockedProc struct {
	ID     int
	Name   string
	Node   int
	Reason string
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	s := fmt.Sprintf("sim: deadlock at t=%dns; %d process(es) blocked:", e.Now, len(e.Blocked))
	for _, b := range e.Blocked {
		s += fmt.Sprintf("\n  proc %d %q (node %d) waiting on %s", b.ID, b.Name, b.Node, b.Reason)
	}
	return s
}

// Stats aggregates engine-level counters, useful for benchmarking the
// simulator itself and for sanity checks in tests. In partitioned mode the
// counters are summed across partitions.
type Stats struct {
	Events       uint64 // process resumptions executed
	Spawned      int    // processes ever created
	Completed    int    // processes that ran to completion
	Charges      uint64 // Charge calls (lazy, no park)
	Parks        uint64 // process suspensions (incl. same-proc fast path)
	LazyFlushes  uint64 // local-clock flushes (park at accumulated time)
	Exchanges    uint64 // cross-partition exchanges serviced at window barriers
	MaxHeapDepth int    // high-water mark of the pending-event heap(s)
}

// DefaultLookahead is the default bound on how much virtual time a process
// may accumulate locally before Charge forces a flush. Sync points flush
// regardless, so the threshold only limits long runs of pure computation.
// In partitioned mode it is also the width of the synchronization window.
const DefaultLookahead = 250 * Microsecond

// sched is the event queue and clock of one partition. A classic engine has
// exactly one; a partitioned engine has one per partition, each driven by its
// own goroutine chain inside a window while the coordinator waits. All fields
// are owned by whichever goroutine currently runs the partition — ownership
// transfers through the drained/resume channels, which provide the needed
// happens-before edges.
type sched struct {
	eng     *Engine
	id      int
	now     int64
	seq     uint64
	heap    []*Proc // indexed min-heap by (at, seq); one entry per ready proc
	running *Proc
	live    int // processes spawned into this partition and not yet done
	blocked int // processes currently blocked
	stats   Stats

	// windowEnd bounds dispatch in partitioned mode: events at or after it
	// stay queued until the next window. Classic mode leaves it at MaxInt64.
	windowEnd int64
	// outbox collects cross-partition exchanges issued during the current
	// window, serviced by the coordinator at the barrier.
	outbox []exchangeReq

	// Wall-clock accounting for the per-partition timing breakdown:
	// busyNs is time spent executing window events, syncWaitNs time spent
	// drained while sibling partitions finish their window, idleNs time
	// spent with no events inside the window at all.
	busyNs     int64
	syncWaitNs int64
	idleNs     int64
	drainedAt  int64 // scratch: wall nanos when this sched drained (per window)
}

func newSched(e *Engine, id int) *sched {
	return &sched{eng: e, id: id, windowEnd: math.MaxInt64}
}

// flushRunning flushes the partition's running process's lazy clock, if any.
func (s *sched) flushRunning() {
	if r := s.running; r != nil && r.local > 0 {
		r.sync()
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New. By default it is strictly sequential; see EnablePartitions.
type Engine struct {
	scheds    []*sched
	done      chan struct{}
	procs     []*Proc
	lookahead int64
	started   bool

	// Partitioned-mode state (see partition.go). windowed is set by
	// EnablePartitions; partOf maps a node index to a partition index;
	// drained carries each partition's end-of-window notification to the
	// coordinator; barrierHook, when non-nil, runs at every window barrier.
	windowed    bool
	partOf      func(node int) int
	drained     chan *sched
	barrierHook func(windowStart int64)
	xscratch    []exchangeReq
	activeScr   []*sched
	windows     uint64
	barrierNs   int64

	// probe, when non-nil, receives a typed event for every state
	// transition (see internal/probe). Probes are purely observational; a
	// nil probe costs the hot paths one pointer check. An attached probe
	// forces partitioned windows to execute sequentially so the event
	// stream stays deterministic.
	probe *probe.Probe

	// interrupted is the only piece of engine state that may be touched
	// from outside the simulation's goroutine chain: an external watchdog
	// (job timeout, cancellation) sets it, and the dispatcher checks it at
	// every dispatch point.
	interrupted atomic.Bool

	// trapPanics converts a real panic in a process body into a run error
	// (see TrapPanics); trapped holds that error until Run returns it.
	// trapMu guards trapped: partitions may panic concurrently.
	trapPanics bool
	trapMu     sync.Mutex
	trapped    error
}

// New creates an empty simulation engine at virtual time zero.
func New() *Engine {
	e := &Engine{done: make(chan struct{}, 1), lookahead: DefaultLookahead}
	e.scheds = []*sched{newSched(e, 0)}
	return e
}

// SetProbe attaches an observability probe (nil detaches). Attach before
// Run: events for processes spawned earlier carry partial histories. The
// probe replaces the former string-callback trace hook with typed events.
func (e *Engine) SetProbe(p *probe.Probe) { e.probe = p }

// Probe returns the attached probe, or nil.
func (e *Engine) Probe() *probe.Probe { return e.probe }

// Now returns the current virtual time in nanoseconds. A process that has
// charged time lazily since its last synchronization point is logically ahead
// of this clock; see Proc.LocalNow. On a partitioned engine the partitions'
// clocks advance independently inside a window, so Now reports the furthest
// one; call it only from outside the run (it is exact once Run returns, and
// process bodies should use Proc.Now instead).
func (e *Engine) Now() int64 {
	if len(e.scheds) == 1 {
		return e.scheds[0].now
	}
	var mx int64
	for _, s := range e.scheds {
		if s.now > mx {
			mx = s.now
		}
	}
	return mx
}

// Now returns the current virtual time of the process's partition. For a
// classic engine this equals Engine.Now. Unlike Engine.Now it is always safe
// to call from a running process body.
func (p *Proc) Now() int64 { return p.sd.now }

// SetLookahead bounds how much virtual time a process may accumulate via
// Charge before being flushed through the event queue, and — on a partitioned
// engine — sets the width of the synchronization window. Values <= 0 make
// every Charge flush immediately (eager charging, useful to bisect
// equivalence issues). The default is DefaultLookahead.
func (e *Engine) SetLookahead(d int64) { e.lookahead = d }

// Lookahead returns the current lookahead threshold.
func (e *Engine) Lookahead() int64 { return e.lookahead }

// Stats returns a copy of the engine counters, summed across partitions.
func (e *Engine) Stats() Stats {
	if len(e.scheds) == 1 {
		return e.scheds[0].stats
	}
	var t Stats
	for _, s := range e.scheds {
		t.Events += s.stats.Events
		t.Spawned += s.stats.Spawned
		t.Completed += s.stats.Completed
		t.Charges += s.stats.Charges
		t.Parks += s.stats.Parks
		t.LazyFlushes += s.stats.LazyFlushes
		t.Exchanges += s.stats.Exchanges
		if s.stats.MaxHeapDepth > t.MaxHeapDepth {
			t.MaxHeapDepth = s.stats.MaxHeapDepth
		}
	}
	return t
}

// Procs returns all processes ever spawned, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// Running returns the currently executing process, or nil outside Run. On a
// partitioned engine it is meaningful only while windows run sequentially
// (probe attached or single partition); prefer per-process context.
func (e *Engine) Running() *Proc {
	for _, s := range e.scheds {
		if r := s.running; r != nil {
			return r
		}
	}
	return nil
}

// Spawn creates a new simulated process bound to the given node and schedules
// it to start at the current virtual time. fn runs as the process body; when
// fn returns the process completes. Spawn may be called before Run or from
// inside a running process. A running caller's local clock is flushed first,
// so the child starts at the caller's true current time.
//
// On a partitioned engine all processes must be spawned before Run: the
// process population is part of the static partitioning, so mid-run spawns
// panic.
func (e *Engine) Spawn(name string, node int, fn func(p *Proc)) *Proc {
	var s *sched
	if e.windowed {
		if e.started {
			panic("sim: Spawn during a partitioned run (spawn all processes before Run)")
		}
		s = e.scheds[e.partOf(node)]
	} else {
		s = e.scheds[0]
		s.flushRunning()
	}
	p := &Proc{
		ID:        len(e.procs),
		Name:      name,
		Node:      node,
		eng:       e,
		sd:        s,
		resume:    make(chan struct{}, 1),
		state:     stateNew,
		spawnedAt: s.now,
		heapIdx:   -1,
	}
	e.procs = append(e.procs, p)
	s.live++
	s.stats.Spawned++
	go func() {
		<-p.resume // wait for first dispatch
		// The completion notification is deferred so that the simulation
		// continues even if fn terminates via runtime.Goexit (e.g. t.Fatal
		// in a test body) — otherwise the engine would wait forever.
		defer func() {
			p.finishing = true
			if p.local > 0 {
				if p.killed {
					p.local = 0 // a killed process's unflushed time never happened
				} else {
					p.sync() // complete at the process's true local time
				}
			}
			p.state = stateDone
			p.finishedAt = s.now
			s.live--
			s.stats.Completed++
			if pr := e.probe; pr != nil {
				pr.ProcRun(p.dispatchedAt, s.now-p.dispatchedAt, p.ID)
				pr.ProcDone(s.now, p.ID)
			}
			// Hand control to the next scheduled process directly; this
			// goroutine is finished and never parks again.
			if next := s.popNext(); next != nil {
				next.resume <- struct{}{}
			} else {
				s.suspend()
			}
		}()
		defer func() {
			r := recover()
			if r == nil || r == errExit {
				return
			}
			if t, ok := r.(Terminator); ok && t.TerminatesProcess() {
				// An unhandled process-fatal condition (a Chrysalis throw
				// with no enclosing catch, an uncaught hardware fault):
				// only the raising process dies, not the simulation.
				p.exited = true
				p.fatal = r
				return
			}
			if e.trapPanics {
				// Trapped mode (a service hosting the simulation): the run
				// aborts with an error naming the panic instead of taking
				// the host process down with it.
				e.trapMu.Lock()
				if e.trapped == nil {
					e.trapped = fmt.Errorf("sim: process %d (%s) on node %d panicked: %v", p.ID, p.Name, p.Node, r)
				}
				e.trapMu.Unlock()
				e.Interrupt()
				p.exited = true
				p.fatal = r
				return
			}
			panic(r) // real panic: propagate (crashes the test)
		}()
		if !p.killed {
			fn(p)
		}
	}()
	s.schedule(p, s.now)
	if pr := e.probe; pr != nil {
		p.parkedAt = s.now
		pr.ProcSpawn(s.now, p.ID, node, p.Name)
	}
	return p
}

// errExit is the sentinel panic value used by Proc.Exit.
var errExit = new(int)

// IsExitPanic reports whether a recovered panic value is the engine's
// process-exit sentinel — a Proc.Exit or a kill unwinding the process.
// Coroutine schedulers that run process code on auxiliary goroutines
// (antfarm threads) use it to recognize the unwind and forward it to the
// process's root goroutine, where the engine's recovery handler runs.
func IsExitPanic(r any) bool { return r == errExit }

// Terminator is implemented by panic values that terminate only the raising
// process rather than the whole simulation — the software analogue of a
// hardware trap delivered to one processor. chrysalis.ThrowError and
// fault.RefError implement it; the spawn wrapper recovers such values and
// completes the process (recording the value, retrievable via Proc.Fatal)
// instead of crashing the run.
type Terminator interface {
	TerminatesProcess() bool
}

// schedule enqueues a resumption of p at time at and marks it ready.
func (s *sched) schedule(p *Proc, at int64) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	p.at, p.seq = at, s.seq
	p.state = stateReady
	if p.heapIdx < 0 {
		p.heapIdx = len(s.heap)
		s.heap = append(s.heap, p)
		s.siftUp(p.heapIdx)
		if n := len(s.heap); n > s.stats.MaxHeapDepth {
			s.stats.MaxHeapDepth = n
		}
	} else if !s.siftUp(p.heapIdx) {
		s.siftDown(p.heapIdx)
	}
}

// eventLess orders pending resumptions by (time, FIFO sequence).
func eventLess(a, b *Proc) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property upward from slot i and reports whether
// the entry moved.
func (s *sched) siftUp(i int) bool {
	h := s.heap
	p := h[i]
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		q := h[parent]
		if !eventLess(p, q) {
			break
		}
		h[i] = q
		q.heapIdx = i
		i = parent
		moved = true
	}
	h[i] = p
	p.heapIdx = i
	return moved
}

// siftDown restores the heap property downward from slot i.
func (s *sched) siftDown(i int) {
	h := s.heap
	n := len(h)
	p := h[i]
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && eventLess(h[r], h[kid]) {
			kid = r
		}
		if !eventLess(h[kid], p) {
			break
		}
		h[i] = h[kid]
		h[i].heapIdx = i
		i = kid
	}
	h[i] = p
	p.heapIdx = i
}

// popNext removes the earliest pending event within the current window,
// advances the partition clock to it, and returns its process marked running.
// It returns nil if no dispatchable event is pending.
func (s *sched) popNext() *Proc {
	n := len(s.heap)
	if n == 0 || s.heap[0].at >= s.windowEnd {
		s.running = nil
		return nil
	}
	p := s.heap[0]
	n--
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if n > 0 {
		s.heap[0] = last
		last.heapIdx = 0
		s.siftDown(0)
	}
	p.heapIdx = -1
	if p.at > s.now {
		s.now = p.at
	}
	if s.eng.interrupted.Load() {
		// The run is being torn down: every process dies at its dispatch
		// point (the same unwind path Kill uses), so the event chain drains
		// instead of executing further user code.
		p.killed = true
		p.exited = true
	}
	s.stats.Events++
	s.running = p
	p.state = stateRunning
	if pr := s.eng.probe; pr != nil {
		pr.ProcDispatch(s.now, p.ID, s.now-p.parkedAt, p.parkedBlocked)
		p.dispatchedAt = s.now
		p.parkedBlocked = false
	}
	return p
}

// suspend returns control to Run when the partition has no dispatchable
// event left: the classic engine is simply finished; a partitioned one
// notifies the coordinator that this partition drained its window.
func (s *sched) suspend() {
	if s.eng.windowed {
		s.eng.drained <- s
	} else {
		s.eng.done <- struct{}{}
	}
}

// Run executes the simulation until no events remain. It returns nil on a
// clean finish (all processes completed) and a *DeadlockError if processes
// remain blocked with nothing runnable. Run must be called exactly once;
// a second call panics.
func (e *Engine) Run() error {
	if e.started {
		panic("sim: Engine.Run called more than once")
	}
	e.started = true
	if e.windowed {
		e.runWindows()
	} else {
		// Dispatch is a chain of direct goroutine-to-goroutine handoffs: each
		// parking process resumes the next scheduled one itself, and control
		// returns here only when the event queue is empty.
		s := e.scheds[0]
		if first := s.popNext(); first != nil {
			first.resume <- struct{}{}
			<-e.done
		}
	}
	e.trapMu.Lock()
	trapped := e.trapped
	e.trapMu.Unlock()
	if trapped != nil {
		return trapped
	}
	live := 0
	for _, s := range e.scheds {
		live += s.live
	}
	if e.interrupted.Load() {
		return &InterruptError{Now: e.Now(), Live: live}
	}
	if live > 0 {
		// Everything left alive is blocked: deadlock.
		de := &DeadlockError{Now: e.Now()}
		for _, p := range e.procs {
			if p.state == stateBlocked {
				de.Blocked = append(de.Blocked, BlockedProc{ID: p.ID, Name: p.Name, Node: p.Node, Reason: p.blockedOn})
			}
		}
		sort.Slice(de.Blocked, func(i, j int) bool { return de.Blocked[i].ID < de.Blocked[j].ID })
		return de
	}
	return nil
}

// park suspends the calling process and transfers control to the next
// scheduled event. If that event is the caller's own (the common case on an
// uncontended timeline), the clock advances in place with no goroutine
// switch at all.
func (p *Proc) park() {
	s := p.sd
	s.stats.Parks++
	if pr := s.eng.probe; pr != nil {
		pr.ProcRun(p.dispatchedAt, s.now-p.dispatchedAt, p.ID)
		p.parkedAt = s.now
		p.parkedBlocked = p.state == stateBlocked
	}
	next := s.popNext()
	if next == p {
		if p.killed && !p.finishing {
			panic(errExit) // killed while parked: die at the resumption point
		}
		return // own event is next: no context switch needed
	}
	if next != nil {
		next.resume <- struct{}{}
	} else {
		s.suspend()
	}
	<-p.resume
	if p.killed && !p.finishing {
		panic(errExit) // killed while parked: die at the resumption point
	}
}

// mustBeRunning panics unless p is the currently executing process of its
// partition. All time-consuming operations must be issued by the running
// process itself.
func (p *Proc) mustBeRunning(op string) {
	if p.sd.running != p {
		panic(fmt.Sprintf("sim: %s called on proc %d %q which is not the running process", op, p.ID, p.Name))
	}
}

// Charge lazily adds d nanoseconds of virtual time to the calling process's
// local clock without suspending it. The charge becomes visible to other
// processes at the next synchronization point (Advance, Sync, Block, queue
// and barrier operations, exit), or immediately once the accumulated slice
// reaches the engine's lookahead threshold. d must be >= 0.
func (p *Proc) Charge(d int64) {
	p.mustBeRunning("Charge")
	if d < 0 {
		panic("sim: Charge with negative duration")
	}
	p.local += d
	p.sd.stats.Charges++
	if p.local >= p.eng.lookahead {
		p.sync()
	}
}

// Sync flushes the calling process's local clock: if any lazily charged time
// is pending, the process reschedules at its true local time and parks until
// the shared clock catches up. It is a no-op when nothing is pending. Every
// operation that observes or mutates cross-process state must Sync first;
// the primitives in this package and the machine layer do so automatically.
func (p *Proc) Sync() {
	p.mustBeRunning("Sync")
	p.sync()
}

func (p *Proc) sync() {
	if p.local == 0 {
		return
	}
	s := p.sd
	d := p.local
	p.local = 0
	s.stats.LazyFlushes++
	if pr := s.eng.probe; pr != nil {
		pr.ProcFlush(s.now, p.ID, d)
	}
	s.schedule(p, s.now+d)
	p.park()
}

// LocalNow returns the calling process's view of the current virtual time:
// its partition's shared clock plus any lazily charged local time.
func (p *Proc) LocalNow() int64 { return p.sd.now + p.local }

// Advance charges d nanoseconds of virtual time to the calling process: the
// process is suspended and resumes once the clock has advanced past all other
// work scheduled in the interim. Any lazily charged local time is flushed
// first. d must be >= 0.
func (p *Proc) Advance(d int64) {
	p.mustBeRunning("Advance")
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	p.sync()
	p.sd.schedule(p, p.sd.now+d)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// process scheduled for the same instant run first.
func (p *Proc) Yield() { p.Advance(0) }

// Block suspends the calling process indefinitely; some other process must
// call Unblock to resume it. reason appears in deadlock reports. The local
// clock is flushed first, so the process blocks at its true local time.
func (p *Proc) Block(reason string) {
	p.mustBeRunning("Block")
	p.sync()
	p.state = stateBlocked
	p.blockedOn = reason
	p.sd.blocked++
	if pr := p.eng.probe; pr != nil {
		pr.ProcBlock(p.sd.now, p.ID, reason)
	}
	p.park()
}

// Unblock makes a blocked process runnable again at the current virtual time
// (plus delay nanoseconds). It must be called from the running process or
// from engine setup, never on a process that is not blocked. A running
// caller's local clock is flushed first, so the wake happens at the caller's
// true current time.
//
// During a partitioned run the caller must be a process on the same node as
// p: waking across nodes would couple partitions mid-window. The partitioned
// programming model routes all cross-node interaction through the machine
// layer's exchange operations instead.
func (e *Engine) Unblock(p *Proc, delay int64) {
	s := p.sd
	if e.windowed && e.started {
		r := s.running
		if r == nil || r.Node != p.Node {
			panic(fmt.Sprintf("sim: Unblock of proc %d %q (node %d) from another node during a partitioned run", p.ID, p.Name, p.Node))
		}
	}
	s.flushRunning()
	if p.timedWait {
		// The process is waiting with a timeout: it is stateReady with a
		// pending timeout event in the heap, not stateBlocked. Clearing
		// timedWait before the event fires is what signals "woken, not
		// timed out" to BlockTimeout; rescheduling moves the wake earlier.
		p.timedWait = false
		p.blockedOn = ""
		s.schedule(p, s.now+delay)
		if pr := e.probe; pr != nil {
			pr.ProcUnblock(s.now, p.ID)
		}
		return
	}
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: Unblock of proc %d %q in state %v", p.ID, p.Name, p.state))
	}
	s.blocked--
	p.blockedOn = ""
	s.schedule(p, s.now+delay)
	if pr := e.probe; pr != nil {
		pr.ProcUnblock(s.now, p.ID)
	}
}

// Exit terminates the calling process immediately, as if its body function
// had returned.
func (p *Proc) Exit() {
	p.mustBeRunning("Exit")
	p.exited = true
	panic(errExit)
}

// InterruptError is returned by Run when the simulation was stopped early via
// Interrupt (a job timeout or cancellation, not anything the simulated
// machine did). Live counts the processes that had not completed when the
// event chain drained — blocked processes are abandoned, their goroutines
// parked forever, so an interrupted engine must simply be dropped.
type InterruptError struct {
	Now  int64
	Live int
}

// Error implements the error interface.
func (e *InterruptError) Error() string {
	return fmt.Sprintf("sim: run interrupted at t=%dns (%d process(es) abandoned)", e.Now, e.Live)
}

// Interrupt requests that the simulation stop at the next dispatch point.
// It is the one engine entry point that is safe to call from any OS thread
// at any time: an external watchdog uses it to bound a job's wall-clock
// time or to cancel it. Every process subsequently dispatched dies
// immediately (via the Kill unwind path) so the pending-event chain drains
// quickly; Run then returns an *InterruptError. Interrupting an engine that
// has already finished is a no-op.
func (e *Engine) Interrupt() { e.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (e *Engine) Interrupted() bool { return e.interrupted.Load() }

// TrapPanics switches the engine into trapped mode: a real panic in a
// process body (not a Terminator, not Exit) aborts the run and surfaces
// from Run as an error naming the process and panic value, instead of
// propagating and crashing the host. Services that execute
// externally-supplied specs (the lab scheduler) enable this; tests and the
// CLI keep the default crash-loud behaviour. Must be called before Run.
func (e *Engine) TrapPanics() { e.trapPanics = true }

// Kill terminates another process from outside, modelling a node failure: the
// victim never runs user code again. A blocked or waiting victim is
// rescheduled at the current time so its goroutine unwinds promptly (its park
// panics the exit sentinel at the resumption point); a ready victim dies at
// its next dispatch. Any lazily charged local time the victim has accumulated
// is discarded — a killed process's unflushed work never happened. Killing
// the running process is not allowed (use Exit); killing a completed or
// already killed process is a no-op. Kill is not available during a
// partitioned run (fault injection requires the classic engine).
func (e *Engine) Kill(p *Proc) {
	if p == nil || p.state == stateDone || p.killed {
		return
	}
	if e.windowed && e.started {
		panic("sim: Kill during a partitioned run (fault injection requires the classic engine)")
	}
	s := p.sd
	if p == s.running {
		panic(fmt.Sprintf("sim: Kill of running proc %d %q (use Exit)", p.ID, p.Name))
	}
	s.flushRunning()
	p.killed = true
	p.exited = true
	if p.state == stateBlocked {
		s.blocked--
	}
	p.blockedOn = ""
	p.timedWait = false
	s.schedule(p, s.now)
}

// BlockTimeout suspends the calling process until either Unblock is called on
// it or d nanoseconds of virtual time elapse, whichever comes first. It
// returns true if the wait timed out. Unlike Block, the process stays in the
// event heap (with a pending timeout event), so a forgotten waiter can never
// deadlock the simulation. reason appears in probe traces. d must be >= 0.
func (p *Proc) BlockTimeout(reason string, d int64) (timedOut bool) {
	p.mustBeRunning("BlockTimeout")
	if d < 0 {
		panic("sim: BlockTimeout with negative duration")
	}
	s := p.sd
	p.sync()
	p.timedWait = true
	p.blockedOn = reason
	if pr := s.eng.probe; pr != nil {
		pr.ProcBlock(s.now, p.ID, reason)
	}
	s.schedule(p, s.now+d)
	p.park()
	timedOut = p.timedWait
	p.timedWait = false
	p.blockedOn = ""
	return timedOut
}

// Blocked reports whether the process is currently blocked.
func (p *Proc) Blocked() bool { return p.state == stateBlocked }

// Done reports whether the process has completed.
func (p *Proc) Done() bool { return p.state == stateDone }

// Killed reports whether the process was terminated from outside via
// Engine.Kill (a node failure). Wait queues use this to skip dead waiters.
func (p *Proc) Killed() bool { return p.killed }

// Fatal returns the Terminator panic value that ended the process (an
// uncaught throw or hardware fault), or nil if it exited normally.
func (p *Proc) Fatal() any { return p.fatal }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Lifetime returns the spawn and finish times of the process; finish is -1
// if the process has not completed.
func (p *Proc) Lifetime() (spawned, finished int64) {
	if p.state != stateDone {
		return p.spawnedAt, -1
	}
	return p.spawnedAt, p.finishedAt
}

// String implements fmt.Stringer for debugging.
func (p *Proc) String() string {
	return fmt.Sprintf("proc %d %q node %d (%s)", p.ID, p.Name, p.Node, p.state)
}
