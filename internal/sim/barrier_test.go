package sim

import (
	"testing"
)

func TestBarrierSynchronizes(t *testing.T) {
	e := New()
	b := NewBarrier("test", 4)
	var after []int64
	for i := 0; i < 4; i++ {
		d := int64((i + 1) * 100)
		e.Spawn("p", i, func(p *Proc) {
			p.Advance(d)
			b.Wait(p)
			after = append(after, e.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range after {
		if ts != 400 {
			t.Errorf("proc passed barrier at %d, want 400 (last arriver)", ts)
		}
	}
	if b.Rounds() != 1 {
		t.Errorf("rounds = %d", b.Rounds())
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	b := NewBarrier("loop", 3)
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("p", i, func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Advance(int64(10 * (i + 1)))
				b.Wait(p)
				counts[i]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 5 {
			t.Errorf("proc %d completed %d rounds", i, c)
		}
	}
	if b.Rounds() != 5 {
		t.Errorf("rounds = %d", b.Rounds())
	}
}

func TestBarrierSingleParty(t *testing.T) {
	e := New()
	b := NewBarrier("solo", 1)
	e.Spawn("p", 0, func(p *Proc) {
		b.Wait(p) // must not block
		b.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != 2 {
		t.Errorf("rounds = %d", b.Rounds())
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-party barrier accepted")
		}
	}()
	NewBarrier("bad", 0)
}
