package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"testing"
)

// partWorkload runs a randomized but fully deterministic mix of Charge,
// Advance, Yield, and Exchange steps across nodes*procsPerNode processes on
// a partitioned engine, and returns a fingerprint of everything observable:
// each process's step-by-step view of its clock, the exchange service order
// (via a coordinator-side counter folded into completion times), final
// virtual time, and the engine event count. Two runs with different
// partition counts must produce the same fingerprint.
func partWorkload(t *testing.T, seed int64, nodes, procsPerNode, steps, parts int) uint64 {
	t.Helper()
	e := New()
	e.EnablePartitions(parts, func(node int) int { return node * parts / nodes })
	// Each process hashes only its own trace slot (processes on different
	// partitions run concurrently and must share no Go state); the slots are
	// merged into one fingerprint after the run.
	traces := make([]uint64, nodes*procsPerNode)
	var serviced int64 // mutated only at barriers, in service order
	for n := 0; n < nodes; n++ {
		for k := 0; k < procsPerNode; k++ {
			node := n
			idx := n*procsPerNode + k
			e.Spawn(fmt.Sprintf("w%d", idx), node, func(p *Proc) {
				rng := rand.New(rand.NewSource(seed + int64(idx)*7919))
				h := fnv.New64a()
				for s := 0; s < steps; s++ {
					switch rng.Intn(10) {
					case 0, 1, 2, 3:
						p.Charge(int64(rng.Intn(60_000)))
					case 4, 5:
						p.Advance(int64(rng.Intn(200_000)))
					case 6:
						p.Yield()
					default:
						// The completion time folds in the coordinator-side
						// service counter, so the fingerprint detects any
						// partition-count-dependent exchange ordering.
						delay := int64(1_000 + rng.Intn(20_000))
						p.Exchange(func(issue int64) int64 {
							serviced++
							return issue + delay + serviced%97
						})
					}
					fmt.Fprintf(h, "%d %d %d\n", idx, s, p.Now())
				}
				traces[idx] = h.Sum64()
			})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatalf("parts=%d: Run: %v", parts, err)
	}
	st := e.Stats()
	h := fnv.New64a()
	for _, tr := range traces {
		fmt.Fprintf(h, "%#x\n", tr)
	}
	fmt.Fprintf(h, "now=%d events=%d exchanges=%d serviced=%d\n", e.Now(), st.Events, st.Exchanges, serviced)
	return h.Sum64()
}

// TestPartitionCountInvariance is the engine-level determinism oracle: the
// same program must produce an identical observable timeline at every
// partition count, with the single-partition windowed engine as reference.
func TestPartitionCountInvariance(t *testing.T) {
	const nodes, procs, steps = 8, 2, 120
	for _, seed := range []int64{1, 42, 20260807} {
		ref := partWorkload(t, seed, nodes, procs, steps, 1)
		for _, parts := range []int{2, 3, 4, 8} {
			if got := partWorkload(t, seed, nodes, procs, steps, parts); got != ref {
				t.Errorf("seed %d: fingerprint differs at %d partitions: %#x vs reference %#x", seed, parts, got, ref)
			}
		}
	}
}

// TestPartitionedGOMAXPROCS1 proves partitioned mode degrades gracefully to
// sequential in-window execution: with one OS processor the coordinator runs
// windows partition-by-partition, and the results stay identical.
func TestPartitionedGOMAXPROCS1(t *testing.T) {
	const nodes, procs, steps = 8, 2, 120
	ref := partWorkload(t, 7, nodes, procs, steps, 4)
	prev := runtime.GOMAXPROCS(1)
	got := partWorkload(t, 7, nodes, procs, steps, 4)
	runtime.GOMAXPROCS(prev)
	if got != ref {
		t.Errorf("GOMAXPROCS=1 fingerprint %#x differs from parallel %#x", got, ref)
	}
}

// FuzzPartitionedEquivalence drives random workloads through 2..5-way
// partitioned engines against the 1-partition reference — the same
// reference-model idiom as the calendar fuzz target, applied to the
// cross-partition event-exchange ordering.
func FuzzPartitionedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(40))
	f.Add(int64(99), uint8(5), uint8(1), uint8(25))
	f.Add(int64(-7), uint8(3), uint8(2), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, nodes, procsPerNode, steps uint8) {
		n := int(nodes)%12 + 1
		ppn := int(procsPerNode)%3 + 1
		st := int(steps)%80 + 1
		ref := partWorkload(t, seed, n, ppn, st, 1)
		for parts := 2; parts <= 5 && parts <= n; parts++ {
			if got := partWorkload(t, seed, n, ppn, st, parts); got != ref {
				t.Fatalf("seed %d nodes %d ppn %d steps %d: fingerprint differs at %d partitions", seed, n, ppn, st, parts)
			}
		}
	})
}

// TestPartitionedDeadlockReported: a blocked process with no waker is still
// reported as a deadlock on a partitioned engine.
func TestPartitionedDeadlockReported(t *testing.T) {
	e := New()
	e.EnablePartitions(2, func(node int) int { return node % 2 })
	e.Spawn("stuck", 0, func(p *Proc) {
		p.Charge(1_000)
		p.Block("never")
	})
	e.Spawn("fine", 1, func(p *Proc) { p.Advance(5_000) })
	var de *DeadlockError
	if err := e.Run(); !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	} else if len(de.Blocked) != 1 || de.Blocked[0].Reason != "never" {
		t.Fatalf("unexpected deadlock report: %+v", de)
	}
}

// TestPartitionedRestrictions: the partitioned programming model's rules are
// enforced loudly, not silently miscomputed.
func TestPartitionedRestrictions(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}

	// Exchange needs a partitioned engine.
	e := New()
	e.Spawn("p", 0, func(p *Proc) {
		mustPanic("classic Exchange", func() { p.Exchange(func(t int64) int64 { return t }) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// Mid-run Spawn is rejected.
	e2 := New()
	e2.EnablePartitions(2, func(node int) int { return node % 2 })
	e2.Spawn("p", 0, func(p *Proc) {
		mustPanic("mid-run Spawn", func() { e2.Spawn("child", 0, func(*Proc) {}) })
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}

	// Cross-node Unblock is rejected.
	e3 := New()
	e3.EnablePartitions(2, func(node int) int { return node % 2 })
	var victim *Proc
	victim = e3.Spawn("victim", 0, func(p *Proc) { p.Block("wait") })
	e3.Spawn("waker", 1, func(p *Proc) {
		p.Advance(1_000)
		mustPanic("cross-node Unblock", func() { e3.Unblock(victim, 0) })
	})
	var de *DeadlockError
	if err := e3.Run(); !errors.As(err, &de) {
		t.Fatalf("want DeadlockError (victim never woken), got %v", err)
	}

	// EnablePartitions after Spawn is rejected.
	e4 := New()
	e4.Spawn("early", 0, func(*Proc) {})
	mustPanic("EnablePartitions after Spawn", func() {
		e4.EnablePartitions(2, func(node int) int { return node % 2 })
	})
}

// TestSameNodeWaitQueuePartitioned: scheduler-based synchronization between
// processes on the same node works under partitioning, including across
// windows.
func TestSameNodeWaitQueuePartitioned(t *testing.T) {
	run := func(parts int) int64 {
		e := New()
		e.EnablePartitions(parts, func(node int) int { return node * parts / 4 })
		// One queue and one result slot per node: wait queues are same-node
		// objects under partitioning, like all shared Go state.
		wokenAt := make([]int64, 4)
		for n := 0; n < 4; n++ {
			node := n
			q := NewWaitQueue(fmt.Sprintf("q%d", node))
			e.Spawn("waiter", node, func(p *Proc) {
				q.Wait(p)
				wokenAt[node] = p.Now()
			})
			e.Spawn("waker", node, func(p *Proc) {
				p.Advance(int64(1_000 * (node + 1)))
				q.WakeOne(e, 0)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		var sum int64
		for _, w := range wokenAt {
			sum += w
		}
		return sum
	}
	ref := run(1)
	for _, parts := range []int{2, 4} {
		if got := run(parts); got != ref {
			t.Errorf("parts=%d: woken-time sum %d != reference %d", parts, got, ref)
		}
	}
}
