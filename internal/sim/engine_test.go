package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleProcAdvance(t *testing.T) {
	e := New()
	var end int64
	e.Spawn("p", 0, func(p *Proc) {
		p.Advance(100)
		p.Advance(250)
		end = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 350 {
		t.Errorf("end time = %d, want 350", end)
	}
	if got := e.Now(); got != 350 {
		t.Errorf("engine Now = %d, want 350", got)
	}
}

func TestInterleavingOrder(t *testing.T) {
	e := New()
	var order []string
	mark := func(s string) { order = append(order, fmt.Sprintf("%s@%d", s, e.Now())) }
	e.Spawn("a", 0, func(p *Proc) {
		p.Advance(10)
		mark("a1")
		p.Advance(30) // resumes at 40
		mark("a2")
	})
	e.Spawn("b", 0, func(p *Proc) {
		p.Advance(20)
		mark("b1")
		p.Advance(5) // resumes at 25
		mark("b2")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a1@10", "b1@20", "b2@25", "a2@40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, order[i], want[i])
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	// Processes scheduled at the same instant run in spawn (FIFO) order.
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
			p.Advance(100)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	e := New()
	var waiterResumedAt int64
	var waiter *Proc
	waiter = e.Spawn("waiter", 0, func(p *Proc) {
		p.Block("test condition")
		waiterResumedAt = e.Now()
	})
	e.Spawn("waker", 0, func(p *Proc) {
		p.Advance(500)
		e.Unblock(waiter, 25)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if waiterResumedAt != 525 {
		t.Errorf("waiter resumed at %d, want 525", waiterResumedAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Spawn("lonely", 3, func(p *Proc) {
		p.Advance(7)
		p.Block("a post that never comes")
	})
	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run error = %v, want DeadlockError", err)
	}
	if de.Now != 7 {
		t.Errorf("deadlock at %d, want 7", de.Now)
	}
	if len(de.Blocked) != 1 || de.Blocked[0].Name != "lonely" || de.Blocked[0].Node != 3 {
		t.Errorf("blocked = %+v", de.Blocked)
	}
	if de.Blocked[0].Reason != "a post that never comes" {
		t.Errorf("reason = %q", de.Blocked[0].Reason)
	}
}

func TestSpawnFromInside(t *testing.T) {
	e := New()
	var childEnd int64
	e.Spawn("parent", 0, func(p *Proc) {
		p.Advance(100)
		e.Spawn("child", 1, func(c *Proc) {
			c.Advance(50)
			childEnd = e.Now()
		})
		p.Advance(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if childEnd != 150 {
		t.Errorf("child end = %d, want 150", childEnd)
	}
	if e.Stats().Spawned != 2 || e.Stats().Completed != 2 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestExit(t *testing.T) {
	e := New()
	reached := false
	e.Spawn("quitter", 0, func(p *Proc) {
		p.Advance(10)
		p.Exit()
		reached = true // must not run
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Error("code after Exit executed")
	}
	if e.Stats().Completed != 1 {
		t.Errorf("completed = %d, want 1", e.Stats().Completed)
	}
}

func TestYieldFairness(t *testing.T) {
	// Two processes yielding at the same instant alternate.
	e := New()
	var order []string
	e.Spawn("a", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			p.Yield()
		}
	})
	e.Spawn("b", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			p.Yield()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := New()
	q := NewWaitQueue("q")
	var woken []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Spawn(name, 0, func(p *Proc) {
			q.Wait(p)
			woken = append(woken, name)
		})
	}
	e.Spawn("waker", 0, func(p *Proc) {
		p.Advance(10)
		for q.WakeOne(e, 1) {
			p.Advance(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"x", "y", "z"}
	for i := range want {
		if woken[i] != want[i] {
			t.Fatalf("woken = %v, want %v", woken, want)
		}
	}
}

func TestWaitQueueWakeAll(t *testing.T) {
	e := New()
	q := NewWaitQueue("barrier")
	count := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), 0, func(p *Proc) {
			q.Wait(p)
			count++
		})
	}
	e.Spawn("waker", 0, func(p *Proc) {
		p.Advance(100)
		if n := q.WakeAll(e, 0); n != 5 {
			t.Errorf("WakeAll woke %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestWaitQueueRemove(t *testing.T) {
	e := New()
	q := NewWaitQueue("q")
	var victim *Proc
	victimRan := false
	victim = e.Spawn("victim", 0, func(p *Proc) {
		q.Wait(p)
		victimRan = true
	})
	e.Spawn("canceller", 0, func(p *Proc) {
		p.Advance(10)
		if !q.Remove(victim) {
			t.Error("Remove returned false")
		}
		if q.Remove(victim) {
			t.Error("second Remove returned true")
		}
		e.Unblock(victim, 0) // wake it outside the queue
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !victimRan {
		t.Error("victim never resumed")
	}
	if q.Len() != 0 {
		t.Errorf("queue len = %d, want 0", q.Len())
	}
}

func TestDeterminism(t *testing.T) {
	// The same randomized program produces the identical event trace on
	// every run: the engine must be deterministic.
	run := func(seed int64) []string {
		e := New()
		var trace []string
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			i := i
			delays := make([]int64, 10)
			for j := range delays {
				delays[j] = int64(rng.Intn(1000))
			}
			e.Spawn(fmt.Sprintf("p%d", i), i%4, func(p *Proc) {
				for _, d := range delays {
					p.Advance(d)
					trace = append(trace, fmt.Sprintf("%d@%d", i, e.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestAdvanceClockMonotonic(t *testing.T) {
	// Property: for random advance sequences across many procs, observed
	// times are monotonically non-decreasing.
	check := func(seed int64) bool {
		e := New()
		var times []int64
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 8; i++ {
			n := 5 + rng.Intn(10)
			ds := make([]int64, n)
			for j := range ds {
				ds[j] = int64(rng.Intn(500))
			}
			e.Spawn("p", 0, func(p *Proc) {
				for _, d := range ds {
					p.Advance(d)
					times = append(times, e.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := New()
	panicked := make(chan bool, 1)
	e.Spawn("bad", 0, func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			p.Exit()
		}()
		p.Advance(-1)
	})
	_ = e.Run()
	select {
	case ok := <-panicked:
		if !ok {
			t.Error("Advance(-1) did not panic")
		}
	default:
		t.Error("process never reported")
	}
}

func TestTimeHelpers(t *testing.T) {
	if Seconds(2_500_000_000) != 2.5 {
		t.Errorf("Seconds wrong")
	}
	if Micros(4_000) != 4.0 {
		t.Errorf("Micros wrong")
	}
	if 3*Millisecond != 3_000_000 || 2*Second != 2_000_000_000 {
		t.Errorf("constants wrong")
	}
}

func TestProcAccessors(t *testing.T) {
	e := New()
	p := e.Spawn("acc", 2, func(p *Proc) {
		p.Advance(11)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.Done() {
		t.Error("proc not done")
	}
	s, f := p.Lifetime()
	if s != 0 || f != 11 {
		t.Errorf("lifetime = (%d,%d), want (0,11)", s, f)
	}
	if p.Engine() != e {
		t.Error("Engine() mismatch")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunTwicePanics(t *testing.T) {
	e := New()
	e.Spawn("once", 0, func(p *Proc) { p.Advance(5) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	_ = e.Run()
}

// TestTrapPanics: in trapped mode a real panic in a process body aborts the
// run with an error naming the process, instead of crashing the host; other
// processes are torn down, not left running.
func TestTrapPanics(t *testing.T) {
	e := New()
	e.TrapPanics()
	var survived bool
	e.Spawn("bystander", 0, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(10)
		}
		survived = true
	})
	e.Spawn("victim", 1, func(p *Proc) {
		p.Advance(5)
		panic("index out of range")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil after a process panicked")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "victim") {
		t.Errorf("trap error = %q, want process name and panic marker", err)
	}
	if survived {
		t.Error("bystander ran to completion during an aborted run")
	}
}
