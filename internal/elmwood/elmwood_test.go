package elmwood

import (
	"errors"
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// boot builds a machine, starts Elmwood, runs body in a client process on
// node 0, and shuts the kernels down afterwards.
func boot(t *testing.T, nodes int, body func(k *Kernel, c *Client)) *Kernel {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	os := chrysalis.New(m)
	k, err := Boot(os)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.MakeProcess(nil, "client", 0, 16, func(self *chrysalis.Process) {
		c := k.NewClient(self)
		body(k, c)
		k.Shutdown(self.P)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestInvokeRemoteObject(t *testing.T) {
	boot(t, 4, func(k *Kernel, c *Client) {
		count := 0
		cap := k.CreateObject(2, map[string]Operation{
			"add": func(p *sim.Proc, args any) any {
				count += args.(int)
				return count
			},
		})
		v, err := c.Invoke(cap, "add", 7)
		if err != nil || v.(int) != 7 {
			t.Fatalf("invoke = %v, %v", v, err)
		}
		v, err = c.Invoke(cap, "add", 3)
		if err != nil || v.(int) != 10 {
			t.Fatalf("invoke 2 = %v, %v", v, err)
		}
	})
}

func TestForgedCapabilityRejected(t *testing.T) {
	boot(t, 2, func(k *Kernel, c *Client) {
		cap := k.CreateObject(1, map[string]Operation{
			"op": func(p *sim.Proc, args any) any { return nil },
		})
		forged := cap
		forged.Check ^= 1
		if _, err := c.Invoke(forged, "op", nil); !errors.Is(err, ErrBadCapability) {
			t.Errorf("err = %v, want ErrBadCapability", err)
		}
		bogus := Capability{ObjID: 99, Rights: RInvoke}
		if _, err := c.Invoke(bogus, "op", nil); !errors.Is(err, ErrBadCapability) {
			t.Errorf("bogus err = %v", err)
		}
	})
}

func TestRestrictedCapability(t *testing.T) {
	boot(t, 2, func(k *Kernel, c *Client) {
		cap := k.CreateObject(1, map[string]Operation{
			"op": func(p *sim.Proc, args any) any { return "ok" },
		})
		weak, err := k.Restrict(cap, RInvoke)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(weak, "op", nil); err != nil {
			t.Errorf("weak invoke: %v", err)
		}
		if err := k.Destroy(weak); !errors.Is(err, ErrNoRights) {
			t.Errorf("destroy with weak cap: %v", err)
		}
		// A capability without RRestrict cannot mint new ones.
		if _, err := k.Restrict(weak, RInvoke); !errors.Is(err, ErrNoRights) {
			t.Errorf("restrict with weak cap: %v", err)
		}
		// Remove invoke rights entirely.
		none, err := k.Restrict(cap, RRestrict)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(none, "op", nil); !errors.Is(err, ErrNoRights) {
			t.Errorf("rightless invoke: %v", err)
		}
	})
}

func TestDestroy(t *testing.T) {
	boot(t, 2, func(k *Kernel, c *Client) {
		cap := k.CreateObject(1, map[string]Operation{
			"op": func(p *sim.Proc, args any) any { return nil },
		})
		if err := k.Destroy(cap); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Invoke(cap, "op", nil); !errors.Is(err, ErrDestroyed) {
			t.Errorf("err = %v, want ErrDestroyed", err)
		}
	})
}

func TestUnknownOperation(t *testing.T) {
	k := boot(t, 2, func(k *Kernel, c *Client) {
		cap := k.CreateObject(1, map[string]Operation{})
		if _, err := c.Invoke(cap, "nope", nil); !errors.Is(err, ErrNoOperation) {
			t.Errorf("err = %v, want ErrNoOperation", err)
		}
	})
	if k.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", k.Stats().Rejected)
	}
}

func TestRPCCostOrderOfMilliseconds(t *testing.T) {
	// [36]: Elmwood RPC costs are the same order as the other general
	// communication schemes on the Butterfly.
	boot(t, 2, func(k *Kernel, c *Client) {
		cap := k.CreateObject(1, map[string]Operation{
			"echo": func(p *sim.Proc, args any) any { return args },
		})
		e := c.pr.P.Engine()
		const n = 20
		t0 := e.Now()
		for i := 0; i < n; i++ {
			if _, err := c.Invoke(cap, "echo", i); err != nil {
				t.Fatal(err)
			}
		}
		per := (e.Now() - t0) / n
		if per < 200*sim.Microsecond || per > 5*sim.Millisecond {
			t.Errorf("per-call = %.1f us", sim.Micros(per))
		}
	})
}

func TestObjectsOnEveryNode(t *testing.T) {
	k := boot(t, 4, func(k *Kernel, c *Client) {
		for n := 0; n < 4; n++ {
			n := n
			cap := k.CreateObject(n, map[string]Operation{
				"where": func(p *sim.Proc, args any) any { return p.Node },
			})
			v, err := c.Invoke(cap, "where", nil)
			if err != nil {
				t.Fatal(err)
			}
			if v.(int) != n {
				t.Errorf("object on node %d executed on %d", n, v.(int))
			}
		}
	})
	if k.Stats().Invocations != 4 {
		t.Errorf("invocations = %d", k.Stats().Invocations)
	}
}
