// Package elmwood models Elmwood (Mellor-Crummey, LeBlanc, Crowl, Gafter &
// Dibble; §3.4 of the paper): "a fully-functional RPC-based multiprocessor
// operating system constructed as a class project in only a semester and a
// half". Elmwood is object-oriented: everything is an object named by a
// capability; invoking an operation on an object is a kernel-mediated remote
// procedure call to the node where the object lives.
//
// The model: one kernel server per node, receiving invocation requests on a
// dual queue; capabilities carry rights and an unguessable check field; the
// kernel validates the capability, dispatches the operation on the object's
// home node, and replies through the caller's private reply queue.
package elmwood

import (
	"errors"
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Rights restrict what a capability permits.
type Rights int

// Capability rights.
const (
	RInvoke Rights = 1 << iota
	RRestrict
	RDestroy
)

// Capability names an object; it can be passed between processes freely
// (possession is authority, as in the real system).
type Capability struct {
	ObjID  int
	Check  uint64
	Rights Rights
}

// Operation is an object's method. It runs on the object's home node inside
// the kernel server, with the server's process for time charging.
type Operation func(p *sim.Proc, args any) any

// object is the kernel-side record.
type object struct {
	id    int
	node  int
	check uint64
	ops   map[string]Operation
	dead  bool
}

// Costs calibrates Elmwood.
type Costs struct {
	// DispatchNs is the kernel-side cost per invocation (validate, decode,
	// dispatch).
	DispatchNs int64
	// StubNs is the client-side marshalling cost per call.
	StubNs int64
}

// DefaultCosts follows the published Elmwood RPC measurements (same order
// as Lynx: around a millisecond end to end).
func DefaultCosts() Costs {
	return Costs{
		DispatchNs: 200 * sim.Microsecond,
		StubNs:     150 * sim.Microsecond,
	}
}

// Kernel is an Elmwood instance: one server process per node.
type Kernel struct {
	OS    *chrysalis.OS
	Costs Costs

	objects []*object
	ports   []*chrysalis.DualQueue
	reqs    []request
	free    []int
	nextChk uint64
	stats   Stats
}

// Stats counts kernel activity.
type Stats struct {
	Invocations uint64
	Rejected    uint64
}

type request struct {
	cap   Capability
	op    string
	args  any
	reply *chrysalis.DualQueue
	// out carries the result value (the dual queue datum is just a token).
	out *invokeResult
}

type invokeResult struct {
	val any
	err error
}

const poison = ^uint32(0)

// Boot starts Elmwood: one kernel server per machine node.
func Boot(os *chrysalis.OS) (*Kernel, error) {
	k := &Kernel{OS: os, Costs: DefaultCosts()}
	for n := 0; n < os.M.N(); n++ {
		port := os.NewDualQueue(n, nil)
		k.ports = append(k.ports, port)
		if _, err := os.MakeProcess(nil, fmt.Sprintf("elmwood-kernel-%d", n), n, 16, func(self *chrysalis.Process) {
			for {
				d := port.Dequeue(self.P)
				if d == poison {
					return
				}
				req := k.reqs[d]
				k.free = append(k.free, int(d))
				self.P.Advance(k.Costs.DispatchNs)
				req.out.val, req.out.err = k.dispatch(self.P, req)
				req.reply.Enqueue(self.P, 0)
			}
		}); err != nil {
			return nil, err
		}
	}
	return k, nil
}

// Shutdown stops the kernel servers.
func (k *Kernel) Shutdown(p *sim.Proc) {
	for _, port := range k.ports {
		port.Enqueue(p, poison)
	}
}

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Errors.
var (
	ErrBadCapability = errors.New("elmwood: invalid capability")
	ErrNoRights      = errors.New("elmwood: capability lacks the required right")
	ErrNoOperation   = errors.New("elmwood: object has no such operation")
	ErrDestroyed     = errors.New("elmwood: object has been destroyed")
)

// dispatch validates and executes a request on the kernel server.
func (k *Kernel) dispatch(p *sim.Proc, req request) (any, error) {
	obj, err := k.resolve(req.cap)
	if err != nil {
		k.stats.Rejected++
		return nil, err
	}
	if req.cap.Rights&RInvoke == 0 {
		k.stats.Rejected++
		return nil, ErrNoRights
	}
	fn, ok := obj.ops[req.op]
	if !ok {
		k.stats.Rejected++
		return nil, fmt.Errorf("%w: %q", ErrNoOperation, req.op)
	}
	k.stats.Invocations++
	return fn(p, req.args), nil
}

// resolve checks a capability against the object table.
func (k *Kernel) resolve(c Capability) (*object, error) {
	if c.ObjID < 0 || c.ObjID >= len(k.objects) {
		return nil, ErrBadCapability
	}
	obj := k.objects[c.ObjID]
	if obj.check != c.Check {
		return nil, ErrBadCapability
	}
	if obj.dead {
		return nil, ErrDestroyed
	}
	return obj, nil
}

// CreateObject registers an object on a node and returns its full-rights
// capability.
func (k *Kernel) CreateObject(node int, ops map[string]Operation) Capability {
	k.nextChk = k.nextChk*0x5DEECE66D + 0xB
	obj := &object{
		id:    len(k.objects),
		node:  node,
		check: k.nextChk,
		ops:   ops,
	}
	k.objects = append(k.objects, obj)
	return Capability{ObjID: obj.id, Check: obj.check, Rights: RInvoke | RRestrict | RDestroy}
}

// Restrict derives a weaker capability (requires RRestrict on the source).
func (k *Kernel) Restrict(c Capability, keep Rights) (Capability, error) {
	if _, err := k.resolve(c); err != nil {
		return Capability{}, err
	}
	if c.Rights&RRestrict == 0 {
		return Capability{}, ErrNoRights
	}
	return Capability{ObjID: c.ObjID, Check: c.Check, Rights: c.Rights & keep}, nil
}

// Destroy removes an object (requires RDestroy).
func (k *Kernel) Destroy(c Capability) error {
	obj, err := k.resolve(c)
	if err != nil {
		return err
	}
	if c.Rights&RDestroy == 0 {
		return ErrNoRights
	}
	obj.dead = true
	return nil
}

// Client is a caller's handle: a private reply queue on its node.
type Client struct {
	kernel *Kernel
	pr     *chrysalis.Process
	reply  *chrysalis.DualQueue
}

// NewClient prepares a process to make Elmwood calls.
func (k *Kernel) NewClient(pr *chrysalis.Process) *Client {
	return &Client{kernel: k, pr: pr, reply: k.OS.NewDualQueue(pr.P.Node, pr.Root)}
}

// Invoke performs a synchronous RPC on the object named by cap.
func (c *Client) Invoke(cap Capability, op string, args any) (any, error) {
	k := c.kernel
	p := c.pr.P
	p.Advance(k.Costs.StubNs)
	out := &invokeResult{}
	req := request{cap: cap, op: op, args: args, reply: c.reply, out: out}
	var slot int
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
		k.reqs[slot] = req
	} else {
		slot = len(k.reqs)
		k.reqs = append(k.reqs, req)
	}
	// Route to the kernel server on the object's home node (bad ids go to
	// node 0's kernel, which rejects them).
	node := 0
	if cap.ObjID >= 0 && cap.ObjID < len(k.objects) {
		node = k.objects[cap.ObjID].node
	}
	k.ports[node].Enqueue(p, uint32(slot))
	c.reply.Dequeue(p)
	return out.val, out.err
}
