package us

import (
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// runUS builds a machine/OS, runs program under the Uniform System with the
// given worker count, and returns the instance and total virtual time.
func runUS(t *testing.T, nodes, workers int, cfg *Config, program func(w *Worker)) (*US, int64) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(nodes))
	os := chrysalis.New(m)
	c := DefaultConfig(workers)
	if cfg != nil {
		c = *cfg
	}
	u, err := Initialize(os, c, program)
	if err != nil {
		t.Fatalf("Initialize: %v", err)
	}
	if err := m.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return u, m.E.Now()
}

func TestAllTasksExecuteOnce(t *testing.T) {
	const n = 100
	seen := make([]int, n)
	u, _ := runUS(t, 8, 8, nil, func(w *Worker) {
		w.U.GenOnIndex(w, n, func(w *Worker, i int) {
			w.U.OS.M.IntOps(w.P, 10)
			seen[i]++
		})
	})
	for i, c := range seen {
		if c != 1 {
			t.Errorf("task %d ran %d times", i, c)
		}
	}
	if u.Stats().TasksExecuted != n {
		t.Errorf("executed = %d, want %d", u.Stats().TasksExecuted, n)
	}
}

func TestWorkSpreadsAcrossWorkers(t *testing.T) {
	u, _ := runUS(t, 8, 8, nil, func(w *Worker) {
		w.U.GenOnIndex(w, 200, func(w *Worker, i int) {
			w.U.OS.M.IntOps(w.P, 2000) // ~1 ms of work each
		})
	})
	busy := 0
	for _, w := range u.Workers() {
		if w.TasksRun > 0 {
			busy++
		}
	}
	if busy < 6 {
		t.Errorf("only %d of 8 workers executed tasks", busy)
	}
}

func TestSpeedup(t *testing.T) {
	// The same task set must run substantially faster with more workers.
	elapsed := func(workers int) int64 {
		_, ns := runUS(t, 32, workers, nil, func(w *Worker) {
			w.U.GenOnIndex(w, 128, func(w *Worker, i int) {
				w.U.OS.M.IntOps(w.P, 20000) // ~10 ms each
			})
		})
		return ns
	}
	t1 := elapsed(1)
	t16 := elapsed(16)
	speedup := float64(t1) / float64(t16)
	if speedup < 8 {
		t.Errorf("speedup with 16 workers = %.1f, want > 8", speedup)
	}
}

func TestSequentialGenerations(t *testing.T) {
	// Generations must be properly fenced: no task of generation 2 may run
	// before every task of generation 1 completed.
	var phase1Done, ordered = false, true
	runUS(t, 4, 4, nil, func(w *Worker) {
		count := 0
		w.U.GenOnIndex(w, 20, func(w *Worker, i int) {
			w.U.OS.M.IntOps(w.P, 100)
			count++
			if count == 20 {
				phase1Done = true
			}
		})
		if !phase1Done {
			ordered = false
		}
		w.U.GenOnIndex(w, 20, func(w *Worker, i int) {
			if !phase1Done {
				ordered = false
			}
			w.U.OS.M.IntOps(w.P, 100)
		})
	})
	if !ordered {
		t.Error("generation 2 overlapped generation 1")
	}
}

func TestGeneratorParticipates(t *testing.T) {
	u, _ := runUS(t, 4, 4, nil, func(w *Worker) {
		w.U.GenOnIndex(w, 40, func(w *Worker, i int) {
			w.U.OS.M.IntOps(w.P, 1000)
		})
	})
	if u.Workers()[0].TasksRun == 0 {
		t.Error("generator executed no tasks")
	}
}

func TestEmptyGeneration(t *testing.T) {
	runUS(t, 2, 2, nil, func(w *Worker) {
		w.U.GenOnIndex(w, 0, func(w *Worker, i int) {
			t.Error("task ran for empty generation")
		})
	})
}

func TestSingleWorker(t *testing.T) {
	ran := 0
	runUS(t, 2, 1, nil, func(w *Worker) {
		w.U.GenOnIndex(w, 10, func(w *Worker, i int) { ran++ })
	})
	if ran != 10 {
		t.Errorf("ran = %d, want 10", ran)
	}
}

func TestBadWorkerCount(t *testing.T) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	if _, err := Initialize(os, DefaultConfig(5), func(w *Worker) {}); err == nil {
		t.Error("5 workers on 2 nodes accepted")
	}
	if _, err := Initialize(os, DefaultConfig(0), func(w *Worker) {}); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestSerialAllocatorSerializes(t *testing.T) {
	// E9: with the serial allocator, allocation-heavy parallel work is
	// dramatically slower than with the parallel allocator.
	allocHeavy := func(parallel bool) int64 {
		cfg := DefaultConfig(16)
		cfg.ParallelAlloc = parallel
		_, ns := runUS(t, 16, 16, &cfg, func(w *Worker) {
			w.U.GenOnIndex(w, 160, func(w *Worker, i int) {
				if _, err := w.U.Alloc(w, w.ID, 1024); err != nil {
					t.Errorf("alloc: %v", err)
				}
				w.U.OS.M.IntOps(w.P, 100)
			})
		})
		return ns
	}
	serial := allocHeavy(false)
	par := allocHeavy(true)
	if float64(serial) < 1.5*float64(par) {
		t.Errorf("serial %d vs parallel %d: expected serialization penalty", serial, par)
	}
}

func TestSharedMemoryLimit(t *testing.T) {
	// §2.3: only 16 MB of the gigabyte of physical memory is usable.
	runUS(t, 4, 4, nil, func(w *Worker) {
		// 255 segments of 64 KB fit...
		for i := 0; i < 256; i++ {
			if _, err := w.U.Alloc(w, i%4, 64*1024); err != nil {
				t.Fatalf("alloc %d failed early: %v", i, err)
			}
		}
		// ...but the 257th does not.
		if _, err := w.U.Alloc(w, 0, 64*1024); err != ErrSharedLimit {
			t.Errorf("got %v, want ErrSharedLimit", err)
		}
	})
}

func TestScatterRows(t *testing.T) {
	u, _ := runUS(t, 8, 8, nil, func(w *Worker) {
		s, err := w.U.ScatterRows(w, 20, 256, 4)
		if err != nil {
			t.Fatalf("ScatterRows: %v", err)
		}
		for i := 0; i < 20; i++ {
			if s.NodeOf(i) != i%4 {
				t.Errorf("row %d on node %d, want %d", i, s.NodeOf(i), i%4)
			}
		}
	})
	if u.Stats().AllocRequests != 20 {
		t.Errorf("alloc requests = %d", u.Stats().AllocRequests)
	}
}

func TestScatterDefaultLimit(t *testing.T) {
	runUS(t, 8, 4, nil, func(w *Worker) {
		s, err := w.U.ScatterRows(w, 8, 128, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Limit != 4 {
			t.Errorf("default limit = %d, want 4 (worker count)", s.Limit)
		}
	})
}

func TestTaskGranularityOverhead(t *testing.T) {
	// Dispatch cost must be tens of microseconds per task (cheap tasks are
	// the point of the US), dominated by the dual-queue microcode.
	_, ns := runUS(t, 2, 1, nil, func(w *Worker) {
		w.U.GenOnIndex(w, 100, func(w *Worker, i int) {})
	})
	perTask := ns / 100
	if perTask > 200*sim.Microsecond {
		t.Errorf("per-task overhead = %d ns, want < 200 us", perTask)
	}
	if perTask < 10*sim.Microsecond {
		t.Errorf("per-task overhead = %d ns, implausibly cheap", perTask)
	}
}
