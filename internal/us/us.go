// Package us implements the BBN Uniform System (§2.3 of the paper): a
// library that creates one manager process per processor and dispatches
// lightweight run-to-completion tasks from a global, microcoded work queue
// over a single globally shared memory. It is cheap and easy — the
// "programming environment of choice for most applications" — but tasks
// cannot block (spin locks only), the global queue and serial allocator are
// contention points, and nothing co-locates a task with its data, so careful
// programs copy blocks into local memory before computing (the caching idiom
// of §4.1).
//
// The package reproduces both the convenient interface (task generators over
// index ranges) and the documented pathologies: a serial first-fit memory
// allocator that dominated programs until a parallel allocator was introduced
// (Ellis & Olson), and a 16 MB limit on usable shared memory (256 segments ×
// 64 KB) regardless of the gigabyte of physical storage.
package us

import (
	"errors"
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/fault"
	"butterfly/internal/sim"
)

// Task is a Uniform System task: a procedure applied to shared data,
// identified here by the index it was generated for. Tasks run to completion
// on whichever worker dequeues them; they must not block (only spin locks
// are legal inside a task).
type Task func(w *Worker, index int)

// Config tunes the Uniform System instance.
type Config struct {
	// Workers is the number of processors used (one manager per node,
	// nodes 0..Workers-1).
	Workers int
	// ParallelAlloc selects the per-node parallel first-fit allocator
	// instead of the original serial one (experiment E9 "alloc").
	ParallelAlloc bool
	// AllocHoldNs is the time the allocator's critical section is held per
	// request.
	AllocHoldNs int64
	// TaskWrapNs is the fixed manager overhead around each task beyond the
	// dual-queue dequeue itself (argument unpacking, procedure dispatch).
	TaskWrapNs int64
}

// DefaultConfig returns a Config for the given worker count with the
// original (serial) allocator.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:     workers,
		AllocHoldNs: 150 * sim.Microsecond,
		TaskWrapNs:  20 * sim.Microsecond,
	}
}

// Worker is one Uniform System manager's execution context, handed to tasks.
type Worker struct {
	// ID is the worker index, 0..Workers-1; worker i runs on node i.
	ID int
	// P is the simulated process executing the task.
	P *sim.Proc
	// U is the owning Uniform System instance.
	U *US
	// TasksRun counts tasks this worker executed.
	TasksRun int
}

// US is an initialized Uniform System instance.
type US struct {
	OS  *chrysalis.OS
	Cfg Config

	taskQ   *chrysalis.DualQueue
	pending []pendingTask
	free    []int // free slots in pending
	// orphans holds tasks stranded on workers killed by a node failure; the
	// generator adopts and re-enqueues them on its next poll.
	orphans []pendingTask

	managers  []*chrysalis.Process
	workers   []*Worker
	genProc   *chrysalis.Process
	doneEvent *chrysalis.Event
	remaining int

	allocLocks []*chrysalis.SpinLock // 1 lock (serial) or Workers locks
	allocated  int64                 // bytes allocated through the US heap

	stats Stats
}

// Stats aggregates Uniform System counters.
type Stats struct {
	TasksExecuted uint64
	Generations   uint64
	AllocRequests uint64
	// Fault-tolerance counters (all zero without an injector).
	TasksRetried       uint64 // transient failures re-enqueued for another try
	TasksFailed        uint64 // tasks abandoned after MaxTaskTries (or permanent faults)
	TasksRedistributed uint64 // orphaned tasks of dead workers re-enqueued by the generator
}

type pendingTask struct {
	fn    Task
	index int
	tries int // failed attempts so far
}

// MaxTaskTries bounds how many times a task that failed with a transient
// fault (packet loss, parity) runs before it is abandoned.
const MaxTaskTries = 3

// poison is the queue datum that tells a manager to shut down.
const poison = ^uint32(0)

// ErrBadWorkers reports an unusable worker count.
var ErrBadWorkers = errors.New("us: worker count exceeds machine size or is not positive")

// Initialize starts the Uniform System on an OS: it creates a generator
// process on node 0 and one manager process on each of nodes 1..Workers-1,
// then calls program with the generator's worker context. Managers dispatch
// tasks until Shutdown. Initialize returns once the whole simulation has been
// set up; the caller still runs the engine.
func Initialize(os *chrysalis.OS, cfg Config, program func(w *Worker)) (*US, error) {
	if cfg.Workers <= 0 || cfg.Workers > os.M.N() {
		return nil, fmt.Errorf("%w: %d workers on %d nodes", ErrBadWorkers, cfg.Workers, os.M.N())
	}
	if cfg.AllocHoldNs == 0 {
		cfg.AllocHoldNs = DefaultConfig(cfg.Workers).AllocHoldNs
	}
	u := &US{OS: os, Cfg: cfg}
	// The global work queue lives on node 0, like the shared state of the
	// real implementation. It is a microcoded dual queue.
	u.taskQ = os.NewDualQueue(0, nil)
	if cfg.ParallelAlloc {
		for i := 0; i < cfg.Workers; i++ {
			u.allocLocks = append(u.allocLocks, os.NewSpinLock(i))
		}
	} else {
		u.allocLocks = []*chrysalis.SpinLock{os.NewSpinLock(0)}
	}
	// Managers on nodes 1..Workers-1.
	for i := 1; i < cfg.Workers; i++ {
		i := i
		w := &Worker{ID: i, U: u}
		u.workers = append(u.workers, w)
		pr, err := os.MakeProcess(nil, fmt.Sprintf("us-manager-%d", i), i, 16, func(self *chrysalis.Process) {
			w.P = self.P
			u.managerLoop(w)
		})
		if err != nil {
			return nil, err
		}
		u.managers = append(u.managers, pr)
	}
	// Generator on node 0; it doubles as worker 0 while a generation runs.
	gen := &Worker{ID: 0, U: u}
	u.workers = append([]*Worker{gen}, u.workers...)
	pr, err := os.MakeProcess(nil, "us-generator", 0, 16, func(self *chrysalis.Process) {
		gen.P = self.P
		u.genProc = self
		u.doneEvent = os.NewEvent(self)
		program(gen)
		u.Shutdown(gen)
	})
	if err != nil {
		return nil, err
	}
	_ = pr
	return u, nil
}

// managerLoop dequeues and executes tasks until poisoned. Under fault
// injection a transient fault on the dequeue reference is retried (the task
// queue lives on node 0, which never fails); a manager whose own node dies
// is killed by the injector and never returns here.
func (u *US) managerLoop(w *Worker) {
	faulty := u.OS.M.Faults() != nil
	for {
		var d uint32
		if faulty {
			if protect(func() { d = u.taskQ.Dequeue(w.P) }) != nil {
				continue
			}
		} else {
			d = u.taskQ.Dequeue(w.P)
		}
		if d == poison {
			return
		}
		u.execute(w, int(d))
	}
}

// execute runs one pending task and performs completion accounting.
func (u *US) execute(w *Worker, slot int) {
	pt := u.pending[slot]
	u.free = append(u.free, slot)
	if u.OS.M.Faults() != nil {
		u.executeFaulty(w, pt)
		return
	}
	// The wrap overhead is pure manager time: charge it lazily so it merges
	// into the task body's first sync point instead of costing an engine event.
	w.P.Charge(u.Cfg.TaskWrapNs)
	pt.fn(w, pt.index)
	w.TasksRun++
	u.stats.TasksExecuted++
	// Completion counter lives with the generator on node 0. Flush after the
	// atomic so the decrement is visible at the reference's completion time.
	u.OS.M.Atomic(w.P, 0)
	w.P.Sync()
	u.remaining--
	if u.remaining == 0 {
		u.doneEvent.Post(w.P, 0)
	}
}

// protect runs fn, converting a reference-fault panic into an error.
func protect(fn func()) (err error) {
	defer fault.CatchRef(&err)
	fn()
	return err
}

// runTask runs the task body with reference faults caught.
func (u *US) runTask(w *Worker, pt pendingTask) (err error) {
	defer fault.CatchRef(&err)
	pt.fn(w, pt.index)
	return nil
}

// executeFaulty is execute under fault injection: the task body's reference
// faults are caught (transient ones re-enqueue the task, up to
// MaxTaskTries), and a worker killed mid-task leaves its task in orphans
// for the generator to redistribute.
func (u *US) executeFaulty(w *Worker, pt pendingTask) {
	done := false    // the task's fate is settled (requeued, failed, or completed)
	counted := false // remaining has been decremented
	defer func() {
		// The worker's node died mid-task. Only pure-Go accounting is legal
		// here — a dead processor cannot charge time: strand the task for
		// the generator to adopt, or finish the count if only that was left.
		if w.P.Killed() {
			if !done {
				u.orphans = append(u.orphans, pt)
			} else if !counted {
				u.remaining--
			}
		}
	}()
	w.P.Charge(u.Cfg.TaskWrapNs)
	err := u.runTask(w, pt)
	w.TasksRun++
	u.stats.TasksExecuted++
	if err != nil {
		var re *fault.RefError
		if errors.As(err, &re) && re.Kind != fault.NodeDown && pt.tries+1 < MaxTaskTries {
			retry := pt
			retry.tries++
			if protect(func() { u.enqueue(w.P, retry) }) == nil {
				done = true
				u.stats.TasksRetried++
				return
			}
		}
		u.stats.TasksFailed++
	}
	done = true
	// Completion accounting must not strand the generation, so even the
	// bookkeeping references are protected: a fault there costs only the
	// time charge, the Go-state count still settles.
	_ = protect(func() {
		u.OS.M.Atomic(w.P, 0)
		w.P.Sync()
	})
	u.remaining--
	counted = true
	if u.remaining == 0 {
		_ = protect(func() { u.doneEvent.Post(w.P, 0) })
	}
}

// enqueueTask registers fn(index) and enqueues its descriptor.
func (u *US) enqueueTask(p *sim.Proc, fn Task, index int) {
	u.enqueue(p, pendingTask{fn: fn, index: index})
}

// enqueue registers a pending task (preserving its retry count) and
// enqueues its descriptor.
func (u *US) enqueue(p *sim.Proc, pt pendingTask) {
	var slot int
	if n := len(u.free); n > 0 {
		slot = u.free[n-1]
		u.free = u.free[:n-1]
		u.pending[slot] = pt
	} else {
		slot = len(u.pending)
		u.pending = append(u.pending, pt)
	}
	u.taskQ.Enqueue(p, uint32(slot))
}

// GenOnIndex is the Uniform System's canonical generator: it creates one
// task per index in [0, n) and returns when all have completed. The calling
// worker participates in execution (its processor is not wasted), exactly as
// the real library's generator-becomes-worker behaviour. It must be called
// from the program function's worker (or a task must never call it — tasks
// run to completion).
func (u *US) GenOnIndex(w *Worker, n int, fn Task) {
	if n == 0 {
		return
	}
	u.stats.Generations++
	u.remaining += n
	for i := 0; i < n; i++ {
		u.enqueueTask(w.P, fn, i)
	}
	if u.OS.M.Faults() != nil {
		u.genOnIndexFaulty(w)
		return
	}
	// Work alongside the managers until the queue drains.
	for {
		d, ok := u.taskQ.TryDequeue(w.P)
		if !ok {
			break
		}
		if d == poison { // cannot happen mid-generation, but be safe
			u.taskQ.Enqueue(w.P, d)
			break
		}
		u.execute(w, int(d))
	}
	// Wait for stragglers on other workers. If the generator itself executed
	// the final task, the completion post is already pending; consume it so
	// it cannot leak into the next generation.
	if u.remaining > 0 || u.doneEvent.Posted() {
		u.doneEvent.Wait(w.P)
	}
}

// genPollNs is the generator's poll period while waiting out a generation
// under fault injection: each tick it re-checks for tasks orphaned by dead
// workers and redistributes them. A completion post still wakes it early.
const genPollNs = 2 * sim.Millisecond

// genOnIndexFaulty is GenOnIndex's wait phase when an injector is attached.
// The straggler wait cannot be a bare event wait: the worker holding the
// final task may be killed, so the generator polls, adopting orphaned tasks
// and re-enqueueing them until the count settles.
func (u *US) genOnIndexFaulty(w *Worker) {
	for {
		// Work alongside the managers.
		for {
			d, ok := u.taskQ.TryDequeue(w.P)
			if !ok {
				break
			}
			if d == poison {
				u.taskQ.Enqueue(w.P, d)
				break
			}
			u.execute(w, int(d))
		}
		// Adopt tasks stranded on dead workers.
		if len(u.orphans) > 0 {
			orphans := u.orphans
			u.orphans = nil
			for _, pt := range orphans {
				u.stats.TasksRedistributed++
				if protect(func() { u.enqueue(w.P, pt) }) != nil {
					// The re-enqueue reference itself failed: give up on
					// this task rather than strand the generation.
					u.stats.TasksFailed++
					u.remaining--
				}
			}
			continue
		}
		if u.remaining <= 0 {
			if u.doneEvent.Posted() {
				u.doneEvent.Wait(w.P) // consume the pending post
			}
			return
		}
		// Stragglers remain on other workers: sleep until the completion
		// post or the next orphan-check tick, whichever comes first.
		u.doneEvent.WaitTimeout(w.P, genPollNs)
	}
}

// Submit enqueues a single task outside any generation — the open-loop
// injection path the workload subsystem uses to run the Uniform System as
// a service: one task per request arrival, paced by the generator's clock,
// with no closed-loop barrier. The caller tracks its own completions (for
// example with a counter inside fn) and drains before returning from the
// program function; remaining is still maintained so the queue-drained
// notification stays coherent (a spurious post is harmless — nothing waits
// on it in service mode).
func (u *US) Submit(w *Worker, fn Task, index int) {
	u.remaining++
	u.enqueueTask(w.P, fn, index)
}

// Shutdown poisons every manager. It is called automatically when the
// program function returns.
func (u *US) Shutdown(w *Worker) {
	for range u.managers {
		u.taskQ.Enqueue(w.P, poison)
	}
}

// Stats returns a copy of the instance counters.
func (u *US) Stats() Stats { return u.stats }

// Workers returns the worker contexts (index 0 is the generator).
func (u *US) Workers() []*Worker { return u.workers }

// MaxSharedBytes is the ceiling on globally shared memory under the Uniform
// System on the Butterfly-I: all managers share one memory map of at most
// 256 segments of 64 KB — 16 MB, out of a possible gigabyte (§2.3).
const MaxSharedBytes = 256 * 64 * 1024

// ErrSharedLimit reports exhaustion of the 16 MB shared address space.
var ErrSharedLimit = errors.New("us: shared memory limit (16 MB) exceeded")

// Alloc charges for a shared-memory allocation of size bytes homed on the
// given node and returns an opaque region id. With the serial allocator all
// requests from all workers funnel through one lock on node 0; with the
// parallel allocator each worker uses its node-local lock (Ellis & Olson).
func (u *US) Alloc(w *Worker, node, size int) (int, error) {
	w.P.Sync() // observe the shared heap at the caller's true time
	if u.allocated+int64(size) > MaxSharedBytes {
		return 0, ErrSharedLimit
	}
	u.stats.AllocRequests++
	lock := u.allocLocks[0]
	if u.Cfg.ParallelAlloc {
		lock = u.allocLocks[w.ID]
	}
	lock.Lock(w.P)
	w.P.Advance(u.Cfg.AllocHoldNs)
	u.allocated += int64(size)
	lock.Unlock(w.P)
	return int(u.allocated), nil
}

// Scatter describes data spread round-robin across the first Limit node
// memories — "scatter data throughout the shared memory". Row i of a
// scattered structure lives on node Nodes[i].
type Scatter struct {
	Nodes []int
	Limit int
}

// ScatterRows allocates n rows of rowBytes each, spread round-robin over the
// first limit memories (limit <= 0 means all workers' nodes). Spreading over
// more memories reduces contention — experiment E4 measures the >30%
// improvement the paper reports for Gaussian elimination.
func (u *US) ScatterRows(w *Worker, n, rowBytes, limit int) (*Scatter, error) {
	if limit <= 0 || limit > u.OS.M.N() {
		limit = u.Cfg.Workers
	}
	s := &Scatter{Nodes: make([]int, n), Limit: limit}
	for i := 0; i < n; i++ {
		node := i % limit
		if _, err := u.Alloc(w, node, rowBytes); err != nil {
			return nil, err
		}
		s.Nodes[i] = node
	}
	return s, nil
}

// NodeOf returns the home node of row i.
func (s *Scatter) NodeOf(i int) int { return s.Nodes[i] }
