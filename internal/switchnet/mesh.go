package switchnet

import "butterfly/internal/calendar"

// MeshNet is a 2D mesh: nodes occupy a near-square W x H grid (node id i at
// column i mod W, row i / W) joined by directed links between neighbours.
// Routing is dimension-order — the packet first walks the X dimension to the
// destination column, then the Y dimension to the destination row — which is
// deadlock-free and makes every route a pure function of the endpoints, so
// link contention is deterministic.
//
// Calibration: a mesh router is far simpler than a 4x4 butterfly element, so
// each hop costs half a HopLatency; what the mesh loses is hop count — the
// diameter grows as 2*sqrt(N) instead of log4(N), which is exactly the NUMA
// cliff the streamnuma experiment charts.
type MeshNet struct {
	netBase
	w, h int
	// links[d*w*h + cell] is the directed link leaving cell (y*w + x) in
	// direction d.
	links []calendar.Calendar
	hopNs int64
}

// Link directions. The link id alone names a physical link (direction and
// cell are both encoded in it), so PathPorts uses a single stage identifier
// of 0 for every hop — two paths share a calendar exactly when they share a
// (stage, link) pair, the contract the routing-invariant tests rely on.
const (
	meshEast = iota
	meshWest
	meshNorth
	meshSouth
)

// NewMesh builds the smallest near-square mesh holding cfg.Nodes nodes.
func NewMesh(cfg Config) *MeshNet {
	if cfg.Nodes <= 0 {
		panic("switchnet: node count must be positive")
	}
	if cfg.Nodes > maxNodes {
		panic("switchnet: node count exceeds the supported maximum")
	}
	w := 1
	for w*w < cfg.Nodes {
		w++
	}
	h := (cfg.Nodes + w - 1) / w
	m := &MeshNet{
		netBase: netBase{cfg: cfg},
		w:       w,
		h:       h,
		links:   make([]calendar.Calendar, 4*w*h),
		hopNs:   cfg.HopLatency / 2,
	}
	if m.hopNs < 1 {
		m.hopNs = 1
	}
	return m
}

// Name identifies the topology family.
func (m *MeshNet) Name() Topology { return Mesh }

// Width returns the mesh's column count.
func (m *MeshNet) Width() int { return m.w }

// Stages returns the diameter in hops: corner to corner.
func (m *MeshNet) Stages() int { return (m.w - 1) + (m.h - 1) }

// UncontendedNs is the idle-network latency of a diameter path.
func (m *MeshNet) UncontendedNs(bytes int) int64 {
	return int64(m.Stages())*m.hopNs + m.serviceNs(bytes)
}

// linkFrom is the directed link leaving cell in direction d.
func (m *MeshNet) linkFrom(cell, d int) int { return d*m.w*m.h + cell }

// pathAppend walks the dimension-order route, appending one
// (hop-index, link) pair per hop.
func (m *MeshNet) pathAppend(src, dst int, buf [][2]int) [][2]int {
	if src == dst {
		return buf
	}
	m.checkRoute(src, dst)
	x, y := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	for x != dx {
		d := meshEast
		if dx < x {
			d = meshWest
		}
		buf = append(buf, [2]int{0, m.linkFrom(y*m.w+x, d)})
		if dx < x {
			x--
		} else {
			x++
		}
	}
	for y != dy {
		d := meshNorth
		if dy < y {
			d = meshSouth
		}
		buf = append(buf, [2]int{0, m.linkFrom(y*m.w+x, d)})
		if dy < y {
			y--
		} else {
			y++
		}
	}
	return buf
}

// PathPorts reports the (stage, link) pairs a src->dst packet occupies;
// the mesh's stage is always 0 (see the direction constants above).
func (m *MeshNet) PathPorts(src, dst int) [][2]int {
	return m.pathAppend(src, dst, nil)
}

// cal resolves a (stage, link) pair to its calendar; the mesh's stage is
// the hop index, so only the link id matters.
func (m *MeshNet) cal(_, link int) *calendar.Calendar {
	return &m.links[link]
}

func (m *MeshNet) reserveHop(stage, link int, t, svc int64) int64 {
	start := m.links[link].Reserve(t, svc)
	m.stats.ContentionNs += start - t
	if pr := m.probe; pr != nil {
		pr.SwitchHop(start, svc, start-t, stage, link)
	}
	m.stats.TotalHops++
	return start
}

func (m *MeshNet) hopLatencyNs(int) int64 { return m.hopNs }

// Transit routes a packet in dimension order, reserving each link. The
// per-hop scratch is stack-allocated up to the diameter of a 4096-node mesh.
func (m *MeshNet) Transit(now int64, src, dst, bytes int) int64 {
	if src == dst {
		return now
	}
	var hops [126][2]int
	var path [][2]int
	if m.Stages() <= len(hops) {
		path = m.pathAppend(src, dst, hops[:0])
	} else {
		path = m.pathAppend(src, dst, nil)
	}
	m.stats.Packets++
	svc := m.serviceNs(bytes)
	t := now
	for _, hp := range path {
		start := m.reserveHop(hp[0], hp[1], t, svc)
		t = start + m.hopNs
	}
	return t + svc
}

// Prune discards link reservations that ended before now.
func (m *MeshNet) Prune(now int64) {
	for i := range m.links {
		m.links[i].PruneBefore(now)
	}
}
