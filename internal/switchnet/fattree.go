package switchnet

import "butterfly/internal/calendar"

// FatTreeNet is a k-ary full-bisection folded tree (a Clos network of the
// kind modern datacenter fabrics build): nodes are the leaves of a radix-4
// tree, a packet climbs to the least common ancestor of source and
// destination and descends. Full bisection means a level-l subtree has one
// parallel up-link (and one down-link) per node it contains; a packet picks
// among the parallel up-links by the destination's low digits and among the
// down-links by the source's — destination-based ("d-mod-k") routing, which
// spreads any shift permutation with zero internal contention while all
// traffic to one node still converges on that node's unique terminal link.
//
// Calibration: each hop costs half a butterfly stage (HopLatency/2), so the
// worst-case climb-plus-descend (2·levels hops) matches the latency of a
// butterfly traversal built from the same link technology.
type FatTreeNet struct {
	netBase
	// levels is the tree height: ceil(log4 nodes), minimum 1.
	levels int
	// size is the rounded leaf space, Radix^levels; link ids live in
	// [0, size) at every level.
	size int
	pow  [maxStages + 1]int
	// up[l][w] / down[l][w] are the reservation calendars of the parallel
	// links between level l and level l+1, indexed by wire position w:
	// the link's subtree base plus the digit-selected parallel offset.
	up, down [][]calendar.Calendar
	hopNs    int64
}

// NewFatTree builds a fat-tree over the shared link calibration. The node
// count is rounded up to a power of 4 exactly like the butterfly (Geometry).
func NewFatTree(cfg Config) *FatTreeNet {
	levels, size := Geometry(cfg.Nodes)
	f := &FatTreeNet{
		netBase: netBase{cfg: cfg},
		levels:  levels,
		size:    size,
		up:      make([][]calendar.Calendar, levels),
		down:    make([][]calendar.Calendar, levels),
		hopNs:   cfg.HopLatency / 2,
	}
	if f.hopNs < 1 {
		f.hopNs = 1
	}
	for l := 0; l < levels; l++ {
		f.up[l] = make([]calendar.Calendar, size)
		f.down[l] = make([]calendar.Calendar, size)
	}
	f.pow[0] = 1
	for i := 1; i <= maxStages; i++ {
		f.pow[i] = f.pow[i-1] * Radix
	}
	return f
}

// Name identifies the topology family.
func (f *FatTreeNet) Name() Topology { return FatTree }

// Stages returns the diameter in hops: a full climb and descent.
func (f *FatTreeNet) Stages() int { return 2 * f.levels }

// UncontendedNs is the idle-network latency of a diameter path.
func (f *FatTreeNet) UncontendedNs(bytes int) int64 {
	return int64(2*f.levels)*f.hopNs + f.serviceNs(bytes)
}

// lcaHeight is the climb height of a src->dst packet: the smallest h with
// src and dst in the same level-h subtree (1..levels for src != dst).
func (f *FatTreeNet) lcaHeight(src, dst int) int {
	h := 1
	for src/f.pow[h] != dst/f.pow[h] {
		h++
	}
	return h
}

// upWire is the up-link a src->dst packet takes from level l to l+1: the
// packet's level-l subtree owns pow[l] parallel up-links and the
// destination's low digits pick one, so traffic fanning out of a subtree
// spreads across its full bisection.
func (f *FatTreeNet) upWire(src, dst, l int) int {
	b := f.pow[l]
	return src - src%b + dst%b
}

// downWire is the down-link from level l+1 into dst's level-l subtree; the
// source's low digits pick among the pow[l] parallel links. At l = 0 this is
// dst itself — the node's unique terminal link, where hot-spot traffic
// converges.
func (f *FatTreeNet) downWire(src, dst, l int) int {
	b := f.pow[l]
	return dst - dst%b + src%b
}

// Stage identifiers: stage l in [0, levels) is the up-link at level l;
// stage levels+l is the down-link at level l.

// Transit routes a packet up to the LCA and down, reserving each link.
func (f *FatTreeNet) Transit(now int64, src, dst, bytes int) int64 {
	if src == dst {
		return now
	}
	f.checkRoute(src, dst)
	f.stats.Packets++
	svc := f.serviceNs(bytes)
	t := now
	h := f.lcaHeight(src, dst)
	for l := 0; l < h; l++ {
		start := f.reserveHop(l, f.upWire(src, dst, l), t, svc)
		t = start + f.hopNs
	}
	for l := h - 1; l >= 0; l-- {
		start := f.reserveHop(f.levels+l, f.downWire(src, dst, l), t, svc)
		t = start + f.hopNs
	}
	return t + svc
}

// PathPorts reports the (stage, link) pairs a src->dst packet occupies.
func (f *FatTreeNet) PathPorts(src, dst int) [][2]int {
	return f.pathAppend(src, dst, nil)
}

func (f *FatTreeNet) pathAppend(src, dst int, buf [][2]int) [][2]int {
	if src == dst {
		return buf
	}
	f.checkRoute(src, dst)
	h := f.lcaHeight(src, dst)
	for l := 0; l < h; l++ {
		buf = append(buf, [2]int{l, f.upWire(src, dst, l)})
	}
	for l := h - 1; l >= 0; l-- {
		buf = append(buf, [2]int{f.levels + l, f.downWire(src, dst, l)})
	}
	return buf
}

// cal resolves a (stage, link) pair to its calendar.
func (f *FatTreeNet) cal(stage, link int) *calendar.Calendar {
	if stage < f.levels {
		return &f.up[stage][link]
	}
	return &f.down[stage-f.levels][link]
}

func (f *FatTreeNet) reserveHop(stage, link int, t, svc int64) int64 {
	start := f.cal(stage, link).Reserve(t, svc)
	f.stats.ContentionNs += start - t
	if pr := f.probe; pr != nil {
		pr.SwitchHop(start, svc, start-t, stage, link)
	}
	f.stats.TotalHops++
	return start
}

func (f *FatTreeNet) hopLatencyNs(int) int64 { return f.hopNs }

// Prune discards link reservations that ended before now.
func (f *FatTreeNet) Prune(now int64) {
	for l := range f.up {
		for w := range f.up[l] {
			f.up[l][w].PruneBefore(now)
			f.down[l][w].PruneBefore(now)
		}
	}
}
