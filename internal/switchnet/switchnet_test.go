package switchnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStages(t *testing.T) {
	cases := []struct{ nodes, stages int }{
		{1, 1}, {2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {64, 3}, {128, 4}, {256, 4},
	}
	for _, c := range cases {
		n := New(DefaultConfig(c.nodes))
		if n.Stages() != c.stages {
			t.Errorf("nodes=%d: stages=%d, want %d", c.nodes, n.Stages(), c.stages)
		}
	}
}

func TestLocalTransferFree(t *testing.T) {
	n := New(DefaultConfig(16))
	if got := n.Transit(1000, 3, 3, 64); got != 1000 {
		t.Errorf("local transit = %d, want 1000", got)
	}
	if n.Stats().Packets != 0 {
		t.Error("local transfer counted as packet")
	}
}

func TestUncontendedLatency(t *testing.T) {
	cfg := DefaultConfig(64) // 3 stages
	n := New(cfg)
	bytes := 4
	svc := int64(bytes) * 1e9 / cfg.BytesPerSecond
	want := 3*cfg.HopLatency + svc
	got := n.Transit(0, 0, 63, bytes)
	if got != want {
		t.Errorf("transit = %d, want %d", got, want)
	}
}

func TestRouteDigitExchange(t *testing.T) {
	// On a 16-node net (2 stages), the final port must equal the
	// destination position, and the first stage replaces the high digit.
	n := New(DefaultConfig(16))
	ports := n.PathPorts(5, 10) // 5 = 11_4, 10 = 22_4
	if len(ports) != 2 {
		t.Fatalf("path length = %d, want 2", len(ports))
	}
	// After stage 0: high digit from dst (2), low from src (1) -> 2*4+1 = 9.
	if ports[0] != [2]int{0, 9} {
		t.Errorf("stage0 port = %v, want {0 9}", ports[0])
	}
	// After stage 1: fully destination -> 10.
	if ports[1] != [2]int{1, 10} {
		t.Errorf("stage1 port = %v, want {1 10}", ports[1])
	}
}

func TestFinalPortIsDestination(t *testing.T) {
	// Property: the last hop's port always equals the destination address.
	check := func(srcRaw, dstRaw uint8) bool {
		n := New(DefaultConfig(64))
		src, dst := int(srcRaw)%64, int(dstRaw)%64
		if src == dst {
			return true
		}
		ports := n.PathPorts(src, dst)
		return ports[len(ports)-1][1] == dst
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	// Two transfers between disjoint node pairs whose paths share no port
	// must not delay each other.
	n := New(DefaultConfig(16))
	a := n.Transit(0, 0, 15, 100)
	// Find a pair with a disjoint path.
	p1 := map[[2]int]bool{}
	for _, p := range n.PathPorts(0, 15) {
		p1[p] = true
	}
	src2, dst2 := -1, -1
search:
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d || (s == 0 && d == 15) {
				continue
			}
			disjoint := true
			for _, p := range n.PathPorts(s, d) {
				if p1[p] {
					disjoint = false
					break
				}
			}
			if disjoint {
				src2, dst2 = s, d
				break search
			}
		}
	}
	if src2 < 0 {
		t.Fatal("no disjoint pair found")
	}
	b := n.Transit(0, src2, dst2, 100)
	if a != b {
		t.Errorf("disjoint transfers differ: %d vs %d", a, b)
	}
	if n.Stats().ContentionNs != 0 {
		t.Errorf("contention = %d, want 0", n.Stats().ContentionNs)
	}
}

func TestSharedPortContention(t *testing.T) {
	// Two packets to the same destination at the same instant: the second
	// waits for the first at the shared final port.
	n := New(DefaultConfig(16))
	first := n.Transit(0, 1, 9, 100)
	second := n.Transit(0, 2, 9, 100)
	if second <= first {
		t.Errorf("second (%d) should finish after first (%d)", second, first)
	}
	if n.Stats().ContentionNs == 0 {
		t.Error("no contention recorded")
	}
}

func TestContentionLowUnderRandomTraffic(t *testing.T) {
	// The paper's E6 claim: with random destinations, switch contention is a
	// small fraction of transit time. Load the network at a realistic rate
	// (each node issues a remote reference every ~16 us, i.e. a mostly-local
	// program) and check the added delay.
	cfg := DefaultConfig(128)
	n := New(cfg)
	rng := rand.New(rand.NewSource(1))
	var total, base int64
	now := int64(0)
	for i := 0; i < 20000; i++ {
		src := rng.Intn(128)
		dst := rng.Intn(128)
		if src == dst {
			continue
		}
		done := n.Transit(now, src, dst, 4)
		total += done - now
		base += int64(n.Stages())*cfg.HopLatency + 4*1e9/cfg.BytesPerSecond
		now += 16000 / 128
	}
	overhead := float64(total-base) / float64(base)
	if overhead > 0.25 {
		t.Errorf("switch contention overhead %.1f%% too high for random traffic", overhead*100)
	}
}

func TestStatsAndReset(t *testing.T) {
	n := New(DefaultConfig(16))
	n.Transit(0, 0, 5, 10)
	if n.Stats().Packets != 1 || n.Stats().TotalHops != 2 {
		t.Errorf("stats = %+v", n.Stats())
	}
	n.ResetStats()
	if n.Stats().Packets != 0 {
		t.Error("ResetStats failed")
	}
}

func TestBadRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range route did not panic")
		}
	}()
	n := New(DefaultConfig(4))
	n.Transit(0, 0, 7, 1)
}

func TestDigit(t *testing.T) {
	// 27 = 123 base 4
	if digit(27, 0) != 3 || digit(27, 1) != 2 || digit(27, 2) != 1 {
		t.Errorf("digit(27) = %d,%d,%d", digit(27, 0), digit(27, 1), digit(27, 2))
	}
}
