package switchnet

import (
	"fmt"

	"butterfly/internal/probe"
)

// Topology names one of the interconnect families the machine can be wired
// with. The zero value selects the Butterfly's own multistage network, so
// configurations that predate the topology axis keep their exact behaviour.
type Topology string

const (
	// Butterfly is the paper's machine: a radix-4 multistage
	// digit-exchange network (the default).
	Butterfly Topology = "butterfly"
	// FatTree is a k-ary full-bisection folded tree (Clos): packets climb
	// to the least common ancestor and descend, choosing among the
	// parallel links by destination (up) and source (down) digits.
	FatTree Topology = "fattree"
	// Dragonfly is a two-level hierarchy: groups of routers joined by an
	// all-to-all web of long global links, minimal local-global-local
	// routing.
	Dragonfly Topology = "dragonfly"
	// Mesh is a 2D mesh with dimension-order (X then Y) routing and one
	// calendar per directed neighbour link.
	Mesh Topology = "mesh"
)

// Topologies lists the supported topology names in presentation order.
func Topologies() []Topology {
	return []Topology{Butterfly, FatTree, Dragonfly, Mesh}
}

// ParseTopology validates a topology name; "" means Butterfly.
func ParseTopology(s string) (Topology, error) {
	switch t := Topology(s); t {
	case "", Butterfly:
		return Butterfly, nil
	case FatTree, Dragonfly, Mesh:
		return t, nil
	}
	return "", fmt.Errorf("switchnet: unknown topology %q (have butterfly, fattree, dragonfly, mesh)", s)
}

// Interconnect is the interface the machine layer programs against: any
// network that can route a packet between two nodes with deterministic
// per-link contention. All implementations in this package model contention
// with calendar.Calendar reservations, so packets may be booked into the
// virtual future without falsely serializing later-issued, earlier-timed
// traffic — the property the two-tier time-charging layers depend on.
type Interconnect interface {
	// Name identifies the topology family.
	Name() Topology
	// Nodes is the number of processing nodes attached.
	Nodes() int
	// Transit routes a packet of the given size from src to dst starting
	// at virtual time now and returns the delivery time, booking link
	// occupancy along the path. src == dst is a zero-cost local transfer.
	Transit(now int64, src, dst, bytes int) int64
	// Stages returns the worst-case number of link hops a packet
	// traverses end to end (the network diameter in hops).
	Stages() int
	// UncontendedNs is the fixed end-to-end latency of a packet on an
	// idle network along a worst-case (diameter) path — the constant the
	// NoSwitchContention shortcut charges instead of reserving links.
	UncontendedNs(bytes int) int64
	// Stats returns a copy of the accumulated counters.
	Stats() Stats
	// ResetStats zeroes the counters (link occupancy is retained).
	ResetStats()
	// SetProbe attaches an observability probe (nil detaches).
	SetProbe(p *probe.Probe)
	// NoteDrops records packet drops injected by the fault layer.
	NoteDrops(drops int)
	// Prune discards link reservations that ended before now.
	Prune(now int64)
	// PathPorts reports the (stage, link) pairs a src->dst packet
	// occupies, in traversal order. Stage identifiers are
	// topology-specific but stable, and (stage, link) names exactly the
	// calendar Transit reserves at that hop.
	PathPorts(src, dst int) [][2]int
}

// linkReserver is the internal capability the Combining wrapper builds on:
// alloc-free path enumeration plus direct per-hop reservation with the same
// stats and probe accounting Transit performs. Every topology in this
// package implements it.
type linkReserver interface {
	Interconnect
	// pathAppend appends the (stage, link) hops of src->dst to buf.
	pathAppend(src, dst int, buf [][2]int) [][2]int
	// reserveHop books one packet of service time svc onto the hop's
	// calendar no earlier than t, returning the reservation start. It
	// accounts contention, hop counters, and the probe exactly as a
	// Transit through that hop would.
	reserveHop(stage, link int, t, svc int64) int64
	// hopLatencyNs is the propagation delay of one hop at the given stage.
	hopLatencyNs(stage int) int64
	// serviceNs is how long a packet of the given size occupies one link.
	serviceNs(bytes int) int64
	// notePacket counts one routed packet (Transit does this implicitly).
	notePacket()
}

// Every topology supports combining (linkReserver is the capability
// NewCombining requires).
var (
	_ linkReserver = (*Network)(nil)
	_ linkReserver = (*FatTreeNet)(nil)
	_ linkReserver = (*DragonflyNet)(nil)
	_ linkReserver = (*MeshNet)(nil)
)

// Build constructs the named topology over the shared link calibration.
// Config.HopLatency and Config.BytesPerSecond describe the link technology
// (a Butterfly-I switch stage); each topology derives its own geometry and
// per-hop timing from them, so one calibration is meaningful across all
// families. An empty topology name builds the Butterfly.
func Build(t Topology, cfg Config) Interconnect {
	switch t {
	case "", Butterfly:
		return New(cfg)
	case FatTree:
		return NewFatTree(cfg)
	case Dragonfly:
		return NewDragonfly(cfg)
	case Mesh:
		return NewMesh(cfg)
	}
	panic(fmt.Sprintf("switchnet: unknown topology %q", t))
}

// netBase carries the state and accounting every topology shares.
type netBase struct {
	cfg   Config
	stats Stats
	// probe, when non-nil, observes every link traversal (occupancy and
	// queueing per stage/link). Purely observational.
	probe *probe.Probe
}

// Config returns the network configuration.
func (b *netBase) Config() Config { return b.cfg }

// Nodes returns the number of attached processing nodes.
func (b *netBase) Nodes() int { return b.cfg.Nodes }

// Stats returns a copy of the accumulated counters.
func (b *netBase) Stats() Stats { return b.stats }

// ResetStats zeroes the accumulated counters (link occupancy is retained).
func (b *netBase) ResetStats() { b.stats = Stats{} }

// SetProbe attaches an observability probe (nil detaches).
func (b *netBase) SetProbe(p *probe.Probe) { b.probe = p }

// NoteDrops records n packet drops injected by the fault layer. The machine
// charges the retransmission latency itself (the retried packets never
// re-reserve links — a modelling simplification that keeps drop recovery out
// of the link calendars); the network only keeps the count so switch
// statistics reflect the loss.
func (b *netBase) NoteDrops(drops int) {
	if drops > 0 {
		b.stats.Dropped += uint64(drops)
	}
}

func (b *netBase) notePacket() { b.stats.Packets++ }

// serviceNs returns how long a packet of the given size occupies one link.
func (b *netBase) serviceNs(bytes int) int64 {
	if bytes <= 0 {
		bytes = 1
	}
	return int64(bytes) * 1_000_000_000 / b.cfg.BytesPerSecond
}

// checkRoute validates a src->dst pair against the node range.
func (b *netBase) checkRoute(src, dst int) {
	if src < 0 || src >= b.cfg.Nodes || dst < 0 || dst >= b.cfg.Nodes {
		panic(fmt.Sprintf("switchnet: route %d->%d outside 0..%d", src, dst, b.cfg.Nodes-1))
	}
}
