package switchnet

import "butterfly/internal/calendar"

// Dragonfly geometry: groups of dfRouters routers, each concentrating
// dfNodesPerRouter processing nodes, with an all-to-all web of global links
// between groups. The 4x4 group mirrors the radix-4 switch elements of the
// rest of the package.
const (
	dfRouters        = 4 // routers per group ("a" in the dragonfly papers)
	dfNodesPerRouter = 4 // nodes per router ("p")
	dfGroupSize      = dfRouters * dfNodesPerRouter
)

// dfGlobalHopFactor scales HopLatency for the long inter-group links.
const dfGlobalHopFactor = 4

// Stage identifiers for PathPorts:
const (
	dfStageTermOut = 0 // terminal link out of the source node
	dfStageLocal1  = 1 // source router -> gateway router
	dfStageGlobal  = 2 // global link between groups
	dfStageLocal2  = 3 // gateway router -> destination router
	dfStageTermIn  = 4 // terminal link into the destination node
)

// DragonflyNet is a two-level direct network: short local links form a
// complete graph inside each group, and long global links form a complete
// graph between groups. Minimal routing takes at most five hops — terminal
// out, local to the gateway router, global, local to the destination router,
// terminal in — with the gateway for group pair (i, j) pinned to router
// j mod a in group i (and i mod a in group j), so routes are a pure function
// of the endpoints and contention is deterministic.
//
// Calibration: terminal and local hops cost one HopLatency; the long global
// links cost dfGlobalHopFactor times that, reflecting their physical length.
type DragonflyNet struct {
	netBase
	groups int
	// term[n] is node n's terminal link (shared by injection and delivery;
	// all hot-spot traffic to one node converges here).
	term []calendar.Calendar
	// local[g*a*a + from*a + to] is the directed local link between two
	// routers of group g.
	local []calendar.Calendar
	// global[i*groups + j] is the directed global link from group i to j.
	global   []calendar.Calendar
	hopNs    int64
	globalNs int64
}

// NewDragonfly builds a dragonfly over the shared link calibration. Any
// positive node count is supported; the last group may be partially
// populated (real machines ship the same way).
func NewDragonfly(cfg Config) *DragonflyNet {
	if cfg.Nodes <= 0 {
		panic("switchnet: node count must be positive")
	}
	if cfg.Nodes > maxNodes {
		panic("switchnet: node count exceeds the supported maximum")
	}
	groups := (cfg.Nodes + dfGroupSize - 1) / dfGroupSize
	return &DragonflyNet{
		netBase:  netBase{cfg: cfg},
		groups:   groups,
		term:     make([]calendar.Calendar, cfg.Nodes),
		local:    make([]calendar.Calendar, groups*dfRouters*dfRouters),
		global:   make([]calendar.Calendar, groups*groups),
		hopNs:    cfg.HopLatency,
		globalNs: cfg.HopLatency * dfGlobalHopFactor,
	}
}

// Name identifies the topology family.
func (d *DragonflyNet) Name() Topology { return Dragonfly }

// Stages returns the diameter in hops of the minimal route.
func (d *DragonflyNet) Stages() int { return 5 }

// UncontendedNs is the idle-network latency of a diameter path: two terminal
// hops, two local hops, and one global hop.
func (d *DragonflyNet) UncontendedNs(bytes int) int64 {
	return 4*d.hopNs + d.globalNs + d.serviceNs(bytes)
}

// router returns a node's (group, router-within-group) coordinates.
func router(node int) (g, r int) {
	return node / dfGroupSize, (node % dfGroupSize) / dfNodesPerRouter
}

// gateway returns the router in group g that owns the global link to group h.
func gateway(_, h int) int { return h % dfRouters }

// localWire is the directed local link from router fr to router to in group g.
func (d *DragonflyNet) localWire(g, fr, to int) int {
	return g*dfRouters*dfRouters + fr*dfRouters + to
}

// pathAppend enumerates the minimal route's hops, skipping the ones a route
// does not need (same router: terminal hops only; same group: no global
// link; a source or destination router that is itself the gateway: no local
// hop on that side).
func (d *DragonflyNet) pathAppend(src, dst int, buf [][2]int) [][2]int {
	if src == dst {
		return buf
	}
	d.checkRoute(src, dst)
	sg, sr := router(src)
	dg, dr := router(dst)
	buf = append(buf, [2]int{dfStageTermOut, src})
	if sg == dg {
		if sr != dr {
			buf = append(buf, [2]int{dfStageLocal1, d.localWire(sg, sr, dr)})
		}
	} else {
		gw := gateway(sg, dg)
		if sr != gw {
			buf = append(buf, [2]int{dfStageLocal1, d.localWire(sg, sr, gw)})
		}
		buf = append(buf, [2]int{dfStageGlobal, sg*d.groups + dg})
		gw2 := gateway(dg, sg)
		if gw2 != dr {
			buf = append(buf, [2]int{dfStageLocal2, d.localWire(dg, gw2, dr)})
		}
	}
	return append(buf, [2]int{dfStageTermIn, dst})
}

// PathPorts reports the (stage, link) pairs a src->dst packet occupies.
func (d *DragonflyNet) PathPorts(src, dst int) [][2]int {
	return d.pathAppend(src, dst, nil)
}

// cal resolves a (stage, link) pair to its calendar.
func (d *DragonflyNet) cal(stage, link int) *calendar.Calendar {
	switch stage {
	case dfStageTermOut, dfStageTermIn:
		return &d.term[link]
	case dfStageGlobal:
		return &d.global[link]
	}
	return &d.local[link]
}

func (d *DragonflyNet) reserveHop(stage, link int, t, svc int64) int64 {
	start := d.cal(stage, link).Reserve(t, svc)
	d.stats.ContentionNs += start - t
	if pr := d.probe; pr != nil {
		pr.SwitchHop(start, svc, start-t, stage, link)
	}
	d.stats.TotalHops++
	return start
}

func (d *DragonflyNet) hopLatencyNs(stage int) int64 {
	if stage == dfStageGlobal {
		return d.globalNs
	}
	return d.hopNs
}

// Transit routes a packet along the minimal route, reserving each link.
func (d *DragonflyNet) Transit(now int64, src, dst, bytes int) int64 {
	if src == dst {
		return now
	}
	var hops [5][2]int
	path := d.pathAppend(src, dst, hops[:0])
	d.stats.Packets++
	svc := d.serviceNs(bytes)
	t := now
	for _, hp := range path {
		start := d.reserveHop(hp[0], hp[1], t, svc)
		t = start + d.hopLatencyNs(hp[0])
	}
	return t + svc
}

// Prune discards link reservations that ended before now.
func (d *DragonflyNet) Prune(now int64) {
	for i := range d.term {
		d.term[i].PruneBefore(now)
	}
	for i := range d.local {
		d.local[i].PruneBefore(now)
	}
	for i := range d.global {
		d.global[i].PruneBefore(now)
	}
}
