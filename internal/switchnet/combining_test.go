package switchnet

import "testing"

// faaService returns a module-service stub that counts invocations: each
// request the module actually sees costs cycleNs.
func faaService(count *int, cycleNs int64) func(int64) int64 {
	return func(arrive int64) int64 {
		*count++
		return arrive + cycleNs
	}
}

func TestCombiningMergesConcurrentRequests(t *testing.T) {
	c := NewCombining(New(DefaultConfig(64)), DefaultCombiningConfig())
	mod := 0
	parent := c.FetchAdd(0, 5, 0, 0, faaService(&mod, 2000))
	child := c.FetchAdd(100, 9, 0, 0, faaService(&mod, 2000))
	if mod != 1 {
		t.Fatalf("module saw %d requests, want 1 (second combined in-network)", mod)
	}
	st := c.Stats()
	if st.Requests != 2 || st.Combined != 1 || st.SavedHops == 0 {
		t.Errorf("stats = %+v, want 2 requests, 1 combined, hops saved", st)
	}
	if child <= 100 || parent <= 0 {
		t.Errorf("non-causal completion times: parent %d, child %d", parent, child)
	}
}

func TestCombiningWindowCloses(t *testing.T) {
	c := NewCombining(New(DefaultConfig(64)), DefaultCombiningConfig())
	mod := 0
	c.FetchAdd(0, 5, 0, 0, faaService(&mod, 2000))
	// Far outside every wait-buffer window: must travel to the module.
	c.FetchAdd(1_000_000, 9, 0, 0, faaService(&mod, 2000))
	if mod != 2 {
		t.Fatalf("module saw %d requests, want 2 (window closed)", mod)
	}
	if st := c.Stats(); st.Combined != 0 {
		t.Errorf("combined %d requests across a closed window", st.Combined)
	}
}

func TestCombiningDistinguishesWords(t *testing.T) {
	c := NewCombining(New(DefaultConfig(64)), DefaultCombiningConfig())
	mod := 0
	c.FetchAdd(0, 5, 0, 0, faaService(&mod, 2000))
	c.FetchAdd(100, 9, 0, 1, faaService(&mod, 2000)) // same module, other word
	if mod != 2 {
		t.Fatalf("module saw %d requests, want 2 (different words never merge)", mod)
	}
}

func TestCombiningLocalBypassesNetwork(t *testing.T) {
	c := NewCombining(New(DefaultConfig(64)), DefaultCombiningConfig())
	mod := 0
	if got := c.FetchAdd(500, 7, 7, 0, faaService(&mod, 2000)); got != 2500 {
		t.Errorf("local fetch-and-add completed at %d, want 2500", got)
	}
	if st := c.Stats(); st.Requests != 0 {
		t.Errorf("local op entered the network: %+v", st)
	}
}

// TestCombiningTransitive: a combined request deposits its own wait-buffer
// entries, so a third request from its subtree merges against it rather than
// climbing to the original parent's path — combining is a tree, not a chain.
func TestCombiningTransitive(t *testing.T) {
	c := NewCombining(New(DefaultConfig(256)), DefaultCombiningConfig())
	mod := 0
	c.FetchAdd(0, 1, 0, 0, faaService(&mod, 2000))
	// 64 and 65 share early stages with each other but join node 1's path
	// only near the destination.
	c.FetchAdd(50, 64, 0, 0, faaService(&mod, 2000))
	before := c.Stats().SavedHops
	c.FetchAdd(120, 65, 0, 0, faaService(&mod, 2000))
	st := c.Stats()
	if mod != 1 || st.Combined != 2 {
		t.Fatalf("module=%d combined=%d, want 1 and 2", mod, st.Combined)
	}
	if st.SavedHops <= before {
		t.Errorf("third request saved no hops (SavedHops %d -> %d)", before, st.SavedHops)
	}
}

// TestCombiningAllTopologies: the combining layer is generic over every
// family that exposes link reservations.
func TestCombiningAllTopologies(t *testing.T) {
	for _, topo := range Topologies() {
		c := NewCombining(Build(topo, DefaultConfig(64)), DefaultCombiningConfig())
		mod := 0
		c.FetchAdd(0, 33, 0, 0, faaService(&mod, 2000))
		c.FetchAdd(100, 37, 0, 0, faaService(&mod, 2000))
		if mod != 1 {
			t.Errorf("%s: module saw %d requests, want 1", topo, mod)
		}
	}
}

func TestCombiningDeterministicReplay(t *testing.T) {
	run := func() ([]int64, CombineStats) {
		c := NewCombining(New(DefaultConfig(256)), DefaultCombiningConfig())
		mod := 0
		var out []int64
		for i := 0; i < 200; i++ {
			src := 1 + (i*37)%255
			out = append(out, c.FetchAdd(int64(i)*150, src, 0, 0, faaService(&mod, 2000)))
		}
		return out, c.Stats()
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	if sa.Combined == 0 {
		t.Error("storm traffic never combined")
	}
}

func TestCombiningPrune(t *testing.T) {
	c := NewCombining(New(DefaultConfig(64)), DefaultCombiningConfig())
	mod := 0
	c.FetchAdd(0, 5, 0, 0, faaService(&mod, 2000))
	if len(c.pending) == 0 {
		t.Fatal("parent deposited no wait-buffer entries")
	}
	c.Prune(1 << 40)
	if len(c.pending) != 0 {
		t.Errorf("%d wait-buffer entries survived a far-future prune", len(c.pending))
	}
}
