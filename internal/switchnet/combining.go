package switchnet

// In-network combining of fetch-and-add, the NYU Ultracomputer's answer to
// the hot-spot problem the paper's E5 experiment measures. Each switch keeps
// a wait buffer: when a fetch-and-add request passes through an output link
// toward memory, the switch remembers it until the matching reply returns.
// A later fetch-and-add for the same word that reaches that link inside the
// window is merged — it stops climbing, and when the parent's reply passes
// back through the switch it is decombined and descends to its own
// requester. The memory module then sees one request per network round trip
// no matter how many processors hammer the word, which is exactly the
// collapse in port contention and module queueing the combine experiment
// charts.
//
// Determinism: the combine decision is a pure function of the wait-buffer
// state, which is itself a pure function of the (deterministic) sequence of
// FetchAdd calls — the simulator computes each parent's full round trip
// synchronously, so the reply timeline a later request combines against is
// already booked. No randomness, no wall-clock, no map-order dependence
// (records are only read under an exact (stage, link) key).

// faaBytes is the size of a fetch-and-add packet: one 32-bit word.
const faaBytes = 4

// CombiningConfig tunes the combining switches.
type CombiningConfig struct {
	// MergeNs is the ALU cost of merging a request into a wait-buffer
	// entry and of decombining the reply on its way back.
	MergeNs int64
}

// DefaultCombiningConfig: the combine/decombine ALU pass costs a fraction
// of a switch hop (the Ultracomputer design performed it at wire speed).
func DefaultCombiningConfig() CombiningConfig {
	return CombiningConfig{MergeNs: 60}
}

// CombineStats counts combining activity.
type CombineStats struct {
	// Requests is the number of fetch-and-adds that entered the network.
	Requests uint64
	// Combined is how many of them merged into an earlier request at a
	// switch instead of travelling to the memory module.
	Combined uint64
	// SavedHops is the number of link reservations combining avoided —
	// the direct measure of hot-spot traffic removed from the network.
	SavedHops uint64
}

// faaRec is one wait-buffer entry: a parent fetch-and-add remembered at one
// (stage, link) while its reply is outstanding.
type faaRec struct {
	dst, word int
	// start is when the parent's request reserved this link; a request
	// arriving earlier cannot see the entry.
	start int64
	// replyPass is when the parent's reply passes back through this
	// switch; the entry is combinable until then, and a combined
	// request's result leaves the switch at this time.
	replyPass int64
}

// Combining adds combining fetch-and-add switches to an interconnect. It
// shares the underlying topology's link calendars — ordinary packets and
// fetch-and-add packets contend for the same links — and adds only the wait
// buffers. Build one with NewCombining; the machine layer routes Atomic
// traffic through FetchAdd and everything else through the topology as
// usual.
type Combining struct {
	inner linkReserver
	cfg   CombiningConfig
	// pending is the union of all switches' wait buffers, keyed by the
	// (stage, link) a parent request occupies. One entry per link: a new
	// parent through the same link replaces the previous entry (its
	// window has necessarily closed or its traffic has moved on).
	pending map[[2]int]faaRec
	stats   CombineStats
	scratch [][2]int
	starts  []int64
}

// NewCombining wraps an interconnect built by this package with combining
// switches.
func NewCombining(in Interconnect, cfg CombiningConfig) *Combining {
	lr, ok := in.(linkReserver)
	if !ok {
		panic("switchnet: interconnect does not support combining")
	}
	return &Combining{inner: lr, cfg: cfg, pending: make(map[[2]int]faaRec)}
}

// Stats returns a copy of the combining counters.
func (c *Combining) Stats() CombineStats { return c.stats }

// FetchAdd performs the network round trip of one fetch-and-add from src to
// the word-th word of dst's memory, and returns its completion time at src.
// service books the memory module's read-modify-write cycle given the
// request's arrival time and returns when it completes; it is only invoked
// when the request actually reaches the module (a combined request never
// does — that is the point).
func (c *Combining) FetchAdd(now int64, src, dst, word int, service func(arrive int64) int64) int64 {
	if src == dst {
		return service(now)
	}
	c.stats.Requests++
	c.inner.notePacket()
	path := c.inner.pathAppend(src, dst, c.scratch[:0])
	c.scratch = path
	svc := c.inner.serviceNs(faaBytes)
	if cap(c.starts) < len(path) {
		c.starts = make([]int64, len(path))
	}
	starts := c.starts[:len(path)]
	t := now
	var back int64 // latency to descend the hops already climbed
	for i, hp := range path {
		key := [2]int{hp[0], hp[1]}
		if rec, ok := c.pending[key]; ok &&
			rec.dst == dst && rec.word == word && t >= rec.start && t < rec.replyPass {
			// Merge into the wait-buffer entry: the request goes no
			// further; its result rides the parent's reply, is
			// decombined here, and streams back down the links it
			// climbed (charged at idle-path latency — the descent
			// retraces links the request just proved passable).
			c.stats.Combined++
			c.stats.SavedHops += uint64(len(path) - i)
			// Combining is pairwise at every switch: this request now has
			// a reply timeline of its own, so it deposits wait-buffer
			// entries on the links it climbed. A later request from its
			// subtree merges at their first shared switch instead of
			// climbing all the way to the original parent's path — that
			// recursive tree is what collapses hot-spot contention.
			pass := rec.replyPass + c.cfg.MergeNs
			for j := i - 1; j >= 0; j-- {
				hj := path[j]
				pass += c.inner.hopLatencyNs(hj[0])
				c.pending[[2]int{hj[0], hj[1]}] = faaRec{dst: dst, word: word, start: starts[j], replyPass: pass}
			}
			return rec.replyPass + c.cfg.MergeNs + back + svc
		}
		start := c.inner.reserveHop(hp[0], hp[1], t, svc)
		starts[i] = start
		lat := c.inner.hopLatencyNs(hp[0])
		t = start + lat
		back += lat
	}
	arrive := t + svc
	// The parent reaches memory; its reply makes the normal contended trip
	// home while the wait buffers hold its record.
	moduleDone := service(arrive)
	reply := c.inner.Transit(moduleDone, dst, src, faaBytes)
	pass := moduleDone
	for i := len(path) - 1; i >= 0; i-- {
		hp := path[i]
		pass += c.inner.hopLatencyNs(hp[0])
		c.pending[[2]int{hp[0], hp[1]}] = faaRec{dst: dst, word: word, start: starts[i], replyPass: pass}
	}
	return reply
}

// Prune evicts wait-buffer entries whose windows closed before now. The
// underlying topology's calendars are pruned by the machine separately.
func (c *Combining) Prune(now int64) {
	for k, rec := range c.pending {
		if rec.replyPass <= now {
			delete(c.pending, k)
		}
	}
}
