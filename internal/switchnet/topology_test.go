package switchnet

import (
	"math/rand"
	"testing"
)

// buildAll returns one instance of every topology family at the given node
// count, on the shared default calibration.
func buildAll(nodes int) []Interconnect {
	out := make([]Interconnect, 0, len(Topologies()))
	for _, t := range Topologies() {
		out = append(out, Build(t, DefaultConfig(nodes)))
	}
	return out
}

func TestParseTopology(t *testing.T) {
	if tp, err := ParseTopology(""); err != nil || tp != Butterfly {
		t.Errorf("empty string: got (%q, %v), want butterfly", tp, err)
	}
	for _, name := range Topologies() {
		tp, err := ParseTopology(string(name))
		if err != nil || tp != name {
			t.Errorf("ParseTopology(%q) = (%q, %v)", name, tp, err)
		}
	}
	if _, err := ParseTopology("hypercube"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestBuildDispatch(t *testing.T) {
	for _, want := range Topologies() {
		in := Build(want, DefaultConfig(64))
		if in.Name() != want {
			t.Errorf("Build(%q).Name() = %q", want, in.Name())
		}
		if in.Nodes() != 64 {
			t.Errorf("%s: Nodes() = %d, want 64", want, in.Nodes())
		}
	}
	if _, ok := Build(Butterfly, DefaultConfig(16)).(*Network); !ok {
		t.Error("Build(butterfly) did not return the butterfly Network")
	}
}

// TestLocalTransitFreeAllTopologies: a src == dst transfer costs nothing and
// reserves nothing, on every family.
func TestLocalTransitFreeAllTopologies(t *testing.T) {
	for _, in := range buildAll(64) {
		for _, n := range []int{0, 17, 63} {
			if got := in.Transit(1000, n, n, 64); got != 1000 {
				t.Errorf("%s: local transit returned %d, want 1000", in.Name(), got)
			}
			if ports := in.PathPorts(n, n); len(ports) != 0 {
				t.Errorf("%s: local path occupies %d ports", in.Name(), len(ports))
			}
		}
		if s := in.Stats(); s.ContentionNs != 0 || s.TotalHops != 0 {
			t.Errorf("%s: local transfers touched the network: %+v", in.Name(), s)
		}
	}
}

// TestIdleTransitBounds: on an idle network every transit completes within
// the diameter latency, and the butterfly — whose every path crosses all
// stages — lands exactly on it.
func TestIdleTransitBounds(t *testing.T) {
	const bytes = 4
	for _, topo := range Topologies() {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 40; trial++ {
			nodes := []int{16, 64, 256}[trial%3]
			src, dst := rng.Intn(nodes), rng.Intn(nodes)
			if src == dst {
				continue
			}
			in := Build(topo, DefaultConfig(nodes)) // fresh: no prior traffic
			got := in.Transit(0, src, dst, bytes)
			max := in.UncontendedNs(bytes)
			if got <= 0 || got > max {
				t.Fatalf("%s n=%d %d->%d: idle transit %d outside (0, %d]",
					topo, nodes, src, dst, got, max)
			}
			if topo == Butterfly && got != max {
				t.Fatalf("butterfly n=%d %d->%d: idle transit %d != uncontended %d",
					nodes, src, dst, got, max)
			}
		}
	}
}

// TestPathPortsMatchTransit: PathPorts must name the links Transit reserves.
// Two identical packets launched at the same instant share every hop, so the
// second must be strictly delayed — and the delay must show up in the stats.
func TestPathPortsMatchTransit(t *testing.T) {
	for _, in := range buildAll(64) {
		ports := in.PathPorts(3, 44)
		if len(ports) == 0 {
			t.Fatalf("%s: empty path for 3->44", in.Name())
		}
		for i := 1; i < len(ports); i++ {
			if ports[i] == ports[i-1] {
				t.Fatalf("%s: path repeats port %v", in.Name(), ports[i])
			}
		}
		first := in.Transit(0, 3, 44, 4)
		second := in.Transit(0, 3, 44, 4)
		if second <= first {
			t.Errorf("%s: second identical packet finished at %d, not after the first (%d)",
				in.Name(), second, first)
		}
		if in.Stats().ContentionNs <= 0 {
			t.Errorf("%s: full path overlap produced no recorded contention", in.Name())
		}
	}
}

// disjoint reports whether two paths share no (stage, link) pair.
func disjoint(a, b [][2]int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}

// TestDisjointPathsNoContentionAllTopologies: packets on port-disjoint paths
// never delay each other, whatever the family.
func TestDisjointPathsNoContentionAllTopologies(t *testing.T) {
	for _, in := range buildAll(64) {
		// Scan deterministically for two pairs with disjoint paths.
		type pair struct{ s, d int }
		var a, b pair
		found := false
	scan:
		for s1 := 0; s1 < 16 && !found; s1++ {
			for s2 := s1 + 1; s2 < 32; s2++ {
				d1, d2 := (s1+21)%64, (s2+43)%64
				if s1 == d1 || s2 == d2 || d1 == d2 {
					continue
				}
				if disjoint(in.PathPorts(s1, d1), in.PathPorts(s2, d2)) {
					a, b = pair{s1, d1}, pair{s2, d2}
					found = true
					break scan
				}
			}
		}
		if !found {
			t.Fatalf("%s: no disjoint pair found", in.Name())
		}
		in.Transit(0, a.s, a.d, 16)
		in.Transit(0, b.s, b.d, 16)
		if c := in.Stats().ContentionNs; c != 0 {
			t.Errorf("%s: disjoint paths %v and %v contended for %d ns", in.Name(), a, b, c)
		}
	}
}

// TestFatTreeShiftPermutationContentionFree: d-mod routing on a full-
// bisection fat-tree carries any shift permutation (src -> src+k) with zero
// internal contention — the property that separates it from the butterfly,
// where shifts collide (TestSharedPortContention).
func TestFatTreeShiftPermutationContentionFree(t *testing.T) {
	const nodes = 64
	for _, k := range []int{1, 3, 5, 16, 21, 63} {
		f := NewFatTree(DefaultConfig(nodes))
		for src := 0; src < nodes; src++ {
			f.Transit(0, src, (src+k)%nodes, 4)
		}
		if c := f.Stats().ContentionNs; c != 0 {
			t.Errorf("shift by %d: contention %d ns, want 0", k, c)
		}
	}
}

// TestHotSpotConvergesOnTerminalLink: on the indirect families every path to
// one node funnels through a single final link — the physical basis of the
// hot-spot experiments (the mesh's last hop direction varies, so it is
// exempt).
func TestHotSpotConvergesOnTerminalLink(t *testing.T) {
	for _, topo := range []Topology{Butterfly, FatTree, Dragonfly} {
		in := Build(topo, DefaultConfig(64))
		var last [2]int
		for src := 1; src < 64; src++ {
			ports := in.PathPorts(src, 0)
			got := ports[len(ports)-1]
			if src == 1 {
				last = got
			} else if got != last {
				t.Fatalf("%s: path %d->0 ends at %v, others at %v", topo, src, got, last)
			}
		}
	}
}

// TestTopologyDeterministicReplay: identical traffic on a fresh instance
// reproduces identical timings and statistics, for every family.
func TestTopologyDeterministicReplay(t *testing.T) {
	run := func(topo Topology) (int64, Stats) {
		in := Build(topo, DefaultConfig(256))
		rng := rand.New(rand.NewSource(7))
		var sum int64
		for i := 0; i < 500; i++ {
			src, dst := rng.Intn(256), rng.Intn(256)
			sum += in.Transit(int64(i)*200, src, dst, 4+rng.Intn(60))
		}
		return sum, in.Stats()
	}
	for _, topo := range Topologies() {
		s1, st1 := run(topo)
		s2, st2 := run(topo)
		if s1 != s2 || st1 != st2 {
			t.Errorf("%s: replay diverged: %d/%+v vs %d/%+v", topo, s1, st1, s2, st2)
		}
	}
}

// FuzzButterflyRouting cross-checks the incremental one-digit-swap router
// against the digit-arithmetic reference model portAtRef.
func FuzzButterflyRouting(f *testing.F) {
	f.Add(uint16(0), uint16(255), uint8(255))
	f.Add(uint16(3), uint16(44), uint8(64))
	f.Add(uint16(1), uint16(2), uint8(5))
	f.Fuzz(func(t *testing.T, a, b uint16, n uint8) {
		nodes := int(n)
		if nodes < 2 {
			nodes = 2
		}
		net := New(DefaultConfig(nodes))
		size := net.Ports()
		src, dst := int(a)%size, int(b)%size
		var got [maxStages]int
		net.route(src, dst, &got)
		for s := 0; s < net.Stages(); s++ {
			if want := net.portAtRef(src, dst, s); got[s] != want {
				t.Fatalf("nodes=%d %d->%d stage %d: route %d, reference %d",
					nodes, src, dst, s, got[s], want)
			}
		}
		if got[net.Stages()-1] != dst {
			t.Fatalf("nodes=%d %d->%d: final port %d is not the destination",
				nodes, src, dst, got[net.Stages()-1])
		}
	})
}

// TestGeometryValidation pins the documented rounding contract of S-curve
// construction: the port space rounds up to the next power of 4, invalid
// node counts panic instead of silently misrouting.
func TestGeometryValidation(t *testing.T) {
	cases := []struct{ nodes, stages, ports int }{
		{1, 1, 4}, {4, 1, 4}, {5, 2, 16}, {16, 2, 16}, {17, 3, 64}, {64, 3, 64},
	}
	for _, c := range cases {
		s, p := Geometry(c.nodes)
		if s != c.stages || p != c.ports {
			t.Errorf("Geometry(%d) = (%d, %d), want (%d, %d)", c.nodes, s, p, c.stages, c.ports)
		}
	}
	n := New(DefaultConfig(5))
	if n.Ports() != 16 || n.Nodes() != 5 {
		t.Errorf("New(5): Ports=%d Nodes=%d, want 16 and 5", n.Ports(), n.Nodes())
	}
	for _, bad := range []int{0, -3, maxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometry(%d) did not panic", bad)
				}
			}()
			Geometry(bad)
		}()
	}
}
