// Package switchnet models the Butterfly switching network: a multistage
// interconnection network built from 4-input, 4-output switch elements with a
// per-port bandwidth of 32 Mbit/s. A remote memory reference traverses
// ceil(log4 N) switch stages from the source processor node controller (PNC)
// to the destination memory, and the reply traverses the mirror path.
//
// Contention is modelled per switch output port: each port is a server with a
// service time proportional to the packet size; a packet arriving while the
// port is busy waits. The Butterfly hardware made switch contention "almost
// negligible" (Rettberg & Thomas, CACM 1986); with realistic parameters this
// model reproduces that result (experiment E6).
package switchnet

import (
	"fmt"

	"butterfly/internal/calendar"
	"butterfly/internal/probe"
)

// Radix is the fan-in/fan-out of each switch element (4 on the Butterfly).
const Radix = 4

// Config holds the tunable parameters of the network model.
type Config struct {
	// Nodes is the number of processing nodes connected to the network.
	Nodes int
	// HopLatency is the fixed propagation plus switching delay through one
	// switch stage, in nanoseconds.
	HopLatency int64
	// BytesPerSecond is the bandwidth of one switch port. The Butterfly-I
	// ports carried 32 Mbit/s = 4e6 bytes/s.
	BytesPerSecond int64
}

// DefaultConfig returns the calibration used for the Butterfly-I: chosen so
// that an uncontended one-word remote reference on a 128-node (4-stage)
// machine completes in just under 4 µs, the paper's figure. The byte rate is
// twice the nominal 32 Mbit/s port bandwidth because the Butterfly switch
// provides separate forward and reverse paths per connection.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:          nodes,
		HopLatency:     250, // ns per stage
		BytesPerSecond: 8_000_000,
	}
}

// Stats aggregates network-level counters.
type Stats struct {
	Packets      uint64 // packets routed
	TotalHops    uint64 // switch stages traversed
	ContentionNs int64  // total time spent waiting for busy ports
	Dropped      uint64 // packets dropped in flight and retransmitted (fault injection)
}

// Network is the multistage interconnection network. It tracks per-port
// occupancy so concurrent transfers through a common port queue up.
type Network struct {
	cfg    Config
	stages int
	// ports[stage][port] is the reservation calendar of one switch output
	// port. Ports are identified by the switch-element output they leave
	// through; with radix-4 elements and N nodes there are N ports per
	// stage (one "wire" position per node address). Calendars allow the
	// time-charging layers above to pre-book packets into the virtual
	// future without falsely serializing later-issued, earlier-timed
	// traffic.
	ports [][]calendar.Calendar
	stats Stats
	// probe, when non-nil, observes every port traversal (occupancy and
	// queueing per stage/port). Purely observational.
	probe *probe.Probe
}

// SetProbe attaches an observability probe (nil detaches).
func (n *Network) SetProbe(p *probe.Probe) { n.probe = p }

// New builds a network for the given configuration. The node count may be
// any positive number; it is rounded up to a power of the radix internally
// for routing purposes (the real machine was configured similarly, with
// unused switch ports).
func New(cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("switchnet: node count must be positive")
	}
	stages := 0
	for span := 1; span < cfg.Nodes; span *= Radix {
		stages++
	}
	if stages == 0 {
		stages = 1 // degenerate 1-node machine still has a stage to itself
	}
	ports := 1
	for i := 0; i < stages; i++ {
		ports *= Radix
	}
	b := make([][]calendar.Calendar, stages)
	for i := range b {
		b[i] = make([]calendar.Calendar, ports)
	}
	return &Network{cfg: cfg, stages: stages, ports: b}
}

// Stages returns the number of switch stages a packet traverses end to end.
func (n *Network) Stages() int { return n.stages }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the accumulated counters (port occupancy is retained).
func (n *Network) ResetStats() { n.stats = Stats{} }

// serviceTime returns how long a packet of the given size occupies one port.
func (n *Network) serviceTime(bytes int) int64 {
	if bytes <= 0 {
		bytes = 1
	}
	return int64(bytes) * 1_000_000_000 / n.cfg.BytesPerSecond
}

// portAt returns the port index a packet from src to dst occupies at the
// given stage. The routing is the standard butterfly digit-exchange: after
// stage s, the s most significant radix-4 digits of the position have been
// replaced by digits of the destination.
func (n *Network) portAt(src, dst, stage int) int {
	// Position = high digits from dst (stage+1 of them), low digits from src.
	digits := n.stages
	pos := 0
	for d := 0; d < digits; d++ {
		var dig int
		if d <= stage {
			dig = digit(dst, digits-1-d)
		} else {
			dig = digit(src, digits-1-d)
		}
		pos = pos*Radix + dig
	}
	return pos
}

// digit extracts radix-4 digit i (0 = least significant) of v.
func digit(v, i int) int {
	for ; i > 0; i-- {
		v /= Radix
	}
	return v % Radix
}

// Transit routes a packet of the given size from node src to node dst
// starting at virtual time now, and returns the time at which the packet is
// fully delivered. Port occupancy along the path is updated, so later packets
// sharing a port are delayed (switch contention). src == dst is a zero-cost
// local transfer.
func (n *Network) Transit(now int64, src, dst, bytes int) int64 {
	if src == dst {
		return now
	}
	if src < 0 || src >= n.cfg.Nodes || dst < 0 || dst >= n.cfg.Nodes {
		panic(fmt.Sprintf("switchnet: route %d->%d outside 0..%d", src, dst, n.cfg.Nodes-1))
	}
	n.stats.Packets++
	t := now
	svc := n.serviceTime(bytes)
	for s := 0; s < n.stages; s++ {
		port := n.portAt(src, dst, s)
		start := n.ports[s][port].Reserve(t, svc)
		n.stats.ContentionNs += start - t
		if pr := n.probe; pr != nil {
			pr.SwitchHop(start, svc, start-t, s, port)
		}
		// The port is occupied while the packet streams through it;
		// cut-through routing lets the head proceed after HopLatency.
		t = start + n.cfg.HopLatency
		n.stats.TotalHops++
	}
	// Delivery completes when the tail clears the last stage.
	return t + svc
}

// NoteDrops records n packet drops injected by the fault layer. The machine
// charges the retransmission latency itself (the retried packets never
// re-reserve switch ports — a modelling simplification that keeps drop
// recovery out of the port calendars); the network only keeps the count so
// switch statistics reflect the loss.
func (n *Network) NoteDrops(drops int) {
	if drops > 0 {
		n.stats.Dropped += uint64(drops)
	}
}

// Prune discards port reservations that ended before now; callers invoke it
// periodically (no future packet can be issued earlier than the engine's
// current time).
func (n *Network) Prune(now int64) {
	for s := range n.ports {
		for p := range n.ports[s] {
			n.ports[s][p].PruneBefore(now)
		}
	}
}

// PathPorts reports the (stage, port) pairs a src->dst packet occupies; it is
// exported for tests and for the contention experiment's instrumentation.
func (n *Network) PathPorts(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	out := make([][2]int, 0, n.stages)
	for s := 0; s < n.stages; s++ {
		out = append(out, [2]int{s, n.portAt(src, dst, s)})
	}
	return out
}
